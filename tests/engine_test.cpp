// Safe-window engine tests (sim/engine.hpp): mailbox merge order, the
// zero-lookahead degenerate path, determinism of the LP-cluster model across
// engine kinds and worker counts, and the oracle gate — the parallel engine
// must reproduce the sequential engine's results exactly on every shipped
// spec. Equality here is ==, not near: the engine's window schedule is a
// pure function of the model, so any divergence is a bug, not noise.
#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/config_file.hpp"
#include "core/experiment.hpp"
#include "core/system.hpp"
#include "sim/engine.hpp"
#include "sim/lp_cluster.hpp"
#include "workload/trace_generator.hpp"

#ifndef GEMSD_SOURCE_DIR
#define GEMSD_SOURCE_DIR "."
#endif

namespace {

using namespace gemsd;
using namespace gemsd::sim;

// --- mailbox merge order --------------------------------------------------

// Two source LPs post to one destination, all messages arriving at the same
// timestamp. The posting order is adversarial: the higher-id source posts
// first in wall-clock order. The barrier merge must still deliver in
// (t, src_lp, seq) order — source id first, then each source's posts in
// sequence order.
TEST(EngineMerge, SameTimestampDeliversInSrcSeqOrder) {
  Engine eng;
  Lp& a = eng.add_lp("a");
  Lp& b = eng.add_lp("b");
  Lp& dst = eng.add_lp("dst");
  eng.set_lookahead(a.id(), dst.id(), 0.5);
  eng.set_lookahead(b.id(), dst.id(), 0.5);

  std::vector<int> order;  // 10*src + seq
  // b posts at local time 0.1, a at 0.2 — wall order b0, b1, a0, a1; the
  // merged delivery order at t=1.0 must be a0, a1, b0, b1.
  b.sched().schedule_call(0.1, [&] {
    b.post(dst.id(), 1.0, [&] { order.push_back(10 * 1 + 0); });
    b.post(dst.id(), 1.0, [&] { order.push_back(10 * 1 + 1); });
  });
  a.sched().schedule_call(0.2, [&] {
    a.post(dst.id(), 1.0, [&] { order.push_back(10 * 0 + 0); });
    a.post(dst.id(), 1.0, [&] { order.push_back(10 * 0 + 1); });
  });
  eng.run_until(2.0);

  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 10, 11}));
  EXPECT_EQ(eng.stats().messages, 4u);
  EXPECT_DOUBLE_EQ(dst.sched().now(), 2.0);
}

// Messages at different timestamps sort by time first, regardless of which
// source posted them or in which order.
TEST(EngineMerge, TimeOutranksSourceAndSeq) {
  Engine eng;
  Lp& a = eng.add_lp("a");
  Lp& b = eng.add_lp("b");
  Lp& dst = eng.add_lp("dst");
  eng.set_lookahead(a.id(), dst.id(), 0.25);
  eng.set_lookahead(b.id(), dst.id(), 0.25);

  std::vector<int> order;
  a.sched().schedule_call(0.1, [&] {
    a.post(dst.id(), 1.5, [&] { order.push_back(15); });
    a.post(dst.id(), 1.0, [&] { order.push_back(10); });
  });
  b.sched().schedule_call(0.1, [&] {
    b.post(dst.id(), 1.25, [&] { order.push_back(12); });
  });
  eng.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{10, 12, 15}));
}

// --- zero-lookahead degenerate path ---------------------------------------

// A registered zero-lookahead edge must not deadlock or skip events: the
// engine serializes into degenerate windows and still delivers everything in
// order. Ping-pong N messages at the *same* timestamp — the hardest case,
// since no window can ever open beyond T.
TEST(EngineDegenerate, ZeroLookaheadPingPongStaysExactAndSerial) {
  for (const EngineKind kind : {EngineKind::Sequential, EngineKind::Parallel}) {
    Engine eng(kind, 4);
    Lp& a = eng.add_lp("a");
    Lp& b = eng.add_lp("b");
    eng.set_lookahead(a.id(), b.id(), 0.0);
    eng.set_lookahead(b.id(), a.id(), 0.0);

    std::vector<int> hops;
    std::function<void(int)> hop = [&](int k) {
      hops.push_back(k);
      if (k >= 10) return;
      Lp& self = (k % 2 == 0) ? a : b;
      Lp& peer = (k % 2 == 0) ? b : a;
      self.post(peer.id(), self.sched().now(), [&hop, k] { hop(k + 1); });
    };
    a.sched().schedule_call(1.0, [&] { hop(0); });
    const std::uint64_t events = eng.run_until(5.0);

    ASSERT_EQ(hops.size(), 11u) << "kind " << static_cast<int>(kind);
    for (int k = 0; k <= 10; ++k) EXPECT_EQ(hops[static_cast<size_t>(k)], k);
    EXPECT_EQ(events, 11u);
    EXPECT_GE(eng.stats().degenerate_windows, 10u);
    EXPECT_DOUBLE_EQ(a.sched().now(), 5.0);
    EXPECT_DOUBLE_EQ(b.sched().now(), 5.0);
  }
}

// --- posting contract -----------------------------------------------------

TEST(EngineContract, PostOnUnregisteredEdgeThrows) {
  Engine eng;
  Lp& a = eng.add_lp("a");
  Lp& b = eng.add_lp("b");
  bool threw = false;
  a.sched().schedule_call(0.0, [&] {
    try {
      a.post(b.id(), 1.0, [] {});
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  eng.run_until(1.0);
  EXPECT_TRUE(threw);
}

TEST(EngineContract, PostViolatingLookaheadThrows) {
  Engine eng;
  Lp& a = eng.add_lp("a");
  Lp& b = eng.add_lp("b");
  eng.set_lookahead(a.id(), b.id(), 0.5);
  bool threw = false;
  a.sched().schedule_call(1.0, [&] {
    try {
      a.post(b.id(), 1.2, [] {});  // 1.2 < now(1.0) + lookahead(0.5)
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  eng.run_until(2.0);
  EXPECT_TRUE(threw);
}

// --- LP-cluster determinism -----------------------------------------------

LpClusterConfig small_cluster() {
  LpClusterConfig c;
  c.nodes = 3;
  c.mpl = 8;
  c.txns_per_node = 60;
  c.requests_per_txn = 6;
  c.remote_fraction = 0.3;
  c.working_set_kb = 16;
  c.chase_len = 8;
  return c;
}

void expect_same(const LpClusterResult& x, const LpClusterResult& y,
                 const char* what) {
  EXPECT_EQ(x.checksum, y.checksum) << what;
  EXPECT_EQ(x.commits, y.commits) << what;
  EXPECT_EQ(x.remote_requests, y.remote_requests) << what;
  EXPECT_EQ(x.events, y.events) << what;
  EXPECT_DOUBLE_EQ(x.makespan, y.makespan) << what;
}

// The one-number witness: the order-sensitive checksum (grant times folded
// in per-LP order) is identical on the flat single-queue kernel, the
// sequential engine, and the parallel engine at 1, 2, and 4 workers.
TEST(LpCluster, IdenticalAcrossKernelsAndWorkerCounts) {
  const LpClusterConfig base = small_cluster();

  const LpClusterResult flat = run_lp_cluster_single_queue(base);
  ASSERT_GT(flat.commits, 0u);

  LpClusterConfig cfg = base;
  cfg.kind = EngineKind::Sequential;
  const LpClusterResult seq = run_lp_cluster(cfg);
  expect_same(flat, seq, "flat vs sequential engine");

  for (int workers : {1, 2, 4}) {
    cfg.kind = EngineKind::Parallel;
    cfg.workers = workers;
    const LpClusterResult par = run_lp_cluster(cfg);
    expect_same(seq, par, "sequential vs parallel engine");
    EXPECT_EQ(seq.windows, par.windows);
    EXPECT_EQ(seq.messages, par.messages);
    EXPECT_EQ(seq.max_queue_depth, par.max_queue_depth);
  }
}

TEST(LpCluster, EngineStatsAreConsistent) {
  LpClusterConfig cfg = small_cluster();
  cfg.kind = EngineKind::Sequential;
  const LpClusterResult r = run_lp_cluster(cfg);
  EXPECT_GT(r.windows, 0u);
  EXPECT_GT(r.messages, 0u);
  EXPECT_EQ(r.degenerate_windows, 0u);  // all edges have real lookahead
  // Every remote request is two messages (request + grant), and nothing else
  // crosses LPs.
  EXPECT_EQ(r.messages, 2 * r.remote_requests);
  EXPECT_GT(r.max_queue_depth, 0u);
}

// --- oracle gate: parallel == sequential on the shipped specs -------------

struct GateResult {
  RunResult r;
  std::vector<std::pair<std::string, double>> detail;  // engine.* stripped
};

GateResult run_gate(const RunSpec& spec, EngineKind kind, int workers,
                    const workload::Trace* trace) {
  SystemConfig cfg;
  if (spec.kind == RunSpec::Kind::Trace) {
    cfg = make_trace_config(*trace);
    apply_spec_keys(cfg, spec.keys);
  } else {
    cfg = spec.cfg;
  }
  // Shrunk horizon: the gate checks engine equivalence, not steady state.
  cfg.warmup = 0.1;
  cfg.measure = 0.3;
  cfg.engine.kind = kind;
  cfg.engine.workers = workers;
  GateResult g;
  g.r = spec.kind == RunSpec::Kind::Trace ? run_trace(cfg, *trace)
                                          : run_debit_credit(cfg);
  if (g.r.telemetry) {
    for (const auto& kv : g.r.telemetry->detail) {
      if (kv.first.rfind("engine.", 0) == 0) continue;  // self-metrics differ
      g.detail.push_back(kv);
    }
  }
  return g;
}

void expect_identical(const GateResult& s, const GateResult& p,
                      const std::string& what) {
  EXPECT_GT(s.r.commits, 0u) << what << " (vacuous gate run)";
  EXPECT_DOUBLE_EQ(s.r.resp_ms, p.r.resp_ms) << what;
  EXPECT_DOUBLE_EQ(s.r.resp_ci_ms, p.r.resp_ci_ms) << what;
  EXPECT_DOUBLE_EQ(s.r.resp_p95_ms, p.r.resp_p95_ms) << what;
  EXPECT_DOUBLE_EQ(s.r.throughput, p.r.throughput) << what;
  EXPECT_EQ(s.r.commits, p.r.commits) << what;
  EXPECT_EQ(s.r.aborts, p.r.aborts) << what;
  EXPECT_EQ(s.r.deadlocks, p.r.deadlocks) << what;
  EXPECT_DOUBLE_EQ(s.r.cpu_util, p.r.cpu_util) << what;
  EXPECT_DOUBLE_EQ(s.r.messages_per_txn, p.r.messages_per_txn) << what;
  ASSERT_EQ(s.detail.size(), p.detail.size()) << what;
  for (std::size_t i = 0; i < s.detail.size(); ++i) {
    EXPECT_EQ(s.detail[i].first, p.detail[i].first) << what;
    EXPECT_DOUBLE_EQ(s.detail[i].second, p.detail[i].second)
        << what << " key " << s.detail[i].first;
  }
}

const workload::Trace& shared_trace() {
  static const workload::Trace trace = [] {
    sim::Rng rng(7);
    workload::SyntheticTraceConfig tc;
    tc.transactions = 4000;
    return workload::generate_synthetic_trace(tc, rng);
  }();
  return trace;
}

// Every shipped spec file, sequential vs parallel(2 workers). Multi-run
// sweeps are sampled first/middle/last — every file is covered, every
// coupling mode and storage layout in the corpus gets exercised, and the
// gate stays fast enough for tier 1.
TEST(EngineOracleGate, ParallelMatchesSequentialOnEveryShippedSpec) {
  const std::string dir = std::string(GEMSD_SOURCE_DIR) + "/specs";
  if (!std::filesystem::exists(dir + "/fig_4_1.ini")) {
    GTEST_SKIP() << "specs/ not reachable";
  }
  int files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".ini") continue;
    ++files;
    const SpecDoc doc = parse_spec_doc_file(entry.path().string());
    std::vector<std::size_t> picks{0};
    if (doc.runs.size() > 2) picks.push_back(doc.runs.size() / 2);
    if (doc.runs.size() > 1) picks.push_back(doc.runs.size() - 1);
    for (const std::size_t i : picks) {
      const RunSpec& spec = doc.runs[i];
      const workload::Trace* trace =
          spec.kind == RunSpec::Kind::Trace ? &shared_trace() : nullptr;
      const GateResult seq =
          run_gate(spec, EngineKind::Sequential, 0, trace);
      const GateResult par = run_gate(spec, EngineKind::Parallel, 2, trace);
      expect_identical(
          seq, par,
          entry.path().filename().string() + " run " + std::to_string(i));
    }
  }
  EXPECT_GE(files, 19) << "shipped spec corpus shrank?";
}

// The two headline figures additionally gated at 2 and 4 workers.
TEST(EngineOracleGate, HeadlineFiguresMatchAtTwoAndFourWorkers) {
  const std::string dir = std::string(GEMSD_SOURCE_DIR) + "/specs/";
  if (!std::filesystem::exists(dir + "fig_4_1.ini")) {
    GTEST_SKIP() << "specs/ not reachable";
  }
  for (const char* name : {"fig_4_1.ini", "fig_4_7.ini"}) {
    const SpecDoc doc = parse_spec_doc_file(dir + name);
    ASSERT_FALSE(doc.runs.empty()) << name;
    const RunSpec& spec = doc.runs[doc.runs.size() / 2];
    const workload::Trace* trace =
        spec.kind == RunSpec::Kind::Trace ? &shared_trace() : nullptr;
    const GateResult seq = run_gate(spec, EngineKind::Sequential, 0, trace);
    for (int workers : {2, 4}) {
      const GateResult par =
          run_gate(spec, EngineKind::Parallel, workers, trace);
      expect_identical(seq, par,
                       std::string(name) + " @" + std::to_string(workers) +
                           " workers");
    }
  }
}

// The results JSON detail block must expose the engine self-metrics.
TEST(EngineSelfMetrics, DetailCarriesEngineCounters) {
  SystemConfig cfg = make_debit_credit_config();
  cfg.nodes = 2;
  cfg.warmup = 0.1;
  cfg.measure = 0.2;
  cfg.engine.kind = EngineKind::Parallel;
  cfg.engine.workers = 2;
  const RunResult r = run_debit_credit(cfg);
  ASSERT_TRUE(r.telemetry);
  double lps = -1, workers = -1, windows = -1, events = -1, maxq = -1;
  bool lp0 = false, wall = false;
  for (const auto& kv : r.telemetry->detail) {
    if (kv.first == "engine.lps") lps = kv.second;
    if (kv.first == "engine.workers") workers = kv.second;
    if (kv.first == "engine.windows") windows = kv.second;
    if (kv.first == "engine.events") events = kv.second;
    if (kv.first == "engine.max_queue_depth") maxq = kv.second;
    if (kv.first == "engine.lp0.events") lp0 = true;
    if (kv.first == "engine.wall_events_per_s") wall = kv.second > 0;
  }
  EXPECT_EQ(lps, 1);      // the System model is one LP (see DESIGN.md)
  EXPECT_EQ(workers, 2);
  EXPECT_GE(windows, 1);  // single LP, no lookahead bound: one window per run
  EXPECT_GT(events, 0);
  EXPECT_GT(maxq, 0);
  EXPECT_TRUE(lp0);
  EXPECT_TRUE(wall);
}

}  // namespace
