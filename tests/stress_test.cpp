// Property/stress tests: randomized transaction mixes through complete
// systems under deliberately hostile conditions (tiny buffers, hot pages,
// deadlock-prone access orders), with strong invariants checked at the end:
//
//  * no transaction ever observed a stale page version (coherency),
//  * every page's final version number equals the number of committed
//    transactions that wrote it (serialization / update conservation),
//  * every submitted transaction eventually commits (victims restart),
//  * the lock table drains completely.
//
// Parameterized across coupling x update strategy (TEST_P).
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "core/system.hpp"
#include "workload/workload.hpp"

namespace gemsd {
namespace {

using workload::PageRef;
using workload::TxnSpec;

constexpr PartitionId kT = 0;
PageId pg(std::int64_t n) { return PageId{kT, n}; }

SystemConfig hostile_cfg(Coupling c, UpdateStrategy u, int nodes,
                         int buffer_pages) {
  SystemConfig cfg;
  cfg.nodes = nodes;
  cfg.coupling = c;
  cfg.update = u;
  cfg.buffer_pages = buffer_pages;
  cfg.mpl = 200;
  cfg.partitions.resize(1);
  auto& pc = cfg.partitions[0];
  pc.name = "T";
  pc.pages_per_unit = 64;  // tiny, hot page space
  pc.locked = true;
  pc.disks_per_unit = 8;
  return cfg;
}

class ModGla : public workload::GlaMap {
 public:
  explicit ModGla(int nodes) : nodes_(nodes) {}
  NodeId gla(PageId p) const override {
    return static_cast<NodeId>(p.page % nodes_);
  }

 private:
  int nodes_;
};
struct NullGen : workload::WorkloadGenerator {
  TxnSpec next(sim::Rng&) override { return {}; }
  int num_types() const override { return 1; }
};

using Combo = std::tuple<Coupling, UpdateStrategy>;

class Stress : public ::testing::TestWithParam<Combo> {};

TEST_P(Stress, RandomMixedLoadKeepsInvariants) {
  const auto [coupling, update] = GetParam();
  SystemConfig cfg = hostile_cfg(coupling, update, 3, 8);  // 8-frame buffers!

  System::Workload wl;
  wl.gen = std::make_unique<NullGen>();
  wl.router = std::make_unique<workload::RandomRouter>(cfg.nodes);
  wl.gla = std::make_unique<ModGla>(cfg.nodes);
  System sys(cfg, std::move(wl));

  sim::Rng rng(12345);
  std::map<std::int64_t, int> committed_writes;  // expected per page
  const int kTxns = 400;
  for (int i = 0; i < kTxns; ++i) {
    TxnSpec t;
    const int len = static_cast<int>(rng.uniform_int(1, 6));
    // Random page sets in random order — deadlock-prone by construction.
    for (int r = 0; r < len; ++r) {
      const std::int64_t page = rng.uniform_int(0, 63);
      const bool write = rng.bernoulli(0.4);
      t.refs.push_back(PageRef{pg(page), write});
    }
    // Expected version bumps: distinct pages written by this txn.
    std::map<std::int64_t, bool> dirty;
    for (const auto& r : t.refs) {
      if (r.write) dirty[r.page.page] = true;
    }
    for (const auto& [p, d] : dirty) committed_writes[p] += 1;
    sys.submit(static_cast<NodeId>(rng.uniform_int(0, cfg.nodes - 1)), t);
  }
  sys.scheduler().run_all();

  // 1. Everything committed (deadlock victims restarted and succeeded).
  EXPECT_EQ(sys.metrics().commits.value(), static_cast<std::uint64_t>(kTxns));
  // 2. No stale version was ever accessed under a lock.
  EXPECT_EQ(sys.metrics().coherency_violations.value(), 0u);
  // 3. Update conservation: final version == number of committing writers.
  for (const auto& [page, writes] : committed_writes) {
    EXPECT_EQ(sys.protocol().directory().seqno(pg(page)),
              static_cast<SeqNo>(writes))
        << "page " << page;
  }
  // 4. Strict 2PL fully drained.
  EXPECT_EQ(sys.protocol().table().locked_pages(), 0u);
  // 5. Deadlocks may have occurred, but every victim eventually committed.
  EXPECT_EQ(sys.metrics().aborts.value(), sys.metrics().restarts.value());
}

TEST_P(Stress, UpgradeHeavyLoadConverges) {
  const auto [coupling, update] = GetParam();
  SystemConfig cfg = hostile_cfg(coupling, update, 2, 16);
  System::Workload wl;
  wl.gen = std::make_unique<NullGen>();
  wl.router = std::make_unique<workload::RandomRouter>(cfg.nodes);
  wl.gla = std::make_unique<ModGla>(cfg.nodes);
  System sys(cfg, std::move(wl));

  sim::Rng rng(99);
  const int kTxns = 200;
  for (int i = 0; i < kTxns; ++i) {
    // Read-then-write the same hot page: classic upgrade deadlock pattern.
    TxnSpec t;
    const std::int64_t page = rng.uniform_int(0, 3);
    t.refs.push_back(PageRef{pg(page), false});
    t.refs.push_back(PageRef{pg(page), true});
    sys.submit(static_cast<NodeId>(i % cfg.nodes), t);
  }
  sys.scheduler().run_all();
  EXPECT_EQ(sys.metrics().commits.value(), static_cast<std::uint64_t>(kTxns));
  EXPECT_EQ(sys.metrics().coherency_violations.value(), 0u);
  EXPECT_EQ(sys.protocol().table().locked_pages(), 0u);
  // All four hot pages saw every writer.
  SeqNo total = 0;
  for (std::int64_t p = 0; p < 4; ++p) {
    total += sys.protocol().directory().seqno(pg(p));
  }
  EXPECT_EQ(total, static_cast<SeqNo>(kTxns));
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, Stress,
    ::testing::Combine(
        ::testing::Values(Coupling::GemLocking, Coupling::PrimaryCopy),
        ::testing::Values(UpdateStrategy::NoForce, UpdateStrategy::Force)),
    [](const ::testing::TestParamInfo<Combo>& info) {
      std::string s = to_string(std::get<0>(info.param));
      s += "_";
      s += to_string(std::get<1>(info.param));
      return s;
    });

}  // namespace
}  // namespace gemsd
