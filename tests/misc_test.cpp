// Remaining coverage: fork/join, suspend-to-callback, histogram and RNG
// edges, bench option parsing, report formatting helpers, config scaling.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "sim/join.hpp"
#include "sim/scheduler.hpp"
#include "sim/task.hpp"

namespace gemsd {
namespace {

using sim::Join;
using sim::Scheduler;
using sim::Task;

Task<void> sleeper(Scheduler& s, double d, int* done) {
  co_await s.delay(d);
  ++*done;
}

Task<void> forker(Scheduler& s, double* finished_at, int* children_done) {
  Join j(s);
  j.spawn(sleeper(s, 3.0, children_done));
  j.spawn(sleeper(s, 1.0, children_done));
  j.spawn(sleeper(s, 2.0, children_done));
  co_await j.wait_all();
  *finished_at = s.now();
}

TEST(Join, WaitsForSlowestChild) {
  Scheduler s;
  double at = 0;
  int done = 0;
  s.spawn(forker(s, &at, &done));
  s.run_all();
  EXPECT_EQ(done, 3);
  EXPECT_DOUBLE_EQ(at, 3.0);  // parallel, not 6.0 serial
}

Task<void> empty_join(Scheduler& s, bool* resumed) {
  Join j(s);
  co_await j.wait_all();  // nothing spawned: must not block
  *resumed = true;
}

TEST(Join, EmptyJoinIsImmediate) {
  Scheduler s;
  bool resumed = false;
  s.spawn(empty_join(s, &resumed));
  s.run_all();
  EXPECT_TRUE(resumed);
}

Task<void> suspender(Scheduler& s, std::coroutine_handle<>* out,
                     double* resumed_at) {
  co_await s.suspend([&](std::coroutine_handle<> h) { *out = h; });
  *resumed_at = s.now();
}

TEST(Scheduler, SuspendToCallbackHandsOutHandle) {
  Scheduler s;
  std::coroutine_handle<> h{};
  double at = -1;
  s.spawn(suspender(s, &h, &at));
  s.run_until(1.0);
  ASSERT_TRUE(h);           // parked
  EXPECT_DOUBLE_EQ(at, -1);  // not yet resumed
  s.schedule(5.0, h);
  s.run_all();
  EXPECT_DOUBLE_EQ(at, 5.0);
}

TEST(Histogram, UnderflowAndOverflowBucketsStillCount) {
  sim::Histogram h(1e-3, 1.0, 10);
  h.add(1e-9);  // underflow
  h.add(50.0);  // overflow
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GT(h.quantile(0.9), 0.5);  // overflow dominates the top
}

TEST(Histogram, EmptyQuantileIsZero) {
  sim::Histogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Rng, TruncatedNormalStaysInBounds) {
  sim::Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.normal(10.0, 5.0, 8.0, 12.0);
    EXPECT_GE(x, 8.0);
    EXPECT_LE(x, 12.0);
  }
}

TEST(BenchOptions, ParsesFlags) {
  const char* argv[] = {"prog",          "--quick",        "--max-nodes=7",
                        "--seed=123",    "--full",         "--csv",
                        "--measure=9.5", "--warmup=1.5"};
  const BenchOptions o =
      parse_bench_args(8, const_cast<char**>(argv));
  EXPECT_EQ(o.max_nodes, 7);
  EXPECT_EQ(o.seed, 123u);
  EXPECT_TRUE(o.full);
  EXPECT_TRUE(o.csv);
  EXPECT_DOUBLE_EQ(o.measure, 9.5);  // explicit value overrides --quick
  EXPECT_DOUBLE_EQ(o.warmup, 1.5);
}

TEST(BenchOptions, DefaultsWithoutFlags) {
  const char* argv[] = {"prog"};
  const BenchOptions o = parse_bench_args(1, const_cast<char**>(argv));
  EXPECT_EQ(o.max_nodes, 10);
  EXPECT_FALSE(o.full);
  EXPECT_GT(o.measure, o.warmup);
}

TEST(Report, LabelCombinesAxes) {
  RunResult r;
  r.coupling = Coupling::PrimaryCopy;
  r.update = UpdateStrategy::Force;
  r.routing = Routing::Random;
  EXPECT_EQ(r.label(), "PCL/FORCE/random");
}

TEST(Report, ToStringCoversAllEnums) {
  EXPECT_STREQ(to_string(Coupling::GemLocking), "GEM");
  EXPECT_STREQ(to_string(Coupling::LockEngine), "ENGINE");
  EXPECT_STREQ(to_string(UpdateStrategy::NoForce), "NOFORCE");
  EXPECT_STREQ(to_string(Routing::Affinity), "affinity");
  EXPECT_STREQ(to_string(StorageKind::DiskGemCache), "disk+gemcache");
  EXPECT_STREQ(to_string(StorageKind::DiskVolatileCache), "disk+vcache");
}

TEST(Config, PartitionPagesRespectsScaleFlag) {
  SystemConfig cfg = make_debit_credit_config();
  cfg.nodes = 5;
  cfg.partitions[0].scale_with_nodes = false;
  EXPECT_EQ(cfg.partition_pages(0), 100);
  cfg.partitions[0].scale_with_nodes = true;
  EXPECT_EQ(cfg.partition_pages(0), 500);
}

TEST(Config, DebitCreditDefaultsMatchTable41) {
  const SystemConfig cfg = make_debit_credit_config();
  EXPECT_EQ(cfg.cpu.processors, 4);
  EXPECT_DOUBLE_EQ(cfg.cpu.mips, 10.0);
  EXPECT_DOUBLE_EQ(cfg.arrival_rate_per_node, 100.0);
  EXPECT_EQ(cfg.buffer_pages, 200);
  EXPECT_DOUBLE_EQ(cfg.gem.page_access, 50e-6);
  EXPECT_DOUBLE_EQ(cfg.gem.entry_access, 2e-6);
  EXPECT_DOUBLE_EQ(cfg.comm.bandwidth, 10e6);
  EXPECT_DOUBLE_EQ(cfg.comm.short_instr, 5000.0);
  EXPECT_DOUBLE_EQ(cfg.comm.long_instr, 8000.0);
  EXPECT_DOUBLE_EQ(cfg.disk.db_disk, 15e-3);
  EXPECT_DOUBLE_EQ(cfg.disk.log_disk, 5e-3);
  EXPECT_DOUBLE_EQ(cfg.disk.io_instr, 3000.0);
  EXPECT_DOUBLE_EQ(cfg.gem.io_instr, 300.0);
  // Path length sums to the paper's 250k instructions.
  EXPECT_DOUBLE_EQ(
      cfg.path.bot_instr + 4 * cfg.path.per_ref_instr + cfg.path.eot_instr,
      250000.0);
  // Schema: 100 B/T pages, 1M ACCOUNT pages per node unit; HISTORY unlocked.
  EXPECT_EQ(cfg.partitions[DebitCreditIds::kBranchTeller].pages_per_unit, 100);
  EXPECT_EQ(cfg.partitions[DebitCreditIds::kAccount].pages_per_unit, 1000000);
  EXPECT_FALSE(cfg.partitions[DebitCreditIds::kHistory].locked);
  EXPECT_EQ(cfg.partitions[DebitCreditIds::kHistory].blocking_factor, 20);
}

TEST(Types, PageIdKeyIsInjectiveAcrossPartitions) {
  EXPECT_NE((PageId{0, 1}).key(), (PageId{1, 1}).key());
  EXPECT_NE((PageId{0, 1}).key(), (PageId{0, 2}).key());
  EXPECT_EQ((PageId{3, 42}).key(), (PageId{3, 42}).key());
}

TEST(Types, AppendSentinelIsNegative) {
  // resolve_append relies on the sentinel never colliding with a real page.
  EXPECT_LT(kAppendPage, 0);
}

}  // namespace
}  // namespace gemsd
