// Operational-analysis layer tests (obs/resources.hpp, --resources): the
// sim::Resource counters at the station level (arrivals symmetry, finite
// stats at the reset instant), the operational laws as exact identities on
// hand-driven D/D/1 and seeded M/M/1 stations (Little, utilization, flow
// balance — to near machine precision, mid-queue included), the bottleneck
// ranking and asymptotic throughput bound, the gemsd.resources.v1 document
// (schema, byte-exact round trip), per-shard gating in --compare, and the
// two contracts the layer rests on — metrics untouched with the recorder on
// or off, and the exported document bit-identical across engine kinds and
// worker counts on a shipped spec. Suite names start with "Resource" so the
// TSan CI job covers the parallel-engine path.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/config_file.hpp"
#include "core/experiment.hpp"
#include "core/system.hpp"
#include "obs/analyze.hpp"
#include "obs/json.hpp"
#include "obs/resources.hpp"
#include "obs/telemetry.hpp"
#include "sim/random.hpp"
#include "sim/resource.hpp"
#include "sim/scheduler.hpp"

#ifndef GEMSD_SOURCE_DIR
#define GEMSD_SOURCE_DIR "."
#endif

namespace {

using namespace gemsd;

// --- station counters (satellite: reset-instant NaN + arrivals) -----------

// At the instant of a reset the horizon is zero: every ratio must come back
// as a finite 0, never NaN/inf (these feed JSON, which has no NaN literal).
TEST(ResourceStation, StatsAreFiniteAtTheResetInstant) {
  sim::Scheduler s;
  sim::Resource r(s, 2, "station");

  // Brand-new station at t=0: zero horizon, zero everything.
  EXPECT_EQ(r.utilization(), 0.0);
  EXPECT_EQ(r.mean_queue_length(), 0.0);
  EXPECT_TRUE(std::isfinite(r.utilization()));
  EXPECT_TRUE(std::isfinite(r.mean_queue_length()));

  // Accrue some usage, then reset and re-read without advancing time.
  s.spawn([](sim::Scheduler&, sim::Resource& rs) -> sim::Task<void> {
    co_await rs.use(1.0);
  }(s, r));
  s.run_until(2.0);
  EXPECT_GT(r.busy_time(), 0.0);

  r.reset_stats();
  EXPECT_EQ(r.utilization(), 0.0);
  EXPECT_EQ(r.mean_queue_length(), 0.0);
  EXPECT_TRUE(std::isfinite(r.utilization()));
  EXPECT_TRUE(std::isfinite(r.mean_queue_length()));
  EXPECT_EQ(r.arrivals(), 0u);
  EXPECT_EQ(r.completions(), 0u);
  EXPECT_EQ(r.busy_time(), 0.0);
  EXPECT_EQ(r.queue_integral(), 0.0);
  EXPECT_EQ(r.queue_max(), 0u);

  // A row derived over the zero-width horizon is all finite zeros too.
  const obs::ResourceRow row =
      obs::resource_row(r, "station", "cpu", 0, 0.0, 0, nullptr);
  EXPECT_TRUE(std::isfinite(row.utilization));
  EXPECT_TRUE(std::isfinite(row.queue_mean));
  EXPECT_TRUE(std::isfinite(row.throughput));
  EXPECT_TRUE(std::isfinite(row.service_s));
  EXPECT_TRUE(std::isfinite(row.demand_s));
  EXPECT_EQ(row.utilization, 0.0);
}

// arrivals() ticks on every acquisition — immediate grants and enqueues
// alike — and is symmetric to completions() once the station drains.
TEST(ResourceStation, ArrivalsCountGrantsAndEnqueuesSymmetrically) {
  sim::Scheduler s;
  sim::Resource r(s, 1, "station");
  for (int i = 0; i < 5; ++i) {
    s.spawn([](sim::Scheduler&, sim::Resource& rs) -> sim::Task<void> {
      co_await rs.use(1.0);  // cap 1: job 0 grants immediately, 1..4 queue
    }(s, r));
  }
  s.run_until(0.0);  // all five have arrived, none has finished
  EXPECT_EQ(r.arrivals(), 5u);
  EXPECT_EQ(r.completions(), 0u);
  EXPECT_EQ(r.in_system(), 5u);
  EXPECT_EQ(r.queue_max(), 4u);

  s.run_until(10.0);  // serial service: drains by t=5
  EXPECT_EQ(r.arrivals(), 5u);
  EXPECT_EQ(r.completions(), 5u);
  EXPECT_EQ(r.in_system(), 0u);
  // Exact Little identity on the drained station: jobs 1..4 waited
  // 1+2+3+4 = 10 waiter-seconds, and that IS the queue-length integral.
  EXPECT_DOUBLE_EQ(r.waited_time(), 10.0);
  EXPECT_DOUBLE_EQ(r.queue_integral(), 10.0);
  EXPECT_EQ(r.pending_wait_time(), 0.0);
}

// Flow balance across a stats reset: in_system_at_reset() carries the jobs
// that straddle the horizon start, closing
//   arrivals - completions == in_system_end - in_system_start.
TEST(ResourceStation, FlowBalanceClosesAcrossAReset) {
  sim::Scheduler s;
  sim::Resource r(s, 1, "station");
  for (int i = 0; i < 3; ++i) {
    s.spawn([](sim::Scheduler&, sim::Resource& rs) -> sim::Task<void> {
      co_await rs.use(2.0);
    }(s, r));
  }
  s.run_until(1.0);  // one in service, two queued
  r.reset_stats();
  EXPECT_EQ(r.in_system_at_reset(), 3u);
  EXPECT_EQ(r.arrivals(), 0u);

  s.run_until(10.0);  // the three straddlers complete, nothing new arrives
  const std::int64_t flow = static_cast<std::int64_t>(r.arrivals()) -
                            static_cast<std::int64_t>(r.completions());
  const std::int64_t delta = static_cast<std::int64_t>(r.in_system()) -
                             static_cast<std::int64_t>(r.in_system_at_reset());
  EXPECT_EQ(flow, delta);  // 0 - 3 == 0 - 3
}

// --- law fixtures (satellite: D/D/1 exact, M/M/1 to machine precision) ----

sim::Task<void> dd1_source(sim::Scheduler& s, sim::Resource& r, int jobs,
                           double interarrival, double service) {
  for (int i = 0; i < jobs; ++i) {
    s.spawn([](sim::Scheduler&, sim::Resource& rs,
               double sv) -> sim::Task<void> { co_await rs.use(sv); }(
        s, r, service));
    co_await s.delay(interarrival);
  }
}

obs::ResourceSet one_row_set(const sim::Resource& r, double start, double end,
                             std::uint64_t commits) {
  obs::ResourceSet set;
  set.stats_start = start;
  set.end = end;
  set.commits = commits;
  set.throughput =
      end > start ? static_cast<double>(commits) / (end - start) : 0.0;
  set.rows.push_back(obs::resource_row(r, r.name(), "cpu", 0, end - start,
                                       commits, nullptr));
  return set;
}

// Underloaded D/D/1 (interarrival 2 s, service 1 s): no queueing ever, and
// every field has a closed-form exact value.
TEST(ResourceLaws, UnderloadedDD1IsExact) {
  sim::Scheduler s;
  sim::Resource r(s, 1, "dd1");
  s.spawn(dd1_source(s, r, 10, 2.0, 1.0));
  s.run_until(20.0);  // last job arrives at 18, finishes at 19

  const obs::ResourceSet set = one_row_set(r, 0.0, 20.0, 10);
  const obs::ResourceRow& row = set.rows[0];
  EXPECT_EQ(row.arrivals, 10u);
  EXPECT_EQ(row.completions, 10u);
  EXPECT_DOUBLE_EQ(row.busy_s, 10.0);
  EXPECT_DOUBLE_EQ(row.utilization, 0.5);
  EXPECT_DOUBLE_EQ(row.throughput, 0.5);
  EXPECT_DOUBLE_EQ(row.service_s, 1.0);
  EXPECT_DOUBLE_EQ(row.demand_s, 1.0);
  EXPECT_DOUBLE_EQ(row.saturation_tps, 1.0);
  EXPECT_DOUBLE_EQ(row.queue_integral_s, 0.0);
  EXPECT_DOUBLE_EQ(row.waited_s, 0.0);
  EXPECT_EQ(row.queue_max, 0u);
  EXPECT_TRUE(obs::check_resource_laws(set, 1e-12).empty());
}

// Overloaded D/D/1 (interarrival 1 s, service 3 s), snapshotted with jobs
// still queued: the Little identity must hold *mid-queue*, pending included.
TEST(ResourceLaws, OverloadedDD1HoldsMidQueue) {
  sim::Scheduler s;
  sim::Resource r(s, 1, "dd1sat");
  s.spawn(dd1_source(s, r, 6, 1.0, 3.0));
  s.run_until(7.5);  // two served (t=3, 6), one in service, three queued

  EXPECT_EQ(r.completions(), 2u);
  EXPECT_EQ(r.in_system(), 4u);
  EXPECT_GT(r.pending_wait_time(), 0.0);
  EXPECT_DOUBLE_EQ(r.queue_integral(),
                   r.waited_time() + r.pending_wait_time());

  const obs::ResourceSet set = one_row_set(r, 0.0, 7.5, 2);
  EXPECT_TRUE(obs::check_resource_laws(set, 1e-12).empty());
  EXPECT_DOUBLE_EQ(set.rows[0].utilization, 1.0);  // never idle since t=0
}

sim::Task<void> mm1_source(sim::Scheduler& s, sim::Rng& rng, sim::Resource& r,
                           double lambda, double mean_service) {
  for (;;) {
    co_await s.delay(rng.exponential(1.0 / lambda));
    s.spawn([](sim::Scheduler&, sim::Rng& rg, sim::Resource& rs,
               double ms) -> sim::Task<void> {
      co_await rs.use(rg.exponential(ms));
    }(s, rng, r, mean_service));
  }
}

// Seeded M/M/1 at rho = 0.8: thousands of stochastic arrivals, snapshot
// taken mid-flight — the operational laws are *identities*, so they hold to
// near machine precision regardless of the randomness, jobs in queue and a
// measurement horizon that starts mid-run (straddling waiters) included.
TEST(ResourceLaws, SeededMM1IdentitiesHoldToMachinePrecision) {
  sim::Scheduler s;
  sim::Rng rng(7);
  sim::Resource r(s, 1, "mm1");
  s.spawn(mm1_source(s, rng, r, 80.0, 0.01));

  s.run_until(10.0);
  r.reset_stats();  // horizon starts mid-run, with waiters straddling it
  s.run_until(60.0);

  EXPECT_GT(r.completions(), 3000u);
  const obs::ResourceSet set = one_row_set(r, 10.0, 60.0, r.completions());
  const auto violations = obs::check_resource_laws(set, 1e-9);
  EXPECT_TRUE(violations.empty())
      << violations.front().resource << ": " << violations.front().what;
  // Sanity: the station really was loaded when we looked.
  EXPECT_GT(set.rows[0].utilization, 0.6);
  EXPECT_GT(set.rows[0].queue_integral_s, 0.0);
}

// Corrupted values name the offending station and the broken law.
TEST(ResourceLaws, CorruptionNamesTheStationAndLaw) {
  sim::Scheduler s;
  sim::Resource r(s, 1, "victim");
  s.spawn(dd1_source(s, r, 4, 2.0, 1.0));
  s.run_until(10.0);
  obs::ResourceSet set = one_row_set(r, 0.0, 10.0, 4);
  ASSERT_TRUE(obs::check_resource_laws(set).empty());

  obs::ResourceSet bad = set;
  bad.rows[0].busy_s = 99.0;  // > capacity * horizon: hard invariant
  const auto v1 = obs::check_resource_laws(bad);
  ASSERT_FALSE(v1.empty());
  EXPECT_EQ(v1.front().resource, "victim");

  bad = set;
  bad.rows[0].queue_integral_s += 1.0;  // breaks the Little identity
  bool little = false;
  for (const auto& v : obs::check_resource_laws(bad)) {
    if (v.what.find("Little") != std::string::npos) little = true;
  }
  EXPECT_TRUE(little);

  bad = set;
  bad.rows[0].arrivals += 1;  // breaks flow balance
  bool flow = false;
  for (const auto& v : obs::check_resource_laws(bad)) {
    if (v.what.find("flow balance") != std::string::npos) flow = true;
  }
  EXPECT_TRUE(flow);
}

// --- bottleneck analyzer ---------------------------------------------------

obs::ResourceRow station(const std::string& name, const std::string& kind,
                         int cap, double busy, std::uint64_t completions,
                         double horizon, std::uint64_t commits) {
  obs::ResourceRow r;
  r.name = name;
  r.kind = kind;
  r.capacity = cap;
  r.arrivals = completions;
  r.completions = completions;
  r.busy_s = busy;
  obs::derive_resource_row(r, horizon, commits);
  return r;
}

obs::ResourceSet synthetic_set() {
  // 10 s horizon, 1000 commits, X = 100/s. The "gem" station is nearly
  // saturated (U = 0.95, demand 9.5 ms -> saturates at 105.3/s); cpu and
  // disk trail it.
  obs::ResourceSet s;
  s.stats_start = 0.0;
  s.end = 10.0;
  s.commits = 1000;
  s.throughput = 100.0;
  s.rows.push_back(station("cpu.node0", "cpu", 4, 16.0, 20000, 10.0, 1000));
  s.rows.push_back(station("gem", "gem", 1, 9.5, 8000, 10.0, 1000));
  s.rows.push_back(station("disk.DB.arms", "disk", 8, 8.0, 500, 10.0, 1000));
  // MPL slots held 96% of the time: tops the ranking, but it is admission
  // control — the bottleneck pick must skip it and name the gem instead.
  s.rows.push_back(station("mpl.node0", "mpl", 50, 480.0, 1000, 10.0, 1000));
  return s;
}

// The saturated station ranks first among physical stations, is named the
// bottleneck, and sets the asymptotic bound X_max = cap / demand.
TEST(ResourceBottleneck, SaturatedStationRanksFirstAndBoundsThroughput) {
  const obs::ResourceSet s = synthetic_set();
  const obs::BottleneckReport rep = obs::analyze_bottleneck(s);

  ASSERT_FALSE(rep.ranking.empty());
  ASSERT_GE(rep.bottleneck, 0);
  EXPECT_EQ(s.rows[rep.bottleneck].name, "gem");
  EXPECT_DOUBLE_EQ(s.rows[rep.bottleneck].utilization, 0.95);
  // X_max = min_i cap/demand. Since sat_i = commits/(util_i * H) on a shared
  // horizon, the top-utilization station is always the binding bound — here
  // the 96%-held slot pool (50 / 0.48 s), just under the gem's 105.26/s.
  ASSERT_GE(rep.x_max_station, 0);
  EXPECT_EQ(s.rows[rep.x_max_station].name, "mpl.node0");
  EXPECT_DOUBLE_EQ(rep.x_max, 50.0 / 0.48);
  EXPECT_TRUE(rep.within_bound);  // 100 <= 104.17

  // MPL pools are admission control: never the bottleneck, reported apart.
  EXPECT_NE(s.rows[rep.bottleneck].kind, "mpl");
  ASSERT_GE(rep.admission_limited, 0);
  EXPECT_EQ(s.rows[rep.admission_limited].kind, "mpl");

  // What-if x1.5 pushes the gem past saturation; throughput caps at X_max.
  ASSERT_EQ(rep.whatifs.size(), 2u);
  EXPECT_TRUE(rep.whatifs[0].saturated);
  EXPECT_DOUBLE_EQ(rep.whatifs[0].throughput, rep.x_max);

  // Splitting the bottleneck K ways: rho halves each doubling, queue
  // collapses superlinearly (the shards_glt story in closed form).
  ASSERT_EQ(rep.splits.size(), 4u);
  EXPECT_DOUBLE_EQ(rep.splits[0].rho, 0.95);
  EXPECT_DOUBLE_EQ(rep.splits[1].rho, 0.475);
  EXPECT_GT(rep.splits[0].queue_total, 10 * rep.splits[1].queue_total);

  // The report is deterministic and names the bottleneck.
  const std::string text = obs::format_bottleneck_report(s, rep, {});
  EXPECT_EQ(text, obs::format_bottleneck_report(s, rep, {}));
  EXPECT_NE(text.find("bottleneck: gem"), std::string::npos);
  EXPECT_NE(text.find("OK: measured <= bound"), std::string::npos);
}

// A doctored snapshot claiming X above the asymptotic bound is flagged: the
// bound is a theorem on consistent data, so violation means corruption.
TEST(ResourceBottleneck, MeasuredAboveBoundIsFlagged) {
  obs::ResourceSet s = synthetic_set();
  s.throughput = 200.0;  // impossible: gem saturates at ~105/s
  const obs::BottleneckReport rep = obs::analyze_bottleneck(s);
  EXPECT_FALSE(rep.within_bound);
  EXPECT_NE(obs::format_bottleneck_report(s, rep, {}).find("VIOLATED"),
            std::string::npos);
}

// --- system integration ----------------------------------------------------

SystemConfig small_system() {
  SystemConfig cfg = make_debit_credit_config();
  cfg.nodes = 2;
  cfg.warmup = 0.1;
  cfg.measure = 0.4;
  return cfg;
}

// Recording through ObsConfig must not move a single metric — the recorder
// owns no scheduler events, so the schedule is untouched.
TEST(ResourceSystem, RecorderOnOffMetricsIdentical) {
  const RunResult off = run_debit_credit(small_system());
  SystemConfig cfg = small_system();
  cfg.obs.resources = true;
  const RunResult on = run_debit_credit(cfg);

  EXPECT_EQ(on.commits, off.commits);
  EXPECT_EQ(on.aborts, off.aborts);
  EXPECT_DOUBLE_EQ(on.throughput, off.throughput);
  EXPECT_DOUBLE_EQ(on.resp_ms, off.resp_ms);
  EXPECT_DOUBLE_EQ(on.resp_p95_ms, off.resp_p95_ms);
  EXPECT_DOUBLE_EQ(on.cpu_util, off.cpu_util);

  ASSERT_TRUE(on.telemetry && off.telemetry);
  ASSERT_EQ(on.telemetry->detail.size(), off.telemetry->detail.size());
  for (std::size_t i = 0; i < on.telemetry->detail.size(); ++i) {
    const auto& a = on.telemetry->detail[i];
    const auto& b = off.telemetry->detail[i];
    EXPECT_EQ(a.first, b.first);
    if (a.first == "engine.wall_events_per_s") continue;
    EXPECT_DOUBLE_EQ(a.second, b.second) << a.first;
  }

  ASSERT_TRUE(on.telemetry->resources);
  EXPECT_FALSE(off.telemetry->resources);

  // The snapshot covers every station family and reconciles.
  const obs::ResourceSet& set = *on.telemetry->resources;
  EXPECT_GE(set.find("cpu.node0"), 0);
  EXPECT_GE(set.find("cpu.node1"), 0);
  EXPECT_GE(set.find("mpl.node0"), 0);
  EXPECT_GE(set.find("gem"), 0);
  EXPECT_GE(set.find("net"), 0);
  EXPECT_GE(set.find("lock"), 0);
  const auto violations = obs::check_resource_laws(set);
  EXPECT_TRUE(violations.empty())
      << violations.front().resource << ": " << violations.front().what;
}

// Per-shard rows surface in RunResult (satellite: results.v1 "gem_shards").
TEST(ResourceSystem, PerShardRowsMatchShardCount) {
  SystemConfig cfg = small_system();
  const RunResult one = run_debit_credit(cfg);
  ASSERT_EQ(one.gem_shards.size(), 1u);

  cfg.gem.shards = 2;
  cfg.obs.resources = true;
  const RunResult two = run_debit_credit(cfg);
  ASSERT_EQ(two.gem_shards.size(), 2u);
  std::uint64_t total = 0;
  for (const auto& gs : two.gem_shards) total += gs.completions;
  EXPECT_GT(total, 0u);
  ASSERT_TRUE(two.telemetry && two.telemetry->resources);
  const obs::ResourceSet& set = *two.telemetry->resources;
  const int s0 = set.find("gem.shard0");
  const int s1 = set.find("gem.shard1");
  ASSERT_GE(s0, 0);
  ASSERT_GE(s1, 0);
  // RunResult rows and resource rows read the same stations.
  EXPECT_DOUBLE_EQ(two.gem_shards[0].util, set.rows[s0].utilization);
  EXPECT_DOUBLE_EQ(two.gem_shards[1].util, set.rows[s1].utilization);
  EXPECT_EQ(two.gem_shards[0].completions, set.rows[s0].completions);
}

// The acceptance contract: the v1 document is bit-identical between the
// sequential and parallel engines at 1/2/4 workers on a shipped spec.
TEST(ResourceSystem, DocumentIdenticalAcrossEnginesOnShippedSpec) {
  const std::string path =
      std::string(GEMSD_SOURCE_DIR) + "/specs/fig_4_1.ini";
  if (!std::filesystem::exists(path)) GTEST_SKIP() << "specs/ not reachable";
  const SpecDoc doc = parse_spec_doc_file(path);
  ASSERT_FALSE(doc.runs.empty());

  auto run_recorded = [&](sim::EngineKind kind, int workers) {
    SystemConfig cfg = doc.runs[0].cfg;
    cfg.warmup = 0.1;
    cfg.measure = 0.4;
    cfg.obs.resources = true;
    cfg.engine.kind = kind;
    cfg.engine.workers = workers;
    const RunResult r = run_debit_credit(cfg);
    EXPECT_TRUE(r.telemetry && r.telemetry->resources);
    return r.telemetry && r.telemetry->resources
               ? obs::resources_json(*r.telemetry->resources, {})
               : std::string();
  };

  const std::string seq = run_recorded(sim::EngineKind::Sequential, 0);
  ASSERT_FALSE(seq.empty());
  for (const int workers : {1, 2, 4}) {
    EXPECT_EQ(run_recorded(sim::EngineKind::Parallel, workers), seq)
        << "workers " << workers;
  }
}

// --- document / schema -----------------------------------------------------

obs::ResourceSet sample_set() {
  SystemConfig cfg = small_system();
  cfg.obs.resources = true;
  const RunResult r = run_debit_credit(cfg);
  EXPECT_TRUE(r.telemetry && r.telemetry->resources);
  return *r.telemetry->resources;
}

TEST(ResourceJson, ValidatesAgainstCommittedSchema) {
  const obs::ResourceSet s = sample_set();
  obs::JsonValue doc;
  std::string err;
  ASSERT_TRUE(obs::json_parse(
      obs::resources_json(s, {{"git", "\"test\""}}), doc, err))
      << err;

  std::ifstream f(std::string(GEMSD_SOURCE_DIR) +
                  "/schemas/resources.schema.json");
  ASSERT_TRUE(f.good()) << "schemas/ not reachable";
  std::stringstream ss;
  ss << f.rdbuf();
  obs::JsonValue schema;
  ASSERT_TRUE(obs::json_parse(ss.str(), schema, err)) << err;
  std::vector<std::string> problems;
  EXPECT_TRUE(obs::json_schema_validate(schema, doc, problems))
      << (problems.empty() ? "" : problems.front());
}

TEST(ResourceJson, RoundTripIsExact) {
  const obs::ResourceSet s = sample_set();
  ASSERT_FALSE(s.rows.empty());
  const std::string text = obs::resources_json(s, {});
  obs::JsonValue doc;
  std::string err;
  ASSERT_TRUE(obs::json_parse(text, doc, err)) << err;

  obs::ResourceSet q;
  ASSERT_TRUE(obs::resources_from_json(doc, q, err)) << err;
  // Re-serialising the parsed set reproduces the document byte for byte:
  // integers are exact and doubles survive the %.12g round trip here.
  EXPECT_EQ(obs::resources_json(q, {}), text);
  EXPECT_EQ(q.rows.size(), s.rows.size());
  EXPECT_EQ(q.commits, s.commits);
  // Parsed rows still reconcile: the laws survive serialization.
  EXPECT_TRUE(obs::check_resource_laws(q).empty());

  // Rejects a non-resources document.
  obs::JsonValue bogus;
  ASSERT_TRUE(obs::json_parse("{\"schema\":\"other.v1\"}", bogus, err));
  obs::ResourceSet out;
  EXPECT_FALSE(obs::resources_from_json(bogus, out, err));
}

// --- --compare gating (satellite: per-shard rows) --------------------------

std::string sharded_results_doc(double u0, double q0, double u1, double q1) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("schema", "gemsd.results.v1");
  w.key("runs");
  w.begin_array();
  w.begin_object();
  w.kv("config_hash", "abcd");
  w.kv("name", "");
  w.key("metrics");
  w.begin_object();
  w.kv("label", "GEM/NOFORCE/random");
  w.kv("resp_ms", 60.0);
  w.kv("resp_ci_ms", 1.5);
  w.kv("throughput", 1000.0);
  w.key("gem_shards");
  w.begin_array();
  for (const auto& [u, q] : {std::pair{u0, q0}, std::pair{u1, q1}}) {
    w.begin_object();
    w.kv("util", u);
    w.kv("queue_mean", q);
    w.kv("wait_ms", 0.1);
    w.kv("completions", static_cast<std::uint64_t>(1000));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_object();
  w.end_array();
  w.end_object();
  return w.take();
}

obs::JsonValue parse_doc(const std::string& s) {
  obs::JsonValue doc;
  std::string err;
  EXPECT_TRUE(obs::json_parse(s, doc, err)) << err;
  return doc;
}

// A shard whose utilization or queue grows past the band regresses the run
// even when the aggregates (resp, tput) are unchanged.
TEST(ResourceCompare, ShardRegressionFlagsWhenAggregatesAreQuiet) {
  const obs::JsonValue base =
      parse_doc(sharded_results_doc(0.40, 0.50, 0.40, 0.50));

  // Identical shards: quiet.
  const obs::CompareReport same = obs::compare_results(
      base, parse_doc(sharded_results_doc(0.40, 0.50, 0.40, 0.50)), 0.05);
  EXPECT_EQ(same.regressions, 0);
  ASSERT_EQ(same.deltas.size(), 1u);
  EXPECT_EQ(same.deltas[0].shard_regressions, 0);

  // One shard's queue doubles (hot shard after a hash change): flagged.
  const obs::CompareReport hot = obs::compare_results(
      base, parse_doc(sharded_results_doc(0.40, 1.00, 0.40, 0.50)), 0.05);
  EXPECT_EQ(hot.regressions, 1);
  ASSERT_EQ(hot.deltas.size(), 1u);
  EXPECT_EQ(hot.deltas[0].shard_regressions, 1);
  EXPECT_NE(obs::format_compare(hot, 0.05).find("GEM shard"),
            std::string::npos);

  // Within-band wiggle: quiet.
  const obs::CompareReport wiggle = obs::compare_results(
      base, parse_doc(sharded_results_doc(0.41, 0.51, 0.40, 0.50)), 0.05);
  EXPECT_EQ(wiggle.regressions, 0);
}

}  // namespace
