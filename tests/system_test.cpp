// Integration tests: full debit-credit clusters across every combination of
// coupling, update strategy and routing (parameterized), checking the
// invariants that must hold regardless of configuration, plus targeted
// system-level properties (determinism, TPC scaling, stats reset).
#include <gtest/gtest.h>

#include <tuple>

#include "core/experiment.hpp"
#include "core/system.hpp"
#include "workload/trace_generator.hpp"

namespace gemsd {
namespace {

SystemConfig base_cfg() {
  SystemConfig cfg = make_debit_credit_config();
  cfg.warmup = 1.0;
  cfg.measure = 4.0;
  return cfg;
}

using Combo = std::tuple<Coupling, UpdateStrategy, Routing, int /*nodes*/>;

class FullSystem : public ::testing::TestWithParam<Combo> {};

TEST_P(FullSystem, InvariantsHold) {
  const auto [coupling, update, routing, nodes] = GetParam();
  SystemConfig cfg = base_cfg();
  cfg.coupling = coupling;
  cfg.update = update;
  cfg.routing = routing;
  cfg.nodes = nodes;

  System sys(cfg, make_debit_credit_workload(cfg));
  const RunResult r = sys.run();

  // The open system must keep up with the offered load.
  const double offered = cfg.arrival_rate_per_node * nodes;
  EXPECT_GT(r.commits, 100u);
  EXPECT_NEAR(r.throughput, offered, offered * 0.15);

  // Correctness invariants.
  EXPECT_EQ(sys.metrics().coherency_violations.value(), 0u);
  EXPECT_EQ(r.deadlocks, 0u);  // debit-credit orders references canonically
  EXPECT_EQ(r.aborts, 0u);

  // Sanity of rates and ratios.
  EXPECT_GT(r.resp_ms, 10.0);
  EXPECT_LT(r.resp_ms, 500.0);
  EXPECT_GT(r.cpu_util, 0.3);
  EXPECT_LT(r.cpu_util_max, 1.0);
  for (double h : r.hit_ratio) {
    EXPECT_GE(h, 0.0);
    EXPECT_LE(h, 1.0);
  }
  // HISTORY: blocking factor 20 -> 95% hits (every 20th access allocates).
  EXPECT_NEAR(r.hit_ratio[DebitCreditIds::kHistory], 0.95, 0.01);
  // ACCOUNT is far too large to cache.
  EXPECT_LT(r.hit_ratio[DebitCreditIds::kAccount], 0.02);

  if (nodes == 1) {
    EXPECT_EQ(r.messages_per_txn, 0.0);  // no partner to talk to
  }
  if (coupling == Coupling::GemLocking) {
    EXPECT_GT(sys.gem().entry_ops(), 0u);  // GLT in GEM is exercised
    EXPECT_LT(r.gem_util, 0.05);           // paper: < 2% even at 1000 TPS
    EXPECT_DOUBLE_EQ(r.local_lock_fraction, 1.0);
  } else {
    EXPECT_EQ(sys.gem().entry_ops(), 0u);  // loose coupling never touches GEM
    if (nodes > 1 && routing == Routing::Affinity) {
      // Coordinated GLA + routing keeps almost all locks local.
      EXPECT_GT(r.local_lock_fraction, 0.9);
    }
    if (nodes > 1 && routing == Routing::Random) {
      EXPECT_LT(r.local_lock_fraction, 0.7);
      EXPECT_GT(r.messages_per_txn, 1.0);
    }
  }
  if (update == UpdateStrategy::Force) {
    // Three modified pages force-written per transaction.
    EXPECT_NEAR(r.force_writes_per_txn, 3.0, 0.1);
  } else {
    EXPECT_EQ(r.force_writes_per_txn, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    CouplingUpdateRouting, FullSystem,
    ::testing::Combine(
        ::testing::Values(Coupling::GemLocking, Coupling::PrimaryCopy),
        ::testing::Values(UpdateStrategy::NoForce, UpdateStrategy::Force),
        ::testing::Values(Routing::Affinity, Routing::Random),
        ::testing::Values(1, 3)),
    [](const ::testing::TestParamInfo<Combo>& info) {
      std::string s = to_string(std::get<0>(info.param));
      s += "_";
      s += to_string(std::get<1>(info.param));
      s += "_";
      s += to_string(std::get<2>(info.param));
      s += "_N";
      s += std::to_string(std::get<3>(info.param));
      return s;
    });

TEST(SystemDeterminism, SameSeedSameResult) {
  SystemConfig cfg = base_cfg();
  cfg.nodes = 2;
  cfg.coupling = Coupling::PrimaryCopy;
  cfg.routing = Routing::Random;
  const RunResult a = run_debit_credit(cfg);
  const RunResult b = run_debit_credit(cfg);
  EXPECT_EQ(a.commits, b.commits);
  EXPECT_DOUBLE_EQ(a.resp_ms, b.resp_ms);
  EXPECT_DOUBLE_EQ(a.cpu_util, b.cpu_util);
}

TEST(SystemDeterminism, DifferentSeedDifferentSample) {
  SystemConfig cfg = base_cfg();
  cfg.nodes = 2;
  const RunResult a = run_debit_credit(cfg);
  cfg.seed = 777;
  const RunResult b = run_debit_credit(cfg);
  EXPECT_NE(a.resp_ms, b.resp_ms);
}

TEST(System, GemAllocationEliminatesBranchTellerDiskIO) {
  SystemConfig cfg = base_cfg();
  cfg.nodes = 2;
  cfg.update = UpdateStrategy::Force;
  cfg.routing = Routing::Random;
  cfg.partitions[DebitCreditIds::kBranchTeller].storage = StorageKind::Gem;
  System sys(cfg, make_debit_credit_workload(cfg));
  const RunResult r = sys.run();
  EXPECT_GT(r.commits, 100u);
  EXPECT_EQ(sys.storage().group(DebitCreditIds::kBranchTeller), nullptr);
  EXPECT_GT(sys.gem().page_ops(), 0u);  // B/T reads + force-writes go to GEM
}

TEST(System, NonVolatileDiskCacheAbsorbsForceWrites) {
  SystemConfig cfg = base_cfg();
  cfg.nodes = 2;
  cfg.update = UpdateStrategy::Force;
  cfg.routing = Routing::Random;
  cfg.partitions[DebitCreditIds::kBranchTeller].storage =
      StorageKind::DiskNvCache;
  System sys(cfg, make_debit_credit_workload(cfg));
  const RunResult r = sys.run();
  EXPECT_GT(r.commits, 100u);
  auto* grp = sys.storage().group(DebitCreditIds::kBranchTeller);
  ASSERT_NE(grp, nullptr);
  ASSERT_TRUE(grp->has_cache());
  // With all B/T pages cached, reads hit the shared cache.
  EXPECT_GT(grp->cache()->hits(), 0u);
}

TEST(System, TpcScalingGrowsDatabaseWithNodes) {
  SystemConfig cfg = make_debit_credit_config();
  cfg.nodes = 7;
  EXPECT_EQ(cfg.partition_pages(DebitCreditIds::kBranchTeller), 700);
  EXPECT_EQ(cfg.partition_pages(DebitCreditIds::kAccount), 7000000);
}

TEST(System, StatsResetClearsWarmupArtifacts) {
  SystemConfig cfg = base_cfg();
  cfg.nodes = 1;
  System sys(cfg, make_debit_credit_workload(cfg));
  sys.start_source();
  sys.run_until(1.0);
  EXPECT_GT(sys.metrics().commits.value(), 0u);
  sys.reset_stats();
  EXPECT_EQ(sys.metrics().commits.value(), 0u);
  sys.run_until(2.0);
  EXPECT_GT(sys.metrics().commits.value(), 0u);
}

TEST(System, ThroughputScalesLinearlyWithNodesForAffinity) {
  SystemConfig cfg = base_cfg();
  cfg.routing = Routing::Affinity;
  cfg.nodes = 1;
  const RunResult r1 = run_debit_credit(cfg);
  cfg.nodes = 4;
  const RunResult r4 = run_debit_credit(cfg);
  EXPECT_NEAR(r4.throughput / r1.throughput, 4.0, 0.5);
  // Paper headline: response times stay ~constant under affinity routing.
  EXPECT_NEAR(r4.resp_ms, r1.resp_ms, r1.resp_ms * 0.25);
}

TEST(System, MplLimitsConcurrency) {
  SystemConfig cfg = base_cfg();
  cfg.nodes = 1;
  cfg.mpl = 2;  // artificially tight: input queue must form
  System sys(cfg, make_debit_credit_workload(cfg));
  const RunResult r = sys.run();
  EXPECT_GT(sys.metrics().mpl_wait.mean(), 0.0);
  EXPECT_GT(r.brk_queue_ms, 0.0);
}

TEST(System, TraceWorkloadEndToEnd) {
  // Small synthetic trace through the full trace harness path.
  sim::Rng trng(11);
  workload::SyntheticTraceConfig tc;
  tc.transactions = 1500;
  const workload::Trace trace = workload::generate_synthetic_trace(tc, trng);
  SystemConfig cfg = make_trace_config(trace);
  cfg.nodes = 2;
  cfg.coupling = Coupling::PrimaryCopy;
  cfg.routing = Routing::Affinity;
  cfg.warmup = 2.0;
  cfg.measure = 6.0;
  System sys(cfg, make_trace_workload(cfg, trace));
  const RunResult r = sys.run();
  EXPECT_GT(r.commits, 100u);
  EXPECT_EQ(sys.metrics().coherency_violations.value(), 0u);
  EXPECT_GT(r.local_lock_fraction, 0.5);
  EXPECT_GT(r.resp_norm_ms, 0.0);
}

}  // namespace
}  // namespace gemsd
