// Property-based tests: random operation sequences checked against reference
// models and invariants — the lock table against a brute-force compatibility
// checker, the LRU map against an ordered-list reference, the workload
// allocation heuristics against balance bounds across node counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <map>
#include <set>

#include "cc/lock_table.hpp"
#include "core/lru.hpp"
#include "sim/random.hpp"
#include "workload/trace.hpp"
#include "workload/trace_generator.hpp"

namespace gemsd {
namespace {

// ---------- LockTable random schedules ----------

struct LockFuzz : ::testing::TestWithParam<int> {};

TEST_P(LockFuzz, GrantedSetsAlwaysCompatibleAndNoLostWakeups) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()));
  cc::LockTable lt;

  struct TxnState {
    std::map<std::int64_t, LockMode> held;  // page -> mode
    bool waiting = false;
  };
  std::map<TxnId, TxnState> txns;
  for (TxnId t = 1; t <= 8; ++t) txns[t];

  int grants_fired = 0;
  const auto check_granted_compat = [&] {
    // Reconstruct granted sets from our shadow state and assert pairwise
    // compatibility page by page.
    std::map<std::int64_t, std::vector<LockMode>> by_page;
    for (const auto& [id, st] : txns) {
      for (const auto& [p, m] : st.held) by_page[p].push_back(m);
    }
    for (const auto& [p, modes] : by_page) {
      for (std::size_t i = 0; i < modes.size(); ++i) {
        for (std::size_t j = i + 1; j < modes.size(); ++j) {
          ASSERT_TRUE(lock_compatible(modes[i], modes[j]))
              << "incompatible granted pair on page " << p;
        }
      }
    }
  };

  for (int step = 0; step < 3000; ++step) {
    const TxnId t = static_cast<TxnId>(rng.uniform_int(1, 8));
    auto& st = txns[t];
    if (st.waiting) continue;  // parked until its grant fires

    if (!st.held.empty() && rng.bernoulli(0.4)) {
      // Release everything this txn holds (commit).
      for (const auto& [p, m] : st.held) lt.release(PageId{0, p}, t);
      st.held.clear();
      // Grants may have fired for other txns; sync handled via callbacks.
      check_granted_compat();
      continue;
    }
    const std::int64_t page = rng.uniform_int(0, 5);
    const LockMode mode = static_cast<LockMode>(rng.uniform_int(0, 2));
    const auto it = st.held.find(page);
    if (it != st.held.end() && lock_covers(it->second, mode)) continue;

    auto res = lt.acquire(
        PageId{0, page}, t, 0, mode, [&txns, &grants_fired, t, page, mode] {
          ++grants_fired;
          txns[t].waiting = false;
          txns[t].held[page] = mode;
        });
    if (res == cc::LockTable::Outcome::Granted) {
      st.held[page] = mode;
    } else if (cc::creates_deadlock(lt, t)) {
      lt.cancel_wait(PageId{0, page}, t);
      // Abort: release everything.
      for (const auto& [p, m] : st.held) lt.release(PageId{0, p}, t);
      st.held.clear();
    } else {
      st.waiting = true;
    }
    check_granted_compat();
  }

  // Drain: force-release everything; every waiter must be woken or have
  // been cancelled (no lost wakeups / stuck entries).
  for (int round = 0; round < 10; ++round) {
    for (auto& [id, st] : txns) {
      if (st.waiting) continue;
      for (const auto& [p, m] : st.held) lt.release(PageId{0, p}, id);
      st.held.clear();
    }
  }
  for (auto& [id, st] : txns) {
    if (st.waiting) {
      // Its grant must fire as soon as holders released above.
      for (const auto& [p2, m2] : st.held) lt.release(PageId{0, p2}, id);
    }
  }
  EXPECT_GT(grants_fired, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LockFuzz, ::testing::Values(1, 2, 3, 4, 5));

// ---------- LRU map vs reference model ----------

struct LruFuzz : ::testing::TestWithParam<int> {};

TEST_P(LruFuzz, MatchesReferenceModel) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977);
  LruMap<int> m(8);
  std::list<std::pair<std::int64_t, int>> ref;  // front = MRU

  const auto ref_find = [&](std::int64_t k) {
    return std::find_if(ref.begin(), ref.end(),
                        [&](const auto& e) { return e.first == k; });
  };

  for (int step = 0; step < 5000; ++step) {
    const std::int64_t key = rng.uniform_int(0, 19);
    const int op = static_cast<int>(rng.uniform_int(0, 3));
    const PageId p{0, key};
    switch (op) {
      case 0: {  // touch
        int* v = m.touch(p);
        auto it = ref_find(key);
        if (it == ref.end()) {
          ASSERT_EQ(v, nullptr);
        } else {
          ASSERT_NE(v, nullptr);
          ASSERT_EQ(*v, it->second);
          ref.splice(ref.begin(), ref, it);
        }
        break;
      }
      case 1: {  // insert (evicting LRU first if full)
        if (m.contains(p)) break;
        if (m.full()) {
          const auto victim = m.lru();
          ASSERT_TRUE(victim.has_value());
          ASSERT_EQ(victim->first.page, ref.back().first);
          m.erase(victim->first);
          ref.pop_back();
        }
        const int val = static_cast<int>(rng.uniform_int(0, 1000));
        m.insert(p, val);
        ref.emplace_front(key, val);
        break;
      }
      case 2: {  // erase
        const bool erased = m.erase(p);
        auto it = ref_find(key);
        ASSERT_EQ(erased, it != ref.end());
        if (it != ref.end()) ref.erase(it);
        break;
      }
      case 3: {  // peek
        const int* v = m.peek(p);
        auto it = ref_find(key);
        ASSERT_EQ(v != nullptr, it != ref.end());
        if (v) {
          ASSERT_EQ(*v, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(m.size(), ref.size());
  }
  // Final order check, MRU -> LRU.
  auto rit = ref.begin();
  for (const auto& [k, v] : m) {
    ASSERT_EQ(k.page, rit->first);
    ASSERT_EQ(v, rit->second);
    ++rit;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LruFuzz, ::testing::Values(1, 2, 3));

// ---------- allocation heuristics balance across node counts ----------

struct HeuristicSweep : ::testing::TestWithParam<int> {};

TEST_P(HeuristicSweep, RoutingBalancesLoadWithinBound) {
  const int nodes = GetParam();
  sim::Rng rng(7);
  const auto trace = workload::generate_synthetic_trace({}, rng);
  const auto prof = workload::profile_trace(trace);
  const auto share = workload::make_affinity_routing(prof, nodes);

  std::vector<double> load(static_cast<std::size_t>(nodes), 0.0);
  double total = 0;
  for (std::size_t ty = 0; ty < share.size(); ++ty) {
    for (int n = 0; n < nodes; ++n) {
      load[static_cast<std::size_t>(n)] +=
          share[ty][static_cast<std::size_t>(n)] * prof.type_load[ty];
    }
    total += prof.type_load[ty];
  }
  const double capacity = total / nodes;
  for (double l : load) {
    EXPECT_LT(l, capacity * 1.25) << "node overload at N=" << nodes;
    EXPECT_GT(l, capacity * 0.5) << "node starvation at N=" << nodes;
  }
}

TEST_P(HeuristicSweep, GlaCoversEveryFileExactlyOnce) {
  const int nodes = GetParam();
  sim::Rng rng(7);
  const auto trace = workload::generate_synthetic_trace({}, rng);
  const auto prof = workload::profile_trace(trace);
  const auto share = workload::make_affinity_routing(prof, nodes);
  const auto gla = workload::make_gla_assignment(prof, share, nodes);
  ASSERT_EQ(gla.size(), static_cast<std::size_t>(trace.num_files));
  for (NodeId g : gla) {
    EXPECT_GE(g, 0);
    EXPECT_LT(g, nodes);
  }
  // Every node should hold authority over something when there are enough
  // files to go around.
  if (nodes <= trace.num_files) {
    std::set<NodeId> used(gla.begin(), gla.end());
    EXPECT_EQ(used.size(), static_cast<std::size_t>(nodes));
  }
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, HeuristicSweep,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

}  // namespace
}  // namespace gemsd
