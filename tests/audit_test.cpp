// Online invariant auditors (--audit, src/obs/audit.*): they run clean on
// every tier-1 coupling/update combination, they perturb nothing (metrics
// are identical with audits on and off), and a violated invariant is
// recorded with its trace cursor context instead of passing silently.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <tuple>
#include <vector>

#include "core/experiment.hpp"
#include "core/system.hpp"
#include "obs/audit.hpp"
#include "sim/random.hpp"
#include "workload/workload.hpp"

namespace gemsd {
namespace {

using workload::PageRef;
using workload::TxnSpec;

SystemConfig quick_config(Coupling c, UpdateStrategy u) {
  SystemConfig cfg = make_debit_credit_config();
  cfg.nodes = 2;
  cfg.coupling = c;
  cfg.update = u;
  cfg.routing = Routing::Random;
  cfg.warmup = 1.0;
  cfg.measure = 3.0;
  cfg.seed = 42;
  return cfg;
}

// ------------------------------------------------------------- clean runs

using Combo = std::tuple<Coupling, UpdateStrategy>;

class AuditClean : public ::testing::TestWithParam<Combo> {};

// The auditor is fail-fast by default: a violated invariant would abort the
// process, so merely completing the run is the assertion.
TEST_P(AuditClean, DebitCreditRunCompletesWithAuditsOn) {
  const auto [c, u] = GetParam();
  SystemConfig cfg = quick_config(c, u);
  cfg.obs.audit = true;
  const RunResult r = run_debit_credit(cfg);
  EXPECT_GT(r.commits, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Couplings, AuditClean,
    ::testing::Values(  // the lock engine mandates FORCE
        Combo{Coupling::GemLocking, UpdateStrategy::NoForce},
        Combo{Coupling::GemLocking, UpdateStrategy::Force},
        Combo{Coupling::PrimaryCopy, UpdateStrategy::NoForce},
        Combo{Coupling::PrimaryCopy, UpdateStrategy::Force},
        Combo{Coupling::LockEngine, UpdateStrategy::Force}),
    [](const ::testing::TestParamInfo<Combo>& info) {
      std::string s = to_string(std::get<0>(info.param));
      s += "_";
      s += to_string(std::get<1>(info.param));
      return s;
    });

// -------------------------------------------------------- zero perturbation

TEST(Audit, MetricsAreIdenticalWithAuditsOnAndOff) {
  SystemConfig off = quick_config(Coupling::GemLocking, UpdateStrategy::NoForce);
  SystemConfig on = off;
  on.obs.audit = true;
  const RunResult a = run_debit_credit(off);
  const RunResult b = run_debit_credit(on);
  // Bit-identical, not merely close: auditors read simulation state but must
  // never advance simulated time or consume randomness.
  EXPECT_EQ(a.resp_ms, b.resp_ms);
  EXPECT_EQ(a.resp_ci_ms, b.resp_ci_ms);
  EXPECT_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.commits, b.commits);
  EXPECT_EQ(a.aborts, b.aborts);
  EXPECT_EQ(a.deadlocks, b.deadlocks);
  EXPECT_EQ(a.brk_cpu_ms, b.brk_cpu_ms);
  EXPECT_EQ(a.brk_cpu_wait_ms, b.brk_cpu_wait_ms);
  EXPECT_EQ(a.brk_io_ms, b.brk_io_ms);
  EXPECT_EQ(a.brk_cc_ms, b.brk_cc_ms);
  EXPECT_EQ(a.brk_queue_ms, b.brk_queue_ms);
}

// ------------------------------------------------- checks actually executed

class ModGla : public workload::GlaMap {
 public:
  explicit ModGla(int nodes) : nodes_(nodes) {}
  NodeId gla(PageId p) const override {
    return static_cast<NodeId>(p.page % nodes_);
  }

 private:
  int nodes_;
};

struct NullGen : workload::WorkloadGenerator {
  TxnSpec next(sim::Rng&) override { return {}; }
  int num_types() const override { return 1; }
};

TEST(Audit, HostileRunExecutesManyChecksAndFindsNothing) {
  SystemConfig cfg;
  cfg.nodes = 3;
  cfg.coupling = Coupling::PrimaryCopy;
  cfg.update = UpdateStrategy::NoForce;
  cfg.mpl = 100;
  cfg.partitions.resize(1);
  auto& pc = cfg.partitions[0];
  pc.name = "T";
  pc.pages_per_unit = 64;
  pc.locked = true;
  pc.disks_per_unit = 8;
  cfg.obs.audit = true;

  System::Workload wl;
  wl.gen = std::make_unique<NullGen>();
  wl.router = std::make_unique<workload::RandomRouter>(cfg.nodes);
  wl.gla = std::make_unique<ModGla>(cfg.nodes);
  System sys(cfg, std::move(wl));
  ASSERT_NE(sys.auditor(), nullptr);
  sys.auditor()->set_fail_fast(false);

  sim::Rng rng(999);
  for (int i = 0; i < 300; ++i) {
    TxnSpec t;
    const int len = static_cast<int>(rng.uniform_int(1, 5));
    for (int k = 0; k < len; ++k) {
      t.refs.push_back(PageRef{PageId{0, rng.uniform_int(0, 63)},
                               rng.bernoulli(0.4)});
    }
    sys.submit(static_cast<NodeId>(rng.uniform_int(0, cfg.nodes - 1)), t);
  }
  sys.scheduler().run_all();

  EXPECT_GT(sys.auditor()->checks(), 0u);
  EXPECT_TRUE(sys.auditor()->violations().empty());
}

TEST(Audit, AuditorDisabledByDefault) {
  SystemConfig cfg = quick_config(Coupling::GemLocking, UpdateStrategy::NoForce);
  System::Workload wl;
  wl.gen = std::make_unique<NullGen>();
  wl.router = std::make_unique<workload::RandomRouter>(cfg.nodes);
  System sys(cfg, std::move(wl));
  EXPECT_EQ(sys.auditor(), nullptr);
}

// --------------------------------------------------------- violation path

TEST(Audit, ViolationIsRecordedWithContext) {
  obs::Auditor au;
  au.set_fail_fast(false);
  au.check(true, "phase-sum", 1.0, 7, 0, "fine");
  au.check(false, "phase-sum", 2.5, 42, 1, "sum %g exceeds rt %g", 3.0, 2.0);
  EXPECT_EQ(au.checks(), 2u);
  ASSERT_EQ(au.violations().size(), 1u);
  const obs::AuditViolation& v = au.violations()[0];
  EXPECT_EQ(v.check, "phase-sum");
  EXPECT_EQ(v.what, "sum 3 exceeds rt 2");
  EXPECT_EQ(v.t, 2.5);
  EXPECT_EQ(v.txn, 42u);
  EXPECT_EQ(v.node, 1);
  au.clear();
  EXPECT_EQ(au.checks(), 0u);
  EXPECT_TRUE(au.violations().empty());
}

}  // namespace
}  // namespace gemsd
