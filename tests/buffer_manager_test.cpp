// Unit tests for the per-node buffer manager: LRU replacement, dirty
// write-back with servable in-flight copies, install/commit transitions,
// in-flight read merging, GEM synchronous I/O accounting, and the unlocked
// (HISTORY) access path.
#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/metrics.hpp"
#include "node/buffer_manager.hpp"
#include "node/cpu.hpp"
#include "sim/scheduler.hpp"
#include "storage/storage_manager.hpp"

namespace gemsd::node {
namespace {

using sim::Scheduler;
using sim::Task;

struct Fixture {
  SystemConfig cfg = make_debit_credit_config();
  Scheduler sched;
  sim::Rng rng{1};
  Metrics metrics{3};
  std::unique_ptr<storage::StorageManager> storage;
  std::unique_ptr<CpuSet> cpu;
  std::unique_ptr<BufferManager> bm;

  explicit Fixture(int buffer_pages = 4) {
    cfg.nodes = 1;
    cfg.buffer_pages = buffer_pages;
    storage = std::make_unique<storage::StorageManager>(sched, rng, cfg);
    cpu = std::make_unique<CpuSet>(sched, cfg.cpu, "cpu");
    bm = std::make_unique<BufferManager>(sched, cfg, 0, *cpu, *storage,
                                         metrics);
  }
};

PageId bt(std::int64_t n) { return PageId{DebitCreditIds::kBranchTeller, n}; }

TEST(BufferManager, InstallAndLookup) {
  Fixture f;
  f.bm->install(bt(1), 5, false);
  EXPECT_TRUE(f.bm->has_copy(bt(1)));
  EXPECT_EQ(f.bm->cached_seqno(bt(1)), 5u);
  EXPECT_FALSE(f.bm->frame_dirty(bt(1)));
  EXPECT_FALSE(f.bm->has_copy(bt(2)));
}

TEST(BufferManager, LruEvictionOrder) {
  Fixture f(2);
  f.bm->install(bt(1), 0, false);
  f.bm->install(bt(2), 0, false);
  f.bm->touch(bt(1));            // 2 becomes LRU
  f.bm->install(bt(3), 0, false);
  EXPECT_TRUE(f.bm->has_copy(bt(1)));
  EXPECT_FALSE(f.bm->has_copy(bt(2)));
  EXPECT_TRUE(f.bm->has_copy(bt(3)));
}

TEST(BufferManager, DirtyEvictionWritesBackAndStaysServable) {
  Fixture f(2);
  bool hook_fired = false;
  SeqNo hook_seq = 0;
  f.bm->set_writeback_hook([&](NodeId n, PageId p, SeqNo s) {
    EXPECT_EQ(n, 0);
    EXPECT_EQ(p, bt(1));
    hook_seq = s;
    hook_fired = true;
  });
  f.bm->install(bt(1), 7, true);
  f.bm->install(bt(2), 0, false);
  f.bm->install(bt(3), 0, false);  // evicts dirty page 1
  // The in-flight copy remains visible until the write completes.
  EXPECT_TRUE(f.bm->has_copy(bt(1)));
  EXPECT_EQ(f.bm->cached_seqno(bt(1)), 7u);
  f.sched.run_all();
  EXPECT_TRUE(hook_fired);
  EXPECT_EQ(hook_seq, 7u);
  EXPECT_FALSE(f.bm->has_copy(bt(1)));
  EXPECT_EQ(f.metrics.evict_writes.value(), 1u);
}

TEST(BufferManager, HitReframesFromWriteback) {
  Fixture f(2);
  f.bm->install(bt(1), 3, true);
  f.bm->install(bt(2), 0, false);
  f.bm->install(bt(3), 0, false);  // page 1 -> write-back table
  f.bm->hit(bt(1));                // re-frame as clean
  EXPECT_TRUE(f.bm->has_copy(bt(1)));
  f.sched.run_all();
  // After write-back completes the re-framed clean copy survives.
  EXPECT_TRUE(f.bm->has_copy(bt(1)));
  EXPECT_FALSE(f.bm->frame_dirty(bt(1)));
}

Task<void> read_task(BufferManager& bm, Txn* t, PageId p, SeqNo s) {
  co_await bm.read_from_storage(t, p, s);
}

TEST(BufferManager, ReadFromStorageInstallsCleanAtSeqno) {
  Fixture f(64);
  Txn t;
  t.node = 0;
  for (int i = 0; i < 20; ++i) {
    f.sched.spawn(read_task(*f.bm, &t, bt(i), 9));
    f.sched.run_all();
  }
  EXPECT_EQ(f.bm->cached_seqno(bt(1)), 9u);
  EXPECT_FALSE(f.bm->frame_dirty(bt(1)));
  EXPECT_GT(t.t_io, 20 * 5e-3);  // paid ~16.4 ms per disk read on average
  EXPECT_EQ(f.metrics.misses[0].value(), 20u);
}

TEST(BufferManager, ConcurrentReadsMergeIntoOnePhysicalIO) {
  Fixture f;
  Txn a, b;
  f.sched.spawn(read_task(*f.bm, &a, bt(1), 1));
  f.sched.spawn(read_task(*f.bm, &b, bt(1), 1));
  f.sched.run_all();
  auto* grp = f.storage->group(DebitCreditIds::kBranchTeller);
  EXPECT_EQ(grp->reads(), 1u);              // one device read
  EXPECT_EQ(f.metrics.misses[0].value(), 2u);  // but two logical misses
}

TEST(BufferManager, MarkDirtyAndCommitTransitions) {
  Fixture f;
  f.bm->install(bt(1), 4, false);
  f.bm->mark_dirty(bt(1));
  EXPECT_TRUE(f.bm->frame_dirty(bt(1)));
  f.bm->commit_dirty(bt(1), 5, /*stays_dirty=*/true);
  EXPECT_EQ(f.bm->cached_seqno(bt(1)), 5u);
  EXPECT_TRUE(f.bm->frame_dirty(bt(1)));
  f.bm->shipped_copy(bt(1));
  EXPECT_FALSE(f.bm->frame_dirty(bt(1)));
}

TEST(BufferManager, CommitDirtyReinstallsEvictedFrame) {
  Fixture f(2);
  f.bm->install(bt(1), 1, true);
  f.bm->install(bt(2), 0, false);
  f.bm->install(bt(3), 0, false);  // evicts bt(1) into write-back
  f.bm->commit_dirty(bt(1), 2, true);
  EXPECT_TRUE(f.bm->has_copy(bt(1)));
  EXPECT_EQ(f.bm->cached_seqno(bt(1)), 2u);
  EXPECT_TRUE(f.bm->frame_dirty(bt(1)));
}

Task<void> force_task(BufferManager& bm, Txn* t, PageId p) {
  co_await bm.force_write(t, p);
}

TEST(BufferManager, ForceWriteCleansFrame) {
  Fixture f;
  Txn t;
  f.bm->install(bt(1), 1, true);
  f.sched.spawn(force_task(*f.bm, &t, bt(1)));
  f.sched.run_all();
  EXPECT_FALSE(f.bm->frame_dirty(bt(1)));
  EXPECT_EQ(f.metrics.force_writes.value(), 1u);
  EXPECT_GT(t.t_io, 0.0);
  EXPECT_EQ(f.storage->group(DebitCreditIds::kBranchTeller)->writes(), 1u);
}

Task<void> log_task(BufferManager& bm, Txn* t) { co_await bm.write_log(t); }

TEST(BufferManager, LogWriteUsesLogDevice) {
  Fixture f;
  Txn t;
  for (int i = 0; i < 20; ++i) {
    f.sched.spawn(log_task(*f.bm, &t));
    f.sched.run_all();
  }
  EXPECT_EQ(f.storage->log_group(0).writes(), 20u);
  EXPECT_GT(t.t_io, 20 * 2e-3);  // ~6.4 ms class per log write
  EXPECT_LT(t.t_io, 20 * 30e-3);
}

Task<void> unlocked_task(BufferManager& bm, Txn* t, PageId p, bool w,
                         bool fresh) {
  co_await bm.access_unlocked(*t, p, w, fresh);
}

TEST(BufferManager, UnlockedFreshPageIsMissWithoutIO) {
  Fixture f;
  Txn t;
  const PageId h{DebitCreditIds::kHistory, 100};
  f.sched.spawn(unlocked_task(*f.bm, &t, h, true, /*fresh=*/true));
  f.sched.run_all();
  EXPECT_EQ(f.metrics.misses[DebitCreditIds::kHistory].value(), 1u);
  EXPECT_TRUE(f.bm->frame_dirty(h));
  EXPECT_DOUBLE_EQ(t.t_io, 0.0);  // no read for a newly allocated page
  EXPECT_EQ(t.dirty_unlocked.size(), 1u);
  // Subsequent appends to the same page are hits.
  f.sched.spawn(unlocked_task(*f.bm, &t, h, true, false));
  f.sched.run_all();
  EXPECT_EQ(f.metrics.hits[DebitCreditIds::kHistory].value(), 1u);
}

TEST(BufferManager, GemResidentPartitionReadsAreSynchronousAndFast) {
  Fixture f;
  f.cfg.partitions[DebitCreditIds::kBranchTeller].storage = StorageKind::Gem;
  // Rebuild the storage routing with the new allocation.
  f.storage = std::make_unique<storage::StorageManager>(f.sched, f.rng, f.cfg);
  f.bm = std::make_unique<BufferManager>(f.sched, f.cfg, 0, *f.cpu, *f.storage,
                                         f.metrics);
  Txn t;
  f.sched.spawn(read_task(*f.bm, &t, bt(1), 1));
  f.sched.run_all();
  EXPECT_LT(t.t_io, 1e-3);  // 300 instr + 50 us, far below any disk time
  EXPECT_EQ(f.storage->gem().page_ops(), 1u);
}

}  // namespace
}  // namespace gemsd::node
