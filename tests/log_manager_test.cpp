// Tests for the log manager: default one-write-per-commit behaviour, group
// commit batching (window flush, full-group flush), durability ordering, and
// the system-level effect on a saturated log device.
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "node/log_manager.hpp"
#include "workload/workload.hpp"

namespace gemsd::node {
namespace {

struct Fixture {
  SystemConfig cfg = make_debit_credit_config();
  sim::Scheduler sched;
  sim::Rng rng{1};
  std::unique_ptr<storage::StorageManager> storage;
  std::unique_ptr<CpuSet> cpu;
  std::unique_ptr<LogManager> log;

  explicit Fixture(bool group, int max = 8, double window = 2e-3) {
    cfg.nodes = 1;
    cfg.log_group_commit = group;
    cfg.log_group_max = max;
    cfg.log_group_window = window;
    storage = std::make_unique<storage::StorageManager>(sched, rng, cfg);
    cpu = std::make_unique<CpuSet>(sched, cfg.cpu, "cpu");
    log = std::make_unique<LogManager>(sched, cfg, 0, *cpu, *storage);
  }
};

sim::Task<void> committer(LogManager& lm, double* done_at,
                          sim::Scheduler& s) {
  co_await lm.commit_write();
  *done_at = s.now();
}

TEST(LogManager, DefaultOneWritePerCommit) {
  Fixture f(false);
  double a = 0, b = 0;
  f.sched.spawn(committer(*f.log, &a, f.sched));
  f.sched.spawn(committer(*f.log, &b, f.sched));
  f.sched.run_all();
  EXPECT_EQ(f.log->appends(), 2u);
  EXPECT_EQ(f.log->flushes(), 2u);
  EXPECT_EQ(f.storage->log_group(0).writes(), 2u);
}

TEST(LogManager, GroupCommitBatchesConcurrentCommitters) {
  Fixture f(true);
  double t[5] = {0};
  for (int i = 0; i < 5; ++i) f.sched.spawn(committer(*f.log, &t[i], f.sched));
  f.sched.run_all();
  EXPECT_EQ(f.log->appends(), 5u);
  EXPECT_EQ(f.log->flushes(), 1u);  // one physical write for all five
  EXPECT_EQ(f.storage->log_group(0).writes(), 1u);
  EXPECT_NEAR(f.log->batching_factor(), 5.0, 1e-9);
  // Members become durable at (or after) the window + write time.
  for (int i = 1; i < 5; ++i) EXPECT_GE(t[i], 2e-3);
}

TEST(LogManager, FullGroupFlushesBeforeWindow) {
  Fixture f(true, /*max=*/3, /*window=*/50e-3);
  double t[3] = {0};
  for (int i = 0; i < 3; ++i) f.sched.spawn(committer(*f.log, &t[i], f.sched));
  f.sched.run_all();
  EXPECT_EQ(f.log->flushes(), 1u);
  // The full group flushed immediately — members finish far before the
  // 50 ms window.
  EXPECT_LT(t[1], 40e-3);
  EXPECT_LT(t[2], 40e-3);
}

sim::Task<void> late_committer(LogManager& lm, sim::Scheduler& s, double at,
                               double* done) {
  co_await s.delay(at);
  co_await lm.commit_write();
  *done = s.now();
}

TEST(LogManager, LateArrivalsFormTheNextGroup) {
  Fixture f(true, 8, 1e-3);
  double a = 0, b = 0;
  f.sched.spawn(committer(*f.log, &a, f.sched));
  f.sched.spawn(late_committer(*f.log, f.sched, 30e-3, &b));
  f.sched.run_all();
  EXPECT_EQ(f.log->flushes(), 2u);  // two separate groups
  EXPECT_GT(b, 30e-3);
}

TEST(LogManager, SystemLevelGroupCommitRelievesSaturatedLogDisk) {
  // One log disk at 200 TPS x ~6.4 ms would be oversaturated (rho ~ 1.3);
  // group commit keeps the node alive.
  auto run = [](bool group) {
    SystemConfig cfg = make_debit_credit_config();
    cfg.nodes = 1;
    cfg.arrival_rate_per_node = 200.0;
    cfg.cpu.processors = 8;  // CPU is not the bottleneck under study
    cfg.log_disks_per_node = 1;
    cfg.log_group_commit = group;
    cfg.warmup = 2;
    cfg.measure = 8;
    return run_debit_credit(cfg);
  };
  const RunResult without = run(false);
  const RunResult with = run(true);
  EXPECT_GT(with.throughput, 190.0);         // keeps up with the offered load
  EXPECT_LT(with.resp_ms, without.resp_ms);  // no log queueing collapse
  EXPECT_GT(without.resp_ms, 2 * with.resp_ms);
}

TEST(LogManager, BatchingFactorReported) {
  SystemConfig cfg = make_debit_credit_config();
  cfg.nodes = 1;
  cfg.arrival_rate_per_node = 200.0;
  cfg.cpu.processors = 8;
  cfg.log_disks_per_node = 1;
  cfg.log_group_commit = true;
  cfg.warmup = 2;
  cfg.measure = 6;
  System sys(cfg, make_debit_credit_workload(cfg));
  sys.run();
  EXPECT_GT(sys.log(0).batching_factor(), 1.2);
}

}  // namespace
}  // namespace gemsd::node
