// Unit tests for the LRU map shared by main-memory buffers and disk caches.
#include <gtest/gtest.h>

#include "core/lru.hpp"

namespace gemsd {
namespace {

PageId pg(std::int64_t n) { return PageId{0, n}; }

TEST(LruMap, InsertAndTouchPromotes) {
  LruMap<int> m(3);
  m.insert(pg(1), 10);
  m.insert(pg(2), 20);
  m.insert(pg(3), 30);
  EXPECT_EQ(m.lru()->first, pg(1));
  EXPECT_EQ(*m.touch(pg(1)), 10);
  EXPECT_EQ(m.lru()->first, pg(2));  // 1 became MRU
}

TEST(LruMap, PeekDoesNotPromote) {
  LruMap<int> m(2);
  m.insert(pg(1), 1);
  m.insert(pg(2), 2);
  EXPECT_EQ(*m.peek(pg(1)), 1);
  EXPECT_EQ(m.lru()->first, pg(1));  // unchanged
}

TEST(LruMap, TouchMissingReturnsNull) {
  LruMap<int> m(2);
  EXPECT_EQ(m.touch(pg(9)), nullptr);
  EXPECT_EQ(m.peek(pg(9)), nullptr);
  EXPECT_FALSE(m.erase(pg(9)));
}

TEST(LruMap, EraseRemoves) {
  LruMap<int> m(2);
  m.insert(pg(1), 1);
  EXPECT_TRUE(m.erase(pg(1)));
  EXPECT_FALSE(m.contains(pg(1)));
  EXPECT_EQ(m.size(), 0u);
}

TEST(LruMap, FullReportsCapacity) {
  LruMap<int> m(2);
  EXPECT_FALSE(m.full());
  m.insert(pg(1), 1);
  m.insert(pg(2), 2);
  EXPECT_TRUE(m.full());
}

TEST(LruMap, FindLruIfScansFromColdEnd) {
  LruMap<int> m(4);
  for (int i = 1; i <= 4; ++i) m.insert(pg(i), i);
  // LRU order (cold->hot): 1,2,3,4. First even value from the cold end is 2.
  auto found = m.find_lru_if([](int v) { return v % 2 == 0; }, 4);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, pg(2));
  // With a scan limit of 1 only page 1 is examined -> no match.
  EXPECT_FALSE(m.find_lru_if([](int v) { return v % 2 == 0; }, 1).has_value());
}

TEST(LruMap, IterationIsMruToLru) {
  LruMap<int> m(3);
  m.insert(pg(1), 1);
  m.insert(pg(2), 2);
  m.touch(pg(1));
  std::vector<std::int64_t> order;
  for (const auto& [k, v] : m) order.push_back(k.page);
  EXPECT_EQ(order, (std::vector<std::int64_t>{1, 2}));
}

TEST(PageIdHash, DistinctAcrossPartitions) {
  std::hash<PageId> h;
  EXPECT_NE(h(PageId{0, 5}), h(PageId{1, 5}));
  EXPECT_EQ(h(PageId{2, 7}), h(PageId{2, 7}));
  EXPECT_NE((PageId{0, 5}), (PageId{1, 5}));
}

}  // namespace
}  // namespace gemsd
