// Time-series recorder tests (obs/timeseries.hpp, --timeseries): the sketch
// merge algebra (associative, commutative), the coarsening bound (window
// count stays under cap, totals survive, width doubles), pro-rata folding of
// polled counters, the gemsd.timeseries.v1 document (schema, round trip,
// CSV), the MSER warm-up estimator and batch-means drift gate on synthetic
// series, and the two contracts everything rests on — the exported document
// is bit-identical across engine kinds and worker counts on a shipped spec,
// and the metrics are untouched with the recorder on or off. Suite names
// start with "TimeSeries" so the TSan CI job covers the parallel-engine path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/config_file.hpp"
#include "core/experiment.hpp"
#include "obs/json.hpp"
#include "obs/telemetry.hpp"
#include "obs/timeseries.hpp"
#include "sim/stats.hpp"

#ifndef GEMSD_SOURCE_DIR
#define GEMSD_SOURCE_DIR "."
#endif

namespace {

using namespace gemsd;

// --- sketch algebra -------------------------------------------------------

obs::TsSketch sketch_of(const sim::LogBuckets& lb,
                        std::initializer_list<double> xs) {
  obs::TsSketch s;
  for (double x : xs) s.add(lb, x);
  return s;
}

TEST(TimeSeriesSketch, MergeIsCommutativeAndAssociative) {
  const sim::LogBuckets lb;
  const obs::TsSketch a = sketch_of(lb, {0.001, 0.02, 0.02, 5.0});
  const obs::TsSketch b = sketch_of(lb, {1e-9, 0.5});  // underflow included
  const obs::TsSketch c = sketch_of(lb, {200.0});      // overflow included

  obs::TsSketch ab = a;
  ab.merge_from(b);
  obs::TsSketch ba = b;
  ba.merge_from(a);
  EXPECT_EQ(ab, ba);

  obs::TsSketch ab_c = ab;
  ab_c.merge_from(c);
  obs::TsSketch bc = b;
  bc.merge_from(c);
  obs::TsSketch a_bc = a;
  a_bc.merge_from(bc);
  EXPECT_EQ(ab_c, a_bc);

  EXPECT_EQ(ab_c.count, 7u);
  EXPECT_DOUBLE_EQ(ab_c.sum_s, 0.001 + 0.02 + 0.02 + 5.0 + 1e-9 + 0.5 + 200);

  // Merging into an empty sketch is the identity on the other operand.
  obs::TsSketch empty;
  empty.merge_from(a);
  EXPECT_EQ(empty, a);
  obs::TsSketch a2 = a;
  a2.merge_from(obs::TsSketch{});
  EXPECT_EQ(a2, a);
}

TEST(TimeSeriesSketch, QuantilesMatchHistogramLayout) {
  const sim::LogBuckets lb;
  obs::TsSketch s;
  sim::Histogram h;
  for (int i = 1; i <= 100; ++i) {
    const double x = 0.001 * i;
    s.add(lb, x);
    h.add(x);
  }
  // Same bucket layout, same interpolation: quantiles agree exactly.
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(s.quantile(lb, q), h.quantile(q)) << "q=" << q;
  }
}

// --- recorder: coarsening and pro-rata folds ------------------------------

TEST(TimeSeriesRecorder, CoarseningBoundsWindowsAndKeepsTotals) {
  obs::TimeSeriesRecorder rec(0.5, 4, 1);  // cap at 4 windows
  // 40 commits across [0, 20): 80 base windows' worth of span.
  for (int i = 0; i < 40; ++i) {
    rec.on_commit(0.5 * i + 0.25, 0, 0.01);
  }
  EXPECT_LE(rec.window_count(), 4u);
  EXPECT_GT(rec.coarsenings(), 0);
  // Width doubled once per coarsening; 20 s / 4 windows needs >= 8 s widths.
  EXPECT_DOUBLE_EQ(rec.window_s(), 0.5 * std::pow(2.0, rec.coarsenings()));
  EXPECT_GE(rec.window_s() * static_cast<double>(rec.window_count()), 20.0);

  const obs::TsSeries s = rec.snapshot(20.0);
  std::uint64_t commits = 0, resp_count = 0;
  double resp_sum = 0;
  for (const obs::TsWindow& w : s.windows) {
    commits += w.commits;
    resp_count += w.resp.count;
    resp_sum += w.resp.sum_s;
    ASSERT_EQ(w.nodes.size(), 1u);
    EXPECT_EQ(w.nodes[0].commits, w.commits);
  }
  EXPECT_EQ(commits, 40u);       // coarsening loses resolution, never data
  EXPECT_EQ(resp_count, 40u);
  EXPECT_NEAR(resp_sum, 0.4, 1e-12);
  EXPECT_EQ(s.coarsenings, rec.coarsenings());
  EXPECT_DOUBLE_EQ(s.base_window_s, 0.5);
  EXPECT_DOUBLE_EQ(s.window_s, rec.window_s());
}

TEST(TimeSeriesRecorder, PollDeltasDistributedProRata) {
  obs::TimeSeriesRecorder rec(1.0, 64, 1);
  std::uint64_t events = 0;
  double cpu = 0;
  rec.set_poller([&](obs::TsCumulative& c) {
    c.events = events;
    c.cpu_busy_s = cpu;
  });

  // The first hook stays in window 0 (no poll); the hook at t=2.5 lands in
  // window 2 and polls, distributing the 200 events / 2.0 busy-s accumulated
  // over [0, 2.5) as 40% / 40% / 20% by time overlap.
  rec.on_commit(0.5, 0, 0.01);
  events = 200;
  cpu = 2.0;
  rec.on_commit(2.5, 0, 0.01);
  rec.fold(3.0);  // zero delta: nothing moves after the poll

  const obs::TsSeries s = rec.snapshot(3.0);
  ASSERT_GE(s.windows.size(), 3u);
  EXPECT_NEAR(s.windows[0].events, 80.0, 1e-9);
  EXPECT_NEAR(s.windows[1].events, 80.0, 1e-9);
  EXPECT_NEAR(s.windows[2].events, 40.0, 1e-9);
  EXPECT_NEAR(s.windows[0].cpu_busy_s, 0.8, 1e-9);
  EXPECT_NEAR(s.windows[1].cpu_busy_s, 0.8, 1e-9);
  EXPECT_NEAR(s.windows[2].cpu_busy_s, 0.4, 1e-9);
  // Exact hook-fed placement is untouched by the distribution.
  EXPECT_EQ(s.windows[0].commits, 1u);
  EXPECT_EQ(s.windows[2].commits, 1u);
}

TEST(TimeSeriesRecorder, RebaseSurvivesCounterReset) {
  obs::TimeSeriesRecorder rec(1.0, 64, 1);
  std::uint64_t events = 0;
  rec.set_poller([&](obs::TsCumulative& c) { c.events = events; });

  rec.on_commit(0.5, 0, 0.01);
  events = 100;
  rec.fold(1.0);  // window 0 absorbs all 100 events of [0, 1.0)

  // Stats reset: counters zeroed, recorder rebased (not folded again).
  events = 0;
  rec.rebase(1.0);
  rec.mark_stats_start(1.0);
  events = 60;
  rec.on_commit(2.5, 0, 0.01);
  rec.fold(3.0);

  const obs::TsSeries s = rec.snapshot(3.0);
  ASSERT_GE(s.windows.size(), 3u);
  // Nothing double-counted, nothing lost to the unsigned wrap guard: window
  // 0 keeps its pre-reset 100, [1.0, 2.5) splits the post-reset 60 as 40/20.
  EXPECT_NEAR(s.windows[0].events, 100.0, 1e-9);
  EXPECT_NEAR(s.windows[1].events, 40.0, 1e-9);
  EXPECT_NEAR(s.windows[2].events, 20.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.stats_start, 1.0);
}

// --- document / CSV -------------------------------------------------------

SystemConfig small_system() {
  SystemConfig cfg = make_debit_credit_config();
  cfg.nodes = 2;
  cfg.warmup = 0.1;
  cfg.measure = 0.4;
  return cfg;
}

obs::TsSeries sample_series() {
  SystemConfig cfg = small_system();
  cfg.obs.timeseries = true;
  cfg.obs.timeseries_window = 0.05;
  const RunResult r = run_debit_credit(cfg);
  EXPECT_TRUE(r.telemetry && r.telemetry->timeseries);
  return *r.telemetry->timeseries;
}

TEST(TimeSeriesJson, ValidatesAgainstCommittedSchema) {
  const obs::TsSeries s = sample_series();
  obs::JsonValue doc;
  std::string err;
  ASSERT_TRUE(obs::json_parse(
      obs::timeseries_json(s, {{"git", "\"test\""}}), doc, err))
      << err;

  std::ifstream f(std::string(GEMSD_SOURCE_DIR) +
                  "/schemas/timeseries.schema.json");
  ASSERT_TRUE(f.good()) << "schemas/ not reachable";
  std::stringstream ss;
  ss << f.rdbuf();
  obs::JsonValue schema;
  ASSERT_TRUE(obs::json_parse(ss.str(), schema, err)) << err;
  std::vector<std::string> problems;
  EXPECT_TRUE(obs::json_schema_validate(schema, doc, problems))
      << (problems.empty() ? "" : problems.front());
}

TEST(TimeSeriesJson, RoundTripIsExact) {
  const obs::TsSeries s = sample_series();
  ASSERT_FALSE(s.windows.empty());
  const std::string text = obs::timeseries_json(s, {});
  obs::JsonValue doc;
  std::string err;
  ASSERT_TRUE(obs::json_parse(text, doc, err)) << err;

  obs::TsSeries q;
  ASSERT_TRUE(obs::timeseries_from_json(doc, q, err)) << err;
  // Re-serialising the parsed series reproduces the document byte for byte:
  // integers are exact and doubles survive the %.12g round trip here.
  EXPECT_EQ(obs::timeseries_json(q, {}), text);
  EXPECT_EQ(q.windows.size(), s.windows.size());
  EXPECT_EQ(q.nodes, s.nodes);

  // Rejects a non-timeseries document.
  obs::JsonValue bogus;
  ASSERT_TRUE(obs::json_parse("{\"schema\":\"other.v1\"}", bogus, err));
  obs::TsSeries out;
  EXPECT_FALSE(obs::timeseries_from_json(bogus, out, err));
}

TEST(TimeSeriesJson, CsvHasHeaderAndOneRowPerWindow) {
  const obs::TsSeries s = sample_series();
  const std::string csv = obs::timeseries_csv(s);
  std::stringstream ss(csv);
  std::string line;
  ASSERT_TRUE(std::getline(ss, line));
  EXPECT_EQ(line.substr(0, 10), "t0_s,t1_s,");
  const std::size_t cols =
      static_cast<std::size_t>(std::count(line.begin(), line.end(), ',')) + 1;
  std::size_t rows = 0;
  while (std::getline(ss, line)) {
    ++rows;
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(line.begin(), line.end(), ',')) + 1, cols)
        << "row " << rows;
  }
  EXPECT_EQ(rows, s.windows.size());
}

// --- analyzer: MSER warm-up + drift gate ----------------------------------

TEST(TimeSeriesAnalyze, MserFlagsAShortWarmupCut) {
  // Cold start: 10 windows ramping up, then 40 at steady state.
  std::vector<std::uint64_t> commits;
  for (int i = 0; i < 10; ++i) commits.push_back(10 + 9 * i);
  for (int i = 0; i < 40; ++i) commits.push_back(100);

  obs::TsSeries s;
  s.base_window_s = s.window_s = 1.0;
  s.nodes = 1;
  s.end = static_cast<double>(commits.size());
  s.windows.resize(commits.size());
  for (std::size_t i = 0; i < commits.size(); ++i) {
    s.windows[i].commits = commits[i];
    s.windows[i].nodes.resize(1);
  }

  s.stats_start = 2.0;  // cuts into the ramp
  const obs::TsReport bad = obs::analyze_timeseries(s);
  EXPECT_FALSE(bad.warmup_safe);
  EXPECT_GT(bad.mser_warmup_s, 2.0);
  EXPECT_LE(bad.mser_warmup_s, 11.0);  // lands at the end of the ramp

  s.stats_start = 12.0;  // comfortably past it
  const obs::TsReport good = obs::analyze_timeseries(s);
  EXPECT_TRUE(good.warmup_safe);
  // The steady tail itself must not read as drift.
  EXPECT_FALSE(good.drifting);
  EXPECT_EQ(good.meas_windows, 38u);
}

TEST(TimeSeriesAnalyze, DriftGateFiresOnTrendNotOnNoise) {
  // Steady with mild alternation: no drift.
  std::vector<std::uint64_t> steady;
  for (int i = 0; i < 60; ++i) {
    steady.push_back(100 + (i % 2 ? 2 : 0));
  }
  obs::TsSeries s;
  s.base_window_s = s.window_s = 1.0;
  s.nodes = 1;
  s.stats_start = 0.0;
  s.end = 60.0;
  s.windows.resize(steady.size());
  for (std::size_t i = 0; i < steady.size(); ++i) {
    s.windows[i].commits = steady[i];
    s.windows[i].nodes.resize(1);
  }
  const obs::TsReport ok = obs::analyze_timeseries(s);
  EXPECT_FALSE(ok.drifting);
  EXPECT_GE(ok.throughput.batches, 4);

  // Strong monotone throughput decay: the gate must fire.
  for (std::size_t i = 0; i < s.windows.size(); ++i) {
    s.windows[i].commits = 200 - 3 * i;
  }
  const obs::TsReport drift = obs::analyze_timeseries(s);
  EXPECT_TRUE(drift.drifting);
  EXPECT_TRUE(drift.throughput.drifting);
  EXPECT_LT(drift.throughput.slope_per_s, 0.0);
  EXPECT_GT(std::abs(drift.throughput.t_stat), 3.5);

  // The report and the verdict line are deterministic and agree.
  const std::string rep = obs::format_ts_report(s, drift);
  EXPECT_EQ(rep, obs::format_ts_report(s, drift));
  EXPECT_NE(rep.find("DRIFTING"), std::string::npos);
}

TEST(TimeSeriesAnalyze, ShortSeriesIsInconclusiveNotDrifting) {
  obs::TsSeries s;
  s.base_window_s = s.window_s = 1.0;
  s.nodes = 1;
  s.end = 3.0;
  s.windows.resize(3);
  for (auto& w : s.windows) {
    w.commits = 10;
    w.nodes.resize(1);
  }
  const obs::TsReport r = obs::analyze_timeseries(s);
  EXPECT_EQ(r.throughput.batches, 0);
  EXPECT_FALSE(r.drifting);
}

// --- System integration ---------------------------------------------------

// Recording through ObsConfig must not move a single metric — the recorder
// owns no scheduler events, so the schedule is untouched.
TEST(TimeSeriesSystem, RecorderOnOffMetricsIdentical) {
  const RunResult off = run_debit_credit(small_system());
  SystemConfig cfg = small_system();
  cfg.obs.timeseries = true;
  cfg.obs.timeseries_window = 0.05;
  const RunResult on = run_debit_credit(cfg);

  EXPECT_EQ(on.commits, off.commits);
  EXPECT_EQ(on.aborts, off.aborts);
  EXPECT_DOUBLE_EQ(on.throughput, off.throughput);
  EXPECT_DOUBLE_EQ(on.resp_ms, off.resp_ms);
  EXPECT_DOUBLE_EQ(on.resp_p95_ms, off.resp_p95_ms);
  EXPECT_DOUBLE_EQ(on.cpu_util, off.cpu_util);

  // The whole detail dump matches, except the wall-clock rate which differs
  // between any two processes (and run-to-run).
  ASSERT_TRUE(on.telemetry && off.telemetry);
  ASSERT_EQ(on.telemetry->detail.size(), off.telemetry->detail.size());
  for (std::size_t i = 0; i < on.telemetry->detail.size(); ++i) {
    const auto& a = on.telemetry->detail[i];
    const auto& b = off.telemetry->detail[i];
    EXPECT_EQ(a.first, b.first);
    if (a.first == "engine.wall_events_per_s") continue;
    EXPECT_DOUBLE_EQ(a.second, b.second) << a.first;
  }

  ASSERT_TRUE(on.telemetry->timeseries);
  EXPECT_FALSE(off.telemetry->timeseries);
  std::uint64_t ts_commits = 0;
  for (const obs::TsWindow& w : on.telemetry->timeseries->windows) {
    ts_commits += w.commits;
  }
  // The series spans t=0, so its commit total covers warm-up too.
  EXPECT_GE(ts_commits, on.commits);
}

// The acceptance contract: the v1 document is bit-identical between the
// sequential and parallel engines at 1/2/4 workers on a shipped spec.
TEST(TimeSeriesSystem, DocumentIdenticalAcrossEnginesOnShippedSpec) {
  const std::string path =
      std::string(GEMSD_SOURCE_DIR) + "/specs/fig_4_1.ini";
  if (!std::filesystem::exists(path)) GTEST_SKIP() << "specs/ not reachable";
  const SpecDoc doc = parse_spec_doc_file(path);
  ASSERT_FALSE(doc.runs.empty());

  auto run_recorded = [&](sim::EngineKind kind, int workers) {
    SystemConfig cfg = doc.runs[0].cfg;
    cfg.warmup = 0.1;
    cfg.measure = 0.4;
    cfg.obs.timeseries = true;
    cfg.obs.timeseries_window = 0.05;
    cfg.engine.kind = kind;
    cfg.engine.workers = workers;
    const RunResult r = run_debit_credit(cfg);
    EXPECT_TRUE(r.telemetry && r.telemetry->timeseries);
    return r.telemetry && r.telemetry->timeseries
               ? obs::timeseries_json(*r.telemetry->timeseries, {})
               : std::string();
  };

  const std::string seq = run_recorded(sim::EngineKind::Sequential, 0);
  ASSERT_FALSE(seq.empty());
  for (const int workers : {1, 2, 4}) {
    EXPECT_EQ(run_recorded(sim::EngineKind::Parallel, workers), seq)
        << "workers " << workers;
  }
}

// --- warm-up defaults (satellite) -----------------------------------------

// The single source of truth is SystemConfig::warmup = 5 s; BenchOptions
// mirrors it, --quick lowers it to 2 s (measure 6 s), and later flags win in
// either direction. Pinned so the two defaults can't silently diverge again.
TEST(TimeSeriesWarmup, DefaultsAgreeAndQuickOverridesBothWays) {
  EXPECT_DOUBLE_EQ(SystemConfig{}.warmup, 5.0);
  EXPECT_DOUBLE_EQ(BenchOptions{}.warmup, 5.0);
  EXPECT_DOUBLE_EQ(BenchOptions{}.measure, 20.0);

  BenchOptions quick;
  EXPECT_EQ(try_parse_bench_args({"--quick"}, quick), "");
  EXPECT_DOUBLE_EQ(quick.warmup, 2.0);
  EXPECT_DOUBLE_EQ(quick.measure, 6.0);

  BenchOptions restored;
  EXPECT_EQ(try_parse_bench_args({"--quick", "--warmup=5"}, restored), "");
  EXPECT_DOUBLE_EQ(restored.warmup, 5.0);  // later flag wins
  EXPECT_DOUBLE_EQ(restored.measure, 6.0);

  BenchOptions overridden;
  EXPECT_EQ(try_parse_bench_args({"--warmup=1", "--quick"}, overridden), "");
  EXPECT_DOUBLE_EQ(overridden.warmup, 2.0);  // --quick came later
  EXPECT_DOUBLE_EQ(overridden.measure, 6.0);
}

}  // namespace
