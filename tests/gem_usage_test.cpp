// Tests for the additional GEM usage forms of Section 2: storage-based
// message exchange, the GEM-resident global page cache (and write buffer),
// and local read authorizations for GEM locking.
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "net/comm.hpp"
#include "storage/gem_page_cache.hpp"
#include "workload/workload.hpp"

namespace gemsd {
namespace {

using workload::PageRef;
using workload::TxnSpec;

constexpr PartitionId kT = 0;
PageId pg(std::int64_t n) { return PageId{kT, n}; }

SystemConfig small_cfg(Coupling c) {
  SystemConfig cfg;
  cfg.nodes = 2;
  cfg.coupling = c;
  cfg.update = UpdateStrategy::NoForce;
  cfg.buffer_pages = 50;
  cfg.partitions.resize(1);
  auto& pc = cfg.partitions[0];
  pc.name = "T";
  pc.pages_per_unit = 1000;
  pc.locked = true;
  pc.disks_per_unit = 4;
  return cfg;
}

class SplitGla : public workload::GlaMap {
 public:
  NodeId gla(PageId p) const override { return p.page < 500 ? 0 : 1; }
};
struct NullGen : workload::WorkloadGenerator {
  TxnSpec next(sim::Rng&) override { return {}; }
  int num_types() const override { return 1; }
};
System make_system(const SystemConfig& cfg) {
  System::Workload wl;
  wl.gen = std::make_unique<NullGen>();
  wl.router = std::make_unique<workload::RandomRouter>(cfg.nodes);
  wl.gla = std::make_unique<SplitGla>();
  return System(cfg, std::move(wl));
}

TxnSpec write_txn(std::initializer_list<std::int64_t> pages) {
  TxnSpec t;
  for (auto p : pages) t.refs.push_back(PageRef{pg(p), true});
  return t;
}
TxnSpec read_txn(std::initializer_list<std::int64_t> pages) {
  TxnSpec t;
  for (auto p : pages) t.refs.push_back(PageRef{pg(p), false});
  return t;
}

// --- storage-based communication ---

TEST(GemMessaging, RemoteLockGoesThroughGemNotNetwork) {
  auto cfg = small_cfg(Coupling::PrimaryCopy);
  cfg.comm.transport = MsgTransport::GemStore;
  auto sys = make_system(cfg);
  sys.submit(1, write_txn({7}));  // GLA(7)=0: remote request + grant + release
  sys.scheduler().run_all();
  EXPECT_EQ(sys.metrics().commits.value(), 1u);
  EXPECT_EQ(sys.network().short_count() + sys.network().long_count(), 0u);
  EXPECT_GT(sys.gem().entry_ops() + sys.gem().page_ops(), 0u);
  // Messages were still counted (they just travelled across GEM).
  EXPECT_GE(sys.metrics().lock_remote.value(), 1u);
}

TEST(GemMessaging, ProtocolBehaviourUnchanged) {
  // The same scenario over both transports must produce identical logical
  // results (ownership, versions) — only costs differ.
  for (MsgTransport t : {MsgTransport::Network, MsgTransport::GemStore}) {
    auto cfg = small_cfg(Coupling::PrimaryCopy);
    cfg.comm.transport = t;
    auto sys = make_system(cfg);
    sys.submit(1, write_txn({7}));
    sys.scheduler().run_all();
    sys.submit(1, read_txn({7}));
    sys.scheduler().run_all();
    EXPECT_EQ(sys.metrics().commits.value(), 2u);
    EXPECT_EQ(sys.protocol().directory().seqno(pg(7)), 1u);
    EXPECT_EQ(sys.protocol().directory().owner(pg(7)), 0);
    EXPECT_EQ(sys.metrics().coherency_violations.value(), 0u);
  }
}

TEST(GemMessaging, FasterThanNetworkForRemoteLocks) {
  // Response time with GEM messaging must beat the network transport for a
  // remote-lock-heavy load.
  double resp[2] = {0, 0};
  int i = 0;
  for (MsgTransport t : {MsgTransport::Network, MsgTransport::GemStore}) {
    auto cfg = small_cfg(Coupling::PrimaryCopy);
    cfg.comm.transport = t;
    auto sys = make_system(cfg);
    for (int k = 0; k < 50; ++k) {
      sys.submit(1, write_txn({7 + k}));  // every lock is remote (GLA = 0)
      sys.scheduler().run_all();          // sequential: isolate the latency
    }
    resp[i++] = sys.metrics().response.mean();
  }
  EXPECT_LT(resp[1], resp[0]);
}

// --- GEM page cache / write buffer ---

TEST(GemPageCacheUnit, HitsPromoteAndDirtyVictimsSurface) {
  storage::GemPageCache c(2);
  EXPECT_FALSE(c.read_hit(pg(1)));
  c.install(pg(1), true);
  EXPECT_TRUE(c.read_hit(pg(1)));
  c.install(pg(2), false);
  c.install(pg(3), false);  // clean 2 evicted first, dirty 1 kept
  EXPECT_TRUE(c.contains(pg(1)));
  EXPECT_FALSE(c.contains(pg(2)));
  // Make both resident pages dirty: the next insert must surface a victim.
  c.install(pg(3), true);
  auto ev = c.install(pg(4), false);
  EXPECT_TRUE(ev.any);
  EXPECT_EQ(ev.page, pg(1));  // LRU dirty page
  c.destaged(pg(4));          // no-op for a clean page; exercise the path
  EXPECT_EQ(c.hits(), 1u);
}

TEST(GemPageCacheSystem, AbsorbsForceWritesAndServesMisses) {
  auto cfg = small_cfg(Coupling::GemLocking);
  cfg.update = UpdateStrategy::Force;
  cfg.partitions[0].storage = StorageKind::DiskGemCache;
  cfg.partitions[0].gem_cache_pages = 100;
  auto sys = make_system(cfg);
  sys.submit(0, write_txn({7}));
  sys.scheduler().run_all();
  // Force-write went into GEM and destaged to disk asynchronously.
  EXPECT_GT(sys.gem().page_ops(), 0u);
  EXPECT_EQ(sys.storage().group(kT)->writes(), 1u);  // the destage
  EXPECT_TRUE(sys.storage().gem_cache(kT)->contains(pg(7)));
  // A remote miss is now served from the GEM cache, not the disk arm.
  const auto disk_reads_before = sys.storage().group(kT)->reads();
  sys.submit(1, read_txn({7}));
  sys.scheduler().run_all();
  EXPECT_EQ(sys.storage().group(kT)->reads(), disk_reads_before);
  EXPECT_GT(sys.storage().gem_cache(kT)->hits(), 0u);
  EXPECT_EQ(sys.metrics().coherency_violations.value(), 0u);
}

TEST(GemPageCacheSystem, MissStagesPageForLaterReaders) {
  auto cfg = small_cfg(Coupling::GemLocking);
  cfg.partitions[0].storage = StorageKind::DiskGemCache;
  cfg.partitions[0].gem_cache_pages = 100;
  auto sys = make_system(cfg);
  sys.submit(0, read_txn({5}));
  sys.scheduler().run_all();
  EXPECT_EQ(sys.storage().group(kT)->reads(), 1u);  // disk read on first miss
  EXPECT_TRUE(sys.storage().gem_cache(kT)->contains(pg(5)));
  sys.submit(1, read_txn({5}));
  sys.scheduler().run_all();
  EXPECT_EQ(sys.storage().group(kT)->reads(), 1u);  // served from GEM cache
}

// --- GEM local read authorizations ---

TEST(GemReadAuth, SecondReadSkipsGlt) {
  auto cfg = small_cfg(Coupling::GemLocking);
  cfg.gem_read_authorizations = true;
  auto sys = make_system(cfg);
  sys.submit(0, read_txn({7}));
  sys.scheduler().run_all();
  const auto entry_ops_after_first = sys.gem().entry_ops();
  EXPECT_GT(entry_ops_after_first, 0u);
  sys.submit(0, read_txn({7}));
  sys.scheduler().run_all();
  // The second acquire was processed by the local lock manager under the
  // read authorization (no GLT access at acquire time).
  EXPECT_EQ(sys.metrics().lock_auth_local.value(), 1u);
  EXPECT_EQ(sys.metrics().lock_local.value(), 1u);
}

TEST(GemReadAuth, WriterRevokesAndReadGoesBackToGlt) {
  auto cfg = small_cfg(Coupling::GemLocking);
  cfg.gem_read_authorizations = true;
  auto sys = make_system(cfg);
  sys.submit(1, read_txn({7}));
  sys.scheduler().run_all();
  EXPECT_TRUE(sys.protocol().directory().has_read_auth(pg(7), 1));
  sys.submit(0, write_txn({7}));
  sys.scheduler().run_all();
  EXPECT_EQ(sys.metrics().revocations.value(), 1u);
  EXPECT_FALSE(sys.protocol().directory().has_read_auth(pg(7), 1));
  // The next read from node 1 must detect the new version.
  sys.submit(1, read_txn({7}));
  sys.scheduler().run_all();
  EXPECT_EQ(sys.metrics().coherency_violations.value(), 0u);
  EXPECT_EQ(sys.buffer(1).cached_seqno(pg(7)), 1u);
}

TEST(GemReadAuth, CoherentUnderInterleavedReadWrite) {
  auto cfg = small_cfg(Coupling::GemLocking);
  cfg.gem_read_authorizations = true;
  auto sys = make_system(cfg);
  for (int i = 0; i < 30; ++i) {
    sys.submit(i % 2, i % 3 == 0 ? write_txn({9}) : read_txn({9}));
  }
  sys.scheduler().run_all();
  EXPECT_EQ(sys.metrics().commits.value(), 30u);
  EXPECT_EQ(sys.metrics().coherency_violations.value(), 0u);
  EXPECT_EQ(sys.protocol().directory().seqno(pg(9)), 10u);  // 10 writers
}

}  // namespace
}  // namespace gemsd
