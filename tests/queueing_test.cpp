// Tests for the closed-form queueing module AND simulator cross-validation:
// the DES kernel must agree with M/M/k theory on single stations, and the
// full debit-credit system must land near the analytic baseline under
// affinity routing (where queueing theory applies).
#include <gtest/gtest.h>

#include "core/analytic.hpp"
#include "core/system.hpp"
#include "sim/queueing.hpp"
#include "sim/random.hpp"
#include "sim/resource.hpp"
#include "sim/scheduler.hpp"
#include "sim/stats.hpp"

namespace gemsd {
namespace {

using sim::erlang_c;
using sim::mg1_wait;
using sim::mm1_response;
using sim::mmk_response;
using sim::mmk_wait;

TEST(Queueing, ErlangCKnownValues) {
  // Single server: C(1, rho) = rho.
  EXPECT_NEAR(erlang_c(1, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(erlang_c(1, 0.9), 0.9, 1e-12);
  // Zero load never waits.
  EXPECT_NEAR(erlang_c(4, 0.0), 0.0, 1e-12);
  // Textbook value: C(2, 1.0) = 1/3.
  EXPECT_NEAR(erlang_c(2, 1.0), 1.0 / 3.0, 1e-9);
}

TEST(Queueing, ErlangCRejectsUnstable) {
  EXPECT_THROW(erlang_c(2, 2.0), std::invalid_argument);
  EXPECT_THROW(erlang_c(0, 0.5), std::invalid_argument);
  EXPECT_THROW(mmk_wait(200.0, 0.01, 1), std::invalid_argument);
}

TEST(Queueing, Mm1MatchesClassicFormula) {
  // W = s / (1 - rho)
  EXPECT_NEAR(mm1_response(50.0, 0.01), 0.01 / (1 - 0.5), 1e-12);
  EXPECT_NEAR(mm1_response(90.0, 0.01), 0.01 / (1 - 0.9), 1e-9);
}

TEST(Queueing, Mg1DeterministicHalvesWait) {
  const double exp_wait = mg1_wait(50.0, 0.01, 1.0);
  const double det_wait = mg1_wait(50.0, 0.01, 0.0);
  EXPECT_NEAR(det_wait, exp_wait / 2.0, 1e-12);
  // M/M/1 consistency: P-K with scv=1 equals M/M/1 wait.
  EXPECT_NEAR(exp_wait, mm1_response(50.0, 0.01) - 0.01, 1e-12);
}

// --- DES kernel vs theory ---

sim::Task<void> poisson_source(sim::Scheduler& s, sim::Rng& rng,
                               sim::Resource& r, double lambda,
                               double mean_service, sim::MeanStat* resp) {
  for (;;) {
    co_await s.delay(rng.exponential(1.0 / lambda));
    s.spawn([](sim::Scheduler& sc, sim::Rng& rg, sim::Resource& rs, double ms,
               sim::MeanStat* out) -> sim::Task<void> {
      const double t0 = sc.now();
      co_await rs.use(rg.exponential(ms));
      out->add(sc.now() - t0);
    }(s, rng, r, mean_service, resp));
  }
}

TEST(Queueing, SimulatorMatchesMM1) {
  sim::Scheduler s;
  sim::Rng rng(5);
  sim::Resource r(s, 1, "station");
  sim::MeanStat resp;
  const double lambda = 70.0, service = 0.01;  // rho = 0.7
  s.spawn(poisson_source(s, rng, r, lambda, service, &resp));
  s.run_until(400.0);
  EXPECT_GT(resp.count(), 20000u);
  EXPECT_NEAR(resp.mean(), mm1_response(lambda, service), 0.004);
  EXPECT_NEAR(r.utilization(), 0.70, 0.03);
}

TEST(Queueing, SimulatorMatchesMM4) {
  sim::Scheduler s;
  sim::Rng rng(6);
  sim::Resource r(s, 4, "station");
  sim::MeanStat resp;
  const double lambda = 300.0, service = 0.01;  // rho = 0.75 on 4 servers
  s.spawn(poisson_source(s, rng, r, lambda, service, &resp));
  s.run_until(200.0);
  EXPECT_NEAR(resp.mean(), mmk_response(lambda, service, 4), 0.002);
  EXPECT_NEAR(r.utilization(), 0.75, 0.03);
}

// --- analytic debit-credit baseline vs full simulator ---

TEST(Analytic, PredictsAffinityNoforceWithin15Percent) {
  SystemConfig cfg = make_debit_credit_config();
  cfg.nodes = 4;
  cfg.routing = Routing::Affinity;
  cfg.update = UpdateStrategy::NoForce;
  cfg.warmup = 3;
  cfg.measure = 12;
  const RunResult r = run_debit_credit(cfg);
  const auto pred = predict_debit_credit(cfg, r.hit_ratio[0]);
  EXPECT_NEAR(r.resp_ms, pred.total * 1e3, pred.total * 1e3 * 0.15);
}

TEST(Analytic, PredictsForcePenalty) {
  SystemConfig cfg = make_debit_credit_config();
  cfg.nodes = 2;
  cfg.routing = Routing::Affinity;
  cfg.warmup = 3;
  cfg.measure = 12;
  SystemConfig nf_cfg = cfg;
  nf_cfg.update = UpdateStrategy::NoForce;
  const RunResult nf = run_debit_credit(nf_cfg);
  SystemConfig fo_cfg = cfg;
  fo_cfg.update = UpdateStrategy::Force;
  const RunResult fo = run_debit_credit(fo_cfg);
  const auto pnf = predict_debit_credit(nf_cfg, nf.hit_ratio[0]);
  const auto pfo = predict_debit_credit(fo_cfg, fo.hit_ratio[0]);
  // The measured FORCE-NOFORCE gap must be in the analytic ballpark.
  const double measured_gap = fo.resp_ms - nf.resp_ms;
  const double predicted_gap = (pfo.total - pnf.total) * 1e3;
  EXPECT_NEAR(measured_gap, predicted_gap, 10.0);
  EXPECT_GT(measured_gap, 5.0);
}

TEST(Analytic, GemResidenceRemovesBtReadFromPrediction) {
  SystemConfig cfg = make_debit_credit_config();
  const auto disk = predict_debit_credit(cfg, 0.0);
  cfg.partitions[DebitCreditIds::kBranchTeller].storage = StorageKind::Gem;
  const auto gem = predict_debit_credit(cfg, 0.0);
  EXPECT_GT(disk.bt_read, 10e-3);
  EXPECT_LT(gem.bt_read, 1e-3);
}

TEST(Stats, BatchMeansConvergesOnIidData) {
  sim::BatchMeans bm(100);
  sim::Rng rng(7);
  for (int i = 0; i < 100000; ++i) bm.add(rng.exponential(2.0));
  EXPECT_EQ(bm.batches(), 1000u);
  EXPECT_NEAR(bm.mean(), 2.0, 0.05);
  EXPECT_GT(bm.half_width_95(), 0.0);
  EXPECT_LT(bm.half_width_95(), 0.05);
  // The CI must actually cover the true mean here.
  EXPECT_LT(std::abs(bm.mean() - 2.0), 3 * bm.half_width_95());
}

TEST(Stats, BatchMeansNeedsTwoBatches) {
  sim::BatchMeans bm(100);
  for (int i = 0; i < 150; ++i) bm.add(1.0);
  EXPECT_EQ(bm.batches(), 1u);
  EXPECT_DOUBLE_EQ(bm.half_width_95(), 0.0);
}

TEST(System, ResponseCiShrinksWithLongerRuns) {
  SystemConfig cfg = make_debit_credit_config();
  cfg.nodes = 2;
  cfg.warmup = 2;
  cfg.measure = 8;
  const RunResult a = run_debit_credit(cfg);
  cfg.measure = 32;
  const RunResult b = run_debit_credit(cfg);
  ASSERT_GT(a.resp_ci_ms, 0.0);
  ASSERT_GT(b.resp_ci_ms, 0.0);
  EXPECT_LT(b.resp_ci_ms, a.resp_ci_ms);
}

}  // namespace
}  // namespace gemsd
