// Sharded-GLT tests: the shard oracle gate (gem_shards=1 must be
// bit-identical to the unsharded baselines — on the pinned regression
// goldens and on every shipped spec), determinism of sharded runs across
// engine kinds and worker counts, and the queueing claim the shards exist
// for: on a GLT-bound configuration, four shards beat one. Equality is ==
// / DOUBLE_EQ throughout — shard routing is a pure function of the page id,
// so any divergence is a bug, not noise.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "core/config_file.hpp"
#include "core/experiment.hpp"
#include "core/system.hpp"
#include "workload/scale_out.hpp"
#include "workload/trace_generator.hpp"

#ifndef GEMSD_SOURCE_DIR
#define GEMSD_SOURCE_DIR "."
#endif

namespace {

using namespace gemsd;

// --- shared helpers (mirrors the engine oracle gate) -----------------------

struct GateResult {
  RunResult r;
  std::vector<std::pair<std::string, double>> detail;  // engine.* stripped
};

GateResult run_gate(SystemConfig cfg, const workload::Trace* trace) {
  // Shrunk horizon: the gate checks routing equivalence, not steady state.
  cfg.warmup = 0.1;
  cfg.measure = 0.3;
  GateResult g;
  g.r = trace ? run_trace(cfg, *trace) : run_debit_credit(cfg);
  if (g.r.telemetry) {
    for (const auto& kv : g.r.telemetry->detail) {
      if (kv.first.rfind("engine.", 0) == 0) continue;  // self-metrics differ
      g.detail.push_back(kv);
    }
  }
  return g;
}

void expect_identical(const GateResult& s, const GateResult& p,
                      const std::string& what) {
  EXPECT_GT(s.r.commits, 0u) << what << " (vacuous gate run)";
  EXPECT_DOUBLE_EQ(s.r.resp_ms, p.r.resp_ms) << what;
  EXPECT_DOUBLE_EQ(s.r.resp_ci_ms, p.r.resp_ci_ms) << what;
  EXPECT_DOUBLE_EQ(s.r.resp_p95_ms, p.r.resp_p95_ms) << what;
  EXPECT_DOUBLE_EQ(s.r.throughput, p.r.throughput) << what;
  EXPECT_EQ(s.r.commits, p.r.commits) << what;
  EXPECT_EQ(s.r.aborts, p.r.aborts) << what;
  EXPECT_EQ(s.r.deadlocks, p.r.deadlocks) << what;
  EXPECT_DOUBLE_EQ(s.r.cpu_util, p.r.cpu_util) << what;
  EXPECT_DOUBLE_EQ(s.r.messages_per_txn, p.r.messages_per_txn) << what;
  ASSERT_EQ(s.detail.size(), p.detail.size()) << what;
  for (std::size_t i = 0; i < s.detail.size(); ++i) {
    EXPECT_EQ(s.detail[i].first, p.detail[i].first) << what;
    EXPECT_DOUBLE_EQ(s.detail[i].second, p.detail[i].second)
        << what << " key " << s.detail[i].first;
  }
}

const workload::Trace& shared_trace() {
  static const workload::Trace trace = [] {
    sim::Rng rng(7);
    workload::SyntheticTraceConfig tc;
    tc.transactions = 4000;
    return workload::generate_synthetic_trace(tc, rng);
  }();
  return trace;
}

// --- shard oracle gate -----------------------------------------------------

// The pinned regression goldens, replayed through the sharded storage core
// with gem_shards set *explicitly* to 1. The values are the same committed
// baselines regression_test.cpp pins — if these drift, the sharded routing
// changed single-GEM behaviour.
TEST(ShardOracleGate, RegressionGoldensBitIdenticalAtShardsOne) {
  SystemConfig cfg = make_debit_credit_config();
  cfg.nodes = 3;
  cfg.coupling = Coupling::GemLocking;
  cfg.update = UpdateStrategy::NoForce;
  cfg.routing = Routing::Random;
  cfg.warmup = 2;
  cfg.measure = 8;
  cfg.seed = 42;
  cfg.gem.shards = 1;
  const RunResult gem = run_debit_credit(cfg);
  EXPECT_EQ(gem.commits, 2403u);
  EXPECT_NEAR(gem.resp_ms, 61.079188, 1e-4);
  EXPECT_NEAR(gem.hit_ratio[0], 0.234486, 1e-5);

  SystemConfig pcl = make_debit_credit_config();
  pcl.nodes = 3;
  pcl.coupling = Coupling::PrimaryCopy;
  pcl.update = UpdateStrategy::Force;
  pcl.routing = Routing::Affinity;
  pcl.warmup = 2;
  pcl.measure = 8;
  pcl.seed = 42;
  pcl.gem.shards = 1;
  const RunResult r = run_debit_credit(pcl);
  EXPECT_EQ(r.commits, 2455u);
  EXPECT_NEAR(r.resp_ms, 90.679721, 1e-4);
  EXPECT_NEAR(r.local_lock_fraction, 0.954074, 1e-5);
  EXPECT_NEAR(r.messages_per_txn, 0.275764, 1e-5);
}

// Every shipped spec, as-written vs with gem_shards forced to 1: the full
// telemetry detail must match exactly. This replays the whole corpus —
// every coupling mode, storage layout and update strategy we ship — through
// the sharded core and checks the oracle property end to end.
TEST(ShardOracleGate, EveryShippedSpecUnchangedByForcedShardsOne) {
  const std::string dir = std::string(GEMSD_SOURCE_DIR) + "/specs";
  if (!std::filesystem::exists(dir + "/fig_4_1.ini")) {
    GTEST_SKIP() << "specs/ not reachable";
  }
  int files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".ini") continue;
    ++files;
    const SpecDoc doc = parse_spec_doc_file(entry.path().string());
    std::vector<std::size_t> picks{0};
    if (doc.runs.size() > 1) picks.push_back(doc.runs.size() - 1);
    for (const std::size_t i : picks) {
      const RunSpec& spec = doc.runs[i];
      const workload::Trace* trace =
          spec.kind == RunSpec::Kind::Trace ? &shared_trace() : nullptr;
      SystemConfig cfg;
      if (trace) {
        cfg = make_trace_config(*trace);
        apply_spec_keys(cfg, spec.keys);
      } else {
        cfg = spec.cfg;
      }
      // Specs that deliberately shard (shards_glt.ini) are outside the
      // oracle's domain: forcing them to one shard *must* change results.
      if (cfg.gem.shards != 1) continue;
      const GateResult baseline = run_gate(cfg, trace);
      SystemConfig forced = cfg;
      forced.gem.shards = 1;
      const GateResult oracle = run_gate(forced, trace);
      expect_identical(
          baseline, oracle,
          entry.path().filename().string() + " run " + std::to_string(i));
    }
  }
  EXPECT_GE(files, 19) << "shipped spec corpus shrank?";
}

// --- sharded determinism ---------------------------------------------------

// Shards {2,4,8} under GEM locking: the sequential engine and the parallel
// engine at 1, 2 and 4 workers must produce identical results — shard
// routing must not introduce any engine- or worker-dependent ordering.
TEST(ShardedGlt, DeterministicAcrossEnginesAndWorkerCounts) {
  for (const int shards : {2, 4, 8}) {
    SystemConfig cfg = make_debit_credit_config();
    cfg.nodes = 4;
    cfg.coupling = Coupling::GemLocking;
    cfg.update = UpdateStrategy::NoForce;
    cfg.gem.shards = shards;
    cfg.engine.kind = sim::EngineKind::Sequential;
    const GateResult seq = run_gate(cfg, nullptr);
    for (const int workers : {1, 2, 4}) {
      SystemConfig par = cfg;
      par.engine.kind = sim::EngineKind::Parallel;
      par.engine.workers = workers;
      expect_identical(seq, run_gate(par, nullptr),
                       "shards " + std::to_string(shards) + " @" +
                           std::to_string(workers) + " workers");
    }
  }
}

// The scale_out cell (drifting hotspot, diurnal curve, ShardMap router/GLA)
// is deterministic across engine kinds too — the workload family the
// 256-node scenario runs is gated here at a test-sized node count.
TEST(ShardedGlt, ScaleOutCellDeterministicAcrossEngines) {
  auto run_cell = [](sim::EngineKind kind, int workers) {
    SystemConfig cfg = workload::make_scale_out_config(8);
    cfg.warmup = 0.5;
    cfg.measure = 2.0;
    cfg.gem.shards = 4;
    cfg.engine.kind = kind;
    cfg.engine.workers = workers;
    auto bundle = workload::make_scale_out_workload(cfg, {});
    System::Workload wl;
    wl.gen = std::move(bundle.gen);
    wl.router = std::move(bundle.router);
    wl.gla = std::move(bundle.gla);
    wl.arrival_factor = std::move(bundle.arrival_factor);
    System sys(cfg, std::move(wl));
    return sys.run();
  };
  const RunResult seq = run_cell(sim::EngineKind::Sequential, 0);
  EXPECT_GT(seq.commits, 0u);
  for (const int workers : {2, 4}) {
    const RunResult par = run_cell(sim::EngineKind::Parallel, workers);
    EXPECT_EQ(seq.commits, par.commits) << workers << " workers";
    EXPECT_EQ(seq.aborts, par.aborts) << workers << " workers";
    EXPECT_DOUBLE_EQ(seq.resp_ms, par.resp_ms) << workers << " workers";
    EXPECT_DOUBLE_EQ(seq.throughput, par.throughput) << workers << " workers";
  }
}

// --- the point of the shards -----------------------------------------------

// On a GLT-bound configuration (GEM entry ops at 100 us, everything else
// cheap), four shards must strictly beat one shard on response time: the
// single lock server is the queueing bottleneck, and sharding it is the
// whole reason the sharded core exists (cf. the shards_glt scenario).
TEST(ShardedGlt, FourShardsBeatOneOnGltBoundConfig) {
  auto run_shards = [](int shards) {
    SystemConfig cfg = make_debit_credit_config();
    cfg.nodes = 10;
    cfg.coupling = Coupling::GemLocking;
    cfg.update = UpdateStrategy::NoForce;
    cfg.routing = Routing::Random;
    cfg.buffer_pages = 1000;
    cfg.gem.entry_access = 100e-6;  // GLT-bound: lock service dominates
    cfg.gem.shards = shards;
    cfg.warmup = 1.0;
    cfg.measure = 4.0;
    return run_debit_credit(cfg);
  };
  const RunResult one = run_shards(1);
  const RunResult four = run_shards(4);
  ASSERT_GT(one.commits, 0u);
  ASSERT_GT(four.commits, 0u);
  EXPECT_LT(four.resp_ms, one.resp_ms)
      << "sharding the GLT should relieve the lock-server queue";
  EXPECT_GE(four.throughput, one.throughput * 0.95);
}

}  // namespace
