// Tests for Update-mode locks: compatibility matrix, upgrade paths, and the
// system-level property they exist for — read-then-write transactions stop
// deadlocking against each other.
#include <gtest/gtest.h>

#include "cc/lock_table.hpp"
#include "core/system.hpp"
#include "workload/workload.hpp"

namespace gemsd {
namespace {

using cc::LockTable;
using Outcome = LockTable::Outcome;
const PageId P{0, 1};

TEST(UpdateLock, CompatibilityMatrix) {
  EXPECT_TRUE(lock_compatible(LockMode::Read, LockMode::Read));
  EXPECT_TRUE(lock_compatible(LockMode::Read, LockMode::Update));
  EXPECT_TRUE(lock_compatible(LockMode::Update, LockMode::Read));
  EXPECT_FALSE(lock_compatible(LockMode::Update, LockMode::Update));
  EXPECT_FALSE(lock_compatible(LockMode::Update, LockMode::Write));
  EXPECT_FALSE(lock_compatible(LockMode::Write, LockMode::Read));
  EXPECT_FALSE(lock_compatible(LockMode::Write, LockMode::Write));
}

TEST(UpdateLock, StrengthOrdering) {
  EXPECT_TRUE(lock_covers(LockMode::Write, LockMode::Update));
  EXPECT_TRUE(lock_covers(LockMode::Update, LockMode::Read));
  EXPECT_FALSE(lock_covers(LockMode::Read, LockMode::Update));
  EXPECT_FALSE(lock_covers(LockMode::Update, LockMode::Write));
}

TEST(UpdateLock, UpdatersExcludeEachOtherButShareWithReaders) {
  LockTable lt;
  EXPECT_EQ(lt.acquire(P, 1, 0, LockMode::Update, {}), Outcome::Granted);
  EXPECT_EQ(lt.acquire(P, 2, 0, LockMode::Read, {}), Outcome::Granted);
  int g3 = 0;
  EXPECT_EQ(lt.acquire(P, 3, 0, LockMode::Update, [&] { ++g3; }),
            Outcome::Waiting);
  lt.release(P, 1);
  EXPECT_EQ(g3, 1);  // second updater admitted once the first left
  EXPECT_TRUE(lt.holds(P, 2, LockMode::Read));
}

TEST(UpdateLock, UpdateToWriteWaitsForReaders) {
  LockTable lt;
  ASSERT_EQ(lt.acquire(P, 1, 0, LockMode::Update, {}), Outcome::Granted);
  ASSERT_EQ(lt.acquire(P, 2, 0, LockMode::Read, {}), Outcome::Granted);
  int up = 0;
  EXPECT_EQ(lt.acquire(P, 1, 0, LockMode::Write, [&] { ++up; }),
            Outcome::Waiting);
  lt.release(P, 2);
  EXPECT_EQ(up, 1);
  EXPECT_TRUE(lt.holds(P, 1, LockMode::Write));
}

TEST(UpdateLock, NoDeadlockBetweenTwoUpdaters) {
  // The pattern that deadlocks with plain R->W upgrades: both hold R, both
  // upgrade. With U locks the second updater waits up front — no cycle.
  LockTable lt;
  ASSERT_EQ(lt.acquire(P, 1, 0, LockMode::Update, {}), Outcome::Granted);
  ASSERT_EQ(lt.acquire(P, 2, 0, LockMode::Update, {}), Outcome::Waiting);
  EXPECT_FALSE(creates_deadlock(lt, 2));
  ASSERT_EQ(lt.acquire(P, 1, 0, LockMode::Write, {}), Outcome::Granted);
  lt.release(P, 1);
  EXPECT_TRUE(lt.holds(P, 2, LockMode::Update));
}

TEST(UpdateLock, ReadToUpdateUpgrade) {
  LockTable lt;
  ASSERT_EQ(lt.acquire(P, 1, 0, LockMode::Read, {}), Outcome::Granted);
  ASSERT_EQ(lt.acquire(P, 2, 0, LockMode::Read, {}), Outcome::Granted);
  // R -> U in place: only another updater would block, readers don't.
  EXPECT_EQ(lt.acquire(P, 1, 0, LockMode::Update, {}), Outcome::Granted);
  EXPECT_TRUE(lt.holds(P, 1, LockMode::Update));
  EXPECT_FALSE(lt.holds(P, 1, LockMode::Write));
}

// --- system level: the stress pattern that thrashed with R->W upgrades ---

using workload::PageRef;
using workload::TxnSpec;

constexpr PartitionId kT = 0;
PageId pg(std::int64_t n) { return PageId{kT, n}; }

SystemConfig hot_cfg(Coupling c) {
  SystemConfig cfg;
  cfg.nodes = 2;
  cfg.coupling = c;
  cfg.update = UpdateStrategy::NoForce;
  cfg.buffer_pages = 16;
  cfg.mpl = 200;
  cfg.partitions.resize(1);
  cfg.partitions[0].name = "T";
  cfg.partitions[0].pages_per_unit = 64;
  cfg.partitions[0].locked = true;
  cfg.partitions[0].disks_per_unit = 8;
  return cfg;
}
class ModGla : public workload::GlaMap {
 public:
  NodeId gla(PageId p) const override {
    return static_cast<NodeId>(p.page % 2);
  }
};
struct NullGen : workload::WorkloadGenerator {
  TxnSpec next(sim::Rng&) override { return {}; }
  int num_types() const override { return 1; }
};

std::uint64_t run_hot(Coupling c, bool use_intent) {
  SystemConfig cfg = hot_cfg(c);
  System::Workload wl;
  wl.gen = std::make_unique<NullGen>();
  wl.router = std::make_unique<workload::RandomRouter>(2);
  wl.gla = std::make_unique<ModGla>();
  System sys(cfg, std::move(wl));
  sim::Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    TxnSpec t;
    const std::int64_t page = rng.uniform_int(0, 3);
    t.refs.push_back(PageRef{pg(page), false, use_intent});
    t.refs.push_back(PageRef{pg(page), true, false});
    sys.submit(static_cast<NodeId>(i % 2), t);
  }
  sys.scheduler().run_all();
  EXPECT_EQ(sys.metrics().commits.value(), 200u);
  EXPECT_EQ(sys.metrics().coherency_violations.value(), 0u);
  return sys.metrics().deadlocks.value();
}

TEST(UpdateLock, IntentEliminatesUpgradeDeadlocksGem) {
  const auto without = run_hot(Coupling::GemLocking, false);
  const auto with = run_hot(Coupling::GemLocking, true);
  EXPECT_GT(without, 100u);  // the thrash the plain upgrades cause
  EXPECT_EQ(with, 0u);       // update intent removes the cycles entirely
}

TEST(UpdateLock, IntentEliminatesUpgradeDeadlocksPcl) {
  const auto without = run_hot(Coupling::PrimaryCopy, false);
  const auto with = run_hot(Coupling::PrimaryCopy, true);
  EXPECT_GT(without, with);
  EXPECT_EQ(with, 0u);
}

}  // namespace
}  // namespace gemsd
