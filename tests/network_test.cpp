// Unit tests for the network + message layer: transmission times, sender and
// receiver CPU charging, asynchronous delivery, handler execution.
#include <gtest/gtest.h>

#include "core/config.hpp"
#include "net/comm.hpp"
#include "net/network.hpp"
#include "node/cpu.hpp"
#include "sim/scheduler.hpp"

namespace gemsd::net {
namespace {

using sim::Scheduler;
using sim::Task;

struct Cluster {
  Scheduler sched;
  CommConfig cfg;
  CpuConfig cpu_cfg;
  Network net{sched, cfg};
  Comm comm{sched, net, cfg};
  node::CpuSet cpu0{sched, cpu_cfg, "cpu0"};
  node::CpuSet cpu1{sched, cpu_cfg, "cpu1"};
  Cluster() { comm.attach_nodes({&cpu0, &cpu1}); }
};

Task<void> mark(double* at, Scheduler& s) {
  *at = s.now();
  co_return;
}

Task<void> sender(Cluster& c, bool long_msg, double* send_done,
                  double* delivered) {
  co_await c.comm.send(0, 1, long_msg, mark(delivered, c.sched));
  *send_done = c.sched.now();
}

TEST(Comm, ShortMessageTimingAndCpu) {
  Cluster c;
  double send_done = 0, delivered = 0;
  c.sched.spawn(sender(c, false, &send_done, &delivered));
  c.sched.run_all();
  // Sender-side: 5000 instr at 10 MIPS = 0.5 ms.
  EXPECT_NEAR(send_done, 0.5e-3, 1e-9);
  // Delivery: + transmission 100B/10MBps = 10 us + receiver 0.5 ms.
  EXPECT_NEAR(delivered, 0.5e-3 + 10e-6 + 0.5e-3, 1e-9);
  EXPECT_EQ(c.net.short_count(), 1u);
  EXPECT_EQ(c.net.long_count(), 0u);
  EXPECT_EQ(c.comm.messages_sent(), 1u);
}

TEST(Comm, LongMessageTimingAndCpu) {
  Cluster c;
  double send_done = 0, delivered = 0;
  c.sched.spawn(sender(c, true, &send_done, &delivered));
  c.sched.run_all();
  // 8000 instr = 0.8 ms per side; 4 KB / 10 MB/s = 409.6 us transmission.
  EXPECT_NEAR(send_done, 0.8e-3, 1e-9);
  EXPECT_NEAR(delivered, 0.8e-3 + 4096.0 / 10e6 + 0.8e-3, 1e-9);
  EXPECT_EQ(c.net.long_count(), 1u);
}

TEST(Comm, SenderResumesBeforeDelivery) {
  Cluster c;
  double send_done = 0, delivered = 0;
  c.sched.spawn(sender(c, false, &send_done, &delivered));
  c.sched.run_all();
  EXPECT_LT(send_done, delivered);
}

Task<void> burst(Cluster& c, int n, sim::Counter* done) {
  for (int i = 0; i < n; ++i) {
    co_await c.comm.send(0, 1, true, sim::Task<void>([]() -> Task<void> {
                           co_return;
                         }()));
    done->inc();
  }
}

TEST(Network, BandwidthSerializesTransfers) {
  Cluster c;
  sim::Counter done;
  c.sched.spawn(burst(c, 10, &done));
  c.sched.run_all();
  EXPECT_EQ(done.value(), 10u);
  // 10 long messages of 409.6 us occupy the 10 MB/s link serially.
  EXPECT_GT(c.net.utilization(), 0.0);
}

TEST(Network, UtilizationReflectsLoad) {
  Scheduler sched;
  CommConfig cfg;
  Network net(sched, cfg);
  // Directly exercise transmit: 25 long messages back to back.
  struct Driver {
    static Task<void> run(Network& n, int k) {
      for (int i = 0; i < k; ++i) co_await n.transmit(true);
    }
  };
  sched.spawn(Driver::run(net, 25));
  sched.run_all();
  // The link was busy the whole run.
  EXPECT_NEAR(net.utilization(), 1.0, 1e-6);
}

}  // namespace
}  // namespace gemsd::net
