// Tests for the general synthetic workload generator: class mix, reference
// shapes, locality/rotation model, router/GLA coordination, and an
// end-to-end run through both coupling modes.
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "workload/synthetic.hpp"

namespace gemsd::workload {
namespace {

SystemConfig two_partition_cfg() {
  SystemConfig cfg;
  cfg.nodes = 4;
  cfg.partitions.resize(2);
  cfg.partitions[0].name = "ORDERS";
  cfg.partitions[0].pages_per_unit = 2000;
  cfg.partitions[0].scale_with_nodes = false;
  cfg.partitions[0].disks_per_unit = 8;
  cfg.partitions[1].name = "STOCK";
  cfg.partitions[1].pages_per_unit = 8000;
  cfg.partitions[1].scale_with_nodes = false;
  cfg.partitions[1].disks_per_unit = 8;
  return cfg;
}

SyntheticSpec demo_spec() {
  SyntheticSpec spec;
  spec.affinity_keys = 256;
  TxnClass order;
  order.name = "new-order";
  order.weight = 3.0;
  order.mean_refs = 12;
  order.write_fraction = 0.4;
  order.partitions = {0, 1};
  order.locality = 1.0;
  TxnClass scan;
  scan.name = "stock-scan";
  scan.weight = 1.0;
  scan.mean_refs = 40;
  scan.write_fraction = 0.0;
  scan.partitions = {1};
  scan.locality = 0.0;
  spec.classes = {order, scan};
  return spec;
}

TEST(SyntheticWorkload, ClassMixFollowsWeights) {
  const SystemConfig cfg = two_partition_cfg();
  auto b = make_synthetic_workload(cfg, demo_spec());
  sim::Rng rng(1);
  int orders = 0;
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (b.gen->next(rng).type == 0) ++orders;
  }
  EXPECT_NEAR(orders / static_cast<double>(kN), 0.75, 0.02);
}

TEST(SyntheticWorkload, RefsStayInDeclaredPartitions) {
  const SystemConfig cfg = two_partition_cfg();
  auto b = make_synthetic_workload(cfg, demo_spec());
  sim::Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const TxnSpec t = b.gen->next(rng);
    for (const auto& r : t.refs) {
      if (t.type == 1) {
        EXPECT_EQ(r.page.partition, 1);  // scan: STOCK only
        EXPECT_FALSE(r.write);           // read-only class
      }
      EXPECT_GE(r.page.page, 0);
      const auto pages = cfg.partition_pages(r.page.partition);
      EXPECT_LT(r.page.page, pages);
    }
  }
}

TEST(SyntheticWorkload, WriteFractionRoughlyHonored) {
  const SystemConfig cfg = two_partition_cfg();
  auto b = make_synthetic_workload(cfg, demo_spec());
  sim::Rng rng(3);
  std::int64_t writes = 0, refs = 0;
  for (int i = 0; i < 5000; ++i) {
    const TxnSpec t = b.gen->next(rng);
    if (t.type != 0) continue;
    for (const auto& r : t.refs) {
      refs += 1;
      writes += r.write ? 1 : 0;
    }
  }
  EXPECT_NEAR(static_cast<double>(writes) / static_cast<double>(refs), 0.4,
              0.03);
}

TEST(SyntheticWorkload, LocalityPartitionsHotSetsByKey) {
  // With locality 1, two different affinity keys must mostly touch disjoint
  // page regions of the same partition.
  const SystemConfig cfg = two_partition_cfg();
  SyntheticSpec spec = demo_spec();
  spec.classes[0].locality = 1.0;
  auto gen = SyntheticWorkload(spec, {2000, 8000});
  sim::Rng rng(4);
  std::set<std::int64_t> seen_a, seen_b;
  int drawn = 0;
  while (drawn < 3000) {
    TxnSpec t = gen.next(rng);
    if (t.type != 0) continue;
    auto& target = (t.affinity_key % 256 == 0)   ? seen_a
                   : (t.affinity_key % 256 == 128) ? seen_b
                                                   : seen_a;
    if (t.affinity_key != 0 && t.affinity_key != 128) continue;
    for (const auto& r : t.refs) {
      if (r.page.partition == 1) target.insert(r.page.page);
    }
    ++drawn;
  }
  // Overlap between the two keys' footprints should be small.
  std::size_t overlap = 0;
  for (auto p : seen_a) overlap += seen_b.count(p);
  EXPECT_LT(static_cast<double>(overlap),
            0.2 * static_cast<double>(std::min(seen_a.size(), seen_b.size()) + 1));
}

TEST(SyntheticWorkload, GlaMatchesRouterForLocalClasses) {
  SystemConfig cfg = two_partition_cfg();
  cfg.routing = Routing::Affinity;  // key-affinity router, not round robin
  auto b = make_synthetic_workload(cfg, demo_spec());
  sim::Rng rng(5);
  int local = 0, total = 0;
  for (int i = 0; i < 3000; ++i) {
    const TxnSpec t = b.gen->next(rng);
    if (t.type != 0) continue;  // the locality-1 class
    const NodeId n = b.router->route(t, rng);
    for (const auto& r : t.refs) {
      ++total;
      if (b.gla->gla(r.page) == n) ++local;
    }
  }
  // The key-region GLA should make nearly all accesses authority-local.
  EXPECT_GT(static_cast<double>(local) / total, 0.9);
}

TEST(SyntheticWorkload, RejectsBadSpecs) {
  EXPECT_THROW(SyntheticWorkload({}, {100}), std::invalid_argument);
  SyntheticSpec s;
  TxnClass c;
  c.partitions = {};  // none
  s.classes = {c};
  EXPECT_THROW(SyntheticWorkload(s, {100}), std::invalid_argument);
  TxnClass d;
  d.partitions = {5};  // unknown partition
  s.classes = {d};
  EXPECT_THROW(SyntheticWorkload(s, {100}), std::invalid_argument);
}

TEST(SyntheticWorkload, EndToEndBothCouplings) {
  for (Coupling c : {Coupling::GemLocking, Coupling::PrimaryCopy}) {
    SystemConfig cfg = two_partition_cfg();
    cfg.coupling = c;
    cfg.routing = Routing::Affinity;
    cfg.arrival_rate_per_node = 60.0;
    // These classes average 12-40 references; size the CPU bursts so the
    // nodes are not oversaturated (the debit-credit default of 40k per
    // reference is calibrated for 4-reference transactions).
    cfg.path.bot_instr = 20000;
    cfg.path.per_ref_instr = 5000;
    cfg.path.eot_instr = 20000;
    cfg.warmup = 1.0;
    cfg.measure = 8.0;
    System::Workload wl;
    auto bundle = make_synthetic_workload(cfg, demo_spec());
    wl.gen = std::move(bundle.gen);
    wl.router = std::move(bundle.router);
    wl.gla = std::move(bundle.gla);
    System sys(cfg, std::move(wl));
    const RunResult r = sys.run();
    EXPECT_GT(r.commits, 200u);
    EXPECT_EQ(sys.metrics().coherency_violations.value(), 0u);
    if (c == Coupling::PrimaryCopy) {
      EXPECT_GT(r.local_lock_fraction, 0.5);  // locality + matching GLA
    }
  }
}

}  // namespace
}  // namespace gemsd::workload
