// Unit tests for the workload layer: debit-credit generator (TPC rules,
// clustering, deadlock-free order), routers, GLA maps, trace format I/O and
// the allocation heuristics.
#include <gtest/gtest.h>

#include <sstream>

#include "core/config.hpp"
#include "workload/debit_credit.hpp"
#include "workload/trace.hpp"

namespace gemsd::workload {
namespace {

using Ids = DebitCreditIds;

TEST(DebitCredit, TxnShape) {
  sim::Rng rng(1);
  DebitCreditGenerator gen(4);
  for (int i = 0; i < 200; ++i) {
    const TxnSpec t = gen.next(rng);
    ASSERT_EQ(t.refs.size(), 4u);
    EXPECT_EQ(t.refs[0].page.partition, Ids::kAccount);
    EXPECT_EQ(t.refs[1].page.partition, Ids::kHistory);
    EXPECT_EQ(t.refs[1].page.page, kAppendPage);
    EXPECT_EQ(t.refs[2].page.partition, Ids::kBranchTeller);
    // TELLER and BRANCH live in the same clustered page.
    EXPECT_EQ(t.refs[2].page, t.refs[3].page);
    EXPECT_EQ(t.refs[2].page.page, t.affinity_key);
    for (const auto& r : t.refs) EXPECT_TRUE(r.write);
  }
}

TEST(DebitCredit, EightyFifteenAccountRule) {
  sim::Rng rng(2);
  DebitCreditGenerator gen(4);
  int local = 0;
  const int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const TxnSpec t = gen.next(rng);
    const std::int64_t acct_branch =
        t.refs[0].page.page * Ids::kAccountsPerPage / Ids::kAccountsPerBranch;
    if (acct_branch == t.affinity_key) ++local;
  }
  EXPECT_NEAR(static_cast<double>(local) / kN, 0.85, 0.01);
}

TEST(DebitCredit, BranchesUniformAcrossScaledDatabase) {
  sim::Rng rng(3);
  DebitCreditGenerator gen(5);  // 500 branches
  std::vector<int> node_count(5, 0);
  for (int i = 0; i < 20000; ++i) {
    const TxnSpec t = gen.next(rng);
    ASSERT_LT(t.affinity_key, 500);
    ++node_count[static_cast<std::size_t>(t.affinity_key / 100)];
  }
  for (int c : node_count) EXPECT_NEAR(c, 4000, 400);
}

TEST(DebitCredit, GlaMapPartitionsByBranchBlocks) {
  DebitCreditGlaMap gla(4);
  // Branch pages 0..99 -> node 0, 100..199 -> node 1, ...
  EXPECT_EQ(gla.gla(PageId{Ids::kBranchTeller, 0}), 0);
  EXPECT_EQ(gla.gla(PageId{Ids::kBranchTeller, 150}), 1);
  EXPECT_EQ(gla.gla(PageId{Ids::kBranchTeller, 399}), 3);
  // Account pages follow their branch: branch b covers accounts
  // [b*100000, (b+1)*100000) = pages [b*10000, (b+1)*10000).
  EXPECT_EQ(gla.gla(PageId{Ids::kAccount, 5000}), 0);      // branch 0
  EXPECT_EQ(gla.gla(PageId{Ids::kAccount, 1050000}), 1);   // branch 105
  EXPECT_EQ(gla.gla(PageId{Ids::kAccount, 3999999}), 3);   // branch 399
}

TEST(DebitCredit, AffinityRouterMatchesGla) {
  sim::Rng rng(4);
  DebitCreditGenerator gen(8);
  DebitCreditGlaMap gla(8);
  auto router = make_debit_credit_router(Routing::Affinity, 8);
  for (int i = 0; i < 2000; ++i) {
    const TxnSpec t = gen.next(rng);
    const NodeId n = router->route(t, rng);
    EXPECT_EQ(n, gla.gla(PageId{Ids::kBranchTeller, t.affinity_key}));
  }
}

TEST(Router, RandomIsRoundRobinBalanced) {
  sim::Rng rng(5);
  RandomRouter r(3);
  std::vector<int> counts(3, 0);
  TxnSpec t;
  for (int i = 0; i < 99; ++i) ++counts[static_cast<std::size_t>(r.route(t, rng))];
  EXPECT_EQ(counts, (std::vector<int>{33, 33, 33}));
}

TEST(Router, TableRouterFollowsShares) {
  sim::Rng rng(6);
  TableRouter r({{0.25, 0.75}});
  TxnSpec t;
  t.type = 0;
  int n1 = 0;
  for (int i = 0; i < 20000; ++i) n1 += r.route(t, rng);
  EXPECT_NEAR(n1 / 20000.0, 0.75, 0.02);
}

Trace tiny_trace() {
  Trace tr;
  tr.num_types = 2;
  tr.num_files = 3;
  TxnSpec a;
  a.type = 0;
  a.affinity_key = 0;
  a.refs = {{PageId{0, 1}, false}, {PageId{1, 2}, true}};
  TxnSpec b;
  b.type = 1;
  b.affinity_key = 1;
  b.refs = {{PageId{2, 7}, false}};
  tr.txns = {a, b, a};
  return tr;
}

TEST(Trace, SaveLoadRoundTrip) {
  const Trace tr = tiny_trace();
  std::stringstream ss;
  tr.save(ss);
  const Trace back = Trace::load(ss);
  ASSERT_EQ(back.txns.size(), 3u);
  EXPECT_EQ(back.num_types, 2);
  EXPECT_EQ(back.num_files, 3);
  EXPECT_EQ(back.txns[0].refs.size(), 2u);
  EXPECT_EQ(back.txns[0].refs[1].page, (PageId{1, 2}));
  EXPECT_TRUE(back.txns[0].refs[1].write);
  EXPECT_FALSE(back.txns[2].refs[0].write);
  EXPECT_EQ(back.txns[1].type, 1);
}

TEST(Trace, LoadRejectsGarbage) {
  std::stringstream ss("not-a-trace 9");
  EXPECT_THROW(Trace::load(ss), std::runtime_error);
}

TEST(Trace, StatsComputation) {
  const TraceStats s = compute_stats(tiny_trace());
  EXPECT_EQ(s.transactions, 3u);
  EXPECT_EQ(s.references, 5u);
  EXPECT_EQ(s.distinct_pages, 3u);
  EXPECT_EQ(s.largest_txn, 2u);
  EXPECT_NEAR(s.write_ref_fraction, 2.0 / 5.0, 1e-12);
  EXPECT_NEAR(s.update_txn_fraction, 2.0 / 3.0, 1e-12);
}

TEST(Trace, ReplayPreservesOrderAndCycles) {
  const Trace tr = tiny_trace();
  TraceWorkload w(tr);
  sim::Rng rng(1);
  EXPECT_EQ(w.next(rng).type, 0);
  EXPECT_EQ(w.next(rng).type, 1);
  EXPECT_EQ(w.next(rng).type, 0);
  EXPECT_EQ(w.next(rng).type, 0);  // wrapped around
}

TEST(Heuristics, AffinityRoutingBalancesLoad) {
  Trace tr = tiny_trace();
  // Inflate: type 0 heavy on file 0/1, type 1 on file 2.
  tr.txns.clear();
  for (int i = 0; i < 100; ++i) {
    TxnSpec a;
    a.type = 0;
    a.refs.assign(10, PageRef{PageId{0, i}, false});
    tr.txns.push_back(a);
    TxnSpec b;
    b.type = 1;
    b.refs.assign(10, PageRef{PageId{2, i}, false});
    tr.txns.push_back(b);
  }
  const auto prof = profile_trace(tr);
  const auto share = make_affinity_routing(prof, 2);
  ASSERT_EQ(share.size(), 2u);
  for (const auto& row : share) {
    double s = 0;
    for (double v : row) s += v;
    EXPECT_NEAR(s, 1.0, 1e-9);
  }
  // Equal loads, disjoint files: each type should be concentrated on its own
  // node (affinity), and the two types on different nodes (balance).
  const auto dominant = [](const std::vector<double>& row) {
    return row[0] > row[1] ? 0 : 1;
  };
  EXPECT_NE(dominant(share[0]), dominant(share[1]));
  EXPECT_GT(std::max(share[0][0], share[0][1]), 0.9);
}

TEST(Heuristics, GlaFollowsRouting) {
  Trace tr;
  tr.num_types = 2;
  tr.num_files = 2;
  for (int i = 0; i < 50; ++i) {
    TxnSpec a;
    a.type = 0;
    a.refs.assign(4, PageRef{PageId{0, i}, false});
    tr.txns.push_back(a);
    TxnSpec b;
    b.type = 1;
    b.refs.assign(4, PageRef{PageId{1, i}, false});
    tr.txns.push_back(b);
  }
  const auto prof = profile_trace(tr);
  // Pin the routing: type 0 -> node 0, type 1 -> node 1.
  const std::vector<std::vector<double>> share{{1, 0}, {0, 1}};
  const auto gla = make_gla_assignment(prof, share, 2);
  ASSERT_EQ(gla.size(), 2u);
  EXPECT_EQ(gla[0], 0);  // file 0 referenced only from node 0
  EXPECT_EQ(gla[1], 1);
}

}  // namespace
}  // namespace gemsd::workload
