// Unit tests for the logical lock table: compatibility, FIFO waiting,
// read->write upgrades, cancellation, and wait-for-graph deadlock detection.
#include <gtest/gtest.h>

#include "cc/lock_table.hpp"

namespace gemsd::cc {
namespace {

const PageId P{0, 1};
const PageId Q{0, 2};

using Outcome = LockTable::Outcome;

TEST(LockTable, ReadersShare) {
  LockTable lt;
  EXPECT_EQ(lt.acquire(P, 1, 0, LockMode::Read, {}), Outcome::Granted);
  EXPECT_EQ(lt.acquire(P, 2, 1, LockMode::Read, {}), Outcome::Granted);
  EXPECT_TRUE(lt.holds(P, 1, LockMode::Read));
  EXPECT_TRUE(lt.holds(P, 2, LockMode::Read));
  EXPECT_FALSE(lt.holds(P, 1, LockMode::Write));
}

TEST(LockTable, WriterExcludesAndFifoGrants) {
  LockTable lt;
  int granted2 = 0, granted3 = 0;
  EXPECT_EQ(lt.acquire(P, 1, 0, LockMode::Write, {}), Outcome::Granted);
  EXPECT_EQ(lt.acquire(P, 2, 0, LockMode::Read, [&] { ++granted2; }),
            Outcome::Waiting);
  EXPECT_EQ(lt.acquire(P, 3, 0, LockMode::Read, [&] { ++granted3; }),
            Outcome::Waiting);
  EXPECT_EQ(lt.conflicts(), 2u);
  lt.release(P, 1);
  // Both readers become grantable together.
  EXPECT_EQ(granted2, 1);
  EXPECT_EQ(granted3, 1);
  EXPECT_TRUE(lt.holds(P, 2, LockMode::Read));
  EXPECT_TRUE(lt.holds(P, 3, LockMode::Read));
}

TEST(LockTable, ReaderQueuesBehindWaitingWriter) {
  LockTable lt;
  int w = 0, r = 0;
  ASSERT_EQ(lt.acquire(P, 1, 0, LockMode::Read, {}), Outcome::Granted);
  ASSERT_EQ(lt.acquire(P, 2, 0, LockMode::Write, [&] { ++w; }),
            Outcome::Waiting);
  // FIFO fairness: a later reader must not overtake the waiting writer.
  ASSERT_EQ(lt.acquire(P, 3, 0, LockMode::Read, [&] { ++r; }),
            Outcome::Waiting);
  lt.release(P, 1);
  EXPECT_EQ(w, 1);
  EXPECT_EQ(r, 0);  // writer holds now
  lt.release(P, 2);
  EXPECT_EQ(r, 1);
}

TEST(LockTable, UpgradeGrantedWhenSoleHolder) {
  LockTable lt;
  ASSERT_EQ(lt.acquire(P, 1, 0, LockMode::Read, {}), Outcome::Granted);
  EXPECT_EQ(lt.acquire(P, 1, 0, LockMode::Write, {}), Outcome::Granted);
  EXPECT_TRUE(lt.holds(P, 1, LockMode::Write));
}

TEST(LockTable, UpgradeWaitsForOtherReadersAndJumpsQueue) {
  LockTable lt;
  int up = 0, other = 0;
  ASSERT_EQ(lt.acquire(P, 1, 0, LockMode::Read, {}), Outcome::Granted);
  ASSERT_EQ(lt.acquire(P, 2, 0, LockMode::Read, {}), Outcome::Granted);
  // Txn 3 queues as a plain writer; then txn 1 upgrades — the upgrade must
  // be served before the queued writer.
  ASSERT_EQ(lt.acquire(P, 3, 0, LockMode::Write, [&] { ++other; }),
            Outcome::Waiting);
  ASSERT_EQ(lt.acquire(P, 1, 0, LockMode::Write, [&] { ++up; }),
            Outcome::Waiting);
  lt.release(P, 2);  // txn 1 now the sole holder -> upgrade fires
  EXPECT_EQ(up, 1);
  EXPECT_EQ(other, 0);
  EXPECT_TRUE(lt.holds(P, 1, LockMode::Write));
  lt.release(P, 1);
  EXPECT_EQ(other, 1);
}

TEST(LockTable, CancelWaitRemovesAndPromotes) {
  LockTable lt;
  int g3 = 0;
  ASSERT_EQ(lt.acquire(P, 1, 0, LockMode::Write, {}), Outcome::Granted);
  ASSERT_EQ(lt.acquire(P, 2, 0, LockMode::Write, {}), Outcome::Waiting);
  ASSERT_EQ(lt.acquire(P, 3, 0, LockMode::Read, [&] { ++g3; }),
            Outcome::Waiting);
  EXPECT_TRUE(lt.cancel_wait(P, 2));
  EXPECT_FALSE(lt.waiting_on(2).has_value());
  lt.release(P, 1);
  EXPECT_EQ(g3, 1);  // reader no longer blocked by the cancelled writer
}

TEST(LockTable, WaitingOnAndBlockers) {
  LockTable lt;
  ASSERT_EQ(lt.acquire(P, 1, 0, LockMode::Write, {}), Outcome::Granted);
  ASSERT_EQ(lt.acquire(P, 2, 0, LockMode::Write, {}), Outcome::Waiting);
  ASSERT_EQ(lt.waiting_on(2), P);
  EXPECT_EQ(lt.blockers(P, 2), std::vector<TxnId>{1});
  EXPECT_FALSE(lt.waiting_on(1).has_value());
}

TEST(LockTable, DeadlockTwoTxnCycle) {
  LockTable lt;
  // T1 holds P, T2 holds Q; T1 waits for Q, then T2 waiting for P closes the
  // cycle.
  ASSERT_EQ(lt.acquire(P, 1, 0, LockMode::Write, {}), Outcome::Granted);
  ASSERT_EQ(lt.acquire(Q, 2, 0, LockMode::Write, {}), Outcome::Granted);
  ASSERT_EQ(lt.acquire(Q, 1, 0, LockMode::Write, {}), Outcome::Waiting);
  EXPECT_FALSE(creates_deadlock(lt, 1));
  ASSERT_EQ(lt.acquire(P, 2, 0, LockMode::Write, {}), Outcome::Waiting);
  EXPECT_TRUE(creates_deadlock(lt, 2));
}

TEST(LockTable, DeadlockUpgradeCycle) {
  LockTable lt;
  // Classic: two readers both upgrade.
  ASSERT_EQ(lt.acquire(P, 1, 0, LockMode::Read, {}), Outcome::Granted);
  ASSERT_EQ(lt.acquire(P, 2, 0, LockMode::Read, {}), Outcome::Granted);
  ASSERT_EQ(lt.acquire(P, 1, 0, LockMode::Write, {}), Outcome::Waiting);
  ASSERT_EQ(lt.acquire(P, 2, 0, LockMode::Write, {}), Outcome::Waiting);
  EXPECT_TRUE(creates_deadlock(lt, 2));
}

TEST(LockTable, NoDeadlockOnChain) {
  LockTable lt;
  ASSERT_EQ(lt.acquire(P, 1, 0, LockMode::Write, {}), Outcome::Granted);
  ASSERT_EQ(lt.acquire(P, 2, 0, LockMode::Write, {}), Outcome::Waiting);
  ASSERT_EQ(lt.acquire(P, 3, 0, LockMode::Write, {}), Outcome::Waiting);
  EXPECT_FALSE(creates_deadlock(lt, 3));  // chain, no cycle
}

TEST(LockTable, ThreeTxnCycle) {
  LockTable lt;
  const PageId R{0, 3};
  ASSERT_EQ(lt.acquire(P, 1, 0, LockMode::Write, {}), Outcome::Granted);
  ASSERT_EQ(lt.acquire(Q, 2, 0, LockMode::Write, {}), Outcome::Granted);
  ASSERT_EQ(lt.acquire(R, 3, 0, LockMode::Write, {}), Outcome::Granted);
  ASSERT_EQ(lt.acquire(Q, 1, 0, LockMode::Write, {}), Outcome::Waiting);
  ASSERT_EQ(lt.acquire(R, 2, 0, LockMode::Write, {}), Outcome::Waiting);
  EXPECT_FALSE(creates_deadlock(lt, 2));
  ASSERT_EQ(lt.acquire(P, 3, 0, LockMode::Write, {}), Outcome::Waiting);
  EXPECT_TRUE(creates_deadlock(lt, 3));
}

TEST(LockTable, EntriesRemovedWhenEmpty) {
  LockTable lt;
  ASSERT_EQ(lt.acquire(P, 1, 0, LockMode::Write, {}), Outcome::Granted);
  EXPECT_EQ(lt.locked_pages(), 1u);
  lt.release(P, 1);
  EXPECT_EQ(lt.locked_pages(), 0u);
}

TEST(LockTable, RequestCountersTrack) {
  LockTable lt;
  lt.acquire(P, 1, 0, LockMode::Read, {});
  lt.acquire(P, 2, 0, LockMode::Read, {});
  lt.acquire(P, 3, 0, LockMode::Write, {});
  EXPECT_EQ(lt.requests(), 3u);
  EXPECT_EQ(lt.conflicts(), 1u);
  lt.reset_stats();
  EXPECT_EQ(lt.requests(), 0u);
}

}  // namespace
}  // namespace gemsd::cc
