// Protocol-level tests: drive hand-built transactions through complete
// 2-node systems and verify the concurrency/coherency mechanics of both
// coupling modes — GLT costs, sequence numbers, ownership, page transfers,
// grant-carried pages, read authorizations, deadlock victim restart.
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "workload/workload.hpp"

namespace gemsd {
namespace {

using workload::PageRef;
using workload::TxnSpec;

constexpr PartitionId kT = 0;

PageId pg(std::int64_t n) { return PageId{kT, n}; }

/// Minimal single-partition config: 2 nodes, everything else Table 4.1.
SystemConfig small_cfg(Coupling c, UpdateStrategy u) {
  SystemConfig cfg;
  cfg.nodes = 2;
  cfg.coupling = c;
  cfg.update = u;
  cfg.buffer_pages = 50;
  cfg.partitions.resize(1);
  auto& pc = cfg.partitions[0];
  pc.name = "T";
  pc.pages_per_unit = 1000;
  pc.blocking_factor = 1;
  pc.locked = true;
  pc.disks_per_unit = 4;
  return cfg;
}

/// GLA: pages 0..499 -> node 0, 500+ -> node 1.
class SplitGla : public workload::GlaMap {
 public:
  NodeId gla(PageId p) const override { return p.page < 500 ? 0 : 1; }
};

struct NullGen : workload::WorkloadGenerator {
  TxnSpec next(sim::Rng&) override { return {}; }
  int num_types() const override { return 1; }
};

System make_system(const SystemConfig& cfg) {
  System::Workload wl;
  wl.gen = std::make_unique<NullGen>();
  wl.router = std::make_unique<workload::RandomRouter>(cfg.nodes);
  wl.gla = std::make_unique<SplitGla>();
  return System(cfg, std::move(wl));
}

TxnSpec write_txn(std::initializer_list<std::int64_t> pages) {
  TxnSpec t;
  for (auto p : pages) t.refs.push_back(PageRef{pg(p), true});
  return t;
}

TxnSpec read_txn(std::initializer_list<std::int64_t> pages) {
  TxnSpec t;
  for (auto p : pages) t.refs.push_back(PageRef{pg(p), false});
  return t;
}

TEST(GemProtocol, WriteBumpsSeqnoAndSetsOwnerUnderNoForce) {
  auto sys = make_system(small_cfg(Coupling::GemLocking,
                                   UpdateStrategy::NoForce));
  sys.submit(0, write_txn({7}));
  sys.scheduler().run_all();
  EXPECT_EQ(sys.metrics().commits.value(), 1u);
  EXPECT_EQ(sys.protocol().directory().seqno(pg(7)), 1u);
  EXPECT_EQ(sys.protocol().directory().owner(pg(7)), 0);
  EXPECT_TRUE(sys.buffer(0).frame_dirty(pg(7)));
  // Lock processing went through GEM entries: >= 2 per acquire + release.
  EXPECT_GE(sys.gem().entry_ops(), 4u);
}

TEST(GemProtocol, ForceClearsOwnerAndWritesThrough) {
  auto sys = make_system(small_cfg(Coupling::GemLocking,
                                   UpdateStrategy::Force));
  sys.submit(0, write_txn({7}));
  sys.scheduler().run_all();
  EXPECT_EQ(sys.protocol().directory().owner(pg(7)), kNoNode);
  EXPECT_FALSE(sys.buffer(0).frame_dirty(pg(7)));
  EXPECT_EQ(sys.metrics().force_writes.value(), 1u);
  // Storage got the page write + the log write.
  EXPECT_EQ(sys.storage().group(kT)->writes(), 1u);
}

TEST(GemProtocol, RemoteReaderFetchesFromOwner) {
  auto sys = make_system(small_cfg(Coupling::GemLocking,
                                   UpdateStrategy::NoForce));
  sys.submit(0, write_txn({7}));
  sys.scheduler().run_all();
  sys.submit(1, read_txn({7}));
  sys.scheduler().run_all();
  EXPECT_EQ(sys.metrics().commits.value(), 2u);
  EXPECT_EQ(sys.metrics().page_requests.value(), 1u);
  // Ownership migrated with the transfer; node 1 now holds the dirty copy.
  EXPECT_EQ(sys.protocol().directory().owner(pg(7)), 1);
  EXPECT_TRUE(sys.buffer(1).frame_dirty(pg(7)));
  EXPECT_FALSE(sys.buffer(0).frame_dirty(pg(7)));
  // The reader did not touch storage: the page came over the network (the
  // single read on record is the writer's initial read-modify-write fetch).
  EXPECT_EQ(sys.storage().group(kT)->reads(), 1u);
  EXPECT_EQ(sys.metrics().coherency_violations.value(), 0u);
}

TEST(GemProtocol, ForceRemoteReaderReadsStorage) {
  auto sys = make_system(small_cfg(Coupling::GemLocking,
                                   UpdateStrategy::Force));
  sys.submit(0, write_txn({7}));
  sys.scheduler().run_all();
  sys.submit(1, read_txn({7}));
  sys.scheduler().run_all();
  EXPECT_EQ(sys.metrics().page_requests.value(), 0u);
  // Writer's initial fetch + reader's fetch of the force-written version.
  EXPECT_EQ(sys.storage().group(kT)->reads(), 2u);
  EXPECT_EQ(sys.metrics().coherency_violations.value(), 0u);
}

TEST(GemProtocol, StaleCopyDetectedAsInvalidation) {
  auto sys = make_system(small_cfg(Coupling::GemLocking,
                                   UpdateStrategy::NoForce));
  sys.submit(1, read_txn({7}));   // node 1 caches version 0
  sys.scheduler().run_all();
  sys.submit(0, write_txn({7}));  // node 0 makes version 1
  sys.scheduler().run_all();
  sys.submit(1, read_txn({7}));   // node 1 must detect the invalidation
  sys.scheduler().run_all();
  EXPECT_EQ(sys.metrics().invalidations.value(), 1u);
  EXPECT_EQ(sys.metrics().coherency_violations.value(), 0u);
  EXPECT_EQ(sys.buffer(1).cached_seqno(pg(7)), 1u);
}

TEST(GemProtocol, NoMessagesWithoutSharing) {
  auto sys = make_system(small_cfg(Coupling::GemLocking,
                                   UpdateStrategy::NoForce));
  sys.submit(0, write_txn({1, 2, 3}));
  sys.scheduler().run_all();
  EXPECT_EQ(sys.network().short_count() + sys.network().long_count(), 0u);
}

TEST(PclProtocol, LocalLocksAreMessageFree) {
  auto sys = make_system(small_cfg(Coupling::PrimaryCopy,
                                   UpdateStrategy::NoForce));
  sys.submit(0, write_txn({7}));  // GLA(7) == node 0
  sys.scheduler().run_all();
  EXPECT_EQ(sys.metrics().lock_local.value(), 1u);
  EXPECT_EQ(sys.metrics().lock_remote.value(), 0u);
  EXPECT_EQ(sys.network().short_count() + sys.network().long_count(), 0u);
  EXPECT_EQ(sys.protocol().directory().owner(pg(7)), 0);
}

TEST(PclProtocol, RemoteLockCostsRoundTrip) {
  auto sys = make_system(small_cfg(Coupling::PrimaryCopy,
                                   UpdateStrategy::NoForce));
  sys.submit(1, write_txn({7}));  // GLA(7) == node 0, requester node 1
  sys.scheduler().run_all();
  EXPECT_EQ(sys.metrics().lock_remote.value(), 1u);
  // Request (short) + grant (short) + release carrying the page (long).
  EXPECT_EQ(sys.network().short_count(), 2u);
  EXPECT_EQ(sys.network().long_count(), 1u);
  // NOFORCE: the GLA node is now the owner and holds the dirty copy.
  EXPECT_EQ(sys.protocol().directory().owner(pg(7)), 0);
  EXPECT_TRUE(sys.buffer(0).frame_dirty(pg(7)));
  EXPECT_FALSE(sys.buffer(1).frame_dirty(pg(7)));
}

TEST(PclProtocol, GrantCarriesCurrentPage) {
  auto sys = make_system(small_cfg(Coupling::PrimaryCopy,
                                   UpdateStrategy::NoForce));
  sys.submit(1, write_txn({7}));  // page ends up dirty at GLA node 0
  sys.scheduler().run_all();
  sys.buffer(1).install(pg(7), 0, false);  // plant a stale copy at node 1
  // Overwrite the stale copy marker so the grant must deliver the page.
  sys.submit(1, read_txn({7}));
  sys.scheduler().run_all();
  EXPECT_EQ(sys.metrics().commits.value(), 2u);
  // The grant was a long message (page attached): 2 long total now
  // (release of txn 1 + this grant).
  EXPECT_EQ(sys.network().long_count(), 2u);
  EXPECT_EQ(sys.metrics().page_requests.value(), 0u);
  EXPECT_EQ(sys.buffer(1).cached_seqno(pg(7)),
            sys.protocol().directory().seqno(pg(7)));
  EXPECT_EQ(sys.metrics().coherency_violations.value(), 0u);
}

TEST(PclProtocol, ForceReleaseIsShort) {
  auto sys = make_system(small_cfg(Coupling::PrimaryCopy,
                                   UpdateStrategy::Force));
  sys.submit(1, write_txn({7}));
  sys.scheduler().run_all();
  // Request + grant + release, all short (the force-write made disk current).
  EXPECT_EQ(sys.network().short_count(), 3u);
  EXPECT_EQ(sys.network().long_count(), 0u);
  EXPECT_EQ(sys.protocol().directory().owner(pg(7)), kNoNode);
}

TEST(PclProtocol, ReadOptimizationMakesRepeatedReadsLocal) {
  auto cfg = small_cfg(Coupling::PrimaryCopy, UpdateStrategy::NoForce);
  cfg.pcl_read_optimization = true;
  auto sys = make_system(cfg);
  sys.submit(1, read_txn({7}));  // remote; grants a read authorization
  sys.scheduler().run_all();
  EXPECT_EQ(sys.metrics().lock_remote.value(), 1u);
  sys.submit(1, read_txn({7}));  // now processed locally under the auth
  sys.scheduler().run_all();
  EXPECT_EQ(sys.metrics().lock_auth_local.value(), 1u);
  EXPECT_EQ(sys.metrics().lock_remote.value(), 1u);
}

TEST(PclProtocol, WriterRevokesReadAuthorizations) {
  auto cfg = small_cfg(Coupling::PrimaryCopy, UpdateStrategy::NoForce);
  cfg.pcl_read_optimization = true;
  auto sys = make_system(cfg);
  sys.submit(1, read_txn({7}));
  sys.scheduler().run_all();
  sys.submit(0, write_txn({7}));  // local write at the GLA revokes node 1
  sys.scheduler().run_all();
  EXPECT_EQ(sys.metrics().revocations.value(), 1u);
  // Next read from node 1 must go remote again.
  sys.submit(1, read_txn({7}));
  sys.scheduler().run_all();
  EXPECT_EQ(sys.metrics().lock_remote.value(), 2u);
  EXPECT_EQ(sys.metrics().coherency_violations.value(), 0u);
}

TEST(PclProtocol, WithoutReadOptimizationEveryRemoteReadPaysMessages) {
  auto sys = make_system(small_cfg(Coupling::PrimaryCopy,
                                   UpdateStrategy::NoForce));
  sys.submit(1, read_txn({7}));
  sys.scheduler().run_all();
  sys.submit(1, read_txn({7}));
  sys.scheduler().run_all();
  EXPECT_EQ(sys.metrics().lock_remote.value(), 2u);
  EXPECT_EQ(sys.metrics().lock_auth_local.value(), 0u);
}

template <Coupling C>
void deadlock_scenario() {
  auto sys = make_system(small_cfg(C, UpdateStrategy::NoForce));
  // Two transactions locking {7, 8} in opposite order on different nodes.
  // Page 7 -> GLA 0, page 600 -> GLA 1 keeps both protocols honest.
  sys.submit(0, write_txn({7, 600}));
  sys.submit(1, write_txn({600, 7}));
  sys.scheduler().run_all();
  // Both must eventually commit; at most one was aborted and restarted.
  EXPECT_EQ(sys.metrics().commits.value(), 2u);
  EXPECT_LE(sys.metrics().deadlocks.value(), 1u);
  EXPECT_EQ(sys.metrics().coherency_violations.value(), 0u);
  // Serialization: page sequence numbers reflect both writes.
  EXPECT_EQ(sys.protocol().directory().seqno(pg(7)), 2u);
  EXPECT_EQ(sys.protocol().directory().seqno(pg(600)), 2u);
}

TEST(Deadlock, GemVictimRestartsAndCommits) {
  deadlock_scenario<Coupling::GemLocking>();
}

TEST(Deadlock, PclVictimRestartsAndCommits) {
  deadlock_scenario<Coupling::PrimaryCopy>();
}

TEST(Locking, WriteLockSerializesConflictingWriters) {
  auto sys = make_system(small_cfg(Coupling::GemLocking,
                                   UpdateStrategy::NoForce));
  for (int i = 0; i < 10; ++i) {
    sys.submit(i % 2, write_txn({7}));
  }
  sys.scheduler().run_all();
  EXPECT_EQ(sys.metrics().commits.value(), 10u);
  EXPECT_EQ(sys.protocol().directory().seqno(pg(7)), 10u);
  EXPECT_EQ(sys.metrics().coherency_violations.value(), 0u);
  EXPECT_GT(sys.metrics().lock_waits.value(), 0u);
}

TEST(Locking, UpgradeWithinTransaction) {
  auto sys = make_system(small_cfg(Coupling::GemLocking,
                                   UpdateStrategy::NoForce));
  TxnSpec t;
  t.refs = {PageRef{pg(5), false}, PageRef{pg(5), true}};  // read then write
  sys.submit(0, t);
  sys.scheduler().run_all();
  EXPECT_EQ(sys.metrics().commits.value(), 1u);
  EXPECT_EQ(sys.protocol().directory().seqno(pg(5)), 1u);
}

}  // namespace
}  // namespace gemsd
