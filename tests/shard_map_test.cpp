// ShardMap unit tests: the pure routing layer under the sharded GLT and the
// PCL GLA maps. Routing is a function of (policy, shards, key) only, so every
// expectation here is exact — coverage of all shards, equivalence with the
// legacy GLA formulas the blocked policy replaced, and the shards=1 oracle
// property (everything maps to shard 0).
#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <vector>

#include "cc/shard_map.hpp"
#include "sim/random.hpp"
#include "workload/debit_credit.hpp"
#include "workload/scale_out.hpp"

namespace gemsd {
namespace {

using cc::ShardMap;

// --- the shards=1 oracle property -----------------------------------------

// With one shard every policy must collapse to shard 0 for every input kind;
// this is what makes `gem_shards=1` bit-identical to the unsharded core.
TEST(ShardMap, OneShardAlwaysRoutesToZero) {
  const ShardMap h = ShardMap::hashed(1);
  const ShardMap b = ShardMap::blocked(1, 100);
  for (std::int64_t k = 0; k < 1000; ++k) {
    EXPECT_EQ(h.shard_of(PageId{2, k}), 0);
    EXPECT_EQ(b.shard_of(PageId{2, k}), 0);
    EXPECT_EQ(h.shard_of_key(k), 0);
    EXPECT_EQ(b.shard_of_key(k), 0);
  }
  for (NodeId n = 0; n < 512; ++n) {
    EXPECT_EQ(h.shard_of_node(n), 0);
    EXPECT_EQ(b.shard_of_node(n), 0);
  }
}

// --- routing coverage and range -------------------------------------------

// Every shard must receive traffic under both policies (no dead GLT server),
// and every result must be in [0, shards).
TEST(ShardMap, AllShardsReachableUnderBothPolicies) {
  for (const int shards : {2, 4, 8}) {
    for (const ShardMap map :
         {ShardMap::hashed(shards), ShardMap::blocked(shards, 10)}) {
      std::set<int> hit;
      for (std::int64_t p = 0; p < 10 * shards; ++p) {
        for (PartitionId part = 0; part < 3; ++part) {
          const int s = map.shard_of(PageId{part, p});
          ASSERT_GE(s, 0);
          ASSERT_LT(s, shards);
          hit.insert(s);
        }
      }
      EXPECT_EQ(static_cast<int>(hit.size()), shards)
          << "policy " << static_cast<int>(map.policy()) << " shards "
          << shards;
    }
  }
}

// The hashed policy must actually spread adjacent pages: a contiguous page
// run (the drifting-hotspot shape) may not land >50% on any one shard.
TEST(ShardMap, HashedSpreadsContiguousPages) {
  const int shards = 4;
  const ShardMap map = ShardMap::hashed(shards);
  std::vector<int> count(shards, 0);
  const int pages = 1000;
  for (std::int64_t p = 0; p < pages; ++p) ++count[map.shard_of(PageId{0, p})];
  for (int s = 0; s < shards; ++s) {
    EXPECT_GT(count[s], pages / 10);
    EXPECT_LT(count[s], pages / 2);
  }
}

// --- equivalence with the legacy GLA formulas -----------------------------

// blocked(n, B) over a key reproduces (key / B) % n — the debit-credit
// branch-block rule and the modulo rule (B=1) the GLA maps used before they
// delegated to ShardMap.
TEST(ShardMap, BlockedMatchesLegacyBlockAndModuloFormulas) {
  for (const int nodes : {1, 3, 4, 10}) {
    const ShardMap block = ShardMap::blocked(nodes, 100);
    const ShardMap modulo = ShardMap::blocked(nodes);
    for (std::int64_t key = 0; key < 2500; key += 7) {
      EXPECT_EQ(block.shard_of_key(key),
                static_cast<int>((key / 100) % nodes));
      EXPECT_EQ(modulo.shard_of_key(key), static_cast<int>(key % nodes));
    }
  }
}

// DebitCreditGlaMap end to end: branch b's B/T page and account pages all
// resolve to node (b / kBranchesPerUnit) % nodes; HISTORY is never locked.
TEST(ShardMap, DebitCreditGlaFollowsBranchBlocks) {
  using Ids = DebitCreditIds;
  const int nodes = 4;
  const workload::DebitCreditGlaMap gla(nodes);
  for (std::int64_t branch = 0; branch < Ids::kBranchesPerUnit * nodes;
       branch += 13) {
    const NodeId want =
        static_cast<NodeId>((branch / Ids::kBranchesPerUnit) % nodes);
    EXPECT_EQ(gla.gla(PageId{Ids::kBranchTeller, branch}), want);
    const std::int64_t first_acct_page =
        branch * Ids::kAccountsPerBranch / Ids::kAccountsPerPage;
    EXPECT_EQ(gla.gla(PageId{Ids::kAccount, first_acct_page}), want);
  }
  EXPECT_EQ(gla.gla(PageId{Ids::kHistory, 0}), 0);
}

// A blocked map over page numbers (scale_out's GLA) and the affinity router
// over key blocks must agree: key k's transactions run on the node that owns
// k's pages.
TEST(ShardMap, ScaleOutRouterAndGlaAgreeOnOwnership) {
  const int nodes = 8;
  const workload::ScaleOutSpec spec;
  workload::ShardMapRouter router(
      ShardMap::blocked(nodes, spec.keys_per_node));
  const workload::ShardMapGlaMap gla(
      ShardMap::blocked(nodes, spec.keys_per_node * spec.pages_per_key));
  sim::Rng rng(1);
  for (std::int64_t key = 0; key < spec.keys_per_node * nodes; key += 3) {
    workload::TxnSpec t;
    t.affinity_key = key;
    const NodeId home = router.route(t, rng);
    for (std::int64_t i = 0; i < spec.pages_per_key; ++i) {
      const std::int64_t page = key * spec.pages_per_key + i;
      EXPECT_EQ(gla.gla(PageId{workload::ScaleOutIds::kData, page}), home);
    }
  }
}

// --- repartitioning cost ---------------------------------------------------

TEST(ShardMap, MovedFractionIsZeroForIdenticalMaps) {
  EXPECT_DOUBLE_EQ(
      ShardMap::moved_fraction(ShardMap::hashed(4), ShardMap::hashed(4), 512),
      0.0);
  EXPECT_DOUBLE_EQ(ShardMap::moved_fraction(ShardMap::blocked(1),
                                            ShardMap::hashed(1), 512),
                   0.0);  // one shard: nothing can move
}

// Doubling a modulo map moves exactly the pages whose residue changes:
// page % 2 vs page % 4 differ iff page % 4 is 2 or 3 — half the pages.
TEST(ShardMap, MovedFractionOfModuloDoublingIsHalf) {
  EXPECT_DOUBLE_EQ(ShardMap::moved_fraction(ShardMap::blocked(2),
                                            ShardMap::blocked(4), 1024),
                   0.5);
}

// Hash repartitioning moves about (1 - 1/new) of the pages — the classic
// argument for consistent hashing. We only pin the order of magnitude.
TEST(ShardMap, MovedFractionOfHashDoublingIsLarge) {
  const double f = ShardMap::moved_fraction(ShardMap::hashed(2),
                                            ShardMap::hashed(4), 4096);
  EXPECT_GT(f, 0.3);
  EXPECT_LT(f, 0.7);
}

// --- scale_out generator determinism --------------------------------------

// The generator's stream is a pure function of (spec, nodes, rng state):
// two generators fed identical Rngs emit identical transactions, including
// the drift offset (keyed on the generator's own counter, not on time).
TEST(ScaleOutGenerator, StreamIsDeterministic) {
  const int nodes = 16;
  workload::ScaleOutGenerator a({}, nodes), b({}, nodes);
  sim::Rng ra(99), rb(99);
  for (int i = 0; i < 2000; ++i) {
    const workload::TxnSpec x = a.next(ra);
    const workload::TxnSpec y = b.next(rb);
    ASSERT_EQ(x.affinity_key, y.affinity_key) << "txn " << i;
    ASSERT_EQ(x.refs.size(), y.refs.size()) << "txn " << i;
    for (std::size_t r = 0; r < x.refs.size(); ++r) {
      ASSERT_EQ(x.refs[r].page.page, y.refs[r].page.page);
      ASSERT_EQ(x.refs[r].write, y.refs[r].write);
    }
  }
  EXPECT_EQ(a.hot_key_offset(), b.hot_key_offset());
}

// The hotspot drifts: after drift_every_txns transactions the offset has
// advanced by one key, and it wraps modulo the key count.
TEST(ScaleOutGenerator, HotspotDriftsOneKeyPerInterval) {
  workload::ScaleOutSpec spec;
  spec.drift_every_txns = 50;
  const int nodes = 2;
  workload::ScaleOutGenerator gen(spec, nodes);
  sim::Rng rng(5);
  EXPECT_EQ(gen.hot_key_offset(), 0);
  for (int i = 0; i < 50; ++i) gen.next(rng);
  EXPECT_EQ(gen.hot_key_offset(), 1);
  for (int i = 0; i < 100; ++i) gen.next(rng);
  EXPECT_EQ(gen.hot_key_offset(), 3);
}

// Every generated page must live inside the DATA partition the config
// declares, at any node count (the stride-scatter must not escape range).
TEST(ScaleOutGenerator, PagesStayInsideTheDeclaredPartition) {
  for (const int nodes : {1, 3, 64}) {
    const workload::ScaleOutSpec spec;
    const std::int64_t pages =
        spec.keys_per_node * spec.pages_per_key * nodes;
    workload::ScaleOutGenerator gen(spec, nodes);
    sim::Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
      const workload::TxnSpec t = gen.next(rng);
      ASSERT_GE(t.affinity_key, 0);
      ASSERT_LT(t.affinity_key, gen.total_keys());
      for (const auto& ref : t.refs) {
        ASSERT_EQ(ref.page.partition, workload::ScaleOutIds::kData);
        ASSERT_GE(ref.page.page, 0);
        ASSERT_LT(ref.page.page, pages);
      }
    }
  }
}

}  // namespace
}  // namespace gemsd
