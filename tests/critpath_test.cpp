// Critical-path profiler (src/obs/critpath.*): blocking-chain attribution on
// synthetic recorder streams, reconciliation against traced response times on
// real GEM and PCL runs, the Chrome-trace import round trip (flows and
// counters included), the --trace-filter recording mask, and the per-phase
// percentile export.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/system.hpp"
#include "obs/analyze.hpp"
#include "obs/critpath.hpp"
#include "obs/json.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

#ifndef GEMSD_SOURCE_DIR
#define GEMSD_SOURCE_DIR "."
#endif

namespace gemsd {
namespace {

constexpr std::uint64_t tid(int node, std::uint64_t seq) {
  return (static_cast<std::uint64_t>(node) << 40) | seq;
}

SystemConfig traced_config(Coupling coupling, int nodes = 2) {
  SystemConfig cfg = make_debit_credit_config();
  cfg.nodes = nodes;
  cfg.coupling = coupling;
  cfg.update = UpdateStrategy::NoForce;
  cfg.routing = Routing::Random;
  cfg.warmup = 1.0;
  cfg.measure = 3.0;
  cfg.seed = 42;
  cfg.obs.trace = true;
  cfg.obs.trace_capacity = 1 << 20;
  return cfg;
}

// ------------------------------------------------------------ pure profiler

TEST(CritPath, EmptyTraceYieldsEmptyProfile) {
  const obs::CritPathAnalysis a = obs::critical_path({}, 0);
  EXPECT_EQ(a.txns, 0u);
  EXPECT_EQ(a.total.total_s(), 0.0);
  ASSERT_EQ(a.cohorts.size(), 5u);
  EXPECT_EQ(a.cohorts[0].label, "all");
  // Formatting and JSON export of an empty profile must stay well-formed.
  EXPECT_NE(obs::format_critical_path(a, 10).find("0 committed txns"),
            std::string::npos);
  obs::JsonValue doc;
  std::string err;
  EXPECT_TRUE(obs::json_parse(obs::critical_path_json(a), doc, err)) << err;
}

TEST(CritPath, HolderActivityResolvesLockWaits) {
  const std::uint64_t a = tid(0, 1), b = tid(1, 1);
  obs::TraceRecorder rec(64);
  // A: cpu burst (0.5 s queueing first), then 6 s blocked on B, then cpu.
  rec.span(obs::TraceName::kCpu, 0, a, 0.0, 2.0, /*wait=*/0.5);
  rec.span(obs::TraceName::kLockWait, 0, a, 2.0, 8.0, /*page=*/3.0,
           /*aux=*/1);
  rec.instant(obs::TraceName::kWaitEdge, 0, a, 2.0, static_cast<double>(b));
  rec.span(obs::TraceName::kCpu, 0, a, 8.0, 10.0, 0.0);
  rec.span(obs::TraceName::kTxn, 0, a, 0.0, 10.0);
  // B (the holder): disk I/O for the first half of the wait, CPU after.
  rec.span(obs::TraceName::kIoWrite, 1, b, 2.0, 5.0, /*page=*/3.0, /*aux=*/1);
  rec.span(obs::TraceName::kCpu, 1, b, 5.0, 8.0, 0.0);

  const obs::CritPathAnalysis an = obs::critical_path(rec.snapshot(), 0);
  ASSERT_EQ(an.txns, 1u);
  const obs::CritBreakdown& p = an.total;
  EXPECT_NEAR(p.cpu_s, 3.5, 1e-12);
  EXPECT_NEAR(p.cpu_wait_s, 0.5, 1e-12);
  EXPECT_NEAR(p.lock_wait_s, 6.0, 1e-12);
  EXPECT_NEAR(p.lock_holder_io_s, 3.0, 1e-12);
  EXPECT_NEAR(p.lock_holder_cpu_s, 3.0, 1e-12);
  EXPECT_NEAR(p.total_s(), 10.0, 1e-12);
  EXPECT_EQ(an.txns_within_tol, 1u);
  // Partition attribution follows the lock.wait span's aux field.
  ASSERT_FALSE(an.partitions.empty());
  EXPECT_EQ(an.partitions[0].partition, 1);
  EXPECT_EQ(an.partitions[0].lock_waits, 1u);
  EXPECT_NEAR(an.partitions[0].lock_wait_s, 6.0, 1e-12);
}

TEST(CritPath, SharedBlockingSplitsAcrossHolders) {
  const std::uint64_t a = tid(0, 1), b = tid(1, 1), c = tid(1, 2);
  obs::TraceRecorder rec(64);
  rec.span(obs::TraceName::kLockWait, 0, a, 0.0, 4.0, 3.0, 0);
  // One wait.edge batch: A blocked by both B and C.
  rec.instant(obs::TraceName::kWaitEdge, 0, a, 0.0, static_cast<double>(b));
  rec.instant(obs::TraceName::kWaitEdge, 0, a, 0.0, static_cast<double>(c));
  rec.span(obs::TraceName::kTxn, 0, a, 0.0, 4.0);
  rec.span(obs::TraceName::kIoRead, 1, b, 0.0, 4.0, 1.0, 0);   // B: all I/O
  rec.span(obs::TraceName::kGemAccess, 1, c, 0.0, 4.0);        // C: all GEM

  const obs::CritPathAnalysis an = obs::critical_path(rec.snapshot(), 0);
  ASSERT_EQ(an.txns, 1u);
  EXPECT_NEAR(an.total.lock_wait_s, 4.0, 1e-12);
  EXPECT_NEAR(an.total.lock_holder_io_s, 2.0, 1e-12);
  EXPECT_NEAR(an.total.lock_holder_gem_s, 2.0, 1e-12);
}

TEST(CritPath, GapsClassifyAsBackoffMessageOrOther) {
  const std::uint64_t a = tid(0, 1);
  obs::TraceRecorder rec(64);
  rec.span(obs::TraceName::kCpu, 0, a, 0.0, 2.0, 0.0);
  rec.instant(obs::TraceName::kRestart, 0, a, 2.0);  // backoff gap [2, 4)
  rec.span(obs::TraceName::kCpu, 0, a, 4.0, 6.0, 0.0);
  // Message gap [6, 9): the request leaves node 0 right at the gap start.
  rec.flow(obs::TraceKind::FlowBegin, 0, 77, 6.0, false);
  rec.span(obs::TraceName::kMsgSend, 0, 77, 6.0, 6.5);
  rec.span(obs::TraceName::kCpu, 0, a, 9.0, 9.5, 0.0);
  // Uncovered gap [9.5, 10): nothing explains it.
  rec.span(obs::TraceName::kTxn, 0, a, 0.0, 10.0);

  const obs::CritPathAnalysis an = obs::critical_path(rec.snapshot(), 0);
  ASSERT_EQ(an.txns, 1u);
  EXPECT_NEAR(an.total.cpu_s, 4.5, 1e-12);
  EXPECT_NEAR(an.total.backoff_s, 2.0, 1e-12);
  EXPECT_NEAR(an.total.msg_s, 3.0, 1e-12);
  EXPECT_NEAR(an.total.other_s, 0.5, 1e-12);
  EXPECT_NEAR(an.total.total_s(), 10.0, 1e-12);
}

// -------------------------------------------- reconciliation on real traces

void expect_reconciles(Coupling coupling, bool expect_gem) {
  const RunResult r = run_debit_credit(traced_config(coupling));
  ASSERT_TRUE(r.telemetry && r.telemetry->trace_enabled);
  ASSERT_EQ(r.telemetry->events_dropped, 0u);
  const obs::CritPathAnalysis a =
      obs::critical_path(r.telemetry->events, r.telemetry->events_dropped);
  EXPECT_EQ(a.txns, r.commits);
  ASSERT_GT(a.txns, 0u);
  // The acceptance bar: >= 99% of committed txns reconcile within 1% of the
  // traced response. By construction the sweep covers every second, so the
  // only slack is floating point.
  EXPECT_GE(static_cast<double>(a.txns_within_tol),
            0.99 * static_cast<double>(a.txns));
  EXPECT_LE(a.worst_rel_err, 1e-6);
  // The summed critical paths equal the summed responses.
  EXPECT_NEAR(a.total.total_s(), a.response_s,
              1e-9 * static_cast<double>(a.txns) + 1e-12);
  if (expect_gem) {
    EXPECT_GT(a.total.gem_s, 0.0);  // GLT accesses on the path
  } else {
    EXPECT_EQ(a.total.gem_s, 0.0);  // loose coupling never touches GEM
  }
  // Percentile cohorts partition the population: all = sum of the bands.
  ASSERT_EQ(a.cohorts.size(), 5u);
  EXPECT_EQ(a.cohorts[0].txns, a.cohorts[1].txns + a.cohorts[2].txns +
                                   a.cohorts[3].txns + a.cohorts[4].txns);
  EXPECT_LE(a.p50_ms, a.p90_ms);
  EXPECT_LE(a.p90_ms, a.p99_ms);
}

TEST(CritPath, ReconcilesWithTracedResponseGem) {
  expect_reconciles(Coupling::GemLocking, /*expect_gem=*/true);
}

TEST(CritPath, ReconcilesWithTracedResponsePcl) {
  expect_reconciles(Coupling::PrimaryCopy, /*expect_gem=*/false);
}

TEST(CritPath, ImportedTraceMatchesNativeProfile) {
  const RunResult r = run_debit_credit(traced_config(Coupling::GemLocking));
  ASSERT_TRUE(r.telemetry);
  const obs::CritPathAnalysis native =
      obs::critical_path(r.telemetry->events, r.telemetry->events_dropped);

  const std::string json = obs::chrome_trace_json(*r.telemetry, {});
  obs::JsonValue doc;
  std::string err;
  ASSERT_TRUE(obs::json_parse(json, doc, err)) << err;
  std::vector<obs::TraceEvent> events;
  std::uint64_t dropped = 0;
  ASSERT_TRUE(obs::parse_chrome_trace(doc, events, dropped, err)) << err;
  const obs::CritPathAnalysis imported = obs::critical_path(events, dropped);

  EXPECT_EQ(imported.txns, native.txns);
  // Timestamps ride a microsecond encoding; per-txn classes survive to
  // within a microsecond each.
  const double tol = 2e-6 * static_cast<double>(native.txns) + 1e-9;
  EXPECT_NEAR(imported.total.total_s(), native.total.total_s(), tol);
  EXPECT_NEAR(imported.total.cpu_s, native.total.cpu_s, tol);
  EXPECT_NEAR(imported.total.lock_wait_s, native.total.lock_wait_s, tol);
  EXPECT_NEAR(imported.total.gem_s, native.total.gem_s, tol);
  EXPECT_GE(static_cast<double>(imported.txns_within_tol),
            0.99 * static_cast<double>(imported.txns));
}

TEST(CritPath, JsonValidatesAgainstCommittedSchema) {
  const RunResult r = run_debit_credit(traced_config(Coupling::GemLocking));
  ASSERT_TRUE(r.telemetry);
  const obs::CritPathAnalysis a =
      obs::critical_path(r.telemetry->events, r.telemetry->events_dropped);
  obs::JsonValue doc;
  std::string err;
  ASSERT_TRUE(obs::json_parse(obs::critical_path_json(a), doc, err)) << err;

  std::ifstream f(std::string(GEMSD_SOURCE_DIR) +
                  "/schemas/critpath.schema.json");
  std::stringstream ss;
  ss << f.rdbuf();
  obs::JsonValue schema;
  ASSERT_TRUE(obs::json_parse(ss.str(), schema, err)) << err;
  std::vector<std::string> problems;
  EXPECT_TRUE(obs::json_schema_validate(schema, doc, problems))
      << (problems.empty() ? "" : problems.front());
}

// -------------------------------------------- flow / counter import round trip

TEST(ChromeImport, FlowsAndCountersRoundTrip) {
  obs::RunTelemetry tel;
  tel.trace_enabled = true;
  obs::TraceRecorder rec(64);
  rec.counter(obs::TraceName::kCtrThroughput, -1, 1.0, 42.5);
  rec.counter(obs::TraceName::kCtrCpuBusy, 3, 1.0, 0.75);
  rec.flow(obs::TraceKind::FlowBegin, 0, 9, 2.0, /*long_msg=*/true);
  rec.flow(obs::TraceKind::FlowEnd, 1, 9, 2.5, /*long_msg=*/true);
  rec.flow(obs::TraceKind::FlowBegin, 1, 10, 3.0, /*long_msg=*/false);
  tel.events = rec.snapshot();

  obs::JsonValue doc;
  std::string err;
  ASSERT_TRUE(obs::json_parse(obs::chrome_trace_json(tel, {}), doc, err))
      << err;
  std::vector<obs::TraceEvent> events;
  std::uint64_t dropped = 0;
  ASSERT_TRUE(obs::parse_chrome_trace(doc, events, dropped, err)) << err;
  ASSERT_EQ(events.size(), 5u);

  EXPECT_EQ(events[0].kind, obs::TraceKind::Counter);
  EXPECT_EQ(events[0].name, obs::TraceName::kCtrThroughput);
  EXPECT_EQ(events[0].node, -1);
  EXPECT_DOUBLE_EQ(events[0].value, 42.5);
  // The ".node<N>" track suffix folds back into the node field.
  EXPECT_EQ(events[1].name, obs::TraceName::kCtrCpuBusy);
  EXPECT_EQ(events[1].node, 3);
  EXPECT_DOUBLE_EQ(events[1].value, 0.75);

  EXPECT_EQ(events[2].kind, obs::TraceKind::FlowBegin);
  EXPECT_EQ(events[2].node, 0);
  EXPECT_EQ(events[2].id, 9u);
  EXPECT_DOUBLE_EQ(events[2].value, 1.0);  // long-message flag
  EXPECT_EQ(events[3].kind, obs::TraceKind::FlowEnd);
  EXPECT_EQ(events[3].node, 1);
  EXPECT_EQ(events[3].id, 9u);
  EXPECT_EQ(events[4].kind, obs::TraceKind::FlowBegin);
  EXPECT_DOUBLE_EQ(events[4].value, 0.0);  // short message: no "v" emitted
}

// ----------------------------------------------------------- --trace-filter

TEST(TraceFilter, MaskMatchesEventNames) {
  const auto all = obs::trace_name_filter("");
  for (bool b : all) EXPECT_TRUE(b);
  const auto io = obs::trace_name_filter("^io\\.");
  EXPECT_TRUE(io[static_cast<std::size_t>(obs::TraceName::kIoRead)]);
  EXPECT_TRUE(io[static_cast<std::size_t>(obs::TraceName::kIoLog)]);
  EXPECT_FALSE(io[static_cast<std::size_t>(obs::TraceName::kCpu)]);
  EXPECT_FALSE(io[static_cast<std::size_t>(obs::TraceName::kCommitIo)]);
  EXPECT_THROW((void)obs::trace_name_filter("("), std::regex_error);
}

TEST(TraceFilter, FilteredEventsNeverEnterTheRing) {
  obs::TraceRecorder rec(4);  // tiny on purpose
  rec.set_filter(obs::trace_name_filter("^commit$"));
  for (int i = 0; i < 100; ++i) {
    rec.span(obs::TraceName::kCpu, 0, tid(0, 1), i, i + 0.5);
  }
  rec.instant(obs::TraceName::kCommit, 0, tid(0, 1), 100.0);
  // Filtered events occupy no slots and never count as dropped.
  EXPECT_EQ(rec.size(), 1u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(rec.snapshot()[0].name, obs::TraceName::kCommit);
}

TEST(TraceFilter, DoesNotPerturbTheSimulationAndRecordsOnlyMatches) {
  SystemConfig plain = traced_config(Coupling::GemLocking);
  SystemConfig filtered = plain;
  filtered.obs.trace_filter = "^(txn|lock\\.wait)$";
  const RunResult a = run_debit_credit(plain);
  const RunResult b = run_debit_credit(filtered);
  // Recording is observation-only: the filter cannot change the simulation.
  EXPECT_EQ(a.commits, b.commits);
  EXPECT_DOUBLE_EQ(a.resp_ms, b.resp_ms);
  EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
  ASSERT_TRUE(b.telemetry);
  ASSERT_GT(b.telemetry->events.size(), 0u);
  for (const obs::TraceEvent& e : b.telemetry->events) {
    EXPECT_TRUE(e.name == obs::TraceName::kTxn ||
                e.name == obs::TraceName::kLockWait)
        << obs::to_string(e.name);
  }
  EXPECT_LT(b.telemetry->events.size(), a.telemetry->events.size());
}

TEST(TraceFilter, BenchArgsValidateTheRegexUpFront) {
  BenchOptions o;
  EXPECT_TRUE(try_parse_bench_args({"--trace-filter=^io\\."}, o).empty());
  EXPECT_EQ(o.trace_filter, "^io\\.");
  BenchOptions bad;
  const std::string err = try_parse_bench_args({"--trace-filter=("}, bad);
  EXPECT_NE(err.find("not a valid regex"), std::string::npos) << err;
}

// ------------------------------------------------- per-phase percentiles

TEST(Percentiles, ResponseAndPhasePercentilesAreExported) {
  SystemConfig cfg = traced_config(Coupling::GemLocking);
  cfg.obs.trace = false;
  const RunResult r = run_debit_credit(cfg);
  ASSERT_GT(r.commits, 0u);
  EXPECT_GT(r.pct_resp.p50, 0.0);
  EXPECT_LE(r.pct_resp.p50, r.pct_resp.p95);
  EXPECT_LE(r.pct_resp.p95, r.pct_resp.p99);
  // The median response sits in the same regime as the mean.
  EXPECT_LT(r.pct_resp.p50, 3.0 * r.resp_ms);
  EXPECT_GT(r.pct_resp.p99, 0.5 * r.resp_ms);
  // Phase percentiles are per-txn milliseconds of the same histograms the
  // breakdown means come from.
  EXPECT_GT(r.pct_cpu.p50, 0.0);
  EXPECT_LE(r.pct_cpu.p50, r.pct_cpu.p99);
  EXPECT_LE(r.pct_io.p50, r.pct_io.p99);
  EXPECT_LE(r.pct_cc.p50, r.pct_cc.p99);
  EXPECT_LE(r.pct_queue.p50, r.pct_queue.p99);
}

}  // namespace
}  // namespace gemsd
