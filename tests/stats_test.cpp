// The shared zero-sample conventions: every ratio computed from simulation
// counters goes through sim::safe_ratio, and the estimators must return
// well-defined values before they have seen enough data (empty Histogram
// quantiles, BatchMeans confidence intervals with fewer than two batches).
#include <gtest/gtest.h>

#include "sim/stats.hpp"

namespace gemsd {
namespace {

TEST(SafeRatio, DividesWhenDenominatorPositive) {
  EXPECT_DOUBLE_EQ(sim::safe_ratio(6.0, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(sim::safe_ratio(0.0, 5.0), 0.0);
}

TEST(SafeRatio, ZeroDenominatorYieldsDefault) {
  EXPECT_DOUBLE_EQ(sim::safe_ratio(6.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(sim::safe_ratio(0.0, 0.0), 0.0);
}

TEST(SafeRatio, NegativeDenominatorCountsAsEmpty) {
  // Denominators are counts or durations; anything <= 0 means "no samples".
  EXPECT_DOUBLE_EQ(sim::safe_ratio(1.0, -2.0), 0.0);
}

TEST(SafeRatio, CustomEmptyValue) {
  // local_lock_fraction reports 1.0 when no lock request was ever issued.
  EXPECT_DOUBLE_EQ(sim::safe_ratio(0.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(sim::safe_ratio(3.0, 4.0, 1.0), 0.75);
}

TEST(SafeRatio, IsConstexpr) {
  static_assert(sim::safe_ratio(1.0, 2.0) == 0.5);
  static_assert(sim::safe_ratio(1.0, 0.0, 7.0) == 7.0);
}

TEST(HistogramEdge, EmptyQuantileIsZeroAtEveryQ) {
  sim::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  for (double q : {0.01, 0.5, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 0.0);
  }
}

TEST(HistogramEdge, ResetRestoresEmptyBehaviour) {
  sim::Histogram h;
  h.add(0.5);
  EXPECT_GT(h.quantile(0.5), 0.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(HistogramEdge, SingleSampleInterpolatesWithinItsBucket) {
  // [1, 16) in 4 geometric buckets: edges 1, 2, 4, 8, 16. One sample at 3
  // lands in [2, 4); every quantile interpolates across that bucket alone.
  sim::Histogram h(1.0, 16.0, 4);
  h.add(3.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_NEAR(h.quantile(0.5), 3.0, 1e-9);   // 2 + 0.5 * (4 - 2)
  EXPECT_NEAR(h.quantile(0.25), 2.5, 1e-9);
  EXPECT_NEAR(h.quantile(1.0), 4.0, 1e-9);   // upper bucket edge
}

TEST(HistogramEdge, UnderflowInterpolatesToLowerBound) {
  // Samples below `lo` collect in the underflow bucket, whose quantile
  // interpolates linearly from 0 to lo.
  sim::Histogram h(1.0, 16.0, 4);
  h.add(0.125);
  EXPECT_NEAR(h.quantile(0.5), 0.5, 1e-12);  // lo * frac
  EXPECT_NEAR(h.quantile(0.1), 0.1, 1e-12);
}

TEST(HistogramEdge, OverflowLandsAboveHi) {
  // Samples at or beyond `hi` collect in the overflow bucket [16, 32); the
  // quantile can exceed hi but never returns garbage.
  sim::Histogram h(1.0, 16.0, 4);
  h.add(200.0);
  EXPECT_GE(h.quantile(0.01), 16.0 - 1e-9);
  EXPECT_NEAR(h.quantile(0.5), 24.0, 1e-9);  // 16 + 0.5 * (32 - 16)
}

TEST(HistogramEdge, BucketBoundaryInterpolation) {
  // Two samples in adjacent buckets: the median exhausts the first bucket
  // exactly (frac = 1 -> its upper edge); q = 0.75 is halfway through the
  // second.
  sim::Histogram h(1.0, 16.0, 4);
  h.add(1.5);  // [1, 2)
  h.add(3.0);  // [2, 4)
  EXPECT_NEAR(h.quantile(0.5), 2.0, 1e-9);
  EXPECT_NEAR(h.quantile(0.75), 3.0, 1e-9);
}

TEST(BatchMeansEdge, NoSamplesGivesZeroMeanAndZeroHalfWidth) {
  sim::BatchMeans bm(10);
  EXPECT_EQ(bm.batches(), 0u);
  EXPECT_DOUBLE_EQ(bm.mean(), 0.0);
  EXPECT_DOUBLE_EQ(bm.half_width_95(), 0.0);
}

TEST(BatchMeansEdge, OneBatchHasMeanButNoHalfWidth) {
  sim::BatchMeans bm(4);
  for (int i = 0; i < 4; ++i) bm.add(2.0);
  EXPECT_EQ(bm.batches(), 1u);
  EXPECT_DOUBLE_EQ(bm.mean(), 2.0);
  // A confidence interval needs at least two batch means.
  EXPECT_DOUBLE_EQ(bm.half_width_95(), 0.0);
}

TEST(BatchMeansEdge, PartialBatchDoesNotCount) {
  sim::BatchMeans bm(100);
  for (int i = 0; i < 99; ++i) bm.add(1.0);
  EXPECT_EQ(bm.batches(), 0u);
  EXPECT_DOUBLE_EQ(bm.half_width_95(), 0.0);
}

TEST(MeanStatEdge, EmptyStatIsAllZeros) {
  sim::MeanStat m;
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
  EXPECT_DOUBLE_EQ(m.min(), 0.0);
  EXPECT_DOUBLE_EQ(m.max(), 0.0);
}

}  // namespace
}  // namespace gemsd
