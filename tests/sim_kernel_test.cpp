// Unit tests for the discrete-event kernel: scheduler ordering, coroutine
// task composition, resources (FCFS k-server), one-shot futures, RNG and
// statistics.
#include <gtest/gtest.h>

#include <vector>

#include "sim/oneshot.hpp"
#include "sim/random.hpp"
#include "sim/resource.hpp"
#include "sim/scheduler.hpp"
#include "sim/stats.hpp"
#include "sim/task.hpp"

namespace gemsd::sim {
namespace {

TEST(Scheduler, RunsCallbacksInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_call(3.0, [&] { order.push_back(3); });
  s.schedule_call(1.0, [&] { order.push_back(1); });
  s.schedule_call(2.0, [&] { order.push_back(2); });
  s.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
}

TEST(Scheduler, SameTimeEventsAreFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_call(5.0, [&order, i] { order.push_back(i); });
  }
  s.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Scheduler, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Scheduler s;
  int hits = 0;
  s.schedule_call(1.0, [&] { ++hits; });
  s.schedule_call(2.5, [&] { ++hits; });
  s.schedule_call(7.0, [&] { ++hits; });
  EXPECT_EQ(s.run_until(3.0), 2u);
  EXPECT_EQ(hits, 2);
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
  s.run_all();
  EXPECT_EQ(hits, 3);
}

Task<void> delayer(Scheduler& s, double d, double* done_at) {
  co_await s.delay(d);
  *done_at = s.now();
}

TEST(Scheduler, SpawnedProcessDelays) {
  Scheduler s;
  double done = -1.0;
  s.spawn(delayer(s, 4.5, &done));
  s.run_all();
  EXPECT_DOUBLE_EQ(done, 4.5);
  EXPECT_EQ(s.live_processes(), 0u);
}

Task<int> add_after(Scheduler& s, double d, int a, int b) {
  co_await s.delay(d);
  co_return a + b;
}

Task<void> parent(Scheduler& s, int* out) {
  const int x = co_await add_after(s, 1.0, 2, 3);
  const int y = co_await add_after(s, 2.0, x, 10);
  *out = y;
}

TEST(Task, NestedAwaitPropagatesValuesAndTime) {
  Scheduler s;
  int out = 0;
  s.spawn(parent(s, &out));
  s.run_all();
  EXPECT_EQ(out, 15);
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
}

Task<void> forever(Scheduler& s, int* steps) {
  for (;;) {
    co_await s.delay(1.0);
    ++*steps;
  }
}

TEST(Scheduler, TeardownDestroysSuspendedProcesses) {
  int steps = 0;
  {
    Scheduler s;
    s.spawn(forever(s, &steps));
    s.spawn(forever(s, &steps));
    s.run_until(10.0);
    EXPECT_EQ(s.live_processes(), 2u);
  }  // destructor must free both frames (ASAN/valgrind would flag leaks)
  EXPECT_EQ(steps, 20);
}

Task<void> worker(Scheduler& s, Resource& r, double service, int* done) {
  co_await r.use(service);
  ++*done;
}

TEST(Resource, SingleServerSerializesFcfs) {
  Scheduler s;
  Resource r(s, 1, "disk");
  int done = 0;
  for (int i = 0; i < 4; ++i) s.spawn(worker(s, r, 2.0, &done));
  s.run_all();
  EXPECT_EQ(done, 4);
  EXPECT_DOUBLE_EQ(s.now(), 8.0);  // 4 jobs x 2.0 serialized
  EXPECT_EQ(r.completions(), 4u);
}

TEST(Resource, MultiServerRunsInParallel) {
  Scheduler s;
  Resource r(s, 4, "cpu");
  int done = 0;
  for (int i = 0; i < 4; ++i) s.spawn(worker(s, r, 2.0, &done));
  s.run_all();
  EXPECT_EQ(done, 4);
  EXPECT_DOUBLE_EQ(s.now(), 2.0);
}

TEST(Resource, UtilizationAccounting) {
  Scheduler s;
  Resource r(s, 2, "cpu");
  int done = 0;
  // Two jobs of 3s on 2 servers over a 6s horizon -> utilization 0.5.
  for (int i = 0; i < 2; ++i) s.spawn(worker(s, r, 3.0, &done));
  s.run_until(6.0);
  EXPECT_NEAR(r.utilization(), 0.5, 1e-12);
}

TEST(Resource, WaitTimesMeasured) {
  Scheduler s;
  Resource r(s, 1);
  int done = 0;
  for (int i = 0; i < 3; ++i) s.spawn(worker(s, r, 1.0, &done));
  s.run_all();
  // Waits: 0, 1, 2 -> mean 1.0
  EXPECT_NEAR(r.wait_stat().mean(), 1.0, 1e-12);
  EXPECT_EQ(r.wait_stat().count(), 3u);
}

Task<void> producer(Scheduler& s, OneShot<int>& o) {
  co_await s.delay(5.0);
  o.set(42);
}

Task<void> consumer(Scheduler& s, OneShot<int>& o, int* got, double* at) {
  *got = co_await o.wait();
  *at = s.now();
}

TEST(OneShot, WaitThenSet) {
  Scheduler s;
  OneShot<int> o(s);
  int got = 0;
  double at = 0;
  s.spawn(consumer(s, o, &got, &at));
  s.spawn(producer(s, o));
  s.run_all();
  EXPECT_EQ(got, 42);
  EXPECT_DOUBLE_EQ(at, 5.0);
}

TEST(OneShot, SetThenWait) {
  Scheduler s;
  OneShot<int> o(s);
  o.set(7);
  int got = 0;
  double at = -1;
  s.spawn(consumer(s, o, &got, &at));
  s.run_all();
  EXPECT_EQ(got, 7);
  EXPECT_DOUBLE_EQ(at, 0.0);
}

TEST(Stats, MeanStatBasics) {
  MeanStat m;
  for (double x : {1.0, 2.0, 3.0, 4.0}) m.add(x);
  EXPECT_DOUBLE_EQ(m.mean(), 2.5);
  EXPECT_DOUBLE_EQ(m.min(), 1.0);
  EXPECT_DOUBLE_EQ(m.max(), 4.0);
  EXPECT_NEAR(m.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_EQ(m.count(), 4u);
}

TEST(Stats, TimeWeightedMean) {
  TimeWeighted tw;
  tw.set(0.0, 1.0);   // value 1 over [0,4)
  tw.set(4.0, 3.0);   // value 3 over [4,8)
  EXPECT_NEAR(tw.mean(8.0), 2.0, 1e-12);
  tw.reset(8.0);
  EXPECT_NEAR(tw.mean(10.0), 3.0, 1e-12);
}

TEST(Stats, HistogramQuantiles) {
  Histogram h(1e-4, 10.0, 200);
  for (int i = 1; i <= 1000; ++i) h.add(i * 1e-3);  // 1ms..1s uniform
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.05);
  EXPECT_NEAR(h.quantile(0.95), 0.95, 0.08);
}

TEST(Rng, ExponentialMean) {
  Rng rng(1);
  MeanStat m;
  for (int i = 0; i < 200000; ++i) m.add(rng.exponential(0.01));
  EXPECT_NEAR(m.mean(), 0.01, 2e-4);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Zipf, SkewIncreasesHeadMass) {
  Rng rng(3);
  ZipfGenerator flat(100, 0.0), skew(100, 1.0);
  int flat_head = 0, skew_head = 0;
  for (int i = 0; i < 20000; ++i) {
    if (flat.sample(rng) < 10) ++flat_head;
    if (skew.sample(rng) < 10) ++skew_head;
  }
  EXPECT_GT(skew_head, flat_head * 2);
  EXPECT_NEAR(flat_head / 20000.0, 0.10, 0.02);
}

TEST(Zipf, RanksWithinRange) {
  Rng rng(4);
  ZipfGenerator z(17, 0.8);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(z.sample(rng), 17u);
}

}  // namespace
}  // namespace gemsd::sim
