// Telemetry layer: JSON writer/parser/schema validator, the trace recorder
// ring, Chrome trace-event export (golden bytes), config fingerprints, and —
// the properties the whole subsystem is built around — observation does not
// perturb the simulation, and traces/samples are bit-identical at any --jobs
// value.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "obs/fingerprint.hpp"
#include "obs/json.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace gemsd {
namespace {

SystemConfig quick_config(int nodes = 2) {
  SystemConfig cfg = make_debit_credit_config();
  cfg.nodes = nodes;
  cfg.coupling = Coupling::GemLocking;
  cfg.update = UpdateStrategy::NoForce;
  cfg.routing = Routing::Random;
  cfg.warmup = 1.0;
  cfg.measure = 3.0;
  cfg.seed = 42;
  return cfg;
}

// ---------------------------------------------------------------- JSON core

TEST(Json, WriterParserRoundtrip) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("name", "a \"quoted\"\nstring");
  w.kv("count", std::int64_t{-3});
  w.kv("ratio", 0.25);
  w.kv("flag", true);
  w.key("missing");
  w.value_null();
  w.key("list");
  w.begin_array();
  w.value(std::uint64_t{18446744073709551615ull});
  w.value(1.5e-9);
  w.end_array();
  w.key("nested");
  w.begin_object();
  w.kv("x", 1.0);
  w.end_object();
  w.end_object();

  obs::JsonValue doc;
  std::string err;
  ASSERT_TRUE(obs::json_parse(w.str(), doc, err)) << err;
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("name")->str, "a \"quoted\"\nstring");
  EXPECT_DOUBLE_EQ(doc.find("count")->num, -3.0);
  EXPECT_DOUBLE_EQ(doc.find("ratio")->num, 0.25);
  EXPECT_TRUE(doc.find("flag")->b);
  EXPECT_EQ(doc.find("missing")->kind, obs::JsonValue::Kind::Null);
  ASSERT_EQ(doc.find("list")->arr.size(), 2u);
  EXPECT_DOUBLE_EQ(doc.find("nested")->find("x")->num, 1.0);
}

TEST(Json, ParserRejectsMalformedInput) {
  obs::JsonValue doc;
  std::string err;
  EXPECT_FALSE(obs::json_parse("{\"a\":}", doc, err));
  EXPECT_FALSE(obs::json_parse("[1,2", doc, err));
  EXPECT_FALSE(obs::json_parse("{} trailing", doc, err));
  EXPECT_FALSE(obs::json_parse("", doc, err));
}

TEST(Json, SchemaAcceptsAndRejects) {
  const std::string schema_text = R"({
    "type": "object",
    "required": ["schema", "runs"],
    "properties": {
      "schema": {"type": "string", "enum": ["gemsd.results.v1"]},
      "runs": {
        "type": "array",
        "minItems": 1,
        "items": {"type": "object", "required": ["resp_ms"],
                  "properties": {"resp_ms": {"type": "number"}}}
      }
    }
  })";
  obs::JsonValue schema;
  std::string err;
  ASSERT_TRUE(obs::json_parse(schema_text, schema, err)) << err;

  obs::JsonValue doc;
  std::vector<std::string> problems;
  ASSERT_TRUE(obs::json_parse(
      R"({"schema":"gemsd.results.v1","runs":[{"resp_ms":12.5}]})", doc, err));
  EXPECT_TRUE(obs::json_schema_validate(schema, doc, problems))
      << (problems.empty() ? "" : problems.front());

  // Missing required key inside items.
  problems.clear();
  ASSERT_TRUE(obs::json_parse(R"({"schema":"gemsd.results.v1","runs":[{}]})",
                              doc, err));
  EXPECT_FALSE(obs::json_schema_validate(schema, doc, problems));
  EXPECT_FALSE(problems.empty());

  // Wrong enum value.
  problems.clear();
  ASSERT_TRUE(obs::json_parse(R"({"schema":"v2","runs":[{"resp_ms":1}]})",
                              doc, err));
  EXPECT_FALSE(obs::json_schema_validate(schema, doc, problems));

  // Wrong type.
  problems.clear();
  ASSERT_TRUE(obs::json_parse(
      R"({"schema":"gemsd.results.v1","runs":[{"resp_ms":"slow"}]})", doc,
      err));
  EXPECT_FALSE(obs::json_schema_validate(schema, doc, problems));

  // minItems violated.
  problems.clear();
  ASSERT_TRUE(
      obs::json_parse(R"({"schema":"gemsd.results.v1","runs":[]})", doc, err));
  EXPECT_FALSE(obs::json_schema_validate(schema, doc, problems));
}

// ------------------------------------------------------------ trace recorder

TEST(TraceRecorder, RingOverwritesOldestAndCountsDropped) {
  obs::TraceRecorder rec(4);
  for (int i = 0; i < 6; ++i) {
    rec.instant(obs::TraceName::kCommit, 0, static_cast<std::uint64_t>(i + 1),
                static_cast<double>(i));
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.dropped(), 2u);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest two (t=0, t=1) were overwritten; the rest come back in order.
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(events[static_cast<std::size_t>(i)].t,
                     static_cast<double>(i + 2));
  }
}

TEST(TraceRecorder, ClearResetsRingAndDropCounter) {
  obs::TraceRecorder rec(2);
  for (int i = 0; i < 5; ++i) {
    rec.instant(obs::TraceName::kCommit, 0, 1, static_cast<double>(i));
  }
  EXPECT_GT(rec.dropped(), 0u);
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
  rec.instant(obs::TraceName::kCommit, 0, 1, 9.0);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_DOUBLE_EQ(events[0].t, 9.0);
}

TEST(SlowTxnLog, KeepsKSlowestInDeterministicOrder) {
  obs::SlowTxnLog log(3);
  for (int i = 0; i < 10; ++i) {
    obs::SlowTxn t;
    t.id = static_cast<std::uint64_t>(i);
    t.arrival = static_cast<double>(i);
    t.response = static_cast<double>((i * 7) % 10);  // 0,7,4,1,8,5,2,9,6,3
    log.add(t);
  }
  const auto slowest = log.sorted();
  ASSERT_EQ(slowest.size(), 3u);
  EXPECT_DOUBLE_EQ(slowest[0].response, 9.0);
  EXPECT_DOUBLE_EQ(slowest[1].response, 8.0);
  EXPECT_DOUBLE_EQ(slowest[2].response, 7.0);
}

// ------------------------------------------------------------- trace export

TEST(ChromeTrace, GoldenSnippet) {
  obs::RunTelemetry tel;
  tel.stats_start = 0.5;
  tel.end = 2.0;
  tel.trace_enabled = true;

  obs::TraceRecorder rec(64);
  rec.span(obs::TraceName::kTxn, 0, 3, 1.0, 1.05, 2.0);
  rec.phase_total(obs::TraceName::kPhaseCpu, 0, 3, 1.05, 0.010);
  rec.phase_total(obs::TraceName::kPhaseIo, 0, 3, 1.05, 0.030);
  rec.instant(obs::TraceName::kCommit, 0, 3, 1.05);
  rec.counter(obs::TraceName::kCtrThroughput, -1, 1.5, 123.5);
  rec.flow(obs::TraceKind::FlowBegin, 0, 7, 1.01, false);
  rec.flow(obs::TraceKind::FlowEnd, 1, 7, 1.02, false);
  tel.events = rec.snapshot();

  const std::string json = obs::chrome_trace_json(tel, {{"seed", "42"}});

  const std::string expected =
      "{\"displayTimeUnit\":\"ms\","
      "\"otherData\":{\"schema\":\"gemsd.trace.v1\",\"seed\":42,"
      "\"stats_start_s\":0.5,\"end_s\":2,\"events_dropped\":0},"
      "\"traceEvents\":["
      "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":0,"
      "\"args\":{\"name\":\"cluster\"}},"
      "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,"
      "\"args\":{\"name\":\"node0\"}},"
      "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"background\"}},"
      "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":2,"
      "\"args\":{\"name\":\"node1\"}},"
      "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":2,\"tid\":0,"
      "\"args\":{\"name\":\"background\"}},"
      "{\"name\":\"txn\",\"cat\":\"txn\",\"ph\":\"X\",\"pid\":1,\"tid\":4,"
      "\"ts\":1000000,\"dur\":50000,"
      "\"args\":{\"id\":3,\"cpu_ms\":10,\"cpu_wait_ms\":0,\"io_ms\":30,"
      "\"cc_ms\":0,\"mpl_wait_ms\":0,\"restarts\":0,\"type\":2}},"
      "{\"name\":\"commit\",\"cat\":\"txn\",\"ph\":\"i\",\"pid\":1,"
      "\"tid\":4,\"ts\":1050000,\"args\":{\"id\":3},\"s\":\"t\"},"
      "{\"name\":\"throughput\",\"cat\":\"sampler\",\"ph\":\"C\",\"pid\":0,"
      "\"tid\":0,\"ts\":1500000,\"args\":{\"value\":123.5}},"
      "{\"name\":\"msg\",\"cat\":\"net\",\"ph\":\"s\",\"pid\":1,\"tid\":0,"
      "\"ts\":1010000,\"id\":7},"
      "{\"name\":\"msg\",\"cat\":\"net\",\"ph\":\"f\",\"pid\":2,\"tid\":0,"
      "\"ts\":1020000,\"bp\":\"e\",\"id\":7}"
      "]}";
  EXPECT_EQ(json, expected);

  // The golden bytes must themselves be valid JSON.
  obs::JsonValue doc;
  std::string err;
  EXPECT_TRUE(obs::json_parse(json, doc, err)) << err;
}

// ------------------------------------------------------------- fingerprints

TEST(Fingerprint, ObsSettingsDoNotChangeConfigIdentity) {
  SystemConfig a = quick_config();
  SystemConfig b = a;
  b.obs.trace = true;
  b.obs.sample_every = 0.25;
  b.obs.slow_k = 10;
  EXPECT_EQ(obs::config_hash(a), obs::config_hash(b));

  SystemConfig c = a;
  c.seed = a.seed + 1;
  EXPECT_NE(obs::config_hash(a), obs::config_hash(c));
  SystemConfig d = a;
  d.buffer_pages = a.buffer_pages + 1;
  EXPECT_NE(obs::config_hash(a), obs::config_hash(d));

  EXPECT_EQ(obs::config_hash_hex(a).size(), 16u);
}

TEST(Fingerprint, ConfigJsonIsValidJson) {
  obs::JsonValue doc;
  std::string err;
  ASSERT_TRUE(obs::json_parse(obs::config_json(quick_config()), doc, err))
      << err;
  EXPECT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.find("nodes")->num, 2.0);
}

// ----------------------------------------------------- observation in a run

TEST(Observation, DisabledRunRecordsNoEvents) {
  SystemConfig cfg = quick_config();
  ASSERT_FALSE(cfg.obs.trace);
  const RunResult r = run_debit_credit(cfg);
  ASSERT_TRUE(r.telemetry);
  EXPECT_FALSE(r.telemetry->trace_enabled);
  EXPECT_TRUE(r.telemetry->events.empty());
  EXPECT_EQ(r.telemetry->events_dropped, 0u);
  EXPECT_TRUE(r.telemetry->samples.empty());
  EXPECT_TRUE(r.telemetry->slowest.empty());
  // The detail dump is always collected.
  EXPECT_FALSE(r.telemetry->detail.empty());
}

TEST(Observation, DoesNotPerturbTheSimulation) {
  const SystemConfig plain = quick_config();
  SystemConfig observed = plain;
  observed.obs.trace = true;
  observed.obs.trace_capacity = 1 << 16;
  observed.obs.sample_every = 0.25;
  observed.obs.slow_k = 5;

  const RunResult a = run_debit_credit(plain);
  const RunResult b = run_debit_credit(observed);
  EXPECT_EQ(a.commits, b.commits);
  EXPECT_EQ(a.aborts, b.aborts);
  EXPECT_EQ(a.resp_ms, b.resp_ms);
  EXPECT_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.cpu_util, b.cpu_util);
  EXPECT_EQ(a.brk_io_ms, b.brk_io_ms);

  ASSERT_TRUE(b.telemetry);
  EXPECT_TRUE(b.telemetry->trace_enabled);
  EXPECT_FALSE(b.telemetry->events.empty());
  EXPECT_FALSE(b.telemetry->samples.empty());
  EXPECT_FALSE(b.telemetry->slowest.empty());
}

TEST(Observation, SamplerCoversWarmupAndMeasurement) {
  SystemConfig cfg = quick_config();
  cfg.obs.sample_every = 0.5;
  const RunResult r = run_debit_credit(cfg);
  ASSERT_TRUE(r.telemetry);
  const auto& samples = r.telemetry->samples;
  ASSERT_GT(samples.size(), 4u);
  bool saw_warmup = false, saw_measure = false;
  double prev_t = 0.0;
  for (const auto& s : samples) {
    EXPECT_GT(s.t, prev_t);
    prev_t = s.t;
    (s.in_warmup ? saw_warmup : saw_measure) = true;
  }
  EXPECT_TRUE(saw_warmup);
  EXPECT_TRUE(saw_measure);
}

TEST(Observation, TraceIsBitIdenticalAtAnyJobCount) {
  std::vector<SystemConfig> cfgs;
  for (int n : {1, 2, 3}) {
    SystemConfig cfg = quick_config(n);
    cfg.warmup = 0.5;
    cfg.measure = 2.0;
    cfgs.push_back(cfg);
  }
  cfgs[1].obs.trace = true;
  cfgs[1].obs.trace_capacity = 1 << 16;
  cfgs[1].obs.sample_every = 0.5;
  cfgs[1].obs.slow_k = 5;

  const std::vector<RunResult> serial = SweepRunner(1).run_debit_credit(cfgs);
  const std::vector<RunResult> parallel = SweepRunner(4).run_debit_credit(cfgs);
  ASSERT_EQ(serial.size(), 3u);
  ASSERT_EQ(parallel.size(), 3u);

  const std::vector<std::pair<std::string, std::string>> meta = {
      {"seed", "42"}};
  ASSERT_TRUE(serial[1].telemetry && parallel[1].telemetry);
  const std::string trace_serial =
      obs::chrome_trace_json(*serial[1].telemetry, meta);
  const std::string trace_parallel =
      obs::chrome_trace_json(*parallel[1].telemetry, meta);
  EXPECT_EQ(trace_serial, trace_parallel);
  EXPECT_FALSE(serial[1].telemetry->events.empty());

  // Sampler and detail dumps are part of the same guarantee.
  ASSERT_EQ(serial[1].telemetry->samples.size(),
            parallel[1].telemetry->samples.size());
  for (std::size_t i = 0; i < serial[1].telemetry->samples.size(); ++i) {
    EXPECT_EQ(serial[1].telemetry->samples[i].throughput,
              parallel[1].telemetry->samples[i].throughput);
    EXPECT_EQ(serial[1].telemetry->samples[i].resp_ms,
              parallel[1].telemetry->samples[i].resp_ms);
  }
}

TEST(Observation, TxnPhaseTotalsReconcileWithReportedBreakdown) {
  SystemConfig cfg = quick_config();
  cfg.obs.trace = true;
  cfg.obs.trace_capacity = 1 << 20;  // keep every event, no ring drops
  const RunResult r = run_debit_credit(cfg);
  ASSERT_TRUE(r.telemetry && r.telemetry->trace_enabled);
  ASSERT_EQ(r.telemetry->events_dropped, 0u);
  ASSERT_GT(r.commits, 0u);

  double cpu = 0, cpu_wait = 0, io = 0, cc = 0, queue = 0;
  std::uint64_t txn_spans = 0;
  for (const auto& e : r.telemetry->events) {
    if (e.kind == obs::TraceKind::Span && e.name == obs::TraceName::kTxn) {
      ++txn_spans;
    }
    if (e.kind != obs::TraceKind::PhaseTotal) continue;
    switch (e.name) {
      case obs::TraceName::kPhaseCpu: cpu += e.value; break;
      case obs::TraceName::kPhaseCpuWait: cpu_wait += e.value; break;
      case obs::TraceName::kPhaseIo: io += e.value; break;
      case obs::TraceName::kPhaseCc: cc += e.value; break;
      case obs::TraceName::kPhaseQueue: queue += e.value; break;
      default: break;
    }
  }
  EXPECT_EQ(txn_spans, r.commits);

  const double per_txn_ms = 1e3 / static_cast<double>(r.commits);
  const auto within_1pct = [](double got, double want) {
    return std::abs(got - want) <= 0.01 * std::max(want, 1e-9) + 1e-9;
  };
  EXPECT_TRUE(within_1pct(cpu * per_txn_ms, r.brk_cpu_ms))
      << cpu * per_txn_ms << " vs " << r.brk_cpu_ms;
  EXPECT_TRUE(within_1pct(cpu_wait * per_txn_ms, r.brk_cpu_wait_ms))
      << cpu_wait * per_txn_ms << " vs " << r.brk_cpu_wait_ms;
  EXPECT_TRUE(within_1pct(io * per_txn_ms, r.brk_io_ms))
      << io * per_txn_ms << " vs " << r.brk_io_ms;
  EXPECT_TRUE(within_1pct(cc * per_txn_ms, r.brk_cc_ms))
      << cc * per_txn_ms << " vs " << r.brk_cc_ms;
  EXPECT_TRUE(within_1pct(queue * per_txn_ms, r.brk_queue_ms))
      << queue * per_txn_ms << " vs " << r.brk_queue_ms;
}

}  // namespace
}  // namespace gemsd
