// Failure/recovery tests: crash semantics (lost transactions, rerouting),
// REDO of owned pages, PCL's GLA freeze vs GEM's surviving lock table, and
// post-recovery coherency.
#include <gtest/gtest.h>

#include "cc/primary_copy_protocol.hpp"
#include "core/system.hpp"
#include "workload/workload.hpp"

namespace gemsd {
namespace {

using workload::PageRef;
using workload::TxnSpec;

constexpr PartitionId kT = 0;
PageId pg(std::int64_t n) { return PageId{kT, n}; }

SystemConfig cluster_cfg(Coupling c, int nodes = 3) {
  SystemConfig cfg;
  cfg.nodes = nodes;
  cfg.coupling = c;
  cfg.update = UpdateStrategy::NoForce;
  cfg.buffer_pages = 50;
  cfg.partitions.resize(1);
  cfg.partitions[0].name = "T";
  cfg.partitions[0].pages_per_unit = 1000;
  cfg.partitions[0].locked = true;
  cfg.partitions[0].disks_per_unit = 4;
  return cfg;
}

class ModGla : public workload::GlaMap {
 public:
  explicit ModGla(int nodes) : nodes_(nodes) {}
  NodeId gla(PageId p) const override {
    return static_cast<NodeId>(p.page % nodes_);
  }

 private:
  int nodes_;
};
struct NullGen : workload::WorkloadGenerator {
  TxnSpec next(sim::Rng&) override { return {}; }
  int num_types() const override { return 1; }
};
System make_system(const SystemConfig& cfg) {
  System::Workload wl;
  wl.gen = std::make_unique<NullGen>();
  wl.router = std::make_unique<workload::RandomRouter>(cfg.nodes);
  wl.gla = std::make_unique<ModGla>(cfg.nodes);
  return System(cfg, std::move(wl));
}

TxnSpec write_txn(std::initializer_list<std::int64_t> pages) {
  TxnSpec t;
  for (auto p : pages) t.refs.push_back(PageRef{pg(p), true});
  return t;
}
TxnSpec read_txn(std::initializer_list<std::int64_t> pages) {
  TxnSpec t;
  for (auto p : pages) t.refs.push_back(PageRef{pg(p), false});
  return t;
}

TEST(Failure, InFlightTransactionsAreLostNotCommitted) {
  auto sys = make_system(cluster_cfg(Coupling::GemLocking));
  for (int i = 0; i < 20; ++i) sys.submit(1, write_txn({i, i + 100}));
  sys.run_until(sys.scheduler().now() + 0.005);  // mid-flight
  sys.fail_node(1);
  sys.scheduler().run_all();
  EXPECT_FALSE(sys.metrics().lost_txns.value() == 0);
  EXPECT_EQ(sys.metrics().commits.value() + sys.metrics().lost_txns.value(),
            20u);
  // Strict 2PL fully drained despite the crash (locks of lost txns freed).
  EXPECT_EQ(sys.protocol().table().locked_pages(), 0u);
}

TEST(Failure, OwnedPagesAreRedoneAndReadable) {
  auto sys = make_system(cluster_cfg(Coupling::GemLocking));
  sys.submit(1, write_txn({7}));  // node 1 becomes NOFORCE owner of page 7
  sys.scheduler().run_all();
  ASSERT_EQ(sys.protocol().directory().owner(pg(7)), 1);
  sys.fail_node(1);
  sys.scheduler().run_all();  // recovery completes
  // Ownership cleared: storage is current again.
  EXPECT_EQ(sys.protocol().directory().owner(pg(7)), kNoNode);
  EXPECT_GT(sys.metrics().recovery_time.count(), 0u);
  // A reader on a survivor gets the current version from storage.
  sys.submit(0, read_txn({7}));
  sys.scheduler().run_all();
  EXPECT_EQ(sys.metrics().coherency_violations.value(), 0u);
  EXPECT_EQ(sys.buffer(0).cached_seqno(pg(7)), 1u);
}

TEST(Failure, NodeRejoinsAfterRestart) {
  auto sys = make_system(cluster_cfg(Coupling::GemLocking));
  sys.fail_node(2);
  EXPECT_FALSE(sys.node_up(2));
  sys.scheduler().run_all();
  EXPECT_TRUE(sys.node_up(2));
  // The restarted node is cold but fully functional.
  sys.submit(2, write_txn({42}));
  sys.scheduler().run_all();
  EXPECT_GE(sys.metrics().commits.value(), 1u);
}

TEST(Failure, PclFreezesFailedGlaUntilRebuild) {
  auto cfg = cluster_cfg(Coupling::PrimaryCopy);
  cfg.failure.gla_rebuild = 2.0;
  auto sys = make_system(cfg);
  sys.fail_node(1);  // GLA for pages with page % 3 == 1
  // A survivor's request against the frozen partition must stall...
  sys.submit(0, write_txn({1}));  // gla(1) == 1 -> frozen
  sys.run_until(sys.scheduler().now() + 1.0);
  EXPECT_EQ(sys.metrics().commits.value(), 0u);
  auto& pcl = static_cast<cc::PrimaryCopyProtocol&>(sys.protocol());
  EXPECT_TRUE(pcl.gla_frozen(1));
  // ...and complete once the authority is reconstructed.
  sys.scheduler().run_all();
  EXPECT_FALSE(pcl.gla_frozen(1));
  EXPECT_EQ(sys.metrics().commits.value(), 1u);
}

TEST(Failure, GemLockingKeepsLockingDuringCrash) {
  // The GLT lives in non-volatile GEM: survivors keep locking even pages
  // "belonging" to the dead node's share — no freeze exists at all.
  auto sys = make_system(cluster_cfg(Coupling::GemLocking));
  sys.fail_node(1);
  sys.submit(0, write_txn({1}));
  sys.run_until(sys.scheduler().now() + 1.0);
  EXPECT_EQ(sys.metrics().commits.value(), 1u);
}

TEST(Failure, SourceRoutesAroundDownNodes) {
  auto cfg = cluster_cfg(Coupling::GemLocking);
  cfg.arrival_rate_per_node = 50.0;
  cfg.failure.node_restart = 3.0;
  auto sys = make_system(cfg);
  sys.start_source();
  sys.run_until(0.5);
  sys.fail_node(1);
  const auto before = sys.tm(1).submitted();
  sys.run_until(1.5);  // node 1 down; arrivals must go elsewhere
  EXPECT_EQ(sys.tm(1).submitted(), before);
  sys.run_until(5.0);  // rejoined: traffic returns
  EXPECT_GT(sys.tm(1).submitted(), before);
}

TEST(Failure, ClusterKeepsCommittingThroughCrash) {
  for (Coupling c : {Coupling::GemLocking, Coupling::PrimaryCopy}) {
    auto cfg = cluster_cfg(c);
    cfg.arrival_rate_per_node = 40.0;
    auto sys = make_system(cfg);
    sim::Rng rng(5);
    sys.start_source();
    sys.run_until(1.0);
    sys.fail_node(2);
    sys.run_until(10.0);
    EXPECT_GT(sys.metrics().commits.value(), 200u);
    EXPECT_EQ(sys.metrics().coherency_violations.value(), 0u);
    EXPECT_TRUE(sys.node_up(2));
  }
}

}  // namespace
}  // namespace gemsd
