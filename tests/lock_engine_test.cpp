// Tests for the [Yu87] central-lock-engine coupling mode: request/reply
// costs, engine queueing, broadcast invalidation, FORCE-only enforcement,
// and the coherency invariant under contention.
#include <gtest/gtest.h>

#include "cc/lock_engine_protocol.hpp"
#include "core/system.hpp"
#include "workload/workload.hpp"

namespace gemsd {
namespace {

using workload::PageRef;
using workload::TxnSpec;

constexpr PartitionId kT = 0;
PageId pg(std::int64_t n) { return PageId{kT, n}; }

SystemConfig engine_cfg(int nodes = 2) {
  SystemConfig cfg;
  cfg.nodes = nodes;
  cfg.coupling = Coupling::LockEngine;
  cfg.update = UpdateStrategy::Force;
  cfg.buffer_pages = 50;
  cfg.partitions.resize(1);
  cfg.partitions[0].name = "T";
  cfg.partitions[0].pages_per_unit = 1000;
  cfg.partitions[0].locked = true;
  cfg.partitions[0].disks_per_unit = 4;
  return cfg;
}

class SplitGla : public workload::GlaMap {
 public:
  NodeId gla(PageId p) const override { return p.page < 500 ? 0 : 1; }
};
struct NullGen : workload::WorkloadGenerator {
  TxnSpec next(sim::Rng&) override { return {}; }
  int num_types() const override { return 1; }
};
System make_system(const SystemConfig& cfg) {
  System::Workload wl;
  wl.gen = std::make_unique<NullGen>();
  wl.router = std::make_unique<workload::RandomRouter>(cfg.nodes);
  wl.gla = std::make_unique<SplitGla>();
  return System(cfg, std::move(wl));
}

TxnSpec write_txn(std::initializer_list<std::int64_t> pages) {
  TxnSpec t;
  for (auto p : pages) t.refs.push_back(PageRef{pg(p), true});
  return t;
}
TxnSpec read_txn(std::initializer_list<std::int64_t> pages) {
  TxnSpec t;
  for (auto p : pages) t.refs.push_back(PageRef{pg(p), false});
  return t;
}

TEST(LockEngine, RequiresForce) {
  SystemConfig cfg = engine_cfg();
  cfg.update = UpdateStrategy::NoForce;
  EXPECT_THROW(make_system(cfg), std::invalid_argument);
}

TEST(LockEngine, EveryLockVisitsTheEngine) {
  auto sys = make_system(engine_cfg());
  sys.submit(0, write_txn({1, 2, 3}));
  sys.scheduler().run_all();
  EXPECT_EQ(sys.metrics().commits.value(), 1u);
  auto& eng = static_cast<cc::LockEngineProtocol&>(sys.protocol());
  // 3 acquire visits + 1 batched release visit.
  EXPECT_EQ(eng.engine_ops(), 4u);
  EXPECT_EQ(sys.metrics().lock_remote.value(), 3u);
  EXPECT_DOUBLE_EQ(sys.metrics().local_lock_fraction(), 0.0);
}

TEST(LockEngine, BroadcastInvalidationDropsRemoteCopies) {
  auto sys = make_system(engine_cfg(3));
  // All three nodes cache page 7.
  sys.submit(0, read_txn({7}));
  sys.submit(1, read_txn({7}));
  sys.submit(2, read_txn({7}));
  sys.scheduler().run_all();
  EXPECT_TRUE(sys.buffer(1).has_copy(pg(7)));
  EXPECT_TRUE(sys.buffer(2).has_copy(pg(7)));
  // Node 0 updates it: the other copies must be gone after commit.
  sys.submit(0, write_txn({7}));
  sys.scheduler().run_all();
  EXPECT_FALSE(sys.buffer(1).has_copy(pg(7)));
  EXPECT_FALSE(sys.buffer(2).has_copy(pg(7)));
  EXPECT_TRUE(sys.buffer(0).has_copy(pg(7)));
  EXPECT_EQ(sys.metrics().coherency_violations.value(), 0u);
}

TEST(LockEngine, ReadAfterUpdateSeesCurrentVersionFromStorage) {
  auto sys = make_system(engine_cfg());
  sys.submit(1, read_txn({9}));
  sys.scheduler().run_all();
  sys.submit(0, write_txn({9}));
  sys.scheduler().run_all();
  const auto reads_before = sys.storage().group(kT)->reads();
  sys.submit(1, read_txn({9}));
  sys.scheduler().run_all();
  // The invalidated copy forces a storage read of the force-written version.
  EXPECT_EQ(sys.storage().group(kT)->reads(), reads_before + 1);
  EXPECT_EQ(sys.buffer(1).cached_seqno(pg(9)),
            sys.protocol().directory().seqno(pg(9)));
  EXPECT_EQ(sys.metrics().coherency_violations.value(), 0u);
}

TEST(LockEngine, SlowEngineInflatesResponseTime) {
  SystemConfig fast = engine_cfg();
  fast.lock_engine_service = 50e-6;
  auto sys_fast = make_system(fast);
  SystemConfig slow = engine_cfg();
  slow.lock_engine_service = 2000e-6;
  auto sys_slow = make_system(slow);
  for (int i = 0; i < 40; ++i) {
    sys_fast.submit(i % 2, write_txn({i}));
    sys_slow.submit(i % 2, write_txn({i}));
  }
  sys_fast.scheduler().run_all();
  sys_slow.scheduler().run_all();
  EXPECT_LT(sys_fast.metrics().response.mean(),
            sys_slow.metrics().response.mean());
}

TEST(LockEngine, ContentionStressKeepsInvariants) {
  auto sys = make_system(engine_cfg(3));
  sim::Rng rng(31);
  for (int i = 0; i < 150; ++i) {
    TxnSpec t;
    const std::int64_t a = rng.uniform_int(0, 7);
    const std::int64_t b = rng.uniform_int(0, 7);
    t.refs.push_back(PageRef{pg(a), rng.bernoulli(0.5)});
    t.refs.push_back(PageRef{pg(b), rng.bernoulli(0.5)});
    sys.submit(static_cast<NodeId>(i % 3), t);
  }
  sys.scheduler().run_all();
  EXPECT_EQ(sys.metrics().commits.value(), 150u);
  EXPECT_EQ(sys.metrics().coherency_violations.value(), 0u);
  EXPECT_EQ(sys.protocol().table().locked_pages(), 0u);
}

}  // namespace
}  // namespace gemsd
