// Regression goldens: the simulator is fully deterministic for a seed, so
// two reference configurations are pinned to their exact current outputs.
// A failure here means the *model's behaviour changed* — if the change is
// intentional (a bug fix or a model refinement), update the goldens and say
// why in the commit; if not, you just caught a regression.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace gemsd {
namespace {

TEST(RegressionGolden, GemNoforceRandomThreeNodes) {
  SystemConfig cfg = make_debit_credit_config();
  cfg.nodes = 3;
  cfg.coupling = Coupling::GemLocking;
  cfg.update = UpdateStrategy::NoForce;
  cfg.routing = Routing::Random;
  cfg.warmup = 2;
  cfg.measure = 8;
  cfg.seed = 42;
  const RunResult r = run_debit_credit(cfg);
  EXPECT_EQ(r.commits, 2403u);
  EXPECT_NEAR(r.resp_ms, 61.079188, 1e-4);
  EXPECT_NEAR(r.hit_ratio[0], 0.234486, 1e-5);
}

TEST(RegressionGolden, PclForceAffinityThreeNodes) {
  SystemConfig cfg = make_debit_credit_config();
  cfg.nodes = 3;
  cfg.coupling = Coupling::PrimaryCopy;
  cfg.update = UpdateStrategy::Force;
  cfg.routing = Routing::Affinity;
  cfg.warmup = 2;
  cfg.measure = 8;
  cfg.seed = 42;
  const RunResult r = run_debit_credit(cfg);
  EXPECT_EQ(r.commits, 2455u);
  EXPECT_NEAR(r.resp_ms, 90.679721, 1e-4);
  EXPECT_NEAR(r.local_lock_fraction, 0.954074, 1e-5);
  EXPECT_NEAR(r.messages_per_txn, 0.275764, 1e-5);
}

}  // namespace
}  // namespace gemsd
