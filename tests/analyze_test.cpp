// Offline trace analysis (src/obs/analyze.*): contention attribution,
// wait-for graph replay against the simulator's deadlock counter, the
// Chrome-trace round trip the gemsd_analyze CLI rides on, and the
// statistical run comparison used by the CI bench-regression gate.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/system.hpp"
#include "obs/analyze.hpp"
#include "obs/json.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "sim/random.hpp"
#include "workload/workload.hpp"

namespace gemsd {
namespace {

using workload::PageRef;
using workload::TxnSpec;

constexpr std::uint64_t tid(int node, std::uint64_t seq) {
  return (static_cast<std::uint64_t>(node) << 40) | seq;
}

// ------------------------------------------------------------ pure analysis

TEST(Analyze, EmptyTraceYieldsZeroAnalysis) {
  const obs::TraceAnalysis a = obs::analyze_trace({}, 0);
  EXPECT_EQ(a.events, 0u);
  EXPECT_EQ(a.events_dropped, 0u);
  EXPECT_EQ(a.total.txns, 0u);
  EXPECT_TRUE(a.nodes.empty());
  EXPECT_TRUE(a.hot_pages.empty());
  EXPECT_TRUE(a.conflicts.empty());
  EXPECT_EQ(a.wait_edges, 0u);
  EXPECT_EQ(a.cycles, 0u);
  // Formatting an empty analysis must not crash and must stay well-formed.
  const std::string s = obs::format_analysis(a, 10);
  EXPECT_NE(s.find("0 events"), std::string::npos);
  EXPECT_NE(s.find("(none)"), std::string::npos);
}

TEST(Analyze, SyntheticTwoPartyCycleIsCounted) {
  const std::uint64_t a_id = tid(0, 1), b_id = tid(1, 1);
  obs::TraceRecorder rec(64);
  // A waits for B, then B waits for A: the second batch closes the cycle.
  rec.instant(obs::TraceName::kWaitEdge, 0, a_id, 1.0,
              static_cast<double>(b_id));
  rec.instant(obs::TraceName::kWaitEdge, 1, b_id, 2.0,
              static_cast<double>(a_id));
  const obs::TraceAnalysis an = obs::analyze_trace(rec.snapshot(), 0);
  EXPECT_EQ(an.wait_edges, 2u);
  EXPECT_EQ(an.cycles, 1u);
  // Conflict pairs carry the waiter node and the holder's node (from the id).
  ASSERT_EQ(an.conflicts.size(), 2u);
  EXPECT_EQ(an.conflicts[0].waiter_node, 0);
  EXPECT_EQ(an.conflicts[0].holder_node, 1);
}

TEST(Analyze, SyntheticThreePartyCycle) {
  const std::uint64_t a = tid(0, 1), b = tid(1, 1), c = tid(2, 1);
  obs::TraceRecorder rec(64);
  rec.instant(obs::TraceName::kWaitEdge, 0, a, 1.0, static_cast<double>(b));
  rec.instant(obs::TraceName::kWaitEdge, 1, b, 2.0, static_cast<double>(c));
  rec.instant(obs::TraceName::kWaitEdge, 2, c, 3.0, static_cast<double>(a));
  const obs::TraceAnalysis an = obs::analyze_trace(rec.snapshot(), 0);
  EXPECT_EQ(an.wait_edges, 3u);
  EXPECT_EQ(an.cycles, 1u);
}

TEST(Analyze, GrantRetiresEdgesBeforeCycleForms) {
  const std::uint64_t a = tid(0, 1), b = tid(1, 1);
  obs::TraceRecorder rec(64);
  rec.instant(obs::TraceName::kWaitEdge, 0, a, 1.0, static_cast<double>(b));
  // A's wait ends in a grant (lock.wait span) — its edge must retire.
  rec.span(obs::TraceName::kLockWait, 0, a, 1.0, 2.0, /*page=*/7.0,
           /*aux=*/0);
  rec.instant(obs::TraceName::kWaitEdge, 1, b, 3.0, static_cast<double>(a));
  const obs::TraceAnalysis an = obs::analyze_trace(rec.snapshot(), 0);
  EXPECT_EQ(an.wait_edges, 2u);
  EXPECT_EQ(an.cycles, 0u);
  // The lock.wait span also feeds the hot-page table.
  ASSERT_EQ(an.hot_pages.size(), 1u);
  EXPECT_EQ(an.hot_pages[0].page, 7);
  EXPECT_EQ(an.hot_pages[0].waits, 1u);
}

TEST(Analyze, CommitAndRestartRetireEdges) {
  const std::uint64_t a = tid(0, 1), b = tid(1, 1);
  obs::TraceRecorder rec(64);
  rec.instant(obs::TraceName::kWaitEdge, 0, a, 1.0, static_cast<double>(b));
  rec.instant(obs::TraceName::kCommit, 0, a, 2.0);
  rec.instant(obs::TraceName::kWaitEdge, 1, b, 3.0, static_cast<double>(a));
  rec.instant(obs::TraceName::kRestart, 1, b, 4.0);
  rec.instant(obs::TraceName::kWaitEdge, 0, a, 5.0, static_cast<double>(b));
  const obs::TraceAnalysis an = obs::analyze_trace(rec.snapshot(), 0);
  EXPECT_EQ(an.cycles, 0u);
  EXPECT_EQ(an.total.restarts, 1u);
}

// ------------------------------------------------- analysis of real traces

SystemConfig traced_config(int nodes = 2) {
  SystemConfig cfg = make_debit_credit_config();
  cfg.nodes = nodes;
  cfg.coupling = Coupling::GemLocking;
  cfg.update = UpdateStrategy::NoForce;
  cfg.routing = Routing::Random;
  cfg.warmup = 1.0;
  cfg.measure = 3.0;
  cfg.seed = 42;
  cfg.obs.trace = true;
  cfg.obs.trace_capacity = 1 << 20;
  return cfg;
}

/// The run's metrics as the gemsd.results.v1 "metrics" object (the exact
/// JSON gemsd_analyze --results consumes).
obs::JsonValue metrics_json(const RunResult& r) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("resp_ms", r.resp_ms);
  w.kv("commits", r.commits);
  w.key("breakdown_ms");
  w.begin_object();
  w.kv("cpu", r.brk_cpu_ms);
  w.kv("cpu_wait", r.brk_cpu_wait_ms);
  w.kv("io", r.brk_io_ms);
  w.kv("cc", r.brk_cc_ms);
  w.kv("queue", r.brk_queue_ms);
  w.end_object();
  w.end_object();
  obs::JsonValue doc;
  std::string err;
  EXPECT_TRUE(obs::json_parse(w.take(), doc, err)) << err;
  return doc;
}

TEST(Analyze, AttributionReconcilesWithReportedBreakdown) {
  const RunResult r = run_debit_credit(traced_config());
  ASSERT_TRUE(r.telemetry && r.telemetry->trace_enabled);
  ASSERT_EQ(r.telemetry->events_dropped, 0u);
  const obs::TraceAnalysis a =
      obs::analyze_trace(r.telemetry->events, r.telemetry->events_dropped);
  EXPECT_EQ(a.total.txns, r.commits);

  const obs::JsonValue m = metrics_json(r);
  const obs::Reconciliation rec = obs::reconcile(a, m, 0.01);
  EXPECT_TRUE(rec.ok) << obs::format_reconciliation(rec);
  EXPECT_LE(rec.worst_rel_err, 0.01);
  ASSERT_EQ(rec.lines.size(), 5u);
}

TEST(Analyze, ChromeTraceRoundTripMatchesNativeAnalysis) {
  const RunResult r = run_debit_credit(traced_config());
  ASSERT_TRUE(r.telemetry);
  const obs::TraceAnalysis native =
      obs::analyze_trace(r.telemetry->events, r.telemetry->events_dropped);

  const std::string json = obs::chrome_trace_json(*r.telemetry, {});
  obs::JsonValue doc;
  std::string err;
  ASSERT_TRUE(obs::json_parse(json, doc, err)) << err;
  std::vector<obs::TraceEvent> events;
  std::uint64_t dropped = 0;
  ASSERT_TRUE(obs::parse_chrome_trace(doc, events, dropped, err)) << err;
  const obs::TraceAnalysis parsed = obs::analyze_trace(events, dropped);

  EXPECT_EQ(parsed.total.txns, native.total.txns);
  EXPECT_EQ(parsed.total.lock_waits, native.total.lock_waits);
  EXPECT_EQ(parsed.wait_edges, native.wait_edges);
  EXPECT_EQ(parsed.cycles, native.cycles);
  EXPECT_EQ(parsed.deadlock_instants, native.deadlock_instants);
  EXPECT_EQ(parsed.hot_pages.size(), native.hot_pages.size());
  // Timestamps go through a fixed-point microsecond encoding; phase sums
  // survive to within a microsecond per transaction.
  EXPECT_NEAR(parsed.total.cpu_s, native.total.cpu_s,
              1e-6 * static_cast<double>(native.total.txns) + 1e-9);
  EXPECT_NEAR(parsed.total.io_s, native.total.io_s,
              1e-6 * static_cast<double>(native.total.txns) + 1e-9);
}

TEST(Analyze, ParserRejectsForeignDocuments) {
  obs::JsonValue doc;
  std::string err;
  ASSERT_TRUE(obs::json_parse("{\"traceEvents\":[]}", doc, err));
  std::vector<obs::TraceEvent> events;
  std::uint64_t dropped = 0;
  EXPECT_FALSE(obs::parse_chrome_trace(doc, events, dropped, err));
  EXPECT_FALSE(err.empty());
}

TEST(Analyze, RingDropsAreSurfacedAndSurvivable) {
  SystemConfig cfg = traced_config();
  cfg.obs.trace_capacity = 1 << 10;  // deliberately too small
  const RunResult r = run_debit_credit(cfg);
  ASSERT_TRUE(r.telemetry);
  ASSERT_GT(r.telemetry->events_dropped, 0u);
  // Partial spans (txn commits whose start fell off the ring) must not
  // derail the analysis; the drop count travels with the result.
  const obs::TraceAnalysis a =
      obs::analyze_trace(r.telemetry->events, r.telemetry->events_dropped);
  EXPECT_EQ(a.events_dropped, r.telemetry->events_dropped);
  EXPECT_GT(a.total.txns, 0u);
  EXPECT_LT(a.total.txns, r.commits);
}

// ------------------------------------------ wait-for replay vs the simulator

class ModGla : public workload::GlaMap {
 public:
  explicit ModGla(int nodes) : nodes_(nodes) {}
  NodeId gla(PageId p) const override {
    return static_cast<NodeId>(p.page % nodes_);
  }

 private:
  int nodes_;
};

struct NullGen : workload::WorkloadGenerator {
  TxnSpec next(sim::Rng&) override { return {}; }
  int num_types() const override { return 1; }
};

/// Deadlock-prone workload: short transactions locking random pages of a
/// tiny hot partition in random order (the stress-test recipe, seeded).
void run_hostile(SystemConfig cfg, std::uint64_t seed, RunResult& out,
                 std::vector<obs::TraceEvent>& events,
                 std::uint64_t& dropped) {
  // Deep lock queues emit one wait.edge per blocker, so keep the MPL modest
  // or the ring (which must hold the WHOLE run for an exact replay) blows up.
  cfg.mpl = 30;
  cfg.partitions.resize(1);
  auto& pc = cfg.partitions[0];
  pc.name = "T";
  pc.pages_per_unit = 48;
  pc.locked = true;
  pc.disks_per_unit = 8;
  cfg.obs.trace = true;
  cfg.obs.trace_capacity = 1 << 21;

  System::Workload wl;
  wl.gen = std::make_unique<NullGen>();
  wl.router = std::make_unique<workload::RandomRouter>(cfg.nodes);
  wl.gla = std::make_unique<ModGla>(cfg.nodes);
  System sys(cfg, std::move(wl));

  sim::Rng rng(seed);
  const int kTxns = 300;
  for (int i = 0; i < kTxns; ++i) {
    TxnSpec t;
    const int len = static_cast<int>(rng.uniform_int(2, 6));
    for (int k = 0; k < len; ++k) {
      t.refs.push_back(PageRef{PageId{0, rng.uniform_int(0, 47)},
                               rng.bernoulli(0.5)});
    }
    sys.submit(static_cast<NodeId>(rng.uniform_int(0, cfg.nodes - 1)), t);
  }
  sys.scheduler().run_all();
  out = sys.collect();
  ASSERT_NE(sys.trace(), nullptr);
  events = sys.trace()->snapshot();
  dropped = sys.trace()->dropped();
}

class WaitForReplay : public ::testing::TestWithParam<Coupling> {};

TEST_P(WaitForReplay, CycleCountMatchesDeadlockCounter) {
  SystemConfig cfg;
  cfg.nodes = 3;
  cfg.coupling = GetParam();
  cfg.update = GetParam() == Coupling::LockEngine ? UpdateStrategy::Force
                                                  : UpdateStrategy::NoForce;

  RunResult r;
  std::vector<obs::TraceEvent> events;
  std::uint64_t dropped = 0;
  run_hostile(cfg, 1234, r, events, dropped);
  ASSERT_EQ(dropped, 0u);
  ASSERT_GT(r.deadlocks, 0u) << "workload not hostile enough to deadlock";

  const obs::TraceAnalysis a = obs::analyze_trace(events, dropped);
  EXPECT_EQ(a.deadlock_instants, r.deadlocks);
  EXPECT_EQ(a.cycles, r.deadlocks)
      << "replayed wait-for cycles diverge from the simulator's verdicts";
  EXPECT_GT(a.wait_edges, 0u);
}

INSTANTIATE_TEST_SUITE_P(Couplings, WaitForReplay,
                         ::testing::Values(Coupling::GemLocking,
                                           Coupling::PrimaryCopy,
                                           Coupling::LockEngine),
                         [](const auto& info) {
                           switch (info.param) {
                             case Coupling::GemLocking: return "GEM";
                             case Coupling::PrimaryCopy: return "PCL";
                             case Coupling::LockEngine: return "LE";
                           }
                           return "?";
                         });

// ------------------------------------------------------------- comparison

std::string results_doc(double resp_ms, double ci_ms, double tput,
                        const char* label = "GEM/NOFORCE/random",
                        const char* name = "") {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("schema", "gemsd.results.v1");
  w.key("runs");
  w.begin_array();
  w.begin_object();
  w.kv("config_hash", "abcd");
  w.kv("name", name);
  w.key("metrics");
  w.begin_object();
  w.kv("label", label);
  w.kv("resp_ms", resp_ms);
  w.kv("resp_ci_ms", ci_ms);
  w.kv("throughput", tput);
  w.end_object();
  w.end_object();
  w.end_array();
  w.end_object();
  return w.take();
}

obs::JsonValue parse(const std::string& s) {
  obs::JsonValue doc;
  std::string err;
  EXPECT_TRUE(obs::json_parse(s, doc, err)) << err;
  return doc;
}

TEST(Compare, QuietOnIdenticalRuns) {
  const obs::JsonValue a = parse(results_doc(60.0, 1.5, 1000.0));
  const obs::JsonValue b = parse(results_doc(60.0, 1.5, 1000.0));
  const obs::CompareReport rep = obs::compare_results(a, b, 0.05);
  ASSERT_TRUE(rep.error.empty()) << rep.error;
  EXPECT_EQ(rep.regressions, 0);
  EXPECT_EQ(rep.improvements, 0);
  ASSERT_EQ(rep.deltas.size(), 1u);
  EXPECT_TRUE(rep.unmatched_base.empty());
  EXPECT_TRUE(rep.unmatched_cand.empty());
}

TEST(Compare, FlagsInjectedTenPercentThroughputRegression) {
  const obs::JsonValue a = parse(results_doc(60.0, 1.5, 1000.0));
  const obs::JsonValue b = parse(results_doc(60.0, 1.5, 900.0));
  const obs::CompareReport rep = obs::compare_results(a, b, 0.05);
  EXPECT_EQ(rep.regressions, 1);
  ASSERT_EQ(rep.deltas.size(), 1u);
  EXPECT_TRUE(rep.deltas[0].tput_regressed);
  EXPECT_FALSE(rep.deltas[0].resp_regressed);
  EXPECT_NE(obs::format_compare(rep, 0.05).find("REGRESSION"),
            std::string::npos);
}

TEST(Compare, ResponseDeltaInsideCombinedCiIsNotSignificant) {
  // +8% response, but the batch-means CIs overlap more than that: quiet.
  const obs::JsonValue a = parse(results_doc(60.0, 3.0, 1000.0));
  const obs::JsonValue b = parse(results_doc(64.8, 3.0, 1000.0));
  const obs::CompareReport rep = obs::compare_results(a, b, 0.05);
  EXPECT_EQ(rep.regressions, 0);
  ASSERT_EQ(rep.deltas.size(), 1u);
  EXPECT_FALSE(rep.deltas[0].resp_regressed);
}

TEST(Compare, SingleBatchZeroCiFallsBackToRelativeBand) {
  // Single-batch runs report a 0 CI half-width; the relative band still
  // applies, so a genuine 50% regression is flagged...
  const obs::JsonValue a = parse(results_doc(60.0, 0.0, 1000.0));
  const obs::JsonValue b = parse(results_doc(90.0, 0.0, 1000.0));
  EXPECT_EQ(obs::compare_results(a, b, 0.05).regressions, 1);
  // ...while an all-zero run (kernel benches: no simulated metrics) can
  // never trip the gate.
  const obs::JsonValue z1 = parse(results_doc(0.0, 0.0, 0.0));
  const obs::JsonValue z2 = parse(results_doc(0.0, 0.0, 0.0));
  EXPECT_EQ(obs::compare_results(z1, z2, 0.05).regressions, 0);
}

TEST(Compare, RunsMatchByNameWithinSharedConfig) {
  const obs::JsonValue a =
      parse(results_doc(0.0, 0.0, 0.0, "kernel", "BM_QueueDepth/100"));
  const obs::JsonValue b =
      parse(results_doc(0.0, 0.0, 0.0, "kernel", "BM_ScheduleCallbacks"));
  const obs::CompareReport rep = obs::compare_results(a, b, 0.05);
  EXPECT_TRUE(rep.deltas.empty());
  ASSERT_EQ(rep.unmatched_base.size(), 1u);
  ASSERT_EQ(rep.unmatched_cand.size(), 1u);
  EXPECT_NE(rep.unmatched_base[0].find("BM_QueueDepth/100"),
            std::string::npos);
}

TEST(Compare, RejectsForeignDocuments) {
  const obs::JsonValue a = parse("{\"schema\":\"something.else\"}");
  const obs::JsonValue b = parse(results_doc(1.0, 0.0, 1.0));
  EXPECT_FALSE(obs::compare_results(a, b, 0.05).error.empty());
}

}  // namespace
}  // namespace gemsd
