// Tests for the INI run-spec parser behind tools/gemsd_run.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/config_file.hpp"

namespace gemsd {
namespace {

RunSpec parse(const std::string& text) {
  std::stringstream ss(text);
  return parse_run_spec(ss);
}

TEST(RunSpec, ParsesFullSystemSection) {
  const RunSpec s = parse(R"(
# comment
[system]
nodes = 7
coupling = pcl
update = force
routing = random
tps = 150
buffer = 1000
mpl = 99
warmup = 3.5
measure = 12
seed = 77
log = gem
group_commit = yes
pcl_read_opt = true
gem_read_auth = on
transport = gem
)");
  EXPECT_EQ(s.cfg.nodes, 7);
  EXPECT_EQ(s.cfg.coupling, Coupling::PrimaryCopy);
  EXPECT_EQ(s.cfg.update, UpdateStrategy::Force);
  EXPECT_EQ(s.cfg.routing, Routing::Random);
  EXPECT_DOUBLE_EQ(s.cfg.arrival_rate_per_node, 150.0);
  EXPECT_EQ(s.cfg.buffer_pages, 1000);
  EXPECT_EQ(s.cfg.mpl, 99);
  EXPECT_DOUBLE_EQ(s.cfg.warmup, 3.5);
  EXPECT_DOUBLE_EQ(s.cfg.measure, 12.0);
  EXPECT_EQ(s.cfg.seed, 77u);
  EXPECT_EQ(s.cfg.log_storage, StorageKind::Gem);
  EXPECT_TRUE(s.cfg.log_group_commit);
  EXPECT_TRUE(s.cfg.pcl_read_optimization);
  EXPECT_TRUE(s.cfg.gem_read_authorizations);
  EXPECT_EQ(s.cfg.comm.transport, MsgTransport::GemStore);
}

TEST(RunSpec, DefaultsAreTable41DebitCredit) {
  const RunSpec s = parse("");
  EXPECT_EQ(s.kind, RunSpec::Kind::DebitCredit);
  EXPECT_EQ(s.cfg.nodes, 1);
  EXPECT_EQ(s.cfg.buffer_pages, 200);
  ASSERT_EQ(s.cfg.partitions.size(), 3u);
  EXPECT_EQ(s.cfg.partitions[0].name, "BRANCH/TELLER");
}

TEST(RunSpec, PartitionStorageOverride) {
  const RunSpec s = parse(R"(
[system]
update = force
[partition.BRANCH/TELLER]
storage = gemcache
cache_pages = 4321
)");
  EXPECT_EQ(s.cfg.partitions[0].storage, StorageKind::DiskGemCache);
  EXPECT_EQ(s.cfg.partitions[0].gem_cache_pages, 4321);
}

TEST(RunSpec, TraceWorkloadSection) {
  const RunSpec s = parse(R"(
[workload]
kind = trace
trace_file = /tmp/foo.trace
trace_txns = 2500
)");
  EXPECT_EQ(s.kind, RunSpec::Kind::Trace);
  EXPECT_EQ(s.trace_file, "/tmp/foo.trace");
  EXPECT_EQ(s.trace_txns, 2500u);
}

TEST(RunSpec, RejectsUnknownKeys) {
  EXPECT_THROW(parse("[system]\nbogus = 1\n"), std::runtime_error);
  EXPECT_THROW(parse("[nonsense]\nx = 1\n"), std::runtime_error);
  EXPECT_THROW(parse("[system]\ncoupling = quantum\n"), std::runtime_error);
  EXPECT_THROW(parse("[system]\nnodes 4\n"), std::runtime_error);
  EXPECT_THROW(parse("[partition.NOPE]\nstorage = gem\n"),
               std::runtime_error);
  EXPECT_THROW(parse("[system]\ngroup_commit = maybe\n"), std::runtime_error);
}

TEST(RunSpec, ErrorsCarryLineNumbers) {
  try {
    parse("\n\n[system]\nbogus = 1\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos);
  }
}

TEST(RunSpec, ShippedSpecsParse) {
  // The specs/ directory must stay in sync with the parser.
  const std::string bases[] = {"specs/", "../specs/", "../../specs/"};
  std::string base;
  for (const auto& b : bases) {
    if (std::ifstream(b + "fig41_affinity_noforce.ini")) {
      base = b;
      break;
    }
  }
  if (base.empty()) GTEST_SKIP() << "specs/ not reachable from test cwd";
  for (const char* p : {"fig41_affinity_noforce.ini", "bt_on_gem_force.ini",
                        "trace_pcl.ini"}) {
    std::ifstream f(base + p);
    ASSERT_TRUE(f.is_open()) << p;
    EXPECT_NO_THROW(parse_run_spec(f)) << p;
  }
}

}  // namespace
}  // namespace gemsd
