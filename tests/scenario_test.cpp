// Tests for the scenario engine (src/core/scenario.*), the compiled-in
// registry, the strict bench-flag parser, and the spec export round trip.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/config_file.hpp"
#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "obs/fingerprint.hpp"

#ifndef GEMSD_SOURCE_DIR
#define GEMSD_SOURCE_DIR "."
#endif

namespace gemsd {
namespace {

BenchOptions quick_opts(int max_nodes = 10) {
  BenchOptions opt;
  opt.warmup = 2.0;
  opt.measure = 6.0;
  opt.max_nodes = max_nodes;
  return opt;
}

// --- strict flag parsing (a typo must never run a sweep with defaults) ----

TEST(BenchArgs, ParsesEveryKnownFlag) {
  BenchOptions o;
  const std::string err = try_parse_bench_args(
      {"--quick", "--max-nodes=3", "--jobs=2", "--seed=7", "--csv",
       "--full", "--sample=0.5", "--slow-k=3", "--metrics-json=x.json",
       "--trace=t.json", "--trace-run=1", "--trace-capacity=1024",
       "--audit", "--no-json", "--warmup=1.5", "--measure=4"},
      o);
  EXPECT_EQ(err, "");
  EXPECT_EQ(o.max_nodes, 3);
  EXPECT_EQ(o.jobs, 2);
  EXPECT_EQ(o.seed, 7u);
  EXPECT_TRUE(o.csv);
  EXPECT_TRUE(o.full);
  EXPECT_TRUE(o.audit);
  EXPECT_TRUE(o.no_json);
  EXPECT_DOUBLE_EQ(o.warmup, 1.5);
  EXPECT_DOUBLE_EQ(o.measure, 4.0);
  EXPECT_DOUBLE_EQ(o.sample_every, 0.5);
  EXPECT_EQ(o.slow_k, 3);
  EXPECT_EQ(o.metrics_json, "x.json");
  EXPECT_EQ(o.trace_file, "t.json");
  EXPECT_EQ(o.trace_capacity, 1024u);
}

TEST(BenchArgs, RejectsUnknownFlag) {
  BenchOptions o;
  const std::string err = try_parse_bench_args({"--quikc"}, o);
  EXPECT_NE(err.find("--quikc"), std::string::npos) << err;
}

TEST(BenchArgs, RejectsSpaceSeparatedValue) {
  // "--warmup 5" arrives as two argv entries; both must be rejected, not
  // silently ignored (the old parser ran the full sweep with defaults).
  BenchOptions o;
  EXPECT_NE(try_parse_bench_args({"--warmup", "5"}, o), "");
}

TEST(BenchArgs, RejectsMalformedValue) {
  BenchOptions o;
  EXPECT_NE(try_parse_bench_args({"--jobs=two"}, o), "");
  EXPECT_NE(try_parse_bench_args({"--measure=fast"}, o), "");
}

TEST(BenchArgs, UsageListsEveryFlag) {
  const std::string u = bench_usage();
  for (const char* flag :
       {"--quick", "--measure=", "--warmup=", "--max-nodes=", "--jobs=",
        "--seed=", "--full", "--csv", "--sample=", "--slow-k=",
        "--metrics-json=", "--no-json", "--trace=", "--trace-run=",
        "--trace-capacity=", "--audit"}) {
    EXPECT_NE(u.find(flag), std::string::npos) << flag;
  }
}

// --- registry sanity ------------------------------------------------------

TEST(ScenarioRegistry, HoldsEveryPaperFigureAndAblation) {
  for (const char* name :
       {"table_4_1", "fig_4_1", "fig_4_2", "fig_4_3", "fig_4_4", "fig_4_5",
        "fig_4_6", "fig_4_7", "ablation_gem_speed", "ablation_msg_cost",
        "ablation_read_opt", "ablation_force_writes", "ablation_gem_msg",
        "ablation_gem_cache", "ablation_gem_auth", "ablation_update_locks",
        "related_lock_engine", "availability", "ablation_group_commit"}) {
    EXPECT_NE(find_scenario(name), nullptr) << name;
  }
  EXPECT_EQ(find_scenario("no_such_scenario"), nullptr);
}

TEST(ScenarioRegistry, NamesUniqueAndDocumented) {
  std::set<std::string> names;
  for (const Scenario& sc : scenario_registry()) {
    EXPECT_TRUE(names.insert(sc.name).second) << "duplicate " << sc.name;
    EXPECT_FALSE(sc.caption.empty()) << sc.name;
    EXPECT_FALSE(sc.doc.empty()) << sc.name;
    if (!sc.report) {
      EXPECT_GT(scenario_cell_count(sc, quick_opts()), 0u) << sc.name;
    }
  }
}

TEST(ScenarioRegistry, GridSizesMatchTheRetiredBenches) {
  const BenchOptions opt = quick_opts();
  EXPECT_EQ(scenario_cell_count(*find_scenario("fig_4_1"), opt), 24u);
  EXPECT_EQ(scenario_cell_count(*find_scenario("fig_4_3"), opt), 48u);
  EXPECT_EQ(scenario_cell_count(*find_scenario("fig_4_5"), opt), 96u);
  EXPECT_EQ(scenario_cell_count(*find_scenario("fig_4_6"), opt), 32u);
  EXPECT_EQ(scenario_cell_count(*find_scenario("fig_4_7"), opt), 20u);
  EXPECT_EQ(scenario_cell_count(*find_scenario("availability"), opt), 2u);
  EXPECT_EQ(scenario_cell_count(*find_scenario("table_4_1"), opt), 0u);
}

// --- plan expansion: groups, filtering, clamping --------------------------

TEST(ScenarioPlan, GroupsPartitionTheCellsContiguously) {
  // fig_4_5 groups by buffer x update: 4 groups of 24 runs each — the
  // engine-owned replacement for the old per_strategy index arithmetic.
  const Scenario& sc = *find_scenario("fig_4_5");
  const ScenarioPlan plan = build_scenario_plan(sc, quick_opts());
  ASSERT_EQ(plan.groups.size(), 4u);
  ASSERT_EQ(plan.cells.size(), 96u);
  std::size_t expect_begin = 0;
  for (const auto& g : plan.groups) {
    EXPECT_EQ(g.begin, expect_begin);
    EXPECT_EQ(g.end - g.begin, 24u);
    EXPECT_FALSE(g.title.empty());
    expect_begin = g.end;
  }
  EXPECT_EQ(expect_begin, plan.cells.size());
  EXPECT_NE(plan.groups[0].title.find("buffer 200"), std::string::npos);
  EXPECT_NE(plan.groups[3].title.find("FORCE"), std::string::npos);
}

TEST(ScenarioPlan, MaxNodesFiltersNodeAxes) {
  const Scenario& sc = *find_scenario("fig_4_1");
  const ScenarioPlan plan = build_scenario_plan(sc, quick_opts(3));
  EXPECT_EQ(plan.cells.size(), 2u * 2u * 3u);  // n in {1,2,3}
  for (const auto& c : plan.cells) EXPECT_LE(c.cfg.nodes, 3);
}

TEST(ScenarioPlan, MaxNodesClampsClampAxes) {
  // ablation_msg_cost runs at n = min(10, max_nodes), not a filtered sweep.
  const Scenario& sc = *find_scenario("ablation_msg_cost");
  const ScenarioPlan plan = build_scenario_plan(sc, quick_opts(3));
  ASSERT_EQ(plan.cells.size(), 5u);
  for (const auto& c : plan.cells) EXPECT_EQ(c.cfg.nodes, 3);
}

TEST(ScenarioPlan, CellsCarryLabelsParamsAndExtras) {
  const Scenario& sc = *find_scenario("ablation_update_locks");
  const ScenarioPlan plan = build_scenario_plan(sc, quick_opts());
  ASSERT_EQ(plan.cells.size(), 12u);
  EXPECT_EQ(plan.cells.front().label, "GEM hot=4 R->W");
  // params: [coupling(unused), hot_pages, update-mode flag]
  ASSERT_EQ(plan.cells.front().params.size(), 3u);
  EXPECT_EQ(plan.cells.front().params[1], 4.0);
  EXPECT_EQ(plan.cells.back().params[1], 256.0);
  EXPECT_EQ(plan.cells.back().params[2], 1.0);
}

// --- golden: fig_4_1 against the committed baseline shape -----------------

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

TEST(ScenarioGolden, Fig41QuickMatchesCommittedBaselineShape) {
  const std::string baseline =
      slurp(std::string(GEMSD_SOURCE_DIR) + "/results/BENCH_fig_4_1.json");
  ASSERT_FALSE(baseline.empty()) << "committed baseline not readable";

  // The committed baseline was produced at --quick, seed 42. Every cell the
  // registry expands to must appear in it, same configs in the same order —
  // config hashes cover nodes/routing/update/buffer AND warmup/measure/seed.
  const Scenario& sc = *find_scenario("fig_4_1");
  const ScenarioPlan plan = build_scenario_plan(sc, quick_opts());
  ASSERT_EQ(plan.cells.size(), 24u);
  std::size_t pos = 0;
  for (const auto& cell : plan.cells) {
    const std::string needle =
        "\"config_hash\":\"" + obs::config_hash_hex(cell.cfg) + "\"";
    const std::size_t found = baseline.find(needle, pos);
    ASSERT_NE(found, std::string::npos)
        << cell.label << " missing/out of order in committed baseline";
    pos = found + needle.size();
  }
}

TEST(ScenarioGolden, Fig41ParallelRunsAreBitIdenticalToSerial) {
  BenchOptions opt = quick_opts(2);  // 8 runs: routing x update x n in {1,2}
  const Scenario& sc = *find_scenario("fig_4_1");
  opt.jobs = 1;
  const ScenarioResult serial = run_scenario(sc, opt);
  opt.jobs = 2;
  const ScenarioResult parallel = run_scenario(sc, opt);
  ASSERT_EQ(serial.runs.size(), parallel.runs.size());

  // Byte-compare the full results documents (all metrics, all runs).
  std::ostringstream a, b;
  for (const ScenarioResult* res : {&serial, &parallel}) {
    std::ostringstream& out = res == &serial ? a : b;
    for (const BenchRun& r : res->runs) {
      out << r.result.label() << " " << r.result.resp_ms << " "
          << r.result.throughput << " " << r.result.commits << " "
          << r.result.deadlocks << " " << r.result.messages_per_txn << "\n";
    }
  }
  EXPECT_EQ(a.str(), b.str());
}

// --- spec export round trip -----------------------------------------------

TEST(ScenarioExport, EveryExportableScenarioRoundTrips) {
  // export_scenario_spec self-verifies: it parses its own output and
  // requires config_json equality per run — a throw here is a registry/spec
  // format drift.
  const BenchOptions opt = quick_opts();
  for (const Scenario& sc : scenario_registry()) {
    if (!sc.exportable) continue;
    std::string text;
    ASSERT_NO_THROW(text = export_scenario_spec(sc, opt)) << sc.name;
    std::istringstream in(text);
    const SpecDoc doc = parse_spec_doc(in);
    EXPECT_EQ(doc.scenario, sc.name);
    EXPECT_EQ(doc.runs.size(), scenario_cell_count(sc, opt)) << sc.name;
  }
}

TEST(ScenarioExport, NonExportableScenariosThrow) {
  EXPECT_THROW(
      export_scenario_spec(*find_scenario("availability"), quick_opts()),
      std::runtime_error);
  EXPECT_THROW(
      export_scenario_spec(*find_scenario("table_4_1"), quick_opts()),
      std::runtime_error);
}

TEST(ScenarioExport, SpecRunMetricsMatchRegistryRun) {
  // The gemsd_run execution path (fresh config from the parsed spec) must
  // reproduce the in-registry run bit-for-bit: same response times, same
  // commit counts, same everything.
  BenchOptions opt = quick_opts(2);
  const Scenario& sc = *find_scenario("fig_4_1");
  const ScenarioResult reg = run_scenario(sc, opt);

  const std::string text = export_scenario_spec(sc, opt);
  std::istringstream in(text);
  const SpecDoc doc = parse_spec_doc(in);
  ASSERT_EQ(doc.runs.size(), reg.runs.size());
  for (std::size_t i = 0; i < doc.runs.size(); ++i) {
    SystemConfig cfg = doc.runs[i].cfg;
    cfg.obs = reg.runs[i].config.obs;  // same telemetry settings
    const RunResult r = run_debit_credit(cfg);
    EXPECT_DOUBLE_EQ(r.resp_ms, reg.runs[i].result.resp_ms) << i;
    EXPECT_DOUBLE_EQ(r.throughput, reg.runs[i].result.throughput) << i;
    EXPECT_EQ(r.commits, reg.runs[i].result.commits) << i;
    EXPECT_DOUBLE_EQ(r.messages_per_txn,
                     reg.runs[i].result.messages_per_txn)
        << i;
  }
}

TEST(ScenarioExport, ShippedSpecsAreCurrent) {
  // specs/<name>.ini is generated (gemsd_bench --export-spec=specs) and
  // committed; it must match what the registry exports today.
  const std::string dir = std::string(GEMSD_SOURCE_DIR) + "/specs/";
  if (!std::ifstream(dir + "fig_4_1.ini")) {
    GTEST_SKIP() << "specs/ not reachable";
  }
  for (const Scenario& sc : scenario_registry()) {
    if (!sc.exportable) continue;
    const std::string shipped = slurp(dir + sc.name + ".ini");
    ASSERT_FALSE(shipped.empty()) << sc.name << ".ini missing from specs/";
    EXPECT_EQ(shipped, export_scenario_spec(sc, BenchOptions{}))
        << "specs/" << sc.name
        << ".ini is stale; regenerate with gemsd_bench --export-spec=specs";
  }
}

// --- multi-run spec parsing ----------------------------------------------

TEST(SpecDoc, MultiRunSpecAppliesBaseThenRunKeys) {
  std::istringstream in(R"(
[scenario]
name = demo
caption = two runs

[system]
buffer = 1000
coupling = pcl

# run: first
[run]
nodes = 2
routing = affinity

[run]
nodes = 5
routing = random
coupling = gem
)");
  const SpecDoc doc = parse_spec_doc(in);
  EXPECT_EQ(doc.scenario, "demo");
  ASSERT_EQ(doc.runs.size(), 2u);
  EXPECT_EQ(doc.runs[0].cfg.nodes, 2);
  EXPECT_EQ(doc.runs[0].cfg.buffer_pages, 1000);
  EXPECT_EQ(doc.runs[0].cfg.coupling, Coupling::PrimaryCopy);
  EXPECT_EQ(doc.runs[0].cfg.routing, Routing::Affinity);
  EXPECT_EQ(doc.runs[1].cfg.nodes, 5);
  EXPECT_EQ(doc.runs[1].cfg.coupling, Coupling::GemLocking);
  EXPECT_EQ(doc.runs[1].cfg.routing, Routing::Random);
}

TEST(SpecDoc, SingleRunWrapperRejectsMultiRunSpecs) {
  std::istringstream in("[run]\nnodes = 1\n\n[run]\nnodes = 2\n");
  EXPECT_THROW(parse_run_spec(in), std::runtime_error);
}

TEST(SpecDoc, PartitionKeysKeepTheirCase) {
  std::istringstream in(
      "[system]\nstorage.BRANCH/TELLER = gem\n"
      "gem_cache_pages.BRANCH/TELLER = 123\n");
  const SpecDoc doc = parse_spec_doc(in);
  ASSERT_EQ(doc.runs.size(), 1u);
  EXPECT_EQ(doc.runs[0].cfg.partitions[0].storage, StorageKind::Gem);
  EXPECT_EQ(doc.runs[0].cfg.partitions[0].gem_cache_pages, 123);
}

TEST(SpecKeys, RoundTripReproducesTheConfig) {
  SystemConfig cfg = make_debit_credit_config();
  cfg.nodes = 7;
  cfg.coupling = Coupling::LockEngine;
  cfg.lock_engine_service = 100 * 1e-6;
  cfg.buffer_pages = 1000;
  cfg.partitions[0].storage = StorageKind::DiskGemCache;
  cfg.partitions[0].gem_cache_pages = 2000;

  SystemConfig rebuilt = make_debit_credit_config();
  apply_spec_keys(rebuilt, spec_keys(cfg));
  EXPECT_EQ(obs::config_json(rebuilt), obs::config_json(cfg));
}

}  // namespace
}  // namespace gemsd
