// Statistical validation of the synthetic trace against the aggregate
// characteristics the paper reports for its real-life workload (Section 4.6)
// — this is the documented substitution for the unavailable trace.
#include <gtest/gtest.h>

#include <unordered_set>

#include "workload/trace_generator.hpp"

namespace gemsd::workload {
namespace {

const Trace& shared_trace() {
  static const Trace tr = [] {
    sim::Rng rng(7);
    return generate_synthetic_trace({}, rng);
  }();
  return tr;
}

TEST(SyntheticTrace, PaperScaleCounts) {
  const auto s = compute_stats(shared_trace());
  EXPECT_EQ(s.transactions, 17500u);              // "more than 17,500"
  EXPECT_NEAR(static_cast<double>(s.references), 1.0e6, 0.1e6);  // ~1M
  EXPECT_NEAR(static_cast<double>(s.distinct_pages), 66000, 8000);
  EXPECT_GT(s.largest_txn, 11000u);               // ad-hoc query
}

TEST(SyntheticTrace, UpdateCharacteristics) {
  const auto s = compute_stats(shared_trace());
  // "About 20% of the transactions perform updates, but only 1.6% of all
  // database accesses are writes."
  EXPECT_NEAR(s.update_txn_fraction, 0.20, 0.03);
  EXPECT_NEAR(s.write_ref_fraction, 0.016, 0.004);
}

TEST(SyntheticTrace, TwelveTypesAllPresent) {
  const Trace& tr = shared_trace();
  EXPECT_EQ(tr.num_types, 12);
  std::vector<int> counts(12, 0);
  for (const auto& t : tr.txns) ++counts[static_cast<std::size_t>(t.type)];
  for (int c : counts) EXPECT_GT(c, 0);
  EXPECT_GE(counts[11], 5);  // at least a handful of ad-hoc queries
}

TEST(SyntheticTrace, SizeVariationIsLarge) {
  const Trace& tr = shared_trace();
  std::size_t mn = SIZE_MAX, mx = 0;
  for (const auto& t : tr.txns) {
    mn = std::min(mn, t.refs.size());
    mx = std::max(mx, t.refs.size());
  }
  EXPECT_LE(mn, 5u);
  EXPECT_GE(mx, 9000u);
}

TEST(SyntheticTrace, CatalogFileIsNeverWritten) {
  // The paper's trace showed insignificant lock conflicts; our construction
  // guarantees the shared catalog (scanned by the long ad-hoc query) is
  // read-only.
  for (const auto& t : shared_trace().txns) {
    for (const auto& r : t.refs) {
      if (r.page.partition == 0) {
        EXPECT_FALSE(r.write);
      }
    }
  }
}

TEST(SyntheticTrace, LongReadTypesAvoidWrittenFiles) {
  // Files written by anyone:
  std::unordered_set<int> written;
  for (const auto& t : shared_trace().txns) {
    for (const auto& r : t.refs) {
      if (r.write) written.insert(r.page.partition);
    }
  }
  // Long read-only types (150+ mean refs: types 8, 10, 11) must only touch
  // unwritten files — their strict-2PL read locks are held for seconds.
  for (const auto& t : shared_trace().txns) {
    if (t.type != 8 && t.type != 10 && t.type != 11) continue;
    for (const auto& r : t.refs) {
      EXPECT_EQ(written.count(r.page.partition), 0u)
          << "type " << t.type << " reads written file " << r.page.partition;
    }
  }
}

TEST(SyntheticTrace, WritesAvoidZipfHead) {
  // Writes must land in the cold tail region (>= 30% of the file).
  for (const auto& t : shared_trace().txns) {
    for (const auto& r : t.refs) {
      if (!r.write) continue;
      EXPECT_GE(r.page.page, 200);  // smallest file is 800 pages; 30% = 240
    }
  }
}

TEST(SyntheticTrace, AccessSkewIsHigh) {
  // Top 10% of pages should attract well over half of the references.
  const Trace& tr = shared_trace();
  std::unordered_map<std::uint64_t, std::uint64_t> freq;
  std::uint64_t total = 0;
  for (const auto& t : tr.txns) {
    for (const auto& r : t.refs) {
      ++freq[r.page.key()];
      ++total;
    }
  }
  std::vector<std::uint64_t> counts;
  counts.reserve(freq.size());
  for (const auto& [k, v] : freq) counts.push_back(v);
  std::sort(counts.rbegin(), counts.rend());
  std::uint64_t head = 0;
  for (std::size_t i = 0; i < counts.size() / 10; ++i) head += counts[i];
  EXPECT_GT(static_cast<double>(head) / static_cast<double>(total), 0.5);
}

TEST(SyntheticTrace, DeterministicForSeed) {
  sim::Rng a(3), b(3);
  const Trace t1 = generate_synthetic_trace({}, a);
  const Trace t2 = generate_synthetic_trace({}, b);
  ASSERT_EQ(t1.txns.size(), t2.txns.size());
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(t1.txns[i].type, t2.txns[i].type);
    EXPECT_EQ(t1.txns[i].refs.size(), t2.txns[i].refs.size());
  }
}

TEST(SyntheticTrace, ConfigurableSize) {
  sim::Rng rng(1);
  SyntheticTraceConfig cfg;
  cfg.transactions = 2000;
  const Trace tr = generate_synthetic_trace(cfg, rng);
  EXPECT_EQ(tr.txns.size(), 2000u);
}

}  // namespace
}  // namespace gemsd::workload
