// SweepRunner determinism: a simulation is a pure function of its
// SystemConfig (each run owns its Scheduler and Rng), so the same config +
// seed must yield bit-identical RunResults whether run serially, through
// SweepRunner with --jobs=1, or through SweepRunner with --jobs=4 — and
// results must come back in submission order regardless of which worker
// finished first.
#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/sweep.hpp"

namespace gemsd {
namespace {

std::vector<SystemConfig> quick_sweep_configs() {
  std::vector<SystemConfig> cfgs;
  for (Routing routing : {Routing::Affinity, Routing::Random}) {
    for (int n : {1, 2, 3}) {
      SystemConfig cfg = make_debit_credit_config();
      cfg.nodes = n;
      cfg.coupling = Coupling::GemLocking;
      cfg.update = UpdateStrategy::NoForce;
      cfg.routing = routing;
      cfg.warmup = 1.0;
      cfg.measure = 3.0;
      cfg.seed = 42;
      cfgs.push_back(cfg);
    }
  }
  return cfgs;
}

// Bit-identical comparison of every field the reports print. Doubles are
// compared with ==: the runs must replay the exact same event sequence, not
// merely a statistically similar one.
void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.coupling, b.coupling);
  EXPECT_EQ(a.update, b.update);
  EXPECT_EQ(a.routing, b.routing);
  EXPECT_EQ(a.buffer_pages, b.buffer_pages);
  EXPECT_EQ(a.arrival_rate_per_node, b.arrival_rate_per_node);
  EXPECT_EQ(a.resp_ms, b.resp_ms);
  EXPECT_EQ(a.resp_ci_ms, b.resp_ci_ms);
  EXPECT_EQ(a.resp_p95_ms, b.resp_p95_ms);
  EXPECT_EQ(a.resp_norm_ms, b.resp_norm_ms);
  EXPECT_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.commits, b.commits);
  EXPECT_EQ(a.aborts, b.aborts);
  EXPECT_EQ(a.deadlocks, b.deadlocks);
  EXPECT_EQ(a.cpu_util, b.cpu_util);
  EXPECT_EQ(a.cpu_util_max, b.cpu_util_max);
  EXPECT_EQ(a.gem_util, b.gem_util);
  EXPECT_EQ(a.net_util, b.net_util);
  EXPECT_EQ(a.tps_per_node_at_80, b.tps_per_node_at_80);
  ASSERT_EQ(a.hit_ratio.size(), b.hit_ratio.size());
  for (std::size_t i = 0; i < a.hit_ratio.size(); ++i) {
    EXPECT_EQ(a.hit_ratio[i], b.hit_ratio[i]);
  }
  EXPECT_EQ(a.invalidations_per_txn, b.invalidations_per_txn);
  EXPECT_EQ(a.page_requests_per_txn, b.page_requests_per_txn);
  EXPECT_EQ(a.page_request_delay_ms, b.page_request_delay_ms);
  EXPECT_EQ(a.evict_writes_per_txn, b.evict_writes_per_txn);
  EXPECT_EQ(a.force_writes_per_txn, b.force_writes_per_txn);
  EXPECT_EQ(a.local_lock_fraction, b.local_lock_fraction);
  EXPECT_EQ(a.lock_waits_per_txn, b.lock_waits_per_txn);
  EXPECT_EQ(a.lock_wait_ms, b.lock_wait_ms);
  EXPECT_EQ(a.messages_per_txn, b.messages_per_txn);
  EXPECT_EQ(a.revocations_per_txn, b.revocations_per_txn);
  EXPECT_EQ(a.brk_cpu_ms, b.brk_cpu_ms);
  EXPECT_EQ(a.brk_cpu_wait_ms, b.brk_cpu_wait_ms);
  EXPECT_EQ(a.brk_io_ms, b.brk_io_ms);
  EXPECT_EQ(a.brk_cc_ms, b.brk_cc_ms);
  EXPECT_EQ(a.brk_queue_ms, b.brk_queue_ms);
}

TEST(SweepRunner, JobsResolveToAtLeastOne) {
  EXPECT_GE(SweepRunner::default_jobs(), 1);
  EXPECT_EQ(SweepRunner(1).jobs(), 1);
  EXPECT_EQ(SweepRunner(4).jobs(), 4);
  EXPECT_GE(SweepRunner(0).jobs(), 1);
}

TEST(SweepRunner, SerialAndParallelAreBitIdentical) {
  const std::vector<SystemConfig> cfgs = quick_sweep_configs();

  // Reference: the plain serial path, one run at a time.
  std::vector<RunResult> serial;
  for (const SystemConfig& cfg : cfgs) {
    serial.push_back(run_debit_credit(cfg));
  }

  const std::vector<RunResult> jobs1 =
      SweepRunner(1).run_debit_credit(cfgs);
  const std::vector<RunResult> jobs4 =
      SweepRunner(4).run_debit_credit(cfgs);

  ASSERT_EQ(serial.size(), jobs1.size());
  ASSERT_EQ(serial.size(), jobs4.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("run " + std::to_string(i));
    expect_identical(serial[i], jobs1[i]);
    expect_identical(serial[i], jobs4[i]);
  }
}

TEST(SweepRunner, ResultsComeBackInSubmissionOrder) {
  // Submission order is recoverable from the config echo in RunResult, so a
  // misordered merge would be visible even if every run completed correctly.
  const std::vector<SystemConfig> cfgs = quick_sweep_configs();
  const std::vector<RunResult> runs = SweepRunner(4).run_debit_credit(cfgs);
  ASSERT_EQ(runs.size(), cfgs.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    EXPECT_EQ(runs[i].nodes, cfgs[i].nodes);
    EXPECT_EQ(runs[i].routing, cfgs[i].routing);
  }
}

TEST(SweepRunner, MapPropagatesTaskExceptions) {
  std::vector<std::function<int()>> tasks;
  tasks.push_back([] { return 1; });
  tasks.push_back([]() -> int { throw std::runtime_error("boom"); });
  tasks.push_back([] { return 3; });
  EXPECT_THROW(SweepRunner(2).map(std::move(tasks)), std::runtime_error);
}

}  // namespace
}  // namespace gemsd
