// Unit tests for the storage substrate: disk groups, disk caches
// (volatile/non-volatile), the GEM device, and partition routing.
#include <gtest/gtest.h>

#include "core/config.hpp"
#include "sim/scheduler.hpp"
#include "storage/disk.hpp"
#include "storage/disk_cache.hpp"
#include "storage/gem_device.hpp"
#include "storage/storage_manager.hpp"

namespace gemsd::storage {
namespace {

using sim::Scheduler;
using sim::Task;

PageId pg(std::int64_t n, PartitionId part = 0) { return PageId{part, n}; }

// Deterministic timing helper: constant "exponential" via a fixed seed is
// still random, so for timing assertions we use wide tolerances and many
// samples where needed.
struct Fixture {
  Scheduler sched;
  sim::Rng rng{1};
};

Task<void> do_read(DiskGroup& g, PageId p, bool* hit, double* done_at,
                   Scheduler& s) {
  *hit = co_await g.read(p);
  *done_at = s.now();
}

Task<void> do_write(DiskGroup& g, PageId p, double* done_at, Scheduler& s) {
  co_await g.write(p);
  *done_at = s.now();
}

TEST(DiskGroup, UncachedReadTakesControllerDiskTransfer) {
  Fixture f;
  DiskGroup g(f.sched, f.rng, "d", 4,
              {sim::msec(15), sim::msec(1), sim::msec(0.4)});
  double sum = 0;
  const int kN = 400;
  for (int i = 0; i < kN; ++i) {
    bool hit = true;
    double at = 0;
    f.sched.spawn(do_read(g, pg(i), &hit, &at, f.sched));
    f.sched.run_all();
    EXPECT_FALSE(hit);
    sum += at;
  }
  // Unloaded accesses average controller 1ms + disk 15ms + transfer 0.4ms.
  // (each read is issued alone, so no queueing)
  const double mean = sum / kN - /* accumulated time shift */ 0;
  (void)mean;
  EXPECT_EQ(g.reads(), static_cast<std::uint64_t>(kN));
}

TEST(DiskGroup, MeanUnloadedReadTimeIs16_4ms) {
  Fixture f;
  DiskGroup g(f.sched, f.rng, "d", 1,
              {sim::msec(15), sim::msec(1), sim::msec(0.4)});
  const int kN = 2000;
  double total = 0;
  for (int i = 0; i < kN; ++i) {
    bool hit;
    double t0 = f.sched.now(), at = 0;
    f.sched.spawn(do_read(g, pg(i), &hit, &at, f.sched));
    f.sched.run_all();
    total += at - t0;
  }
  EXPECT_NEAR(total / kN, 16.4e-3, 0.8e-3);
}

TEST(DiskGroup, VolatileCacheServesReadHits) {
  Fixture f;
  auto cache = std::make_unique<DiskCache>(10, /*nonvolatile=*/false);
  DiskCache* c = cache.get();
  DiskGroup g(f.sched, f.rng, "d", 2,
              {sim::msec(15), sim::msec(1), sim::msec(0.4)},
              std::move(cache));
  bool hit;
  double at;
  f.sched.spawn(do_read(g, pg(1), &hit, &at, f.sched));
  f.sched.run_all();
  EXPECT_FALSE(hit);  // first access stages the page in
  const double t0 = f.sched.now();
  f.sched.spawn(do_read(g, pg(1), &hit, &at, f.sched));
  f.sched.run_all();
  EXPECT_TRUE(hit);
  // Cache hit: controller + transfer only, ~1.4 ms (exponential controller).
  EXPECT_LT(at - t0, 8e-3);
  EXPECT_EQ(c->hits(), 1u);
}

TEST(DiskGroup, NonVolatileCacheAbsorbsWrites) {
  Fixture f;
  DiskGroup g(f.sched, f.rng, "d", 2,
              {sim::msec(15), sim::msec(1), sim::msec(0.4)},
              std::make_unique<DiskCache>(100, /*nonvolatile=*/true));
  const double t0 = f.sched.now();
  double at = 0;
  f.sched.spawn(do_write(g, pg(1), &at, f.sched));
  f.sched.run_until(t0 + 0.008);
  // Fast write completes without the 15 ms disk delay...
  EXPECT_GT(at, 0.0);
  EXPECT_LT(at - t0, 8e-3);
  f.sched.run_all();
  // ...and the asynchronous destage eventually reaches the disk arm.
  EXPECT_GT(g.arm_utilization(), 0.0);
}

TEST(DiskGroup, VolatileCacheWritesThrough) {
  Fixture f;
  DiskGroup g(f.sched, f.rng, "d", 2,
              {sim::msec(15), sim::msec(1), sim::msec(0.4)},
              std::make_unique<DiskCache>(100, /*nonvolatile=*/false));
  double total = 0;
  for (int i = 0; i < 50; ++i) {
    double at = 0;
    const double t0 = f.sched.now();
    f.sched.spawn(do_write(g, pg(i), &at, f.sched));
    f.sched.run_all();
    total += at - t0;
  }
  EXPECT_GT(total / 50, 8e-3);  // write-through pays the ~15 ms disk delay
  // The written pages are kept for subsequent readers.
  bool hit;
  double at;
  f.sched.spawn(do_read(g, pg(1), &hit, &at, f.sched));
  f.sched.run_all();
  EXPECT_TRUE(hit);
}

TEST(DiskCache, LruEvictsAndReportsDirtyVictims) {
  DiskCache c(2, /*nonvolatile=*/true);
  EXPECT_FALSE(c.install(pg(1), true).any);
  EXPECT_FALSE(c.install(pg(2), false).any);
  // Page 2 is clean -> evicted silently; dirty page 1 stays.
  auto ev = c.install(pg(3), false);
  EXPECT_FALSE(ev.any);
  EXPECT_TRUE(c.contains(pg(1)));
  EXPECT_FALSE(c.contains(pg(2)));
  // Now both resident pages (1 dirty, 3 clean): evicting for page 4 drops 3;
  // then for page 5 must push out dirty page 1.
  EXPECT_FALSE(c.install(pg(4), true).any);  // drops clean 3
  auto ev2 = c.install(pg(5), false);
  EXPECT_TRUE(ev2.any);
  EXPECT_EQ(ev2.page, pg(1));
}

TEST(DiskCache, DestagedMarksClean) {
  DiskCache c(2, true);
  c.install(pg(1), true);
  c.destaged(pg(1));
  c.install(pg(2), false);
  // Page 1 clean now: evictable without destage.
  auto ev = c.install(pg(3), false);
  EXPECT_FALSE(ev.any);
  EXPECT_FALSE(c.contains(pg(1)));
}

Task<void> gem_op(GemDevice& g, bool page, double* at, Scheduler& s) {
  if (page) {
    co_await g.page_access();
  } else {
    co_await g.entry_access();
  }
  *at = s.now();
}

TEST(GemDevice, AccessTimesMatchConfig) {
  Scheduler sched;
  GemConfig cfg;
  GemDevice g(sched, cfg);
  double at = 0;
  sched.spawn(gem_op(g, true, &at, sched));
  sched.run_all();
  EXPECT_DOUBLE_EQ(at, 50e-6);
  const double t0 = sched.now();
  sched.spawn(gem_op(g, false, &at, sched));
  sched.run_all();
  EXPECT_DOUBLE_EQ(at - t0, 2e-6);
  EXPECT_EQ(g.page_ops(), 1u);
  EXPECT_EQ(g.entry_ops(), 1u);
}

TEST(GemDevice, SingleServerQueues) {
  Scheduler sched;
  GemDevice g(sched, GemConfig{});
  double a = 0, b = 0;
  sched.spawn(gem_op(g, true, &a, sched));
  sched.spawn(gem_op(g, true, &b, sched));
  sched.run_all();
  EXPECT_DOUBLE_EQ(a, 50e-6);
  EXPECT_DOUBLE_EQ(b, 100e-6);  // serialized on the single GEM server
}

Task<void> sm_read(StorageManager& sm, PageId p, bool* hit) {
  *hit = co_await sm.read(p);
}

TEST(StorageManager, RoutesGemPartitions) {
  Scheduler sched;
  sim::Rng rng(1);
  SystemConfig cfg = make_debit_credit_config();
  cfg.nodes = 1;
  cfg.partitions[DebitCreditIds::kBranchTeller].storage = StorageKind::Gem;
  StorageManager sm(sched, rng, cfg);
  EXPECT_TRUE(sm.is_gem(DebitCreditIds::kBranchTeller));
  EXPECT_FALSE(sm.is_gem(DebitCreditIds::kAccount));
  bool hit = false;
  sched.spawn(sm_read(sm, pg(0, DebitCreditIds::kBranchTeller), &hit));
  sched.run_all();
  EXPECT_TRUE(hit);  // GEM reads never touch a disk arm
  EXPECT_EQ(sm.gem().page_ops(), 1u);
  EXPECT_EQ(sm.group(DebitCreditIds::kBranchTeller), nullptr);
  EXPECT_NE(sm.group(DebitCreditIds::kAccount), nullptr);
}

Task<void> sm_log(StorageManager& sm, NodeId n, double* at, Scheduler& s) {
  co_await sm.log_write(n);
  *at = s.now();
}

TEST(StorageManager, LogWritesUsePerNodeLogDisks) {
  Scheduler sched;
  sim::Rng rng(1);
  SystemConfig cfg = make_debit_credit_config();
  cfg.nodes = 2;
  StorageManager sm(sched, rng, cfg);
  double at = 0;
  sched.spawn(sm_log(sm, 1, &at, sched));
  sched.run_all();
  EXPECT_GT(at, 1e-3);  // controller + 5ms-class log disk + transfer
  EXPECT_EQ(sm.log_group(1).writes(), 1u);
  // Node 0 never logged, so its group is not even built (memory-lean at
  // scale); asking for it builds an idle group with zero writes.
  EXPECT_EQ(sm.log_group_if_built(0), nullptr);
  EXPECT_EQ(sm.log_group(0).writes(), 0u);
}

TEST(StorageManager, GemLogWhenConfigured) {
  Scheduler sched;
  sim::Rng rng(1);
  SystemConfig cfg = make_debit_credit_config();
  cfg.nodes = 1;
  cfg.log_storage = StorageKind::Gem;
  StorageManager sm(sched, rng, cfg);
  double at = 0;
  sched.spawn(sm_log(sm, 0, &at, sched));
  sched.run_all();
  EXPECT_DOUBLE_EQ(at, 50e-6);
  EXPECT_TRUE(sm.log_on_gem());
}

}  // namespace
}  // namespace gemsd::storage
