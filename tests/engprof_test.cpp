// Engine parallelism profiler tests (obs/engprof.hpp, --engine-profile):
// the accounting invariants (classes tile windows, measured speedup <= its
// critical-LP bound), the bounded ring, the gemsd.engprof.v1 document
// (schema, round trip, report), and — the contract everything else rests
// on — bit-identical simulation results with profiling on or off at any
// worker count. Suite names start with "EngProf"/"LpCluster" so the TSan CI
// job covers the cross-thread lp_ran/window_end hand-off.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/config_file.hpp"
#include "core/experiment.hpp"
#include "obs/engprof.hpp"
#include "obs/json.hpp"
#include "obs/telemetry.hpp"
#include "sim/engine.hpp"
#include "sim/lp_cluster.hpp"
#include "sim/scheduler.hpp"

#ifndef GEMSD_SOURCE_DIR
#define GEMSD_SOURCE_DIR "."
#endif

namespace {

using namespace gemsd;
using namespace gemsd::sim;

LpClusterConfig profiled_cluster() {
  LpClusterConfig c;
  c.nodes = 4;
  c.mpl = 8;
  c.txns_per_node = 50;
  c.requests_per_txn = 5;
  c.remote_fraction = 0.3;
  c.straggler_extra_requests = 10;  // node0 = deterministic straggler
  return c;
}

// --- manual accounting ----------------------------------------------------

// Hand-fed windows: the aggregates must reproduce the arithmetic exactly.
TEST(EngProfAccounting, ClassesTileWindowsAndCriticalSums) {
  obs::EngProfiler prof(8);
  prof.attach(2, {"a", "b"});

  // Window 0 [wall 0,10): a drains [1,4) (3s), b drains [2,8) (6s).
  prof.window_begin(0.0, 1.0, 2.0, obs::EngWindowKind::Normal, 0, 1, 1.0);
  prof.lp_ran(0, 0, 1.0, 4.0, 100);
  prof.lp_ran(1, 1, 2.0, 8.0, 200);
  // window_end stamps "now" as the wall end; the next window's begin is what
  // actually closes this one for the tiling math, passed explicitly here.
  prof.window_end();

  const obs::EngProfile p = prof.snapshot();
  EXPECT_EQ(p.windows, 1u);
  EXPECT_EQ(p.events, 300u);
  EXPECT_DOUBLE_EQ(p.execute_s, 9.0);     // 3 + 6
  EXPECT_DOUBLE_EQ(p.critical_s, 6.0);    // b's drain
  EXPECT_EQ(p.lps[0].windows_ran, 1u);
  EXPECT_EQ(p.lps[1].critical_windows, 1u);
  EXPECT_EQ(p.lps[0].critical_windows, 0u);
  // a: idle [0,1) + barrier [4,end); b: idle [0,2) + barrier [8,end).
  EXPECT_DOUBLE_EQ(p.lps[0].idle_s, 1.0);
  EXPECT_DOUBLE_EQ(p.lps[1].idle_s, 2.0);
  // Both ran in a normal window -> lookahead-limited stall.
  EXPECT_DOUBLE_EQ(p.lps[0].stall_lookahead_s,
                   p.lps[0].idle_s + p.lps[0].barrier_s);
  EXPECT_DOUBLE_EQ(p.lps[1].stall_degenerate_s, 0.0);
  // Classes tile the window wall span for every LP. window_end() stamps the
  // REAL clock as the wall end (the fabricated drain spans sit far past it),
  // so the identity holds algebraically but with cancellation — hence NEAR.
  for (const obs::EngProfLpStat& lp : p.lps) {
    EXPECT_NEAR(lp.exec_s + lp.idle_s + lp.barrier_s, p.windows_s, 1e-9);
  }
  // The limiting edge was charged.
  ASSERT_EQ(p.edges.size(), 1u);
  EXPECT_EQ(p.edges[0].src, 0);
  EXPECT_EQ(p.edges[0].dst, 1);
  EXPECT_EQ(p.edges[0].windows_bound, 1u);
}

TEST(EngProfAccounting, QueueEmptyLpChargedForWholeWindow) {
  obs::EngProfiler prof(8);
  prof.attach(1, {"busy", "empty"});
  prof.window_begin(0.0, 0.0, 1.0, obs::EngWindowKind::Normal, 0, 1, 1.0);
  prof.lp_ran(0, 0, 0.0, 2.0, 10);
  prof.window_end();

  const obs::EngProfile p = prof.snapshot();
  EXPECT_EQ(p.lps[1].windows_ran, 0u);
  EXPECT_DOUBLE_EQ(p.lps[1].exec_s, 0.0);
  // The idle LP's whole window is queue-empty stall, and still tiles.
  EXPECT_DOUBLE_EQ(p.lps[1].stall_queue_empty_s, p.windows_s);
  EXPECT_DOUBLE_EQ(p.lps[1].idle_s + p.lps[1].barrier_s, p.windows_s);
}

TEST(EngProfAccounting, RingIsBoundedAndChronological) {
  obs::EngProfiler prof(4);
  prof.attach(1, {"a"});
  for (int w = 0; w < 10; ++w) {
    prof.window_begin(w, w, w + 1, obs::EngWindowKind::Normal, -1, -1, 1.0);
    prof.lp_ran(0, 0, w, w + 0.5, 1);
    prof.window_end();
  }
  const obs::EngProfile p = prof.snapshot();
  EXPECT_EQ(p.windows, 10u);            // aggregates cover everything
  EXPECT_EQ(p.ring_capacity, 4u);
  ASSERT_EQ(p.ring.size(), 4u);         // ring holds the most recent tail
  EXPECT_EQ(p.ring_dropped, 6u);
  for (std::size_t i = 0; i < p.ring.size(); ++i) {
    EXPECT_EQ(p.ring[i].seq, 6 + i);
  }
  EXPECT_EQ(p.ring_slots.size(), p.ring.size() * p.lp_names.size());
}

// --- real engine, all kinds and worker counts -----------------------------

// The inertness contract: results bit-identical with the profiler attached,
// across both engine kinds and 1/2/4 workers; and the profile itself honors
// its invariants (tiling reconciliation within 1%, measured <= bound).
TEST(EngProfEngine, InertAndReconcilesAcrossKindsAndWorkers) {
  LpClusterConfig base = profiled_cluster();
  const LpClusterResult plain = run_lp_cluster(base);
  ASSERT_GT(plain.commits, 0u);

  struct Variant {
    EngineKind kind;
    int workers;
  };
  for (const Variant v : {Variant{EngineKind::Sequential, 0},
                          Variant{EngineKind::Parallel, 1},
                          Variant{EngineKind::Parallel, 2},
                          Variant{EngineKind::Parallel, 4}}) {
    LpClusterConfig cfg = base;
    cfg.kind = v.kind;
    cfg.workers = v.workers;
    obs::EngProfiler prof;
    cfg.profiler = &prof;
    const LpClusterResult r = run_lp_cluster(cfg);
    const std::string what = "kind " + std::to_string(int(v.kind)) +
                             " workers " + std::to_string(v.workers);
    EXPECT_EQ(r.checksum, plain.checksum) << what;
    EXPECT_EQ(r.events, plain.events) << what;
    EXPECT_EQ(r.windows, plain.windows) << what;

    const obs::EngProfile p = prof.snapshot();
    EXPECT_EQ(p.windows, r.windows) << what;
    EXPECT_EQ(p.events, r.events) << what;
    EXPECT_EQ(p.lps.size(), 5u) << what;
    EXPECT_EQ(p.lp_names.back(), "server") << what;
    EXPECT_GT(p.execute_s, 0.0) << what;
    EXPECT_GE(p.execute_s, p.critical_s) << what;
    EXPECT_LE(p.measured_speedup, p.speedup_bound * (1.0 + 1e-9)) << what;
    // Acceptance check: per-LP exec+idle+barrier reconciles with the summed
    // window wall time within 1% (exact up to FP rounding by construction).
    for (const obs::EngProfLpStat& lp : p.lps) {
      const double classes = lp.exec_s + lp.idle_s + lp.barrier_s;
      EXPECT_NEAR(classes, p.windows_s, 0.01 * p.windows_s)
          << what << " lp " << lp.name;
    }
    // The straggler shapes the profile. Which LP holds the longest drain of
    // a given window is wall-clock (so noisy under sanitizers), but the
    // per-LP event counts are simulation facts: node0 must out-process every
    // other node, and its extra work must show up in critical windows.
    for (std::size_t i = 1; i + 1 < p.lps.size(); ++i) {
      EXPECT_GT(p.lps[0].events, p.lps[i].events) << what << " vs lp " << i;
    }
    EXPECT_GT(p.lps[0].critical_windows, 0u) << what;
    // Only node<->server edges exist, so only they can bound windows.
    for (const obs::EngProfEdgeStat& e : p.edges) {
      EXPECT_TRUE(e.src == 4 || e.dst == 4) << what;
      EXPECT_DOUBLE_EQ(e.lookahead, base.msg_latency) << what;
    }
  }
}

TEST(EngProfEngine, DegenerateWindowsAttributed) {
  Engine eng(EngineKind::Parallel, 2);
  obs::EngProfiler prof;
  eng.set_profiler(&prof);
  Lp& a = eng.add_lp("a");
  Lp& b = eng.add_lp("b");
  eng.set_lookahead(a.id(), b.id(), 0.0);
  eng.set_lookahead(b.id(), a.id(), 0.0);

  std::function<void(int)> hop = [&](int k) {
    if (k >= 8) return;
    Lp& self = (k % 2 == 0) ? a : b;
    Lp& peer = (k % 2 == 0) ? b : a;
    self.post(peer.id(), self.sched().now(), [&hop, k] { hop(k + 1); });
  };
  a.sched().schedule_call(1.0, [&] { hop(0); });
  eng.run_until(2.0);

  const obs::EngProfile p = prof.snapshot();
  EXPECT_GT(p.degenerate_windows, 0u);
  EXPECT_EQ(p.degenerate_windows, eng.stats().degenerate_windows);
  double degenerate_stall = 0;
  for (const obs::EngProfLpStat& lp : p.lps) {
    degenerate_stall += lp.stall_degenerate_s;
  }
  EXPECT_GT(degenerate_stall, 0.0);
}

// --- document / timeline / report -----------------------------------------

obs::EngProfile sample_profile() {
  LpClusterConfig cfg = profiled_cluster();
  cfg.kind = EngineKind::Parallel;
  cfg.workers = 2;
  obs::EngProfiler prof;
  cfg.profiler = &prof;
  run_lp_cluster(cfg);
  return prof.snapshot();
}

TEST(EngProfJson, ValidatesAgainstCommittedSchema) {
  const obs::EngProfile p = sample_profile();
  obs::JsonValue doc;
  std::string err;
  ASSERT_TRUE(obs::json_parse(
      obs::engprof_json(p, {{"git", "\"test\""}}), doc, err))
      << err;

  std::ifstream f(std::string(GEMSD_SOURCE_DIR) +
                  "/schemas/engprof.schema.json");
  ASSERT_TRUE(f.good()) << "schemas/ not reachable";
  std::stringstream ss;
  ss << f.rdbuf();
  obs::JsonValue schema;
  ASSERT_TRUE(obs::json_parse(ss.str(), schema, err)) << err;
  std::vector<std::string> problems;
  EXPECT_TRUE(obs::json_schema_validate(schema, doc, problems))
      << (problems.empty() ? "" : problems.front());
}

TEST(EngProfJson, RoundTripRecoversAggregates) {
  const obs::EngProfile p = sample_profile();
  obs::JsonValue doc;
  std::string err;
  ASSERT_TRUE(obs::json_parse(obs::engprof_json(p, {}), doc, err)) << err;

  obs::EngProfile q;
  ASSERT_TRUE(obs::engprof_from_json(doc, q, err)) << err;
  // Doubles go through decimal text, so compare to printing precision.
  const auto near = [](double a, double b) {
    return std::abs(a - b) <= 1e-9 * (1.0 + std::abs(b));
  };
  EXPECT_EQ(q.workers, p.workers);
  EXPECT_EQ(q.windows, p.windows);
  EXPECT_EQ(q.degenerate_windows, p.degenerate_windows);
  EXPECT_EQ(q.events, p.events);
  EXPECT_TRUE(near(q.execute_s, p.execute_s));
  EXPECT_TRUE(near(q.critical_s, p.critical_s));
  EXPECT_TRUE(near(q.measured_speedup, p.measured_speedup));
  EXPECT_TRUE(near(q.speedup_bound, p.speedup_bound));
  ASSERT_EQ(q.lps.size(), p.lps.size());
  for (std::size_t i = 0; i < p.lps.size(); ++i) {
    EXPECT_EQ(q.lps[i].name, p.lps[i].name);
    EXPECT_EQ(q.lps[i].critical_windows, p.lps[i].critical_windows);
    EXPECT_TRUE(near(q.lps[i].exec_s, p.lps[i].exec_s));
    EXPECT_TRUE(near(q.lps[i].stall_queue_empty_s,
                     p.lps[i].stall_queue_empty_s));
  }
  ASSERT_EQ(q.edges.size(), p.edges.size());
  for (std::size_t i = 0; i < p.edges.size(); ++i) {
    EXPECT_EQ(q.edges[i].src, p.edges[i].src);
    EXPECT_EQ(q.edges[i].windows_bound, p.edges[i].windows_bound);
  }
  // Rejects a non-engprof document.
  obs::JsonValue bogus;
  ASSERT_TRUE(obs::json_parse("{\"schema\":\"other.v1\"}", bogus, err));
  obs::EngProfile out;
  EXPECT_FALSE(obs::engprof_from_json(bogus, out, err));
}

TEST(EngProfJson, ChromeTimelineParsesWithWorkerAndLpTracks) {
  const obs::EngProfile p = sample_profile();
  obs::JsonValue doc;
  std::string err;
  ASSERT_TRUE(obs::json_parse(obs::engprof_chrome_json(p, {}), doc, err))
      << err;
  const obs::JsonValue* events = doc.find("traceEvents");
  ASSERT_TRUE(events && events->is_array());
  EXPECT_GT(events->arr.size(), p.ring.size());  // spans + metadata
  // All three track families are present (pid 0 windows / 1 workers / 2 LPs).
  bool pid[3] = {false, false, false};
  for (const obs::JsonValue& e : events->arr) {
    const obs::JsonValue* p_id = e.find("pid");
    if (p_id && p_id->is_number() && p_id->num >= 0 && p_id->num <= 2) {
      pid[static_cast<int>(p_id->num)] = true;
    }
  }
  EXPECT_TRUE(pid[0] && pid[1] && pid[2]);
}

TEST(EngProfReport, DeterministicAndNamesTheStraggler) {
  const obs::EngProfile p = sample_profile();
  const std::string rep = format_engprof(p);
  EXPECT_EQ(rep, format_engprof(p));  // deterministic bytes
  EXPECT_NE(rep.find("engine parallelism profile"), std::string::npos);
  EXPECT_NE(rep.find("node0"), std::string::npos);
  EXPECT_NE(rep.find("server"), std::string::npos);
  EXPECT_NE(rep.find("speedup"), std::string::npos);
  EXPECT_NE(rep.find("lookahead"), std::string::npos);
}

// --- System integration ---------------------------------------------------

SystemConfig small_system() {
  SystemConfig cfg = make_debit_credit_config();
  cfg.nodes = 2;
  cfg.warmup = 0.1;
  cfg.measure = 0.4;
  return cfg;
}

// Profiling through ObsConfig must not move a single metric, and the
// profile must land in the telemetry (the single-LP System runs one final
// window per run_until segment).
TEST(EngProfSystem, ProfileOnOffMetricsIdentical) {
  const RunResult off = run_debit_credit(small_system());
  SystemConfig cfg = small_system();
  cfg.obs.engine_profile = true;
  const RunResult on = run_debit_credit(cfg);

  EXPECT_EQ(on.commits, off.commits);
  EXPECT_EQ(on.aborts, off.aborts);
  EXPECT_DOUBLE_EQ(on.throughput, off.throughput);
  EXPECT_DOUBLE_EQ(on.resp_ms, off.resp_ms);
  EXPECT_DOUBLE_EQ(on.resp_p95_ms, off.resp_p95_ms);
  EXPECT_DOUBLE_EQ(on.cpu_util, off.cpu_util);

  ASSERT_TRUE(on.telemetry);
  ASSERT_TRUE(on.telemetry->engprof);
  EXPECT_GE(on.telemetry->engprof->windows, 1u);
  EXPECT_GT(on.telemetry->engprof->events, 0u);
  ASSERT_TRUE(off.telemetry);
  EXPECT_FALSE(off.telemetry->engprof);
}

// Satellite: the periodic sampler is bit-identical between the sequential
// and parallel engines at 1/2/4 workers on a shipped spec.
TEST(EngProfSystem, SamplerIdenticalAcrossEnginesOnShippedSpec) {
  const std::string path =
      std::string(GEMSD_SOURCE_DIR) + "/specs/fig_4_1.ini";
  if (!std::filesystem::exists(path)) GTEST_SKIP() << "specs/ not reachable";
  const SpecDoc doc = parse_spec_doc_file(path);
  ASSERT_FALSE(doc.runs.empty());

  auto run_sampled = [&](EngineKind kind, int workers) {
    SystemConfig cfg = doc.runs[0].cfg;
    cfg.warmup = 0.1;
    cfg.measure = 0.4;
    cfg.obs.sample_every = 0.05;
    cfg.engine.kind = kind;
    cfg.engine.workers = workers;
    return run_debit_credit(cfg);
  };

  const RunResult seq = run_sampled(EngineKind::Sequential, 0);
  ASSERT_TRUE(seq.telemetry);
  ASSERT_FALSE(seq.telemetry->samples.empty());

  for (const int workers : {1, 2, 4}) {
    const RunResult par = run_sampled(EngineKind::Parallel, workers);
    const std::string what = "workers " + std::to_string(workers);
    ASSERT_TRUE(par.telemetry) << what;
    const std::vector<obs::Sample>& a = seq.telemetry->samples;
    const std::vector<obs::Sample>& b = par.telemetry->samples;
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_DOUBLE_EQ(a[i].t, b[i].t) << what << " sample " << i;
      EXPECT_DOUBLE_EQ(a[i].throughput, b[i].throughput) << what;
      EXPECT_DOUBLE_EQ(a[i].resp_ms, b[i].resp_ms) << what;
      EXPECT_EQ(a[i].commits, b[i].commits) << what;
      EXPECT_EQ(a[i].aborts, b[i].aborts) << what;
      EXPECT_DOUBLE_EQ(a[i].active_txns, b[i].active_txns) << what;
      EXPECT_DOUBLE_EQ(a[i].cpu_busy, b[i].cpu_busy) << what;
      EXPECT_DOUBLE_EQ(a[i].gem_busy, b[i].gem_busy) << what;
      EXPECT_DOUBLE_EQ(a[i].sched_queue, b[i].sched_queue) << what;
      EXPECT_EQ(a[i].in_warmup, b[i].in_warmup) << what;
    }
  }
}

// --- progress heartbeat ---------------------------------------------------

TEST(EngProfProgress, SchedulerHookFiresEveryNEvents) {
  Scheduler s;
  int fired = 0;
  s.set_progress_hook([&] { ++fired; }, 10);
  for (int i = 0; i < 25; ++i) {
    s.schedule_call(0.001 * (i + 1), [] {});
  }
  s.run_until(1.0);
  EXPECT_EQ(fired, 2);  // after events 10 and 20
}

// The heartbeat never perturbs results: a period that can't elapse still
// installs the hook on the hot path, and every metric stays identical.
TEST(EngProfProgress, HeartbeatDoesNotPerturbMetrics) {
  const RunResult off = run_debit_credit(small_system());
  SystemConfig cfg = small_system();
  cfg.obs.progress_every_s = 3600.0;
  const RunResult on = run_debit_credit(cfg);
  EXPECT_EQ(on.commits, off.commits);
  EXPECT_DOUBLE_EQ(on.throughput, off.throughput);
  EXPECT_DOUBLE_EQ(on.resp_ms, off.resp_ms);
  EXPECT_DOUBLE_EQ(on.cpu_util, off.cpu_util);
}

// --- lp_cluster trace coverage --------------------------------------------

// The satellite fix: node LPs and the lock-engine LP now emit spans. The
// merged trace is populated, covers every component, and is identical (and
// checksum-inert) across engine kinds and worker counts.
TEST(LpClusterTrace, SpansCoverAllLpsAndStayDeterministic) {
  LpClusterConfig base = profiled_cluster();
  base.trace_capacity = 1 << 14;

  LpClusterConfig cfg = base;
  cfg.kind = EngineKind::Sequential;
  const LpClusterResult seq = run_lp_cluster(cfg);
  ASSERT_FALSE(seq.trace.empty());
  EXPECT_EQ(seq.trace_dropped, 0u);

  // Tracing never touches simulation state.
  LpClusterConfig untraced = profiled_cluster();
  EXPECT_EQ(seq.checksum, run_lp_cluster(untraced).checksum);

  std::uint64_t txns = 0, lock_waits = 0, gem = 0;
  bool node_span[5] = {};
  for (const obs::TraceEvent& e : seq.trace) {
    ASSERT_GE(e.node, 0);
    ASSERT_LE(e.node, 4);
    node_span[e.node] = true;
    if (e.name == obs::TraceName::kTxn) ++txns;
    if (e.name == obs::TraceName::kLockWait) ++lock_waits;
    if (e.name == obs::TraceName::kGemAccess) ++gem;
    EXPECT_GE(e.dur, 0.0);
  }
  for (int n = 0; n <= 4; ++n) EXPECT_TRUE(node_span[n]) << "lp " << n;
  EXPECT_EQ(txns, seq.commits);
  EXPECT_EQ(lock_waits, seq.remote_requests);
  EXPECT_EQ(gem, seq.remote_requests);  // one server span per round trip
  // Merged order is chronological.
  for (std::size_t i = 1; i < seq.trace.size(); ++i) {
    EXPECT_LE(seq.trace[i - 1].t, seq.trace[i].t);
  }

  // Identical merged trace at any worker count (the per-LP recorders plus
  // the deterministic merge are what make this safe under parallelism).
  for (const int workers : {1, 2, 4}) {
    cfg = base;
    cfg.kind = EngineKind::Parallel;
    cfg.workers = workers;
    const LpClusterResult par = run_lp_cluster(cfg);
    const std::string what = "workers " + std::to_string(workers);
    EXPECT_EQ(par.checksum, seq.checksum) << what;
    ASSERT_EQ(par.trace.size(), seq.trace.size()) << what;
    for (std::size_t i = 0; i < seq.trace.size(); ++i) {
      EXPECT_EQ(par.trace[i].t, seq.trace[i].t) << what;
      EXPECT_EQ(par.trace[i].name, seq.trace[i].name) << what;
      EXPECT_EQ(par.trace[i].node, seq.trace[i].node) << what;
      EXPECT_EQ(par.trace[i].id, seq.trace[i].id) << what;
      EXPECT_EQ(par.trace[i].dur, seq.trace[i].dur) << what;
    }
  }
}

TEST(LpClusterTrace, StragglerKnobLengthensNodeZeroOnly) {
  LpClusterConfig cfg = profiled_cluster();
  cfg.straggler_extra_requests = 0;
  const LpClusterResult even = run_lp_cluster(cfg);
  cfg.straggler_extra_requests = 10;
  const LpClusterResult skewed = run_lp_cluster(cfg);
  // Same commit target, strictly more work and a later makespan.
  EXPECT_EQ(even.commits, skewed.commits);
  EXPECT_GT(skewed.events, even.events);
  EXPECT_GT(skewed.makespan, even.makespan);
  EXPECT_NE(skewed.checksum, even.checksum);
}

}  // namespace
