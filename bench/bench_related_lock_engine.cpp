// Related-work reproduction (Section 5): the paper argues that the [Yu87]
// central lock engine — 100-500 us per lock operation, disk-based FORCE,
// broadcast invalidation for coherency — supports "much smaller transaction
// rates than with GEM locking" and that its performance is "largely
// determined by lock contention and an inefficient coherency control".
//
// This bench runs debit-credit/FORCE through all three coupling modes and
// sweeps the engine's lock service time.
#include <cstdio>
#include <functional>
#include <vector>

#include "cc/lock_engine_protocol.hpp"
#include "core/experiment.hpp"
#include "core/sweep.hpp"

int main(int argc, char** argv) {
  using namespace gemsd;
  const BenchOptions opt = parse_bench_args(argc, argv);

  struct Row {
    RunResult r;
    double engine_util = -1;  ///< < 0: not a lock-engine run
    double service_us = 0;
  };
  std::vector<SystemConfig> cfgs;
  std::vector<double> service_us;  // 0: baseline run
  for (int n : {2, 5, 10}) {
    if (n > opt.max_nodes) continue;
    // Baselines.
    for (Coupling c : {Coupling::GemLocking, Coupling::PrimaryCopy}) {
      SystemConfig cfg = make_debit_credit_config();
      cfg.nodes = n;
      cfg.coupling = c;
      cfg.update = UpdateStrategy::Force;
      cfg.routing = Routing::Random;
      cfg.buffer_pages = 1000;
      cfg.warmup = opt.warmup;
      cfg.measure = opt.measure;
      cfg.seed = opt.seed;
      cfgs.push_back(cfg);
      service_us.push_back(0.0);
    }
    for (double us : {100.0, 200.0, 500.0}) {
      SystemConfig cfg = make_debit_credit_config();
      cfg.nodes = n;
      cfg.coupling = Coupling::LockEngine;
      cfg.update = UpdateStrategy::Force;
      cfg.routing = Routing::Random;
      cfg.buffer_pages = 1000;
      cfg.lock_engine_service = us * 1e-6;
      cfg.warmup = opt.warmup;
      cfg.measure = opt.measure;
      cfg.seed = opt.seed;
      cfgs.push_back(cfg);
      service_us.push_back(us);
    }
  }
  apply_obs_options(cfgs, opt);
  std::vector<std::function<Row()>> tasks;
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    const SystemConfig& cfg = cfgs[i];
    const double us = service_us[i];
    tasks.push_back([cfg, us] {
      System sys(cfg, make_debit_credit_workload(cfg));
      Row row;
      row.r = sys.run();
      if (cfg.coupling == Coupling::LockEngine) {
        row.engine_util =
            static_cast<cc::LockEngineProtocol&>(sys.protocol())
                .engine_utilization();
        row.service_us = us;
      }
      return row;
    });
  }
  const std::vector<Row> rows = SweepRunner(opt.jobs).map(std::move(tasks));

  {
    std::vector<RunResult> rs;
    for (const Row& row : rows) rs.push_back(row.r);
    auto bruns = zip_runs(cfgs, rs);
    for (std::size_t i = 0; i < bruns.size(); ++i) {
      if (rows[i].engine_util >= 0) {
        bruns[i].extra = {{"engine_util", rows[i].engine_util},
                          {"service_us", rows[i].service_us}};
      }
    }
    write_bench_json("related_lock_engine",
                     "Related work: central lock engine [Yu87] vs GEM "
                     "locking (debit-credit, FORCE, random routing, "
                     "buffer 1000)",
                     opt, bruns, debit_credit_partition_names());
    write_trace_file(opt, bruns);
    std::printf("# %s\n", fingerprint_line("related_lock_engine",
                                           cfgs.front()).c_str());
  }

  std::printf("\n== Related work: central lock engine [Yu87] vs GEM locking "
              "(debit-credit, FORCE, random routing, buffer 1000) ==\n");
  std::printf("%-22s %3s | %9s %8s %9s %9s\n", "coupling", "N", "resp[ms]",
              "engine", "tps", "msg/tx");
  for (const Row& row : rows) {
    const RunResult& r = row.r;
    if (row.engine_util < 0) {
      std::printf("%-22s %3d | %9.2f %8s %9.1f %9.2f\n", to_string(r.coupling),
                  r.nodes, r.resp_ms, "-", r.throughput, r.messages_per_txn);
    } else {
      std::printf("ENGINE %3.0fus/op       %3d | %9.2f %7.1f%% %9.1f %9.2f\n",
                  row.service_us, r.nodes, r.resp_ms, row.engine_util * 100,
                  r.throughput, r.messages_per_txn);
    }
  }
  std::printf("\nExpected shape: the single engine server saturates as N "
              "grows (utilization -> 100%%, throughput flattens below the "
              "offered load, response times blow up), earliest for the "
              "500 us service time — while GEM locking's 2 us entries stay "
              "below 2%% utilization at 1000 TPS.\n");
  return 0;
}
