// Fig. 4.4 — Use of disk caches for the BRANCH/TELLER partition (FORCE,
// buffer 1000): plain disk vs volatile disk cache vs non-volatile disk cache
// vs GEM residence, for both routing strategies.
//
// Paper shape: a non-volatile disk cache achieves almost the same response
// times as the GEM allocation (all B/T pages fit in the shared cache; read
// misses are served from it and the commit force-write avoids the disk
// delay). A volatile cache only avoids read delays: it helps random routing
// (buffer invalidations are satisfied from the shared cache) but is useless
// for affinity routing where no B/T main-memory misses occur at buffer 1000.
#include <cstdio>
#include <vector>

#include "core/experiment.hpp"
#include "core/sweep.hpp"

int main(int argc, char** argv) {
  using namespace gemsd;
  const BenchOptions opt = parse_bench_args(argc, argv);

  std::vector<SystemConfig> cfgs;
  for (StorageKind bt :
       {StorageKind::Disk, StorageKind::DiskVolatileCache,
        StorageKind::DiskNvCache, StorageKind::Gem}) {
    for (Routing routing : {Routing::Affinity, Routing::Random}) {
      for (int n : {1, 2, 3, 5, 7, 10}) {
        if (n > opt.max_nodes) continue;
        SystemConfig cfg = make_debit_credit_config();
        cfg.nodes = n;
        cfg.coupling = Coupling::GemLocking;
        cfg.update = UpdateStrategy::Force;
        cfg.routing = routing;
        cfg.buffer_pages = 1000;
        cfg.partitions[DebitCreditIds::kBranchTeller].storage = bt;
        cfg.warmup = opt.warmup;
        cfg.measure = opt.measure;
        cfg.seed = opt.seed;
        cfgs.push_back(cfg);
      }
    }
  }
  apply_obs_options(cfgs, opt);
  const std::vector<RunResult> runs =
      SweepRunner(opt.jobs).run_debit_credit(cfgs);
  if (!opt.csv) {
    std::printf("\nB/T storage per block: disk, disk+vcache, disk+nvcache, "
                "GEM (affinity then random within each)\n");
  }
  finish_bench("fig_4_4",
               "Fig 4.4: disk caches for BRANCH/TELLER (FORCE, buffer 1000)",
               opt, cfgs, runs, debit_credit_partition_names());
  return 0;
}
