// Ablation: how much of the loose-coupling penalty is CPU path length of the
// communication protocol? The paper charges 5000 instructions per short
// send/receive (the general-purpose stacks of the early 90s) and notes that
// "message transfer times improved substantially, but the CPU overhead ...
// remained very high". Sweeping that constant shows where PCL would catch up
// with GEM locking.
#include <cstdio>
#include <vector>

#include "core/experiment.hpp"
#include "core/sweep.hpp"

int main(int argc, char** argv) {
  using namespace gemsd;
  const BenchOptions opt = parse_bench_args(argc, argv);

  const int n = std::min(10, opt.max_nodes);

  SystemConfig gem_cfg = make_debit_credit_config();
  gem_cfg.nodes = n;
  gem_cfg.coupling = Coupling::GemLocking;
  gem_cfg.routing = Routing::Random;
  gem_cfg.warmup = opt.warmup;
  gem_cfg.measure = opt.measure;

  // Submit the GEM baseline and the PCL sweep as one batch.
  const double instr_steps[] = {5000.0, 2500.0, 1000.0, 250.0};
  std::vector<SystemConfig> cfgs;
  cfgs.push_back(gem_cfg);
  for (double instr : instr_steps) {
    SystemConfig cfg = gem_cfg;
    cfg.coupling = Coupling::PrimaryCopy;
    cfg.comm.short_instr = instr;
    cfg.comm.long_instr = instr * 8.0 / 5.0;  // keep the paper's ratio
    cfgs.push_back(cfg);
  }
  apply_obs_options(cfgs, opt);
  const std::vector<RunResult> runs =
      SweepRunner(opt.jobs).run_debit_credit(cfgs);
  {
    const auto bruns = zip_runs(cfgs, runs);
    write_bench_json("ablation_msg_cost",
                     "Ablation: message CPU cost (PCL vs GEM, random "
                     "routing, NOFORCE, buffer 200)",
                     opt, bruns, debit_credit_partition_names());
    write_trace_file(opt, bruns);
  }

  std::printf("# %s\n",
              fingerprint_line("ablation_msg_cost", cfgs.front()).c_str());
  std::printf("\n== Ablation: message CPU cost (PCL vs GEM, random routing, "
              "NOFORCE, N=%d, buffer 200) ==\n", n);
  const RunResult& gem = runs[0];
  std::printf("GEM locking baseline: resp %.2f ms, tps80/node %.1f\n\n",
              gem.resp_ms, gem.tps_per_node_at_80);

  std::printf("%14s | %9s %8s %8s %9s\n", "instr/short", "resp[ms]", "cpu",
              "cpuMax", "tps80/nd");
  for (std::size_t i = 0; i < 4; ++i) {
    const RunResult& r = runs[i + 1];
    std::printf("%14.0f | %9.2f %7.1f%% %7.1f%% %9.1f\n", instr_steps[i],
                r.resp_ms, r.cpu_util * 100, r.cpu_util_max * 100,
                r.tps_per_node_at_80);
  }
  return 0;
}
