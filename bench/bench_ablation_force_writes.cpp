// Ablation: Section 4.4's closing remark — "Response times for FORCE could
// be further improved by using a non-volatile disk cache for the HISTORY and
// ACCOUNT disks to speed up the force-writes for these files." This bench
// verifies it, and additionally moves the log into GEM (Section 2 names
// GEM-resident log files as a usage form).
#include <cstdio>
#include <vector>

#include "core/experiment.hpp"
#include "core/sweep.hpp"

int main(int argc, char** argv) {
  using namespace gemsd;
  const BenchOptions opt = parse_bench_args(argc, argv);

  const int n = std::min(5, opt.max_nodes);

  struct Step {
    const char* label;
    bool bt_gem, acct_nv, hist_nv, log_gem;
  };
  const Step steps[] = {
      {"all on plain disks", false, false, false, false},
      {"+ B/T in GEM (Fig 4.3b)", true, false, false, false},
      {"+ NV cache on ACCOUNT+HISTORY (Sec 4.4)", true, true, true, false},
      {"+ log in GEM", true, true, true, true},
  };
  std::vector<SystemConfig> cfgs;
  for (const auto& s : steps) {
    SystemConfig cfg = make_debit_credit_config();
    cfg.nodes = n;
    cfg.coupling = Coupling::GemLocking;
    cfg.update = UpdateStrategy::Force;
    cfg.routing = Routing::Random;
    cfg.buffer_pages = 1000;
    cfg.warmup = opt.warmup;
    cfg.measure = opt.measure;
    cfg.seed = opt.seed;
    if (s.bt_gem) {
      cfg.partitions[DebitCreditIds::kBranchTeller].storage = StorageKind::Gem;
    }
    if (s.acct_nv) {
      auto& acc = cfg.partitions[DebitCreditIds::kAccount];
      acc.storage = StorageKind::DiskNvCache;
      acc.disk_cache_pages = 20000;  // write-absorbing working store
    }
    if (s.hist_nv) {
      auto& his = cfg.partitions[DebitCreditIds::kHistory];
      his.storage = StorageKind::DiskNvCache;
      his.disk_cache_pages = 5000;
    }
    if (s.log_gem) cfg.log_storage = StorageKind::Gem;
    cfgs.push_back(cfg);
  }
  apply_obs_options(cfgs, opt);
  const std::vector<RunResult> runs =
      SweepRunner(opt.jobs).run_debit_credit(cfgs);
  {
    auto bruns = zip_runs(cfgs, runs);
    for (std::size_t i = 0; i < bruns.size(); ++i) {
      bruns[i].extra = {{"step", static_cast<double>(i)}};
    }
    write_bench_json("ablation_force_writes",
                     "Ablation: removing FORCE's remaining write delays "
                     "(GEM locking, random routing, buffer 1000)",
                     opt, bruns, debit_credit_partition_names());
    write_trace_file(opt, bruns);
  }

  std::printf("# %s\n",
              fingerprint_line("ablation_force_writes", cfgs.front()).c_str());
  std::printf("\n== Ablation: removing FORCE's remaining write delays "
              "(GEM locking, random routing, buffer 1000, N=%d) ==\n", n);
  std::printf("%-44s %9s %8s\n", "configuration", "resp[ms]", "fW/tx");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    std::printf("%-44s %9.2f %8.2f\n", steps[i].label, runs[i].resp_ms,
                runs[i].force_writes_per_txn);
  }
  std::printf("\nExpected shape: each step strips one class of synchronous "
              "write delay; the final configuration approaches NOFORCE-class "
              "response times, the paper's conclusion that FORCE becomes "
              "viable when force-writes go to non-volatile semiconductor "
              "memory.\n");
  return 0;
}
