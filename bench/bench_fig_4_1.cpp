// Fig. 4.1 — Influence of workload allocation and update strategy for GEM
// locking (closely coupled), debit-credit, 100 TPS per node, buffer 200
// pages, all database and log files on plain disks.
//
// Paper shape: affinity-based routing keeps response times flat from 1 to 10
// nodes for both update strategies; random routing degrades with the node
// count (buffer invalidations on BRANCH/TELLER), more strongly for FORCE;
// FORCE is always slower than NOFORCE (force-write I/O at commit).
#include <vector>

#include "core/experiment.hpp"
#include "core/sweep.hpp"

int main(int argc, char** argv) {
  using namespace gemsd;
  const BenchOptions opt = parse_bench_args(argc, argv);

  std::vector<SystemConfig> cfgs;
  for (Routing routing : {Routing::Affinity, Routing::Random}) {
    for (UpdateStrategy upd : {UpdateStrategy::NoForce, UpdateStrategy::Force}) {
      for (int n : {1, 2, 3, 5, 7, 10}) {
        if (n > opt.max_nodes) continue;
        SystemConfig cfg = make_debit_credit_config();
        cfg.nodes = n;
        cfg.coupling = Coupling::GemLocking;
        cfg.update = upd;
        cfg.routing = routing;
        cfg.buffer_pages = 200;
        cfg.warmup = opt.warmup;
        cfg.measure = opt.measure;
        cfg.seed = opt.seed;
        cfgs.push_back(cfg);
      }
    }
  }
  apply_obs_options(cfgs, opt);
  const std::vector<RunResult> runs =
      SweepRunner(opt.jobs).run_debit_credit(cfgs);
  finish_bench("fig_4_1",
               "Fig 4.1: GEM locking - routing x update strategy (buffer 200)",
               opt, cfgs, runs, debit_credit_partition_names());
  return 0;
}
