// Availability experiment (beyond the paper's figures, quantifying its
// Sections 1-2 argument): crash one of four nodes mid-run and track the
// cluster's committed-transaction timeline through detection, recovery and
// rejoin — for close coupling (the non-volatile GLT survives; only the dead
// node's owned pages need REDO) vs loose coupling (the failed node's lock
// authority is gone; its whole partition freezes until reconstructed).
#include <cstdio>
#include <functional>
#include <vector>

#include "core/experiment.hpp"
#include "core/sweep.hpp"

int main(int argc, char** argv) {
  using namespace gemsd;
  const BenchOptions opt = parse_bench_args(argc, argv);

  const double kFailAt = 10.0;
  const double kEnd = 22.0;
  const double kBucket = 1.0;

  struct Timeline {
    RunResult r;
    std::vector<double> buckets;
    std::uint64_t lost = 0;
    double rec_time = 0;
  };
  std::vector<SystemConfig> cfgs;
  for (Coupling c : {Coupling::GemLocking, Coupling::PrimaryCopy}) {
    SystemConfig cfg = make_debit_credit_config();
    cfg.nodes = 4;
    cfg.coupling = c;
    cfg.update = UpdateStrategy::NoForce;
    cfg.routing = Routing::Affinity;
    cfg.seed = opt.seed;
    cfgs.push_back(cfg);
  }
  apply_obs_options(cfgs, opt);
  std::vector<std::function<Timeline()>> tasks;
  for (const SystemConfig& cfg : cfgs) {
    tasks.push_back([&cfg, kFailAt, kEnd, kBucket] {
      System sys(cfg, make_debit_credit_workload(cfg));
      sys.start_source();
      Timeline tl;
      std::uint64_t last = 0;
      bool failed = false;
      for (double t = kBucket; t <= kEnd + 1e-9; t += kBucket) {
        if (!failed && t > kFailAt) {
          sys.run_until(kFailAt);
          sys.fail_node(1);
          failed = true;
        }
        sys.run_until(t);
        const auto now = sys.metrics().commits.value();
        tl.buckets.push_back(static_cast<double>(now - last) / kBucket);
        last = now;
      }
      tl.lost = sys.metrics().lost_txns.value();
      tl.rec_time = sys.metrics().recovery_time.count()
                        ? sys.metrics().recovery_time.mean()
                        : 0.0;
      tl.r = sys.collect();
      return tl;
    });
  }
  const std::vector<Timeline> timelines =
      SweepRunner(opt.jobs).map(std::move(tasks));

  {
    std::vector<RunResult> rs;
    for (const Timeline& tl : timelines) rs.push_back(tl.r);
    auto bruns = zip_runs(cfgs, rs);
    for (std::size_t i = 0; i < bruns.size(); ++i) {
      auto& extra = bruns[i].extra;
      extra.push_back({"lost_txns", static_cast<double>(timelines[i].lost)});
      extra.push_back({"recovery_s", timelines[i].rec_time});
      for (std::size_t b = 0; b < timelines[i].buckets.size(); ++b) {
        extra.push_back({"commits_per_s_t" + std::to_string(b + 1),
                         timelines[i].buckets[b]});
      }
    }
    write_bench_json("availability",
                     "Availability: node 1 of 4 crashes at t=10s "
                     "(debit-credit, NOFORCE, affinity, 100 TPS/node)",
                     opt, bruns, debit_credit_partition_names());
    write_trace_file(opt, bruns);
    std::printf("# %s\n",
                fingerprint_line("availability", cfgs.front()).c_str());
  }

  std::printf("\n== Availability: node 1 of 4 crashes at t=%.0fs "
              "(debit-credit, NOFORCE, affinity, 100 TPS/node) ==\n", kFailAt);
  std::printf("GLA rebuild (PCL) 2 s, node restart 5 s, detection 100 ms.\n\n");
  std::printf("%5s", "t[s]");
  for (Coupling c : {Coupling::GemLocking, Coupling::PrimaryCopy}) {
    std::printf(" %12s", to_string(c));
  }
  std::printf("   (committed txns per second bucket)\n");

  for (std::size_t b = 0; b < timelines[0].buckets.size(); ++b) {
    std::printf("%5.0f", (b + 1) * kBucket);
    for (const auto& tl : timelines) std::printf(" %12.0f", tl.buckets[b]);
    std::printf("%s\n",
                (b + 1) * kBucket == kFailAt + 1 ? "   <- crash window" : "");
  }
  std::printf("\nlost in-flight txns: GEM %llu, PCL %llu; "
              "recovery (detect+redo[+rebuild]): GEM %.2fs, PCL %.2fs\n",
              static_cast<unsigned long long>(timelines[0].lost),
              static_cast<unsigned long long>(timelines[1].lost),
              timelines[0].rec_time, timelines[1].rec_time);
  std::printf("\nExpected shape: both dip to ~3/4 throughput while the node "
              "is down; PCL additionally stalls every transaction touching "
              "the dead node's lock partition until the authority is "
              "rebuilt (deeper, longer dip), while GEM locking's surviving "
              "lock table lets the other nodes run on undisturbed.\n");
  return 0;
}
