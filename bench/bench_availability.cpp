// Availability experiment (beyond the paper's figures, quantifying its
// Sections 1-2 argument): crash one of four nodes mid-run and track the
// cluster's committed-transaction timeline through detection, recovery and
// rejoin — for close coupling (the non-volatile GLT survives; only the dead
// node's owned pages need REDO) vs loose coupling (the failed node's lock
// authority is gone; its whole partition freezes until reconstructed).
#include <cstdio>
#include <vector>

#include "core/experiment.hpp"

int main(int argc, char** argv) {
  using namespace gemsd;
  const BenchOptions opt = parse_bench_args(argc, argv);

  const double kFailAt = 10.0;
  const double kEnd = 22.0;
  const double kBucket = 1.0;

  std::printf("\n== Availability: node 1 of 4 crashes at t=%.0fs "
              "(debit-credit, NOFORCE, affinity, 100 TPS/node) ==\n", kFailAt);
  std::printf("GLA rebuild (PCL) 2 s, node restart 5 s, detection 100 ms.\n\n");
  std::printf("%5s", "t[s]");
  for (Coupling c : {Coupling::GemLocking, Coupling::PrimaryCopy}) {
    std::printf(" %12s", to_string(c));
  }
  std::printf("   (committed txns per second bucket)\n");

  std::vector<std::vector<double>> series;
  std::vector<std::uint64_t> lost;
  std::vector<double> rec_time;
  for (Coupling c : {Coupling::GemLocking, Coupling::PrimaryCopy}) {
    SystemConfig cfg = make_debit_credit_config();
    cfg.nodes = 4;
    cfg.coupling = c;
    cfg.update = UpdateStrategy::NoForce;
    cfg.routing = Routing::Affinity;
    cfg.seed = opt.seed;
    System sys(cfg, make_debit_credit_workload(cfg));
    sys.start_source();
    std::vector<double> buckets;
    std::uint64_t last = 0;
    bool failed = false;
    for (double t = kBucket; t <= kEnd + 1e-9; t += kBucket) {
      if (!failed && t > kFailAt) {
        sys.run_until(kFailAt);
        sys.fail_node(1);
        failed = true;
      }
      sys.run_until(t);
      const auto now = sys.metrics().commits.value();
      buckets.push_back(static_cast<double>(now - last) / kBucket);
      last = now;
    }
    series.push_back(buckets);
    lost.push_back(sys.metrics().lost_txns.value());
    rec_time.push_back(sys.metrics().recovery_time.count()
                           ? sys.metrics().recovery_time.mean()
                           : 0.0);
  }

  for (std::size_t b = 0; b < series[0].size(); ++b) {
    std::printf("%5.0f", (b + 1) * kBucket);
    for (const auto& s : series) std::printf(" %12.0f", s[b]);
    std::printf("%s\n",
                (b + 1) * kBucket == kFailAt + 1 ? "   <- crash window" : "");
  }
  std::printf("\nlost in-flight txns: GEM %llu, PCL %llu; "
              "recovery (detect+redo[+rebuild]): GEM %.2fs, PCL %.2fs\n",
              static_cast<unsigned long long>(lost[0]),
              static_cast<unsigned long long>(lost[1]), rec_time[0],
              rec_time[1]);
  std::printf("\nExpected shape: both dip to ~3/4 throughput while the node "
              "is down; PCL additionally stalls every transaction touching "
              "the dead node's lock partition until the authority is "
              "rebuilt (deeper, longer dip), while GEM locking's surviving "
              "lock table lets the other nodes run on undisturbed.\n");
  return 0;
}
