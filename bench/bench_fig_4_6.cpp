// Fig. 4.6 — Throughput per node at 80 % CPU utilization, PCL vs GEM
// locking, random vs affinity routing, buffer 1000 pages.
//
// Paper shape: with affinity routing both protocols sustain a nearly linear
// throughput increase (~full CPU budget). With random routing the
// message-based PCL protocol tops out ~15 % below close coupling; for GEM
// locking NOFORCE loses some capacity to page request/transfer CPU overhead
// (transfers cannot be combined with other messages as under PCL), so FORCE
// sustains slightly higher rates than NOFORCE there.
#include <cstdio>
#include <vector>

#include "core/experiment.hpp"
#include "core/sweep.hpp"

int main(int argc, char** argv) {
  using namespace gemsd;
  const BenchOptions opt = parse_bench_args(argc, argv);

  std::vector<SystemConfig> cfgs;
  for (Coupling coupling : {Coupling::GemLocking, Coupling::PrimaryCopy}) {
    for (UpdateStrategy upd : {UpdateStrategy::NoForce, UpdateStrategy::Force}) {
      for (Routing routing : {Routing::Affinity, Routing::Random}) {
        for (int n : {1, 2, 5, 10}) {
          if (n > opt.max_nodes) continue;
          SystemConfig cfg = make_debit_credit_config();
          cfg.nodes = n;
          cfg.coupling = coupling;
          cfg.update = upd;
          cfg.routing = routing;
          cfg.buffer_pages = 1000;
          cfg.warmup = opt.warmup;
          cfg.measure = opt.measure;
          cfg.seed = opt.seed;
          cfgs.push_back(cfg);
        }
      }
    }
  }
  apply_obs_options(cfgs, opt);
  const std::vector<RunResult> runs =
      SweepRunner(opt.jobs).run_debit_credit(cfgs);
  {
    const auto bruns = zip_runs(cfgs, runs);
    write_bench_json("fig_4_6",
                     "Fig 4.6: transaction rate per node at 80% CPU "
                     "utilization (buffer 1000)",
                     opt, bruns, debit_credit_partition_names());
    write_trace_file(opt, bruns);
  }

  std::printf("# %s\n", fingerprint_line("fig_4_6", cfgs.front()).c_str());
  std::printf("\n== Fig 4.6: transaction rate per node at 80%% CPU "
              "utilization (buffer 1000) ==\n");
  std::printf("%-12s %-9s %-9s | %5s %7s %7s %9s\n", "coupling", "update",
              "routing", "N", "cpuMax", "msg/tx", "TPS@80/node");
  for (const RunResult& r : runs) {
    std::printf("%-12s %-9s %-9s | %5d %6.1f%% %7.2f %9.1f\n",
                to_string(r.coupling), to_string(r.update), to_string(r.routing),
                r.nodes, r.cpu_util_max * 100, r.messages_per_txn,
                r.tps_per_node_at_80);
  }
  return 0;
}
