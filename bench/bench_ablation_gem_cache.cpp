// Ablation: GEM as a global page cache (the third GEM usage form of
// Section 2, and the Related-Work comparison with SIM [DIRY89, DDY91] whose
// *only* usage form was such an intermediate page cache). FORCE + random
// routing, hot BRANCH/TELLER partition allocated four ways:
// plain disks, non-volatile disk cache, GEM page cache, fully GEM-resident.
#include <cstdio>
#include <vector>

#include "core/experiment.hpp"
#include "core/sweep.hpp"

int main(int argc, char** argv) {
  using namespace gemsd;
  const BenchOptions opt = parse_bench_args(argc, argv);

  std::vector<SystemConfig> cfgs;
  std::vector<StorageKind> kinds;
  for (int n : {2, 5, 10}) {
    if (n > opt.max_nodes) continue;
    for (StorageKind k : {StorageKind::Disk, StorageKind::DiskNvCache,
                          StorageKind::DiskGemCache, StorageKind::Gem}) {
      SystemConfig cfg = make_debit_credit_config();
      cfg.nodes = n;
      cfg.coupling = Coupling::GemLocking;
      cfg.update = UpdateStrategy::Force;
      cfg.routing = Routing::Random;
      cfg.buffer_pages = 1000;
      auto& bt = cfg.partitions[DebitCreditIds::kBranchTeller];
      bt.storage = k;
      bt.gem_cache_pages = 2000;  // holds the whole B/T partition
      cfg.warmup = opt.warmup;
      cfg.measure = opt.measure;
      cfg.seed = opt.seed;
      cfgs.push_back(cfg);
      kinds.push_back(k);
    }
  }
  apply_obs_options(cfgs, opt);
  const std::vector<RunResult> runs =
      SweepRunner(opt.jobs).run_debit_credit(cfgs);
  {
    const auto bruns = zip_runs(cfgs, runs);
    write_bench_json("ablation_gem_cache",
                     "Ablation: GEM page cache vs alternatives for B/T "
                     "(FORCE, random routing, buffer 1000)",
                     opt, bruns, debit_credit_partition_names());
    write_trace_file(opt, bruns);
  }

  std::printf("# %s\n",
              fingerprint_line("ablation_gem_cache", cfgs.front()).c_str());
  std::printf("\n== Ablation: GEM page cache vs alternatives for B/T "
              "(FORCE, random routing, buffer 1000) ==\n");
  std::printf("%-18s %3s | %9s %8s %8s %8s\n", "B/T allocation", "N",
              "resp[ms]", "gemUtil", "hit:B/T", "fW/tx");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    std::printf("%-18s %3d | %9.2f %7.2f%% %7.1f%% %8.2f\n",
                to_string(kinds[i]), r.nodes, r.resp_ms, r.gem_util * 100,
                r.hit_ratio[0] * 100, r.force_writes_per_txn);
  }
  std::printf("\nExpected shape: the GEM page cache matches the non-volatile "
              "disk cache and the GEM residence (all three absorb the "
              "force-write and serve misses from the global store) — i.e. "
              "the [DDY91] response-time gains are an I/O effect available "
              "to any non-volatile intermediate memory, exactly the paper's "
              "related-work argument.\n");
  return 0;
}
