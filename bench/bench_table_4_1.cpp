// Table 4.1 — parameter settings for the debit-credit experiments, as
// actually instantiated by the simulator (paper table vs configured values).
#include <cstdio>

#include "core/config.hpp"
#include "core/experiment.hpp"

int main(int argc, char** argv) {
  using namespace gemsd;
  // No simulations to sweep here, but accept the shared bench flags
  // (--jobs etc.) so every harness has a uniform command line.
  const BenchOptions opt = parse_bench_args(argc, argv);
  const SystemConfig c = make_debit_credit_config();

  // Emit the instantiated parameter set as JSON (no runs) so the table is
  // machine-readable alongside the other bench outputs.
  write_bench_json("table_4_1",
                   "Table 4.1: parameter settings (debit-credit)", opt, {},
                   debit_credit_partition_names());
  std::printf("# %s\n", fingerprint_line("table_4_1", c).c_str());

  std::printf("== Table 4.1: parameter settings (debit-credit) ==\n");
  std::printf("%-28s %s\n", "number of nodes N", "1 - 10 (per-bench sweep)");
  std::printf("%-28s %.0f TPS per node\n", "arrival rate",
              c.arrival_rate_per_node);
  std::printf("%-28s\n", "DB size (per 100 TPS):");
  for (const auto& p : c.partitions) {
    if (p.pages_per_unit > 0) {
      std::printf("  %-26s %lld pages, blocking factor %d%s\n", p.name.c_str(),
                  static_cast<long long>(p.pages_per_unit), p.blocking_factor,
                  p.name == "BRANCH/TELLER" ? " (clustered)" : "");
    } else {
      std::printf("  %-26s sequential file, blocking factor %d\n",
                  p.name.c_str(), p.blocking_factor);
    }
  }
  std::printf("%-28s %.0f instructions per transaction\n", "path length",
              c.path.bot_instr + 4 * c.path.per_ref_instr + c.path.eot_instr);
  std::printf("%-28s BOT %.0f + 4 x %.0f per record + EOT %.0f\n", "",
              c.path.bot_instr, c.path.per_ref_instr, c.path.eot_instr);
  std::printf("%-28s page locks for BRANCH/TELLER, ACCOUNT; none for HISTORY\n",
              "lock mode");
  std::printf("%-28s %d processors of %.0f MIPS each\n", "CPU capacity",
              c.cpu.processors, c.cpu.mips);
  std::printf("%-28s %d pages per node (1000 in large-buffer runs)\n",
              "DB buffer size", c.buffer_pages);
  std::printf("%-28s %d server, %.0f us/page, %.0f us/entry\n",
              "GEM parameters", c.gem.servers, c.gem.page_access * 1e6,
              c.gem.entry_access * 1e6);
  std::printf("%-28s %.0f MB/s; %.0f instr per short, %.0f per long send/recv\n",
              "communication", c.comm.bandwidth / 1e6, c.comm.short_instr,
              c.comm.long_instr);
  std::printf("%-28s %.0f instructions per page (GEM: %.0f)\n", "I/O overhead",
              c.disk.io_instr, c.gem.io_instr);
  std::printf("%-28s %.0f ms DB disks; %.0f ms log disks\n",
              "avg disk access time", c.disk.db_disk * 1e3,
              c.disk.log_disk * 1e3);
  std::printf("%-28s controller %.0f ms; transfer %.1f ms/page\n",
              "other I/O delays", c.disk.controller * 1e3,
              c.disk.transfer * 1e3);
  std::printf("%-28s %d per node\n", "multiprogramming level", c.mpl);
  return 0;
}
