// Fig. 4.2 — Influence of buffer size for random routing (GEM locking).
// Buffer 200 vs 1000 pages per node, FORCE and NOFORCE.
//
// Paper shape: the larger buffer gives an optimal BRANCH/TELLER hit ratio in
// the central case but loses effectiveness with more nodes (more replicated
// caching -> more invalidations). FORCE benefits much less from the larger
// buffer than NOFORCE, because with NOFORCE almost all B/T misses are
// satisfied by fast page requests while FORCE pays a disk read each time.
#include <vector>

#include "core/experiment.hpp"
#include "core/sweep.hpp"

int main(int argc, char** argv) {
  using namespace gemsd;
  const BenchOptions opt = parse_bench_args(argc, argv);

  std::vector<SystemConfig> cfgs;
  for (UpdateStrategy upd : {UpdateStrategy::NoForce, UpdateStrategy::Force}) {
    for (int buf : {200, 1000}) {
      for (int n : {1, 2, 3, 5, 7, 10}) {
        if (n > opt.max_nodes) continue;
        SystemConfig cfg = make_debit_credit_config();
        cfg.nodes = n;
        cfg.coupling = Coupling::GemLocking;
        cfg.update = upd;
        cfg.routing = Routing::Random;
        cfg.buffer_pages = buf;
        cfg.warmup = opt.warmup;
        cfg.measure = opt.measure;
        cfg.seed = opt.seed;
        cfgs.push_back(cfg);
      }
    }
  }
  apply_obs_options(cfgs, opt);
  const std::vector<RunResult> runs =
      SweepRunner(opt.jobs).run_debit_credit(cfgs);
  finish_bench("fig_4_2",
               "Fig 4.2: influence of buffer size (random routing, GEM "
               "locking)",
               opt, cfgs, runs, debit_credit_partition_names());
  return 0;
}
