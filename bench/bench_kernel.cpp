// Microbenchmarks for the discrete-event kernel: raw event throughput,
// coroutine process spawn/await cost, resource contention handling, and the
// fast-path split between handle-resume events (no allocation) and callback
// events (side-slab std::function slots).
#include <benchmark/benchmark.h>

#include "sim/resource.hpp"
#include "sim/scheduler.hpp"
#include "sim/task.hpp"

namespace {

using namespace gemsd::sim;

void BM_ScheduleCallbacks(benchmark::State& state) {
  for (auto _ : state) {
    Scheduler s;
    long hits = 0;
    for (int i = 0; i < 10000; ++i) {
      s.schedule_call(i * 1e-6, [&hits] { ++hits; });
    }
    s.run_all();
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_ScheduleCallbacks);

Task<void> hopper(Scheduler& s, int hops) {
  for (int i = 0; i < hops; ++i) co_await s.delay(1e-6);
}

void BM_ProcessDelayHops(benchmark::State& state) {
  for (auto _ : state) {
    Scheduler s;
    for (int p = 0; p < 100; ++p) s.spawn(hopper(s, 100));
    s.run_all();
  }
  state.SetItemsProcessed(state.iterations() * 100 * 100);
}
BENCHMARK(BM_ProcessDelayHops);

Task<void> contender(Scheduler& s, Resource& r) {
  for (int i = 0; i < 20; ++i) co_await r.use(1e-5);
  (void)s;
}

void BM_ResourceContention(benchmark::State& state) {
  for (auto _ : state) {
    Scheduler s;
    Resource r(s, 4);
    for (int p = 0; p < 200; ++p) s.spawn(contender(s, r));
    s.run_all();
  }
  state.SetItemsProcessed(state.iterations() * 200 * 20);
}
BENCHMARK(BM_ResourceContention);

// Mixed workload: the realistic event stream of a full simulation —
// coroutine resumes (page waits, CPU grants) interleaved with timer-style
// callbacks (arrival generators). One in every `ratio` events is a callback;
// the rest ride the allocation-free handle lane.
void BM_MixedHandleCallback(benchmark::State& state) {
  const int ratio = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Scheduler s;
    long hits = 0;
    const int procs = 50;
    for (int p = 0; p < procs; ++p) s.spawn(hopper(s, 100));
    for (int i = 0; i < procs * 100 / ratio; ++i) {
      s.schedule_call(i * 1e-6, [&hits] { ++hits; });
    }
    s.run_all();
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() *
                          (50 * 100 + 50 * 100 / state.range(0)));
}
BENCHMARK(BM_MixedHandleCallback)->Arg(2)->Arg(10)->Arg(100);

// Queue-depth sweep: schedule `depth` pending events before draining so the
// heap's sift cost (log depth) and memory traffic dominate. The flat 24-byte
// entries keep deep queues cache-resident where Ev{handle, std::function}
// (56+ bytes, heap-backed) thrashed.
void BM_QueueDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Scheduler s;
    for (int p = 0; p < depth; ++p) s.spawn(hopper(s, 10));
    s.run_all();
  }
  state.SetItemsProcessed(state.iterations() * depth * 10);
}
BENCHMARK(BM_QueueDepth)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
