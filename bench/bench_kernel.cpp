// Microbenchmarks for the discrete-event kernel: raw event throughput,
// coroutine process spawn/await cost, resource contention handling.
#include <benchmark/benchmark.h>

#include "sim/resource.hpp"
#include "sim/scheduler.hpp"
#include "sim/task.hpp"

namespace {

using namespace gemsd::sim;

void BM_ScheduleCallbacks(benchmark::State& state) {
  for (auto _ : state) {
    Scheduler s;
    long hits = 0;
    for (int i = 0; i < 10000; ++i) {
      s.schedule_call(i * 1e-6, [&hits] { ++hits; });
    }
    s.run_all();
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_ScheduleCallbacks);

Task<void> hopper(Scheduler& s, int hops) {
  for (int i = 0; i < hops; ++i) co_await s.delay(1e-6);
}

void BM_ProcessDelayHops(benchmark::State& state) {
  for (auto _ : state) {
    Scheduler s;
    for (int p = 0; p < 100; ++p) s.spawn(hopper(s, 100));
    s.run_all();
  }
  state.SetItemsProcessed(state.iterations() * 100 * 100);
}
BENCHMARK(BM_ProcessDelayHops);

Task<void> contender(Scheduler& s, Resource& r) {
  for (int i = 0; i < 20; ++i) co_await r.use(1e-5);
  (void)s;
}

void BM_ResourceContention(benchmark::State& state) {
  for (auto _ : state) {
    Scheduler s;
    Resource r(s, 4);
    for (int p = 0; p < 200; ++p) s.spawn(contender(s, r));
    s.run_all();
  }
  state.SetItemsProcessed(state.iterations() * 200 * 20);
}
BENCHMARK(BM_ResourceContention);

}  // namespace

BENCHMARK_MAIN();
