// Microbenchmarks for the discrete-event kernel: raw event throughput,
// coroutine process spawn/await cost, resource contention handling, and the
// fast-path split between handle-resume events (no allocation) and callback
// events (side-slab std::function slots).
//
// Besides the google-benchmark console table this emits the same
// "gemsd.results.v1" document as the figure benches (default
// results/BENCH_kernel.json, see --metrics-json/--no-json): one run per
// micro-benchmark, named after it, with the wall-clock numbers in `extra`.
// gemsd_analyze --compare matches kernel runs by name and reports their
// deltas, but never gates on them — wall-clock time is machine-dependent,
// unlike the simulated metrics.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "sim/lp_cluster.hpp"
#include "sim/resource.hpp"
#include "sim/scheduler.hpp"
#include "sim/task.hpp"

namespace {

using namespace gemsd::sim;

void BM_ScheduleCallbacks(benchmark::State& state) {
  for (auto _ : state) {
    Scheduler s;
    long hits = 0;
    for (int i = 0; i < 10000; ++i) {
      s.schedule_call(i * 1e-6, [&hits] { ++hits; });
    }
    s.run_all();
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_ScheduleCallbacks);

Task<void> hopper(Scheduler& s, int hops) {
  for (int i = 0; i < hops; ++i) co_await s.delay(1e-6);
}

void BM_ProcessDelayHops(benchmark::State& state) {
  for (auto _ : state) {
    Scheduler s;
    for (int p = 0; p < 100; ++p) s.spawn(hopper(s, 100));
    s.run_all();
  }
  state.SetItemsProcessed(state.iterations() * 100 * 100);
}
BENCHMARK(BM_ProcessDelayHops);

Task<void> contender(Scheduler& s, Resource& r) {
  for (int i = 0; i < 20; ++i) co_await r.use(1e-5);
  (void)s;
}

void BM_ResourceContention(benchmark::State& state) {
  for (auto _ : state) {
    Scheduler s;
    Resource r(s, 4);
    for (int p = 0; p < 200; ++p) s.spawn(contender(s, r));
    s.run_all();
  }
  state.SetItemsProcessed(state.iterations() * 200 * 20);
}
BENCHMARK(BM_ResourceContention);

// Mixed workload: the realistic event stream of a full simulation —
// coroutine resumes (page waits, CPU grants) interleaved with timer-style
// callbacks (arrival generators). One in every `ratio` events is a callback;
// the rest ride the allocation-free handle lane.
void BM_MixedHandleCallback(benchmark::State& state) {
  const int ratio = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Scheduler s;
    long hits = 0;
    const int procs = 50;
    for (int p = 0; p < procs; ++p) s.spawn(hopper(s, 100));
    for (int i = 0; i < procs * 100 / ratio; ++i) {
      s.schedule_call(i * 1e-6, [&hits] { ++hits; });
    }
    s.run_all();
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() *
                          (50 * 100 + 50 * 100 / state.range(0)));
}
BENCHMARK(BM_MixedHandleCallback)->Arg(2)->Arg(10)->Arg(100);

// Queue-depth sweep: schedule `depth` pending events before draining so the
// heap's sift cost (log depth) and memory traffic dominate. The flat 24-byte
// entries keep deep queues cache-resident where Ev{handle, std::function}
// (56+ bytes, heap-backed) thrashed.
void BM_QueueDepth(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Scheduler s;
    for (int p = 0; p < depth; ++p) s.spawn(hopper(s, 10));
    s.run_all();
  }
  state.SetItemsProcessed(state.iterations() * depth * 10);
}
BENCHMARK(BM_QueueDepth)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000);

// LP-cluster scenario (sim/lp_cluster.hpp): N node LPs against a shared
// lock-engine LP, per-node buffer working sets behind every local request.
// The three benches run the *identical* model — same event counts, same
// checksum — on the three kernels, so items_per_second ratios are direct
// event-throughput speedups:
//   BM_ClusterFlat       one global Scheduler (the pre-engine architecture)
//   BM_ClusterEngineSeq  safe-window engine, Sequential kind
//   BM_ParallelEngine    safe-window engine, Parallel kind, 4 workers
// The engine's per-LP decomposition wins twice over the flat queue even on
// one core: each LP's event heap stays shallow (mpl vs nodes*mpl entries),
// and a window drains one LP at a time, keeping a single node's working set
// cache-resident where the flat queue interleaves all nodes event-by-event.
// Worker threads add wall-clock parallelism on top on multi-core hosts.
LpClusterConfig cluster_config(int nodes) {
  LpClusterConfig c;
  c.nodes = nodes;
  c.mpl = 256;
  c.txns_per_node = 1024;
  c.requests_per_txn = 8;
  c.remote_fraction = 0.02;
  c.msg_latency = msec(1);
  c.server_ports = 16;
  c.working_set_kb = 384;
  c.chase_len = 16;
  return c;
}

void BM_ClusterFlat(benchmark::State& state) {
  const LpClusterConfig cfg = cluster_config(static_cast<int>(state.range(0)));
  std::uint64_t events = 0;
  for (auto _ : state) {
    const LpClusterResult r = run_lp_cluster_single_queue(cfg);
    events = r.events;
    benchmark::DoNotOptimize(r.checksum);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(events));
}
BENCHMARK(BM_ClusterFlat)->ArgName("nodes")->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_ClusterEngineSeq(benchmark::State& state) {
  LpClusterConfig cfg = cluster_config(static_cast<int>(state.range(0)));
  cfg.kind = EngineKind::Sequential;
  std::uint64_t events = 0;
  for (auto _ : state) {
    const LpClusterResult r = run_lp_cluster(cfg);
    events = r.events;
    benchmark::DoNotOptimize(r.checksum);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(events));
}
BENCHMARK(BM_ClusterEngineSeq)->ArgName("nodes")->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_ParallelEngine(benchmark::State& state) {
  LpClusterConfig cfg = cluster_config(static_cast<int>(state.range(0)));
  cfg.kind = EngineKind::Parallel;
  cfg.workers = 4;
  std::uint64_t events = 0;
  for (auto _ : state) {
    const LpClusterResult r = run_lp_cluster(cfg);
    events = r.events;
    benchmark::DoNotOptimize(r.checksum);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(events));
}
BENCHMARK(BM_ParallelEngine)->ArgName("nodes")->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// Sharded-GLT throughput: the full System model on a GLT-bound debit-credit
// configuration (GEM entry ops at 100 us dominate), swept over gem_shards
// {1,2,4,8}. items_per_second counts committed transactions per wall-clock
// second; the interesting readout is how commits/s recovers as the single
// lock-server queue is split across shards — the simulated-throughput shape
// is asserted in sharded_glt_test.cpp, this bench tracks the wall-clock cost
// of running the sharded routing layer.
void BM_ShardedGlt(benchmark::State& state) {
  gemsd::SystemConfig cfg = gemsd::make_debit_credit_config();
  cfg.nodes = 10;
  cfg.coupling = gemsd::Coupling::GemLocking;
  cfg.update = gemsd::UpdateStrategy::NoForce;
  cfg.routing = gemsd::Routing::Random;
  cfg.buffer_pages = 1000;
  cfg.gem.entry_access = 100e-6;
  cfg.gem.shards = static_cast<int>(state.range(0));
  cfg.warmup = 0.5;
  cfg.measure = 2.0;
  std::uint64_t commits = 0;
  for (auto _ : state) {
    const gemsd::RunResult r = gemsd::run_debit_credit(cfg);
    commits = r.commits;
    benchmark::DoNotOptimize(r.resp_ms);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(commits));
}
BENCHMARK(BM_ShardedGlt)
    ->ArgName("shards")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

// Console output as usual, plus a copy of every per-iteration run for the
// results document. Counters are already rate-adjusted when they reach the
// reporter, so items_per_second can be read off directly.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  struct Captured {
    std::string name;
    double items_per_second = 0.0;
    double real_time_ns = 0.0;  ///< wall time per iteration
    double cpu_time_ns = 0.0;   ///< CPU time per iteration
    double iterations = 0.0;
  };
  std::vector<Captured> captured;

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& r : reports) {
      if (r.run_type != Run::RT_Iteration || r.error_occurred) continue;
      Captured c;
      c.name = r.benchmark_name();
      const auto it = r.counters.find("items_per_second");
      if (it != r.counters.end()) c.items_per_second = it->second.value;
      c.real_time_ns = r.GetAdjustedRealTime();
      c.cpu_time_ns = r.GetAdjustedCPUTime();
      c.iterations = static_cast<double>(r.iterations);
      captured.push_back(std::move(c));
    }
    ConsoleReporter::ReportRuns(reports);
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace gemsd;

  // Split the command line: google-benchmark owns the --benchmark_* flags
  // (it aborts on unknown ones), parse_bench_args owns the rest (and exits
  // with usage on anything it doesn't know).
  std::vector<char*> bargv{argv[0]};
  std::vector<char*> gargv{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_", 12) == 0) {
      bargv.push_back(argv[i]);
    } else {
      gargv.push_back(argv[i]);
    }
  }
  int gargc = static_cast<int>(gargv.size());
  const BenchOptions opt = parse_bench_args(gargc, gargv.data());

  int bargc = static_cast<int>(bargv.size());
  benchmark::Initialize(&bargc, bargv.data());

  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  // The kernel benches run no simulation: config is the default SystemConfig
  // (one shared config hash), the RunResult stays zero, and the measured
  // numbers ride in `extra` keyed by the benchmark name.
  std::vector<BenchRun> runs(reporter.captured.size());
  for (std::size_t i = 0; i < reporter.captured.size(); ++i) {
    const auto& c = reporter.captured[i];
    runs[i].name = c.name;
    runs[i].extra = {{"items_per_second", c.items_per_second},
                     {"real_time_ns", c.real_time_ns},
                     {"cpu_time_ns", c.cpu_time_ns},
                     {"iterations", c.iterations}};
  }
  const std::string path = write_bench_json(
      "kernel", "Discrete-event kernel microbenchmarks (wall clock)", opt,
      runs, {});
  if (!path.empty()) std::printf("results: %s\n", path.c_str());
  return 0;
}
