// Ablation: the PCL read optimization (Section 4.6). The paper reports the
// local-lock share for the trace workload with and without it: without,
// 63% -> 35% (affinity, 2 -> 8 nodes) and 50% -> 12.5% (random); with read
// authorizations, 78% -> 65% and 65% -> 33%. This bench regenerates that
// comparison on the synthetic trace.
#include <cstdio>
#include <vector>

#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "workload/trace_generator.hpp"

int main(int argc, char** argv) {
  using namespace gemsd;
  const BenchOptions opt = parse_bench_args(argc, argv);

  sim::Rng trng(7);
  const workload::Trace trace = workload::generate_synthetic_trace({}, trng);

  std::vector<SystemConfig> cfgs;
  std::vector<bool> opts_read;
  for (bool read_opt : {false, true}) {
    for (Routing ro : {Routing::Affinity, Routing::Random}) {
      for (int n : {2, 4, 8}) {
        if (n > opt.max_nodes) continue;
        SystemConfig cfg = make_trace_config(trace);
        cfg.nodes = n;
        cfg.coupling = Coupling::PrimaryCopy;
        cfg.routing = ro;
        cfg.pcl_read_optimization = read_opt;
        cfg.warmup = opt.warmup;
        cfg.measure = opt.measure;
        cfg.seed = opt.seed;
        cfgs.push_back(cfg);
        opts_read.push_back(read_opt);
      }
    }
  }
  apply_obs_options(cfgs, opt);
  const std::vector<RunResult> runs =
      SweepRunner(opt.jobs).run_trace(cfgs, trace);
  {
    auto bruns = zip_runs(cfgs, runs);
    for (std::size_t i = 0; i < bruns.size(); ++i) {
      bruns[i].extra = {{"read_opt", opts_read[i] ? 1.0 : 0.0}};
    }
    std::vector<std::string> names;
    for (int f = 0; f < trace.num_files; ++f) {
      names.push_back("F" + std::to_string(f));
    }
    write_bench_json("ablation_read_opt",
                     "Ablation: PCL read optimization (trace workload, "
                     "50 TPS/node, NOFORCE)",
                     opt, bruns, names);
    write_trace_file(opt, bruns);
  }

  std::printf("# %s\n",
              fingerprint_line("ablation_read_opt", cfgs.front()).c_str());
  std::printf("\n== Ablation: PCL read optimization (trace workload, "
              "50 TPS/node, NOFORCE) ==\n");
  std::printf("%-9s %-9s %2s | %8s %9s %7s %8s\n", "readOpt", "routing", "N",
              "locLck", "resp[ms]", "msg/tx", "rev/tx");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    std::printf("%-9s %-9s %2d | %7.1f%% %9.1f %7.2f %8.3f\n",
                opts_read[i] ? "on" : "off", to_string(r.routing), r.nodes,
                r.local_lock_fraction * 100, r.resp_ms, r.messages_per_txn,
                r.revocations_per_txn);
  }
  return 0;
}
