// Fig. 4.7 — PCL vs GEM locking for the real-life workload (trace-driven,
// 50 TPS and 1000 buffer pages per node, NOFORCE, 1-8 nodes). PCL runs with
// the read optimization enabled, as in the paper.
//
// The original trace is unavailable; a synthetic trace reproducing its
// aggregate characteristics is generated (see DESIGN.md). Paper shape: close
// coupling clearly outperforms loose coupling for both routing strategies
// and the gap grows with the node count. With affinity routing the
// database-sharing response times beat the central case (aggregate buffer
// grows while the DB size stays constant); random routing deteriorates
// (replicated caching, lower inter-transaction locality). PCL's local lock
// share falls with N; its CPU utilization is higher and less balanced.
#include <cstdio>
#include <vector>

#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "workload/trace_generator.hpp"

int main(int argc, char** argv) {
  using namespace gemsd;
  const BenchOptions opt = parse_bench_args(argc, argv);

  sim::Rng trng(7);
  const workload::Trace trace =
      workload::generate_synthetic_trace({}, trng);
  const auto stats = workload::compute_stats(trace);
  std::printf("trace: %zu txns, %zu refs (avg %.1f), %zu distinct pages, "
              "%.1f%% write refs, %.1f%% update txns, largest txn %zu\n",
              stats.transactions, stats.references, stats.mean_refs,
              stats.distinct_pages, stats.write_ref_fraction * 100,
              stats.update_txn_fraction * 100, stats.largest_txn);

  std::vector<std::string> names;
  for (int f = 0; f < trace.num_files; ++f) names.push_back("F" + std::to_string(f));

  std::vector<SystemConfig> cfgs;
  for (Coupling coupling : {Coupling::GemLocking, Coupling::PrimaryCopy}) {
    for (Routing routing : {Routing::Affinity, Routing::Random}) {
      for (int n : {1, 2, 4, 6, 8}) {
        if (n > opt.max_nodes) continue;
        SystemConfig cfg = make_trace_config(trace);
        cfg.nodes = n;
        cfg.coupling = coupling;
        cfg.routing = routing;
        cfg.warmup = opt.warmup;
        cfg.measure = opt.measure;
        cfg.seed = opt.seed;
        cfgs.push_back(cfg);
      }
    }
  }
  apply_obs_options(cfgs, opt);
  const std::vector<RunResult> runs =
      SweepRunner(opt.jobs).run_trace(cfgs, trace);
  {
    const auto bruns = zip_runs(cfgs, runs);
    write_bench_json("fig_4_7",
                     "Fig 4.7: PCL vs GEM locking, real-life (synthetic) "
                     "trace (50 TPS, buffer 1000, NOFORCE)",
                     opt, bruns, names);
    write_trace_file(opt, bruns);
  }

  std::printf("# %s\n", fingerprint_line("fig_4_7", cfgs.front()).c_str());
  std::printf("\n== Fig 4.7: PCL vs GEM locking, real-life (synthetic) trace "
              "(50 TPS, buffer 1000, NOFORCE) ==\n");
  std::printf("%-12s %-9s | %2s %9s %9s %7s %7s %7s %7s %9s\n", "coupling",
              "routing", "N", "resp[ms]", "norm[ms]", "cpuAvg", "cpuMax",
              "locLck", "msg/tx", "TPS@80/nd");
  for (const RunResult& r : runs) {
    std::printf("%-12s %-9s | %2d %9.2f %9.2f %6.1f%% %6.1f%% %6.1f%% "
                "%7.2f %9.1f\n",
                to_string(r.coupling), to_string(r.routing), r.nodes, r.resp_ms,
                r.resp_norm_ms * 57.0, r.cpu_util * 100,
                r.cpu_util_max * 100, r.local_lock_fraction * 100,
                r.messages_per_txn, r.tps_per_node_at_80);
  }
  if (opt.csv) print_csv(runs, names);
  return 0;
}
