// Ablation: the GEM-locking refinement of Sections 2/3.2 — "a refinement to
// reduce the number of GEM accesses is to authorize the node's local lock
// managers to locally process certain lock requests." The paper's main runs
// deliberately do NOT use it (every lock goes to the GLT); this bench shows
// what read authorizations buy on the read-dominated trace workload, where
// 58 lock requests per transaction hammer the GLT.
#include <cstdio>
#include <functional>
#include <vector>

#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "workload/trace_generator.hpp"

int main(int argc, char** argv) {
  using namespace gemsd;
  const BenchOptions opt = parse_bench_args(argc, argv);

  sim::Rng trng(7);
  const workload::Trace trace = workload::generate_synthetic_trace({}, trng);

  // Needs System access for the lock counters, so each task builds and runs
  // the System itself and returns the extra numbers next to the RunResult.
  struct Row {
    RunResult r;
    std::uint64_t glt_locks = 0;
    std::uint64_t auth_locks = 0;
    bool auths = false;
  };
  std::vector<SystemConfig> cfgs;
  std::vector<bool> auth_flags;
  for (bool auths : {false, true}) {
    for (int n : {2, 4, 8}) {
      if (n > opt.max_nodes) continue;
      SystemConfig cfg = make_trace_config(trace);
      cfg.nodes = n;
      cfg.coupling = Coupling::GemLocking;
      cfg.routing = Routing::Affinity;
      cfg.gem_read_authorizations = auths;
      cfg.warmup = opt.warmup;
      cfg.measure = opt.measure;
      cfg.seed = opt.seed;
      cfgs.push_back(cfg);
      auth_flags.push_back(auths);
    }
  }
  apply_obs_options(cfgs, opt);
  std::vector<std::function<Row()>> tasks;
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    const SystemConfig& cfg = cfgs[i];
    const bool auths = auth_flags[i];
    tasks.push_back([cfg, auths, &trace] {
      System sys(cfg, make_trace_workload(cfg, trace));
      Row row;
      row.r = sys.run();
      row.glt_locks = sys.metrics().lock_local.value();
      row.auth_locks = sys.metrics().lock_auth_local.value();
      row.auths = auths;
      return row;
    });
  }
  const std::vector<Row> rows = SweepRunner(opt.jobs).map(std::move(tasks));

  {
    std::vector<RunResult> rs;
    for (const Row& row : rows) rs.push_back(row.r);
    auto bruns = zip_runs(cfgs, rs);
    std::vector<std::string> names;
    for (int f = 0; f < trace.num_files; ++f) {
      names.push_back("F" + std::to_string(f));
    }
    for (std::size_t i = 0; i < bruns.size(); ++i) {
      bruns[i].extra = {
          {"auths", rows[i].auths ? 1.0 : 0.0},
          {"glt_locks", static_cast<double>(rows[i].glt_locks)},
          {"auth_locks", static_cast<double>(rows[i].auth_locks)}};
    }
    write_bench_json("ablation_gem_auth",
                     "Ablation: GEM local read authorizations (trace "
                     "workload, 50 TPS/node, NOFORCE, affinity routing)",
                     opt, bruns, names);
    write_trace_file(opt, bruns);
    std::printf("# %s\n",
                fingerprint_line("ablation_gem_auth", cfgs.front()).c_str());
  }

  std::printf("\n== Ablation: GEM local read authorizations (trace workload, "
              "50 TPS/node, NOFORCE, affinity routing) ==\n");
  std::printf("%-6s %2s | %9s %9s %9s %8s %8s\n", "auths", "N", "resp[ms]",
              "gltLocks", "authLocks", "gemUtil", "rev/tx");
  for (const Row& row : rows) {
    const RunResult& r = row.r;
    const double per_txn =
        r.commits ? 1.0 / static_cast<double>(r.commits) : 0;
    std::printf("%-6s %2d | %9.1f %9.2f %9.2f %7.2f%% %8.3f\n",
                row.auths ? "on" : "off", r.nodes, r.resp_ms,
                static_cast<double>(row.glt_locks) * per_txn,
                static_cast<double>(row.auth_locks) * per_txn,
                r.gem_util * 100, r.revocations_per_txn);
  }
  std::printf("\nExpected shape: authorizations shift most of the ~58 GLT "
              "lock operations per transaction to local processing, cutting "
              "GEM utilization; response times barely move (GLT access was "
              "already cheap) — confirming why the paper could afford to "
              "skip the refinement in its experiments.\n");
  return 0;
}
