// Ablation: update-mode (U) locks vs plain read->write upgrades under a
// read-modify-write workload. Strict 2PL with R->W upgrades deadlocks
// whenever two transactions read the same page before writing it; U locks
// serialize the *intent* and remove the cycles. (An extension beyond the
// paper — debit-credit's fixed reference order makes it deadlock-free, but
// general workloads are not.)
#include <cstdio>
#include <functional>
#include <vector>

#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "core/system.hpp"
#include "workload/workload.hpp"

namespace {

using namespace gemsd;
using workload::PageRef;
using workload::TxnSpec;

PageId pg(std::int64_t n) { return PageId{0, n}; }

class ModGla : public workload::GlaMap {
 public:
  explicit ModGla(int nodes) : nodes_(nodes) {}
  NodeId gla(PageId p) const override {
    return static_cast<NodeId>(p.page % nodes_);
  }

 private:
  int nodes_;
};
struct NullGen : workload::WorkloadGenerator {
  TxnSpec next(sim::Rng&) override { return {}; }
  int num_types() const override { return 1; }
};

struct Row {
  RunResult r;
  std::uint64_t deadlocks = 0;
  double resp_ms = 0;
  double wall_ms = 0;
};

SystemConfig make_cfg(Coupling c) {
  SystemConfig cfg;
  cfg.nodes = 4;
  cfg.coupling = c;
  cfg.update = UpdateStrategy::NoForce;
  cfg.buffer_pages = 64;
  cfg.mpl = 400;
  cfg.partitions.resize(1);
  cfg.partitions[0].name = "T";
  cfg.partitions[0].pages_per_unit = 4096;
  cfg.partitions[0].locked = true;
  cfg.partitions[0].disks_per_unit = 16;
  return cfg;
}

Row run(const SystemConfig& cfg, bool intent, int hot_pages, int txns) {
  System::Workload wl;
  wl.gen = std::make_unique<NullGen>();
  wl.router = std::make_unique<workload::RandomRouter>(cfg.nodes);
  wl.gla = std::make_unique<ModGla>(cfg.nodes);
  System sys(cfg, std::move(wl));

  sim::Rng rng(4242);
  for (int i = 0; i < txns; ++i) {
    TxnSpec t;
    const std::int64_t page = rng.uniform_int(0, hot_pages - 1);
    t.refs.push_back(PageRef{pg(page), false, intent});
    t.refs.push_back(PageRef{pg(page), true, false});
    sys.submit(static_cast<NodeId>(i % cfg.nodes), t);
  }
  sys.scheduler().run_all();
  Row row;
  row.r = sys.collect();
  row.deadlocks = sys.metrics().deadlocks.value();
  row.resp_ms = sys.metrics().response.mean() * 1e3;
  row.wall_ms = sys.scheduler().now() * 1e3;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_bench_args(argc, argv);
  std::vector<SystemConfig> cfgs;
  std::vector<int> hot_of;
  std::vector<bool> intent_of;
  for (Coupling c : {Coupling::GemLocking, Coupling::PrimaryCopy}) {
    for (int hot : {4, 32, 256}) {
      for (bool intent : {false, true}) {
        cfgs.push_back(make_cfg(c));
        hot_of.push_back(hot);
        intent_of.push_back(intent);
      }
    }
  }
  apply_obs_options(cfgs, opt);
  std::vector<std::function<Row()>> tasks;
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    const SystemConfig& cfg = cfgs[i];
    const int hot = hot_of[i];
    const bool intent = intent_of[i];
    tasks.push_back([&cfg, hot, intent] { return run(cfg, intent, hot, 800); });
  }
  const std::vector<Row> rows = SweepRunner(opt.jobs).map(std::move(tasks));

  {
    std::vector<RunResult> rs;
    for (const Row& row : rows) rs.push_back(row.r);
    auto bruns = zip_runs(cfgs, rs);
    for (std::size_t i = 0; i < bruns.size(); ++i) {
      bruns[i].extra = {{"hot_pages", static_cast<double>(hot_of[i])},
                        {"update_mode_locks", intent_of[i] ? 1.0 : 0.0},
                        {"deadlocks", static_cast<double>(rows[i].deadlocks)},
                        {"drain_ms", rows[i].wall_ms}};
    }
    write_bench_json("ablation_update_locks",
                     "Ablation: update-mode locks vs R->W upgrades "
                     "(read-modify-write, 800 txns, 4 nodes)",
                     opt, bruns, {"T"});
    write_trace_file(opt, bruns);
    std::printf("# %s\n", fingerprint_line("ablation_update_locks",
                                           cfgs.front()).c_str());
  }

  std::printf("\n== Ablation: update-mode locks vs R->W upgrades "
              "(read-modify-write, 800 txns, 4 nodes) ==\n");
  std::printf("%-5s %-8s %9s | %10s %9s %10s\n", "mode", "locking", "hotset",
              "deadlocks", "resp[ms]", "drain[ms]");
  std::size_t i = 0;
  for (Coupling c : {Coupling::GemLocking, Coupling::PrimaryCopy}) {
    for (int hot : {4, 32, 256}) {
      for (bool intent : {false, true}) {
        const Row& r = rows[i++];
        std::printf("%-5s %-8s %9d | %10llu %9.1f %10.0f\n",
                    intent ? "U" : "R->W", to_string(c), hot,
                    static_cast<unsigned long long>(r.deadlocks), r.resp_ms,
                    r.wall_ms);
      }
    }
  }
  std::printf("\nExpected shape: U locks eliminate upgrade deadlocks at every "
              "contention level; the R->W variant thrashes (aborts/restarts) "
              "as the hot set shrinks.\n");
  return 0;
}
