// Ablation: update-mode (U) locks vs plain read->write upgrades under a
// read-modify-write workload. Strict 2PL with R->W upgrades deadlocks
// whenever two transactions read the same page before writing it; U locks
// serialize the *intent* and remove the cycles. (An extension beyond the
// paper — debit-credit's fixed reference order makes it deadlock-free, but
// general workloads are not.)
#include <cstdio>
#include <functional>
#include <vector>

#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "core/system.hpp"
#include "workload/workload.hpp"

namespace {

using namespace gemsd;
using workload::PageRef;
using workload::TxnSpec;

PageId pg(std::int64_t n) { return PageId{0, n}; }

class ModGla : public workload::GlaMap {
 public:
  explicit ModGla(int nodes) : nodes_(nodes) {}
  NodeId gla(PageId p) const override {
    return static_cast<NodeId>(p.page % nodes_);
  }

 private:
  int nodes_;
};
struct NullGen : workload::WorkloadGenerator {
  TxnSpec next(sim::Rng&) override { return {}; }
  int num_types() const override { return 1; }
};

struct Row {
  std::uint64_t deadlocks = 0;
  double resp_ms = 0;
  double wall_ms = 0;
};

Row run(Coupling c, bool intent, int hot_pages, int txns) {
  SystemConfig cfg;
  cfg.nodes = 4;
  cfg.coupling = c;
  cfg.update = UpdateStrategy::NoForce;
  cfg.buffer_pages = 64;
  cfg.mpl = 400;
  cfg.partitions.resize(1);
  cfg.partitions[0].name = "T";
  cfg.partitions[0].pages_per_unit = 4096;
  cfg.partitions[0].locked = true;
  cfg.partitions[0].disks_per_unit = 16;

  System::Workload wl;
  wl.gen = std::make_unique<NullGen>();
  wl.router = std::make_unique<workload::RandomRouter>(cfg.nodes);
  wl.gla = std::make_unique<ModGla>(cfg.nodes);
  System sys(cfg, std::move(wl));

  sim::Rng rng(4242);
  for (int i = 0; i < txns; ++i) {
    TxnSpec t;
    const std::int64_t page = rng.uniform_int(0, hot_pages - 1);
    t.refs.push_back(PageRef{pg(page), false, intent});
    t.refs.push_back(PageRef{pg(page), true, false});
    sys.submit(static_cast<NodeId>(i % cfg.nodes), t);
  }
  sys.scheduler().run_all();
  return {sys.metrics().deadlocks.value(), sys.metrics().response.mean() * 1e3,
          sys.scheduler().now() * 1e3};
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = parse_bench_args(argc, argv);
  std::vector<std::function<Row()>> tasks;
  for (Coupling c : {Coupling::GemLocking, Coupling::PrimaryCopy}) {
    for (int hot : {4, 32, 256}) {
      for (bool intent : {false, true}) {
        tasks.push_back([c, hot, intent] { return run(c, intent, hot, 800); });
      }
    }
  }
  const std::vector<Row> rows = SweepRunner(opt.jobs).map(std::move(tasks));

  std::printf("\n== Ablation: update-mode locks vs R->W upgrades "
              "(read-modify-write, 800 txns, 4 nodes) ==\n");
  std::printf("%-5s %-8s %9s | %10s %9s %10s\n", "mode", "locking", "hotset",
              "deadlocks", "resp[ms]", "drain[ms]");
  std::size_t i = 0;
  for (Coupling c : {Coupling::GemLocking, Coupling::PrimaryCopy}) {
    for (int hot : {4, 32, 256}) {
      for (bool intent : {false, true}) {
        const Row& r = rows[i++];
        std::printf("%-5s %-8s %9d | %10llu %9.1f %10.0f\n",
                    intent ? "U" : "R->W", to_string(c), hot,
                    static_cast<unsigned long long>(r.deadlocks), r.resp_ms,
                    r.wall_ms);
      }
    }
  }
  std::printf("\nExpected shape: U locks eliminate upgrade deadlocks at every "
              "contention level; the R->W variant thrashes (aborts/restarts) "
              "as the hot set shrinks.\n");
  return 0;
}
