// Fig. 4.5 — Primary Copy Locking (PCL, loose coupling) vs GEM locking
// (close coupling): buffer {200, 1000} x {FORCE, NOFORCE} x routing, all
// files on plain disks.
//
// Paper shape: with affinity routing PCL matches GEM locking (almost all
// locks local, identical I/O behaviour). With random routing PCL is always
// worse and the gap grows with the node count (message overhead and delays
// for remote lock requests); the PCL/GEM difference is smaller for NOFORCE
// than for FORCE and shrinks further at buffer 1000, because PCL piggybacks
// page transfers on lock messages.
#include <cstdio>
#include <vector>

#include "core/experiment.hpp"
#include "core/sweep.hpp"

int main(int argc, char** argv) {
  using namespace gemsd;
  const BenchOptions opt = parse_bench_args(argc, argv);

  // One sweep covers all four (buffer, update) tables; block boundaries are
  // recorded so the output below is identical to the serial version's.
  std::vector<SystemConfig> cfgs;
  std::vector<std::size_t> block_end;
  for (int buf : {200, 1000}) {
    for (UpdateStrategy upd : {UpdateStrategy::NoForce, UpdateStrategy::Force}) {
      for (Coupling coupling : {Coupling::GemLocking, Coupling::PrimaryCopy}) {
        for (Routing routing : {Routing::Affinity, Routing::Random}) {
          for (int n : {1, 2, 3, 5, 7, 10}) {
            if (n > opt.max_nodes) continue;
            SystemConfig cfg = make_debit_credit_config();
            cfg.nodes = n;
            cfg.coupling = coupling;
            cfg.update = upd;
            cfg.routing = routing;
            cfg.buffer_pages = buf;
            cfg.warmup = opt.warmup;
            cfg.measure = opt.measure;
            cfg.seed = opt.seed;
            cfgs.push_back(cfg);
          }
        }
      }
      block_end.push_back(cfgs.size());
    }
  }
  apply_obs_options(cfgs, opt);
  const std::vector<RunResult> all =
      SweepRunner(opt.jobs).run_debit_credit(cfgs);
  {
    const auto bruns = zip_runs(cfgs, all);
    write_bench_json("fig_4_5",
                     "Fig 4.5: PCL vs GEM locking, buffer x update strategy",
                     opt, bruns, debit_credit_partition_names());
    write_trace_file(opt, bruns);
  }

  std::size_t block = 0, begin = 0;
  for (int buf : {200, 1000}) {
    for (UpdateStrategy upd : {UpdateStrategy::NoForce, UpdateStrategy::Force}) {
      const std::size_t end = block_end[block++];
      const std::vector<RunResult> runs(all.begin() + begin,
                                        all.begin() + end);
      begin = end;
      if (opt.csv) {
        std::printf("# %s\n",
                    fingerprint_line("fig_4_5", cfgs.front()).c_str());
        print_csv(runs, debit_credit_partition_names());
      } else {
        print_table("Fig 4.5: PCL vs GEM locking (" +
                        std::string(to_string(upd)) + ", buffer " +
                        std::to_string(buf) + ")",
                    runs, debit_credit_partition_names(), opt.full);
      }
    }
  }
  return 0;
}
