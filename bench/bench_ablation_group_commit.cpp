// Ablation: group commit. The paper charges one log page write per update
// transaction (Section 3.2) — at 100 TPS/node against a ~6.4 ms log access
// the two configured log disks stay below saturation, but a single log disk
// or higher rates push rho past 1 and the commit path collapses. Group
// commit batches concurrent committers into one physical write.
#include <cstdio>
#include <functional>
#include <vector>

#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "core/system.hpp"

int main(int argc, char** argv) {
  using namespace gemsd;
  const BenchOptions opt = parse_bench_args(argc, argv);

  struct Row {
    RunResult r;
    double tps = 0;
    bool group = false;
    double log_util = 0;
    double batching = 0;
  };
  std::vector<SystemConfig> cfgs;
  std::vector<double> tps_of;
  std::vector<bool> group_of;
  for (double tps : {100.0, 150.0, 200.0, 300.0}) {
    for (bool group : {false, true}) {
      SystemConfig cfg = make_debit_credit_config();
      cfg.nodes = 1;
      cfg.arrival_rate_per_node = tps;
      cfg.cpu.processors = 8;  // keep the CPU out of the way
      cfg.log_disks_per_node = 1;
      cfg.log_group_commit = group;
      cfg.warmup = opt.warmup;
      cfg.measure = opt.measure;
      cfg.seed = opt.seed;
      cfgs.push_back(cfg);
      tps_of.push_back(tps);
      group_of.push_back(group);
    }
  }
  apply_obs_options(cfgs, opt);
  std::vector<std::function<Row()>> tasks;
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    const SystemConfig& cfg = cfgs[i];
    const double tps = tps_of[i];
    const bool group = group_of[i];
    tasks.push_back([cfg, tps, group] {
      System sys(cfg, make_debit_credit_workload(cfg));
      Row row;
      row.r = sys.run();
      row.tps = tps;
      row.group = group;
      row.log_util = sys.storage().log_group(0).arm_utilization();
      row.batching = sys.log(0).batching_factor();
      return row;
    });
  }
  const std::vector<Row> rows = SweepRunner(opt.jobs).map(std::move(tasks));

  {
    std::vector<RunResult> rs;
    for (const Row& row : rows) rs.push_back(row.r);
    auto bruns = zip_runs(cfgs, rs);
    for (std::size_t i = 0; i < bruns.size(); ++i) {
      bruns[i].extra = {{"group_commit", rows[i].group ? 1.0 : 0.0},
                        {"log_util", rows[i].log_util},
                        {"txns_per_flush", rows[i].batching}};
    }
    write_bench_json("ablation_group_commit",
                     "Ablation: group commit (debit-credit, 1 node, 1 log "
                     "disk, 8 CPUs, NOFORCE)",
                     opt, bruns, debit_credit_partition_names());
    write_trace_file(opt, bruns);
    std::printf("# %s\n", fingerprint_line("ablation_group_commit",
                                           cfgs.front()).c_str());
  }

  std::printf("\n== Ablation: group commit (debit-credit, 1 node, 1 log "
              "disk, 8 CPUs, NOFORCE) ==\n");
  std::printf("%6s %-6s | %9s %9s %9s %10s\n", "TPS", "group", "resp[ms]",
              "tput", "logUtil", "txns/flush");
  for (const Row& row : rows) {
    std::printf("%6.0f %-6s | %9.2f %9.1f %8.1f%% %10.2f\n", row.tps,
                row.group ? "on" : "off", row.r.resp_ms, row.r.throughput,
                row.log_util * 100, row.batching);
  }
  std::printf("\nExpected shape: without group commit the single log disk "
              "saturates between 150 and 200 TPS (response times explode, "
              "throughput caps); with it the batching factor rises with the "
              "load and the commit path keeps scaling.\n");
  return 0;
}
