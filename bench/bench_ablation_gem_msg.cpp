// Ablation: storage-based communication (Section 2) — "a general application
// of GEM is to use it for inter-node communication such that all messages
// are exchanged across the GEM ... a storage-based communication with GEM
// could already improve performance by reducing the communication overhead."
//
// Compares, for random routing where loose coupling suffers most:
//   1. PCL over the network (the paper's loose coupling),
//   2. PCL with all messages exchanged through GEM (closely coupled
//      messaging, unchanged DBMS protocol),
//   3. GEM locking (the paper's full close coupling).
#include <cstdio>
#include <vector>

#include "core/experiment.hpp"
#include "core/sweep.hpp"

int main(int argc, char** argv) {
  using namespace gemsd;
  const BenchOptions opt = parse_bench_args(argc, argv);

  struct Variant {
    const char* label;
    Coupling coupling;
    MsgTransport transport;
  };
  const Variant variants[] = {
      {"PCL / network msgs", Coupling::PrimaryCopy, MsgTransport::Network},
      {"PCL / GEM msgs", Coupling::PrimaryCopy, MsgTransport::GemStore},
      {"GEM locking", Coupling::GemLocking, MsgTransport::Network},
  };
  std::vector<SystemConfig> cfgs;
  std::vector<const char*> labels;
  for (int n : {2, 5, 10}) {
    if (n > opt.max_nodes) continue;
    for (const auto& v : variants) {
      SystemConfig cfg = make_debit_credit_config();
      cfg.nodes = n;
      cfg.coupling = v.coupling;
      cfg.routing = Routing::Random;
      cfg.update = UpdateStrategy::NoForce;
      cfg.buffer_pages = 1000;
      cfg.comm.transport = v.transport;
      cfg.warmup = opt.warmup;
      cfg.measure = opt.measure;
      cfg.seed = opt.seed;
      cfgs.push_back(cfg);
      labels.push_back(v.label);
    }
  }
  apply_obs_options(cfgs, opt);
  const std::vector<RunResult> runs =
      SweepRunner(opt.jobs).run_debit_credit(cfgs);
  {
    const auto bruns = zip_runs(cfgs, runs);
    write_bench_json("ablation_gem_msg",
                     "Ablation: messages across GEM vs network "
                     "(debit-credit, random routing, NOFORCE, buffer 1000)",
                     opt, bruns, debit_credit_partition_names());
    write_trace_file(opt, bruns);
  }

  std::printf("# %s\n",
              fingerprint_line("ablation_gem_msg", cfgs.front()).c_str());
  std::printf("\n== Ablation: messages across GEM vs network (debit-credit, "
              "random routing, NOFORCE, buffer 1000) ==\n");
  std::printf("%-26s %3s | %9s %7s %7s %7s %9s\n", "configuration", "N",
              "resp[ms]", "cpu", "gem", "net", "tps80/nd");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    std::printf("%-26s %3d | %9.2f %6.1f%% %6.2f%% %6.1f%% %9.1f\n",
                labels[i], r.nodes, r.resp_ms, r.cpu_util * 100,
                r.gem_util * 100, r.net_util * 100, r.tps_per_node_at_80);
  }
  std::printf("\nExpected shape: GEM messaging removes most of PCL's CPU "
              "overhead and delay, landing between loose coupling and GEM "
              "locking — the paper's Section 2 claim.\n");
  return 0;
}
