// Ablation: how fast must the global store be for "GEM locking is
// essentially free" to hold? Sweeps the GEM entry access time from the
// paper's 2 us up to the 100-500 us lock-service times assumed for the
// centralized lock engine of [Yu87] (Related Work): with a single GEM server
// and 4 lock operations per debit-credit transaction, slow entries turn the
// coupling facility into the bottleneck the paper's GEM avoids.
#include <cstdio>
#include <vector>

#include "core/experiment.hpp"
#include "core/sweep.hpp"

int main(int argc, char** argv) {
  using namespace gemsd;
  const BenchOptions opt = parse_bench_args(argc, argv);

  std::vector<SystemConfig> cfgs;
  std::vector<double> entry_us;
  for (int n : {5, 10}) {
    if (n > opt.max_nodes) continue;
    for (double us : {2.0, 20.0, 100.0, 250.0, 500.0}) {
      SystemConfig cfg = make_debit_credit_config();
      cfg.nodes = n;
      cfg.coupling = Coupling::GemLocking;
      cfg.routing = Routing::Random;
      cfg.update = UpdateStrategy::NoForce;
      cfg.warmup = opt.warmup;
      cfg.measure = opt.measure;
      cfg.seed = opt.seed;
      cfg.gem.entry_access = us * 1e-6;
      cfgs.push_back(cfg);
      entry_us.push_back(us);
    }
  }
  apply_obs_options(cfgs, opt);
  const std::vector<RunResult> runs =
      SweepRunner(opt.jobs).run_debit_credit(cfgs);
  {
    auto bruns = zip_runs(cfgs, runs);
    for (std::size_t i = 0; i < bruns.size(); ++i) {
      bruns[i].extra = {{"entry_us", entry_us[i]}};
    }
    write_bench_json("ablation_gem_speed",
                     "Ablation: GEM entry access time (GEM locking, random "
                     "routing, NOFORCE, buffer 200)",
                     opt, bruns, debit_credit_partition_names());
    write_trace_file(opt, bruns);
  }

  std::printf("# %s\n",
              fingerprint_line("ablation_gem_speed", cfgs.front()).c_str());
  std::printf("\n== Ablation: GEM entry access time (GEM locking, random "
              "routing, NOFORCE, buffer 200) ==\n");
  std::printf("%5s %12s | %9s %8s %8s %9s\n", "N", "entry[us]", "resp[ms]",
              "gemUtil", "cpu", "tps");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    std::printf("%5d %12.0f | %9.2f %7.2f%% %7.1f%% %9.1f\n", r.nodes,
                entry_us[i], r.resp_ms, r.gem_util * 100, r.cpu_util * 100,
                r.throughput);
  }
  std::printf("\nPaper context: GEM locking at 2 us/entry kept GEM utilization "
              "< 2%% at 1000 TPS; [Yu87]-class lock engines (100-500 us) "
              "saturate the shared facility long before that.\n");
  return 0;
}
