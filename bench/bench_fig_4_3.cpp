// Fig. 4.3 — Influence of storage allocation for BRANCH/TELLER (buffer 1000):
// the hot B/T partition on magnetic disk vs resident in GEM, for (a) NOFORCE
// and (b) FORCE, with both routing strategies.
//
// Paper shape: for NOFORCE the GEM allocation changes almost nothing (with
// buffer 1000 there are few B/T I/Os; random-routing misses are served by
// page requests anyway). For FORCE the GEM allocation removes both the
// commit force-write disk delay and the miss penalty, making random routing
// almost as fast as affinity routing and the response times flat in N.
#include <cstdio>
#include <vector>

#include "core/experiment.hpp"
#include "core/sweep.hpp"

int main(int argc, char** argv) {
  using namespace gemsd;
  const BenchOptions opt = parse_bench_args(argc, argv);

  // Both update strategies go into one sweep; the per-strategy tables below
  // print in the same order as the serial loops did.
  std::vector<SystemConfig> cfgs;
  std::size_t per_strategy = 0;
  for (UpdateStrategy upd : {UpdateStrategy::NoForce, UpdateStrategy::Force}) {
    for (StorageKind bt : {StorageKind::Disk, StorageKind::Gem}) {
      for (Routing routing : {Routing::Affinity, Routing::Random}) {
        for (int n : {1, 2, 3, 5, 7, 10}) {
          if (n > opt.max_nodes) continue;
          SystemConfig cfg = make_debit_credit_config();
          cfg.nodes = n;
          cfg.coupling = Coupling::GemLocking;
          cfg.update = upd;
          cfg.routing = routing;
          cfg.buffer_pages = 1000;
          cfg.partitions[DebitCreditIds::kBranchTeller].storage = bt;
          cfg.warmup = opt.warmup;
          cfg.measure = opt.measure;
          cfg.seed = opt.seed;
          cfgs.push_back(cfg);
        }
      }
    }
    if (upd == UpdateStrategy::NoForce) per_strategy = cfgs.size();
  }
  apply_obs_options(cfgs, opt);
  const std::vector<RunResult> all =
      SweepRunner(opt.jobs).run_debit_credit(cfgs);
  {
    const auto bruns = zip_runs(cfgs, all);
    write_bench_json("fig_4_3",
                     "Fig 4.3: B/T on disk vs GEM, NOFORCE and FORCE "
                     "(buffer 1000)",
                     opt, bruns, debit_credit_partition_names());
    write_trace_file(opt, bruns);
  }

  for (UpdateStrategy upd : {UpdateStrategy::NoForce, UpdateStrategy::Force}) {
    const std::size_t begin =
        upd == UpdateStrategy::NoForce ? 0 : per_strategy;
    const std::size_t end =
        upd == UpdateStrategy::NoForce ? per_strategy : all.size();
    const std::vector<RunResult> runs(all.begin() + begin, all.begin() + end);
    if (opt.csv) {
      std::printf("# %s\n",
                  fingerprint_line("fig_4_3", cfgs.front()).c_str());
      print_csv(runs, debit_credit_partition_names());
    } else {
      print_table(std::string("Fig 4.3") +
                      (upd == UpdateStrategy::NoForce ? "a (NOFORCE)"
                                                      : "b (FORCE)") +
                      ": B/T on disk (first half) vs GEM (second half), "
                      "buffer 1000",
                  runs, debit_credit_partition_names(), opt.full);
    }
  }
  return 0;
}
