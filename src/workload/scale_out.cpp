#include "workload/scale_out.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace gemsd::workload {

ScaleOutGenerator::ScaleOutGenerator(ScaleOutSpec spec, int nodes)
    : spec_(spec),
      total_keys_(spec.keys_per_node * nodes),
      stride_(spec.keys_per_node + 1),
      zipf_(static_cast<std::size_t>(spec.keys_per_node * nodes),
            spec.zipf_theta) {
  if (nodes < 1 || spec_.keys_per_node < 1 || spec_.pages_per_key < 1 ||
      spec_.refs_per_txn < 1) {
    throw std::invalid_argument("ScaleOutGenerator: bad spec");
  }
  while (std::gcd(stride_, total_keys_) != 1) ++stride_;
}

TxnSpec ScaleOutGenerator::next(sim::Rng& rng) {
  // Zipf rank 0 is the hottest key; the drift offset rotates which concrete
  // key that is, advancing one key every drift_every_txns transactions.
  const std::int64_t offset = hot_key_offset();
  ++generated_;
  const auto rank = static_cast<std::int64_t>(zipf_.sample(rng));
  const std::int64_t key = key_of_rank(rank, offset);

  TxnSpec t;
  t.type = 0;
  t.affinity_key = key;
  t.refs.reserve(static_cast<std::size_t>(spec_.refs_per_txn));
  for (int r = 0; r < spec_.refs_per_txn; ++r) {
    // Mostly block-local accesses; a remote_fraction share goes to another
    // Zipf-drawn key's block (the cross-node coherency traffic).
    std::int64_t ref_key = key;
    if (rng.uniform() < spec_.remote_fraction) {
      const auto rr = static_cast<std::int64_t>(zipf_.sample(rng));
      ref_key = key_of_rank(rr, offset);
    }
    const std::int64_t page =
        ref_key * spec_.pages_per_key +
        rng.uniform_int(0, spec_.pages_per_key - 1);
    const bool write = rng.bernoulli(spec_.write_fraction);
    t.refs.push_back(PageRef{PageId{ScaleOutIds::kData, page}, write, false});
  }
  return t;
}

SystemConfig make_scale_out_config(int nodes, const ScaleOutSpec& spec) {
  SystemConfig c;
  c.nodes = nodes;
  c.routing = Routing::Affinity;
  c.update = UpdateStrategy::NoForce;
  // The diurnal peak is 1.5x the base rate; 4 processors would saturate
  // there and the run would measure CPU queueing, not the coupling core.
  c.cpu.processors = 8;
  c.partitions.resize(1);
  auto& data = c.partitions[ScaleOutIds::kData];
  data.name = "DATA";
  data.pages_per_unit = spec.keys_per_node * spec.pages_per_key;
  data.blocking_factor = 1;
  data.locked = true;
  data.storage = StorageKind::Gem;
  // The log stays on per-node disks: with lazy log groups only nodes that
  // actually commit build one, which the 512-node runs rely on.
  return c;
}

ScaleOutBundle make_scale_out_workload(const SystemConfig& cfg,
                                       ScaleOutSpec spec) {
  ScaleOutBundle b;
  b.gen = std::make_unique<ScaleOutGenerator>(spec, cfg.nodes);
  if (cfg.routing == Routing::Random) {
    b.router = std::make_unique<RandomRouter>(cfg.nodes);
  } else {
    b.router = std::make_unique<ShardMapRouter>(
        cc::ShardMap::blocked(cfg.nodes, spec.keys_per_node));
  }
  b.gla = std::make_unique<ShardMapGlaMap>(cc::ShardMap::blocked(
      cfg.nodes, spec.keys_per_node * spec.pages_per_key));
  if (spec.diurnal_amplitude != 0.0 && spec.diurnal_period_s > 0.0) {
    const double amp = spec.diurnal_amplitude;
    const double period = spec.diurnal_period_s;
    b.arrival_factor = [amp, period](sim::SimTime t) {
      return 1.0 + amp * std::sin(2.0 * M_PI * t / period);
    };
  }
  return b;
}

}  // namespace gemsd::workload
