#include "workload/trace.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace gemsd::workload {

void Trace::save(std::ostream& os) const {
  os << "gemsd-trace 1\n";
  os << "types " << num_types << "\n";
  os << "files " << num_files << "\n";
  for (const auto& t : txns) {
    os << "t " << t.type << " " << t.refs.size() << "\n";
    for (const auto& r : t.refs) {
      os << (r.write ? "w " : "r ") << r.page.partition << " " << r.page.page
         << "\n";
    }
  }
}

void Trace::save_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open trace file for writing: " + path);
  save(f);
}

Trace Trace::load(std::istream& is) {
  Trace tr;
  std::string magic;
  int version = 0;
  is >> magic >> version;
  if (magic != "gemsd-trace" || version != 1) {
    throw std::runtime_error("not a gemsd trace (bad header)");
  }
  std::string key;
  is >> key >> tr.num_types;
  if (key != "types") throw std::runtime_error("trace: expected 'types'");
  is >> key >> tr.num_files;
  if (key != "files") throw std::runtime_error("trace: expected 'files'");
  while (is >> key) {
    if (key != "t") throw std::runtime_error("trace: expected 't'");
    TxnSpec t;
    std::size_t nrefs = 0;
    is >> t.type >> nrefs;
    t.affinity_key = t.type;
    t.refs.reserve(nrefs);
    for (std::size_t i = 0; i < nrefs; ++i) {
      std::string mode;
      PageRef r;
      is >> mode >> r.page.partition >> r.page.page;
      r.write = (mode == "w");
      t.refs.push_back(r);
    }
    tr.txns.push_back(std::move(t));
  }
  return tr;
}

Trace Trace::load_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open trace file: " + path);
  return load(f);
}

TraceStats compute_stats(const Trace& t) {
  TraceStats s;
  s.transactions = t.txns.size();
  std::unordered_set<std::uint64_t> pages;
  std::size_t writes = 0, updates = 0;
  for (const auto& txn : t.txns) {
    s.references += txn.refs.size();
    s.largest_txn = std::max(s.largest_txn, txn.refs.size());
    bool upd = false;
    for (const auto& r : txn.refs) {
      pages.insert(r.page.key());
      if (r.write) {
        ++writes;
        upd = true;
      }
    }
    if (upd) ++updates;
  }
  s.distinct_pages = pages.size();
  if (s.references)
    s.write_ref_fraction =
        static_cast<double>(writes) / static_cast<double>(s.references);
  if (s.transactions) {
    s.update_txn_fraction =
        static_cast<double>(updates) / static_cast<double>(s.transactions);
    s.mean_refs =
        static_cast<double>(s.references) / static_cast<double>(s.transactions);
  }
  return s;
}

TraceProfile profile_trace(const Trace& t) {
  TraceProfile p;
  p.num_types = t.num_types;
  p.num_files = t.num_files;
  p.type_load.assign(static_cast<std::size_t>(t.num_types), 0.0);
  p.type_file_refs.assign(
      static_cast<std::size_t>(t.num_types),
      std::vector<double>(static_cast<std::size_t>(t.num_files), 0.0));
  for (const auto& txn : t.txns) {
    const auto ty = static_cast<std::size_t>(txn.type);
    p.type_load[ty] += static_cast<double>(txn.refs.size());
    for (const auto& r : txn.refs) {
      p.type_file_refs[ty][static_cast<std::size_t>(r.page.partition)] += 1.0;
    }
  }
  return p;
}

namespace {

double cosine(const std::vector<double>& a, const std::vector<double>& b) {
  double dot = 0, na = 0, nb = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

}  // namespace

std::vector<std::vector<double>> make_affinity_routing(const TraceProfile& p,
                                                       int nodes) {
  const auto T = static_cast<std::size_t>(p.num_types);
  const auto N = static_cast<std::size_t>(nodes);
  std::vector<std::vector<double>> share(T, std::vector<double>(N, 0.0));

  double total = 0.0;
  for (double l : p.type_load) total += l;
  const double capacity = total / static_cast<double>(nodes);

  // Types in decreasing load order (LPT-style), fractional water-filling:
  // each chunk of a type's load goes to the node with the best mix of file
  // overlap (affinity) and remaining capacity (balance).
  std::vector<std::size_t> order(T);
  for (std::size_t i = 0; i < T; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return p.type_load[a] > p.type_load[b];
  });

  std::vector<double> node_load(N, 0.0);
  std::vector<std::vector<double>> node_files(
      N, std::vector<double>(static_cast<std::size_t>(p.num_files), 0.0));

  for (std::size_t ty : order) {
    double remaining = p.type_load[ty];
    if (remaining <= 0.0) continue;
    int guard = 0;
    while (remaining > 1e-9 && guard++ < 4 * nodes) {
      std::size_t best = 0;
      double best_score = -1e30;
      for (std::size_t n = 0; n < N; ++n) {
        const double overlap = cosine(p.type_file_refs[ty], node_files[n]);
        const double balance = node_load[n] / capacity;
        const double score = overlap - 2.0 * balance;
        if (score > best_score) {
          best_score = score;
          best = n;
        }
      }
      const double room = std::max(capacity * 1.02 - node_load[best], 0.0);
      const double take = (room > 1e-9) ? std::min(remaining, room) : remaining;
      share[ty][best] += take / p.type_load[ty];
      node_load[best] += take;
      for (std::size_t f = 0; f < node_files[best].size(); ++f) {
        node_files[best][f] +=
            p.type_file_refs[ty][f] * take / p.type_load[ty];
      }
      remaining -= take;
    }
  }
  // Normalize rows against rounding drift.
  for (auto& row : share) {
    double s = 0;
    for (double v : row) s += v;
    if (s > 0)
      for (double& v : row) v /= s;
    else
      row[0] = 1.0;
  }
  return share;
}

std::vector<NodeId> make_gla_assignment(
    const TraceProfile& p, const std::vector<std::vector<double>>& share,
    int nodes) {
  const auto F = static_cast<std::size_t>(p.num_files);
  const auto N = static_cast<std::size_t>(nodes);
  // refs[n][f]: expected references to file f issued from node n under the
  // routing table.
  std::vector<std::vector<double>> refs(N, std::vector<double>(F, 0.0));
  for (std::size_t ty = 0; ty < share.size(); ++ty) {
    for (std::size_t n = 0; n < N; ++n) {
      for (std::size_t f = 0; f < F; ++f) {
        refs[n][f] += share[ty][n] * p.type_file_refs[ty][f];
      }
    }
  }
  std::vector<double> file_total(F, 0.0);
  double total = 0.0;
  for (std::size_t f = 0; f < F; ++f) {
    for (std::size_t n = 0; n < N; ++n) file_total[f] += refs[n][f];
    total += file_total[f];
  }
  const double capacity = total / static_cast<double>(nodes);

  std::vector<std::size_t> order(F);
  for (std::size_t i = 0; i < F; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return file_total[a] > file_total[b];
  });

  std::vector<NodeId> gla(F, 0);
  std::vector<double> gla_load(N, 0.0);
  for (std::size_t f : order) {
    std::size_t best = 0;
    double best_score = -1e30;
    for (std::size_t n = 0; n < N; ++n) {
      const double local = file_total[f] > 0 ? refs[n][f] / file_total[f] : 0;
      const double score = local - 1.0 * (gla_load[n] / capacity);
      if (score > best_score) {
        best_score = score;
        best = n;
      }
    }
    gla[f] = static_cast<NodeId>(best);
    gla_load[best] += file_total[f];
  }
  return gla;
}

}  // namespace gemsd::workload
