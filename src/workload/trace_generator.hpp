#pragma once

#include <vector>

#include "sim/random.hpp"
#include "workload/trace.hpp"

namespace gemsd::workload {

/// Generates a synthetic trace with the aggregate characteristics the paper
/// reports for its real-life workload (Section 4.6):
///
///  * ~17,500 transactions of twelve types, ~1 million page references;
///  * ~66,000 distinct pages in 13 files;
///  * high variation in transaction size, largest (an ad-hoc query scan)
///    > 11,000 references;
///  * ~20 % of transactions update, but only ~1.6 % of references are writes;
///  * highly non-uniform access (Zipf within files, per-type file affinity
///    with deliberate overlap so that the workload is only partially
///    partitionable).
///
/// The real trace is unavailable; this generator is the documented
/// substitution (see DESIGN.md). Any real trace in the gemsd text format can
/// be used instead.
struct SyntheticTraceConfig {
  std::size_t transactions = 17500;
  int files = 13;
  double zipf_theta = 1.0;
  /// Probability that the next reference continues sequentially in the same
  /// file (intra-transaction locality).
  double sequential_prob = 0.3;
};

Trace generate_synthetic_trace(const SyntheticTraceConfig& cfg, sim::Rng& rng);

}  // namespace gemsd::workload
