#pragma once

#include <memory>

#include "cc/shard_map.hpp"
#include "core/config.hpp"
#include "workload/workload.hpp"

namespace gemsd::workload {

/// Synthetic debit-credit (TPC-A/B style) generator following Section 3.1:
///
///  * four record types; BRANCH and TELLER are clustered into one partition
///    (one BRANCH plus its ten TELLERs per page), so each transaction touches
///    three pages: one ACCOUNT page, the HISTORY tail, and one B/T page;
///  * the BRANCH is selected uniformly; the TELLER belongs to that branch;
///  * 85 % of ACCOUNT accesses go to an account of the selected branch, the
///    rest to an account of a (uniformly) different branch;
///  * HISTORY is appended sequentially (resolved to the executing node's tail
///    page at run time — kAppendPage);
///  * record types are referenced in a fixed order with the hot BRANCH/TELLER
///    page last, so debit-credit itself is deadlock-free and hot lock holding
///    times stay short. All four record accesses are updates.
///
/// The database scales with the node count per the TPC rule (100 branches,
/// 1000 tellers, 10 M accounts per 100-TPS node unit).
class DebitCreditGenerator : public WorkloadGenerator {
 public:
  explicit DebitCreditGenerator(int nodes) : nodes_(nodes) {}

  TxnSpec next(sim::Rng& rng) override;
  int num_types() const override { return 1; }

  std::int64_t total_branches() const {
    return DebitCreditIds::kBranchesPerUnit * nodes_;
  }

 private:
  int nodes_;
};

/// GLA assignment for debit-credit under PCL: each node gets the lock
/// authority for a contiguous block of branches together with their TELLER
/// and ACCOUNT records (Section 3.2). HISTORY is not locked. The block rule
/// itself is cc::ShardMap::blocked over the branch number — the same
/// partitioning layer the sharded GLT routes through.
class DebitCreditGlaMap : public GlaMap {
 public:
  explicit DebitCreditGlaMap(int nodes)
      : map_(cc::ShardMap::blocked(nodes,
                                   DebitCreditIds::kBranchesPerUnit)) {}
  NodeId gla(PageId page) const override;

 private:
  cc::ShardMap map_;
};

/// Branch-affinity router for debit-credit (node = branch block).
std::unique_ptr<Router> make_debit_credit_router(Routing routing, int nodes);

}  // namespace gemsd::workload
