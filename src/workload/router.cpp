#include "workload/workload.hpp"

namespace gemsd::workload {

NodeId TableRouter::route(const TxnSpec& t, sim::Rng& rng) {
  const auto& row = share_[static_cast<std::size_t>(t.type)];
  double u = rng.uniform();
  for (std::size_t n = 0; n < row.size(); ++n) {
    u -= row[n];
    if (u <= 0.0) return static_cast<NodeId>(n);
  }
  return static_cast<NodeId>(row.size() - 1);
}

}  // namespace gemsd::workload
