#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cc/shard_map.hpp"
#include "core/config.hpp"
#include "workload/workload.hpp"

namespace gemsd::workload {

/// General configurable OLTP workload generator: a library feature beyond
/// the paper's two workloads. Users describe transaction classes over the
/// configured partitions — reference counts, read/write mix, skew, locality
/// — and get a generator plus matching affinity router and GLA map, so any
/// custom workload can be run through both coupling modes.
///
/// Locality model: each transaction class draws pages from its partitions
/// through a Zipf distribution whose *rotation* depends on the transaction's
/// affinity key — key-partitioned workloads route cleanly (affinity), fully
/// shared ones do not. `locality` in [0,1] interpolates: 1 = the class's
/// accesses are fully partitioned by affinity key (debit-credit-like), 0 =
/// every transaction samples the same global distribution (catalog-like).
struct TxnClass {
  std::string name;
  double weight = 1.0;           ///< relative arrival frequency
  int mean_refs = 10;            ///< exponential reference count (min 1)
  double write_fraction = 0.0;   ///< probability a reference writes
  bool update_intent = true;     ///< lock future-written pages in U mode
  std::vector<PartitionId> partitions;  ///< sampled uniformly per reference
  double zipf_theta = 0.8;
  double locality = 1.0;
};

struct SyntheticSpec {
  std::vector<TxnClass> classes;
  /// Number of affinity-key blocks (e.g. branches); routed node = key % N.
  std::int64_t affinity_keys = 1024;
};

class SyntheticWorkload : public WorkloadGenerator {
 public:
  /// `partition_pages[p]` = page count of partition p (from SystemConfig).
  SyntheticWorkload(SyntheticSpec spec,
                    std::vector<std::int64_t> partition_pages);

  TxnSpec next(sim::Rng& rng) override;
  int num_types() const override {
    return static_cast<int>(spec_.classes.size());
  }

  const SyntheticSpec& spec() const { return spec_; }

 private:
  SyntheticSpec spec_;
  std::vector<std::int64_t> partition_pages_;
  std::vector<double> class_cdf_;
  std::vector<std::unique_ptr<sim::ZipfGenerator>> zipf_;  // per class
};

/// Affinity router for synthetic workloads: node = affinity_key % nodes.
class KeyAffinityRouter : public Router {
 public:
  explicit KeyAffinityRouter(int nodes) : nodes_(nodes) {}
  NodeId route(const TxnSpec& t, sim::Rng&) override {
    return static_cast<NodeId>(t.affinity_key % nodes_);
  }

 private:
  int nodes_;
};

/// GLA map matching the synthetic locality model: the generator gives
/// affinity key k a hot region starting at offset k * pages/keys, so the
/// lock authority for a page goes to the node that key routes to.
class KeyGlaMap : public GlaMap {
 public:
  KeyGlaMap(int nodes, std::int64_t affinity_keys,
            std::vector<std::int64_t> partition_pages)
      : map_(cc::ShardMap::blocked(nodes)),
        keys_(affinity_keys),
        pages_(std::move(partition_pages)) {}
  NodeId gla(PageId p) const override {
    const std::int64_t n = pages_[static_cast<std::size_t>(p.partition)];
    if (n <= 0) return 0;
    const std::int64_t key = p.page * keys_ / n;  // whose hot region is this
    return static_cast<NodeId>(map_.shard_of_key(key));
  }

 private:
  cc::ShardMap map_;  ///< modulo policy (blocked, block size 1)
  std::int64_t keys_;
  std::vector<std::int64_t> pages_;
};

/// Build a complete System workload bundle for a synthetic spec.
struct SyntheticBundle {
  std::unique_ptr<WorkloadGenerator> gen;
  std::unique_ptr<Router> router;
  std::unique_ptr<GlaMap> gla;
};
SyntheticBundle make_synthetic_workload(const SystemConfig& cfg,
                                        SyntheticSpec spec);

}  // namespace gemsd::workload
