#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "cc/shard_map.hpp"
#include "core/config.hpp"
#include "sim/random.hpp"
#include "workload/workload.hpp"

namespace gemsd::workload {

/// Parameters of the scale_out workload family: a key-partitioned OLTP load
/// built to stress the sharded coupling core at 64-512 nodes and >= 1M
/// commits. Unlike the paper's debit-credit (whose hot set is stationary),
/// scale_out has
///
///   * a *time-drifting Zipf hotspot*: the Zipf rank-0 key advances through
///     the key space as transactions are generated, so the hot lock entries
///     (and with them the hot GLT shard and the hot node) migrate over the
///     run instead of camping on one authority;
///   * a *diurnal arrival curve*: the offered rate is modulated by a sinus
///     around the configured per-node rate, exercising the system across a
///     load range inside a single run.
///
/// Both effects are deterministic: the drift is keyed on the generator's own
/// transaction counter (the SOURCE draws in global event order), and the
/// diurnal factor is a pure function of simulated time — results stay
/// bit-identical across engine kinds and worker counts.
struct ScaleOutSpec {
  std::int64_t keys_per_node = 100;  ///< affinity-key blocks per node
  std::int64_t pages_per_key = 10;   ///< DATA pages owned by one key
  int refs_per_txn = 4;              ///< page references per transaction
  /// Write probability per reference. X locks are held to EOT under
  /// NOFORCE, so the write share (with the skew below) sets how close the
  /// hot pages run to their serialization limit.
  double write_fraction = 0.3;
  double remote_fraction = 0.15;     ///< refs leaving the txn's key block
  double zipf_theta = 0.6;           ///< key-popularity skew
  /// The hotspot advances by one key every this many generated transactions
  /// (0 disables the drift). At the default the rank-0 key crosses several
  /// node blocks over a 45 s run.
  std::int64_t drift_every_txns = 500;
  /// rate(t) = base * (1 + amplitude * sin(2*pi*t / period)); amplitude 0
  /// disables the diurnal curve.
  double diurnal_amplitude = 0.5;
  double diurnal_period_s = 20.0;
};

/// Partition layout of the scale_out database.
struct ScaleOutIds {
  static constexpr PartitionId kData = 0;
};

/// Generator: per transaction one Zipf-drawn affinity key (rotated by the
/// drift offset), refs_per_txn pages mostly inside that key's page block.
class ScaleOutGenerator : public WorkloadGenerator {
 public:
  ScaleOutGenerator(ScaleOutSpec spec, int nodes);

  TxnSpec next(sim::Rng& rng) override;
  int num_types() const override { return 1; }

  std::int64_t total_keys() const { return total_keys_; }
  /// Current rotation of the Zipf hotspot through the key space (tests).
  std::int64_t hot_key_offset() const {
    return spec_.drift_every_txns > 0
               ? static_cast<std::int64_t>(generated_ /
                                           static_cast<std::uint64_t>(
                                               spec_.drift_every_txns)) %
                     total_keys_
               : 0;
  }

 private:
  std::int64_t key_of_rank(std::int64_t rank, std::int64_t offset) const {
    return (offset + rank * stride_) % total_keys_;
  }

  ScaleOutSpec spec_;
  std::int64_t total_keys_;
  /// Zipf ranks are scattered over the key space with a stride coprime to
  /// the key count: consecutive hot ranks land in different node blocks, so
  /// the skew loads pages and GLT entries without parking ~20% of the
  /// cluster's transactions on whichever node owns a contiguous hot block.
  std::int64_t stride_;
  sim::ZipfGenerator zipf_;
  std::uint64_t generated_ = 0;  ///< keys the hotspot drift
};

/// Affinity router over the same block partitioning the GLA uses: key k's
/// transactions run where k's pages are synchronized.
class ShardMapRouter : public Router {
 public:
  explicit ShardMapRouter(cc::ShardMap map) : map_(map) {}
  NodeId route(const TxnSpec& t, sim::Rng&) override {
    return static_cast<NodeId>(map_.shard_of_key(t.affinity_key));
  }

 private:
  cc::ShardMap map_;
};

/// GLA map delegating to ShardMap::blocked over DATA page numbers: page p
/// belongs to key p/pages_per_key, and key blocks of keys_per_node map onto
/// nodes — the generic form of DebitCreditGlaMap's branch-block rule.
class ShardMapGlaMap : public GlaMap {
 public:
  explicit ShardMapGlaMap(cc::ShardMap map) : map_(map) {}
  NodeId gla(PageId p) const override {
    return static_cast<NodeId>(map_.shard_of_key(p.page));
  }

 private:
  cc::ShardMap map_;
};

/// SystemConfig for the scale_out family: one locked GEM-resident DATA
/// partition (the run is coupling/GLT-bound, not disk-bound — disk queues at
/// 512 nodes would bury the effect under I/O noise and hours of wall clock).
SystemConfig make_scale_out_config(int nodes, const ScaleOutSpec& spec = {});

/// Complete workload bundle (generator, router, GLA, diurnal curve) for a
/// scale_out config.
struct ScaleOutBundle {
  std::unique_ptr<WorkloadGenerator> gen;
  std::unique_ptr<Router> router;
  std::unique_ptr<GlaMap> gla;
  std::function<double(sim::SimTime)> arrival_factor;
};
ScaleOutBundle make_scale_out_workload(const SystemConfig& cfg,
                                       ScaleOutSpec spec = {});

}  // namespace gemsd::workload
