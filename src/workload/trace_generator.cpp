#include "workload/trace_generator.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace gemsd::workload {

namespace {

/// Sizes of the 13 files (pages), totalling 66,000.
constexpr std::array<int, 13> kFilePages = {12000, 10000, 8000, 8000, 6000,
                                            5000,  4000,  4000, 3000, 2500,
                                            1500,  1200,  800};

/// Per-type shape: arrival weight, mean reference count, probability that an
/// instance is an update transaction, write fraction of its *home-file*
/// references when updating, and the two affine files (every type also reads
/// the shared "catalog" file 0, which is never written).
///
/// The profile is constructed so that lock conflicts stay insignificant, the
/// property the paper reports for its real trace: (a) long read-only types
/// (>= 150 refs, whose strict-2PL read locks are held for seconds) only read
/// files that no type writes (archive tables); (b) writes go to the cold
/// tail region of the home file, disjoint from the Zipf-hot read head
/// (updates/inserts land on recently allocated pages outside the read
/// working set). Type 11 is the ad-hoc query: a long scan of the catalog.
struct TypeShape {
  double weight;
  double mean_refs;
  double update_prob;
  double write_frac;
  int home_file;
  int second_file;
};

constexpr std::array<TypeShape, 12> kTypes = {{
    {0.2200, 25, 0.0, 0.000, 1, 6},
    {0.1800, 30, 0.60, 0.250, 2, 7},
    {0.1400, 40, 0.0, 0.000, 3, 8},
    {0.1200, 55, 0.60, 0.130, 4, 9},
    {0.0900, 70, 0.0, 0.000, 5, 10},
    {0.0800, 60, 0.48, 0.130, 6, 11},
    {0.0600, 90, 0.0, 0.000, 7, 12},
    {0.0500, 100, 0.36, 0.080, 8, 1},
    {0.0300, 150, 0.0, 0.000, 9, 3},
    {0.0200, 200, 0.60, 0.040, 10, 3},
    {0.0080, 400, 0.0, 0.000, 11, 5},
    {0.0003, 11000, 0.0, 0.000, 0, 0},  // ad-hoc query scan over file 0
}};

}  // namespace

Trace generate_synthetic_trace(const SyntheticTraceConfig& cfg,
                               sim::Rng& rng) {
  Trace tr;
  tr.num_types = static_cast<int>(kTypes.size());
  tr.num_files = cfg.files;

  std::vector<sim::ZipfGenerator> zipf;
  zipf.reserve(kFilePages.size());
  for (int pages : kFilePages) {
    zipf.emplace_back(static_cast<std::size_t>(pages), cfg.zipf_theta);
  }

  // Instance counts per type (largest remainder keeps the mix exact).
  std::vector<std::size_t> counts(kTypes.size());
  std::size_t assigned = 0;
  for (std::size_t ty = 0; ty < kTypes.size(); ++ty) {
    counts[ty] = static_cast<std::size_t>(
        std::floor(kTypes[ty].weight * static_cast<double>(cfg.transactions)));
    if (ty == 11) counts[ty] = std::max<std::size_t>(counts[ty], 5);
    assigned += counts[ty];
  }
  while (assigned < cfg.transactions) {
    counts[0] += 1;  // pad with the most common type
    ++assigned;
  }
  while (assigned > cfg.transactions && counts[0] > 0) {
    counts[0] -= 1;  // trim when the ad-hoc minimum overshoots small traces
    --assigned;
  }

  tr.txns.reserve(cfg.transactions);
  for (std::size_t ty = 0; ty < kTypes.size(); ++ty) {
    const TypeShape& s = kTypes[ty];
    for (std::size_t i = 0; i < counts[ty]; ++i) {
      TxnSpec t;
      t.type = static_cast<int>(ty);
      t.affinity_key = t.type;

      std::size_t nrefs;
      if (ty == 11) {
        // "the largest transaction (an ad-hoc query) performs more than
        // 11,000 accesses" — pin the first instance above that mark.
        nrefs = i == 0 ? 11500u
                       : static_cast<std::size_t>(rng.uniform_int(9000, 13000));
      } else {
        nrefs = static_cast<std::size_t>(
            std::max(3.0, rng.exponential(s.mean_refs)));
        nrefs = std::min(nrefs, static_cast<std::size_t>(6 * s.mean_refs));
      }
      const bool updating = rng.bernoulli(s.update_prob);

      t.refs.reserve(nrefs);
      int cur_file = s.home_file;
      std::int64_t cur_page = -1;
      if (ty == 11) {
        // Sequential scan of the big file, wrapping.
        std::int64_t start = rng.uniform_int(0, kFilePages[0] - 1);
        for (std::size_t r = 0; r < nrefs; ++r) {
          t.refs.push_back(PageRef{
              PageId{0, (start + static_cast<std::int64_t>(r)) % kFilePages[0]},
              false});
        }
      } else {
        for (std::size_t r = 0; r < nrefs; ++r) {
          if (cur_page >= 0 && rng.bernoulli(cfg.sequential_prob)) {
            cur_page = (cur_page + 1) % kFilePages[static_cast<std::size_t>(cur_file)];
          } else {
            const double u = rng.uniform();
            cur_file = u < 0.55   ? s.home_file
                       : u < 0.85 ? s.second_file
                                  : 0;  // shared catalog file
            cur_page = static_cast<std::int64_t>(
                zipf[static_cast<std::size_t>(cur_file)].sample(rng));
          }
          bool w = updating && cur_file == s.home_file &&
                   rng.bernoulli(s.write_frac);
          if (w) {
            // Updates land uniformly on the cold tail region of the home
            // file (recently allocated pages, outside the read-hot head).
            const std::int64_t size =
                kFilePages[static_cast<std::size_t>(cur_file)];
            cur_page = rng.uniform_int(size * 3 / 10, size - 1);
          }
          t.refs.push_back(PageRef{PageId{cur_file, cur_page}, w});
        }
        // An "updating" instance that drew no write refs simply counts as
        // read-only; forcing a write here could land on a read-hot page and
        // (with seconds-long strict-2PL hold times) stall the whole cluster.
      }
      tr.txns.push_back(std::move(t));
    }
  }

  // Shuffle so the replay interleaves types as a real trace would.
  std::shuffle(tr.txns.begin(), tr.txns.end(), rng.engine());
  return tr;
}

}  // namespace gemsd::workload
