#include "workload/synthetic.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace gemsd::workload {

SyntheticWorkload::SyntheticWorkload(SyntheticSpec spec,
                                     std::vector<std::int64_t> partition_pages)
    : spec_(std::move(spec)), partition_pages_(std::move(partition_pages)) {
  if (spec_.classes.empty()) {
    throw std::invalid_argument("SyntheticWorkload: no transaction classes");
  }
  double total = 0;
  for (const auto& c : spec_.classes) {
    if (c.partitions.empty()) {
      throw std::invalid_argument("SyntheticWorkload: class '" + c.name +
                                  "' references no partitions");
    }
    for (PartitionId p : c.partitions) {
      if (static_cast<std::size_t>(p) >= partition_pages_.size() ||
          partition_pages_[static_cast<std::size_t>(p)] <= 0) {
        throw std::invalid_argument(
            "SyntheticWorkload: class '" + c.name +
            "' references an unknown or unbounded partition");
      }
    }
    total += c.weight;
    class_cdf_.push_back(total);
  }
  for (double& v : class_cdf_) v /= total;

  // One Zipf generator per class, sized to its largest partition; ranks are
  // scaled down for smaller partitions.
  zipf_.reserve(spec_.classes.size());
  for (const auto& c : spec_.classes) {
    std::int64_t largest = 1;
    for (PartitionId p : c.partitions) {
      largest = std::max(largest, partition_pages_[static_cast<std::size_t>(p)]);
    }
    zipf_.push_back(std::make_unique<sim::ZipfGenerator>(
        static_cast<std::size_t>(largest), c.zipf_theta));
  }
}

TxnSpec SyntheticWorkload::next(sim::Rng& rng) {
  // Pick a class by weight.
  const double u = rng.uniform();
  std::size_t ci = 0;
  while (ci + 1 < class_cdf_.size() && class_cdf_[ci] < u) ++ci;
  const TxnClass& c = spec_.classes[ci];

  TxnSpec t;
  t.type = static_cast<int>(ci);
  t.affinity_key = rng.uniform_int(0, spec_.affinity_keys - 1);

  const auto nrefs = static_cast<std::size_t>(
      std::max<double>(1.0, rng.exponential(c.mean_refs)));
  t.refs.reserve(nrefs);
  for (std::size_t r = 0; r < nrefs; ++r) {
    const PartitionId part =
        c.partitions[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(c.partitions.size()) - 1))];
    const std::int64_t pages =
        partition_pages_[static_cast<std::size_t>(part)];
    // Zipf rank scaled into this partition's page space.
    std::int64_t rank = static_cast<std::int64_t>(zipf_[ci]->sample(rng));
    rank = rank % pages;
    // Locality: with probability `locality` the access stays inside the
    // affinity key's own page region (key-partitioned data, like
    // debit-credit branches); otherwise it samples the global distribution.
    std::int64_t page = rank;
    if (rng.uniform() < c.locality) {
      // Key k owns pages [k*pages/keys, (k+1)*pages/keys) — the exact
      // integer inverse of KeyGlaMap's page -> key formula, so locality-1
      // accesses are always authority-local under the matching GLA.
      const std::int64_t keys = spec_.affinity_keys;
      const std::int64_t start =
          (t.affinity_key * pages + keys - 1) / keys;  // ceiling
      const std::int64_t end = ((t.affinity_key + 1) * pages + keys - 1) / keys;
      const std::int64_t size = std::max<std::int64_t>(1, end - start);
      page = std::min(start + rank % size, pages - 1);
    }
    const bool write = rng.bernoulli(c.write_fraction);
    // A read of a record the class is likely to update later is locked with
    // update intent (probability matched to the class's write mix, so pure
    // readers are not serialized behind the update-mode exclusivity).
    const bool intent =
        !write && c.update_intent && rng.bernoulli(c.write_fraction);
    t.refs.push_back(PageRef{PageId{part, page}, write, intent});
  }
  return t;
}

SyntheticBundle make_synthetic_workload(const SystemConfig& cfg,
                                        SyntheticSpec spec) {
  std::vector<std::int64_t> pages;
  pages.reserve(cfg.partitions.size());
  for (std::size_t p = 0; p < cfg.partitions.size(); ++p) {
    pages.push_back(cfg.partition_pages(static_cast<PartitionId>(p)));
  }
  SyntheticBundle b;
  const std::int64_t keys = spec.affinity_keys;
  b.gen = std::make_unique<SyntheticWorkload>(std::move(spec), pages);
  if (cfg.routing == Routing::Random) {
    b.router = std::make_unique<RandomRouter>(cfg.nodes);
  } else {
    b.router = std::make_unique<KeyAffinityRouter>(cfg.nodes);
  }
  b.gla = std::make_unique<KeyGlaMap>(cfg.nodes, keys, pages);
  return b;
}

}  // namespace gemsd::workload
