#include "workload/debit_credit.hpp"

namespace gemsd::workload {

using Ids = DebitCreditIds;

TxnSpec DebitCreditGenerator::next(sim::Rng& rng) {
  const std::int64_t branches = total_branches();
  const std::int64_t branch = rng.uniform_int(0, branches - 1);

  // ACCOUNT: 85% to an account of the selected branch, 15% to an account of
  // another (uniformly selected) branch.
  std::int64_t acct_branch = branch;
  if (branches > 1 && rng.bernoulli(0.15)) {
    acct_branch = rng.uniform_int(0, branches - 2);
    if (acct_branch >= branch) ++acct_branch;
  }
  const std::int64_t account =
      acct_branch * Ids::kAccountsPerBranch +
      rng.uniform_int(0, Ids::kAccountsPerBranch - 1);
  const std::int64_t account_page = account / Ids::kAccountsPerPage;

  // One BRANCH + its TELLERs per page (clustering): the B/T page id equals
  // the branch id. The TELLER and BRANCH record accesses hit the same page.
  const PageId bt_page{Ids::kBranchTeller, branch};

  TxnSpec t;
  t.type = 0;
  t.affinity_key = branch;
  t.refs = {
      PageRef{PageId{Ids::kAccount, account_page}, true},
      PageRef{PageId{Ids::kHistory, kAppendPage}, true},
      PageRef{bt_page, true},  // TELLER record
      PageRef{bt_page, true},  // BRANCH record (same clustered page)
  };
  return t;
}

NodeId DebitCreditGlaMap::gla(PageId page) const {
  std::int64_t branch = 0;
  switch (page.partition) {
    case Ids::kBranchTeller:
      branch = page.page;
      break;
    case Ids::kAccount:
      branch = page.page * Ids::kAccountsPerPage / Ids::kAccountsPerBranch;
      break;
    default:
      return 0;  // HISTORY is not locked; never queried
  }
  return static_cast<NodeId>(map_.shard_of_key(branch));
}

std::unique_ptr<Router> make_debit_credit_router(Routing routing, int nodes) {
  if (routing == Routing::Random) {
    return std::make_unique<RandomRouter>(nodes);
  }
  return std::make_unique<BlockAffinityRouter>(Ids::kBranchesPerUnit);
}

}  // namespace gemsd::workload
