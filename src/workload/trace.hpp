#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/workload.hpp"

namespace gemsd::workload {

/// A database trace: a sequence of transactions, each with its type and page
/// reference string (Section 3.1, trace-driven workload generator). Traces
/// can be loaded from / saved to a portable text format so that real traces
/// can be substituted for the synthetic one.
struct Trace {
  int num_types = 0;
  int num_files = 0;  ///< page partitions referenced by the trace
  std::vector<TxnSpec> txns;

  void save(std::ostream& os) const;
  void save_file(const std::string& path) const;
  static Trace load(std::istream& is);
  static Trace load_file(const std::string& path);
};

/// Aggregate characteristics of a trace (used to validate the synthetic
/// trace against the figures the paper reports for the real one).
struct TraceStats {
  std::size_t transactions = 0;
  std::size_t references = 0;
  std::size_t distinct_pages = 0;
  double write_ref_fraction = 0.0;
  double update_txn_fraction = 0.0;
  std::size_t largest_txn = 0;
  double mean_refs = 0.0;
};
TraceStats compute_stats(const Trace& t);

/// Workload generator that replays a trace: transactions are submitted in
/// their original order (cycling when the arrival process outruns the trace),
/// per the common-arrival-rate replay mode of Section 3.1.
class TraceWorkload : public WorkloadGenerator {
 public:
  explicit TraceWorkload(const Trace& trace) : trace_(trace) {}
  TxnSpec next(sim::Rng&) override {
    const auto& t = trace_.txns[pos_];
    pos_ = (pos_ + 1) % trace_.txns.size();
    return t;
  }
  int num_types() const override { return trace_.num_types; }

 private:
  const Trace& trace_;
  std::size_t pos_ = 0;
};

/// Per-type reference profile of a trace: input to the workload-allocation
/// and GLA heuristics [Ra92b].
struct TraceProfile {
  int num_types = 0;
  int num_files = 0;
  std::vector<double> type_load;                    ///< total refs by type
  std::vector<std::vector<double>> type_file_refs;  ///< [type][file]
};
TraceProfile profile_trace(const Trace& t);

/// Affinity-based workload allocation: a fractional routing table
/// share[type][node] (rows sum to 1) balancing load while maximizing the
/// file-profile overlap of the types co-located on a node.
std::vector<std::vector<double>> make_affinity_routing(const TraceProfile& p,
                                                       int nodes);

/// GLA assignment coordinated with a routing table: each file's lock
/// authority goes to the node that references it most, subject to balance.
std::vector<NodeId> make_gla_assignment(
    const TraceProfile& p, const std::vector<std::vector<double>>& share,
    int nodes);

/// GlaMap over a per-file assignment.
class FileGlaMap : public GlaMap {
 public:
  explicit FileGlaMap(std::vector<NodeId> by_file)
      : by_file_(std::move(by_file)) {}
  NodeId gla(PageId page) const override {
    return by_file_[static_cast<std::size_t>(page.partition)];
  }

 private:
  std::vector<NodeId> by_file_;
};

}  // namespace gemsd::workload
