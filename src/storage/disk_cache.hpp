#pragma once

#include <cstdint>

#include "core/lru.hpp"
#include "core/types.hpp"
#include "sim/stats.hpp"

namespace gemsd::storage {

/// Shared disk cache at the disk-controller level, following the management
/// of commercial (IBM) caches [Gr89]: LRU replacement; a volatile cache
/// satisfies read hits only, a non-volatile cache additionally absorbs
/// writes (the disk copy is updated asynchronously by the disk group's
/// destage process). Because the cache sits below all nodes it acts as a
/// global database buffer shared by the whole cluster.
class DiskCache {
 public:
  DiskCache(std::size_t capacity_pages, bool nonvolatile)
      : lru_(capacity_pages), nonvolatile_(nonvolatile) {}

  bool nonvolatile() const { return nonvolatile_; }
  std::size_t size() const { return lru_.size(); }

  /// Read lookup; promotes on hit.
  bool read_hit(PageId p) {
    const bool hit = lru_.touch(p) != nullptr;
    (hit ? hits_ : misses_).inc();
    return hit;
  }

  struct EvictedDirty {
    bool any = false;
    PageId page{};
  };

  /// Install a page (clean: staged in on a read miss or written through;
  /// dirty: absorbed write in a non-volatile cache). Returns a dirty page
  /// pushed out by LRU replacement, which the caller must destage.
  EvictedDirty install(PageId p, bool dirty);

  /// Mark a page clean after its destage completed (no-op if replaced).
  void destaged(PageId p) {
    if (bool* d = lru_.peek(p)) *d = false;
  }

  bool contains(PageId p) const { return lru_.contains(p); }
  std::uint64_t hits() const { return hits_.value(); }
  std::uint64_t misses() const { return misses_.value(); }
  void reset_stats() {
    hits_.reset();
    misses_.reset();
  }

 private:
  LruMap<bool> lru_;  // value: dirty flag
  bool nonvolatile_;
  sim::Counter hits_, misses_;
};

}  // namespace gemsd::storage
