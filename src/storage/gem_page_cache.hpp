#pragma once

#include "core/lru.hpp"
#include "core/types.hpp"
#include "sim/stats.hpp"

namespace gemsd::storage {

/// Logical content of a GEM-resident global page cache in front of a disk
/// group (Section 2: "caching database pages at an intermediate storage
/// level"; also the [DIRY89/DDY91] Shared Intermediate Memory and the small
/// GEM write buffer usage form). GEM is non-volatile, so the cache absorbs
/// writes; dirty pages are destaged to disk asynchronously.
///
/// Timing is *not* modelled here: callers account the synchronous GEM device
/// accesses (and hold a CPU across them).
class GemPageCache {
 public:
  explicit GemPageCache(std::size_t capacity) : lru_(capacity) {}

  bool read_hit(PageId p) {
    const bool hit = lru_.touch(p) != nullptr;
    (hit ? hits_ : misses_).inc();
    return hit;
  }

  struct EvictedDirty {
    bool any = false;
    PageId page{};
  };

  /// Install a page; returns a dirty LRU victim that must be destaged.
  EvictedDirty install(PageId p, bool dirty) {
    if (bool* d = lru_.touch(p)) {
      *d = *d || dirty;
      return {};
    }
    EvictedDirty out;
    if (lru_.full()) {
      auto clean = lru_.find_lru_if([](bool is_dirty) { return !is_dirty; },
                                    lru_.size());
      if (clean) {
        lru_.erase(*clean);
      } else if (auto victim = lru_.lru()) {
        out.any = true;
        out.page = victim->first;
        lru_.erase(victim->first);
      }
    }
    lru_.insert(p, dirty);
    return out;
  }

  void destaged(PageId p) {
    if (bool* d = lru_.peek(p)) *d = false;
  }

  bool contains(PageId p) const { return lru_.contains(p); }
  std::size_t size() const { return lru_.size(); }
  std::uint64_t hits() const { return hits_.value(); }
  std::uint64_t misses() const { return misses_.value(); }
  void reset_stats() {
    hits_.reset();
    misses_.reset();
  }

 private:
  LruMap<bool> lru_;  // dirty flag
  sim::Counter hits_, misses_;
};

}  // namespace gemsd::storage
