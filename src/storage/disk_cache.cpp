#include "storage/disk_cache.hpp"

namespace gemsd::storage {

DiskCache::EvictedDirty DiskCache::install(PageId p, bool dirty) {
  if (bool* d = lru_.touch(p)) {
    *d = *d || dirty;
    return {};
  }
  EvictedDirty out;
  if (lru_.full()) {
    // Prefer the oldest clean page; fall back to pushing out a dirty one,
    // which the caller must destage before the frame is reused (modelled as
    // an immediate asynchronous destage).
    auto clean = lru_.find_lru_if([](bool is_dirty) { return !is_dirty; },
                                  lru_.size());
    if (clean) {
      lru_.erase(*clean);
    } else if (auto victim = lru_.lru()) {
      out.any = true;
      out.page = victim->first;
      lru_.erase(victim->first);
    }
  }
  lru_.insert(p, dirty);
  return out;
}

}  // namespace gemsd::storage
