#include "storage/disk.hpp"

#include <utility>

namespace gemsd::storage {

DiskGroup::DiskGroup(sim::Scheduler& sched, sim::Rng& rng, std::string name,
                     int arms, Times times, std::unique_ptr<DiskCache> cache)
    : sched_(sched),
      rng_(rng),
      name_(std::move(name)),
      t_(times),
      controllers_(sched, arms, name_ + ".ctrl"),
      arms_(sched, arms, name_ + ".arm"),
      cache_(std::move(cache)) {}

sim::Task<bool> DiskGroup::read(PageId p) {
  reads_.inc();
  co_await controllers_.use(rng_.exponential(t_.controller));
  if (cache_ && cache_->read_hit(p)) {
    co_await sched_.delay(t_.transfer);
    co_return true;
  }
  co_await arms_.use(rng_.exponential(t_.disk));
  if (cache_) {
    // Stage the page into the cache; a displaced dirty page destages.
    const auto ev = cache_->install(p, /*dirty=*/false);
    if (ev.any) sched_.spawn(destage(ev.page));
  }
  co_await sched_.delay(t_.transfer);
  co_return false;
}

sim::Task<void> DiskGroup::write(PageId p) {
  writes_.inc();
  co_await controllers_.use(rng_.exponential(t_.controller));
  if (cache_ && cache_->nonvolatile()) {
    // Fast write: absorbed by the non-volatile cache, destaged later.
    const auto ev = cache_->install(p, /*dirty=*/true);
    if (ev.any) sched_.spawn(destage(ev.page));
    sched_.spawn(destage(p));
    co_await sched_.delay(t_.transfer);
    co_return;
  }
  if (cache_) {
    // Volatile cache: write-through; keep the copy coherent for readers.
    const auto ev = cache_->install(p, /*dirty=*/false);
    if (ev.any) sched_.spawn(destage(ev.page));
  }
  co_await arms_.use(rng_.exponential(t_.disk));
  co_await sched_.delay(t_.transfer);
}

sim::Task<void> DiskGroup::destage(PageId p) {
  co_await arms_.use(rng_.exponential(t_.disk));
  if (cache_) cache_->destaged(p);
}

void DiskGroup::reset_stats() {
  controllers_.reset_stats();
  arms_.reset_stats();
  reads_.reset();
  writes_.reset();
  if (cache_) cache_->reset_stats();
}

}  // namespace gemsd::storage
