#pragma once

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "cc/shard_map.hpp"
#include "core/config.hpp"
#include "core/types.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/task.hpp"
#include "storage/disk.hpp"
#include "storage/gem_device.hpp"
#include "storage/gem_page_cache.hpp"

namespace gemsd::storage {

/// Routes page I/O to the device holding each partition (disk group with or
/// without cache, or GEM) and owns the per-node log devices. Pure device
/// layer: CPU overhead for I/O is charged by the buffer/log managers.
///
/// The global lock/coherency authority is hosted here as a first-class
/// sharded service: `cfg.gem.shards` independent GemDevice servers (each its
/// own k-server station), with a deterministic cc::ShardMap routing page-
/// and entry-granular operations. Shard 0 keeps the name "GEM" and, with
/// shards=1 (the default), every path reduces to the paper's single device
/// bit-identically.
class StorageManager {
 public:
  StorageManager(sim::Scheduler& sched, sim::Rng& rng,
                 const SystemConfig& cfg);

  bool is_gem(PartitionId p) const {
    return cfg_.partitions[static_cast<std::size_t>(p)].storage ==
           StorageKind::Gem;
  }
  StorageKind kind(PartitionId p) const {
    return cfg_.partitions[static_cast<std::size_t>(p)].storage;
  }

  /// Device-level page read; returns true if served from a disk cache (or
  /// GEM — any global-store hit that skips the disk arm).
  sim::Task<bool> read(PageId p);
  /// Device-level durable page write.
  sim::Task<void> write(PageId p);

  // --- GEM page cache (StorageKind::DiskGemCache) ---
  bool has_gem_cache(PartitionId p) const {
    return gem_caches_[static_cast<std::size_t>(p)] != nullptr;
  }
  GemPageCache* gem_cache(PartitionId p) {
    return gem_caches_[static_cast<std::size_t>(p)].get();
  }
  /// Probe the partition's GEM cache (caller holds a CPU): one GEM entry
  /// access for the directory plus a page access when found.
  sim::Task<bool> gem_cache_probe(PageId p);
  /// Stage a page into the GEM cache (one page access; caller holds a CPU);
  /// a displaced dirty victim destages to disk asynchronously.
  sim::Task<void> gem_cache_insert(PageId p, bool dirty);
  /// Read the page from the underlying disk group, bypassing the GEM cache.
  sim::Task<void> disk_read(PageId p);
  /// Append one log page to a node's log (disk or GEM per config).
  sim::Task<void> log_write(NodeId n);
  bool log_on_gem() const { return cfg_.log_storage == StorageKind::Gem; }

  // --- sharded GEM authority ---
  GemDevice& gem(int shard = 0) {
    return *gems_[static_cast<std::size_t>(shard)];
  }
  const GemDevice& gem(int shard = 0) const {
    return *gems_[static_cast<std::size_t>(shard)];
  }
  /// Shard hosting page p's GLT entry / GEM-resident page slot.
  GemDevice& gem_for(PageId p) {
    return *gems_[static_cast<std::size_t>(gem_map_.shard_of(p))];
  }
  /// Shard hosting node n's per-node GEM state (message mailbox, GEM log).
  GemDevice& gem_for_node(NodeId n) {
    return *gems_[static_cast<std::size_t>(gem_map_.shard_of_node(n))];
  }
  int gem_shards() const { return static_cast<int>(gems_.size()); }
  const cc::ShardMap& gem_map() const { return gem_map_; }

  DiskGroup* group(PartitionId p) {
    return groups_[static_cast<std::size_t>(p)].get();  // null if GEM
  }
  /// Per-node log device, built on first use: at 256+ nodes with GEM-resident
  /// logs, eagerly constructing a DiskGroup (two Resources + queues) per node
  /// is pure waste — an untouched group reports all-zero stats anyway.
  DiskGroup& log_group(NodeId n);
  /// Read-only view for stats collection: null when the node never logged to
  /// disk (report zeros; identical to an eagerly built idle group).
  const DiskGroup* log_group_if_built(NodeId n) const {
    return logs_[static_cast<std::size_t>(n)].get();
  }
  /// Invoked whenever a lazy log group is first constructed (observability
  /// wiring: wait-sketch attachment). Pure observation — the hook must not
  /// mutate simulation state.
  void set_group_built_hook(std::function<void(DiskGroup&)> hook) {
    group_built_hook_ = std::move(hook);
  }

  void reset_stats();

 private:
  sim::Task<void> destage_from_gem(PageId p);

  sim::Scheduler& sched_;
  sim::Rng& rng_;
  const SystemConfig& cfg_;
  std::vector<std::unique_ptr<GemDevice>> gems_;  // cfg.gem.shards stations
  cc::ShardMap gem_map_;
  std::vector<std::unique_ptr<DiskGroup>> groups_;  // per partition
  std::vector<std::unique_ptr<GemPageCache>> gem_caches_;
  std::vector<std::unique_ptr<DiskGroup>> logs_;    // per node, lazily built
  std::function<void(DiskGroup&)> group_built_hook_;
};

}  // namespace gemsd::storage
