#pragma once

#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/types.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/task.hpp"
#include "storage/disk.hpp"
#include "storage/gem_device.hpp"
#include "storage/gem_page_cache.hpp"

namespace gemsd::storage {

/// Routes page I/O to the device holding each partition (disk group with or
/// without cache, or GEM) and owns the per-node log devices. Pure device
/// layer: CPU overhead for I/O is charged by the buffer/log managers.
class StorageManager {
 public:
  StorageManager(sim::Scheduler& sched, sim::Rng& rng,
                 const SystemConfig& cfg, GemDevice& gem);

  bool is_gem(PartitionId p) const {
    return cfg_.partitions[static_cast<std::size_t>(p)].storage ==
           StorageKind::Gem;
  }
  StorageKind kind(PartitionId p) const {
    return cfg_.partitions[static_cast<std::size_t>(p)].storage;
  }

  /// Device-level page read; returns true if served from a disk cache (or
  /// GEM — any global-store hit that skips the disk arm).
  sim::Task<bool> read(PageId p);
  /// Device-level durable page write.
  sim::Task<void> write(PageId p);

  // --- GEM page cache (StorageKind::DiskGemCache) ---
  bool has_gem_cache(PartitionId p) const {
    return gem_caches_[static_cast<std::size_t>(p)] != nullptr;
  }
  GemPageCache* gem_cache(PartitionId p) {
    return gem_caches_[static_cast<std::size_t>(p)].get();
  }
  /// Probe the partition's GEM cache (caller holds a CPU): one GEM entry
  /// access for the directory plus a page access when found.
  sim::Task<bool> gem_cache_probe(PageId p);
  /// Stage a page into the GEM cache (one page access; caller holds a CPU);
  /// a displaced dirty victim destages to disk asynchronously.
  sim::Task<void> gem_cache_insert(PageId p, bool dirty);
  /// Read the page from the underlying disk group, bypassing the GEM cache.
  sim::Task<void> disk_read(PageId p);
  /// Append one log page to a node's log (disk or GEM per config).
  sim::Task<void> log_write(NodeId n);
  bool log_on_gem() const { return cfg_.log_storage == StorageKind::Gem; }

  GemDevice& gem() { return gem_; }
  DiskGroup* group(PartitionId p) {
    return groups_[static_cast<std::size_t>(p)].get();  // null if GEM
  }
  DiskGroup& log_group(NodeId n) { return *logs_[static_cast<std::size_t>(n)]; }

  void reset_stats();

 private:
  sim::Task<void> destage_from_gem(PageId p);

  sim::Scheduler& sched_;
  const SystemConfig& cfg_;
  GemDevice& gem_;
  std::vector<std::unique_ptr<DiskGroup>> groups_;  // per partition
  std::vector<std::unique_ptr<GemPageCache>> gem_caches_;
  std::vector<std::unique_ptr<DiskGroup>> logs_;    // per node
};

}  // namespace gemsd::storage
