#pragma once

#include <memory>
#include <string>

#include "core/types.hpp"
#include "sim/random.hpp"
#include "sim/resource.hpp"
#include "sim/scheduler.hpp"
#include "sim/task.hpp"
#include "storage/disk_cache.hpp"

namespace gemsd::storage {

/// A partition's disk subsystem: a pool of controllers and disk arms
/// (k-server FCFS stations, exponential service), a fixed per-page transfer
/// delay, and optionally a shared (volatile or non-volatile) disk cache.
///
/// Access time composition follows the paper: transmission delay + controller
/// delay + disk delay (the disk delay is skipped on cache read hits, and on
/// all writes when the cache is non-volatile). I/O is load-balanced across
/// the arms ("a sufficient number of disks to avoid I/O bottlenecks").
class DiskGroup {
 public:
  struct Times {
    sim::SimTime disk;        ///< mean arm service time
    sim::SimTime controller;  ///< mean controller service time
    sim::SimTime transfer;    ///< fixed page transfer delay
  };

  DiskGroup(sim::Scheduler& sched, sim::Rng& rng, std::string name, int arms,
            Times times, std::unique_ptr<DiskCache> cache = nullptr);

  /// Read a page. Returns true when satisfied from the disk cache.
  sim::Task<bool> read(PageId p);
  /// Write a page (returns when the write is durable: on disk, or in a
  /// non-volatile cache).
  sim::Task<void> write(PageId p);

  bool has_cache() const { return cache_ != nullptr; }
  DiskCache* cache() { return cache_.get(); }

  double arm_utilization() const { return arms_.utilization(); }
  double controller_utilization() const { return controllers_.utilization(); }
  const sim::Resource& arms() const { return arms_; }
  const sim::Resource& controllers() const { return controllers_; }
  /// Mutable stations (observability wiring: wait-sketch attachment).
  sim::Resource& arms() { return arms_; }
  sim::Resource& controllers() { return controllers_; }
  std::uint64_t reads() const { return reads_.value(); }
  std::uint64_t writes() const { return writes_.value(); }
  const std::string& name() const { return name_; }

  void reset_stats();

 private:
  sim::Task<void> destage(PageId p);

  sim::Scheduler& sched_;
  sim::Rng& rng_;
  std::string name_;
  Times t_;
  sim::Resource controllers_;
  sim::Resource arms_;
  std::unique_ptr<DiskCache> cache_;
  sim::Counter reads_, writes_;
};

}  // namespace gemsd::storage
