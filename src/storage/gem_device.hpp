#pragma once

#include <string>

#include "core/config.hpp"
#include "sim/resource.hpp"
#include "sim/scheduler.hpp"
#include "sim/task.hpp"

namespace gemsd::storage {

/// Global Extended Memory: a non-volatile, page- and entry-addressable
/// semiconductor store synchronously accessible by every node (Section 2).
///
/// The device only models *timing* (a k-server station with constant service
/// times: 50 µs per page, 2 µs per entry by default); the logical content of
/// GEM-resident structures (global lock table, GEM-resident files) is kept by
/// their owning components. Callers are expected to hold a CPU while
/// awaiting these operations — GEM access is synchronous, the processor is
/// not released (that is the defining property of close coupling).
class GemDevice {
 public:
  /// `name` labels the k-server station ("GEM" for the single device /
  /// shard 0; sharded authorities append the shard index).
  GemDevice(sim::Scheduler& sched, const GemConfig& cfg,
            std::string name = "GEM")
      : cfg_(cfg), server_(sched, cfg.servers, std::move(name)) {}

  /// Transfer one page between main memory and GEM.
  sim::Task<void> page_access() {
    pages_.inc();
    co_await server_.use(cfg_.page_access);
  }

  /// Read or write one entry (double-word granularity; Compare&Swap is an
  /// entry write that may fail logically — same timing).
  sim::Task<void> entry_access() {
    entries_.inc();
    co_await server_.use(cfg_.entry_access);
  }

  double utilization() const { return server_.utilization(); }
  const sim::Resource& server() const { return server_; }
  /// Mutable station (observability wiring: wait-sketch attachment).
  sim::Resource& server() { return server_; }
  std::uint64_t page_ops() const { return pages_.value(); }
  std::uint64_t entry_ops() const { return entries_.value(); }
  void reset_stats() {
    server_.reset_stats();
    pages_.reset();
    entries_.reset();
  }

 private:
  GemConfig cfg_;
  sim::Resource server_;
  sim::Counter pages_, entries_;
};

}  // namespace gemsd::storage
