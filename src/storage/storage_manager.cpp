#include "storage/storage_manager.hpp"

namespace gemsd::storage {

StorageManager::StorageManager(sim::Scheduler& sched, sim::Rng& rng,
                               const SystemConfig& cfg)
    : sched_(sched),
      rng_(rng),
      cfg_(cfg),
      gem_map_(cc::ShardMap::hashed(cfg.gem.shards)) {
  // The sharded lock/coherency authority: shard 0 keeps the canonical "GEM"
  // station name (shards=1 reproduces the single-device model exactly).
  gems_.reserve(static_cast<std::size_t>(cfg.gem.shards));
  for (int s = 0; s < cfg.gem.shards; ++s) {
    gems_.push_back(std::make_unique<GemDevice>(
        sched, cfg.gem, s == 0 ? "GEM" : "GEM" + std::to_string(s)));
  }
  groups_.reserve(cfg.partitions.size());
  gem_caches_.resize(cfg.partitions.size());
  for (std::size_t i = 0; i < cfg.partitions.size(); ++i) {
    const auto& pc = cfg.partitions[i];
    if (pc.storage == StorageKind::DiskGemCache) {
      gem_caches_[i] = std::make_unique<GemPageCache>(
          static_cast<std::size_t>(pc.gem_cache_pages));
    }
    if (pc.storage == StorageKind::Gem) {
      groups_.push_back(nullptr);
      continue;
    }
    std::unique_ptr<DiskCache> cache;
    if (pc.storage == StorageKind::DiskVolatileCache) {
      cache = std::make_unique<DiskCache>(
          static_cast<std::size_t>(pc.disk_cache_pages), /*nonvolatile=*/false);
    } else if (pc.storage == StorageKind::DiskNvCache) {
      cache = std::make_unique<DiskCache>(
          static_cast<std::size_t>(pc.disk_cache_pages), /*nonvolatile=*/true);
    }
    const int arms = pc.disks_per_unit *
                     (pc.scale_with_nodes ? cfg.nodes : 1);
    groups_.push_back(std::make_unique<DiskGroup>(
        sched, rng, pc.name, std::max(arms, 1),
        DiskGroup::Times{cfg.disk.db_disk, cfg.disk.controller,
                         cfg.disk.transfer},
        std::move(cache)));
  }
  logs_.resize(static_cast<std::size_t>(cfg.nodes));
}

DiskGroup& StorageManager::log_group(NodeId n) {
  auto& slot = logs_[static_cast<std::size_t>(n)];
  if (!slot) {
    slot = std::make_unique<DiskGroup>(
        sched_, rng_, "log" + std::to_string(n),
        std::max(cfg_.log_disks_per_node, 1),
        DiskGroup::Times{cfg_.disk.log_disk, cfg_.disk.controller,
                         cfg_.disk.transfer});
    if (group_built_hook_) group_built_hook_(*slot);
  }
  return *slot;
}

sim::Task<bool> StorageManager::read(PageId p) {
  if (is_gem(p.partition)) {
    co_await gem_for(p).page_access();
    co_return true;
  }
  co_return co_await groups_[static_cast<std::size_t>(p.partition)]->read(p);
}

sim::Task<void> StorageManager::write(PageId p) {
  if (is_gem(p.partition)) {
    co_await gem_for(p).page_access();
    co_return;
  }
  co_await groups_[static_cast<std::size_t>(p.partition)]->write(p);
}

sim::Task<void> StorageManager::log_write(NodeId n) {
  if (cfg_.log_storage == StorageKind::Gem) {
    co_await gem_for_node(n).page_access();
    co_return;
  }
  co_await log_group(n).write(PageId{-1, static_cast<std::int64_t>(n)});
}

sim::Task<bool> StorageManager::gem_cache_probe(PageId p) {
  co_await gem_for(p).entry_access();  // cache directory lookup
  auto& cache = *gem_caches_[static_cast<std::size_t>(p.partition)];
  if (!cache.read_hit(p)) co_return false;
  co_await gem_for(p).page_access();  // transfer the cached page to memory
  co_return true;
}

sim::Task<void> StorageManager::gem_cache_insert(PageId p, bool dirty) {
  co_await gem_for(p).page_access();
  auto& cache = *gem_caches_[static_cast<std::size_t>(p.partition)];
  const auto ev = cache.install(p, dirty);
  if (ev.any) sched_.spawn(destage_from_gem(ev.page));
  if (dirty) sched_.spawn(destage_from_gem(p));
}

sim::Task<void> StorageManager::destage_from_gem(PageId p) {
  co_await groups_[static_cast<std::size_t>(p.partition)]->write(p);
  if (auto& c = gem_caches_[static_cast<std::size_t>(p.partition)]) {
    c->destaged(p);
  }
}

sim::Task<void> StorageManager::disk_read(PageId p) {
  co_await groups_[static_cast<std::size_t>(p.partition)]->read(p);
}

void StorageManager::reset_stats() {
  for (auto& g : gems_) g->reset_stats();
  for (auto& g : groups_)
    if (g) g->reset_stats();
  for (auto& c : gem_caches_)
    if (c) c->reset_stats();
  for (auto& l : logs_)
    if (l) l->reset_stats();
}

}  // namespace gemsd::storage
