#pragma once

#include <cassert>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

#include "core/types.hpp"

namespace gemsd {

/// LRU-ordered page map used by main-memory buffers and disk caches.
/// O(1) lookup/touch/insert/erase. Most-recently-used at the front.
template <typename V>
class LruMap {
 public:
  using Entry = std::pair<PageId, V>;

  explicit LruMap(std::size_t capacity) : cap_(capacity) {}

  std::size_t size() const { return list_.size(); }
  std::size_t capacity() const { return cap_; }
  bool full() const { return list_.size() >= cap_; }

  /// Find and promote to MRU. Returns nullptr if absent.
  V* touch(PageId p) {
    auto it = idx_.find(p);
    if (it == idx_.end()) return nullptr;
    list_.splice(list_.begin(), list_, it->second);
    return &it->second->second;
  }

  /// Find without promoting.
  V* peek(PageId p) {
    auto it = idx_.find(p);
    return it == idx_.end() ? nullptr : &it->second->second;
  }
  const V* peek(PageId p) const {
    auto it = idx_.find(p);
    return it == idx_.end() ? nullptr : &it->second->second;
  }

  bool contains(PageId p) const { return idx_.count(p) != 0; }

  /// Insert as MRU (must not already be present; capacity not enforced here —
  /// call evict_candidate()/erase() first when full).
  V* insert(PageId p, V v) {
    assert(!contains(p));
    list_.emplace_front(p, std::move(v));
    idx_[p] = list_.begin();
    return &list_.front().second;
  }

  /// The LRU entry (eviction candidate), or nullopt when empty.
  std::optional<Entry> lru() const {
    if (list_.empty()) return std::nullopt;
    return list_.back();
  }

  /// LRU entry matching pred (scanning backwards from LRU end, at most
  /// `scan_limit` entries), for "evict the oldest clean page" policies.
  template <typename Pred>
  std::optional<PageId> find_lru_if(Pred pred, std::size_t scan_limit) const {
    std::size_t scanned = 0;
    for (auto it = list_.rbegin(); it != list_.rend() && scanned < scan_limit;
         ++it, ++scanned) {
      if (pred(it->second)) return it->first;
    }
    return std::nullopt;
  }

  bool erase(PageId p) {
    auto it = idx_.find(p);
    if (it == idx_.end()) return false;
    list_.erase(it->second);
    idx_.erase(it);
    return true;
  }

  void clear() {
    list_.clear();
    idx_.clear();
  }

  /// Iterate MRU -> LRU.
  auto begin() const { return list_.begin(); }
  auto end() const { return list_.end(); }

 private:
  std::size_t cap_;
  std::list<Entry> list_;
  std::unordered_map<PageId, typename std::list<Entry>::iterator> idx_;
};

}  // namespace gemsd
