#include "core/report.hpp"

#include <cstdio>

namespace gemsd {

std::string RunResult::label() const {
  std::string s = to_string(coupling);
  s += "/";
  s += to_string(update);
  s += "/";
  s += to_string(routing);
  return s;
}

void print_table(const std::string& caption,
                 const std::vector<RunResult>& runs,
                 const std::vector<std::string>& partition_names, bool full) {
  std::printf("\n== %s ==\n", caption.c_str());
  std::printf("%-22s %3s %5s | %9s %8s | %7s %7s %7s", "config", "N", "buf",
              "resp[ms]", "tps", "cpu", "gem", "net");
  for (const auto& p : partition_names) {
    std::printf(" %8.8s", ("hit:" + p).c_str());
  }
  std::printf(" | %7s %7s %7s %7s\n", "locLck", "msg/tx", "pgrq/tx", "inv/tx");
  for (const auto& r : runs) {
    std::printf("%-22s %3d %5d | %9.2f %8.1f | %6.1f%% %6.2f%% %6.1f%%",
                r.label().c_str(), r.nodes, r.buffer_pages, r.resp_ms,
                r.throughput, r.cpu_util * 100, r.gem_util * 100,
                r.net_util * 100);
    for (std::size_t p = 0; p < partition_names.size(); ++p) {
      const double h = p < r.hit_ratio.size() ? r.hit_ratio[p] : 0.0;
      std::printf(" %7.1f%%", h * 100);
    }
    std::printf(" | %6.1f%% %7.2f %7.2f %7.2f\n", r.local_lock_fraction * 100,
                r.messages_per_txn, r.page_requests_per_txn,
                r.invalidations_per_txn);
    if (full) {
      std::printf(
          "    ci95=+-%.2fms p95=%.1fms norm=%.2fms tps80/node=%.1f cpuMax=%.1f%% "
          "waits/tx=%.3f lockWait=%.2fms dl=%llu aborts=%llu "
          "evW/tx=%.2f fW/tx=%.2f rev/tx=%.3f\n",
          r.resp_ci_ms, r.resp_p95_ms, r.resp_norm_ms, r.tps_per_node_at_80,
          r.cpu_util_max * 100, r.lock_waits_per_txn, r.lock_wait_ms,
          static_cast<unsigned long long>(r.deadlocks),
          static_cast<unsigned long long>(r.aborts), r.evict_writes_per_txn,
          r.force_writes_per_txn, r.revocations_per_txn);
      std::printf(
          "    breakdown[ms]: cpu=%.1f cpuWait=%.1f io=%.1f cc=%.1f "
          "queue=%.1f\n",
          r.brk_cpu_ms, r.brk_cpu_wait_ms, r.brk_io_ms, r.brk_cc_ms,
          r.brk_queue_ms);
    }
  }
}

void print_csv(const std::vector<RunResult>& runs,
               const std::vector<std::string>& partition_names) {
  std::printf("coupling,update,routing,nodes,buffer,resp_ms,resp_p95_ms,"
              "resp_norm_ms,tps,cpu_util,cpu_util_max,gem_util,net_util,"
              "tps80_per_node,local_lock_frac,msgs_per_txn,page_req_per_txn,"
              "page_req_ms,inval_per_txn,lock_waits_per_txn,deadlocks");
  for (const auto& p : partition_names) std::printf(",hit_%s", p.c_str());
  std::printf("\n");
  for (const auto& r : runs) {
    std::printf("%s,%s,%s,%d,%d,%.3f,%.3f,%.3f,%.2f,%.4f,%.4f,%.5f,%.4f,%.2f,"
                "%.4f,%.3f,%.3f,%.3f,%.4f,%.4f,%llu",
                to_string(r.coupling), to_string(r.update),
                to_string(r.routing), r.nodes, r.buffer_pages, r.resp_ms,
                r.resp_p95_ms, r.resp_norm_ms, r.throughput, r.cpu_util,
                r.cpu_util_max, r.gem_util, r.net_util, r.tps_per_node_at_80,
                r.local_lock_fraction, r.messages_per_txn,
                r.page_requests_per_txn, r.page_request_delay_ms,
                r.invalidations_per_txn, r.lock_waits_per_txn,
                static_cast<unsigned long long>(r.deadlocks));
    for (std::size_t p = 0; p < partition_names.size(); ++p) {
      std::printf(",%.4f", p < r.hit_ratio.size() ? r.hit_ratio[p] : 0.0);
    }
    std::printf("\n");
  }
}

}  // namespace gemsd
