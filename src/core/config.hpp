#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "sim/engine_kind.hpp"
#include "sim/time.hpp"

namespace gemsd {

/// Per-node CPU complex (Table 4.1: 4 processors of 10 MIPS each).
struct CpuConfig {
  int processors = 4;
  double mips = 10.0;  ///< per processor

  double instr_to_seconds(double instr) const { return instr / (mips * 1e6); }
};

/// Global Extended Memory device (Table 4.1).
struct GemConfig {
  int servers = 1;
  /// Independent GEM servers the global lock/coherency authority is sharded
  /// over (spec key `gem_shards`). Each shard is its own k-server station
  /// with `servers` servers; GLT entry ops route by cc::ShardMap. 1 (the
  /// default, and the paper's model) keeps the single-GEM behaviour
  /// bit-identical — shards=1 is the oracle for the sharded code paths.
  int shards = 1;
  sim::SimTime page_access = sim::usec(50);
  sim::SimTime entry_access = sim::usec(2);
  double io_instr = 300;  ///< CPU instructions to initiate a GEM page I/O
};

/// How inter-node messages travel.
enum class MsgTransport {
  Network,   ///< interconnection network, full protocol stack CPU cost
  GemStore,  ///< storage-based communication: messages exchanged across GEM
             ///< (Section 2) — synchronous GEM accesses, slim CPU path
};

/// Interconnection network + message costs (Table 4.1).
struct CommConfig {
  double bandwidth = 10e6;          ///< bytes/s
  double short_bytes = 100;         ///< control message size
  double long_bytes = 4096;         ///< page-transfer message size
  double short_instr = 5000;        ///< CPU instr per send OR receive (short)
  double long_instr = 8000;         ///< CPU instr per send OR receive (long)
  MsgTransport transport = MsgTransport::Network;
  /// CPU instructions per send or receive when messages go through GEM (no
  /// protocol stack; copy + signal).
  double gem_msg_instr = 1000;
};

/// Magnetic disk subsystem timing (Table 4.1).
struct DiskConfig {
  sim::SimTime db_disk = sim::msec(15);      ///< DB disk service time (mean)
  sim::SimTime log_disk = sim::msec(5);      ///< log disk service time (mean)
  sim::SimTime controller = sim::msec(1);    ///< controller service (mean)
  sim::SimTime transfer = sim::msec(0.4);    ///< page transfer delay
  double io_instr = 3000;                    ///< CPU instr per page I/O
};

/// One database partition as allocated to storage. Sizes are *per node unit*
/// (the TPC scaling rule: the database grows with the configured throughput);
/// `System` multiplies by the node count where scale_with_nodes is set.
struct PartitionConfig {
  std::string name;
  std::int64_t pages_per_unit = 0;  ///< 0 => unbounded sequential file
  int blocking_factor = 1;
  bool locked = true;               ///< false => latch-synchronized (no locks)
  bool scale_with_nodes = true;
  StorageKind storage = StorageKind::Disk;
  int disks_per_unit = 8;           ///< arms in this partition's disk group
  std::int64_t disk_cache_pages = 0;///< shared disk cache capacity (if cached)
  std::int64_t gem_cache_pages = 0; ///< GEM page cache capacity (DiskGemCache)
};

/// Transaction CPU path-length model: exponential bursts at BOT, per record
/// access, and at EOT (Table 4.1: 250k instructions mean total).
struct PathLengthConfig {
  double bot_instr = 40000;
  double per_ref_instr = 40000;
  double eot_instr = 50000;
};

struct WorkloadKindDebitCredit {};

/// Everything a single simulation run needs. Defaults reproduce Table 4.1.
struct SystemConfig {
  int nodes = 1;
  double arrival_rate_per_node = 100.0;  ///< transactions per second
  Coupling coupling = Coupling::GemLocking;
  UpdateStrategy update = UpdateStrategy::NoForce;
  Routing routing = Routing::Random;
  int mpl = 50;                 ///< per-node multiprogramming level
  int buffer_pages = 200;       ///< per-node main-memory DB buffer
  StorageKind log_storage = StorageKind::Disk;
  int log_disks_per_node = 2;
  /// Group commit: concurrent committers share one physical log write
  /// (flushed when the window closes or the group is full).
  bool log_group_commit = false;
  sim::SimTime log_group_window = sim::msec(2);
  int log_group_max = 8;
  bool pcl_read_optimization = false;  ///< PCL: local read locks via read-authorizations
  /// GEM locking refinement (Sections 2/3.2): authorize local lock managers
  /// to process read locks without GLT accesses; writers revoke.
  bool gem_read_authorizations = false;
  double lock_instr = 250;      ///< CPU instr per local lock/unlock operation
  /// Lock service time of the [Yu87]-style central lock engine
  /// (Coupling::LockEngine); that study assumed 100-500 us per operation.
  sim::SimTime lock_engine_service = sim::usec(200);

  CpuConfig cpu;
  GemConfig gem;
  CommConfig comm;
  DiskConfig disk;
  PathLengthConfig path;
  std::vector<PartitionConfig> partitions;

  /// Statistics discarded before this time. The default (5 s simulated) is
  /// the single source of truth for every front end: BenchOptions starts
  /// from it, and --quick lowers it to 2 s (with measure = 6 s) as an
  /// explicit override — later flags win, so `--quick --warmup=5` restores
  /// the default and `--warmup=5 --quick` does not. gemsd_analyze
  /// --timeseries checks this cut against an MSER estimate after the fact.
  sim::SimTime warmup = 5.0;
  sim::SimTime measure = 30.0;  ///< measured interval after warm-up
  std::uint64_t seed = 42;

  /// Restart back-off after a deadlock abort.
  sim::SimTime restart_delay = sim::msec(10);

  /// Event-kernel execution backend (sim/engine.hpp). Pure execution
  /// policy: results are identical for every kind and worker count, so —
  /// like ObsConfig — none of these fields enter config_json, config_hash,
  /// or exported specs.
  struct EngineConfig {
    sim::EngineKind kind = sim::EngineKind::Sequential;
    int workers = 0;  ///< parallel worker threads (0 = hardware_concurrency)
  } engine;

  /// Observability (src/obs): pure observation — none of these settings
  /// change simulation results, only what gets recorded about them.
  struct ObsConfig {
    /// Record trace events into a preallocated ring buffer (exported as
    /// Chrome trace-event JSON, see docs/observability.md).
    bool trace = false;
    std::size_t trace_capacity = std::size_t{1} << 18;  ///< ring entries
    /// Regex over event names (obs::to_string(TraceName)); only matching
    /// events are recorded. "" records everything. Filtered events never
    /// enter the ring, so they don't contribute to the `dropped` overwrite
    /// count — the knob that lets long runs keep a complete window of just
    /// lock/flow/IO events.
    std::string trace_filter;
    /// Periodic sampler interval in simulated seconds (0 = off). Samples
    /// start at t=0 so warm-up convergence is visible.
    sim::SimTime sample_every = 0.0;
    /// Keep the K slowest transactions with full phase breakdowns (0 = off).
    int slow_k = 0;
    /// Online invariant auditors in the TM/lock/buffer hot paths (fail fast
    /// with a trace cursor on the first violated invariant).
    bool audit = false;
    /// Engine parallelism profiler (obs/engprof.hpp): wall-clock per-window
    /// accounting of the safe-window engine. Pure observation — results are
    /// bit-identical on/off at any worker count.
    bool engine_profile = false;
    /// Timeline ring capacity in windows (aggregates always cover the run).
    std::size_t engprof_windows = std::size_t{1} << 14;
    /// Heartbeat period in wall seconds (0 = off): one stderr JSONL line
    /// with sim-time, commits, events/s and window count, plus rates over
    /// the last heartbeat interval.
    double progress_every_s = 0.0;
    /// Streaming per-window time series (obs/timeseries.hpp). Pure
    /// observation: no scheduler events are inserted, so metrics are
    /// byte-identical on/off and the export is bit-identical across engine
    /// kinds and worker counts.
    bool timeseries = false;
    double timeseries_window = 0.5;   ///< window width in simulated seconds
    std::size_t timeseries_cap = 512; ///< max windows before coarsening
    /// Per-resource queueing snapshot (obs/resources.hpp): exports the
    /// gemsd.resources.v1 document and records per-station wait sketches.
    /// Pure observation — no scheduler events, metrics byte-identical
    /// on/off at any engine kind and worker count.
    bool resources = false;
  } obs;

  /// Failure/recovery model (Section 1-2 motivate availability; GEM's
  /// non-volatility keeps the global lock table alive across node crashes,
  /// while PCL must freeze and reconstruct the failed node's lock authority).
  struct FailureConfig {
    sim::SimTime detection = sim::msec(100);   ///< crash detection delay
    /// REDO: log pages scanned per owned dirty page (reads from the failed
    /// node's log device) before the page is force-written.
    int redo_log_pages_per_page = 2;
    /// PCL only: reconstructing the failed GLA's lock table from the
    /// survivors (communication + rebuild) before its partition unfreezes.
    sim::SimTime gla_rebuild = sim::sec(2.0);
    /// Node restart time before it accepts new transactions again.
    sim::SimTime node_restart = sim::sec(5.0);
  } failure;

  std::int64_t partition_pages(PartitionId p) const {
    const auto& pc = partitions[static_cast<std::size_t>(p)];
    return pc.scale_with_nodes ? pc.pages_per_unit * nodes
                               : pc.pages_per_unit;
  }
};

/// Debit-credit schema per Table 4.1, with BRANCH/TELLER clustering: the
/// clustered partition holds one BRANCH plus its ten TELLER records per page
/// (100 pages per node unit); ACCOUNT has 10M records at blocking factor 10
/// (1M pages per unit); HISTORY is an unbounded sequential file with blocking
/// factor 20 and no locks (latch-protected end-of-file).
struct DebitCreditIds {
  static constexpr PartitionId kBranchTeller = 0;
  static constexpr PartitionId kAccount = 1;
  static constexpr PartitionId kHistory = 2;
  static constexpr std::int64_t kBranchesPerUnit = 100;
  static constexpr std::int64_t kTellersPerBranch = 10;
  static constexpr std::int64_t kAccountsPerBranch = 100000;
  static constexpr std::int64_t kAccountsPerPage = 10;
};

/// SystemConfig with the paper's Table 4.1 defaults for debit-credit.
SystemConfig make_debit_credit_config();

}  // namespace gemsd
