#include "core/config.hpp"

namespace gemsd {

const char* to_string(UpdateStrategy s) {
  return s == UpdateStrategy::Force ? "FORCE" : "NOFORCE";
}
const char* to_string(Routing r) {
  return r == Routing::Random ? "random" : "affinity";
}
const char* to_string(Coupling c) {
  switch (c) {
    case Coupling::GemLocking: return "GEM";
    case Coupling::PrimaryCopy: return "PCL";
    case Coupling::LockEngine: return "ENGINE";
  }
  return "?";
}
const char* to_string(StorageKind k) {
  switch (k) {
    case StorageKind::Disk: return "disk";
    case StorageKind::DiskVolatileCache: return "disk+vcache";
    case StorageKind::DiskNvCache: return "disk+nvcache";
    case StorageKind::DiskGemCache: return "disk+gemcache";
    case StorageKind::Gem: return "GEM";
  }
  return "?";
}

SystemConfig make_debit_credit_config() {
  SystemConfig c;
  c.partitions.resize(3);

  auto& bt = c.partitions[DebitCreditIds::kBranchTeller];
  bt.name = "BRANCH/TELLER";
  bt.pages_per_unit = DebitCreditIds::kBranchesPerUnit;  // clustered: 100 pages
  bt.blocking_factor = 1 + DebitCreditIds::kTellersPerBranch;
  bt.locked = true;
  bt.disks_per_unit = 6;
  bt.disk_cache_pages = 2000;  // Fig 4.4: holds all B/T pages up to N=10

  auto& acc = c.partitions[DebitCreditIds::kAccount];
  acc.name = "ACCOUNT";
  acc.pages_per_unit = DebitCreditIds::kBranchesPerUnit *
                       DebitCreditIds::kAccountsPerBranch /
                       DebitCreditIds::kAccountsPerPage;  // 1,000,000
  acc.blocking_factor = static_cast<int>(DebitCreditIds::kAccountsPerPage);
  acc.locked = true;
  acc.disks_per_unit = 8;

  auto& his = c.partitions[DebitCreditIds::kHistory];
  his.name = "HISTORY";
  his.pages_per_unit = 0;  // unbounded sequential file
  his.blocking_factor = 20;
  his.locked = false;  // end-of-file latch instead of page locks
  his.disks_per_unit = 6;

  return c;
}

}  // namespace gemsd
