#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <vector>

#include "cc/protocol.hpp"
#include "core/config.hpp"
#include "core/metrics.hpp"
#include "core/report.hpp"
#include "net/comm.hpp"
#include "net/network.hpp"
#include "node/buffer_manager.hpp"
#include "obs/audit.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "node/cpu.hpp"
#include "node/log_manager.hpp"
#include "node/transaction_manager.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "storage/gem_device.hpp"
#include "storage/storage_manager.hpp"
#include "workload/workload.hpp"

namespace gemsd::obs {
class EngProfiler;
class TimeSeriesRecorder;
class ResourceRecorder;
struct ResourceSet;
}

namespace gemsd {

/// A complete simulated database-sharing cluster: SOURCE, N processing nodes
/// (transaction manager, buffer manager, CPU set), the concurrency/coherency
/// protocol selected by the coupling mode, and the peripherals (GEM, disks,
/// network). Mirrors Fig. 3.1 of the paper.
class System {
 public:
  struct Workload {
    std::unique_ptr<workload::WorkloadGenerator> gen;
    std::unique_ptr<workload::Router> router;
    std::unique_ptr<workload::GlaMap> gla;  ///< required for PCL
    /// Optional arrival-rate modulation (scale_out's diurnal curve): the
    /// SOURCE multiplies the configured rate by factor(now). Unset (the
    /// default) keeps the constant-rate arrival stream byte-identical.
    std::function<double(sim::SimTime)> arrival_factor;
  };

  System(const SystemConfig& cfg, Workload wl);
  ~System();

  /// Run warm-up, reset statistics, run the measurement interval, and
  /// collect the results.
  RunResult run();

  /// Advance the simulation only (tests drive phases manually).
  void start_source();
  void run_until(sim::SimTime t);
  void reset_stats();
  RunResult collect() const;

  // component access (tests, examples)
  sim::Engine& engine() { return engine_; }
  sim::Scheduler& scheduler() { return sched_; }
  sim::Rng& rng() { return rng_; }
  Metrics& metrics() { return metrics_; }
  cc::Protocol& protocol() { return *protocol_; }
  node::BufferManager& buffer(NodeId n) { return *bufs_[static_cast<std::size_t>(n)]; }
  node::CpuSet& cpu(NodeId n) { return *cpus_[static_cast<std::size_t>(n)]; }
  node::TransactionManager& tm(NodeId n) { return *tms_[static_cast<std::size_t>(n)]; }
  node::LogManager& log(NodeId n) { return *logs_[static_cast<std::size_t>(n)]; }
  storage::StorageManager& storage() { return *storage_; }
  /// Shard 0 of the GEM authority (the whole device when gem_shards=1).
  storage::GemDevice& gem() { return storage_->gem(); }
  net::Network& network() { return *network_; }
  const SystemConfig& config() const { return cfg_; }

  // observability (null/empty unless enabled in cfg.obs)
  obs::TraceRecorder* trace() { return trace_.get(); }
  const std::vector<obs::Sample>& samples() const { return samples_; }
  const obs::SlowTxnLog& slow_log() const { return slow_log_; }
  obs::Auditor* auditor() { return audit_.get(); }
  obs::EngProfiler* engine_profiler() { return engprof_.get(); }
  obs::TimeSeriesRecorder* timeseries() { return ts_.get(); }
  obs::ResourceRecorder* resource_recorder() { return resrec_.get(); }

  /// Per-station operational snapshot over the current measurement horizon
  /// (obs/resources.hpp). Always available — the counters it reads are
  /// maintained unconditionally; with cfg.obs.resources the rows also carry
  /// the recorded wait sketches. Pure observation.
  obs::ResourceSet resource_snapshot() const;

  /// Inject one transaction directly (tests).
  void submit(NodeId node, workload::TxnSpec spec) {
    tms_[static_cast<std::size_t>(node)]->submit(std::move(spec), sched_.now());
  }

  // --- failure / recovery (Sections 1-2: availability) ---
  /// Crash node n at the current simulation time. In-flight transactions on
  /// it are lost; the SOURCE routes around it; recovery (detection, REDO of
  /// the pages it owned, GLA reconstruction under PCL) runs automatically
  /// and the node rejoins after cfg.failure.node_restart.
  void fail_node(NodeId n);
  bool node_up(NodeId n) const {
    return node_up_[static_cast<std::size_t>(n)];
  }

 private:
  sim::Task<void> source();
  sim::Task<void> recovery_process(NodeId n, sim::SimTime crash_time);
  /// Periodic telemetry probe (cfg.obs.sample_every > 0): reads counters and
  /// instantaneous device state, never mutates simulation state or draws
  /// random numbers — observation must not perturb results.
  sim::Task<void> sampler();
  /// --progress heartbeat: invoked from the scheduler's event loop every few
  /// thousand events; emits one stderr JSONL line when a wall-clock period
  /// has elapsed. Reads counters only — zero perturbation.
  void progress_tick();

  SystemConfig cfg_;
  /// The event kernel. The whole cluster model shares one sim::Rng consumed
  /// in global event order, and its GEM/CPU interactions are synchronous
  /// (zero lookahead — the defining property of close coupling), so the
  /// model is a single logical process: sched_ aliases that LP's scheduler
  /// and the engine degenerates to one inclusive window per run_until. The
  /// engine still owns execution so the backend (and its self-metrics) is
  /// uniform across single- and multi-LP models; see DESIGN.md.
  sim::Engine engine_;
  sim::Scheduler& sched_;
  sim::Rng rng_;
  Metrics metrics_;
  std::unique_ptr<storage::StorageManager> storage_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<net::Comm> comm_;
  std::vector<std::unique_ptr<node::CpuSet>> cpus_;
  std::vector<std::unique_ptr<node::BufferManager>> bufs_;
  std::vector<std::unique_ptr<node::LogManager>> logs_;
  std::unique_ptr<cc::Protocol> protocol_;
  std::vector<std::unique_ptr<node::TransactionManager>> tms_;
  Workload wl_;
  std::vector<bool> node_up_;
  std::unique_ptr<obs::TraceRecorder> trace_;
  std::unique_ptr<obs::Auditor> audit_;
  std::unique_ptr<obs::EngProfiler> engprof_;
  std::unique_ptr<obs::TimeSeriesRecorder> ts_;
  std::unique_ptr<obs::ResourceRecorder> resrec_;
  obs::SlowTxnLog slow_log_;
  std::vector<obs::Sample> samples_;
  sim::SimTime stats_start_ = 0;
  double run_wall_s_ = 0;          ///< wall-clock spent inside run_until
  std::uint64_t run_events_ = 0;   ///< events processed by those calls
  std::chrono::steady_clock::time_point progress_epoch_ =
      std::chrono::steady_clock::now();
  double progress_last_s_ = 0;     ///< wall time of the last heartbeat
  std::uint64_t progress_prev_events_ = 0;
  std::uint64_t progress_prev_commits_ = 0;
  sim::SimTime progress_prev_sim_ = 0;
  bool source_started_ = false;
  bool stats_reset_ = false;  ///< samples before the first reset are warm-up
  std::uint64_t recovery_ids_ = 0;
};

/// Convenience: a ready-to-run debit-credit system for the given config.
System::Workload make_debit_credit_workload(const SystemConfig& cfg);

/// Convenience: run one debit-credit experiment.
RunResult run_debit_credit(const SystemConfig& cfg);

}  // namespace gemsd
