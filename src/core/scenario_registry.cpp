// The compiled-in scenario registry: every paper figure (4.1-4.7, Table
// 4.1), every ablation, and the related-work/availability experiments as
// declarative entries. Grids, captions, and run order are exactly what the
// retired bench_*.cpp mains produced, so the committed results/BENCH_*.json
// baselines keep matching run-for-run.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "cc/lock_engine_protocol.hpp"
#include "cc/shard_map.hpp"
#include "core/scenario.hpp"
#include "core/system.hpp"
#include "obs/memory.hpp"
#include "workload/scale_out.hpp"
#include "workload/workload.hpp"

namespace gemsd {

namespace {

Dim routing_dim() {
  return Dim{"routing",
             {{"affinity",
               [](SystemConfig& c) { c.routing = Routing::Affinity; }},
              {"random",
               [](SystemConfig& c) { c.routing = Routing::Random; }}}};
}

Dim update_dim(bool group = false) {
  Dim d{"update",
        {{"NOFORCE",
          [](SystemConfig& c) { c.update = UpdateStrategy::NoForce; }},
         {"FORCE",
          [](SystemConfig& c) { c.update = UpdateStrategy::Force; }}}};
  d.group = group;
  return d;
}

Dim coupling_dim() {
  return Dim{"coupling",
             {{"GEM",
               [](SystemConfig& c) { c.coupling = Coupling::GemLocking; }},
              {"PCL",
               [](SystemConfig& c) { c.coupling = Coupling::PrimaryCopy; }}}};
}

// ---------------------------------------------------------------------------
// Custom-cell machinery for ablation_update_locks: a read-modify-write
// workload submitted directly (no arrival source), drained to completion.

PageId ul_page(std::int64_t n) { return PageId{0, n}; }

class ModGla : public workload::GlaMap {
 public:
  explicit ModGla(int nodes) : map_(cc::ShardMap::blocked(nodes)) {}
  NodeId gla(PageId p) const override {
    return static_cast<NodeId>(map_.shard_of_key(p.page));
  }

 private:
  cc::ShardMap map_;
};

struct NullGen : workload::WorkloadGenerator {
  workload::TxnSpec next(sim::Rng&) override { return {}; }
  int num_types() const override { return 1; }
};

void run_update_lock_cell(const SystemConfig& cfg, bool intent, int hot_pages,
                          int txns, BenchRun& b) {
  System::Workload wl;
  wl.gen = std::make_unique<NullGen>();
  wl.router = std::make_unique<workload::RandomRouter>(cfg.nodes);
  wl.gla = std::make_unique<ModGla>(cfg.nodes);
  System sys(cfg, std::move(wl));

  sim::Rng rng(4242);
  for (int i = 0; i < txns; ++i) {
    workload::TxnSpec t;
    const std::int64_t page = rng.uniform_int(0, hot_pages - 1);
    t.refs.push_back(workload::PageRef{ul_page(page), false, intent});
    t.refs.push_back(workload::PageRef{ul_page(page), true, false});
    sys.submit(static_cast<NodeId>(i % cfg.nodes), t);
  }
  sys.scheduler().run_all();
  b.result = sys.collect();
  b.extra.push_back(
      {"deadlocks", static_cast<double>(sys.metrics().deadlocks.value())});
  b.extra.push_back({"drain_ms", sys.scheduler().now() * 1e3});
}

// ---------------------------------------------------------------------------
// Sharded-GLT instrumentation shared by the scale_out family and shards_glt:
// queueing on the GEM lock/coherency servers, aggregated over every shard,
// plus the process memory footprint the scale-out budget gates on.

void push_shard_extras(System& sys, BenchRun& b) {
  auto& st = sys.storage();
  double queue = 0, wait_sum = 0;
  std::uint64_t waits = 0;
  for (int s = 0; s < st.gem_shards(); ++s) {
    const sim::Resource& r = st.gem(s).server();
    queue += r.mean_queue_length();
    wait_sum +=
        r.wait_stat().mean() * static_cast<double>(r.wait_stat().count());
    waits += r.wait_stat().count();
  }
  b.extra.push_back({"gem_shards", static_cast<double>(st.gem_shards())});
  b.extra.push_back({"glt_queue_mean", queue});
  b.extra.push_back(
      {"glt_wait_us",
       waits ? wait_sum / static_cast<double>(waits) * 1e6 : 0.0});
  b.extra.push_back(
      {"peak_rss_mb",
       static_cast<double>(obs::peak_rss_bytes()) / (1024.0 * 1024.0)});
}

void run_scale_out_cell(const SystemConfig& cfg, BenchRun& b) {
  const workload::ScaleOutSpec spec;  // family defaults; knobs in the header
  auto bundle = workload::make_scale_out_workload(cfg, spec);
  System::Workload wl;
  wl.gen = std::move(bundle.gen);
  wl.router = std::move(bundle.router);
  wl.gla = std::move(bundle.gla);
  wl.arrival_factor = std::move(bundle.arrival_factor);
  System sys(cfg, std::move(wl));
  b.result = sys.run();
  push_shard_extras(sys, b);
}

void print_shard_table(const ScenarioResult& res, const char* title) {
  std::printf("\n== %s ==\n", title);
  std::printf("%4s %7s | %9s %9s %9s %9s %9s %9s\n", "N", "shards",
              "resp[ms]", "tput", "gemUtil", "gltQueue", "wait[us]",
              "rss[MB]");
  for (const BenchRun& b : res.runs) {
    const RunResult& r = b.result;
    std::printf("%4d %7.0f | %9.2f %9.1f %8.2f%% %9.3f %9.2f %9.0f\n",
                r.nodes, extra_of(b, "gem_shards"), r.resp_ms, r.throughput,
                r.gem_util * 100, extra_of(b, "glt_queue_mean"),
                extra_of(b, "glt_wait_us"), extra_of(b, "peak_rss_mb"));
  }
}

/// Node counts for the scale-out family. Deliberately NOT a node axis
/// (DimValue::nodes): the CLI's --max-nodes cap defaults to 10 and would
/// silently drop every cell of a scenario whose whole point is 64-512 nodes.
/// The GLT shard count grows with the cluster (n/16, at least 4): a fixed
/// shard fleet saturates on page traffic around 200 nodes — scaling the
/// authority with the cluster is the point of the sharded core.
Dim scale_nodes_dim(std::vector<int> ns) {
  Dim d{"nodes", {}};
  for (int n : ns) {
    const int shards = std::max(4, n / 16);
    DimValue v;
    v.label = "n=" + std::to_string(n) + ",shards=" + std::to_string(shards);
    v.apply = [n, shards](SystemConfig& c) {
      c.nodes = n;
      c.gem.shards = shards;
    };
    d.values.push_back(std::move(v));
  }
  return d;
}

Dim shards_dim(std::vector<int> counts) {
  Dim d{"gem_shards", {}};
  for (int m : counts) {
    DimValue v;
    v.label = "shards=" + std::to_string(m);
    v.apply = [m](SystemConfig& c) { c.gem.shards = m; };
    d.values.push_back(std::move(v));
  }
  return d;
}

// ---------------------------------------------------------------------------

std::vector<Scenario> build_registry() {
  std::vector<Scenario> reg;

  {
    Scenario sc;
    sc.name = "table_4_1";
    sc.caption = "Table 4.1: parameter settings (debit-credit)";
    sc.doc = "Parameter settings of the debit-credit experiments, paper "
             "table vs instantiated values (print-only).";
    sc.exportable = false;
    sc.report = [] {
      const SystemConfig c = make_debit_credit_config();
      std::printf("== Table 4.1: parameter settings (debit-credit) ==\n");
      std::printf("%-28s %s\n", "number of nodes N",
                  "1 - 10 (per-scenario sweep)");
      std::printf("%-28s %.0f TPS per node\n", "arrival rate",
                  c.arrival_rate_per_node);
      std::printf("%-28s\n", "DB size (per 100 TPS):");
      for (const auto& p : c.partitions) {
        if (p.pages_per_unit > 0) {
          std::printf("  %-26s %lld pages, blocking factor %d%s\n",
                      p.name.c_str(),
                      static_cast<long long>(p.pages_per_unit),
                      p.blocking_factor,
                      p.name == "BRANCH/TELLER" ? " (clustered)" : "");
        } else {
          std::printf("  %-26s sequential file, blocking factor %d\n",
                      p.name.c_str(), p.blocking_factor);
        }
      }
      std::printf("%-28s %.0f instructions per transaction\n", "path length",
                  c.path.bot_instr + 4 * c.path.per_ref_instr +
                      c.path.eot_instr);
      std::printf("%-28s BOT %.0f + 4 x %.0f per record + EOT %.0f\n", "",
                  c.path.bot_instr, c.path.per_ref_instr, c.path.eot_instr);
      std::printf(
          "%-28s page locks for BRANCH/TELLER, ACCOUNT; none for HISTORY\n",
          "lock mode");
      std::printf("%-28s %d processors of %.0f MIPS each\n", "CPU capacity",
                  c.cpu.processors, c.cpu.mips);
      std::printf("%-28s %d pages per node (1000 in large-buffer runs)\n",
                  "DB buffer size", c.buffer_pages);
      std::printf("%-28s %d server, %.0f us/page, %.0f us/entry\n",
                  "GEM parameters", c.gem.servers, c.gem.page_access * 1e6,
                  c.gem.entry_access * 1e6);
      std::printf(
          "%-28s %.0f MB/s; %.0f instr per short, %.0f per long send/recv\n",
          "communication", c.comm.bandwidth / 1e6, c.comm.short_instr,
          c.comm.long_instr);
      std::printf("%-28s %.0f instructions per page (GEM: %.0f)\n",
                  "I/O overhead", c.disk.io_instr, c.gem.io_instr);
      std::printf("%-28s %.0f ms DB disks; %.0f ms log disks\n",
                  "avg disk access time", c.disk.db_disk * 1e3,
                  c.disk.log_disk * 1e3);
      std::printf("%-28s controller %.0f ms; transfer %.1f ms/page\n",
                  "other I/O delays", c.disk.controller * 1e3,
                  c.disk.transfer * 1e3);
      std::printf("%-28s %d per node\n", "multiprogramming level", c.mpl);
    };
    reg.push_back(std::move(sc));
  }

  {
    Scenario sc;
    sc.name = "fig_4_1";
    sc.caption =
        "Fig 4.1: GEM locking - routing x update strategy (buffer 200)";
    sc.doc = "Influence of workload allocation and update strategy for GEM "
             "locking, debit-credit, 100 TPS/node, buffer 200.";
    sc.tweak = [](SystemConfig& c) {
      c.coupling = Coupling::GemLocking;
      c.buffer_pages = 200;
    };
    sc.dims = {routing_dim(), update_dim(),
               node_dim({1, 2, 3, 5, 7, 10})};
    reg.push_back(std::move(sc));
  }

  {
    Scenario sc;
    sc.name = "fig_4_2";
    sc.caption =
        "Fig 4.2: influence of buffer size (random routing, GEM locking)";
    sc.doc = "Buffer 200 vs 1000 pages per node under random routing, FORCE "
             "and NOFORCE.";
    sc.tweak = [](SystemConfig& c) {
      c.coupling = Coupling::GemLocking;
      c.routing = Routing::Random;
    };
    sc.dims = {update_dim(),
               Dim{"buffer",
                   {{"buf=200",
                     [](SystemConfig& c) { c.buffer_pages = 200; }},
                    {"buf=1000",
                     [](SystemConfig& c) { c.buffer_pages = 1000; }}}},
               node_dim({1, 2, 3, 5, 7, 10})};
    reg.push_back(std::move(sc));
  }

  {
    Scenario sc;
    sc.name = "fig_4_3";
    sc.caption =
        "Fig 4.3: B/T on disk vs GEM, NOFORCE and FORCE (buffer 1000)";
    sc.doc = "Storage allocation for the hot BRANCH/TELLER partition: "
             "magnetic disk vs GEM residence, per update strategy.";
    sc.tweak = [](SystemConfig& c) {
      c.coupling = Coupling::GemLocking;
      c.buffer_pages = 1000;
    };
    sc.dims = {update_dim(/*group=*/true),
               Dim{"bt_storage",
                   {{"B/T disk",
                     [](SystemConfig& c) {
                       c.partitions[DebitCreditIds::kBranchTeller].storage =
                           StorageKind::Disk;
                     }},
                    {"B/T GEM",
                     [](SystemConfig& c) {
                       c.partitions[DebitCreditIds::kBranchTeller].storage =
                           StorageKind::Gem;
                     }}}},
               routing_dim(), node_dim({1, 2, 3, 5, 7, 10})};
    sc.group_title = [](const std::vector<std::string>& labels) {
      return std::string("Fig 4.3") +
             (labels[0] == "NOFORCE" ? "a (NOFORCE)" : "b (FORCE)") +
             ": B/T on disk (first half) vs GEM (second half), buffer 1000";
    };
    reg.push_back(std::move(sc));
  }

  {
    Scenario sc;
    sc.name = "fig_4_4";
    sc.caption =
        "Fig 4.4: disk caches for BRANCH/TELLER (FORCE, buffer 1000)";
    sc.doc = "Plain disk vs volatile/non-volatile disk cache vs GEM "
             "residence for B/T under FORCE.";
    sc.tweak = [](SystemConfig& c) {
      c.coupling = Coupling::GemLocking;
      c.update = UpdateStrategy::Force;
      c.buffer_pages = 1000;
    };
    auto bt_storage = [](StorageKind k) {
      return [k](SystemConfig& c) {
        c.partitions[DebitCreditIds::kBranchTeller].storage = k;
      };
    };
    sc.dims = {Dim{"bt_storage",
                   {{"disk", bt_storage(StorageKind::Disk)},
                    {"disk+vcache",
                     bt_storage(StorageKind::DiskVolatileCache)},
                    {"disk+nvcache", bt_storage(StorageKind::DiskNvCache)},
                    {"GEM", bt_storage(StorageKind::Gem)}}},
               routing_dim(), node_dim({1, 2, 3, 5, 7, 10})};
    sc.note_pre =
        "B/T storage per block: disk, disk+vcache, disk+nvcache, "
        "GEM (affinity then random within each)";
    reg.push_back(std::move(sc));
  }

  {
    Scenario sc;
    sc.name = "fig_4_5";
    sc.caption = "Fig 4.5: PCL vs GEM locking, buffer x update strategy";
    sc.doc = "Primary Copy Locking (loose coupling) vs GEM locking across "
             "buffer sizes, update strategies, and routing.";
    Dim buf{"buffer",
            {{"200", [](SystemConfig& c) { c.buffer_pages = 200; }},
             {"1000", [](SystemConfig& c) { c.buffer_pages = 1000; }}}};
    buf.group = true;
    sc.dims = {buf, update_dim(/*group=*/true), coupling_dim(),
               routing_dim(), node_dim({1, 2, 3, 5, 7, 10})};
    sc.group_title = [](const std::vector<std::string>& labels) {
      return "Fig 4.5: PCL vs GEM locking (" + labels[1] + ", buffer " +
             labels[0] + ")";
    };
    reg.push_back(std::move(sc));
  }

  {
    Scenario sc;
    sc.name = "fig_4_6";
    sc.caption =
        "Fig 4.6: transaction rate per node at 80% CPU utilization "
        "(buffer 1000)";
    sc.doc = "Throughput per node at 80% CPU utilization, PCL vs GEM "
             "locking, both routings.";
    sc.tweak = [](SystemConfig& c) { c.buffer_pages = 1000; };
    sc.dims = {coupling_dim(), update_dim(), routing_dim(),
               node_dim({1, 2, 5, 10})};
    sc.table = [](const ScenarioResult& res, const BenchOptions&) {
      std::printf(
          "\n== Fig 4.6: transaction rate per node at 80%% CPU "
          "utilization (buffer 1000) ==\n");
      std::printf("%-12s %-9s %-9s | %5s %7s %7s %9s\n", "coupling",
                  "update", "routing", "N", "cpuMax", "msg/tx",
                  "TPS@80/node");
      for (const BenchRun& b : res.runs) {
        const RunResult& r = b.result;
        std::printf("%-12s %-9s %-9s | %5d %6.1f%% %7.2f %9.1f\n",
                    to_string(r.coupling), to_string(r.update),
                    to_string(r.routing), r.nodes, r.cpu_util_max * 100,
                    r.messages_per_txn, r.tps_per_node_at_80);
      }
    };
    reg.push_back(std::move(sc));
  }

  {
    Scenario sc;
    sc.name = "fig_4_7";
    sc.caption =
        "Fig 4.7: PCL vs GEM locking, real-life (synthetic) trace "
        "(50 TPS, buffer 1000, NOFORCE)";
    sc.doc = "Trace-driven workload, PCL (with read optimization) vs GEM "
             "locking, 1-8 nodes.";
    sc.workload = Scenario::WorkloadKind::Trace;
    sc.dims = {coupling_dim(), routing_dim(), node_dim({1, 2, 4, 6, 8})};
    sc.table = [](const ScenarioResult& res, const BenchOptions&) {
      std::printf(
          "\n== Fig 4.7: PCL vs GEM locking, real-life (synthetic) trace "
          "(50 TPS, buffer 1000, NOFORCE) ==\n");
      std::printf("%-12s %-9s | %2s %9s %9s %7s %7s %7s %7s %9s\n",
                  "coupling", "routing", "N", "resp[ms]", "norm[ms]",
                  "cpuAvg", "cpuMax", "locLck", "msg/tx", "TPS@80/nd");
      for (const BenchRun& b : res.runs) {
        const RunResult& r = b.result;
        std::printf(
            "%-12s %-9s | %2d %9.2f %9.2f %6.1f%% %6.1f%% %6.1f%% "
            "%7.2f %9.1f\n",
            to_string(r.coupling), to_string(r.routing), r.nodes, r.resp_ms,
            r.resp_norm_ms * 57.0, r.cpu_util * 100, r.cpu_util_max * 100,
            r.local_lock_fraction * 100, r.messages_per_txn,
            r.tps_per_node_at_80);
      }
    };
    reg.push_back(std::move(sc));
  }

  {
    Scenario sc;
    sc.name = "ablation_gem_speed";
    sc.caption =
        "Ablation: GEM entry access time (GEM locking, random routing, "
        "NOFORCE, buffer 200)";
    sc.doc = "How fast must the global store be for GEM locking to stay "
             "essentially free? Sweeps the entry access time 2-500 us.";
    sc.tweak = [](SystemConfig& c) {
      c.coupling = Coupling::GemLocking;
      c.routing = Routing::Random;
      c.update = UpdateStrategy::NoForce;
    };
    Dim entry{"entry_us", {}};
    for (double us : {2.0, 20.0, 100.0, 250.0, 500.0}) {
      DimValue v;
      v.label = "entry=" + std::to_string(static_cast<int>(us)) + "us";
      v.apply = [us](SystemConfig& c) { c.gem.entry_access = us * 1e-6; };
      v.extra = {{"entry_us", us}};
      entry.values.push_back(std::move(v));
    }
    sc.dims = {node_dim({5, 10}), entry};
    sc.table = [](const ScenarioResult& res, const BenchOptions&) {
      std::printf(
          "\n== Ablation: GEM entry access time (GEM locking, random "
          "routing, NOFORCE, buffer 200) ==\n");
      std::printf("%5s %12s | %9s %8s %8s %9s\n", "N", "entry[us]",
                  "resp[ms]", "gemUtil", "cpu", "tps");
      for (const BenchRun& b : res.runs) {
        const RunResult& r = b.result;
        std::printf("%5d %12.0f | %9.2f %7.2f%% %7.1f%% %9.1f\n", r.nodes,
                    extra_of(b, "entry_us"), r.resp_ms, r.gem_util * 100,
                    r.cpu_util * 100, r.throughput);
      }
    };
    sc.note =
        "Paper context: GEM locking at 2 us/entry kept GEM utilization "
        "< 2% at 1000 TPS; [Yu87]-class lock engines (100-500 us) "
        "saturate the shared facility long before that.";
    reg.push_back(std::move(sc));
  }

  {
    Scenario sc;
    sc.name = "ablation_msg_cost";
    sc.caption =
        "Ablation: message CPU cost (PCL vs GEM, random routing, NOFORCE, "
        "buffer 200)";
    sc.doc = "Sweeps the per-message CPU instruction charge to find where "
             "loose coupling would catch up with GEM locking.";
    sc.tweak = [](SystemConfig& c) {
      c.coupling = Coupling::GemLocking;
      c.routing = Routing::Random;
    };
    Dim variant{"variant",
                {{"GEM locking", [](SystemConfig&) {}}}};
    for (double instr : {5000.0, 2500.0, 1000.0, 250.0}) {
      DimValue v;
      v.label = "PCL instr=" + std::to_string(static_cast<int>(instr));
      v.apply = [instr](SystemConfig& c) {
        c.coupling = Coupling::PrimaryCopy;
        c.comm.short_instr = instr;
        c.comm.long_instr = instr * 8.0 / 5.0;  // keep the paper's ratio
      };
      variant.values.push_back(std::move(v));
    }
    sc.dims = {node_dim({10}, /*clamp=*/true), variant};
    sc.table = [](const ScenarioResult& res, const BenchOptions&) {
      if (res.runs.empty()) return;
      const RunResult& gem = res.runs.front().result;
      std::printf(
          "\n== Ablation: message CPU cost (PCL vs GEM, random routing, "
          "NOFORCE, N=%d, buffer 200) ==\n",
          gem.nodes);
      std::printf("GEM locking baseline: resp %.2f ms, tps80/node %.1f\n\n",
                  gem.resp_ms, gem.tps_per_node_at_80);
      std::printf("%14s | %9s %8s %8s %9s\n", "instr/short", "resp[ms]",
                  "cpu", "cpuMax", "tps80/nd");
      for (std::size_t i = 1; i < res.runs.size(); ++i) {
        const BenchRun& b = res.runs[i];
        const RunResult& r = b.result;
        std::printf("%14.0f | %9.2f %7.1f%% %7.1f%% %9.1f\n",
                    b.config.comm.short_instr, r.resp_ms, r.cpu_util * 100,
                    r.cpu_util_max * 100, r.tps_per_node_at_80);
      }
    };
    reg.push_back(std::move(sc));
  }

  {
    Scenario sc;
    sc.name = "ablation_read_opt";
    sc.caption =
        "Ablation: PCL read optimization (trace workload, 50 TPS/node, "
        "NOFORCE)";
    sc.doc = "Local-lock share with and without PCL read authorizations on "
             "the read-dominated trace workload.";
    sc.workload = Scenario::WorkloadKind::Trace;
    sc.tweak = [](SystemConfig& c) { c.coupling = Coupling::PrimaryCopy; };
    sc.dims = {Dim{"read_opt",
                   {{"readOpt=off",
                     [](SystemConfig& c) { c.pcl_read_optimization = false; },
                     -1, 0.0, {{"read_opt", 0.0}}},
                    {"readOpt=on",
                     [](SystemConfig& c) { c.pcl_read_optimization = true; },
                     -1, 0.0, {{"read_opt", 1.0}}}}},
               routing_dim(), node_dim({2, 4, 8})};
    sc.table = [](const ScenarioResult& res, const BenchOptions&) {
      std::printf(
          "\n== Ablation: PCL read optimization (trace workload, "
          "50 TPS/node, NOFORCE) ==\n");
      std::printf("%-9s %-9s %2s | %8s %9s %7s %8s\n", "readOpt", "routing",
                  "N", "locLck", "resp[ms]", "msg/tx", "rev/tx");
      for (const BenchRun& b : res.runs) {
        const RunResult& r = b.result;
        std::printf("%-9s %-9s %2d | %7.1f%% %9.1f %7.2f %8.3f\n",
                    extra_of(b, "read_opt") != 0 ? "on" : "off",
                    to_string(r.routing), r.nodes,
                    r.local_lock_fraction * 100, r.resp_ms,
                    r.messages_per_txn, r.revocations_per_txn);
      }
    };
    reg.push_back(std::move(sc));
  }

  {
    Scenario sc;
    sc.name = "ablation_force_writes";
    sc.caption =
        "Ablation: removing FORCE's remaining write delays (GEM locking, "
        "random routing, buffer 1000)";
    sc.doc = "Cumulatively strips each class of synchronous write delay "
             "from the FORCE configuration (Section 4.4's closing remark).";
    sc.tweak = [](SystemConfig& c) {
      c.coupling = Coupling::GemLocking;
      c.update = UpdateStrategy::Force;
      c.routing = Routing::Random;
      c.buffer_pages = 1000;
    };
    auto bt_gem = [](SystemConfig& c) {
      c.partitions[DebitCreditIds::kBranchTeller].storage = StorageKind::Gem;
    };
    auto nv_caches = [bt_gem](SystemConfig& c) {
      bt_gem(c);
      auto& acc = c.partitions[DebitCreditIds::kAccount];
      acc.storage = StorageKind::DiskNvCache;
      acc.disk_cache_pages = 20000;  // write-absorbing working store
      auto& his = c.partitions[DebitCreditIds::kHistory];
      his.storage = StorageKind::DiskNvCache;
      his.disk_cache_pages = 5000;
    };
    Dim step{"step",
             {{"all on plain disks", [](SystemConfig&) {}, -1, 0.0,
               {{"step", 0.0}}},
              {"+ B/T in GEM (Fig 4.3b)", bt_gem, -1, 0.0, {{"step", 1.0}}},
              {"+ NV cache on ACCOUNT+HISTORY (Sec 4.4)", nv_caches, -1,
               0.0, {{"step", 2.0}}},
              {"+ log in GEM",
               [nv_caches](SystemConfig& c) {
                 nv_caches(c);
                 c.log_storage = StorageKind::Gem;
               },
               -1, 0.0, {{"step", 3.0}}}}};
    sc.dims = {node_dim({5}, /*clamp=*/true), step};
    sc.table = [](const ScenarioResult& res, const BenchOptions&) {
      if (res.runs.empty()) return;
      std::printf(
          "\n== Ablation: removing FORCE's remaining write delays "
          "(GEM locking, random routing, buffer 1000, N=%d) ==\n",
          res.runs.front().result.nodes);
      std::printf("%-44s %9s %8s\n", "configuration", "resp[ms]", "fW/tx");
      for (std::size_t i = 0; i < res.runs.size(); ++i) {
        const std::size_t step =
            res.plan.cells[i].value_idx.size() > 1
                ? res.plan.cells[i].value_idx[1]
                : 0;
        static const char* kLabels[] = {
            "all on plain disks", "+ B/T in GEM (Fig 4.3b)",
            "+ NV cache on ACCOUNT+HISTORY (Sec 4.4)", "+ log in GEM"};
        std::printf("%-44s %9.2f %8.2f\n", kLabels[step % 4],
                    res.runs[i].result.resp_ms,
                    res.runs[i].result.force_writes_per_txn);
      }
    };
    sc.note =
        "Expected shape: each step strips one class of synchronous "
        "write delay; the final configuration approaches NOFORCE-class "
        "response times, the paper's conclusion that FORCE becomes "
        "viable when force-writes go to non-volatile semiconductor "
        "memory.";
    reg.push_back(std::move(sc));
  }

  {
    Scenario sc;
    sc.name = "ablation_gem_msg";
    sc.caption =
        "Ablation: messages across GEM vs network (debit-credit, random "
        "routing, NOFORCE, buffer 1000)";
    sc.doc = "Storage-based communication (Section 2): PCL over the "
             "network vs PCL through GEM vs full GEM locking.";
    sc.tweak = [](SystemConfig& c) {
      c.routing = Routing::Random;
      c.update = UpdateStrategy::NoForce;
      c.buffer_pages = 1000;
    };
    auto variant = [](Coupling cp, MsgTransport tr) {
      return [cp, tr](SystemConfig& c) {
        c.coupling = cp;
        c.comm.transport = tr;
      };
    };
    sc.dims = {node_dim({2, 5, 10}),
               Dim{"variant",
                   {{"PCL / network msgs",
                     variant(Coupling::PrimaryCopy, MsgTransport::Network)},
                    {"PCL / GEM msgs",
                     variant(Coupling::PrimaryCopy, MsgTransport::GemStore)},
                    {"GEM locking",
                     variant(Coupling::GemLocking,
                             MsgTransport::Network)}}}};
    sc.table = [](const ScenarioResult& res, const BenchOptions&) {
      std::printf(
          "\n== Ablation: messages across GEM vs network (debit-credit, "
          "random routing, NOFORCE, buffer 1000) ==\n");
      std::printf("%-26s %3s | %9s %7s %7s %7s %9s\n", "configuration", "N",
                  "resp[ms]", "cpu", "gem", "net", "tps80/nd");
      for (const BenchRun& b : res.runs) {
        const RunResult& r = b.result;
        const char* label =
            r.coupling == Coupling::GemLocking ? "GEM locking"
            : b.config.comm.transport == MsgTransport::GemStore
                ? "PCL / GEM msgs"
                : "PCL / network msgs";
        std::printf("%-26s %3d | %9.2f %6.1f%% %6.2f%% %6.1f%% %9.1f\n",
                    label, r.nodes, r.resp_ms, r.cpu_util * 100,
                    r.gem_util * 100, r.net_util * 100,
                    r.tps_per_node_at_80);
      }
    };
    sc.note =
        "Expected shape: GEM messaging removes most of PCL's CPU "
        "overhead and delay, landing between loose coupling and GEM "
        "locking — the paper's Section 2 claim.";
    reg.push_back(std::move(sc));
  }

  {
    Scenario sc;
    sc.name = "ablation_gem_cache";
    sc.caption =
        "Ablation: GEM page cache vs alternatives for B/T (FORCE, random "
        "routing, buffer 1000)";
    sc.doc = "GEM as a global page cache (the SIM [DDY91] usage form) "
             "against disk caches and full GEM residence.";
    sc.tweak = [](SystemConfig& c) {
      c.coupling = Coupling::GemLocking;
      c.update = UpdateStrategy::Force;
      c.routing = Routing::Random;
      c.buffer_pages = 1000;
      c.partitions[DebitCreditIds::kBranchTeller].gem_cache_pages =
          2000;  // holds the whole B/T partition
    };
    auto bt_storage = [](StorageKind k) {
      return [k](SystemConfig& c) {
        c.partitions[DebitCreditIds::kBranchTeller].storage = k;
      };
    };
    sc.dims = {node_dim({2, 5, 10}),
               Dim{"bt_storage",
                   {{"disk", bt_storage(StorageKind::Disk)},
                    {"disk+nvcache", bt_storage(StorageKind::DiskNvCache)},
                    {"disk+gemcache",
                     bt_storage(StorageKind::DiskGemCache)},
                    {"GEM", bt_storage(StorageKind::Gem)}}}};
    sc.table = [](const ScenarioResult& res, const BenchOptions&) {
      std::printf(
          "\n== Ablation: GEM page cache vs alternatives for B/T "
          "(FORCE, random routing, buffer 1000) ==\n");
      std::printf("%-18s %3s | %9s %8s %8s %8s\n", "B/T allocation", "N",
                  "resp[ms]", "gemUtil", "hit:B/T", "fW/tx");
      for (const BenchRun& b : res.runs) {
        const RunResult& r = b.result;
        const StorageKind k =
            b.config.partitions[DebitCreditIds::kBranchTeller].storage;
        std::printf("%-18s %3d | %9.2f %7.2f%% %7.1f%% %8.2f\n",
                    to_string(k), r.nodes, r.resp_ms, r.gem_util * 100,
                    (r.hit_ratio.empty() ? 0 : r.hit_ratio[0]) * 100,
                    r.force_writes_per_txn);
      }
    };
    sc.note =
        "Expected shape: the GEM page cache matches the non-volatile "
        "disk cache and the GEM residence (all three absorb the "
        "force-write and serve misses from the global store) — i.e. "
        "the [DDY91] response-time gains are an I/O effect available "
        "to any non-volatile intermediate memory, exactly the paper's "
        "related-work argument.";
    reg.push_back(std::move(sc));
  }

  {
    Scenario sc;
    sc.name = "ablation_gem_auth";
    sc.caption =
        "Ablation: GEM local read authorizations (trace workload, "
        "50 TPS/node, NOFORCE, affinity routing)";
    sc.doc = "What the Sections 2/3.2 read-authorization refinement buys "
             "on the lock-heavy trace workload.";
    sc.workload = Scenario::WorkloadKind::Trace;
    sc.tweak = [](SystemConfig& c) {
      c.coupling = Coupling::GemLocking;
      c.routing = Routing::Affinity;
    };
    sc.dims = {Dim{"auths",
                   {{"auths=off",
                     [](SystemConfig& c) {
                       c.gem_read_authorizations = false;
                     },
                     -1, 0.0, {{"auths", 0.0}}},
                    {"auths=on",
                     [](SystemConfig& c) {
                       c.gem_read_authorizations = true;
                     },
                     -1, 0.0, {{"auths", 1.0}}}}},
               node_dim({2, 4, 8})};
    sc.probe = [](System& sys, BenchRun& b) {
      b.extra.push_back(
          {"glt_locks",
           static_cast<double>(sys.metrics().lock_local.value())});
      b.extra.push_back(
          {"auth_locks",
           static_cast<double>(sys.metrics().lock_auth_local.value())});
    };
    sc.table = [](const ScenarioResult& res, const BenchOptions&) {
      std::printf(
          "\n== Ablation: GEM local read authorizations (trace workload, "
          "50 TPS/node, NOFORCE, affinity routing) ==\n");
      std::printf("%-6s %2s | %9s %9s %9s %8s %8s\n", "auths", "N",
                  "resp[ms]", "gltLocks", "authLocks", "gemUtil", "rev/tx");
      for (const BenchRun& b : res.runs) {
        const RunResult& r = b.result;
        const double per_txn =
            r.commits ? 1.0 / static_cast<double>(r.commits) : 0;
        std::printf("%-6s %2d | %9.1f %9.2f %9.2f %7.2f%% %8.3f\n",
                    extra_of(b, "auths") != 0 ? "on" : "off", r.nodes,
                    r.resp_ms, extra_of(b, "glt_locks") * per_txn,
                    extra_of(b, "auth_locks") * per_txn, r.gem_util * 100,
                    r.revocations_per_txn);
      }
    };
    sc.note =
        "Expected shape: authorizations shift most of the ~58 GLT "
        "lock operations per transaction to local processing, cutting "
        "GEM utilization; response times barely move (GLT access was "
        "already cheap) — confirming why the paper could afford to "
        "skip the refinement in its experiments.";
    reg.push_back(std::move(sc));
  }

  {
    Scenario sc;
    sc.name = "ablation_update_locks";
    sc.caption =
        "Ablation: update-mode locks vs R->W upgrades "
        "(read-modify-write, 800 txns, 4 nodes)";
    sc.doc = "Update-mode (U) locks against plain read->write upgrades "
             "under a deadlock-prone read-modify-write workload.";
    sc.exportable = false;  // custom workload, drained by transaction count
    sc.stamp_time = false;
    sc.stamp_seed = false;
    sc.base = [] {
      SystemConfig cfg;
      cfg.nodes = 4;
      cfg.update = UpdateStrategy::NoForce;
      cfg.buffer_pages = 64;
      cfg.mpl = 400;
      cfg.partitions.resize(1);
      cfg.partitions[0].name = "T";
      cfg.partitions[0].pages_per_unit = 4096;
      cfg.partitions[0].locked = true;
      cfg.partitions[0].disks_per_unit = 16;
      return cfg;
    };
    Dim hot{"hotset", {}};
    for (int h : {4, 32, 256}) {
      DimValue v;
      v.label = "hot=" + std::to_string(h);
      v.param = h;
      v.extra = {{"hot_pages", static_cast<double>(h)}};
      hot.values.push_back(std::move(v));
    }
    sc.dims = {coupling_dim(), hot,
               Dim{"mode",
                   {{"R->W", nullptr, -1, 0.0, {{"update_mode_locks", 0.0}}},
                    {"U", nullptr, -1, 1.0, {{"update_mode_locks", 1.0}}}}}};
    sc.cell = [](const SystemConfig& cfg, const ScenarioCell& cell,
                 BenchRun& b) {
      run_update_lock_cell(cfg, /*intent=*/cell.params[2] != 0,
                           /*hot_pages=*/static_cast<int>(cell.params[1]),
                           /*txns=*/800, b);
    };
    sc.table = [](const ScenarioResult& res, const BenchOptions&) {
      std::printf(
          "\n== Ablation: update-mode locks vs R->W upgrades "
          "(read-modify-write, 800 txns, 4 nodes) ==\n");
      std::printf("%-5s %-8s %9s | %10s %9s %10s\n", "mode", "locking",
                  "hotset", "deadlocks", "resp[ms]", "drain[ms]");
      for (const BenchRun& b : res.runs) {
        std::printf("%-5s %-8s %9.0f | %10.0f %9.1f %10.0f\n",
                    extra_of(b, "update_mode_locks") != 0 ? "U" : "R->W",
                    to_string(b.config.coupling), extra_of(b, "hot_pages"),
                    extra_of(b, "deadlocks"), b.result.resp_ms,
                    extra_of(b, "drain_ms"));
      }
    };
    sc.note =
        "Expected shape: U locks eliminate upgrade deadlocks at every "
        "contention level; the R->W variant thrashes (aborts/restarts) "
        "as the hot set shrinks.";
    reg.push_back(std::move(sc));
  }

  {
    Scenario sc;
    sc.name = "related_lock_engine";
    sc.caption =
        "Related work: central lock engine [Yu87] vs GEM locking "
        "(debit-credit, FORCE, random routing, buffer 1000)";
    sc.doc = "The [Yu87] central lock engine (100-500 us per lock op) "
             "against GEM locking and PCL.";
    sc.tweak = [](SystemConfig& c) {
      c.update = UpdateStrategy::Force;
      c.routing = Routing::Random;
      c.buffer_pages = 1000;
    };
    Dim variant{"variant",
                {{"GEM",
                  [](SystemConfig& c) { c.coupling = Coupling::GemLocking; }},
                 {"PCL",
                  [](SystemConfig& c) {
                    c.coupling = Coupling::PrimaryCopy;
                  }}}};
    for (double us : {100.0, 200.0, 500.0}) {
      DimValue v;
      v.label = "ENGINE " + std::to_string(static_cast<int>(us)) + "us/op";
      v.apply = [us](SystemConfig& c) {
        c.coupling = Coupling::LockEngine;
        c.lock_engine_service = us * 1e-6;
      };
      v.extra = {{"service_us", us}};
      variant.values.push_back(std::move(v));
    }
    sc.dims = {node_dim({2, 5, 10}), variant};
    sc.probe = [](System& sys, BenchRun& b) {
      if (b.config.coupling == Coupling::LockEngine) {
        b.extra.push_back(
            {"engine_util",
             static_cast<cc::LockEngineProtocol&>(sys.protocol())
                 .engine_utilization()});
      }
    };
    sc.table = [](const ScenarioResult& res, const BenchOptions&) {
      std::printf(
          "\n== Related work: central lock engine [Yu87] vs GEM locking "
          "(debit-credit, FORCE, random routing, buffer 1000) ==\n");
      std::printf("%-22s %3s | %9s %8s %9s %9s\n", "coupling", "N",
                  "resp[ms]", "engine", "tps", "msg/tx");
      for (const BenchRun& b : res.runs) {
        const RunResult& r = b.result;
        if (b.config.coupling != Coupling::LockEngine) {
          std::printf("%-22s %3d | %9.2f %8s %9.1f %9.2f\n",
                      to_string(r.coupling), r.nodes, r.resp_ms, "-",
                      r.throughput, r.messages_per_txn);
        } else {
          std::printf("ENGINE %3.0fus/op       %3d | %9.2f %7.1f%% %9.1f "
                      "%9.2f\n",
                      extra_of(b, "service_us"), r.nodes, r.resp_ms,
                      extra_of(b, "engine_util") * 100, r.throughput,
                      r.messages_per_txn);
        }
      }
    };
    sc.note =
        "Expected shape: the single engine server saturates as N "
        "grows (utilization -> 100%, throughput flattens below the "
        "offered load, response times blow up), earliest for the "
        "500 us service time — while GEM locking's 2 us entries stay "
        "below 2% utilization at 1000 TPS.";
    reg.push_back(std::move(sc));
  }

  {
    Scenario sc;
    sc.name = "availability";
    sc.caption =
        "Availability: node 1 of 4 crashes at t=10s (debit-credit, "
        "NOFORCE, affinity, 100 TPS/node)";
    sc.doc = "Crash one of four nodes mid-run and track the committed-"
             "transaction timeline through detection, recovery, rejoin.";
    sc.exportable = false;  // failure-injection timeline, not a plain sweep
    sc.stamp_time = false;  // the cell drives the clock itself
    sc.tweak = [](SystemConfig& c) {
      c.nodes = 4;
      c.update = UpdateStrategy::NoForce;
      c.routing = Routing::Affinity;
    };
    sc.dims = {coupling_dim()};
    sc.cell = [](const SystemConfig& cfg, const ScenarioCell&, BenchRun& b) {
      const double kFailAt = 10.0, kEnd = 22.0, kBucket = 1.0;
      System sys(cfg, make_debit_credit_workload(cfg));
      sys.start_source();
      std::vector<double> buckets;
      std::uint64_t last = 0;
      bool failed = false;
      for (double t = kBucket; t <= kEnd + 1e-9; t += kBucket) {
        if (!failed && t > kFailAt) {
          sys.run_until(kFailAt);
          sys.fail_node(1);
          failed = true;
        }
        sys.run_until(t);
        const auto now = sys.metrics().commits.value();
        buckets.push_back(static_cast<double>(now - last) / kBucket);
        last = now;
      }
      b.extra.push_back(
          {"lost_txns",
           static_cast<double>(sys.metrics().lost_txns.value())});
      b.extra.push_back({"recovery_s",
                         sys.metrics().recovery_time.count()
                             ? sys.metrics().recovery_time.mean()
                             : 0.0});
      for (std::size_t i = 0; i < buckets.size(); ++i) {
        b.extra.push_back(
            {"commits_per_s_t" + std::to_string(i + 1), buckets[i]});
      }
      b.result = sys.collect();
    };
    sc.table = [](const ScenarioResult& res, const BenchOptions&) {
      const double kFailAt = 10.0, kBucket = 1.0;
      std::printf(
          "\n== Availability: node 1 of 4 crashes at t=%.0fs "
          "(debit-credit, NOFORCE, affinity, 100 TPS/node) ==\n",
          kFailAt);
      std::printf(
          "GLA rebuild (PCL) 2 s, node restart 5 s, detection 100 ms.\n\n");
      std::printf("%5s", "t[s]");
      for (const BenchRun& b : res.runs) {
        std::printf(" %12s", to_string(b.config.coupling));
      }
      std::printf("   (committed txns per second bucket)\n");
      for (std::size_t bkt = 1;; ++bkt) {
        const std::string key = "commits_per_s_t" + std::to_string(bkt);
        if (res.runs.empty() || extra_of(res.runs[0], key, -1) < 0) break;
        std::printf("%5.0f", static_cast<double>(bkt) * kBucket);
        for (const BenchRun& b : res.runs) {
          std::printf(" %12.0f", extra_of(b, key));
        }
        std::printf("%s\n", static_cast<double>(bkt) * kBucket ==
                                    kFailAt + 1
                                ? "   <- crash window"
                                : "");
      }
      if (res.runs.size() >= 2) {
        std::printf(
            "\nlost in-flight txns: GEM %.0f, PCL %.0f; "
            "recovery (detect+redo[+rebuild]): GEM %.2fs, PCL %.2fs\n",
            extra_of(res.runs[0], "lost_txns"),
            extra_of(res.runs[1], "lost_txns"),
            extra_of(res.runs[0], "recovery_s"),
            extra_of(res.runs[1], "recovery_s"));
      }
    };
    sc.note =
        "Expected shape: both dip to ~3/4 throughput while the node "
        "is down; PCL additionally stalls every transaction touching "
        "the dead node's lock partition until the authority is "
        "rebuilt (deeper, longer dip), while GEM locking's surviving "
        "lock table lets the other nodes run on undisturbed.";
    reg.push_back(std::move(sc));
  }

  {
    Scenario sc;
    sc.name = "ablation_group_commit";
    sc.caption =
        "Ablation: group commit (debit-credit, 1 node, 1 log disk, 8 CPUs, "
        "NOFORCE)";
    sc.doc = "Pushes the single-log-disk commit path past saturation with "
             "and without group commit.";
    sc.tweak = [](SystemConfig& c) {
      c.nodes = 1;
      c.cpu.processors = 8;  // keep the CPU out of the way
      c.log_disks_per_node = 1;
    };
    Dim tps{"tps", {}};
    for (double t : {100.0, 150.0, 200.0, 300.0}) {
      DimValue v;
      v.label = "tps=" + std::to_string(static_cast<int>(t));
      v.apply = [t](SystemConfig& c) { c.arrival_rate_per_node = t; };
      tps.values.push_back(std::move(v));
    }
    sc.dims = {tps,
               Dim{"group_commit",
                   {{"group=off",
                     [](SystemConfig& c) { c.log_group_commit = false; },
                     -1, 0.0, {{"group_commit", 0.0}}},
                    {"group=on",
                     [](SystemConfig& c) { c.log_group_commit = true; },
                     -1, 0.0, {{"group_commit", 1.0}}}}}};
    sc.probe = [](System& sys, BenchRun& b) {
      b.extra.push_back(
          {"log_util", sys.storage().log_group(0).arm_utilization()});
      b.extra.push_back({"txns_per_flush", sys.log(0).batching_factor()});
    };
    sc.table = [](const ScenarioResult& res, const BenchOptions&) {
      std::printf(
          "\n== Ablation: group commit (debit-credit, 1 node, 1 log "
          "disk, 8 CPUs, NOFORCE) ==\n");
      std::printf("%6s %-6s | %9s %9s %9s %10s\n", "TPS", "group",
                  "resp[ms]", "tput", "logUtil", "txns/flush");
      for (const BenchRun& b : res.runs) {
        std::printf("%6.0f %-6s | %9.2f %9.1f %8.1f%% %10.2f\n",
                    b.config.arrival_rate_per_node,
                    extra_of(b, "group_commit") != 0 ? "on" : "off",
                    b.result.resp_ms, b.result.throughput,
                    extra_of(b, "log_util") * 100,
                    extra_of(b, "txns_per_flush"));
      }
    };
    sc.note =
        "Expected shape: without group commit the single log disk "
        "saturates between 150 and 200 TPS (response times explode, "
        "throughput caps); with it the batching factor rises with the "
        "load and the commit path keeps scaling.";
    reg.push_back(std::move(sc));
  }

  {
    Scenario sc;
    sc.name = "scale_out";
    sc.caption =
        "Scale-out: sharded GLT, 64-512 nodes, diurnal load, drifting "
        "hotspot (>= 1M commits at N=256)";
    sc.doc = "The scale_out workload family on the sharded coupling core: "
             "GEM-resident DATA, gem_shards=4, diurnal arrival curve and a "
             "time-drifting Zipf hotspot; reports GLT queueing and peak RSS.";
    sc.exportable = false;  // custom workload bundle (diurnal/drift)
    sc.stamp_time = false;  // fixed horizon: the commit target defines the run
    sc.base = [] { return workload::make_scale_out_config(1); };
    sc.tweak = [](SystemConfig& c) {
      c.warmup = 2.0;
      c.measure = 45.0;  // 256 nodes x 100 TPS x 45 s > 1.15M commits
    };
    sc.dims = {scale_nodes_dim({64, 256, 512})};
    sc.cell = [](const SystemConfig& cfg, const ScenarioCell&, BenchRun& b) {
      run_scale_out_cell(cfg, b);
    };
    sc.table = [](const ScenarioResult& res, const BenchOptions&) {
      print_shard_table(res,
                        "Scale-out: sharded GLT, 64-512 nodes, diurnal load, "
                        "drifting hotspot");
    };
    sc.note =
        "Expected shape: commits scale linearly with N while peak RSS stays "
        "well under the 2 GB budget (streaming aggregates, lazy per-node "
        "state); the drifting hotspot sweeps load across nodes and GLT "
        "shards without queueing collapse.";
    reg.push_back(std::move(sc));
  }

  {
    Scenario sc;
    sc.name = "scale_out_smoke";
    sc.caption =
        "Scale-out smoke: 64 nodes, shrunk horizon (CI memory-budget gate)";
    sc.doc = "Shrunk scale_out cell (64 nodes, 2 s measured) for CI: must "
             "stay within the committed peak-RSS budget "
             "(gemsd_analyze --memory-budget).";
    sc.exportable = false;
    sc.stamp_time = false;
    sc.base = [] { return workload::make_scale_out_config(1); };
    sc.tweak = [](SystemConfig& c) {
      c.warmup = 0.5;
      c.measure = 2.0;
    };
    sc.dims = {scale_nodes_dim({64})};
    sc.cell = [](const SystemConfig& cfg, const ScenarioCell&, BenchRun& b) {
      run_scale_out_cell(cfg, b);
    };
    sc.table = [](const ScenarioResult& res, const BenchOptions&) {
      print_shard_table(res, "Scale-out smoke (64 nodes, CI gate)");
    };
    reg.push_back(std::move(sc));
  }

  {
    Scenario sc;
    sc.name = "shards_glt";
    sc.caption =
        "Sharded GLT: gem_shards 1-8 on a GLT-bound configuration "
        "(debit-credit, entry 100 us, N=10, random routing, NOFORCE)";
    sc.doc = "Queueing on the global lock table as the authority is sharded "
             "over 1, 2, 4, 8 GEM servers; entry access slowed to 100 us so "
             "the GLT is the bottleneck under study.";
    sc.tweak = [](SystemConfig& c) {
      c.coupling = Coupling::GemLocking;
      c.routing = Routing::Random;
      c.update = UpdateStrategy::NoForce;
      c.buffer_pages = 1000;
      c.gem.entry_access = 100e-6;  // [Yu87]-class lock op cost: GLT-bound
    };
    sc.dims = {node_dim({10}, /*clamp=*/true), shards_dim({1, 2, 4, 8})};
    sc.probe = [](System& sys, BenchRun& b) { push_shard_extras(sys, b); };
    sc.table = [](const ScenarioResult& res, const BenchOptions&) {
      print_shard_table(res,
                       "Sharded GLT: gem_shards 1-8, GLT-bound debit-credit");
    };
    sc.note =
        "Expected shape: with one shard the 100 us entries queue heavily "
        "(the [Yu87] saturation effect); each doubling of gem_shards cuts "
        "the GLT wait roughly in half until the CPU or page path takes "
        "over, while results stay bit-identical at shards=1.";
    reg.push_back(std::move(sc));
  }

  return reg;
}

}  // namespace

const std::vector<Scenario>& scenario_registry() {
  static const std::vector<Scenario>* reg =
      new std::vector<Scenario>(build_registry());
  return *reg;
}

}  // namespace gemsd
