#include "core/config_file.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gemsd {

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::runtime_error("run spec, line " + std::to_string(line) + ": " +
                           what);
}

bool parse_bool(const std::string& v, int line) {
  const std::string l = lower(v);
  if (l == "true" || l == "yes" || l == "on" || l == "1") return true;
  if (l == "false" || l == "no" || l == "off" || l == "0") return false;
  fail(line, "expected a boolean, got '" + v + "'");
}

StorageKind parse_storage(const std::string& v, int line) {
  const std::string l = lower(v);
  if (l == "disk") return StorageKind::Disk;
  if (l == "vcache") return StorageKind::DiskVolatileCache;
  if (l == "nvcache") return StorageKind::DiskNvCache;
  if (l == "gemcache") return StorageKind::DiskGemCache;
  if (l == "gem") return StorageKind::Gem;
  fail(line, "unknown storage kind '" + v + "'");
}

}  // namespace

RunSpec parse_run_spec(std::istream& in) {
  RunSpec spec;
  // Workload defaults resolve at the end; partition overrides are applied
  // after the base config is built.
  struct Override {
    std::string partition;
    StorageKind storage;
    std::int64_t cache_pages = 0;
    bool has_cache_pages = false;
  };
  std::vector<Override> overrides;

  std::string section;
  std::string line_s;
  int line = 0;
  // Raw key/value capture for [system]; applied onto the config below.
  while (std::getline(in, line_s)) {
    ++line;
    std::string s = trim(line_s);
    if (s.empty() || s[0] == '#' || s[0] == ';') continue;
    if (s.front() == '[') {
      if (s.back() != ']') fail(line, "unterminated section header");
      section = s.substr(1, s.size() - 2);
      continue;
    }
    const auto eq = s.find('=');
    if (eq == std::string::npos) fail(line, "expected key = value");
    const std::string key = lower(trim(s.substr(0, eq)));
    const std::string val = trim(s.substr(eq + 1));

    if (section == "workload") {
      if (key == "kind") {
        const std::string k = lower(val);
        if (k == "debit_credit" || k == "debit-credit") {
          spec.kind = RunSpec::Kind::DebitCredit;
        } else if (k == "trace") {
          spec.kind = RunSpec::Kind::Trace;
        } else {
          fail(line, "unknown workload kind '" + val + "'");
        }
      } else if (key == "trace_file") {
        spec.trace_file = val;
      } else if (key == "trace_txns") {
        spec.trace_txns = static_cast<std::size_t>(std::stoll(val));
      } else {
        fail(line, "unknown [workload] key '" + key + "'");
      }
      continue;
    }
    if (section.rfind("partition.", 0) == 0) {
      const std::string pname = section.substr(10);
      if (key == "storage") {
        overrides.push_back({pname, parse_storage(val, line), 0, false});
      } else if (key == "cache_pages") {
        if (overrides.empty() || overrides.back().partition != pname) {
          fail(line, "cache_pages must follow a storage key");
        }
        overrides.back().cache_pages = std::stoll(val);
        overrides.back().has_cache_pages = true;
      } else {
        fail(line, "unknown [partition] key '" + key + "'");
      }
      continue;
    }
    if (section != "system" && !section.empty()) {
      fail(line, "unknown section [" + section + "]");
    }
    auto& c = spec.cfg;
    if (key == "nodes") c.nodes = std::stoi(val);
    else if (key == "tps") c.arrival_rate_per_node = std::stod(val);
    else if (key == "buffer") c.buffer_pages = std::stoi(val);
    else if (key == "mpl") c.mpl = std::stoi(val);
    else if (key == "warmup") c.warmup = std::stod(val);
    else if (key == "measure") c.measure = std::stod(val);
    else if (key == "seed") c.seed = static_cast<std::uint64_t>(std::stoll(val));
    else if (key == "group_commit") c.log_group_commit = parse_bool(val, line);
    else if (key == "pcl_read_opt") c.pcl_read_optimization = parse_bool(val, line);
    else if (key == "gem_read_auth") c.gem_read_authorizations = parse_bool(val, line);
    else if (key == "coupling") {
      const std::string v = lower(val);
      if (v == "gem") c.coupling = Coupling::GemLocking;
      else if (v == "pcl") c.coupling = Coupling::PrimaryCopy;
      else if (v == "engine") c.coupling = Coupling::LockEngine;
      else fail(line, "unknown coupling '" + val + "'");
    } else if (key == "update") {
      const std::string v = lower(val);
      if (v == "force") c.update = UpdateStrategy::Force;
      else if (v == "noforce") c.update = UpdateStrategy::NoForce;
      else fail(line, "unknown update strategy '" + val + "'");
    } else if (key == "routing") {
      const std::string v = lower(val);
      if (v == "affinity") c.routing = Routing::Affinity;
      else if (v == "random") c.routing = Routing::Random;
      else fail(line, "unknown routing '" + val + "'");
    } else if (key == "log") {
      c.log_storage = parse_storage(val, line) == StorageKind::Gem
                          ? StorageKind::Gem
                          : StorageKind::Disk;
    } else if (key == "transport") {
      const std::string v = lower(val);
      if (v == "network") c.comm.transport = MsgTransport::Network;
      else if (v == "gem") c.comm.transport = MsgTransport::GemStore;
      else fail(line, "unknown transport '" + val + "'");
    } else {
      fail(line, "unknown [system] key '" + key + "'");
    }
  }

  // Build the base schema for the chosen workload, preserving the parsed
  // system knobs, then apply partition overrides.
  SystemConfig parsed = spec.cfg;
  SystemConfig base = make_debit_credit_config();
  base.nodes = parsed.nodes;
  base.arrival_rate_per_node =
      parsed.arrival_rate_per_node;
  base.coupling = parsed.coupling;
  base.update = parsed.update;
  base.routing = parsed.routing;
  base.mpl = parsed.mpl;
  base.buffer_pages = parsed.buffer_pages;
  base.log_storage = parsed.log_storage;
  base.log_group_commit = parsed.log_group_commit;
  base.pcl_read_optimization = parsed.pcl_read_optimization;
  base.gem_read_authorizations = parsed.gem_read_authorizations;
  base.comm.transport = parsed.comm.transport;
  base.warmup = parsed.warmup;
  base.measure = parsed.measure;
  base.seed = parsed.seed;
  spec.cfg = base;
  // Trace runs rebuild partitions later (they depend on the trace); only
  // debit-credit accepts per-partition overrides here.
  for (const auto& ov : overrides) {
    bool found = false;
    for (auto& pc : spec.cfg.partitions) {
      if (pc.name == ov.partition) {
        pc.storage = ov.storage;
        if (ov.has_cache_pages) {
          pc.disk_cache_pages = ov.cache_pages;
          pc.gem_cache_pages = ov.cache_pages;
        }
        found = true;
      }
    }
    if (!found) {
      throw std::runtime_error("run spec: unknown partition '" +
                               ov.partition + "'");
    }
  }
  return spec;
}

RunSpec parse_run_spec_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open run spec: " + path);
  return parse_run_spec(f);
}

}  // namespace gemsd
