#include "core/config_file.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gemsd {

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::runtime_error("run spec, line " + std::to_string(line) + ": " +
                           what);
}

bool parse_bool(const std::string& v, int line) {
  const std::string l = lower(v);
  if (l == "true" || l == "yes" || l == "on" || l == "1") return true;
  if (l == "false" || l == "no" || l == "off" || l == "0") return false;
  fail(line, "expected a boolean, got '" + v + "'");
}

StorageKind parse_storage(const std::string& v, int line) {
  const std::string l = lower(v);
  if (l == "disk") return StorageKind::Disk;
  if (l == "vcache") return StorageKind::DiskVolatileCache;
  if (l == "nvcache") return StorageKind::DiskNvCache;
  if (l == "gemcache") return StorageKind::DiskGemCache;
  if (l == "gem") return StorageKind::Gem;
  fail(line, "unknown storage kind '" + v + "'");
}

const char* storage_name(StorageKind k) {
  switch (k) {
    case StorageKind::Disk: return "disk";
    case StorageKind::DiskVolatileCache: return "vcache";
    case StorageKind::DiskNvCache: return "nvcache";
    case StorageKind::DiskGemCache: return "gemcache";
    case StorageKind::Gem: return "gem";
  }
  return "disk";
}

double parse_num(const std::string& v, int line) {
  if (!v.empty()) {
    char* end = nullptr;
    const double d = std::strtod(v.c_str(), &end);
    if (end && *end == '\0') return d;
  }
  fail(line, "expected a number, got '" + v + "'");
}

int parse_int(const std::string& v, int line) {
  const double d = parse_num(v, line);
  const int i = static_cast<int>(d);
  if (d != static_cast<double>(i)) {
    fail(line, "expected an integer, got '" + v + "'");
  }
  return i;
}

std::int64_t parse_i64(const std::string& v, int line) {
  const double d = parse_num(v, line);
  const auto i = static_cast<std::int64_t>(d);
  if (d != static_cast<double>(i)) {
    fail(line, "expected an integer, got '" + v + "'");
  }
  return i;
}

/// Shortest decimal form that strtod round-trips to the same double.
/// Integral values print as plain integers ("100", not "1e+02").
std::string fmt_num(double v) {
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::abs(v) < 1e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  char buf[40];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

/// Format a seconds value as microseconds such that the parser's `us * 1e-6`
/// reproduces the original double exactly. Prefers the shortest (often
/// integral) microsecond count over the exact but noisy `v * 1e6` digits.
std::string fmt_us(double v) {
  const double us = v * 1e6;
  if (const std::string s = std::to_string(std::llround(us));
      std::strtod(s.c_str(), nullptr) * 1e-6 == v) {
    return s;
  }
  char buf[40];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, us);
    if (std::strtod(buf, nullptr) * 1e-6 == v) break;
  }
  return buf;
}

std::string fmt_int(std::int64_t v) { return std::to_string(v); }
std::string fmt_bool(bool v) { return v ? "true" : "false"; }

/// The scalar [system] key table — one entry drives both the parser and the
/// exporter, so the two can never drift apart.
struct KeyDef {
  const char* key;
  void (*set)(SystemConfig&, const std::string&, int line);
  std::string (*get)(const SystemConfig&);
};

const KeyDef kSystemKeys[] = {
    {"nodes",
     [](SystemConfig& c, const std::string& v, int l) {
       c.nodes = parse_int(v, l);
     },
     [](const SystemConfig& c) { return fmt_int(c.nodes); }},
    {"tps",
     [](SystemConfig& c, const std::string& v, int l) {
       c.arrival_rate_per_node = parse_num(v, l);
     },
     [](const SystemConfig& c) { return fmt_num(c.arrival_rate_per_node); }},
    {"coupling",
     [](SystemConfig& c, const std::string& v, int l) {
       const std::string s = lower(v);
       if (s == "gem") c.coupling = Coupling::GemLocking;
       else if (s == "pcl") c.coupling = Coupling::PrimaryCopy;
       else if (s == "engine") c.coupling = Coupling::LockEngine;
       else fail(l, "unknown coupling '" + v + "'");
     },
     [](const SystemConfig& c) -> std::string {
       switch (c.coupling) {
         case Coupling::GemLocking: return "gem";
         case Coupling::PrimaryCopy: return "pcl";
         case Coupling::LockEngine: return "engine";
       }
       return "gem";
     }},
    {"update",
     [](SystemConfig& c, const std::string& v, int l) {
       const std::string s = lower(v);
       if (s == "force") c.update = UpdateStrategy::Force;
       else if (s == "noforce") c.update = UpdateStrategy::NoForce;
       else fail(l, "unknown update strategy '" + v + "'");
     },
     [](const SystemConfig& c) -> std::string {
       return c.update == UpdateStrategy::Force ? "force" : "noforce";
     }},
    {"routing",
     [](SystemConfig& c, const std::string& v, int l) {
       const std::string s = lower(v);
       if (s == "affinity") c.routing = Routing::Affinity;
       else if (s == "random") c.routing = Routing::Random;
       else fail(l, "unknown routing '" + v + "'");
     },
     [](const SystemConfig& c) -> std::string {
       return c.routing == Routing::Affinity ? "affinity" : "random";
     }},
    {"buffer",
     [](SystemConfig& c, const std::string& v, int l) {
       c.buffer_pages = parse_int(v, l);
     },
     [](const SystemConfig& c) { return fmt_int(c.buffer_pages); }},
    {"mpl",
     [](SystemConfig& c, const std::string& v, int l) {
       c.mpl = parse_int(v, l);
     },
     [](const SystemConfig& c) { return fmt_int(c.mpl); }},
    {"warmup",
     [](SystemConfig& c, const std::string& v, int l) {
       c.warmup = parse_num(v, l);
     },
     [](const SystemConfig& c) { return fmt_num(c.warmup); }},
    {"measure",
     [](SystemConfig& c, const std::string& v, int l) {
       c.measure = parse_num(v, l);
     },
     [](const SystemConfig& c) { return fmt_num(c.measure); }},
    {"seed",
     [](SystemConfig& c, const std::string& v, int l) {
       const std::int64_t s = parse_i64(v, l);
       if (s < 0) fail(l, "seed must be non-negative");
       c.seed = static_cast<std::uint64_t>(s);
     },
     [](const SystemConfig& c) {
       return fmt_int(static_cast<std::int64_t>(c.seed));
     }},
    {"log",
     [](SystemConfig& c, const std::string& v, int l) {
       c.log_storage = parse_storage(v, l) == StorageKind::Gem
                           ? StorageKind::Gem
                           : StorageKind::Disk;
     },
     [](const SystemConfig& c) -> std::string {
       return c.log_storage == StorageKind::Gem ? "gem" : "disk";
     }},
    {"log_disks",
     [](SystemConfig& c, const std::string& v, int l) {
       c.log_disks_per_node = parse_int(v, l);
     },
     [](const SystemConfig& c) { return fmt_int(c.log_disks_per_node); }},
    {"group_commit",
     [](SystemConfig& c, const std::string& v, int l) {
       c.log_group_commit = parse_bool(v, l);
     },
     [](const SystemConfig& c) { return fmt_bool(c.log_group_commit); }},
    {"pcl_read_opt",
     [](SystemConfig& c, const std::string& v, int l) {
       c.pcl_read_optimization = parse_bool(v, l);
     },
     [](const SystemConfig& c) { return fmt_bool(c.pcl_read_optimization); }},
    {"gem_read_auth",
     [](SystemConfig& c, const std::string& v, int l) {
       c.gem_read_authorizations = parse_bool(v, l);
     },
     [](const SystemConfig& c) {
       return fmt_bool(c.gem_read_authorizations);
     }},
    {"transport",
     [](SystemConfig& c, const std::string& v, int l) {
       const std::string s = lower(v);
       if (s == "network") c.comm.transport = MsgTransport::Network;
       else if (s == "gem") c.comm.transport = MsgTransport::GemStore;
       else fail(l, "unknown transport '" + v + "'");
     },
     [](const SystemConfig& c) -> std::string {
       return c.comm.transport == MsgTransport::GemStore ? "gem" : "network";
     }},
    {"cpu_procs",
     [](SystemConfig& c, const std::string& v, int l) {
       c.cpu.processors = parse_int(v, l);
     },
     [](const SystemConfig& c) { return fmt_int(c.cpu.processors); }},
    {"gem_entry_us",
     [](SystemConfig& c, const std::string& v, int l) {
       c.gem.entry_access = parse_num(v, l) * 1e-6;
     },
     [](const SystemConfig& c) { return fmt_us(c.gem.entry_access); }},
    {"msg_short_instr",
     [](SystemConfig& c, const std::string& v, int l) {
       c.comm.short_instr = parse_num(v, l);
     },
     [](const SystemConfig& c) { return fmt_num(c.comm.short_instr); }},
    {"msg_long_instr",
     [](SystemConfig& c, const std::string& v, int l) {
       c.comm.long_instr = parse_num(v, l);
     },
     [](const SystemConfig& c) { return fmt_num(c.comm.long_instr); }},
    {"lock_engine_us",
     [](SystemConfig& c, const std::string& v, int l) {
       c.lock_engine_service = parse_num(v, l) * 1e-6;
     },
     [](const SystemConfig& c) {
       return fmt_us(c.lock_engine_service);
     }},
};

PartitionConfig* find_partition(SystemConfig& cfg, const std::string& name) {
  for (auto& pc : cfg.partitions) {
    if (pc.name == name) return &pc;
  }
  return nullptr;
}

/// Apply one raw key onto the config. Partition names are case-sensitive
/// (they are data, not syntax); everything else is lower-cased by the
/// caller.
void apply_one(SystemConfig& cfg, const std::string& key,
               const std::string& val, int line) {
  // Conditionally-emitted scalar keys (spec_keys writes them only when they
  // differ from the default, like the per-partition keys below, so shipped
  // single-GEM specs keep their exact bytes).
  if (key == "gem_shards") {
    cfg.gem.shards = parse_int(val, line);
    if (cfg.gem.shards < 1) fail(line, "gem_shards must be >= 1");
    return;
  }
  const auto dot = key.find('.');
  if (dot != std::string::npos) {
    const std::string field = key.substr(0, dot);
    const std::string pname = key.substr(dot + 1);
    PartitionConfig* pc = find_partition(cfg, pname);
    if (!pc) fail(line, "unknown partition '" + pname + "'");
    if (field == "storage") {
      pc->storage = parse_storage(val, line);
    } else if (field == "cache_pages") {
      pc->disk_cache_pages = parse_i64(val, line);
      pc->gem_cache_pages = pc->disk_cache_pages;
    } else if (field == "disk_cache_pages") {
      pc->disk_cache_pages = parse_i64(val, line);
    } else if (field == "gem_cache_pages") {
      pc->gem_cache_pages = parse_i64(val, line);
    } else {
      fail(line, "unknown partition key '" + field + "'");
    }
    return;
  }
  for (const KeyDef& def : kSystemKeys) {
    if (key == def.key) {
      def.set(cfg, val, line);
      return;
    }
  }
  fail(line, "unknown [system] key '" + key + "'");
}

struct RawKey {
  std::string key, val;
  int line;
};

}  // namespace

SpecDoc parse_spec_doc(std::istream& in) {
  SpecDoc doc;
  RunSpec proto;  // workload settings shared by every run
  std::vector<RawKey> base;
  std::vector<std::vector<RawKey>> run_keys;  // one per [run] section

  std::string section;
  std::string line_s;
  int line = 0;
  while (std::getline(in, line_s)) {
    ++line;
    std::string s = trim(line_s);
    if (s.empty() || s[0] == '#' || s[0] == ';') continue;
    if (s.front() == '[') {
      if (s.back() != ']') fail(line, "unterminated section header");
      section = s.substr(1, s.size() - 2);
      if (section == "run") run_keys.emplace_back();
      continue;
    }
    const auto eq = s.find('=');
    if (eq == std::string::npos) fail(line, "expected key = value");
    const std::string key = trim(s.substr(0, eq));
    const std::string val = trim(s.substr(eq + 1));
    // Lower-case the key, but never a partition name: in the flat
    // `field.NAME` form only the field part is syntax.
    const auto key_dot = key.find('.');
    const std::string lkey =
        key_dot == std::string::npos
            ? lower(key)
            : lower(key.substr(0, key_dot)) + key.substr(key_dot);

    if (section == "scenario") {
      if (lkey == "name") doc.scenario = val;
      else if (lkey == "caption") doc.caption = val;
      else fail(line, "unknown [scenario] key '" + key + "'");
      continue;
    }
    if (section == "workload") {
      if (lkey == "kind") {
        const std::string k = lower(val);
        if (k == "debit_credit" || k == "debit-credit") {
          proto.kind = RunSpec::Kind::DebitCredit;
        } else if (k == "trace") {
          proto.kind = RunSpec::Kind::Trace;
        } else {
          fail(line, "unknown workload kind '" + val + "'");
        }
      } else if (lkey == "trace_file") {
        proto.trace_file = val;
      } else if (lkey == "trace_txns") {
        proto.trace_txns = static_cast<std::size_t>(parse_i64(val, line));
      } else {
        fail(line, "unknown [workload] key '" + key + "'");
      }
      continue;
    }
    if (section.rfind("partition.", 0) == 0) {
      // Section form translates to the flat per-partition keys; the
      // partition name keeps its case.
      const std::string pname = section.substr(10);
      if (lkey != "storage" && lkey != "cache_pages" &&
          lkey != "disk_cache_pages" && lkey != "gem_cache_pages") {
        fail(line, "unknown [partition] key '" + key + "'");
      }
      base.push_back({lkey + "." + pname, val, line});
      continue;
    }
    if (section == "run") {
      run_keys.back().push_back({lkey, val, line});
      continue;
    }
    if (section != "system" && !section.empty()) {
      fail(line, "unknown section [" + section + "]");
    }
    base.push_back({lkey, val, line});
  }

  // One run per [run] section; a file without any is a single run of the
  // base sections alone.
  if (run_keys.empty()) run_keys.emplace_back();
  for (const auto& extra : run_keys) {
    RunSpec spec = proto;
    spec.cfg = make_debit_credit_config();
    for (const std::vector<RawKey>* keys :
         {static_cast<const std::vector<RawKey>*>(&base), &extra}) {
      for (const RawKey& rk : *keys) {
        // Trace runs rebuild their partitions from the trace later; their
        // partition keys cannot be validated against the debit-credit
        // schema, so application is deferred to apply_spec_keys.
        if (spec.kind == RunSpec::Kind::Trace &&
            rk.key.find('.') != std::string::npos) {
          continue;
        }
        apply_one(spec.cfg, rk.key, rk.val, rk.line);
      }
    }
    for (const RawKey& rk : base) spec.keys.push_back({rk.key, rk.val});
    for (const RawKey& rk : extra) spec.keys.push_back({rk.key, rk.val});
    doc.runs.push_back(std::move(spec));
  }
  return doc;
}

SpecDoc parse_spec_doc_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open run spec: " + path);
  return parse_spec_doc(f);
}

RunSpec parse_run_spec(std::istream& in) {
  SpecDoc doc = parse_spec_doc(in);
  if (doc.runs.size() != 1) {
    throw std::runtime_error(
        "run spec: expected a single-run spec, got " +
        std::to_string(doc.runs.size()) + " [run] sections");
  }
  return std::move(doc.runs.front());
}

RunSpec parse_run_spec_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open run spec: " + path);
  return parse_run_spec(f);
}

void apply_spec_keys(SystemConfig& cfg, const SpecKeyValues& keys) {
  int line = 0;
  for (const auto& [key, val] : keys) {
    apply_one(cfg, key, val, ++line);
  }
}

SpecKeyValues spec_keys(const SystemConfig& cfg) {
  SpecKeyValues out;
  for (const KeyDef& def : kSystemKeys) {
    out.push_back({def.key, def.get(cfg)});
  }
  if (cfg.gem.shards != 1) {
    out.push_back({"gem_shards", fmt_int(cfg.gem.shards)});
  }
  for (const auto& pc : cfg.partitions) {
    if (pc.storage != StorageKind::Disk) {
      out.push_back({"storage." + pc.name, storage_name(pc.storage)});
    }
    if (pc.disk_cache_pages != 0) {
      out.push_back(
          {"disk_cache_pages." + pc.name, fmt_int(pc.disk_cache_pages)});
    }
    if (pc.gem_cache_pages != 0) {
      out.push_back(
          {"gem_cache_pages." + pc.name, fmt_int(pc.gem_cache_pages)});
    }
  }
  return out;
}

}  // namespace gemsd
