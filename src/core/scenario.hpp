#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/experiment.hpp"
#include "core/system.hpp"

namespace gemsd {

/// One value along a scenario dimension: a label, an optional config
/// mutation, an optional node count (node axes), and optional static extras
/// that go into the run's results-JSON record.
struct DimValue {
  std::string label;
  std::function<void(SystemConfig&)> apply;  ///< may be null (label-only)
  int nodes = -1;                            ///< >= 0: node-axis value
  /// Opaque per-value datum for custom cell hooks (e.g. a workload knob that
  /// is not a SystemConfig field). One slot per dimension, see
  /// ScenarioCell::params.
  double param = 0;
  std::vector<std::pair<std::string, double>> extra;
};

/// One dimension of a scenario's parameter grid. Dimensions multiply out in
/// declaration order, the first dimension being the outermost loop — the
/// same run order the hand-written bench mains produced.
struct Dim {
  std::string name;
  std::vector<DimValue> values;
  /// Group dimensions split the console output into one table per value
  /// combination (they must form a prefix of the dimension list). This is
  /// the engine-owned replacement for the per-bench `per_strategy` begin/end
  /// index arithmetic.
  bool group = false;
  /// Node axes only: clamp every value to --max-nodes (collapsing
  /// duplicates) instead of dropping values above the cap.
  bool clamp_nodes = false;
};

/// One point of the expanded grid: the fully built config plus everything
/// the emission path and custom hooks need to know about its coordinates.
struct ScenarioCell {
  SystemConfig cfg;
  std::vector<std::size_t> value_idx;  ///< per dimension, original index
  std::vector<double> params;          ///< DimValue::param per dimension
  std::string label;                   ///< dim value labels, joined
  std::vector<std::pair<std::string, double>> extra;  ///< merged dim extras
};

/// The expanded grid: cells in run order, contiguous output groups, and the
/// shared inputs (partition names, trace) every cell uses.
struct ScenarioPlan {
  std::vector<ScenarioCell> cells;
  struct Group {
    std::size_t begin = 0, end = 0;  ///< half-open cell range
    std::string title;
  };
  std::vector<Group> groups;
  std::vector<std::string> partition_names;
  std::shared_ptr<const workload::Trace> trace;  ///< trace scenarios only
};

struct ScenarioResult {
  ScenarioPlan plan;
  std::vector<BenchRun> runs;  ///< one per cell, in cell order
};

/// A declaratively described experiment: what used to be one bench_*.cpp
/// main. The registry (scenario_registry.cpp) holds one of these per paper
/// figure/table and per ablation; tools/gemsd_bench runs them.
struct Scenario {
  std::string name;     ///< registry key, also the results-file stem
  std::string caption;  ///< results-JSON caption / default table title
  std::string doc;      ///< one-liner for --list and docs/scenarios.md

  enum class WorkloadKind { DebitCredit, Trace };
  WorkloadKind workload = WorkloadKind::DebitCredit;
  /// Base configuration the dimension mutators start from. Default:
  /// make_debit_credit_config() or make_trace_config(trace).
  std::function<SystemConfig()> base;
  /// Mutation applied to the base (default or custom) before the grid
  /// expands — the scenario's fixed, non-swept settings.
  std::function<void(SystemConfig&)> tweak;
  std::vector<Dim> dims;

  /// Stamp --warmup/--measure (and --seed) onto every cell. Off only for
  /// scenarios that drive the clock themselves (availability timeline,
  /// fixed-transaction-count drains).
  bool stamp_time = true;
  bool stamp_seed = true;

  /// Whether the grid is expressible as a specs/*.ini file that gemsd_run
  /// reproduces bit-identically (--export-spec). False for custom workloads
  /// and failure-injection timelines.
  bool exportable = true;
  std::size_t trace_txns = 17500;  ///< synthetic trace size (trace kind)

  std::string note;      ///< context paragraph printed after the tables
  std::string note_pre;  ///< printed before the tables (non-CSV)

  /// Title for one output group, given the group dimensions' value labels.
  /// Default: "<caption> [<labels>]".
  std::function<std::string(const std::vector<std::string>&)> group_title;

  /// Fully custom per-cell execution (replaces the standard build-and-run
  /// path). The BenchRun arrives with config and static extras filled in;
  /// the hook runs the simulation and sets result (plus more extras).
  std::function<void(const SystemConfig&, const ScenarioCell&, BenchRun&)>
      cell;
  /// Post-run metrics scrape on the live System (standard path only).
  std::function<void(System&, BenchRun&)> probe;
  /// Custom console table replacing the generic per-group print_table
  /// (non-CSV output only; CSV always uses the shared emission path).
  std::function<void(const ScenarioResult&, const BenchOptions&)> table;
  /// Extra trailing output after tables/paths (non-CSV only).
  std::function<void(const ScenarioResult&, const BenchOptions&)> post;
  /// Print-only scenario (no simulations), e.g. the Table 4.1 parameter
  /// listing.
  std::function<void()> report;
};

/// The compiled-in scenario registry: every paper figure (4.1-4.7, Table
/// 4.1), every ablation, and the related-work/availability experiments.
const std::vector<Scenario>& scenario_registry();
const Scenario* find_scenario(const std::string& name);

/// Convenience constructor for a node-count axis ("n=K" labels).
Dim node_dim(std::vector<int> ns, bool clamp = false);

/// Look up a static/probed extra on a run (0 / `fallback` when absent).
double extra_of(const BenchRun& run, const std::string& key,
                double fallback = 0.0);

/// Number of grid cells the scenario expands to under `opt` (cheap: no
/// configs are built). Report-only scenarios have 0.
std::size_t scenario_cell_count(const Scenario& sc, const BenchOptions& opt);

/// Expand the grid: apply --max-nodes filtering/clamping, build every cell's
/// config (base -> warmup/measure/seed -> dimension mutators, outermost
/// dimension first), compute output groups, and resolve partition names
/// (generating the shared synthetic trace for trace scenarios).
ScenarioPlan build_scenario_plan(const Scenario& sc, const BenchOptions& opt);

/// Run every cell on the sweep pool (bit-identical at any --jobs count,
/// results in cell order) and return runs zipped with their configs.
ScenarioResult run_scenario(const Scenario& sc, const BenchOptions& opt);

/// The single emission path all scenarios share: results JSON + optional
/// Chrome trace, then per-group CSV or tables (honoring the scenario's
/// custom table/post hooks and notes). `out_dir` is where BENCH_<name>.json
/// goes when --metrics-json was not given.
void emit_scenario(const Scenario& sc, const BenchOptions& opt,
                   const ScenarioResult& res, const std::string& out_dir);

/// Serialize the scenario's grid as a multi-run spec (config_file.hpp
/// format) and self-verify it: the text is parsed back and every rebuilt
/// run config must be bit-identical to the in-registry cell. Throws for
/// non-exportable scenarios or on any round-trip mismatch.
std::string export_scenario_spec(const Scenario& sc, const BenchOptions& opt);

}  // namespace gemsd
