#include "core/metrics.hpp"

namespace gemsd {

void Metrics::reset() {
  response = {};
  response_batches.reset();
  response_hist.reset();
  response_per_ref = {};
  for (auto& m : per_type_response) m = {};
  commits.reset();
  aborts.reset();
  restarts.reset();
  lost_txns.reset();
  recovery_time = {};
  mpl_wait = {};
  breakdown_cpu = {};
  breakdown_cpu_wait = {};
  breakdown_io = {};
  breakdown_cc = {};
  breakdown_queue = {};
  breakdown_cpu_hist.reset();
  breakdown_cpu_wait_hist.reset();
  breakdown_io_hist.reset();
  breakdown_cc_hist.reset();
  breakdown_queue_hist.reset();
  for (auto& c : hits) c.reset();
  for (auto& c : misses) c.reset();
  for (auto& c : invalidations_by_partition) c.reset();
  invalidations.reset();
  page_requests.reset();
  page_request_misses.reset();
  page_request_delay = {};
  evict_writes.reset();
  force_writes.reset();
  lock_requests.reset();
  lock_local.reset();
  lock_remote.reset();
  lock_auth_local.reset();
  lock_waits.reset();
  deadlocks.reset();
  lock_wait_time = {};
  revocations.reset();
  coherency_violations.reset();
}

}  // namespace gemsd
