#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace gemsd {

namespace obs {
class Auditor;
class TimeSeriesRecorder;
}  // namespace obs

/// Run-wide statistics, updated by every component; reset at warm-up end.
/// Device utilizations live with the devices (Resources); this class holds
/// the transaction- and protocol-level counters.
class Metrics {
 public:
  explicit Metrics(std::size_t partitions, std::size_t types = 1)
      : per_type_response(types),
        hits(partitions),
        misses(partitions),
        invalidations_by_partition(partitions) {}

  // --- transactions ---
  sim::MeanStat response;             ///< seconds, commit - arrival
  sim::BatchMeans response_batches;   ///< 95% CI via batch means
  sim::Histogram response_hist;       ///< for percentiles
  sim::MeanStat response_per_ref;     ///< per-access response (trace metric)
  std::vector<sim::MeanStat> per_type_response;
  sim::Counter commits, aborts, restarts;
  sim::Counter lost_txns;        ///< in-flight work killed by a node crash
  sim::MeanStat recovery_time;   ///< seconds from crash to full recovery
  sim::MeanStat mpl_wait;
  sim::MeanStat breakdown_cpu, breakdown_cpu_wait, breakdown_io, breakdown_cc,
      breakdown_queue;
  /// Per-phase histograms, fed the same per-commit seconds as breakdown_*;
  /// back the p50/p95/p99 phase percentiles in the results export.
  sim::Histogram breakdown_cpu_hist, breakdown_cpu_wait_hist,
      breakdown_io_hist, breakdown_cc_hist, breakdown_queue_hist;

  // --- buffer & coherency ---
  std::vector<sim::Counter> hits, misses;   ///< per partition (all nodes)
  std::vector<sim::Counter> invalidations_by_partition;
  sim::Counter invalidations;         ///< stale cached copy detected
  sim::Counter page_requests;         ///< direct page transfers requested
  sim::Counter page_request_misses;   ///< owner no longer had the copy
  sim::MeanStat page_request_delay;
  sim::Counter evict_writes;          ///< dirty LRU victims written back
  sim::Counter force_writes;

  // --- concurrency control ---
  sim::Counter lock_requests, lock_local, lock_remote, lock_auth_local;
  sim::Counter lock_waits, deadlocks;
  /// Invariant violations: a transaction accessed a locked page whose buffer
  /// copy does not carry the current version. Must stay zero; checked by the
  /// integration tests on every configuration.
  sim::Counter coherency_violations;
  sim::MeanStat lock_wait_time;
  sim::Counter revocations;           ///< read-authorization revocations

  // --- observability hooks (pure observation; never alter the simulation) ---
  /// Trace ring buffer owned by System; components guard record sites with
  /// `if (metrics.trace)`. With tracing compiled out the pointer is a
  /// constant nullptr, so every guard folds away.
#if GEMSD_TRACING_ENABLED
  obs::TraceRecorder* trace = nullptr;
#else
  static constexpr obs::TraceRecorder* trace = nullptr;
#endif
  /// Top-K slowest-transaction log owned by System (capacity 0 = off).
  obs::SlowTxnLog* slow = nullptr;
  /// Online invariant auditor owned by System (--audit; null = off). Checks
  /// are pure observation — metrics stay bit-identical either way.
  obs::Auditor* audit = nullptr;
  /// Per-window time-series recorder owned by System (--timeseries; null =
  /// off). Fed exact commit/abort events by the transaction manager.
  obs::TimeSeriesRecorder* ts = nullptr;

  double hit_ratio(std::size_t partition) const {
    const double h = static_cast<double>(hits[partition].value());
    const double m = static_cast<double>(misses[partition].value());
    return sim::safe_ratio(h, h + m);
  }
  double local_lock_fraction() const {
    const double l = static_cast<double>(lock_local.value() +
                                         lock_auth_local.value());
    const double t = static_cast<double>(lock_requests.value());
    return sim::safe_ratio(l, t, 1.0);
  }

  void reset();
};

}  // namespace gemsd
