#pragma once

#include <string>

#include "core/config.hpp"
#include "core/report.hpp"
#include "core/system.hpp"
#include "workload/trace.hpp"

namespace gemsd {

/// Build a trace-driven workload (replay in original order) with the given
/// routing policy: random = round robin; affinity = routing table computed by
/// the allocation heuristic [Ra92b]. The GLA assignment is coordinated with
/// the affinity routing either way (the paper's PCL setup).
System::Workload make_trace_workload(const SystemConfig& cfg,
                                     const workload::Trace& trace);

/// SystemConfig preset for trace-driven runs (Section 4.6): partitions match
/// the trace's files, 50 TPS per node, buffer 1000 pages, NOFORCE.
SystemConfig make_trace_config(const workload::Trace& trace);

RunResult run_trace(const SystemConfig& cfg, const workload::Trace& trace);

/// Shared command-line handling for the bench harnesses:
///   --quick        shorter measurement interval (CI-friendly)
///   --measure=S    measurement seconds
///   --warmup=S     warm-up seconds
///   --max-nodes=N  cap the node sweep
///   --jobs=N       run the sweep's simulations on N worker threads
///                  (default: hardware_concurrency; 1 = serial)
///   --full         verbose per-run diagnostics
///   --csv          machine-readable output
struct BenchOptions {
  double warmup = 5.0;
  double measure = 20.0;
  int max_nodes = 10;
  int jobs = 0;  ///< 0 = hardware_concurrency (see SweepRunner)
  bool full = false;
  bool csv = false;
  std::uint64_t seed = 42;
};
BenchOptions parse_bench_args(int argc, char** argv);

/// Names of the debit-credit partitions (report columns).
std::vector<std::string> debit_credit_partition_names();

}  // namespace gemsd
