#pragma once

#include <string>
#include <utility>

#include "core/config.hpp"
#include "core/report.hpp"
#include "core/system.hpp"
#include "workload/trace.hpp"

namespace gemsd {

/// Build a trace-driven workload (replay in original order) with the given
/// routing policy: random = round robin; affinity = routing table computed by
/// the allocation heuristic [Ra92b]. The GLA assignment is coordinated with
/// the affinity routing either way (the paper's PCL setup).
System::Workload make_trace_workload(const SystemConfig& cfg,
                                     const workload::Trace& trace);

/// SystemConfig preset for trace-driven runs (Section 4.6): partitions match
/// the trace's files, 50 TPS per node, buffer 1000 pages, NOFORCE.
SystemConfig make_trace_config(const workload::Trace& trace);

RunResult run_trace(const SystemConfig& cfg, const workload::Trace& trace);

/// Shared command-line handling for the bench harnesses and gemsd_bench:
///   --quick            shorter measurement interval (CI-friendly)
///   --measure=S        measurement seconds
///   --warmup=S         warm-up seconds
///   --max-nodes=N      cap the node sweep
///   --jobs=N           run the sweep's simulations on N worker threads
///                      (default: hardware_concurrency; 1 = serial)
///   --full             verbose per-run diagnostics
///   --csv              machine-readable output
///   --sample=S         periodic telemetry sample interval [sim s] (0 = off)
///   --slow-k=K         record the K slowest transactions per run
///   --metrics-json=F   structured results file (default results/BENCH_<name>.json)
///   --no-json          skip the structured results file
///   --trace=F          Chrome trace-event JSON of one sweep point
///   --trace-run=I      which sweep point gets traced (default 0)
///   --trace-capacity=N trace ring-buffer capacity [events]
///   --trace-filter=RE  record only events whose name matches the regex
///                      (filtered events never enter the ring, so they don't
///                      count as dropped)
///   --audit            online invariant auditors (fail fast on violation)
///   --engine-profile[=F]       wall-clock engine parallelism profile of the
///                      --trace-run sweep point (gemsd.engprof.v1 JSON)
///   --engine-profile-trace=F   Perfetto/Chrome wall-clock timeline of the
///                      profiled windows
///   --progress[=SECS]  stderr JSONL heartbeat every SECS wall seconds
///   --timeseries[=F]   per-window time series of the --trace-run sweep
///                      point (gemsd.timeseries.v1 JSON; analyze with
///                      gemsd_analyze --timeseries)
///   --timeseries-window=S  window width [sim s] (default 0.5; width doubles
///                      when the 512-window cap is hit)
///   --resources[=F]    per-resource operational snapshot of the --trace-run
///                      sweep point (gemsd.resources.v1 JSON; analyze with
///                      gemsd_analyze --bottleneck)
struct BenchOptions {
  /// Warm-up default: 5 s simulated, the SystemConfig::warmup default.
  /// --quick overrides to 2 s (measure 6 s); later flags win, so
  /// `--quick --warmup=5` restores the default.
  double warmup = 5.0;
  double measure = 20.0;
  int max_nodes = 10;
  int jobs = 0;  ///< 0 = hardware_concurrency (see SweepRunner)
  bool full = false;
  bool csv = false;
  std::uint64_t seed = 42;
  double sample_every = 1.0;
  int slow_k = 10;
  std::string metrics_json;
  bool no_json = false;
  std::string trace_file;
  int trace_run = 0;
  std::size_t trace_capacity = std::size_t{1} << 18;
  std::string trace_filter;  ///< regex on event names ("" = everything)
  bool audit = false;
  /// Engine parallelism profiler (obs/engprof.hpp): profiles the same sweep
  /// point --trace selects (trace_run). Wall-clock observation only —
  /// simulated results are unaffected.
  bool engine_profile = false;
  std::string engine_profile_file;   ///< "" = results/ENGPROF_<bench>.json
  std::string engine_profile_trace;  ///< timeline file ("" = not written)
  double progress_every_s = 0.0;     ///< heartbeat period [wall s] (0 = off)
  /// Per-window time series (obs/timeseries.hpp) of the --trace-run sweep
  /// point. Pure observation — metrics are byte-identical on/off.
  bool timeseries = false;
  std::string timeseries_file;       ///< "" = results/TIMESERIES_<bench>.json
  double timeseries_window = 0.5;    ///< window width [sim s]
  /// Per-resource operational snapshot (obs/resources.hpp) of the --trace-run
  /// sweep point. Pure observation — metrics are byte-identical on/off.
  bool resources = false;
  std::string resources_file;        ///< "" = results/RESOURCES_<bench>.json
  /// Event-kernel backend (sim/engine.hpp). Pure execution policy: results
  /// are identical for both kinds and any worker count.
  sim::EngineKind engine = sim::EngineKind::Sequential;
  int engine_workers = 0;  ///< parallel workers per run (0 = hw concurrency)
};
/// Parse the shared flags into `o`. Returns "" on success, or an error
/// message for an unknown flag or a malformed value ("--warmup 5" space
/// form included — every value flag takes `=`). `o` is left with whatever
/// was parsed up to the offending argument.
std::string try_parse_bench_args(const std::vector<std::string>& args,
                                 BenchOptions& o);

/// One usage block listing every shared flag (callers prepend their own).
std::string bench_usage();

/// Strict wrapper: on any unknown flag or malformed value prints the error
/// plus usage to stderr and exits with status 2 — a typo must never run a
/// full sweep with default settings.
BenchOptions parse_bench_args(int argc, char** argv);

/// Names of the debit-credit partitions (report columns).
std::vector<std::string> debit_credit_partition_names();

/// Stamp the result-neutral options on every config of a sweep: the engine
/// backend on all points; sampler and slow-transaction log on all points;
/// the trace ring only on the --trace-run point (and only when --trace was
/// given).
void apply_obs_options(std::vector<SystemConfig>& cfgs,
                       const BenchOptions& opt);

/// One sweep point as exported to the structured results file: the exact
/// config it ran, its results (with telemetry), and optional bench-specific
/// extra values that have no RunResult field.
struct BenchRun {
  SystemConfig config;
  RunResult result;
  /// Distinguishes runs that share one config (e.g. the kernel
  /// micro-benchmarks); "" for ordinary sweep points.
  std::string name;
  std::vector<std::pair<std::string, double>> extra;
};

/// Zip a sweep's configs and results (same order) into BenchRuns.
std::vector<BenchRun> zip_runs(const std::vector<SystemConfig>& cfgs,
                               const std::vector<RunResult>& results);

/// Write the machine-readable results document ("gemsd.results.v1",
/// validated by schemas/results.schema.json): caption, git describe, bench
/// options, and per run the full config (with fingerprint hash), headline
/// metrics, detail metrics, sampler time series and slowest transactions.
/// Returns the path written, or "" when opt.no_json is set.
std::string write_bench_json(const std::string& bench,
                             const std::string& caption,
                             const BenchOptions& opt,
                             const std::vector<BenchRun>& runs,
                             const std::vector<std::string>& partition_names);

/// Write the Chrome trace of the traced sweep point when --trace was given.
/// Returns the path written, or "" when tracing was off.
std::string write_trace_file(const BenchOptions& opt,
                             const std::vector<BenchRun>& runs);

/// Write the engine parallelism profile of the profiled sweep point when
/// --engine-profile was given: the gemsd.engprof.v1 document (first return
/// value) and, when --engine-profile-trace=F was also given, the wall-clock
/// Perfetto timeline (second). Empty strings when off or nothing profiled.
std::pair<std::string, std::string> write_engprof_files(
    const std::string& bench, const BenchOptions& opt,
    const std::vector<BenchRun>& runs);

/// Write the time series of the recorded sweep point when --timeseries was
/// given: the gemsd.timeseries.v1 document. Returns the path written, or ""
/// when off or nothing was recorded.
std::string write_timeseries_file(const std::string& bench,
                                  const BenchOptions& opt,
                                  const std::vector<BenchRun>& runs);

/// Write the resource snapshot of the recorded sweep point when --resources
/// was given: the gemsd.resources.v1 document. Returns the path written, or
/// "" when off or nothing was recorded.
std::string write_resources_file(const std::string& bench,
                                 const BenchOptions& opt,
                                 const std::vector<BenchRun>& runs);

/// One-line config fingerprint for human-readable report headers:
/// "bench git=<describe> seed=<seed> config=<hash>".
std::string fingerprint_line(const std::string& bench,
                             const SystemConfig& cfg);

/// Standard tail of a bench harness: write the structured results file and
/// the optional Chrome trace, then print the fingerprint stamp and the
/// table (or CSV, where the stamp becomes a "#" comment line).
void finish_bench(const std::string& bench, const std::string& caption,
                  const BenchOptions& opt,
                  const std::vector<SystemConfig>& cfgs,
                  const std::vector<RunResult>& runs,
                  const std::vector<std::string>& partition_names);

}  // namespace gemsd
