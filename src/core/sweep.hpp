#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "core/config.hpp"
#include "core/report.hpp"

namespace gemsd {

namespace workload {
struct Trace;
}

/// Executes a sweep of independent, deterministic simulations on a
/// fixed-size thread pool. Each run owns its own Engine/System/Rng (every
/// Scheduler stays strictly single-threaded — within a run, parallelism
/// exists only across logical processes under the safe-window engine,
/// sim/engine.hpp), so a sweep of N configurations produces bit-identical
/// results at any job count, and results always come back in submission
/// order: tables and CSV output are byte-identical to the serial path.
///
/// jobs == 1 runs every task inline on the calling thread (no pool, exactly
/// today's serial behavior); jobs == 0 resolves to hardware_concurrency.
class SweepRunner {
 public:
  explicit SweepRunner(int jobs = 0);

  int jobs() const { return jobs_; }
  static int default_jobs();

  /// Run all tasks, return their results in submission order. T must be
  /// default-constructible and movable.
  template <typename T>
  std::vector<T> map(std::vector<std::function<T()>> tasks) const {
    std::vector<T> out(tasks.size());
    for_each_index(tasks.size(),
                   [&](std::size_t i) { out[i] = tasks[i](); });
    return out;
  }

  /// Convenience: one debit-credit experiment per config.
  std::vector<RunResult> run_debit_credit(
      std::vector<SystemConfig> cfgs) const;

  /// Convenience: one trace-driven experiment per config, all replaying the
  /// same (read-only, shared) trace.
  std::vector<RunResult> run_trace(std::vector<SystemConfig> cfgs,
                                   const workload::Trace& trace) const;

 private:
  /// Invoke body(0..n-1), each index exactly once, work-stealing over the
  /// pool. The first exception thrown by any task is rethrown on the calling
  /// thread after all workers have drained.
  void for_each_index(std::size_t n,
                      const std::function<void(std::size_t)>& body) const;

  int jobs_;
};

}  // namespace gemsd
