#include "core/analytic.hpp"

#include <algorithm>

#include "sim/queueing.hpp"

namespace gemsd {

AnalyticPrediction predict_debit_credit(const SystemConfig& cfg,
                                        double bt_hit_ratio) {
  AnalyticPrediction p;
  const double mips = cfg.cpu.mips * 1e6;

  // --- CPU demand per transaction (instructions) ---
  const double path = cfg.path.bot_instr + 4 * cfg.path.per_ref_instr +
                      cfg.path.eot_instr;
  // I/O overhead: ACCOUNT read (miss) + B/T read on miss + log write +
  // (FORCE) three page writes; HISTORY allocations are free of read I/O.
  const double account_miss = 1.0;
  const double bt_miss = 1.0 - bt_hit_ratio;
  double ios = account_miss + bt_miss + 1.0;  // +1 log write
  if (cfg.update == UpdateStrategy::Force) ios += 3.0;
  const double lock_ops = 2 * 2;  // two locks: acquire + release each
  const double cpu_instr = path + ios * cfg.disk.io_instr +
                           lock_ops * cfg.lock_instr;
  p.cpu_service = cpu_instr / mips;

  // --- CPU queueing: the node as an M/M/k station ---
  // Demand rate: arrival rate x per-txn CPU time, spread over k processors.
  const double lambda = cfg.arrival_rate_per_node;
  // Busy time per txn includes synchronous GEM holds (GLT accesses).
  const double gem_hold =
      cfg.coupling == Coupling::GemLocking
          ? lock_ops * 2 * cfg.gem.entry_access  // read + C&S per lock op
          : 0.0;
  const double demand = p.cpu_service + gem_hold;
  // Effective per-burst service time: the txn visits the CPU in ~10 bursts;
  // approximate queueing with M/M/k at the burst level.
  const double bursts = 6.0 + ios;
  const double burst_service = demand / bursts;
  const double burst_rate = lambda * bursts;
  p.cpu_wait =
      sim::mmk_wait(burst_rate, burst_service, cfg.cpu.processors) * bursts;

  // --- storage times ---
  const double disk_access =
      cfg.disk.db_disk + cfg.disk.controller + cfg.disk.transfer;
  const double log_access =
      cfg.disk.log_disk + cfg.disk.controller + cfg.disk.transfer;
  const auto& bt = cfg.partitions[DebitCreditIds::kBranchTeller];
  const double bt_access =
      bt.storage == StorageKind::Gem ? cfg.gem.page_access : disk_access;

  p.account_read = disk_access;
  p.bt_read = bt_miss * bt_access;
  if (cfg.update == UpdateStrategy::Force) {
    // Log + three force-writes issued in parallel: the commit finishes when
    // the SLOWEST completes. With k iid exponential disk services the
    // expected maximum is mean * H_k (harmonic number) — substantially more
    // than one mean service time.
    int disk_writes = 2;  // ACCOUNT + HISTORY always go to disks here
    if (bt.storage != StorageKind::Gem) ++disk_writes;
    double harmonic = 0;
    for (int i = 1; i <= disk_writes; ++i) harmonic += 1.0 / i;
    const double slowest_write =
        cfg.disk.db_disk * harmonic + cfg.disk.controller + cfg.disk.transfer;
    p.commit_io = std::max(log_access, slowest_write);
  } else {
    p.commit_io = log_access;
  }

  p.total = p.cpu_service + gem_hold + p.cpu_wait + p.account_read +
            p.bt_read + p.commit_io;
  return p;
}

}  // namespace gemsd
