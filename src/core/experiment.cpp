#include "core/experiment.hpp"

#include <cstdlib>
#include <cstring>

namespace gemsd {

System::Workload make_trace_workload(const SystemConfig& cfg,
                                     const workload::Trace& trace) {
  System::Workload wl;
  wl.gen = std::make_unique<workload::TraceWorkload>(trace);
  const auto profile = workload::profile_trace(trace);
  const auto share = workload::make_affinity_routing(profile, cfg.nodes);
  if (cfg.routing == Routing::Random) {
    wl.router = std::make_unique<workload::RandomRouter>(cfg.nodes);
  } else {
    wl.router = std::make_unique<workload::TableRouter>(share);
  }
  // GLA allocation is coordinated with the affinity routing in both cases
  // (the paper computes the GLA from the reference distribution heuristics).
  wl.gla = std::make_unique<workload::FileGlaMap>(
      workload::make_gla_assignment(profile, share, cfg.nodes));
  return wl;
}

SystemConfig make_trace_config(const workload::Trace& trace) {
  SystemConfig c;
  c.arrival_rate_per_node = 50.0;
  c.buffer_pages = 1000;
  c.update = UpdateStrategy::NoForce;
  c.pcl_read_optimization = true;
  // Trace transactions are ~20x larger than debit-credit; keep the input
  // queue from becoming the bottleneck ("MPL high enough to avoid queuing
  // delays at the transaction manager").
  c.mpl = 400;
  // CPU path lengths sized so a ~57-reference transaction costs ~350k
  // instructions (the paper kept CPU and device characteristics as for
  // debit-credit; GEM runs showed ~45 % utilization at 50 TPS/node).
  c.path.bot_instr = 25000;
  c.path.per_ref_instr = 4200;
  c.path.eot_instr = 25000;
  c.partitions.resize(static_cast<std::size_t>(trace.num_files));
  for (int f = 0; f < trace.num_files; ++f) {
    auto& pc = c.partitions[static_cast<std::size_t>(f)];
    pc.name = "F" + std::to_string(f);
    pc.pages_per_unit = 66000;  // upper bound; page ids come from the trace
    pc.blocking_factor = 1;
    pc.locked = true;
    // The trace DB size is constant, but the paper gives every configuration
    // "a sufficient number of disks to avoid I/O bottlenecks" — the spindle
    // count scales with the offered throughput (nodes), not the data volume.
    pc.scale_with_nodes = true;
    pc.disks_per_unit = 12;
    pc.storage = StorageKind::Disk;
  }
  return c;
}

RunResult run_trace(const SystemConfig& cfg, const workload::Trace& trace) {
  System sys(cfg, make_trace_workload(cfg, trace));
  return sys.run();
}

BenchOptions parse_bench_args(int argc, char** argv) {
  BenchOptions o;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--quick") == 0) {
      o.warmup = 2.0;
      o.measure = 6.0;
    } else if (std::strncmp(a, "--measure=", 10) == 0) {
      o.measure = std::atof(a + 10);
    } else if (std::strncmp(a, "--warmup=", 9) == 0) {
      o.warmup = std::atof(a + 9);
    } else if (std::strncmp(a, "--max-nodes=", 12) == 0) {
      o.max_nodes = std::atoi(a + 12);
    } else if (std::strncmp(a, "--jobs=", 7) == 0) {
      o.jobs = std::atoi(a + 7);
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      o.seed = static_cast<std::uint64_t>(std::atoll(a + 7));
    } else if (std::strcmp(a, "--full") == 0) {
      o.full = true;
    } else if (std::strcmp(a, "--csv") == 0) {
      o.csv = true;
    }
  }
  return o;
}

std::vector<std::string> debit_credit_partition_names() {
  return {"B/T", "ACCT", "HIST"};
}

}  // namespace gemsd
