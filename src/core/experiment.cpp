#include "core/experiment.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <regex>

#include "obs/engprof.hpp"
#include "obs/fingerprint.hpp"
#include "obs/json.hpp"
#include "obs/memory.hpp"
#include "obs/resources.hpp"
#include "obs/telemetry.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace gemsd {

System::Workload make_trace_workload(const SystemConfig& cfg,
                                     const workload::Trace& trace) {
  System::Workload wl;
  wl.gen = std::make_unique<workload::TraceWorkload>(trace);
  const auto profile = workload::profile_trace(trace);
  const auto share = workload::make_affinity_routing(profile, cfg.nodes);
  if (cfg.routing == Routing::Random) {
    wl.router = std::make_unique<workload::RandomRouter>(cfg.nodes);
  } else {
    wl.router = std::make_unique<workload::TableRouter>(share);
  }
  // GLA allocation is coordinated with the affinity routing in both cases
  // (the paper computes the GLA from the reference distribution heuristics).
  wl.gla = std::make_unique<workload::FileGlaMap>(
      workload::make_gla_assignment(profile, share, cfg.nodes));
  return wl;
}

SystemConfig make_trace_config(const workload::Trace& trace) {
  SystemConfig c;
  c.arrival_rate_per_node = 50.0;
  c.buffer_pages = 1000;
  c.update = UpdateStrategy::NoForce;
  c.pcl_read_optimization = true;
  // Trace transactions are ~20x larger than debit-credit; keep the input
  // queue from becoming the bottleneck ("MPL high enough to avoid queuing
  // delays at the transaction manager").
  c.mpl = 400;
  // CPU path lengths sized so a ~57-reference transaction costs ~350k
  // instructions (the paper kept CPU and device characteristics as for
  // debit-credit; GEM runs showed ~45 % utilization at 50 TPS/node).
  c.path.bot_instr = 25000;
  c.path.per_ref_instr = 4200;
  c.path.eot_instr = 25000;
  c.partitions.resize(static_cast<std::size_t>(trace.num_files));
  for (int f = 0; f < trace.num_files; ++f) {
    auto& pc = c.partitions[static_cast<std::size_t>(f)];
    pc.name = "F" + std::to_string(f);
    pc.pages_per_unit = 66000;  // upper bound; page ids come from the trace
    pc.blocking_factor = 1;
    pc.locked = true;
    // The trace DB size is constant, but the paper gives every configuration
    // "a sufficient number of disks to avoid I/O bottlenecks" — the spindle
    // count scales with the offered throughput (nodes), not the data volume.
    pc.scale_with_nodes = true;
    pc.disks_per_unit = 12;
    pc.storage = StorageKind::Disk;
  }
  return c;
}

RunResult run_trace(const SystemConfig& cfg, const workload::Trace& trace) {
  System sys(cfg, make_trace_workload(cfg, trace));
  return sys.run();
}

namespace {

/// Parse "--flag=value" into value iff `a` starts with "--flag=".
bool value_of(const std::string& a, const char* flag, std::string& out) {
  const std::size_t n = std::strlen(flag);
  if (a.compare(0, n, flag) != 0 || a.size() < n + 1 || a[n] != '=') {
    return false;
  }
  out = a.substr(n + 1);
  return true;
}

bool to_double(const std::string& v, double& out) {
  if (v.empty()) return false;
  char* end = nullptr;
  out = std::strtod(v.c_str(), &end);
  return end && *end == '\0';
}

bool to_int(const std::string& v, int& out) {
  double d;
  if (!to_double(v, d) || d != static_cast<double>(static_cast<int>(d))) {
    return false;
  }
  out = static_cast<int>(d);
  return true;
}

bool to_u64(const std::string& v, std::uint64_t& out) {
  if (v.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(v.c_str(), &end, 10);
  return end && *end == '\0';
}

}  // namespace

std::string try_parse_bench_args(const std::vector<std::string>& args,
                                 BenchOptions& o) {
  for (const std::string& a : args) {
    std::string v;
    bool num_ok = true;
    if (a == "--quick") {
      o.warmup = 2.0;
      o.measure = 6.0;
    } else if (value_of(a, "--measure", v)) {
      num_ok = to_double(v, o.measure);
    } else if (value_of(a, "--warmup", v)) {
      num_ok = to_double(v, o.warmup);
    } else if (value_of(a, "--max-nodes", v)) {
      num_ok = to_int(v, o.max_nodes);
    } else if (value_of(a, "--jobs", v)) {
      num_ok = to_int(v, o.jobs);
    } else if (value_of(a, "--seed", v)) {
      num_ok = to_u64(v, o.seed);
    } else if (a == "--full") {
      o.full = true;
    } else if (a == "--csv") {
      o.csv = true;
    } else if (value_of(a, "--sample", v)) {
      num_ok = to_double(v, o.sample_every);
    } else if (value_of(a, "--slow-k", v)) {
      num_ok = to_int(v, o.slow_k);
    } else if (value_of(a, "--metrics-json", v)) {
      o.metrics_json = v;
    } else if (a == "--no-json") {
      o.no_json = true;
    } else if (value_of(a, "--trace", v)) {
      o.trace_file = v;
    } else if (value_of(a, "--trace-run", v)) {
      num_ok = to_int(v, o.trace_run);
    } else if (value_of(a, "--trace-capacity", v)) {
      std::uint64_t cap = 0;
      num_ok = to_u64(v, cap);
      o.trace_capacity = static_cast<std::size_t>(cap);
    } else if (value_of(a, "--trace-filter", v)) {
      // Validate here: a bad regex must refuse to start the sweep, not throw
      // out of a worker thread mid-run.
      try {
        (void)obs::trace_name_filter(v);
      } catch (const std::regex_error&) {
        return "malformed value in '" + a + "' (not a valid regex)";
      }
      o.trace_filter = v;
    } else if (a == "--audit") {
      o.audit = true;
    } else if (a == "--engine-profile") {
      o.engine_profile = true;
    } else if (value_of(a, "--engine-profile", v)) {
      o.engine_profile = true;
      o.engine_profile_file = v;
    } else if (value_of(a, "--engine-profile-trace", v)) {
      o.engine_profile = true;
      o.engine_profile_trace = v;
    } else if (a == "--progress") {
      o.progress_every_s = 10.0;
    } else if (value_of(a, "--progress", v)) {
      num_ok = to_double(v, o.progress_every_s) && o.progress_every_s > 0;
    } else if (a == "--timeseries") {
      o.timeseries = true;
    } else if (value_of(a, "--timeseries", v)) {
      o.timeseries = true;
      o.timeseries_file = v;
    } else if (value_of(a, "--timeseries-window", v)) {
      o.timeseries = true;
      num_ok = to_double(v, o.timeseries_window) && o.timeseries_window > 0;
    } else if (a == "--resources") {
      o.resources = true;
    } else if (value_of(a, "--resources", v)) {
      o.resources = true;
      o.resources_file = v;
    } else if (value_of(a, "--engine", v)) {
      if (v == "sequential") {
        o.engine = sim::EngineKind::Sequential;
      } else if (v == "parallel") {
        o.engine = sim::EngineKind::Parallel;
      } else {
        return "malformed value in '" + a +
               "' (expected sequential or parallel)";
      }
    } else if (value_of(a, "--engine-workers", v)) {
      num_ok = to_int(v, o.engine_workers);
    } else {
      // Catches typos ("--job=4"), unknown flags, and the space form
      // ("--warmup 5", which arrives as a bare "--warmup" plus a stray
      // value) — running a full sweep with silently-defaulted settings is
      // worse than refusing to start.
      return "unknown argument '" + a + "' (value flags take --flag=value)";
    }
    if (!num_ok) return "malformed value in '" + a + "'";
  }
  return "";
}

std::string bench_usage() {
  return
      "  --quick            shorter measurement interval (CI-friendly):\n"
      "                     warmup 2 s, measure 6 s. Later flags win, so\n"
      "                     '--quick --warmup=5' restores the default cut\n"
      "  --measure=S        measurement seconds (default 20)\n"
      "  --warmup=S         warm-up seconds (default 5, the\n"
      "                     SystemConfig::warmup default; check it after the\n"
      "                     fact with gemsd_analyze --timeseries)\n"
      "  --max-nodes=N      cap the node sweep\n"
      "  --jobs=N           worker threads (0 = hardware_concurrency)\n"
      "  --seed=S           simulation seed\n"
      "  --full             verbose per-run diagnostics\n"
      "  --csv              machine-readable output\n"
      "  --sample=S         telemetry sample interval [sim s] (0 = off)\n"
      "  --slow-k=K         record the K slowest transactions per run\n"
      "  --metrics-json=F   structured results file\n"
      "  --no-json          skip the structured results file\n"
      "  --trace=F          Chrome trace-event JSON of one sweep point\n"
      "  --trace-run=I      which sweep point gets traced (default 0)\n"
      "  --trace-capacity=N trace ring-buffer capacity [events]\n"
      "  --trace-filter=RE  record only events whose name matches the regex\n"
      "  --audit            online invariant auditors (fail fast)\n"
      "  --engine=K         event kernel: sequential (default) or parallel;\n"
      "                     results are identical either way\n"
      "  --engine-workers=N parallel-engine threads per run (0 = hw conc.)\n"
      "  --engine-profile[=F]      wall-clock engine parallelism profile of\n"
      "                     the --trace-run point (gemsd.engprof.v1 JSON;\n"
      "                     default results/ENGPROF_<bench>.json)\n"
      "  --engine-profile-trace=F  Perfetto wall-clock timeline of the\n"
      "                     profiled windows\n"
      "  --progress[=SECS]  stderr JSONL heartbeat (default 10s period)\n"
      "  --timeseries[=F]   per-window time series of the --trace-run point\n"
      "                     (gemsd.timeseries.v1 JSON; default\n"
      "                     results/TIMESERIES_<bench>.json)\n"
      "  --timeseries-window=S  window width [sim s] (default 0.5; doubles\n"
      "                     when the window cap is hit)\n"
      "  --resources[=F]    per-resource operational snapshot of the\n"
      "                     --trace-run point (gemsd.resources.v1 JSON;\n"
      "                     default results/RESOURCES_<bench>.json; analyze\n"
      "                     with gemsd_analyze --bottleneck)\n";
}

BenchOptions parse_bench_args(int argc, char** argv) {
  BenchOptions o;
  const std::string err = try_parse_bench_args(
      std::vector<std::string>(argv + 1, argv + argc), o);
  if (!err.empty()) {
    std::fprintf(stderr, "error: %s\nusage: %s [flags]\n%s", err.c_str(),
                 argc > 0 ? argv[0] : "bench", bench_usage().c_str());
    std::exit(2);
  }
  return o;
}

std::vector<std::string> debit_credit_partition_names() {
  return {"B/T", "ACCT", "HIST"};
}

void apply_obs_options(std::vector<SystemConfig>& cfgs,
                       const BenchOptions& opt) {
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    cfgs[i].engine.kind = opt.engine;
    cfgs[i].engine.workers = opt.engine_workers;
    auto& obs = cfgs[i].obs;
    obs.sample_every = opt.sample_every;
    obs.slow_k = opt.slow_k;
    obs.audit = opt.audit;
    obs.progress_every_s = opt.progress_every_s;
    const std::size_t picked =
        static_cast<std::size_t>(opt.trace_run < 0 ? 0 : opt.trace_run) %
        (cfgs.empty() ? 1 : cfgs.size());
    if (!opt.trace_file.empty() && i == picked) {
      obs.trace = true;
      obs.trace_capacity = opt.trace_capacity;
      obs.trace_filter = opt.trace_filter;
    }
    // The profiler follows the same point selection as --trace so one
    // invocation can line the simulated trace up with the wall timeline.
    if (opt.engine_profile && i == picked) {
      obs.engine_profile = true;
    }
    // The time series records the same point too.
    if (opt.timeseries && i == picked) {
      obs.timeseries = true;
      obs.timeseries_window = opt.timeseries_window;
    }
    // And the resource snapshot.
    if (opt.resources && i == picked) {
      obs.resources = true;
    }
  }
}

std::vector<BenchRun> zip_runs(const std::vector<SystemConfig>& cfgs,
                               const std::vector<RunResult>& results) {
  std::vector<BenchRun> out;
  out.reserve(results.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    BenchRun b;
    if (i < cfgs.size()) b.config = cfgs[i];
    b.result = results[i];
    out.push_back(std::move(b));
  }
  return out;
}

namespace {

void write_metrics_object(obs::JsonWriter& w, const RunResult& r,
                          const std::vector<std::string>& partition_names) {
  w.begin_object();
  w.kv("label", r.label());
  w.kv("nodes", static_cast<std::int64_t>(r.nodes));
  w.kv("coupling", to_string(r.coupling));
  w.kv("update", to_string(r.update));
  w.kv("routing", to_string(r.routing));
  w.kv("buffer_pages", static_cast<std::int64_t>(r.buffer_pages));
  w.kv("arrival_rate_per_node", r.arrival_rate_per_node);
  w.kv("resp_ms", r.resp_ms);
  w.kv("resp_ci_ms", r.resp_ci_ms);
  w.kv("resp_p95_ms", r.resp_p95_ms);
  w.kv("resp_norm_ms", r.resp_norm_ms);
  w.kv("throughput", r.throughput);
  w.kv("commits", static_cast<std::uint64_t>(r.commits));
  w.kv("aborts", static_cast<std::uint64_t>(r.aborts));
  w.kv("deadlocks", static_cast<std::uint64_t>(r.deadlocks));
  w.kv("cpu_util", r.cpu_util);
  w.kv("cpu_util_max", r.cpu_util_max);
  w.kv("gem_util", r.gem_util);
  w.kv("net_util", r.net_util);
  w.kv("tps_per_node_at_80", r.tps_per_node_at_80);
  w.key("hit_ratio");
  w.begin_object();
  for (std::size_t p = 0; p < r.hit_ratio.size(); ++p) {
    const std::string name =
        p < partition_names.size() ? partition_names[p] : std::to_string(p);
    w.kv(name, r.hit_ratio[p]);
  }
  w.end_object();
  w.kv("invalidations_per_txn", r.invalidations_per_txn);
  w.kv("page_requests_per_txn", r.page_requests_per_txn);
  w.kv("page_request_delay_ms", r.page_request_delay_ms);
  w.kv("evict_writes_per_txn", r.evict_writes_per_txn);
  w.kv("force_writes_per_txn", r.force_writes_per_txn);
  w.kv("local_lock_fraction", r.local_lock_fraction);
  w.kv("lock_waits_per_txn", r.lock_waits_per_txn);
  w.kv("lock_wait_ms", r.lock_wait_ms);
  w.kv("messages_per_txn", r.messages_per_txn);
  w.kv("revocations_per_txn", r.revocations_per_txn);
  w.key("breakdown_ms");
  w.begin_object();
  w.kv("cpu", r.brk_cpu_ms);
  w.kv("cpu_wait", r.brk_cpu_wait_ms);
  w.kv("io", r.brk_io_ms);
  w.kv("cc", r.brk_cc_ms);
  w.kv("queue", r.brk_queue_ms);
  w.end_object();
  // Additive v1 extension: tail percentiles of the response time and of each
  // breakdown phase (ms). --compare reads only resp_ms/resp_ci_ms/throughput,
  // so baselines written before this key stay comparable.
  w.key("percentiles");
  w.begin_object();
  const auto pct = [&w](const char* key, const RunResult::Percentiles& p) {
    w.key(key);
    w.begin_object();
    w.kv("p50", p.p50);
    w.kv("p95", p.p95);
    w.kv("p99", p.p99);
    w.end_object();
  };
  pct("response_ms", r.pct_resp);
  pct("cpu_ms", r.pct_cpu);
  pct("cpu_wait_ms", r.pct_cpu_wait);
  pct("io_ms", r.pct_io);
  pct("cc_ms", r.pct_cc);
  pct("queue_ms", r.pct_queue);
  w.end_object();
  // Additive v1 extension: per-GEM-shard rows (one row when gem_shards=1).
  // --compare gates these whenever both documents carry the block, so a
  // sharding regression in any single shard fails the comparison even when
  // the aggregate gem_util happens to average out.
  w.key("gem_shards");
  w.begin_array();
  for (const auto& gs : r.gem_shards) {
    w.begin_object();
    w.kv("util", gs.util);
    w.kv("queue_mean", gs.queue_mean);
    w.kv("wait_ms", gs.wait_ms);
    w.kv("completions", static_cast<std::uint64_t>(gs.completions));
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_telemetry_members(obs::JsonWriter& w, const obs::RunTelemetry* tel) {
  w.key("detail");
  w.begin_object();
  if (tel) {
    for (const auto& [name, value] : tel->detail) w.kv(name, value);
  }
  w.end_object();

  w.key("samples");
  w.begin_array();
  if (tel) {
    for (const auto& s : tel->samples) {
      w.begin_object();
      w.kv("t", s.t);
      w.kv("throughput", s.throughput);
      w.kv("resp_ms", s.resp_ms);
      w.kv("commits", static_cast<std::uint64_t>(s.commits));
      w.kv("aborts", static_cast<std::uint64_t>(s.aborts));
      w.kv("active_txns", s.active_txns);
      w.kv("mpl_waiting", s.mpl_waiting);
      w.kv("cpu_busy", s.cpu_busy);
      w.kv("gem_busy", s.gem_busy);
      w.kv("net_busy", s.net_busy);
      w.kv("disk_queue", s.disk_queue);
      w.kv("sched_queue", s.sched_queue);
      w.kv("in_warmup", s.in_warmup);
      w.end_object();
    }
  }
  w.end_array();

  w.key("slowest");
  w.begin_array();
  if (tel) {
    for (const auto& t : tel->slowest) {
      w.begin_object();
      w.kv("id", static_cast<std::uint64_t>(t.id));
      w.kv("node", static_cast<std::int64_t>(t.node));
      w.kv("type", static_cast<std::int64_t>(t.type));
      w.kv("restarts", static_cast<std::int64_t>(t.restarts));
      w.kv("arrival_s", t.arrival);
      w.kv("response_ms", t.response * 1e3);
      w.key("breakdown_ms");
      w.begin_object();
      w.kv("cpu", t.cpu * 1e3);
      w.kv("cpu_wait", t.cpu_wait * 1e3);
      w.kv("io", t.io * 1e3);
      w.kv("cc", t.cc * 1e3);
      w.kv("queue", t.queue * 1e3);
      w.end_object();
      w.end_object();
    }
  }
  w.end_array();
}

bool write_text_file(const std::string& path, const std::string& text) {
  const std::filesystem::path p(path);
  std::error_code ec;
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  out << text;
  return true;
}

}  // namespace

std::string write_bench_json(const std::string& bench,
                             const std::string& caption,
                             const BenchOptions& opt,
                             const std::vector<BenchRun>& runs,
                             const std::vector<std::string>& partition_names) {
  if (opt.no_json) return "";
  const std::string path = opt.metrics_json.empty()
                               ? "results/BENCH_" + bench + ".json"
                               : opt.metrics_json;

  obs::JsonWriter w;
  w.begin_object();
  w.kv("schema", "gemsd.results.v1");
  w.kv("bench", bench);
  w.kv("caption", caption);
  w.kv("git", obs::build_git_describe());
  // Process footprint at emission time: the peak covers every run in the
  // file, which is what scale-out memory budgets gate on. Best-effort zeros
  // off Linux; wall-clock-side only, so metrics stay bit-identical.
  const obs::MemoryUsage mem = obs::memory_usage();
  w.key("memory");
  w.begin_object();
  w.kv("current_rss_bytes", mem.current_rss_bytes);
  w.kv("peak_rss_bytes", mem.peak_rss_bytes);
  w.kv("heap_bytes", mem.heap_bytes);
  w.end_object();
  w.key("options");
  w.begin_object();
  w.kv("warmup", opt.warmup);
  w.kv("measure", opt.measure);
  w.kv("max_nodes", static_cast<std::int64_t>(opt.max_nodes));
  w.kv("seed", static_cast<std::uint64_t>(opt.seed));
  w.kv("sample_every", opt.sample_every);
  w.kv("slow_k", static_cast<std::int64_t>(opt.slow_k));
  w.kv("audit", opt.audit);
  w.kv("trace_filter", opt.trace_filter);
  w.kv("engine", opt.engine == sim::EngineKind::Parallel
                     ? "parallel"
                     : "sequential");
  w.kv("engine_workers", static_cast<std::int64_t>(opt.engine_workers));
  w.end_object();
  w.key("partitions");
  w.begin_array();
  for (const auto& p : partition_names) w.value(p);
  w.end_array();

  w.key("runs");
  w.begin_array();
  for (const auto& run : runs) {
    w.begin_object();
    w.kv("config_hash", obs::config_hash_hex(run.config));
    w.kv("name", run.name);
    w.key("config");
    w.raw(obs::config_json(run.config));
    w.key("metrics");
    write_metrics_object(w, run.result, partition_names);
    w.key("extra");
    w.begin_object();
    for (const auto& [name, value] : run.extra) w.kv(name, value);
    w.end_object();
    write_telemetry_members(w, run.result.telemetry.get());
    w.end_object();
  }
  w.end_array();
  w.end_object();

  return write_text_file(path, w.take()) ? path : "";
}

std::string write_trace_file(const BenchOptions& opt,
                             const std::vector<BenchRun>& runs) {
  if (opt.trace_file.empty() || runs.empty()) return "";
  const std::size_t idx =
      static_cast<std::size_t>(opt.trace_run < 0 ? 0 : opt.trace_run) %
      runs.size();
  const BenchRun& run = runs[idx];
  const auto* tel = run.result.telemetry.get();
  if (!tel || !tel->trace_enabled) {
    std::fprintf(stderr, "warning: --trace given but run %zu has no trace\n",
                 idx);
    return "";
  }
  obs::JsonWriter git, seed;
  git.value(obs::build_git_describe());
  seed.value(static_cast<std::uint64_t>(run.config.seed));
  obs::JsonWriter hash;
  hash.value(obs::config_hash_hex(run.config));
  const std::vector<std::pair<std::string, std::string>> metadata = {
      {"git", git.take()},
      {"seed", seed.take()},
      {"config_hash", hash.take()},
      {"config", obs::config_json(run.config)},
  };
  const std::string json = obs::chrome_trace_json(*tel, metadata);
  return write_text_file(opt.trace_file, json) ? opt.trace_file : "";
}

std::pair<std::string, std::string> write_engprof_files(
    const std::string& bench, const BenchOptions& opt,
    const std::vector<BenchRun>& runs) {
  if (!opt.engine_profile || runs.empty()) return {"", ""};
  const std::size_t idx =
      static_cast<std::size_t>(opt.trace_run < 0 ? 0 : opt.trace_run) %
      runs.size();
  const BenchRun& run = runs[idx];
  const auto* tel = run.result.telemetry.get();
  if (!tel || !tel->engprof) {
    std::fprintf(stderr,
                 "warning: --engine-profile given but run %zu has no "
                 "engine profile\n",
                 idx);
    return {"", ""};
  }
  obs::JsonWriter git, seed, hash;
  git.value(obs::build_git_describe());
  seed.value(static_cast<std::uint64_t>(run.config.seed));
  hash.value(obs::config_hash_hex(run.config));
  const std::vector<std::pair<std::string, std::string>> metadata = {
      {"git", git.take()},
      {"seed", seed.take()},
      {"config_hash", hash.take()},
  };
  const std::string path = opt.engine_profile_file.empty()
                               ? "results/ENGPROF_" + bench + ".json"
                               : opt.engine_profile_file;
  std::pair<std::string, std::string> out;
  if (write_text_file(path, obs::engprof_json(*tel->engprof, metadata))) {
    out.first = path;
  }
  if (!opt.engine_profile_trace.empty() &&
      write_text_file(opt.engine_profile_trace,
                      obs::engprof_chrome_json(*tel->engprof, metadata))) {
    out.second = opt.engine_profile_trace;
  }
  return out;
}

std::string write_timeseries_file(const std::string& bench,
                                  const BenchOptions& opt,
                                  const std::vector<BenchRun>& runs) {
  if (!opt.timeseries || runs.empty()) return "";
  const std::size_t idx =
      static_cast<std::size_t>(opt.trace_run < 0 ? 0 : opt.trace_run) %
      runs.size();
  const BenchRun& run = runs[idx];
  const auto* tel = run.result.telemetry.get();
  if (!tel || !tel->timeseries) {
    std::fprintf(stderr,
                 "warning: --timeseries given but run %zu has no "
                 "time series\n",
                 idx);
    return "";
  }
  obs::JsonWriter git, seed, hash;
  git.value(obs::build_git_describe());
  seed.value(static_cast<std::uint64_t>(run.config.seed));
  hash.value(obs::config_hash_hex(run.config));
  const std::vector<std::pair<std::string, std::string>> metadata = {
      {"git", git.take()},
      {"seed", seed.take()},
      {"config_hash", hash.take()},
  };
  const std::string path = opt.timeseries_file.empty()
                               ? "results/TIMESERIES_" + bench + ".json"
                               : opt.timeseries_file;
  return write_text_file(path,
                         obs::timeseries_json(*tel->timeseries, metadata))
             ? path
             : "";
}

std::string write_resources_file(const std::string& bench,
                                 const BenchOptions& opt,
                                 const std::vector<BenchRun>& runs) {
  if (!opt.resources || runs.empty()) return "";
  const std::size_t idx =
      static_cast<std::size_t>(opt.trace_run < 0 ? 0 : opt.trace_run) %
      runs.size();
  const BenchRun& run = runs[idx];
  const auto* tel = run.result.telemetry.get();
  if (!tel || !tel->resources) {
    std::fprintf(stderr,
                 "warning: --resources given but run %zu has no "
                 "resource snapshot\n",
                 idx);
    return "";
  }
  obs::JsonWriter git, seed, hash;
  git.value(obs::build_git_describe());
  seed.value(static_cast<std::uint64_t>(run.config.seed));
  hash.value(obs::config_hash_hex(run.config));
  const std::vector<std::pair<std::string, std::string>> metadata = {
      {"git", git.take()},
      {"seed", seed.take()},
      {"config_hash", hash.take()},
  };
  const std::string path = opt.resources_file.empty()
                               ? "results/RESOURCES_" + bench + ".json"
                               : opt.resources_file;
  return write_text_file(path,
                         obs::resources_json(*tel->resources, metadata))
             ? path
             : "";
}

std::string fingerprint_line(const std::string& bench,
                             const SystemConfig& cfg) {
  std::string s = bench;
  s += " git=";
  s += obs::build_git_describe();
  s += " seed=" + std::to_string(cfg.seed);
  s += " config=" + obs::config_hash_hex(cfg);
  return s;
}

void finish_bench(const std::string& bench, const std::string& caption,
                  const BenchOptions& opt,
                  const std::vector<SystemConfig>& cfgs,
                  const std::vector<RunResult>& runs,
                  const std::vector<std::string>& partition_names) {
  const auto bruns = zip_runs(cfgs, runs);
  const std::string json_path =
      write_bench_json(bench, caption, opt, bruns, partition_names);
  const std::string trace_path = write_trace_file(opt, bruns);
  const auto engprof_paths = write_engprof_files(bench, opt, bruns);
  const std::string ts_path = write_timeseries_file(bench, opt, bruns);
  const std::string res_path = write_resources_file(bench, opt, bruns);
  const SystemConfig stamp_cfg = cfgs.empty() ? SystemConfig{} : cfgs.front();
  if (opt.csv) {
    std::printf("# %s\n", fingerprint_line(bench, stamp_cfg).c_str());
    print_csv(runs, partition_names);
  } else {
    print_table(caption, runs, partition_names, opt.full);
    std::printf("%s\n", fingerprint_line(bench, stamp_cfg).c_str());
    if (!json_path.empty()) std::printf("results: %s\n", json_path.c_str());
    if (!trace_path.empty()) std::printf("trace: %s\n", trace_path.c_str());
    if (!engprof_paths.first.empty()) {
      std::printf("engine profile: %s\n", engprof_paths.first.c_str());
    }
    if (!engprof_paths.second.empty()) {
      std::printf("engine timeline: %s\n", engprof_paths.second.c_str());
    }
    if (!ts_path.empty()) {
      std::printf("timeseries: %s\n", ts_path.c_str());
    }
    if (!res_path.empty()) {
      std::printf("resources: %s\n", res_path.c_str());
    }
  }
}

}  // namespace gemsd
