#include "core/scenario.hpp"

#include <cstdio>
#include <filesystem>
#include <map>
#include <sstream>
#include <stdexcept>

#include "core/config_file.hpp"
#include "core/sweep.hpp"
#include "obs/fingerprint.hpp"
#include "workload/trace_generator.hpp"

namespace gemsd {

namespace {

/// Effective (post --max-nodes) values of one dimension.
struct EffDim {
  std::vector<std::size_t> idx;  ///< original value indices
  std::vector<int> nodes;        ///< effective node count (-1: not a node axis)
  std::vector<std::string> labels;
};

std::vector<EffDim> effective_dims(const Scenario& sc,
                                   const BenchOptions& opt) {
  std::vector<EffDim> eff(sc.dims.size());
  for (std::size_t d = 0; d < sc.dims.size(); ++d) {
    const Dim& dim = sc.dims[d];
    int last_nodes = -1;
    for (std::size_t v = 0; v < dim.values.size(); ++v) {
      const DimValue& dv = dim.values[v];
      int n = dv.nodes;
      if (n >= 0) {
        if (dim.clamp_nodes) {
          n = std::min(n, opt.max_nodes);
          if (!eff[d].idx.empty() && n == last_nodes) continue;  // collapsed
        } else if (n > opt.max_nodes) {
          continue;
        }
      }
      last_nodes = n;
      eff[d].idx.push_back(v);
      eff[d].nodes.push_back(n);
      eff[d].labels.push_back(
          !dv.label.empty() ? dv.label
          : n >= 0          ? "n=" + std::to_string(n)
                            : std::string());
    }
  }
  return eff;
}

std::size_t product(const std::vector<EffDim>& eff, std::size_t from,
                    std::size_t to) {
  std::size_t p = 1;
  for (std::size_t d = from; d < to; ++d) p *= eff[d].idx.size();
  return p;
}

std::size_t leading_group_dims(const Scenario& sc) {
  std::size_t g = 0;
  while (g < sc.dims.size() && sc.dims[g].group) ++g;
  for (std::size_t d = g; d < sc.dims.size(); ++d) {
    if (sc.dims[d].group) {
      throw std::logic_error("scenario " + sc.name +
                             ": group dimensions must come first");
    }
  }
  return g;
}

void ensure_parent_dir(const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
}

}  // namespace

const Scenario* find_scenario(const std::string& name) {
  for (const Scenario& sc : scenario_registry()) {
    if (sc.name == name) return &sc;
  }
  return nullptr;
}

Dim node_dim(std::vector<int> ns, bool clamp) {
  Dim d;
  d.name = "nodes";
  d.clamp_nodes = clamp;
  for (int n : ns) {
    DimValue v;
    v.nodes = n;
    d.values.push_back(std::move(v));
  }
  return d;
}

double extra_of(const BenchRun& run, const std::string& key,
                double fallback) {
  for (const auto& [k, v] : run.extra) {
    if (k == key) return v;
  }
  return fallback;
}

std::size_t scenario_cell_count(const Scenario& sc, const BenchOptions& opt) {
  if (sc.report) return 0;
  const auto eff = effective_dims(sc, opt);
  return product(eff, 0, eff.size());
}

static std::shared_ptr<const workload::Trace> make_scenario_trace(
    const Scenario& sc) {
  sim::Rng rng(7);
  workload::SyntheticTraceConfig tc;
  tc.transactions = sc.trace_txns;
  return std::make_shared<const workload::Trace>(
      workload::generate_synthetic_trace(tc, rng));
}

ScenarioPlan build_scenario_plan(const Scenario& sc, const BenchOptions& opt) {
  ScenarioPlan plan;
  if (sc.workload == Scenario::WorkloadKind::Trace) {
    plan.trace = make_scenario_trace(sc);
    for (int f = 0; f < plan.trace->num_files; ++f) {
      plan.partition_names.push_back("F" + std::to_string(f));
    }
  } else if (sc.report) {
    plan.partition_names = debit_credit_partition_names();
    return plan;
  }

  const std::size_t ngroup = leading_group_dims(sc);
  const auto eff = effective_dims(sc, opt);
  const std::size_t total = product(eff, 0, eff.size());
  const std::size_t inner = product(eff, ngroup, eff.size());

  SystemConfig base;
  if (sc.base) {
    base = sc.base();
  } else if (sc.workload == Scenario::WorkloadKind::Trace) {
    base = make_trace_config(*plan.trace);
  } else {
    base = make_debit_credit_config();
  }
  if (plan.partition_names.empty()) {
    for (const auto& p : base.partitions) plan.partition_names.push_back(p.name);
    if (base.partitions.size() == 3 &&
        base.partitions[0].name == "BRANCH/TELLER") {
      plan.partition_names = debit_credit_partition_names();
    }
  }
  if (sc.tweak) sc.tweak(base);
  if (sc.stamp_time) {
    base.warmup = opt.warmup;
    base.measure = opt.measure;
  }
  if (sc.stamp_seed) base.seed = opt.seed;

  for (std::size_t i = 0; i < total; ++i) {
    ScenarioCell cell;
    cell.cfg = base;
    // Decompose the flat index, outermost dimension first.
    std::size_t rest = i, radix = total;
    for (std::size_t d = 0; d < eff.size(); ++d) {
      radix /= eff[d].idx.size();
      const std::size_t k = rest / radix;
      rest %= radix;
      const Dim& dim = sc.dims[d];
      const DimValue& dv = dim.values[eff[d].idx[k]];
      if (eff[d].nodes[k] >= 0) cell.cfg.nodes = eff[d].nodes[k];
      if (dv.apply) dv.apply(cell.cfg);
      cell.value_idx.push_back(eff[d].idx[k]);
      cell.params.push_back(dv.param);
      for (const auto& e : dv.extra) cell.extra.push_back(e);
      if (!eff[d].labels[k].empty()) {
        if (!cell.label.empty()) cell.label += " ";
        cell.label += eff[d].labels[k];
      }
    }
    plan.cells.push_back(std::move(cell));
  }

  // Output groups: one per leading-group-dimension value combination.
  const std::size_t ngroups = inner ? total / inner : 0;
  for (std::size_t g = 0; g < ngroups; ++g) {
    ScenarioPlan::Group grp;
    grp.begin = g * inner;
    grp.end = grp.begin + inner;
    if (ngroup == 0) {
      grp.title = sc.caption;
    } else {
      std::vector<std::string> labels;
      std::size_t rest = g, radix = ngroups;
      for (std::size_t d = 0; d < ngroup; ++d) {
        radix /= eff[d].idx.size();
        labels.push_back(eff[d].labels[rest / radix]);
        rest %= radix;
      }
      if (sc.group_title) {
        grp.title = sc.group_title(labels);
      } else {
        grp.title = sc.caption + " [";
        for (std::size_t j = 0; j < labels.size(); ++j) {
          if (j) grp.title += ", ";
          grp.title += labels[j];
        }
        grp.title += "]";
      }
    }
    plan.groups.push_back(std::move(grp));
  }
  return plan;
}

ScenarioResult run_scenario(const Scenario& sc, const BenchOptions& opt) {
  ScenarioResult res;
  res.plan = build_scenario_plan(sc, opt);
  if (sc.report) return res;

  std::vector<SystemConfig> cfgs;
  cfgs.reserve(res.plan.cells.size());
  for (const ScenarioCell& c : res.plan.cells) cfgs.push_back(c.cfg);
  apply_obs_options(cfgs, opt);

  const ScenarioPlan& plan = res.plan;
  std::vector<std::function<BenchRun()>> tasks;
  tasks.reserve(cfgs.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    const SystemConfig& cfg = cfgs[i];
    const ScenarioCell& cell = plan.cells[i];
    tasks.push_back([&sc, &cfg, &cell, &plan] {
      BenchRun b;
      b.config = cfg;
      b.extra = cell.extra;
      if (sc.cell) {
        sc.cell(cfg, cell, b);
      } else if (sc.workload == Scenario::WorkloadKind::Trace) {
        System sys(cfg, make_trace_workload(cfg, *plan.trace));
        b.result = sys.run();
        if (sc.probe) sc.probe(sys, b);
      } else {
        System sys(cfg, make_debit_credit_workload(cfg));
        b.result = sys.run();
        if (sc.probe) sc.probe(sys, b);
      }
      return b;
    });
  }
  res.runs = SweepRunner(opt.jobs).map(std::move(tasks));
  return res;
}

void emit_scenario(const Scenario& sc, const BenchOptions& opt,
                   const ScenarioResult& res, const std::string& out_dir) {
  BenchOptions jopt = opt;
  if (jopt.metrics_json.empty() && !out_dir.empty()) {
    jopt.metrics_json = out_dir + "/BENCH_" + sc.name + ".json";
  }
  if (!jopt.no_json && !jopt.metrics_json.empty()) {
    ensure_parent_dir(jopt.metrics_json);
  }

  const ScenarioPlan& plan = res.plan;
  const SystemConfig stamp_cfg =
      plan.cells.empty() ? (sc.base ? sc.base() : make_debit_credit_config())
                         : plan.cells.front().cfg;

  if (sc.report) {
    write_bench_json(sc.name, sc.caption, jopt, {}, plan.partition_names);
    std::printf("# %s\n", fingerprint_line(sc.name, stamp_cfg).c_str());
    sc.report();
    return;
  }

  const std::string json_path =
      write_bench_json(sc.name, sc.caption, jopt, res.runs,
                       plan.partition_names);
  const std::string trace_path = write_trace_file(jopt, res.runs);
  const auto engprof_paths = write_engprof_files(sc.name, jopt, res.runs);
  const std::string ts_path = write_timeseries_file(sc.name, jopt, res.runs);
  const std::string res_path = write_resources_file(sc.name, jopt, res.runs);

  if (!opt.csv && plan.trace) {
    const auto stats = workload::compute_stats(*plan.trace);
    std::printf(
        "trace: %zu txns, %zu refs (avg %.1f), %zu distinct pages, "
        "%.1f%% write refs, %.1f%% update txns, largest txn %zu\n",
        stats.transactions, stats.references, stats.mean_refs,
        stats.distinct_pages, stats.write_ref_fraction * 100,
        stats.update_txn_fraction * 100, stats.largest_txn);
  }

  // Slice the flat run vector per output group — callers never index by
  // hand (the old per_strategy arithmetic).
  auto group_results = [&](const ScenarioPlan::Group& g) {
    std::vector<RunResult> rs;
    for (std::size_t i = g.begin; i < g.end && i < res.runs.size(); ++i) {
      rs.push_back(res.runs[i].result);
    }
    return rs;
  };

  if (opt.csv) {
    for (const auto& g : plan.groups) {
      std::printf("# %s\n", fingerprint_line(sc.name, stamp_cfg).c_str());
      print_csv(group_results(g), plan.partition_names);
    }
    return;
  }

  if (sc.table) {
    std::printf("# %s\n", fingerprint_line(sc.name, stamp_cfg).c_str());
    sc.table(res, opt);
  } else {
    if (!sc.note_pre.empty()) std::printf("\n%s\n", sc.note_pre.c_str());
    for (const auto& g : plan.groups) {
      print_table(g.title, group_results(g), plan.partition_names, opt.full);
    }
    std::printf("%s\n", fingerprint_line(sc.name, stamp_cfg).c_str());
  }
  if (!json_path.empty()) std::printf("results: %s\n", json_path.c_str());
  if (!trace_path.empty()) std::printf("trace: %s\n", trace_path.c_str());
  if (!engprof_paths.first.empty()) {
    std::printf("engine profile: %s\n", engprof_paths.first.c_str());
  }
  if (!engprof_paths.second.empty()) {
    std::printf("engine timeline: %s\n", engprof_paths.second.c_str());
  }
  if (!ts_path.empty()) {
    std::printf("timeseries: %s\n", ts_path.c_str());
  }
  if (!res_path.empty()) {
    std::printf("resources: %s\n", res_path.c_str());
  }
  if (sc.post) sc.post(res, opt);
  if (!sc.note.empty()) std::printf("\n%s\n", sc.note.c_str());
}

std::string export_scenario_spec(const Scenario& sc, const BenchOptions& opt) {
  if (!sc.exportable) {
    throw std::runtime_error("scenario " + sc.name +
                             " is not expressible as a run spec");
  }
  const ScenarioPlan plan = build_scenario_plan(sc, opt);
  if (plan.cells.empty()) {
    throw std::runtime_error("scenario " + sc.name +
                             ": no runs selected (check --max-nodes)");
  }

  std::vector<SpecKeyValues> kvs;
  std::vector<std::map<std::string, std::string>> maps;
  for (const ScenarioCell& c : plan.cells) {
    kvs.push_back(spec_keys(c.cfg));
    maps.emplace_back(kvs.back().begin(), kvs.back().end());
  }
  // A key is shared iff every run carries it with the same value; shared
  // keys form the [system] base, the rest go into each [run].
  std::map<std::string, bool> shared;
  for (const auto& [k, v] : kvs.front()) {
    bool same = true;
    for (const auto& m : maps) {
      const auto it = m.find(k);
      if (it == m.end() || it->second != v) {
        same = false;
        break;
      }
    }
    shared[k] = same;
  }

  std::ostringstream out;
  out << "# " << sc.name << " — "
      << (sc.doc.empty() ? sc.caption : sc.doc) << "\n";
  out << "# Generated by `gemsd_bench --export-spec`; the source of truth is\n"
         "# the scenario registry (src/core/scenario_registry.cpp).\n\n";
  out << "[scenario]\nname = " << sc.name << "\ncaption = " << sc.caption
      << "\n\n";
  out << "[workload]\nkind = "
      << (sc.workload == Scenario::WorkloadKind::Trace ? "trace"
                                                       : "debit_credit")
      << "\n";
  if (sc.workload == Scenario::WorkloadKind::Trace) {
    out << "trace_txns = " << sc.trace_txns << "\n";
  }
  out << "\n[system]\n";
  for (const auto& [k, v] : kvs.front()) {
    if (shared[k]) out << k << " = " << v << "\n";
  }
  for (std::size_t i = 0; i < plan.cells.size(); ++i) {
    out << "\n";
    if (!plan.cells[i].label.empty()) {
      out << "# run: " << plan.cells[i].label << "\n";
    }
    out << "[run]\n";
    for (const auto& [k, v] : kvs[i]) {
      const auto it = shared.find(k);
      if (it != shared.end() && it->second) continue;
      out << k << " = " << v << "\n";
    }
  }

  // Self-verification: parse the text back and rebuild each run the way
  // gemsd_run does; any drift between registry and spec is a hard error
  // here rather than a silent baseline mismatch later.
  const std::string text = out.str();
  std::istringstream in(text);
  const SpecDoc doc = parse_spec_doc(in);
  if (doc.runs.size() != plan.cells.size()) {
    throw std::runtime_error("export of " + sc.name + ": spec has " +
                             std::to_string(doc.runs.size()) +
                             " runs, registry has " +
                             std::to_string(plan.cells.size()));
  }
  for (std::size_t i = 0; i < doc.runs.size(); ++i) {
    SystemConfig rebuilt;
    if (doc.runs[i].kind == RunSpec::Kind::Trace) {
      rebuilt = make_trace_config(*plan.trace);
      apply_spec_keys(rebuilt, doc.runs[i].keys);
    } else {
      rebuilt = doc.runs[i].cfg;
    }
    if (obs::config_json(rebuilt) != obs::config_json(plan.cells[i].cfg)) {
      throw std::runtime_error(
          "export of " + sc.name + ": run " + std::to_string(i) + " (" +
          plan.cells[i].label +
          ") does not round-trip through the spec format");
    }
  }
  return text;
}

}  // namespace gemsd
