#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace gemsd {

using NodeId = int;
using TxnId = std::uint64_t;
using PartitionId = std::int32_t;
using SeqNo = std::uint64_t;

constexpr NodeId kNoNode = -1;

/// A database page: (partition, page number within partition).
struct PageId {
  PartitionId partition = 0;
  std::int64_t page = 0;

  friend bool operator==(const PageId&, const PageId&) = default;
  friend auto operator<=>(const PageId&, const PageId&) = default;

  /// Packed key for hash maps (partition in the top 16 bits).
  std::uint64_t key() const {
    return (static_cast<std::uint64_t>(static_cast<std::uint16_t>(partition))
            << 48) |
           (static_cast<std::uint64_t>(page) & 0xffffffffffffULL);
  }
};

/// Sentinel page number: "append to this node's current tail page" (used for
/// sequential files such as debit-credit HISTORY whose target page is only
/// known at execution time).
constexpr std::int64_t kAppendPage = -1;

/// Lock modes: Read (shared), Update (read now, intends to write — shared
/// with readers but exclusive among updaters, the classic cure for
/// read-then-write upgrade deadlocks), Write (exclusive).
enum class LockMode { Read, Update, Write };

inline bool lock_compatible(LockMode a, LockMode b) {
  if (a == LockMode::Write || b == LockMode::Write) return false;
  if (a == LockMode::Update && b == LockMode::Update) return false;
  return true;  // R-R, R-U, U-R
}

/// Mode ordering for upgrade decisions: Read < Update < Write.
inline int lock_strength(LockMode m) {
  switch (m) {
    case LockMode::Read: return 0;
    case LockMode::Update: return 1;
    case LockMode::Write: return 2;
  }
  return 0;
}
inline bool lock_covers(LockMode held, LockMode requested) {
  return lock_strength(held) >= lock_strength(requested);
}

/// Update propagation strategy between buffer and permanent database [HR83].
enum class UpdateStrategy {
  Force,    ///< all modified pages written to storage before commit
  NoForce,  ///< only log at commit; dirty pages written on eviction
};

enum class Routing {
  Random,    ///< load-balancing only (round robin)
  Affinity,  ///< affinity-based: maximize node-specific locality
};

/// Concurrency/coherency control scheme = coupling mode.
enum class Coupling {
  GemLocking,   ///< close coupling: global lock table in GEM
  PrimaryCopy,  ///< loose coupling: primary copy locking (PCL)
  LockEngine,   ///< [Yu87]: central lock engine + broadcast invalidation
};

/// Where a database partition (or the log) is allocated.
enum class StorageKind {
  Disk,              ///< plain magnetic disks
  DiskVolatileCache, ///< disks behind a shared volatile cache (read hits)
  DiskNvCache,       ///< disks behind a shared non-volatile cache (read+write)
  DiskGemCache,      ///< disks behind a global page cache resident in GEM
                     ///< (non-volatile: absorbs writes; [DIRY89/DDY91]-style
                     ///< intermediate memory, or a small GEM write buffer)
  Gem,               ///< file resident in Global Extended Memory
};

const char* to_string(UpdateStrategy s);
const char* to_string(Routing r);
const char* to_string(Coupling c);
const char* to_string(StorageKind k);

}  // namespace gemsd

template <>
struct std::hash<gemsd::PageId> {
  std::size_t operator()(const gemsd::PageId& p) const noexcept {
    // splitmix64 finalizer over the packed key
    std::uint64_t x = p.key() + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};
