#pragma once

#include "core/config.hpp"

namespace gemsd {

/// Back-of-the-envelope analytic model of the debit-credit response time for
/// a *conflict-free, affinity-routed* configuration — the case where simple
/// queueing theory applies (every station is close to M/M/k, no coherency
/// traffic). Used to validate the simulator: at affinity routing the DES
/// results must land near these predictions; every deviation the paper
/// studies (random routing, buffer invalidations, message overhead) then
/// shows up as a measured *delta* against this baseline.
struct AnalyticPrediction {
  double cpu_service = 0;    ///< pure instruction execution time
  double cpu_wait = 0;       ///< M/M/k queueing at the node CPU
  double account_read = 0;   ///< expected ACCOUNT miss read time
  double bt_read = 0;        ///< expected BRANCH/TELLER miss read time
  double commit_io = 0;      ///< log write (NOFORCE) / parallel force-writes
  double total = 0;
};

/// Predict the mean response time for the given config, assuming affinity
/// routing and steady hit ratios: ACCOUNT never hits, HISTORY hits 95 %,
/// BRANCH/TELLER hits with probability `bt_hit_ratio` (measured or assumed;
/// the central-case values are ~0.71 at 200 frames and ~1.0 at 1000).
AnalyticPrediction predict_debit_credit(const SystemConfig& cfg,
                                        double bt_hit_ratio);

}  // namespace gemsd
