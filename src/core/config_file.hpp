#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "core/config.hpp"

namespace gemsd {

/// Raw `key = value` pairs in spec syntax: the scalar `[system]` keys plus
/// the flat per-partition forms (`storage.<name>`, `cache_pages.<name>`,
/// `disk_cache_pages.<name>`, `gem_cache_pages.<name>`).
using SpecKeyValues = std::vector<std::pair<std::string, std::string>>;

/// A complete experiment specification parsed from a small INI-style file —
/// the no-C++-required entry point (tools/gemsd_run):
///
/// ```ini
/// # lines starting with # are comments
/// [system]
/// nodes      = 4
/// coupling   = gem          # gem | pcl | engine
/// update     = noforce      # noforce | force
/// routing    = affinity     # affinity | random
/// tps        = 100
/// buffer     = 200
/// warmup     = 5
/// measure    = 20
/// seed       = 42
/// log        = disk         # disk | gem
/// group_commit = false
/// pcl_read_opt = false
/// gem_read_auth = false
/// transport  = network      # network | gem
/// cpu_procs  = 4            # processors per node
/// log_disks  = 2            # log disks per node
/// gem_entry_us = 2          # GEM entry access time [us]
/// msg_short_instr = 5000    # CPU instr per short send/receive
/// msg_long_instr  = 8000    # CPU instr per long send/receive
/// lock_engine_us  = 200     # [Yu87] engine lock service time [us]
/// storage.BRANCH/TELLER = gem  # per-partition storage, flat form
///
/// [workload]
/// kind = debit_credit       # debit_credit | trace
/// trace_file =              # empty => synthetic trace
/// trace_txns = 17500
///
/// [partition.BRANCH/TELLER] # storage overrides, section form
/// storage = gem             # disk | vcache | nvcache | gemcache | gem
/// cache_pages = 2000        # sets both disk- and GEM-cache capacity
/// ```
///
/// A file may instead describe a whole sweep — the format gemsd_bench
/// --export-spec generates: the base sections above plus one `[run]` section
/// per sweep point, each holding the keys that differ from the base:
///
/// ```ini
/// [scenario]
/// name = fig_4_1
/// caption = Fig 4.1: ...
///
/// [system]
/// tps = 100
///
/// [run]
/// nodes = 1
/// routing = affinity
///
/// [run]
/// nodes = 2
/// routing = random
/// ```
struct RunSpec {
  enum class Kind { DebitCredit, Trace };
  Kind kind = Kind::DebitCredit;
  SystemConfig cfg;           ///< fully resolved configuration (debit-credit)
  std::string trace_file;     ///< optional trace to load
  std::size_t trace_txns = 17500;
  /// The raw keys that produced `cfg`, base-section keys first. Trace runs
  /// re-apply them onto make_trace_config() (their partition layout comes
  /// from the trace, not from the debit-credit schema).
  SpecKeyValues keys;
};

/// A parsed spec file: one RunSpec per `[run]` section, or exactly one when
/// the file has none (the original single-run format).
struct SpecDoc {
  std::string scenario;  ///< optional [scenario] name
  std::string caption;   ///< optional [scenario] caption
  std::vector<RunSpec> runs;
};

/// Parse a spec; throws std::runtime_error with a line-numbered message on
/// malformed input or unknown keys/values.
SpecDoc parse_spec_doc(std::istream& in);
SpecDoc parse_spec_doc_file(const std::string& path);

/// Single-run wrappers (throw if the file declares multiple [run] sections).
RunSpec parse_run_spec(std::istream& in);
RunSpec parse_run_spec_file(const std::string& path);

/// Apply raw spec keys onto an existing config; throws on unknown keys,
/// malformed values, or partition names the config does not have. Used to
/// rebuild trace-run configs and by the spec exporter's round-trip check.
void apply_spec_keys(SystemConfig& cfg, const SpecKeyValues& keys);

/// Serialize every supported spec key of `cfg`, formatted so that
/// apply_spec_keys reproduces the config bit-identically. Partition storage
/// settings appear only where they differ from the plain-disk default.
SpecKeyValues spec_keys(const SystemConfig& cfg);

}  // namespace gemsd
