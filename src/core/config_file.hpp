#pragma once

#include <iosfwd>
#include <string>

#include "core/config.hpp"

namespace gemsd {

/// A complete experiment specification parsed from a small INI-style file —
/// the no-C++-required entry point (tools/gemsd_run):
///
/// ```ini
/// # lines starting with # are comments
/// [system]
/// nodes      = 4
/// coupling   = gem          # gem | pcl | engine
/// update     = noforce      # noforce | force
/// routing    = affinity     # affinity | random
/// tps        = 100
/// buffer     = 200
/// warmup     = 5
/// measure    = 20
/// seed       = 42
/// log        = disk         # disk | gem
/// group_commit = false
/// pcl_read_opt = false
/// gem_read_auth = false
/// transport  = network      # network | gem
///
/// [workload]
/// kind = debit_credit       # debit_credit | trace
/// trace_file =              # empty => synthetic trace
/// trace_txns = 17500
///
/// [partition.BRANCH/TELLER] # storage overrides by partition name
/// storage = gem             # disk | vcache | nvcache | gemcache | gem
/// ```
struct RunSpec {
  enum class Kind { DebitCredit, Trace };
  Kind kind = Kind::DebitCredit;
  SystemConfig cfg;           ///< fully resolved configuration
  std::string trace_file;     ///< optional trace to load
  std::size_t trace_txns = 17500;
};

/// Parse a spec; throws std::runtime_error with a line-numbered message on
/// malformed input or unknown keys/values.
RunSpec parse_run_spec(std::istream& in);
RunSpec parse_run_spec_file(const std::string& path);

}  // namespace gemsd
