#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"

namespace gemsd::obs {
struct RunTelemetry;
}  // namespace gemsd::obs

namespace gemsd {

/// Final numbers of one simulation run — everything the paper's figures and
/// our analysis tables are built from.
struct RunResult {
  // configuration echo
  int nodes = 0;
  Coupling coupling{};
  UpdateStrategy update{};
  Routing routing{};
  int buffer_pages = 0;
  double arrival_rate_per_node = 0;

  // headline metrics
  double resp_ms = 0;            ///< mean response time
  double resp_ci_ms = 0;         ///< 95% CI half-width (batch means)
  double resp_p95_ms = 0;
  double resp_norm_ms = 0;       ///< trace metric: avg-size artificial txn
  double throughput = 0;         ///< committed txns/s (whole system)
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t deadlocks = 0;

  // utilizations
  double cpu_util = 0;           ///< mean over nodes
  double cpu_util_max = 0;       ///< busiest node
  double gem_util = 0;
  double net_util = 0;
  /// Achievable per-node transaction rate at 80 % utilization of the busiest
  /// node (Fig 4.6 metric), extrapolated from the measured operating point.
  double tps_per_node_at_80 = 0;

  // buffer / coherency behaviour
  std::vector<double> hit_ratio;         ///< per partition
  double invalidations_per_txn = 0;
  double page_requests_per_txn = 0;
  double page_request_delay_ms = 0;
  double evict_writes_per_txn = 0;
  double force_writes_per_txn = 0;

  // concurrency control / communication
  double local_lock_fraction = 0;
  double lock_waits_per_txn = 0;
  double lock_wait_ms = 0;
  double messages_per_txn = 0;
  double revocations_per_txn = 0;

  // response-time decomposition (ms per txn)
  double brk_cpu_ms = 0, brk_cpu_wait_ms = 0, brk_io_ms = 0, brk_cc_ms = 0,
         brk_queue_ms = 0;

  /// p50/p95/p99 of one per-transaction distribution (ms), read off a
  /// sim::Histogram — response time plus each breakdown phase. Exported in
  /// the "percentiles" object of gemsd.results.v1 (additive; --compare
  /// ignores it, so committed baselines stay green).
  struct Percentiles {
    double p50 = 0, p95 = 0, p99 = 0;
  };
  Percentiles pct_resp, pct_cpu, pct_cpu_wait, pct_io, pct_cc, pct_queue;

  /// Per-GEM-shard station stats (index = shard). Always populated (size =
  /// gem_shards, >= 1); exported as the "gem_shards" array of
  /// gemsd.results.v1 and tolerance-gated by gemsd_analyze --compare when
  /// both documents carry it.
  struct GemShardStat {
    double util = 0;
    double queue_mean = 0;
    double wait_ms = 0;  ///< mean wait per access
    std::uint64_t completions = 0;
  };
  std::vector<GemShardStat> gem_shards;

  /// Full observability payload (detail metrics, sampler time series,
  /// slow-transaction log, trace events). Shared so results stay cheap to
  /// copy through sweeps; null unless System::collect() produced one.
  std::shared_ptr<obs::RunTelemetry> telemetry;

  std::string label() const;
};

/// Pretty-print a series of runs as an aligned table (one row per run) with
/// the given caption; `columns` selects the metric set ("paper" keeps it
/// close to what the figures show, "full" adds diagnostics).
void print_table(const std::string& caption,
                 const std::vector<RunResult>& runs,
                 const std::vector<std::string>& partition_names,
                 bool full = false);

/// CSV output for downstream plotting.
void print_csv(const std::vector<RunResult>& runs,
               const std::vector<std::string>& partition_names);

}  // namespace gemsd
