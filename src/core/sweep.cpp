#include "core/sweep.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "core/experiment.hpp"
#include "core/system.hpp"
#include "workload/trace.hpp"

namespace gemsd {

int SweepRunner::default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

SweepRunner::SweepRunner(int jobs)
    : jobs_(jobs > 0 ? jobs : default_jobs()) {}

void SweepRunner::for_each_index(
    std::size_t n, const std::function<void(std::size_t)>& body) const {
  const std::size_t workers =
      std::min(static_cast<std::size_t>(jobs_), n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<RunResult> SweepRunner::run_debit_credit(
    std::vector<SystemConfig> cfgs) const {
  std::vector<std::function<RunResult()>> tasks;
  tasks.reserve(cfgs.size());
  for (auto& cfg : cfgs) {
    tasks.push_back([cfg = std::move(cfg)] { return gemsd::run_debit_credit(cfg); });
  }
  return map(std::move(tasks));
}

std::vector<RunResult> SweepRunner::run_trace(
    std::vector<SystemConfig> cfgs, const workload::Trace& trace) const {
  std::vector<std::function<RunResult()>> tasks;
  tasks.reserve(cfgs.size());
  for (auto& cfg : cfgs) {
    tasks.push_back(
        [cfg = std::move(cfg), &trace] { return gemsd::run_trace(cfg, trace); });
  }
  return map(std::move(tasks));
}

}  // namespace gemsd
