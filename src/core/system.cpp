#include "core/system.hpp"

#include <stdexcept>

#include "cc/gem_lock_protocol.hpp"
#include "cc/lock_engine_protocol.hpp"
#include "cc/primary_copy_protocol.hpp"
#include "workload/debit_credit.hpp"

namespace gemsd {

System::System(const SystemConfig& cfg, Workload wl)
    : cfg_(cfg),
      rng_(cfg.seed),
      metrics_(cfg.partitions.size(),
               static_cast<std::size_t>(wl.gen ? wl.gen->num_types() : 1)),
      wl_(std::move(wl)) {
  gem_ = std::make_unique<storage::GemDevice>(sched_, cfg_.gem);
  storage_ = std::make_unique<storage::StorageManager>(sched_, rng_, cfg_,
                                                       *gem_);
  network_ = std::make_unique<net::Network>(sched_, cfg_.comm);
  comm_ = std::make_unique<net::Comm>(sched_, *network_, cfg_.comm, gem_.get());

  std::vector<node::CpuSet*> cpu_ptrs;
  for (int n = 0; n < cfg_.nodes; ++n) {
    cpus_.push_back(std::make_unique<node::CpuSet>(
        sched_, cfg_.cpu, "cpu" + std::to_string(n)));
    cpu_ptrs.push_back(cpus_.back().get());
    bufs_.push_back(std::make_unique<node::BufferManager>(
        sched_, cfg_, n, *cpus_.back(), *storage_, metrics_));
  }
  comm_->attach_nodes(cpu_ptrs);

  cc::Protocol::Env env;
  env.sched = &sched_;
  env.cfg = &cfg_;
  env.metrics = &metrics_;
  env.comm = comm_.get();
  env.net = network_.get();
  env.gem = gem_.get();
  env.cpus = cpu_ptrs;
  for (auto& b : bufs_) env.bufs.push_back(b.get());

  if (cfg_.coupling == Coupling::GemLocking) {
    protocol_ = std::make_unique<cc::GemLockProtocol>(std::move(env));
  } else if (cfg_.coupling == Coupling::LockEngine) {
    if (cfg_.update != UpdateStrategy::Force) {
      // [Yu87]'s coherency scheme (broadcast invalidation, storage always
      // current) is only sound with FORCE.
      throw std::invalid_argument(
          "Coupling::LockEngine requires UpdateStrategy::Force");
    }
    protocol_ = std::make_unique<cc::LockEngineProtocol>(
        std::move(env), cfg_.lock_engine_service);
  } else {
    protocol_ = std::make_unique<cc::PrimaryCopyProtocol>(
        std::move(env), wl_.gla.get(), cfg_.pcl_read_optimization);
  }
  for (auto& b : bufs_) {
    b->set_writeback_hook([this](NodeId n, PageId p, SeqNo s) {
      protocol_->on_writeback(n, p, s);
    });
  }
  for (int n = 0; n < cfg_.nodes; ++n) {
    logs_.push_back(std::make_unique<node::LogManager>(
        sched_, cfg_, n, *cpus_[static_cast<std::size_t>(n)], *storage_));
    tms_.push_back(std::make_unique<node::TransactionManager>(
        sched_, rng_, cfg_, n, *cpus_[static_cast<std::size_t>(n)],
        *bufs_[static_cast<std::size_t>(n)],
        *logs_[static_cast<std::size_t>(n)], *protocol_, metrics_));
  }
  node_up_.assign(static_cast<std::size_t>(cfg_.nodes), true);
}

System::~System() = default;

sim::Task<void> System::source() {
  const double rate = cfg_.arrival_rate_per_node * cfg_.nodes;
  for (;;) {
    co_await sched_.delay(rng_.exponential(1.0 / rate));
    auto spec = wl_.gen->next(rng_);
    NodeId n = wl_.router->route(spec, rng_);
    // Route around crashed nodes (simple successor fallback).
    for (int hops = 0; hops < cfg_.nodes &&
                       !node_up_[static_cast<std::size_t>(n)];
         ++hops) {
      n = (n + 1) % cfg_.nodes;
    }
    if (!node_up_[static_cast<std::size_t>(n)]) continue;  // whole cluster down
    tms_[static_cast<std::size_t>(n)]->submit(std::move(spec), sched_.now());
  }
}

void System::fail_node(NodeId n) {
  if (!node_up_[static_cast<std::size_t>(n)]) return;
  node_up_[static_cast<std::size_t>(n)] = false;
  tms_[static_cast<std::size_t>(n)]->set_failed(true);
  // Volatile state is gone (in-flight device writes may still complete).
  bufs_[static_cast<std::size_t>(n)]->crash_clear();
  if (cfg_.coupling == Coupling::PrimaryCopy) {
    static_cast<cc::PrimaryCopyProtocol&>(*protocol_).freeze_gla(n);
  }
  sched_.spawn(recovery_process(n, sched_.now()));
}

sim::Task<void> System::recovery_process(NodeId n, sim::SimTime crash_time) {
  co_await sched_.delay(cfg_.failure.detection);

  if (cfg_.coupling == Coupling::PrimaryCopy) {
    // Reconstruct the lost lock authority from the survivors before its
    // partition can lock again. (GEM's GLT is non-volatile: no equivalent.)
    co_await sched_.delay(cfg_.failure.gla_rebuild);
    static_cast<cc::PrimaryCopyProtocol&>(*protocol_).thaw_gla(n);
  }

  // REDO the pages whose only current copy died with the node (NOFORCE).
  // A surviving coordinator write-locks each page, replays the log records
  // from the failed node's (surviving) log device, force-writes the page,
  // and releases — after which storage is current again.
  NodeId coord = (n + 1) % cfg_.nodes;
  while (coord != n && !node_up_[static_cast<std::size_t>(coord)]) {
    coord = (coord + 1) % cfg_.nodes;
  }
  const auto owned = protocol_->directory().pages_owned_by(n);
  if (coord != n && !owned.empty()) {
    // Privileged recovery path: write-lock one page at a time directly on
    // the logical lock table (the recovery manager owns the reconstructed
    // lock state — no protocol messages), REDO it from the failed node's
    // log, force-write it, release. Holding a single lock at a time keeps
    // normal traffic flowing and cannot deadlock.
    const TxnId rec_id = (TxnId{0xFEC0} << 40) | recovery_ids_++;
    auto& table = protocol_->table();
    for (PageId p : owned) {
      sim::OneShot<bool> granted(sched_);
      const auto res = table.acquire(p, rec_id, coord, LockMode::Write,
                                     [&granted] { granted.set(true); });
      if (res != cc::LockTable::Outcome::Granted) co_await granted.wait();
      for (int k = 0; k < cfg_.failure.redo_log_pages_per_page; ++k) {
        co_await storage_->log_group(n).read(PageId{-1, k});
      }
      co_await storage_->write(p);
      protocol_->directory().written_back(p, n,
                                          protocol_->directory().seqno(p));
      table.release(p, rec_id);
    }
  }
  metrics_.recovery_time.add(sched_.now() - crash_time);

  // Node restart: cold buffer, accepts work again.
  const sim::SimTime rejoin_at =
      std::max(crash_time + cfg_.failure.node_restart, sched_.now());
  co_await sched_.delay(rejoin_at - sched_.now());
  bufs_[static_cast<std::size_t>(n)]->crash_clear();
  tms_[static_cast<std::size_t>(n)]->set_failed(false);
  node_up_[static_cast<std::size_t>(n)] = true;
}

void System::start_source() {
  if (source_started_) return;
  source_started_ = true;
  sched_.spawn(source());
}

void System::reset_stats() {
  metrics_.reset();
  gem_->reset_stats();
  network_->reset_stats();
  comm_->reset_stats();
  storage_->reset_stats();
  for (auto& c : cpus_) c->reset_stats();
  protocol_->table().reset_stats();
  stats_start_ = sched_.now();
}

RunResult System::run() {
  start_source();
  sched_.run_until(cfg_.warmup);
  reset_stats();
  sched_.run_until(cfg_.warmup + cfg_.measure);
  return collect();
}

RunResult System::collect() const {
  RunResult r;
  r.nodes = cfg_.nodes;
  r.coupling = cfg_.coupling;
  r.update = cfg_.update;
  r.routing = cfg_.routing;
  r.buffer_pages = cfg_.buffer_pages;
  r.arrival_rate_per_node = cfg_.arrival_rate_per_node;

  const double horizon = sched_.now() - stats_start_;
  const auto commits = metrics_.commits.value();
  const double per_txn =
      commits ? 1.0 / static_cast<double>(commits) : 0.0;

  r.resp_ms = metrics_.response.mean() * 1e3;
  r.resp_ci_ms = metrics_.response_batches.half_width_95() * 1e3;
  r.resp_p95_ms = metrics_.response_hist.quantile(0.95) * 1e3;
  r.resp_norm_ms = metrics_.response_per_ref.count()
                       ? metrics_.response_per_ref.mean() * 1e3
                       : 0.0;
  r.throughput = horizon > 0 ? static_cast<double>(commits) / horizon : 0.0;
  r.commits = commits;
  r.aborts = metrics_.aborts.value();
  r.deadlocks = metrics_.deadlocks.value();

  double util_sum = 0, util_max = 0;
  for (const auto& c : cpus_) {
    const double u = c->utilization();
    util_sum += u;
    util_max = std::max(util_max, u);
  }
  r.cpu_util = util_sum / static_cast<double>(cpus_.size());
  r.cpu_util_max = util_max;
  r.gem_util = gem_->utilization();
  r.net_util = network_->utilization();
  r.tps_per_node_at_80 =
      util_max > 0 ? cfg_.arrival_rate_per_node * 0.8 / util_max : 0.0;

  for (std::size_t p = 0; p < cfg_.partitions.size(); ++p) {
    r.hit_ratio.push_back(metrics_.hit_ratio(p));
  }
  r.invalidations_per_txn =
      static_cast<double>(metrics_.invalidations.value()) * per_txn;
  r.page_requests_per_txn =
      static_cast<double>(metrics_.page_requests.value()) * per_txn;
  r.page_request_delay_ms = metrics_.page_request_delay.mean() * 1e3;
  r.evict_writes_per_txn =
      static_cast<double>(metrics_.evict_writes.value()) * per_txn;
  r.force_writes_per_txn =
      static_cast<double>(metrics_.force_writes.value()) * per_txn;

  r.local_lock_fraction = metrics_.local_lock_fraction();
  r.lock_waits_per_txn =
      static_cast<double>(metrics_.lock_waits.value()) * per_txn;
  r.lock_wait_ms = metrics_.lock_wait_time.mean() * 1e3;
  r.messages_per_txn =
      static_cast<double>(comm_->messages_sent()) * per_txn;
  r.revocations_per_txn =
      static_cast<double>(metrics_.revocations.value()) * per_txn;

  r.brk_cpu_ms = metrics_.breakdown_cpu.mean() * 1e3;
  r.brk_cpu_wait_ms = metrics_.breakdown_cpu_wait.mean() * 1e3;
  r.brk_io_ms = metrics_.breakdown_io.mean() * 1e3;
  r.brk_cc_ms = metrics_.breakdown_cc.mean() * 1e3;
  r.brk_queue_ms = metrics_.breakdown_queue.mean() * 1e3;
  return r;
}

System::Workload make_debit_credit_workload(const SystemConfig& cfg) {
  System::Workload wl;
  wl.gen = std::make_unique<workload::DebitCreditGenerator>(cfg.nodes);
  wl.router = workload::make_debit_credit_router(cfg.routing, cfg.nodes);
  wl.gla = std::make_unique<workload::DebitCreditGlaMap>(cfg.nodes);
  return wl;
}

RunResult run_debit_credit(const SystemConfig& cfg) {
  System sys(cfg, make_debit_credit_workload(cfg));
  return sys.run();
}

}  // namespace gemsd
