#include "core/system.hpp"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <stdexcept>

#include "cc/gem_lock_protocol.hpp"
#include "cc/lock_engine_protocol.hpp"
#include "cc/primary_copy_protocol.hpp"
#include "obs/engprof.hpp"
#include "obs/memory.hpp"
#include "obs/resources.hpp"
#include "obs/timeseries.hpp"
#include "workload/debit_credit.hpp"

namespace gemsd {

System::System(const SystemConfig& cfg, Workload wl)
    : cfg_(cfg),
      engine_(cfg.engine.kind, cfg.engine.workers),
      sched_(engine_.add_lp("system").sched()),
      rng_(cfg.seed),
      metrics_(cfg.partitions.size(),
               static_cast<std::size_t>(wl.gen ? wl.gen->num_types() : 1)),
      wl_(std::move(wl)) {
  storage_ = std::make_unique<storage::StorageManager>(sched_, rng_, cfg_);
  network_ = std::make_unique<net::Network>(sched_, cfg_.comm);
  comm_ = std::make_unique<net::Comm>(sched_, *network_, cfg_.comm,
                                      storage_.get());

  std::vector<node::CpuSet*> cpu_ptrs;
  for (int n = 0; n < cfg_.nodes; ++n) {
    cpus_.push_back(std::make_unique<node::CpuSet>(
        sched_, cfg_.cpu, "cpu" + std::to_string(n)));
    cpu_ptrs.push_back(cpus_.back().get());
    bufs_.push_back(std::make_unique<node::BufferManager>(
        sched_, cfg_, n, *cpus_.back(), *storage_, metrics_));
  }
  comm_->attach_nodes(cpu_ptrs);

  // Observability: the recorder and slow-transaction log are owned here and
  // reached by components via Metrics (null pointers when disabled — every
  // record site is guarded, and with GEMSD_TRACING_ENABLED=0 compiled away).
  // Installed BEFORE the protocol so its constructor can wire the lock
  // table's trace hooks.
  if (cfg_.obs.trace) {
    trace_ = std::make_unique<obs::TraceRecorder>(cfg_.obs.trace_capacity);
    if (!cfg_.obs.trace_filter.empty()) {
      trace_->set_filter(obs::trace_name_filter(cfg_.obs.trace_filter));
    }
    metrics_.trace = trace_.get();
    comm_->set_trace(trace_.get());
  }
  if (cfg_.obs.slow_k > 0) {
    slow_log_.set_capacity(static_cast<std::size_t>(cfg_.obs.slow_k));
    metrics_.slow = &slow_log_;
  }
  if (cfg_.obs.audit) {
    audit_ = std::make_unique<obs::Auditor>(trace_.get());
    metrics_.audit = audit_.get();
  }
  if (cfg_.obs.engine_profile) {
    engprof_ = std::make_unique<obs::EngProfiler>(cfg_.obs.engprof_windows);
    engine_.set_profiler(engprof_.get());
  }
  if (cfg_.obs.timeseries) {
    ts_ = std::make_unique<obs::TimeSeriesRecorder>(
        cfg_.obs.timeseries_window, cfg_.obs.timeseries_cap, cfg_.nodes);
    metrics_.ts = ts_.get();
    // Cumulative-counter reader: invoked from inside TM hook processing when
    // a window rolls over. Reads counters and busy-time integrals only —
    // never mutates simulation state or draws random numbers.
    ts_->set_poller([this](obs::TsCumulative& c) {
      c.events = sched_.events_processed();
      c.lock_waits = metrics_.lock_waits.value();
      c.deadlocks = metrics_.deadlocks.value();
      std::uint64_t h = 0, m = 0;
      for (std::size_t p = 0; p < metrics_.hits.size(); ++p) {
        h += metrics_.hits[p].value();
        m += metrics_.misses[p].value();
      }
      c.hits = h;
      c.misses = m;
      c.msgs = comm_->messages_sent();
      double cpu = 0;
      for (const auto& cp : cpus_) cpu += cp->resource().busy_time();
      c.cpu_busy_s = cpu;
      double gem_busy = 0;
      for (int s = 0; s < storage_->gem_shards(); ++s) {
        gem_busy += storage_->gem(s).server().busy_time();
      }
      c.gem_busy_s = gem_busy;
      c.net_busy_s = network_->link().busy_time();
      double disk = 0;
      for (std::size_t p = 0; p < cfg_.partitions.size(); ++p) {
        if (const auto* g = storage_->group(static_cast<PartitionId>(p))) {
          disk += g->arms().busy_time();
        }
      }
      double log_busy = 0;
      for (int n = 0; n < cfg_.nodes; ++n) {
        if (const auto* g = storage_->log_group_if_built(n)) {
          log_busy += g->arms().busy_time();
        }
      }
      c.disk_busy_s = disk + log_busy;
      // Tracked stations, same order as set_stations below: GEM shards,
      // network, disk partition arms, log aggregate.
      c.station_busy_s.clear();
      for (int s = 0; s < storage_->gem_shards(); ++s) {
        c.station_busy_s.push_back(storage_->gem(s).server().busy_time());
      }
      c.station_busy_s.push_back(network_->link().busy_time());
      for (std::size_t p = 0; p < cfg_.partitions.size(); ++p) {
        if (const auto* g = storage_->group(static_cast<PartitionId>(p))) {
          c.station_busy_s.push_back(g->arms().busy_time());
        }
      }
      c.station_busy_s.push_back(log_busy);
    });
    double disk_arms = 0;
    for (std::size_t p = 0; p < cfg_.partitions.size(); ++p) {
      if (const auto* g = storage_->group(static_cast<PartitionId>(p))) {
        disk_arms += static_cast<double>(g->arms().capacity());
      }
    }
    // Log groups are built lazily; their arm capacity is config-determined.
    disk_arms += static_cast<double>(cfg_.nodes) *
                 std::max(cfg_.log_disks_per_node, 1);
    double gem_servers = 0;
    for (int s = 0; s < storage_->gem_shards(); ++s) {
      gem_servers += static_cast<double>(storage_->gem(s).server().capacity());
    }
    ts_->set_capacities(
        static_cast<double>(cfg_.nodes) * cfg_.cpu.processors,
        gem_servers,
        static_cast<double>(network_->link().capacity()), disk_arms);
    // Per-station series (bounded: shards + partitions + 2, never per-node):
    // the per-window utilization of each station is what shows a bottleneck
    // migrating — e.g. network vs GEM under scale_out's diurnal curve.
    {
      std::vector<obs::TsStation> stations;
      for (int s = 0; s < storage_->gem_shards(); ++s) {
        obs::TsStation st;
        st.name = storage_->gem_shards() == 1 ? "gem"
                                              : "gem.shard" + std::to_string(s);
        st.capacity =
            static_cast<double>(storage_->gem(s).server().capacity());
        stations.push_back(std::move(st));
      }
      stations.push_back(obs::TsStation{
          "net", static_cast<double>(network_->link().capacity())});
      for (std::size_t p = 0; p < cfg_.partitions.size(); ++p) {
        if (const auto* g = storage_->group(static_cast<PartitionId>(p))) {
          stations.push_back(obs::TsStation{
              "disk." + cfg_.partitions[p].name,
              static_cast<double>(g->arms().capacity())});
        }
      }
      stations.push_back(obs::TsStation{
          "log", static_cast<double>(cfg_.nodes) *
                     std::max(cfg_.log_disks_per_node, 1)});
      ts_->set_stations(std::move(stations));
    }
  }
  if (cfg_.obs.progress_every_s > 0.0) {
    // Check the wall clock every few thousand events (one predictable branch
    // on the scheduler hot path otherwise); the tick itself decides whether
    // a heartbeat period has elapsed.
    sched_.set_progress_hook([this] { progress_tick(); }, 8192);
  }

  cc::Protocol::Env env;
  env.sched = &sched_;
  env.cfg = &cfg_;
  env.metrics = &metrics_;
  env.comm = comm_.get();
  env.net = network_.get();
  env.storage = storage_.get();
  env.cpus = cpu_ptrs;
  for (auto& b : bufs_) env.bufs.push_back(b.get());

  if (cfg_.coupling == Coupling::GemLocking) {
    protocol_ = std::make_unique<cc::GemLockProtocol>(std::move(env));
  } else if (cfg_.coupling == Coupling::LockEngine) {
    if (cfg_.update != UpdateStrategy::Force) {
      // [Yu87]'s coherency scheme (broadcast invalidation, storage always
      // current) is only sound with FORCE.
      throw std::invalid_argument(
          "Coupling::LockEngine requires UpdateStrategy::Force");
    }
    protocol_ = std::make_unique<cc::LockEngineProtocol>(
        std::move(env), cfg_.lock_engine_service);
  } else {
    protocol_ = std::make_unique<cc::PrimaryCopyProtocol>(
        std::move(env), wl_.gla.get(), cfg_.pcl_read_optimization);
  }
  for (auto& b : bufs_) {
    b->set_writeback_hook([this](NodeId n, PageId p, SeqNo s) {
      protocol_->on_writeback(n, p, s);
    });
  }
  for (int n = 0; n < cfg_.nodes; ++n) {
    logs_.push_back(std::make_unique<node::LogManager>(
        sched_, cfg_, n, *cpus_[static_cast<std::size_t>(n)], *storage_));
    tms_.push_back(std::make_unique<node::TransactionManager>(
        sched_, rng_, cfg_, n, *cpus_[static_cast<std::size_t>(n)],
        *bufs_[static_cast<std::size_t>(n)],
        *logs_[static_cast<std::size_t>(n)], *protocol_, metrics_));
  }
  node_up_.assign(static_cast<std::size_t>(cfg_.nodes), true);

  if (cfg_.obs.resources) {
    // Wait-sketch recording: the recorder owns per-station bucket vectors
    // registered with each sim::Resource. Installed after every station
    // exists; lazily built log groups attach through the storage hook the
    // moment they are constructed. Costs one branch per acquisition and
    // inserts no scheduler events, so metrics stay byte-identical on/off.
    resrec_ = std::make_unique<obs::ResourceRecorder>();
    for (auto& c : cpus_) resrec_->attach(c->resource());
    for (auto& tm : tms_) resrec_->attach(tm->mpl_pool());
    for (int s = 0; s < storage_->gem_shards(); ++s) {
      resrec_->attach(storage_->gem(s).server());
    }
    resrec_->attach(network_->link());
    for (std::size_t p = 0; p < cfg_.partitions.size(); ++p) {
      if (auto* g = storage_->group(static_cast<PartitionId>(p))) {
        resrec_->attach(g->arms());
        resrec_->attach(g->controllers());
      }
    }
    storage_->set_group_built_hook([this](storage::DiskGroup& g) {
      resrec_->attach(g.arms());
      resrec_->attach(g.controllers());
    });
  }
}

System::~System() = default;

sim::Task<void> System::source() {
  const double rate = cfg_.arrival_rate_per_node * cfg_.nodes;
  for (;;) {
    // Optional diurnal modulation (scale_out): a non-homogeneous Poisson
    // stream via per-arrival thinning of the mean inter-arrival time. The
    // unset default keeps the draw expression — and its bytes — unchanged.
    const double mean_gap =
        wl_.arrival_factor
            ? 1.0 / (rate * std::max(wl_.arrival_factor(sched_.now()), 1e-9))
            : 1.0 / rate;
    co_await sched_.delay(rng_.exponential(mean_gap));
    auto spec = wl_.gen->next(rng_);
    NodeId n = wl_.router->route(spec, rng_);
    // Route around crashed nodes (simple successor fallback).
    for (int hops = 0; hops < cfg_.nodes &&
                       !node_up_[static_cast<std::size_t>(n)];
         ++hops) {
      n = (n + 1) % cfg_.nodes;
    }
    if (!node_up_[static_cast<std::size_t>(n)]) continue;  // whole cluster down
    tms_[static_cast<std::size_t>(n)]->submit(std::move(spec), sched_.now());
  }
}

void System::fail_node(NodeId n) {
  if (!node_up_[static_cast<std::size_t>(n)]) return;
  node_up_[static_cast<std::size_t>(n)] = false;
  tms_[static_cast<std::size_t>(n)]->set_failed(true);
  // Volatile state is gone (in-flight device writes may still complete).
  bufs_[static_cast<std::size_t>(n)]->crash_clear();
  if (cfg_.coupling == Coupling::PrimaryCopy) {
    static_cast<cc::PrimaryCopyProtocol&>(*protocol_).freeze_gla(n);
  }
  sched_.spawn(recovery_process(n, sched_.now()));
}

sim::Task<void> System::recovery_process(NodeId n, sim::SimTime crash_time) {
  co_await sched_.delay(cfg_.failure.detection);

  if (cfg_.coupling == Coupling::PrimaryCopy) {
    // Reconstruct the lost lock authority from the survivors before its
    // partition can lock again. (GEM's GLT is non-volatile: no equivalent.)
    co_await sched_.delay(cfg_.failure.gla_rebuild);
    static_cast<cc::PrimaryCopyProtocol&>(*protocol_).thaw_gla(n);
  }

  // REDO the pages whose only current copy died with the node (NOFORCE).
  // A surviving coordinator write-locks each page, replays the log records
  // from the failed node's (surviving) log device, force-writes the page,
  // and releases — after which storage is current again.
  NodeId coord = (n + 1) % cfg_.nodes;
  while (coord != n && !node_up_[static_cast<std::size_t>(coord)]) {
    coord = (coord + 1) % cfg_.nodes;
  }
  const auto owned = protocol_->directory().pages_owned_by(n);
  if (coord != n && !owned.empty()) {
    // Privileged recovery path: write-lock one page at a time directly on
    // the logical lock table (the recovery manager owns the reconstructed
    // lock state — no protocol messages), REDO it from the failed node's
    // log, force-write it, release. Holding a single lock at a time keeps
    // normal traffic flowing and cannot deadlock.
    const TxnId rec_id = (TxnId{0xFEC0} << 40) | recovery_ids_++;
    auto& table = protocol_->table();
    for (PageId p : owned) {
      sim::OneShot<bool> granted(sched_);
      const auto res = table.acquire(p, rec_id, coord, LockMode::Write,
                                     [&granted] { granted.set(true); });
      if (res != cc::LockTable::Outcome::Granted) co_await granted.wait();
      for (int k = 0; k < cfg_.failure.redo_log_pages_per_page; ++k) {
        co_await storage_->log_group(n).read(PageId{-1, k});
      }
      co_await storage_->write(p);
      protocol_->directory().written_back(p, n,
                                          protocol_->directory().seqno(p));
      table.release(p, rec_id);
    }
  }
  metrics_.recovery_time.add(sched_.now() - crash_time);

  // Node restart: cold buffer, accepts work again.
  const sim::SimTime rejoin_at =
      std::max(crash_time + cfg_.failure.node_restart, sched_.now());
  co_await sched_.delay(rejoin_at - sched_.now());
  bufs_[static_cast<std::size_t>(n)]->crash_clear();
  tms_[static_cast<std::size_t>(n)]->set_failed(false);
  node_up_[static_cast<std::size_t>(n)] = true;
}

sim::Task<void> System::sampler() {
  std::uint64_t prev_commits = 0;
  double prev_resp_sum = 0.0;
  std::uint64_t prev_resp_n = 0;
  sim::SimTime window_start = sched_.now();
  for (;;) {
    co_await sched_.delay(cfg_.obs.sample_every);
    const sim::SimTime now = sched_.now();

    std::uint64_t commits = metrics_.commits.value();
    if (commits < prev_commits) {
      // Statistics were reset inside this window (warm-up end): the window
      // effectively restarts at the reset point.
      prev_commits = 0;
      prev_resp_sum = 0.0;
      prev_resp_n = 0;
      window_start = stats_start_;
    }
    const double resp_sum = metrics_.response.sum();
    const std::uint64_t resp_n = metrics_.response.count();

    obs::Sample s;
    s.t = now;
    s.in_warmup = !stats_reset_;
    s.commits = commits;
    s.aborts = metrics_.aborts.value();
    s.throughput = sim::safe_ratio(
        static_cast<double>(commits - prev_commits), now - window_start);
    s.resp_ms = sim::safe_ratio(resp_sum - prev_resp_sum,
                                static_cast<double>(resp_n - prev_resp_n)) *
                1e3;

    double active = 0, mplq = 0, busy = 0, procs = 0;
    for (const auto& tm : tms_) {
      active += static_cast<double>(tm->active());
      mplq += static_cast<double>(tm->mpl().queue_length());
    }
    for (const auto& c : cpus_) {
      busy += static_cast<double>(c->resource().busy());
      procs += static_cast<double>(c->processors());
    }
    s.active_txns = active;
    s.mpl_waiting = mplq;
    s.cpu_busy = sim::safe_ratio(busy, procs);
    double gem_busy = 0, gem_cap = 0;
    for (int sh = 0; sh < storage_->gem_shards(); ++sh) {
      gem_busy += static_cast<double>(storage_->gem(sh).server().busy());
      gem_cap += static_cast<double>(storage_->gem(sh).server().capacity());
    }
    s.gem_busy = sim::safe_ratio(gem_busy, gem_cap);
    s.net_busy = static_cast<double>(network_->link().busy());
    double dq = 0;
    for (std::size_t p = 0; p < cfg_.partitions.size(); ++p) {
      if (const auto* g = storage_->group(static_cast<PartitionId>(p))) {
        dq += static_cast<double>(g->arms().queue_length());
      }
    }
    s.disk_queue = dq;
    s.sched_queue = static_cast<double>(sched_.queued_events());
    samples_.push_back(s);

    if (metrics_.trace) {
      auto* tr = metrics_.trace;
      using TN = obs::TraceName;
      tr->counter(TN::kCtrThroughput, -1, now, s.throughput);
      tr->counter(TN::kCtrResponse, -1, now, s.resp_ms);
      for (std::size_t n = 0; n < tms_.size(); ++n) {
        const auto node = static_cast<std::int16_t>(n);
        tr->counter(TN::kCtrActive, node, now,
                    static_cast<double>(tms_[n]->active()));
        tr->counter(TN::kCtrMplQueue, node, now,
                    static_cast<double>(tms_[n]->mpl().queue_length()));
        tr->counter(TN::kCtrCpuBusy, node, now,
                    sim::safe_ratio(
                        static_cast<double>(cpus_[n]->resource().busy()),
                        static_cast<double>(cpus_[n]->processors())));
      }
      tr->counter(TN::kCtrGemBusy, -1, now, s.gem_busy);
      tr->counter(TN::kCtrNetBusy, -1, now, s.net_busy);
      tr->counter(TN::kCtrDiskQueue, -1, now, s.disk_queue);
      tr->counter(TN::kCtrSchedQueue, -1, now, s.sched_queue);
    }

    prev_commits = commits;
    prev_resp_sum = resp_sum;
    prev_resp_n = resp_n;
    window_start = now;
  }
}

void System::progress_tick() {
  const double now_s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - progress_epoch_)
                           .count();
  if (now_s - progress_last_s_ < cfg_.obs.progress_every_s) return;
  const std::uint64_t events = sched_.events_processed();
  const std::uint64_t commits = metrics_.commits.value();
  const sim::SimTime sim_now = sched_.now();
  // Rates over the heartbeat interval (first interval spans construction).
  // The commit counter is zeroed at warm-up end, so a shrinking value means
  // the interval restarted at the reset.
  const double dt = now_s - progress_last_s_;
  const double eps = static_cast<double>(events - progress_prev_events_) / dt;
  const std::uint64_t int_commits =
      commits >= progress_prev_commits_ ? commits - progress_prev_commits_
                                        : commits;
  const double cps = static_cast<double>(int_commits) / dt;
  const double sim_per_s = (sim_now - progress_prev_sim_) / dt;
  // One JSONL line on stderr: greppable, and invisible to every stdout
  // consumer (CSV, tables, JSON exports). events_per_s / commits_per_s /
  // sim_per_s cover the last interval; commits and events are cumulative.
  // rss_bytes is the interval resident-set reading (0 where unavailable) —
  // the live view of the memory.* results block.
  std::fprintf(stderr,
               "{\"progress\":{\"sim_s\":%.3f,\"commits\":%" PRIu64
               ",\"events\":%" PRIu64 ",\"events_per_s\":%.0f"
               ",\"interval_commits\":%" PRIu64 ",\"commits_per_s\":%.1f"
               ",\"sim_per_s\":%.3f,\"windows\":%" PRIu64
               ",\"nodes\":%d,\"rss_bytes\":%" PRIu64 "}}\n",
               sim_now, commits, events, eps, int_commits, cps, sim_per_s,
               engine_.windows_executed(), cfg_.nodes,
               obs::current_rss_bytes());
  progress_last_s_ = now_s;
  progress_prev_events_ = events;
  progress_prev_commits_ = commits;
  progress_prev_sim_ = sim_now;
}

void System::start_source() {
  if (source_started_) return;
  source_started_ = true;
  sched_.spawn(source());
  if (cfg_.obs.sample_every > 0.0) sched_.spawn(sampler());
}

void System::reset_stats() {
  // Distribute the cumulative deltas accrued up to this instant BEFORE the
  // counters are zeroed; the recorder itself is kept — the series spans the
  // whole run so warm-up convergence stays visible to the analyzer.
  if (ts_) ts_->fold(sched_.now());
  metrics_.reset();
  network_->reset_stats();
  comm_->reset_stats();
  storage_->reset_stats();
  for (auto& c : cpus_) c->reset_stats();
  // MPL admission pools are stations too: without this their queue integrals
  // span warm-up and the operational-law auditors could never reconcile them
  // against the measurement horizon.
  for (auto& tm : tms_) tm->reset_stats();
  protocol_->table().reset_stats();
  if (resrec_) resrec_->reset();
  stats_start_ = sched_.now();
  stats_reset_ = true;
  // Warm-up events are discarded like warm-up statistics; the sampler's time
  // series is kept (convergence toward steady state is what it shows).
  if (trace_) trace_->clear();
  slow_log_.clear();
  if (ts_) {
    ts_->rebase(sched_.now());  // counters were just zeroed
    ts_->mark_stats_start(sched_.now());
  }
}

void System::run_until(sim::SimTime t) {
  const auto t0 = std::chrono::steady_clock::now();
  run_events_ += engine_.run_until(t);
  run_wall_s_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
}

RunResult System::run() {
  start_source();
  run_until(cfg_.warmup);
  reset_stats();
  run_until(cfg_.warmup + cfg_.measure);
  return collect();
}

RunResult System::collect() const {
  RunResult r;
  r.nodes = cfg_.nodes;
  r.coupling = cfg_.coupling;
  r.update = cfg_.update;
  r.routing = cfg_.routing;
  r.buffer_pages = cfg_.buffer_pages;
  r.arrival_rate_per_node = cfg_.arrival_rate_per_node;

  const double horizon = sched_.now() - stats_start_;
  const auto commits = metrics_.commits.value();
  const double per_txn =
      commits ? 1.0 / static_cast<double>(commits) : 0.0;

  r.resp_ms = metrics_.response.mean() * 1e3;
  r.resp_ci_ms = metrics_.response_batches.half_width_95() * 1e3;
  r.resp_p95_ms = metrics_.response_hist.quantile(0.95) * 1e3;
  r.resp_norm_ms = metrics_.response_per_ref.count()
                       ? metrics_.response_per_ref.mean() * 1e3
                       : 0.0;
  r.throughput = horizon > 0 ? static_cast<double>(commits) / horizon : 0.0;
  r.commits = commits;
  r.aborts = metrics_.aborts.value();
  r.deadlocks = metrics_.deadlocks.value();

  double util_sum = 0, util_max = 0;
  for (const auto& c : cpus_) {
    const double u = c->utilization();
    util_sum += u;
    util_max = std::max(util_max, u);
  }
  r.cpu_util = util_sum / static_cast<double>(cpus_.size());
  r.cpu_util_max = util_max;
  {
    // Mean utilization across the GEM shards (the single device's own value
    // when gem_shards=1 — shard 0 IS the device there).
    double g = 0;
    for (int s = 0; s < storage_->gem_shards(); ++s) {
      g += storage_->gem(s).utilization();
    }
    r.gem_util = g / static_cast<double>(storage_->gem_shards());
  }
  // Per-shard GEM rows (always populated; one row when gem_shards=1). These
  // are first-class results — `gemsd_analyze --compare` gates them whenever
  // both documents carry the block.
  for (int s = 0; s < storage_->gem_shards(); ++s) {
    const auto& dev = storage_->gem(s);
    RunResult::GemShardStat gs;
    gs.util = dev.utilization();
    gs.queue_mean = dev.server().mean_queue_length();
    gs.wait_ms = dev.server().wait_stat().mean() * 1e3;
    gs.completions = dev.server().completions();
    r.gem_shards.push_back(gs);
  }
  r.net_util = network_->utilization();
  r.tps_per_node_at_80 =
      util_max > 0 ? cfg_.arrival_rate_per_node * 0.8 / util_max : 0.0;

  for (std::size_t p = 0; p < cfg_.partitions.size(); ++p) {
    r.hit_ratio.push_back(metrics_.hit_ratio(p));
  }
  r.invalidations_per_txn =
      static_cast<double>(metrics_.invalidations.value()) * per_txn;
  r.page_requests_per_txn =
      static_cast<double>(metrics_.page_requests.value()) * per_txn;
  r.page_request_delay_ms = metrics_.page_request_delay.mean() * 1e3;
  r.evict_writes_per_txn =
      static_cast<double>(metrics_.evict_writes.value()) * per_txn;
  r.force_writes_per_txn =
      static_cast<double>(metrics_.force_writes.value()) * per_txn;

  r.local_lock_fraction = metrics_.local_lock_fraction();
  r.lock_waits_per_txn =
      static_cast<double>(metrics_.lock_waits.value()) * per_txn;
  r.lock_wait_ms = metrics_.lock_wait_time.mean() * 1e3;
  r.messages_per_txn =
      static_cast<double>(comm_->messages_sent()) * per_txn;
  r.revocations_per_txn =
      static_cast<double>(metrics_.revocations.value()) * per_txn;

  r.brk_cpu_ms = metrics_.breakdown_cpu.mean() * 1e3;
  r.brk_cpu_wait_ms = metrics_.breakdown_cpu_wait.mean() * 1e3;
  r.brk_io_ms = metrics_.breakdown_io.mean() * 1e3;
  r.brk_cc_ms = metrics_.breakdown_cc.mean() * 1e3;
  r.brk_queue_ms = metrics_.breakdown_queue.mean() * 1e3;

  const auto pct = [](const sim::Histogram& h) {
    RunResult::Percentiles p;
    p.p50 = h.quantile(0.50) * 1e3;
    p.p95 = h.quantile(0.95) * 1e3;
    p.p99 = h.quantile(0.99) * 1e3;
    return p;
  };
  r.pct_resp = pct(metrics_.response_hist);
  r.pct_cpu = pct(metrics_.breakdown_cpu_hist);
  r.pct_cpu_wait = pct(metrics_.breakdown_cpu_wait_hist);
  r.pct_io = pct(metrics_.breakdown_io_hist);
  r.pct_cc = pct(metrics_.breakdown_cc_hist);
  r.pct_queue = pct(metrics_.breakdown_queue_hist);

  // Full telemetry payload: a flat dump of every Metrics field and every
  // Resource's utilization/queue/completion stats (fixed order — the JSON
  // exporter writes these verbatim), plus sampler series, slow-txn log and
  // the trace ring. Shared so sweep-level copies of RunResult stay cheap.
  auto tel = std::make_shared<obs::RunTelemetry>();
  tel->stats_start = stats_start_;
  tel->end = sched_.now();
  auto& d = tel->detail;
  auto add = [&d](std::string name, double v) {
    d.emplace_back(std::move(name), v);
  };

  add("response.mean_s", metrics_.response.mean());
  add("response.stddev_s", metrics_.response.stddev());
  add("response.min_s", metrics_.response.min());
  add("response.max_s", metrics_.response.max());
  add("response.count", static_cast<double>(metrics_.response.count()));
  add("response.ci95_s", metrics_.response_batches.half_width_95());
  add("response.batches", static_cast<double>(metrics_.response_batches.batches()));
  add("response.p50_s", metrics_.response_hist.quantile(0.50));
  add("response.p95_s", metrics_.response_hist.quantile(0.95));
  add("response.p99_s", metrics_.response_hist.quantile(0.99));
  add("response.per_ref_s", metrics_.response_per_ref.mean());
  for (std::size_t t = 0; t < metrics_.per_type_response.size(); ++t) {
    add("response.type" + std::to_string(t) + ".mean_s",
        metrics_.per_type_response[t].mean());
    add("response.type" + std::to_string(t) + ".count",
        static_cast<double>(metrics_.per_type_response[t].count()));
  }
  add("txn.commits", static_cast<double>(commits));
  add("txn.aborts", static_cast<double>(metrics_.aborts.value()));
  add("txn.restarts", static_cast<double>(metrics_.restarts.value()));
  add("txn.lost", static_cast<double>(metrics_.lost_txns.value()));
  add("txn.mpl_wait_s", metrics_.mpl_wait.mean());
  add("recovery.count", static_cast<double>(metrics_.recovery_time.count()));
  add("recovery.mean_s", metrics_.recovery_time.mean());
  add("breakdown.cpu_s", metrics_.breakdown_cpu.mean());
  add("breakdown.cpu_wait_s", metrics_.breakdown_cpu_wait.mean());
  add("breakdown.io_s", metrics_.breakdown_io.mean());
  add("breakdown.cc_s", metrics_.breakdown_cc.mean());
  add("breakdown.queue_s", metrics_.breakdown_queue.mean());

  for (std::size_t p = 0; p < cfg_.partitions.size(); ++p) {
    const std::string pre = "buffer." + cfg_.partitions[p].name + ".";
    add(pre + "hits", static_cast<double>(metrics_.hits[p].value()));
    add(pre + "misses", static_cast<double>(metrics_.misses[p].value()));
    add(pre + "hit_ratio", metrics_.hit_ratio(p));
    add(pre + "invalidations",
        static_cast<double>(metrics_.invalidations_by_partition[p].value()));
  }
  add("buffer.invalidations",
      static_cast<double>(metrics_.invalidations.value()));
  add("buffer.page_requests",
      static_cast<double>(metrics_.page_requests.value()));
  add("buffer.page_request_misses",
      static_cast<double>(metrics_.page_request_misses.value()));
  add("buffer.page_request_delay_s", metrics_.page_request_delay.mean());
  add("buffer.evict_writes", static_cast<double>(metrics_.evict_writes.value()));
  add("buffer.force_writes", static_cast<double>(metrics_.force_writes.value()));

  add("cc.lock_requests", static_cast<double>(metrics_.lock_requests.value()));
  add("cc.lock_local", static_cast<double>(metrics_.lock_local.value()));
  add("cc.lock_remote", static_cast<double>(metrics_.lock_remote.value()));
  add("cc.lock_auth_local",
      static_cast<double>(metrics_.lock_auth_local.value()));
  add("cc.local_lock_fraction", metrics_.local_lock_fraction());
  add("cc.lock_waits", static_cast<double>(metrics_.lock_waits.value()));
  add("cc.lock_wait_s", metrics_.lock_wait_time.mean());
  add("cc.deadlocks", static_cast<double>(metrics_.deadlocks.value()));
  add("cc.revocations", static_cast<double>(metrics_.revocations.value()));
  add("cc.coherency_violations",
      static_cast<double>(metrics_.coherency_violations.value()));

  auto add_resource = [&](const std::string& pre, const sim::Resource& res) {
    add(pre + ".util", res.utilization());
    add(pre + ".queue_mean", res.mean_queue_length());
    add(pre + ".wait_mean_s", res.wait_stat().mean());
    add(pre + ".completions", static_cast<double>(res.completions()));
  };
  for (std::size_t n = 0; n < cpus_.size(); ++n) {
    add_resource("cpu.node" + std::to_string(n), cpus_[n]->resource());
  }
  for (std::size_t n = 0; n < tms_.size(); ++n) {
    add_resource("mpl.node" + std::to_string(n), tms_[n]->mpl());
  }
  // GEM detail: with a single shard the canonical keys keep their exact
  // bytes (shard 0 is the device); sharded runs add aggregate totals plus
  // additive per-shard keys — `gemsd_analyze --compare` ignores detail keys,
  // so the extra rows never break baseline comparisons.
  if (storage_->gem_shards() == 1) {
    add_resource("gem", storage_->gem().server());
    add("gem.page_ops", static_cast<double>(storage_->gem().page_ops()));
    add("gem.entry_ops", static_cast<double>(storage_->gem().entry_ops()));
  } else {
    double g_util = 0, g_queue = 0;
    std::uint64_t g_pages = 0, g_entries = 0, g_completions = 0;
    for (int s = 0; s < storage_->gem_shards(); ++s) {
      const auto& dev = storage_->gem(s);
      g_util += dev.utilization();
      g_queue += dev.server().mean_queue_length();
      g_pages += dev.page_ops();
      g_entries += dev.entry_ops();
      g_completions += dev.server().completions();
    }
    const double shards = static_cast<double>(storage_->gem_shards());
    add("gem.shards", shards);
    add("gem.util", g_util / shards);
    add("gem.queue_mean", g_queue);
    add("gem.completions", static_cast<double>(g_completions));
    add("gem.page_ops", static_cast<double>(g_pages));
    add("gem.entry_ops", static_cast<double>(g_entries));
    for (int s = 0; s < storage_->gem_shards(); ++s) {
      const auto& dev = storage_->gem(s);
      const std::string pre = "gem.shard" + std::to_string(s);
      add_resource(pre, dev.server());
      add(pre + ".page_ops", static_cast<double>(dev.page_ops()));
      add(pre + ".entry_ops", static_cast<double>(dev.entry_ops()));
    }
  }
  add_resource("net", network_->link());
  add("net.short_msgs", static_cast<double>(network_->short_count()));
  add("net.long_msgs", static_cast<double>(network_->long_count()));
  add("net.messages_sent", static_cast<double>(comm_->messages_sent()));
  for (std::size_t p = 0; p < cfg_.partitions.size(); ++p) {
    if (const auto* g = storage_->group(static_cast<PartitionId>(p))) {
      const std::string pre = "disk." + cfg_.partitions[p].name;
      add_resource(pre + ".arms", g->arms());
      add_resource(pre + ".controllers", g->controllers());
      add(pre + ".reads", static_cast<double>(g->reads()));
      add(pre + ".writes", static_cast<double>(g->writes()));
    }
  }
  for (std::size_t n = 0; n < static_cast<std::size_t>(cfg_.nodes); ++n) {
    const std::string pre = "log.node" + std::to_string(n);
    if (const auto* g =
            storage_->log_group_if_built(static_cast<NodeId>(n))) {
      add_resource(pre + ".arms", g->arms());
      add(pre + ".writes", static_cast<double>(g->writes()));
    } else {
      // Never built (GEM-resident log / idle node): report the exact zeros
      // an eagerly constructed untouched DiskGroup would — same keys, same
      // bytes, none of the per-node allocations.
      add(pre + ".arms.util", 0.0);
      add(pre + ".arms.queue_mean", 0.0);
      add(pre + ".arms.wait_mean_s", 0.0);
      add(pre + ".arms.completions", 0.0);
      add(pre + ".writes", 0.0);
    }
  }
  add("sched.queued_events", static_cast<double>(sched_.queued_events()));

  // Engine self-metrics (sim/engine.hpp). Everything except wall_events_per_s
  // is a property of the schedule: identical for every engine kind and worker
  // count. Additive only — `gemsd_analyze --compare` ignores detail keys.
  {
    const sim::EngineStats es = engine_.stats();
    add("engine.lps", static_cast<double>(es.lp_events.size()));
    add("engine.workers", static_cast<double>(engine_.workers()));
    add("engine.windows", static_cast<double>(es.windows));
    add("engine.degenerate_windows",
        static_cast<double>(es.degenerate_windows));
    add("engine.messages", static_cast<double>(es.messages));
    add("engine.events", static_cast<double>(es.events));
    add("engine.max_queue_depth", static_cast<double>(es.max_queue_depth));
    for (std::size_t i = 0; i < es.lp_events.size(); ++i) {
      add("engine.lp" + std::to_string(i) + ".events",
          static_cast<double>(es.lp_events[i]));
    }
    if (run_wall_s_ > 0) {
      add("engine.wall_events_per_s",
          static_cast<double>(run_events_) / run_wall_s_);
    }
  }

  tel->samples = samples_;
  tel->slowest = slow_log_.sorted();
  if (trace_) {
    tel->trace_enabled = true;
    tel->events = trace_->snapshot();
    tel->events_dropped = trace_->dropped();
  }
  if (engprof_) {
    tel->engprof =
        std::make_shared<const obs::EngProfile>(engprof_->snapshot());
  }
  if (ts_) {
    ts_->fold(sched_.now());  // close the tail segment at the horizon
    tel->timeseries =
        std::make_shared<const obs::TsSeries>(ts_->snapshot(sched_.now()));
  }
  if (cfg_.obs.resources || audit_) {
    auto set = resource_snapshot();
    if (audit_) {
      // Operational-law auditors: on a complete horizon every station must
      // reconcile against Little's law, the utilization law and flow balance;
      // busy ≤ capacity·horizon is a hard invariant. Fail fast with the
      // offending resource and cursor.
      for (const auto& v : obs::check_resource_laws(set)) {
        audit_->check(false, "resource_laws", sched_.now(), 0, -1, "%s: %s",
                      v.resource.c_str(), v.what.c_str());
      }
    }
    if (cfg_.obs.resources) {
      tel->resources =
          std::make_shared<const obs::ResourceSet>(std::move(set));
    }
  }
  r.telemetry = std::move(tel);
  return r;
}

obs::ResourceSet System::resource_snapshot() const {
  obs::ResourceSet set;
  set.stats_start = stats_start_;
  set.end = sched_.now();
  set.commits = metrics_.commits.value();
  const double horizon = set.horizon();
  set.throughput =
      horizon > 0 ? static_cast<double>(set.commits) / horizon : 0.0;
  if (resrec_) set.layout = resrec_->layout();

  const auto buckets = [&](const sim::Resource& res) {
    return resrec_ ? resrec_->buckets_for(res) : nullptr;
  };
  auto station = [&](const sim::Resource& res, std::string name,
                     std::string kind, int node) {
    set.rows.push_back(obs::resource_row(res, std::move(name), std::move(kind),
                                         node, horizon, set.commits,
                                         buckets(res)));
  };

  for (std::size_t n = 0; n < cpus_.size(); ++n) {
    station(cpus_[n]->resource(), "cpu.node" + std::to_string(n), "cpu",
            static_cast<int>(n));
  }
  for (std::size_t n = 0; n < tms_.size(); ++n) {
    station(tms_[n]->mpl(), "mpl.node" + std::to_string(n), "mpl",
            static_cast<int>(n));
  }
  if (storage_->gem_shards() == 1) {
    station(storage_->gem().server(), "gem", "gem", -1);
  } else {
    for (int s = 0; s < storage_->gem_shards(); ++s) {
      station(storage_->gem(s).server(), "gem.shard" + std::to_string(s),
              "gem", -1);
    }
  }
  station(network_->link(), "net", "net", -1);
  for (std::size_t p = 0; p < cfg_.partitions.size(); ++p) {
    if (const auto* g = storage_->group(static_cast<PartitionId>(p))) {
      const std::string pre = "disk." + cfg_.partitions[p].name;
      station(g->arms(), pre + ".arms", "disk", -1);
      station(g->controllers(), pre + ".controllers", "disk", -1);
    }
  }
  for (std::size_t n = 0; n < static_cast<std::size_t>(cfg_.nodes); ++n) {
    const std::string pre = "log.node" + std::to_string(n);
    if (const auto* g =
            storage_->log_group_if_built(static_cast<NodeId>(n))) {
      station(g->arms(), pre + ".arms", "log", static_cast<int>(n));
    } else {
      // Never built (GEM-resident log / idle node): an all-zero row with the
      // capacity an eagerly built group would have had, so the station list
      // is identical either way.
      obs::ResourceRow row;
      row.name = pre + ".arms";
      row.kind = "log";
      row.node = static_cast<int>(n);
      row.capacity = std::max(cfg_.log_disks_per_node, 1);
      obs::derive_resource_row(row, horizon, set.commits);
      set.rows.push_back(std::move(row));
    }
  }
  {
    // The lock-table wait queue is a pure delay station (capacity 0): every
    // granted-after-wait lock request is an arrival and a completion, and the
    // queue integral equals the summed wait time by construction, so Little's
    // identity is exact here too. Derived server laws don't apply.
    obs::ResourceRow row;
    row.name = "lock";
    row.kind = "lock";
    row.capacity = 0;
    const auto& w = metrics_.lock_wait_time;
    row.arrivals = metrics_.lock_waits.value();
    row.completions = row.arrivals;
    row.waited_s = w.sum();
    row.queue_integral_s = w.sum();
    row.wait.count = w.count();
    row.wait.sum_s = w.sum();
    row.wait_max_s = w.count() ? w.max() : 0.0;
    obs::derive_resource_row(row, horizon, set.commits);
    set.rows.push_back(std::move(row));
  }
  return set;
}

System::Workload make_debit_credit_workload(const SystemConfig& cfg) {
  System::Workload wl;
  wl.gen = std::make_unique<workload::DebitCreditGenerator>(cfg.nodes);
  wl.router = workload::make_debit_credit_router(cfg.routing, cfg.nodes);
  wl.gla = std::make_unique<workload::DebitCreditGlaMap>(cfg.nodes);
  return wl;
}

RunResult run_debit_credit(const SystemConfig& cfg) {
  System sys(cfg, make_debit_credit_workload(cfg));
  return sys.run();
}

}  // namespace gemsd
