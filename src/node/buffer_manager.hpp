#pragma once

#include <coroutine>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/config.hpp"
#include "core/lru.hpp"
#include "core/metrics.hpp"
#include "core/types.hpp"
#include "node/cpu.hpp"
#include "node/txn.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/task.hpp"
#include "storage/storage_manager.hpp"

namespace gemsd::node {

/// Per-node main-memory database buffer: LRU replacement, dirty-page
/// write-back on eviction (asynchronous, with the in-flight copy still
/// servable), logging, and the CPU cost model for I/O — 3000 instructions
/// per disk I/O issued asynchronously vs 300 instructions plus a
/// *synchronous* CPU hold for GEM page accesses (Section 3.2 / Table 4.1).
class BufferManager {
 public:
  BufferManager(sim::Scheduler& sched, const SystemConfig& cfg, NodeId node,
                CpuSet& cpu, storage::StorageManager& storage,
                Metrics& metrics);

  /// Called when an eviction write-back completes (page, version written) —
  /// the protocol clears the coherency directory's owner field.
  void set_writeback_hook(std::function<void(NodeId, PageId, SeqNo)> fn) {
    writeback_done_ = std::move(fn);
  }

  // --- copy inspection (no timing) ---
  /// Version of the locally cached copy (frame or in-flight write-back).
  std::optional<SeqNo> cached_seqno(PageId p) const;
  bool has_copy(PageId p) const;
  bool frame_dirty(PageId p) const;

  // --- access paths (invoked by the transaction manager / protocols) ---
  /// Valid cached copy: LRU promote + hit accounting.
  void hit(PageId p);
  /// LRU promote only — no hit/miss accounting (repeated record access to a
  /// page the transaction already fixed, e.g. BRANCH after TELLER in the
  /// same clustered page; the paper counts page accesses, not record hits).
  void touch(PageId p);
  /// Account a miss/invalidation without doing the I/O here (the protocol
  /// supplies the page by transfer).
  void count_miss(PageId p, bool invalidation);
  /// Read the current version from the partition's storage and install it
  /// (counts as a miss; concurrent reads of the same page are merged into
  /// one physical I/O).
  sim::Task<void> read_from_storage(Txn* txn, PageId p, SeqNo seqno,
                                    bool count = true);
  /// Install a copy obtained without storage I/O (page transfer, fresh
  /// append page).
  void install(PageId p, SeqNo seqno, bool dirty);
  /// Mark modified in place (caller holds the write lock).
  void mark_dirty(PageId p);
  /// Commit-time version update for a dirty page; reinstalls the frame if it
  /// was evicted mid-transaction (the committing txn still holds the data).
  void commit_dirty(PageId p, SeqNo new_seqno, bool stays_dirty);
  /// When the node ships its (dirty) copy to another node that takes over
  /// ownership, the local copy stays cached but becomes clean.
  void shipped_copy(PageId p);
  /// Drop a (clean) cached copy — broadcast invalidation received.
  void discard(PageId p) { frames_.erase(p); }
  /// Node crash: volatile buffer contents (and in-flight write-backs) are
  /// lost; the node restarts cold.
  void crash_clear() {
    frames_.clear();
    writeback_.clear();
  }

  /// Write a page to its partition's storage on behalf of a transaction
  /// (FORCE at commit); the frame becomes clean.
  sim::Task<void> force_write(Txn* txn, PageId p);
  /// Append one log page to this node's log (commit phase 1).
  sim::Task<void> write_log(Txn* txn);

  /// Access to a page of an unlocked partition (e.g. HISTORY); fresh_page
  /// indicates a newly allocated append page (installed without a read).
  sim::Task<void> access_unlocked(Txn& txn, PageId p, bool write,
                                  bool fresh_page);

  NodeId node() const { return node_; }
  std::size_t frames_in_use() const { return frames_.size(); }
  std::uint64_t writebacks() const { return writebacks_; }

 private:
  struct Frame {
    SeqNo seqno = 0;
    bool dirty = false;
  };

  void install_evicting(PageId p, Frame f);
  void evict_one();
  sim::Task<void> writeback_task(PageId p, SeqNo seqno);
  /// Background staging of a disk-read page into the GEM page cache.
  sim::Task<void> stage_into_gem_cache(PageId p, bool dirty);
  /// Device-level read/write with CPU accounting (GEM: synchronous hold).
  sim::Task<void> device_read(Txn* txn, PageId p);
  sim::Task<void> device_write(Txn* txn, PageId p);

  sim::Scheduler& sched_;
  const SystemConfig& cfg_;
  NodeId node_;
  CpuSet& cpu_;
  storage::StorageManager& storage_;
  Metrics& metrics_;

  LruMap<Frame> frames_;
  std::unordered_map<PageId, SeqNo> writeback_;  ///< in-flight dirty evictions
  std::unordered_map<PageId, std::vector<std::coroutine_handle<>>> inflight_;
  std::function<void(NodeId, PageId, SeqNo)> writeback_done_;
  std::uint64_t writebacks_ = 0;
};

}  // namespace gemsd::node
