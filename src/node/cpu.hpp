#pragma once

#include <string>

#include "core/config.hpp"
#include "sim/resource.hpp"
#include "sim/scheduler.hpp"
#include "sim/task.hpp"

namespace gemsd::node {

/// A node's CPU complex: k identical processors served FCFS. Requests are
/// expressed in instructions and converted through the per-processor MIPS
/// rate. Supports compound holds ("synchronous" GEM accesses keep the
/// processor busy across the device wait — the defining cost model of close
/// coupling).
class CpuSet {
 public:
  CpuSet(sim::Scheduler& sched, const CpuConfig& cfg, std::string name)
      : sched_(sched), cfg_(cfg), procs_(sched, cfg.processors, std::move(name)) {}

  /// Acquire a processor, execute `instr` instructions, release.
  /// Returns the queueing delay experienced.
  sim::Task<double> consume(double instr) {
    const double w = co_await procs_.acquire();
    co_await sched_.delay(cfg_.instr_to_seconds(instr));
    procs_.release();
    co_return w;
  }

  /// For compound holds: acquire (awaitable returning wait time) / release.
  auto acquire() { return procs_.acquire(); }
  void release() { procs_.release(); }
  /// Execute instructions while already holding a processor.
  sim::Task<void> busy(double instr) {
    co_await sched_.delay(cfg_.instr_to_seconds(instr));
  }

  double seconds(double instr) const { return cfg_.instr_to_seconds(instr); }
  double utilization() const { return procs_.utilization(); }
  /// Total processor-seconds consumed since the last stats reset.
  double busy_seconds(sim::SimTime horizon_start) const {
    return procs_.utilization() * cfg_.processors *
           (sched_.now() - horizon_start);
  }
  const sim::MeanStat& wait_stat() const { return procs_.wait_stat(); }
  void reset_stats() { procs_.reset_stats(); }
  int processors() const { return cfg_.processors; }
  const sim::Resource& resource() const { return procs_; }
  /// Mutable station (observability wiring: wait-sketch attachment).
  sim::Resource& resource() { return procs_; }

 private:
  sim::Scheduler& sched_;
  CpuConfig cfg_;
  sim::Resource procs_;
};

}  // namespace gemsd::node
