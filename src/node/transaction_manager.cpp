#include "node/transaction_manager.hpp"

#include <cstdio>

#include "obs/audit.hpp"
#include "obs/timeseries.hpp"

namespace gemsd::node {

namespace {
/// Node-private append streams (one tail page per node) are spaced apart in
/// the page number space of the sequential partition.
constexpr std::int64_t kAppendStride = std::int64_t{1} << 40;
}  // namespace

TransactionManager::TransactionManager(sim::Scheduler& sched, sim::Rng& rng,
                                       const SystemConfig& cfg, NodeId node,
                                       CpuSet& cpu, BufferManager& buf,
                                       LogManager& log, cc::Protocol& cc,
                                       Metrics& metrics)
    : sched_(sched),
      rng_(rng),
      cfg_(cfg),
      node_(node),
      cpu_(cpu),
      buf_(buf),
      log_(log),
      cc_(cc),
      metrics_(metrics),
      mpl_(sched, cfg.mpl, "mpl" + std::to_string(node)) {}

void TransactionManager::submit(workload::TxnSpec spec, sim::SimTime arrival) {
  Txn txn;
  txn.id = (static_cast<TxnId>(static_cast<std::uint32_t>(node_)) << 40) |
           next_id_++;
  txn.node = node_;
  txn.arrival = arrival;
  txn.spec = std::move(spec);
  ++submitted_;
  sched_.spawn(run(std::move(txn)));
}

sim::Task<void> TransactionManager::consume_cpu(Txn& txn, double instr) {
  const sim::SimTime t0 = sched_.now();
  const double wait = co_await cpu_.consume(instr);
  txn.t_cpu_wait += wait;
  txn.t_cpu += cpu_.seconds(instr);
  if (metrics_.trace) {
    metrics_.trace->span(obs::TraceName::kCpu, node_, txn.id, t0, sched_.now(),
                         wait);
  }
}

PageId TransactionManager::resolve_append(PageId ref, bool& fresh_page) {
  const auto& pc = cfg_.partitions[static_cast<std::size_t>(ref.partition)];
  fresh_page = (appends_ % pc.blocking_factor) == 0;
  const std::int64_t pageno =
      static_cast<std::int64_t>(node_) * kAppendStride +
      appends_ / pc.blocking_factor;
  ++appends_;
  return PageId{ref.partition, pageno};
}

sim::Task<bool> TransactionManager::execute(Txn& txn) {
  co_await consume_cpu(txn, rng_.exponential(cfg_.path.bot_instr));

  for (const auto& ref : txn.spec.refs) {
    if (failed_) co_return false;  // node crashed under this transaction
    co_await consume_cpu(txn, rng_.exponential(cfg_.path.per_ref_instr));

    bool fresh_page = false;
    PageId page = ref.page;
    if (page.page == kAppendPage) page = resolve_append(ref.page, fresh_page);

    const auto& pc = cfg_.partitions[static_cast<std::size_t>(page.partition)];
    if (!pc.locked) {
      co_await buf_.access_unlocked(txn, page, ref.write, fresh_page);
      continue;
    }

    const LockMode mode = ref.write           ? LockMode::Write
                          : ref.update_intent ? LockMode::Update
                                              : LockMode::Read;
    if (cc_.table().holds(page, txn.id, mode)) {
      // Second record access to an already locked page (e.g. the clustered
      // BRANCH after TELLER): the local lock manager handles it; the page
      // should still be framed. Not counted as a separate page access.
      if (buf_.has_copy(page)) {
        buf_.touch(page);
      } else {
        cc::LockOutcome again;
        again.source = cc::PageSource::CacheValid;
        again.seqno = cc_.directory().seqno(page);
        co_await cc_.provision(txn, page, again);
      }
    } else {
      const cc::LockOutcome lk = co_await cc_.acquire(txn, page, mode);
      if (lk.aborted) co_return false;
      co_await cc_.provision(txn, page, lk);
      // Coherency invariant: under the lock, the provisioned copy must be
      // the current version.
      const auto have = buf_.cached_seqno(page);
      if (metrics_.audit) {
        metrics_.audit->check(
            !have || *have == cc_.directory().seqno(page),
            "lock-buffer-coherency", sched_.now(), txn.id, node_,
            "page %lld/%d provisioned under the lock at seqno %llu but the "
            "directory says %llu",
            static_cast<long long>(page.page), page.partition,
            static_cast<unsigned long long>(have ? *have : 0),
            static_cast<unsigned long long>(cc_.directory().seqno(page)));
      }
      if (have && *have != cc_.directory().seqno(page)) {
        metrics_.coherency_violations.inc();
#ifdef GEMSD_DEBUG_COHERENCY
        std::fprintf(stderr,
                     "VIOLATION txn=%llu node=%d page=%lld cached=%llu "
                     "dir=%llu src=%d owner=%d mode=%d restarts=%d\n",
                     (unsigned long long)txn.id, txn.node,
                     (long long)page.page, (unsigned long long)*have,
                     (unsigned long long)cc_.directory().seqno(page),
                     (int)lk.source, cc_.directory().owner(page),
                     (int)mode, txn.restarts);
#endif
      }
    }
    if (ref.write) {
      buf_.mark_dirty(page);
      txn.note_dirty(page);
    }
  }

  // --- commit phase 1: log (update transactions) and FORCE writes, in
  // parallel across devices ---
  if (failed_) co_return false;
  co_await consume_cpu(txn, rng_.exponential(cfg_.path.eot_instr));
  const bool update = !txn.dirty.empty() || !txn.dirty_unlocked.empty();
  const sim::SimTime io0 = sched_.now();
  sim::Join j(sched_);
  if (update) j.spawn(log_.commit_write());
  if (cfg_.update == UpdateStrategy::Force) {
    for (PageId p : txn.dirty) j.spawn(buf_.force_write(nullptr, p));
    for (PageId p : txn.dirty_unlocked) j.spawn(buf_.force_write(nullptr, p));
  }
  co_await j.wait_all();
  txn.t_io += sched_.now() - io0;
  if (metrics_.trace && sched_.now() > io0) {
    // Log + FORCE writes run in parallel on one transaction lane: collapsed
    // into a single commit-I/O span so the lane's slices stay nested.
    metrics_.trace->span(obs::TraceName::kCommitIo, node_, txn.id, io0,
                         sched_.now());
  }

  // --- commit phase 2: release locks / propagate ownership ---
  // --audit: commit_release clears txn.dirty, so the pre-commit lock check
  // and the post-commit directory check both work from a snapshot.
  std::vector<PageId> audit_dirty;
  if (metrics_.audit) {
    audit_dirty = txn.dirty;
    for (PageId p : audit_dirty) {
      metrics_.audit->check(
          cc_.table().holds(p, txn.id, LockMode::Write), "dirty-write-lock",
          sched_.now(), txn.id, node_,
          "page %lld/%d is dirty at commit but not write-locked",
          static_cast<long long>(p.page), p.partition);
    }
  }
  const sim::SimTime cc0 = sched_.now();
  co_await cc_.commit_release(txn);
  txn.t_cc += sched_.now() - cc0;
  txn.dirty_unlocked.clear();
  if (metrics_.audit) {
    cc_.audit_commit_state(txn, audit_dirty, *metrics_.audit, sched_.now());
  }
  co_return true;
}

sim::Task<void> TransactionManager::run(Txn txn) {
  ++active_;
  const double qwait = co_await mpl_.acquire();
  txn.t_queue = qwait;
  metrics_.mpl_wait.add(qwait);
  if (metrics_.trace && qwait > 0.0) {
    metrics_.trace->span(obs::TraceName::kMplWait, node_, txn.id,
                         sched_.now() - qwait, sched_.now());
  }

  for (;;) {
    const bool committed = co_await execute(txn);
    if (committed) break;
    co_await cc_.abort_release(txn);
    txn.dirty_unlocked.clear();
    if (failed_) {
      // Crash: the transaction is lost, not restarted.
      metrics_.lost_txns.inc();
      mpl_.release();
      --active_;
      co_return;
    }
    metrics_.aborts.inc();
    metrics_.restarts.inc();
    if (metrics_.ts) metrics_.ts->on_abort(sched_.now(), node_);
    ++txn.restarts;
    txn.t_cpu = txn.t_cpu_wait = txn.t_io = txn.t_cc = 0;
    if (metrics_.trace) {
      metrics_.trace->instant(obs::TraceName::kRestart, node_, txn.id,
                              sched_.now());
    }
    co_await sched_.delay(cfg_.restart_delay);
  }

  mpl_.release();
  --active_;
  const double rt = sched_.now() - txn.arrival;
  metrics_.commits.inc();
  metrics_.response.add(rt);
  if (metrics_.ts) metrics_.ts->on_commit(sched_.now(), node_, rt);
  metrics_.response_batches.add(rt);
  metrics_.response_hist.add(rt);
  if (!txn.spec.refs.empty()) {
    metrics_.response_per_ref.add(rt /
                                  static_cast<double>(txn.spec.refs.size()));
  }
  auto& per_type = metrics_.per_type_response;
  if (static_cast<std::size_t>(txn.spec.type) < per_type.size()) {
    per_type[static_cast<std::size_t>(txn.spec.type)].add(rt);
  }
  metrics_.breakdown_cpu.add(txn.t_cpu);
  metrics_.breakdown_cpu_wait.add(txn.t_cpu_wait);
  metrics_.breakdown_io.add(txn.t_io);
  metrics_.breakdown_cc.add(txn.t_cc);
  metrics_.breakdown_queue.add(txn.t_queue);
  metrics_.breakdown_cpu_hist.add(txn.t_cpu);
  metrics_.breakdown_cpu_wait_hist.add(txn.t_cpu_wait);
  metrics_.breakdown_io_hist.add(txn.t_io);
  metrics_.breakdown_cc_hist.add(txn.t_cc);
  metrics_.breakdown_queue_hist.add(txn.t_queue);

  if (metrics_.audit) {
    auto* au = metrics_.audit;
    const sim::SimTime now = sched_.now();
    au->check(txn.t_cpu >= 0 && txn.t_cpu_wait >= 0 && txn.t_io >= 0 &&
                  txn.t_cc >= 0 && txn.t_queue >= 0,
              "phase-nonneg", now, txn.id, node_,
              "negative phase: cpu=%g cpu_wait=%g io=%g cc=%g queue=%g",
              txn.t_cpu, txn.t_cpu_wait, txn.t_io, txn.t_cc, txn.t_queue);
    // The phases partition the response time minus restart back-offs and
    // time lost to aborted attempts; their sum can never exceed it.
    const double phase_sum =
        txn.t_cpu + txn.t_cpu_wait + txn.t_io + txn.t_cc + txn.t_queue;
    au->check(phase_sum <= rt * (1.0 + 1e-9) + 1e-12, "phase-sum", now,
              txn.id, node_,
              "phase sum %.9f s exceeds response time %.9f s", phase_sum, rt);
    au->check(buf_.frames_in_use() <=
                  static_cast<std::size_t>(cfg_.buffer_pages),
              "buffer-frames", now, txn.id, node_,
              "%zu frames in use with buffer_pages=%d", buf_.frames_in_use(),
              cfg_.buffer_pages);
  }

  if (metrics_.trace) {
    auto* tr = metrics_.trace;
    const sim::SimTime now = sched_.now();
    tr->span(obs::TraceName::kTxn, node_, txn.id, txn.arrival, now,
             static_cast<double>(txn.spec.type));
    tr->instant(obs::TraceName::kCommit, node_, txn.id, now);
    // Phase totals carry the exact seconds added to Metrics::breakdown_* so
    // the exported span args reconcile with the report by construction.
    tr->phase_total(obs::TraceName::kPhaseCpu, node_, txn.id, now, txn.t_cpu);
    tr->phase_total(obs::TraceName::kPhaseCpuWait, node_, txn.id, now,
                    txn.t_cpu_wait);
    tr->phase_total(obs::TraceName::kPhaseIo, node_, txn.id, now, txn.t_io);
    tr->phase_total(obs::TraceName::kPhaseCc, node_, txn.id, now, txn.t_cc);
    tr->phase_total(obs::TraceName::kPhaseQueue, node_, txn.id, now,
                    txn.t_queue);
  }
  if (metrics_.slow) {
    obs::SlowTxn s;
    s.id = txn.id;
    s.node = static_cast<std::int16_t>(node_);
    s.type = txn.spec.type;
    s.restarts = txn.restarts;
    s.arrival = txn.arrival;
    s.response = rt;
    s.cpu = txn.t_cpu;
    s.cpu_wait = txn.t_cpu_wait;
    s.io = txn.t_io;
    s.cc = txn.t_cc;
    s.queue = txn.t_queue;
    metrics_.slow->add(s);
  }
}

}  // namespace gemsd::node
