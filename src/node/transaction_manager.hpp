#pragma once

#include <cstdint>

#include "cc/protocol.hpp"
#include "core/config.hpp"
#include "core/metrics.hpp"
#include "node/buffer_manager.hpp"
#include "node/log_manager.hpp"
#include "node/cpu.hpp"
#include "node/txn.hpp"
#include "sim/join.hpp"
#include "sim/random.hpp"
#include "sim/resource.hpp"
#include "sim/scheduler.hpp"
#include "workload/workload.hpp"

namespace gemsd::node {

/// Per-node transaction manager (Section 3.2): admits transactions up to the
/// multiprogramming level (excess waits in the input queue), charges CPU at
/// BOT, per record access and at EOT (exponentially distributed bursts),
/// drives locking and buffer accesses per reference, and runs the two-phase
/// commit: phase 1 writes the log (update transactions) and — under FORCE —
/// all modified pages, in parallel; phase 2 releases the locks through the
/// concurrency-control protocol. Deadlock victims are restarted after a
/// short back-off.
class TransactionManager {
 public:
  TransactionManager(sim::Scheduler& sched, sim::Rng& rng,
                     const SystemConfig& cfg, NodeId node, CpuSet& cpu,
                     BufferManager& buf, LogManager& log, cc::Protocol& cc,
                     Metrics& metrics);

  /// Called by the SOURCE; `arrival` is the generation time (response time
  /// includes any input-queue wait).
  void submit(workload::TxnSpec spec, sim::SimTime arrival);

  int active() const { return active_; }
  std::uint64_t submitted() const { return submitted_; }
  const sim::Resource& mpl() const { return mpl_; }
  /// Mutable MPL pool (observability wiring: wait-sketch attachment).
  sim::Resource& mpl_pool() { return mpl_; }

  /// Reset the MPL station's statistics at warm-up end, like every other
  /// queueing station; without this the slot pool's integrals span warm-up
  /// and the operational laws cannot reconcile on the measurement horizon.
  void reset_stats() { mpl_.reset_stats(); }

  /// Node crash / restart: while failed, in-flight transactions are killed
  /// at their next step (their locks are released) and count as lost.
  void set_failed(bool failed) { failed_ = failed; }
  bool failed() const { return failed_; }

 private:
  sim::Task<void> run(Txn txn);
  /// One execution attempt; false => deadlock victim (locks released by the
  /// caller via abort_release).
  sim::Task<bool> execute(Txn& txn);
  sim::Task<void> consume_cpu(Txn& txn, double instr);
  /// Resolve a HISTORY-style append reference to this node's tail page.
  PageId resolve_append(PageId ref, bool& fresh_page);

  sim::Scheduler& sched_;
  sim::Rng& rng_;
  const SystemConfig& cfg_;
  NodeId node_;
  CpuSet& cpu_;
  BufferManager& buf_;
  LogManager& log_;
  cc::Protocol& cc_;
  Metrics& metrics_;
  sim::Resource mpl_;
  /// Starts at 1: transaction id 0 is reserved for node background work in
  /// the trace (write-backs, messages), so every txn-scoped event has id != 0.
  std::uint64_t next_id_ = 1;
  std::uint64_t submitted_ = 0;
  std::int64_t appends_ = 0;
  int active_ = 0;
  bool failed_ = false;
};

}  // namespace gemsd::node
