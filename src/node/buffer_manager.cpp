#include "node/buffer_manager.hpp"

#include <cassert>

namespace gemsd::node {

BufferManager::BufferManager(sim::Scheduler& sched, const SystemConfig& cfg,
                             NodeId node, CpuSet& cpu,
                             storage::StorageManager& storage,
                             Metrics& metrics)
    : sched_(sched),
      cfg_(cfg),
      node_(node),
      cpu_(cpu),
      storage_(storage),
      metrics_(metrics),
      frames_(static_cast<std::size_t>(cfg.buffer_pages)) {}

std::optional<SeqNo> BufferManager::cached_seqno(PageId p) const {
  if (const Frame* f = frames_.peek(p)) return f->seqno;
  auto it = writeback_.find(p);
  if (it != writeback_.end()) return it->second;
  return std::nullopt;
}

bool BufferManager::has_copy(PageId p) const {
  return frames_.contains(p) || writeback_.count(p) != 0;
}

bool BufferManager::frame_dirty(PageId p) const {
  const Frame* f = frames_.peek(p);
  return f != nullptr && f->dirty;
}

void BufferManager::hit(PageId p) {
  metrics_.hits[static_cast<std::size_t>(p.partition)].inc();
  touch(p);
}

void BufferManager::touch(PageId p) {
  if (frames_.touch(p) != nullptr) return;
  // The copy only survives in the in-flight write-back table; re-frame it.
  auto wb = writeback_.find(p);
  if (wb != writeback_.end()) install_evicting(p, Frame{wb->second, false});
}

void BufferManager::count_miss(PageId p, bool invalidation) {
  metrics_.misses[static_cast<std::size_t>(p.partition)].inc();
  if (invalidation) {
    metrics_.invalidations.inc();
    metrics_.invalidations_by_partition[static_cast<std::size_t>(p.partition)]
        .inc();
  }
}

sim::Task<void> BufferManager::device_read(Txn* txn, PageId p) {
  // The transaction phases partition the response time: the CPU queueing
  // delay for initiating the I/O goes to t_cpu_wait, the rest of this
  // window (initiation burst + device service) to t_io.
  const sim::SimTime t0 = sched_.now();
  double cpu_wait = 0.0;
  if (storage_.is_gem(p.partition)) {
    // Synchronous GEM I/O: short initiation burst, processor held across the
    // device wait (close coupling's defining cost property).
    cpu_wait = co_await cpu_.acquire();
    co_await cpu_.busy(cfg_.gem.io_instr);
    co_await storage_.read(p);
    cpu_.release();
  } else if (storage_.has_gem_cache(p.partition)) {
    // Probe the GEM-resident global cache synchronously; fall back to the
    // disks on a miss and stage the page into the cache in the background.
    cpu_wait = co_await cpu_.acquire();
    co_await cpu_.busy(cfg_.gem.io_instr);
    const bool hit = co_await storage_.gem_cache_probe(p);
    cpu_.release();
    if (!hit) {
      cpu_wait += co_await cpu_.consume(cfg_.disk.io_instr);
      co_await storage_.disk_read(p);
      sched_.spawn(stage_into_gem_cache(p, /*dirty=*/false));
    }
  } else {
    cpu_wait = co_await cpu_.consume(cfg_.disk.io_instr);
    co_await storage_.read(p);
  }
  if (txn) {
    txn->t_cpu_wait += cpu_wait;
    txn->t_io += sched_.now() - t0 - cpu_wait;
  }
  if (metrics_.trace) {
    metrics_.trace->span(obs::TraceName::kIoRead, node_, txn ? txn->id : 0, t0,
                         sched_.now(), static_cast<double>(p.page),
                         static_cast<std::int32_t>(p.partition));
  }
}

sim::Task<void> BufferManager::stage_into_gem_cache(PageId p, bool dirty) {
  co_await cpu_.acquire();
  co_await cpu_.busy(cfg_.gem.io_instr);
  co_await storage_.gem_cache_insert(p, dirty);
  cpu_.release();
}

sim::Task<void> BufferManager::device_write(Txn* txn, PageId p) {
  // Same split as device_read: CPU queueing to t_cpu_wait, the rest to t_io.
  const sim::SimTime t0 = sched_.now();
  double cpu_wait = 0.0;
  if (storage_.is_gem(p.partition)) {
    cpu_wait = co_await cpu_.acquire();
    co_await cpu_.busy(cfg_.gem.io_instr);
    co_await storage_.write(p);
    cpu_.release();
  } else if (storage_.has_gem_cache(p.partition)) {
    // GEM is non-volatile: the write is durable once absorbed by the cache
    // (fast write / write buffer usage form); destage happens asynchronously.
    cpu_wait = co_await cpu_.acquire();
    co_await cpu_.busy(cfg_.gem.io_instr);
    co_await storage_.gem_cache_insert(p, /*dirty=*/true);
    cpu_.release();
  } else {
    cpu_wait = co_await cpu_.consume(cfg_.disk.io_instr);
    co_await storage_.write(p);
  }
  if (txn) {
    txn->t_cpu_wait += cpu_wait;
    txn->t_io += sched_.now() - t0 - cpu_wait;
  }
  if (metrics_.trace) {
    metrics_.trace->span(obs::TraceName::kIoWrite, node_, txn ? txn->id : 0,
                         t0, sched_.now(), static_cast<double>(p.page),
                         static_cast<std::int32_t>(p.partition));
  }
}

sim::Task<void> BufferManager::read_from_storage(Txn* txn, PageId p,
                                                 SeqNo seqno, bool count) {
  if (count) count_miss(p, false);
  // Merge with an in-flight read of the same page at this node.
  auto it = inflight_.find(p);
  if (it != inflight_.end()) {
    co_await sched_.suspend([&](std::coroutine_handle<> h) {
      inflight_[p].push_back(h);
    });
    co_return;
  }
  inflight_[p];  // mark as leader
  co_await device_read(txn, p);
  install(p, seqno, /*dirty=*/false);
  auto waiters = std::move(inflight_[p]);
  inflight_.erase(p);
  for (auto h : waiters) sched_.schedule(sched_.now(), h);
}

void BufferManager::install(PageId p, SeqNo seqno, bool dirty) {
  if (Frame* f = frames_.touch(p)) {
    f->seqno = seqno;
    f->dirty = f->dirty || dirty;
    return;
  }
  install_evicting(p, Frame{seqno, dirty});
}

void BufferManager::install_evicting(PageId p, Frame f) {
  while (frames_.full()) evict_one();
  frames_.insert(p, f);
}

void BufferManager::evict_one() {
  auto victim = frames_.lru();
  assert(victim.has_value());
  const PageId p = victim->first;
  const Frame f = victim->second;
  frames_.erase(p);
  if (f.dirty) {
    // Asynchronous write-back; the copy stays servable until it completes.
    writeback_[p] = f.seqno;
    metrics_.evict_writes.inc();
    ++writebacks_;
    sched_.spawn(writeback_task(p, f.seqno));
  }
}

sim::Task<void> BufferManager::writeback_task(PageId p, SeqNo seqno) {
  co_await device_write(nullptr, p);
  auto it = writeback_.find(p);
  if (it != writeback_.end() && it->second == seqno) writeback_.erase(it);
  if (writeback_done_) writeback_done_(node_, p, seqno);
}

void BufferManager::mark_dirty(PageId p) {
  Frame* f = frames_.touch(p);
  if (f == nullptr) {
    // The frame was evicted between fetch and modification (possible under
    // heavy replacement): logically the txn still holds the data; reinstall.
    auto wb = writeback_.find(p);
    const SeqNo s = wb != writeback_.end() ? wb->second : 0;
    install_evicting(p, Frame{s, true});
    return;
  }
  f->dirty = true;
}

void BufferManager::commit_dirty(PageId p, SeqNo new_seqno, bool stays_dirty) {
  Frame* f = frames_.touch(p);
  if (f == nullptr) {
    install_evicting(p, Frame{new_seqno, stays_dirty});
    return;
  }
  f->seqno = new_seqno;
  f->dirty = stays_dirty;
}

void BufferManager::shipped_copy(PageId p) {
  if (Frame* f = frames_.peek(p)) f->dirty = false;
}

sim::Task<void> BufferManager::force_write(Txn* txn, PageId p) {
  metrics_.force_writes.inc();
  co_await device_write(txn, p);
  if (Frame* f = frames_.peek(p)) f->dirty = false;
}

sim::Task<void> BufferManager::write_log(Txn* txn) {
  // Same split as device_read: CPU queueing to t_cpu_wait, the rest to t_io.
  const sim::SimTime t0 = sched_.now();
  double cpu_wait = 0.0;
  if (storage_.log_on_gem()) {
    cpu_wait = co_await cpu_.acquire();
    co_await cpu_.busy(cfg_.gem.io_instr);
    co_await storage_.log_write(node_);
    cpu_.release();
  } else {
    cpu_wait = co_await cpu_.consume(cfg_.disk.io_instr);
    co_await storage_.log_write(node_);
  }
  if (txn) {
    txn->t_cpu_wait += cpu_wait;
    txn->t_io += sched_.now() - t0 - cpu_wait;
  }
  if (metrics_.trace) {
    metrics_.trace->span(obs::TraceName::kIoLog, node_, txn ? txn->id : 0, t0,
                         sched_.now());
  }
}

sim::Task<void> BufferManager::access_unlocked(Txn& txn, PageId p, bool write,
                                               bool fresh_page) {
  if (has_copy(p)) {
    hit(p);
  } else if (fresh_page) {
    // Newly allocated append page: no read I/O, but not a buffer hit either.
    count_miss(p, false);
    install(p, 0, false);
  } else {
    co_await read_from_storage(&txn, p, 0);
  }
  if (write) {
    mark_dirty(p);
    txn.note_dirty_unlocked(p);
  }
}

}  // namespace gemsd::node
