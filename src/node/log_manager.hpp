#pragma once

#include <coroutine>
#include <vector>

#include "core/config.hpp"
#include "node/cpu.hpp"
#include "sim/scheduler.hpp"
#include "sim/task.hpp"
#include "storage/storage_manager.hpp"

namespace gemsd::node {

/// Per-node log manager. The paper models logging as one log page write per
/// update transaction at commit (Section 3.2); that is the default here.
/// With *group commit* enabled, concurrent committers share a single log
/// write: the first committer opens a group that flushes when either the
/// group window expires or the group is full — the classic fix when the
/// log device becomes the commit bottleneck.
class LogManager {
 public:
  LogManager(sim::Scheduler& sched, const SystemConfig& cfg, NodeId node,
             CpuSet& cpu, storage::StorageManager& storage)
      : sched_(sched), cfg_(cfg), node_(node), cpu_(cpu), storage_(storage) {}

  /// Commit-time log write; returns when the transaction's log records are
  /// durable (its group's flush completed).
  sim::Task<void> commit_write();

  std::uint64_t flushes() const { return flushes_; }
  std::uint64_t appends() const { return appends_; }
  /// Mean transactions per physical log write.
  double batching_factor() const {
    return flushes_ ? static_cast<double>(appends_) /
                          static_cast<double>(flushes_)
                    : 0.0;
  }

 private:
  sim::Task<void> flush_group(std::uint64_t group);
  sim::Task<void> device_write();

  sim::Scheduler& sched_;
  const SystemConfig& cfg_;
  NodeId node_;
  CpuSet& cpu_;
  storage::StorageManager& storage_;

  bool group_open_ = false;
  std::uint64_t group_seq_ = 0;      ///< id of the currently open group
  std::uint64_t flushed_seq_ = 0;    ///< groups durably flushed so far
  int group_size_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
  std::uint64_t flushes_ = 0;
  std::uint64_t appends_ = 0;
};

}  // namespace gemsd::node
