#pragma once

#include <vector>

#include "core/types.hpp"
#include "sim/time.hpp"
#include "workload/workload.hpp"

namespace gemsd::node {

/// Runtime state of one transaction execution attempt.
struct Txn {
  TxnId id = 0;
  NodeId node = kNoNode;
  sim::SimTime arrival = 0.0;  ///< generation time at the SOURCE
  workload::TxnSpec spec;

  /// Pages locked by this transaction, in acquisition order (strict 2PL:
  /// released only at EOT). The mode held is tracked in the lock table.
  std::vector<PageId> held;
  /// Locked pages modified by this transaction (subset of held, unique).
  std::vector<PageId> dirty;
  /// Dirty pages of *unlocked* partitions (e.g. HISTORY) to force at commit.
  std::vector<PageId> dirty_unlocked;

  int restarts = 0;

  // Response time decomposition (accumulated while executing).
  double t_cpu_wait = 0;   ///< queueing for a processor
  double t_cpu = 0;        ///< processor service (incl. synchronous GEM holds)
  double t_io = 0;         ///< storage reads/writes awaited by the txn
  double t_cc = 0;         ///< concurrency control incl. lock waits & remote requests
  double t_queue = 0;      ///< input queue (MPL) waiting

  bool holds_page(PageId p) const {
    for (const auto& h : held)
      if (h == p) return true;
    return false;
  }
  void note_dirty(PageId p) {
    for (const auto& d : dirty)
      if (d == p) return;
    dirty.push_back(p);
  }
  void note_dirty_unlocked(PageId p) {
    for (const auto& d : dirty_unlocked)
      if (d == p) return;
    dirty_unlocked.push_back(p);
  }
};

}  // namespace gemsd::node
