#include "node/log_manager.hpp"

#include <algorithm>

namespace gemsd::node {

sim::Task<void> LogManager::device_write() {
  if (storage_.log_on_gem()) {
    co_await cpu_.acquire();
    co_await cpu_.busy(cfg_.gem.io_instr);
    co_await storage_.log_write(node_);
    cpu_.release();
  } else {
    co_await cpu_.consume(cfg_.disk.io_instr);
    co_await storage_.log_write(node_);
  }
}

sim::Task<void> LogManager::flush_group(std::uint64_t group) {
  if (flushed_seq_ >= group) co_return;  // already flushed (group filled up)
  group_open_ = false;  // arrivals during the write start the next group
  auto woken = std::move(waiters_);
  waiters_.clear();
  co_await device_write();
  flushed_seq_ = std::max(flushed_seq_, group);
  ++flushes_;
  for (auto h : woken) sched_.schedule(sched_.now(), h);
}

sim::Task<void> LogManager::commit_write() {
  ++appends_;
  if (!cfg_.log_group_commit) {
    co_await device_write();
    ++flushes_;
    co_return;
  }
  if (!group_open_) {
    // Group leader: open the group and flush when the window closes
    // (unless a filler already flushed it).
    group_open_ = true;
    group_size_ = 1;
    const std::uint64_t g = ++group_seq_;
    co_await sched_.delay(cfg_.log_group_window);
    co_await flush_group(g);
    co_return;
  }
  ++group_size_;
  const std::uint64_t g = group_seq_;
  if (group_size_ >= cfg_.log_group_max) {
    // The group is full: this committer flushes immediately.
    co_await flush_group(g);
    co_return;
  }
  // Member: durable once the group's flush completes.
  co_await sched_.suspend(
      [this](std::coroutine_handle<> h) { waiters_.push_back(h); });
}

}  // namespace gemsd::node
