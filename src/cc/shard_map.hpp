#pragma once

#include <cstdint>

#include "core/types.hpp"

namespace gemsd::cc {

/// Deterministic page/key -> shard routing shared by every authority layer
/// that partitions global state across servers:
///
///   * the sharded GLT (`gem_shards=M`): GemLockProtocol routes every GLT
///     entry operation for page p to StorageManager's GEM shard
///     `shard_of(p)`, so independent lock entries queue on independent
///     k-server stations;
///   * PCL's global lock authorities: the shipped GLA maps
///     (DebitCreditGlaMap, KeyGlaMap, ModGla) are block policies over a node
///     count — `blocked(nodes, keys_per_block)` reproduces them exactly, so
///     both coupling modes share one routing/repartitioning layer.
///
/// Routing is a pure function of (policy, shard count, PageId/key): no
/// simulation state, no randomness — the same reference stream routes the
/// same way at any engine kind, worker count or sweep parallelism, which is
/// what makes sharded runs deterministic and `shards=1` the oracle (every
/// policy maps everything to shard 0 when shards == 1).
class ShardMap {
 public:
  enum class Policy {
    Hashed,   ///< splitmix64 over PageId::key() — spreads hot pages
    Blocked,  ///< (key / keys_per_block) % shards — contiguous blocks
  };

  /// Hash policy over full page identity (GLT sharding default): adjacent
  /// pages land on different shards, so a drifting hotspot cannot camp on
  /// one lock server.
  static ShardMap hashed(int shards) {
    return ShardMap(Policy::Hashed, shards, 1);
  }

  /// Block policy over a caller-chosen key (GLA partitioning): key k maps to
  /// shard (k / keys_per_block) % shards. With keys_per_block=1 this is the
  /// classic modulo map.
  static ShardMap blocked(int shards, std::int64_t keys_per_block = 1) {
    return ShardMap(Policy::Blocked, shards, keys_per_block);
  }

  int shard_of(PageId p) const {
    if (shards_ == 1) return 0;
    if (policy_ == Policy::Hashed) return static_cast<int>(mix(p.key()) % m());
    return shard_of_key(p.page);
  }

  /// Block routing for an extracted partitioning key (branch number, lock
  /// name hash, ...).
  int shard_of_key(std::int64_t key) const {
    if (shards_ == 1) return 0;
    const auto block = static_cast<std::uint64_t>(key) /
                       static_cast<std::uint64_t>(keys_per_block_);
    return static_cast<int>(block % m());
  }

  /// Node-affine routing (per-node state on a shared substrate: GEM message
  /// mailboxes, GEM-resident logs).
  int shard_of_node(NodeId n) const {
    if (shards_ == 1) return 0;
    return static_cast<int>(static_cast<std::uint64_t>(n) % m());
  }

  int shards() const { return shards_; }
  Policy policy() const { return policy_; }
  std::int64_t keys_per_block() const { return keys_per_block_; }

  /// Fraction of `pages` consecutive page numbers (partition 0) whose shard
  /// changes when repartitioning from `from` to `to` — the coordination cost
  /// of growing/shrinking the authority fleet.
  static double moved_fraction(const ShardMap& from, const ShardMap& to,
                               std::int64_t pages) {
    if (pages <= 0) return 0.0;
    std::int64_t moved = 0;
    for (std::int64_t i = 0; i < pages; ++i) {
      const PageId p{0, i};
      if (from.shard_of(p) != to.shard_of(p)) ++moved;
    }
    return static_cast<double>(moved) / static_cast<double>(pages);
  }

 private:
  ShardMap(Policy policy, int shards, std::int64_t keys_per_block);

  std::uint64_t m() const { return static_cast<std::uint64_t>(shards_); }

  /// splitmix64 finalizer — the same mix as std::hash<PageId>, so the shard
  /// distribution matches the hash-map distribution the directory sees.
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  Policy policy_;
  int shards_;
  std::int64_t keys_per_block_;
};

}  // namespace gemsd::cc
