#pragma once

#include <functional>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "sim/stats.hpp"

namespace gemsd::cc {

/// Logical lock table implementing strict two-phase page locking with
/// read/write modes, FIFO waiting, and read->write upgrades. Both protocols
/// share this table for *correctness*; they differ in the timing/messaging
/// they model around each logical operation (GLT entry accesses in GEM vs
/// request/grant messages to the GLA node).
///
/// Waiting requests carry an on_grant callback, invoked (synchronously,
/// during the releasing operation) when the request becomes granted; the
/// callback must hand control back through the event queue.
class LockTable {
 public:
  enum class Outcome { Granted, Waiting };
  using GrantFn = std::function<void()>;

  /// Observability hooks, fired synchronously at every wait-queue mutation.
  /// `granted(page, txn, node)` fires at the logical grant of a *waiting*
  /// request (before its on_grant callback); `queue_changed(page, exclude)`
  /// fires after any mutation that can change the blocker set of a waiting
  /// request — the trace layer re-emits a fresh blocker snapshot for every
  /// waiter still queued on the page (minus `exclude`, the request whose own
  /// enqueue the protocol instruments itself). Hooks must not mutate the
  /// table.
  struct TraceHooks {
    std::function<void(PageId, TxnId, NodeId)> granted;
    std::function<void(PageId, TxnId)> queue_changed;
  };
  void set_trace_hooks(TraceHooks hooks) { hooks_ = std::move(hooks); }

  struct Request {
    TxnId txn;
    NodeId node;
    LockMode mode;
    bool granted = false;
    bool upgrade = false;  ///< waiting to convert Read -> Write
    GrantFn on_grant;
  };

  /// Request a lock. Must not be called when the transaction already holds a
  /// lock of `mode` or stronger on the page (callers track held locks).
  /// Holding Read and requesting Write is an upgrade.
  Outcome acquire(PageId page, TxnId txn, NodeId node, LockMode mode,
                  GrantFn on_grant);

  /// Release this transaction's lock on `page`; grants newly compatible
  /// waiters (firing their callbacks).
  void release(PageId page, TxnId txn);

  /// Remove a *waiting* request (deadlock-victim cleanup). Grants whatever
  /// becomes compatible. Returns true if a waiter was removed.
  bool cancel_wait(PageId page, TxnId txn);

  bool holds(PageId page, TxnId txn, LockMode at_least) const;

  /// The page a transaction currently waits for, if any.
  std::optional<PageId> waiting_on(TxnId txn) const;

  /// Transactions that block a waiting request of `txn` on `page`:
  /// incompatible granted holders plus incompatible earlier waiters.
  std::vector<TxnId> blockers(PageId page, TxnId txn) const;

  /// All waiting (non-granted) requests on `page`, in queue order, as
  /// (txn, node) pairs.
  std::vector<std::pair<TxnId, NodeId>> waiters(PageId page) const;

  std::size_t locked_pages() const { return pages_.size(); }
  std::uint64_t requests() const { return requests_.value(); }
  std::uint64_t conflicts() const { return conflicts_.value(); }
  void reset_stats() {
    requests_.reset();
    conflicts_.reset();
  }

 private:
  struct PageState {
    std::vector<Request> q;  // granted entries first, then FIFO waiters
  };

  /// Grant whatever is now grantable at the head of the wait queue.
  void promote(PageId page, PageState& st);

  std::unordered_map<PageId, PageState> pages_;
  std::unordered_map<TxnId, PageId> waiting_;
  sim::Counter requests_, conflicts_;
  TraceHooks hooks_;
};

/// Deadlock detection over the logical lock table: does txn (which just
/// started waiting) close a cycle in the wait-for graph? Conservative FIFO
/// semantics: a waiter waits for every incompatible request ahead of it.
bool creates_deadlock(const LockTable& lt, TxnId txn);

}  // namespace gemsd::cc
