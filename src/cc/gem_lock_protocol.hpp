#pragma once

#include "cc/protocol.hpp"

namespace gemsd::cc {

/// Close coupling: concurrency and coherency control through a global lock
/// table (GLT) in Global Extended Memory (Sections 2, 3.2).
///
///  * Every lock and unlock is processed against the GLT: an entry read plus
///    a Compare&Swap write-back — two synchronous entry accesses (2 µs each)
///    with the processor held. No locality is exploited: the GLT is accessed
///    for every lock regardless of the routing strategy.
///  * GLT entries carry page sequence numbers (buffer invalidations are
///    detected with no extra communication) and, under NOFORCE, the current
///    page owner; stale or missing pages are requested from the owner via a
///    short request / long reply message pair (~26,000 instructions), or
///    read from storage when the permanent database is current.
///  * Waiting lock requests are recorded in the GLT; the releasing node
///    notifies a waiting remote node with a short message.
class GemLockProtocol : public Protocol {
 public:
  explicit GemLockProtocol(Env env) : Protocol(std::move(env)) {}

  sim::Task<LockOutcome> acquire(node::Txn& txn, PageId p,
                                 LockMode mode) override;
  sim::Task<void> commit_release(node::Txn& txn) override;
  sim::Task<void> abort_release(node::Txn& txn) override;

 private:
  /// One GLT operation: lock-manager instructions plus entry read + C&S
  /// write-back, processor held throughout. `txn` is the transaction the
  /// access is performed for — recorded on the gem.access trace span so the
  /// critical-path profiler can see a lock holder's GLT activity. `p` is the
  /// page whose lock entry is touched: it selects the GEM shard hosting the
  /// entry (gem_shards=1 routes everything to the single device).
  sim::Task<void> glt_access(NodeId n, TxnId txn, PageId p);
};

}  // namespace gemsd::cc
