#pragma once

#include <memory>
#include <unordered_map>
#include <vector>
#include <unordered_set>

#include "core/types.hpp"

namespace gemsd::cc {

/// Logical coherency directory: for every page that has been modified (or
/// is otherwise tracked), its current version number, and — under NOFORCE —
/// the node holding the only up-to-date copy not yet on permanent storage
/// ("page owner"). For PCL with read optimization it additionally records
/// the nodes holding a read authorization.
///
/// Physically this information lives in the GLT entries in GEM (close
/// coupling) or in the GLA nodes' extended lock tables (PCL); the protocols
/// account for the corresponding access costs. Pages never modified are
/// implicitly at sequence number 0 with no owner (storage is current).
class CoherencyDirectory {
 public:
  struct Entry {
    SeqNo seqno = 0;
    NodeId owner = kNoNode;  ///< kNoNode: the storage copy is current
    /// Lazily allocated: only PCL's read optimization / GEM read
    /// authorizations populate it, yet every tracked page pays for the
    /// container. At 256+ nodes the directory holds millions of entries —
    /// an empty unordered_set per entry (~56 bytes) triples the footprint.
    /// A null pointer means "no authorizations", and keeping the container
    /// type (not a sorted vector) preserves the iteration order revocation
    /// messages are sent in, which committed baselines depend on.
    std::unique_ptr<std::unordered_set<NodeId>> read_auth;
  };

  SeqNo seqno(PageId p) const {
    auto it = map_.find(p);
    return it == map_.end() ? 0 : it->second.seqno;
  }
  NodeId owner(PageId p) const {
    auto it = map_.find(p);
    return it == map_.end() ? kNoNode : it->second.owner;
  }

  /// Commit of a modification: bump the version; `new_owner` is the node
  /// keeping the current copy (kNoNode when storage was force-written).
  /// Returns the new sequence number.
  SeqNo committed(PageId p, NodeId new_owner) {
    auto& e = map_[p];
    ++e.seqno;
    e.owner = new_owner;
    return e.seqno;
  }

  /// The owner wrote the page back (eviction or destage): storage is current
  /// again, provided no newer version appeared meanwhile.
  void written_back(PageId p, NodeId node, SeqNo seqno_written) {
    auto it = map_.find(p);
    if (it == map_.end()) return;
    if (it->second.owner == node && it->second.seqno == seqno_written) {
      it->second.owner = kNoNode;
    }
  }

  /// Ownership migration on a direct page transfer (the requester now holds
  /// the only current in-memory copy; see GemLockProtocol::fetch_from_owner).
  void transfer_owner(PageId p, NodeId to) {
    auto it = map_.find(p);
    if (it != map_.end() && it->second.owner != kNoNode) it->second.owner = to;
  }

  // --- read authorizations (PCL read optimization) ---
  bool has_read_auth(PageId p, NodeId n) const {
    auto it = map_.find(p);
    return it != map_.end() && it->second.read_auth &&
           it->second.read_auth->count(n) != 0;
  }
  void grant_read_auth(PageId p, NodeId n) {
    auto& e = map_[p];
    if (!e.read_auth) {
      e.read_auth = std::make_unique<std::unordered_set<NodeId>>();
    }
    e.read_auth->insert(n);
  }
  /// Remove all authorizations except the writer's node; returns the nodes
  /// that must be sent revocation messages.
  std::vector<NodeId> revoke_read_auths(PageId p, NodeId except) {
    std::vector<NodeId> out;
    auto it = map_.find(p);
    if (it == map_.end() || !it->second.read_auth) return out;
    for (NodeId n : *it->second.read_auth) {
      if (n != except) out.push_back(n);
    }
    it->second.read_auth->clear();
    return out;
  }

  /// Pages whose only current copy lives at `n` (crash recovery input).
  std::vector<PageId> pages_owned_by(NodeId n) const {
    std::vector<PageId> out;
    for (const auto& [p, e] : map_) {
      if (e.owner == n) out.push_back(p);
    }
    return out;
  }

  std::size_t tracked_pages() const { return map_.size(); }

 private:
  std::unordered_map<PageId, Entry> map_;
};

}  // namespace gemsd::cc
