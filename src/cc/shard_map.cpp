#include "cc/shard_map.hpp"

#include <stdexcept>
#include <string>

namespace gemsd::cc {

ShardMap::ShardMap(Policy policy, int shards, std::int64_t keys_per_block)
    : policy_(policy), shards_(shards), keys_per_block_(keys_per_block) {
  if (shards < 1) {
    throw std::invalid_argument("ShardMap: shards must be >= 1, got " +
                                std::to_string(shards));
  }
  if (keys_per_block < 1) {
    throw std::invalid_argument(
        "ShardMap: keys_per_block must be >= 1, got " +
        std::to_string(keys_per_block));
  }
}

}  // namespace gemsd::cc
