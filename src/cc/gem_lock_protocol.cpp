#include "cc/gem_lock_protocol.hpp"

namespace gemsd::cc {

sim::Task<void> GemLockProtocol::glt_access(NodeId n, TxnId txn, PageId p) {
  const sim::SimTime t0 = sched().now();
  auto& c = cpu(n);
  co_await c.acquire();
  co_await c.busy(cfg().lock_instr);
  auto& gem = env_.storage->gem_for(p);  // shard hosting p's lock entry
  co_await gem.entry_access();  // read the lock entry into main memory
  co_await gem.entry_access();  // Compare&Swap the modified entry back
  c.release();
  if (metrics().trace) {
    metrics().trace->span(obs::TraceName::kGemAccess,
                          static_cast<std::int16_t>(n), txn, t0, sched().now());
  }
}

sim::Task<LockOutcome> GemLockProtocol::acquire(node::Txn& txn, PageId p,
                                                LockMode mode) {
  metrics().lock_requests.inc();
  const sim::SimTime t0 = sched().now();

  // Refinement (Sections 2/3.2): a local lock manager holding a read
  // authorization processes read locks without any GLT access.
  if (cfg().gem_read_authorizations && mode == LockMode::Read &&
      dir_.has_read_auth(p, txn.node)) {
    metrics().lock_auth_local.inc();
    co_await cpu(txn.node).consume(cfg().lock_instr);
    const Logical ares = co_await lock_logical(txn, p, mode);
    if (ares == Logical::Aborted) {
      txn.t_cc += sched().now() - t0;
      co_return LockOutcome{.aborted = true};
    }
    LockOutcome out;
    out.seqno = dir_.seqno(p);
    const auto cached = buf(txn.node).cached_seqno(p);
    if (cached && *cached == out.seqno) {
      out.source = PageSource::CacheValid;
    } else {
      out.invalidation = cached.has_value();
      const NodeId ow = dir_.owner(p);
      if (ow != kNoNode && ow != txn.node) {
        out.source = PageSource::OwnerTransfer;
        out.owner = ow;
      } else if (ow == txn.node) {
        out.source = PageSource::CacheValid;
      } else {
        out.source = PageSource::Storage;
      }
    }
    txn.t_cc += sched().now() - t0;
    co_return out;
  }

  metrics().lock_local.inc();  // GLT cost is location-independent
  co_await glt_access(txn.node, txn.id, p);
  // A writer invalidates outstanding read authorizations (recorded in the
  // GLT entry it just read) before the lock can be granted.
  if (cfg().gem_read_authorizations && mode == LockMode::Write) {
    revoke_auths_from(txn.node, p, txn.node);
  }
  const Logical res = co_await lock_logical(txn, p, mode);
  if (res == Logical::Aborted) {
    txn.t_cc += sched().now() - t0;
    co_return LockOutcome{.aborted = true};
  }
  if (res == Logical::GrantedAfterWait) {
    // The woken node re-reads the GLT entry and marks its request granted.
    co_await glt_access(txn.node, txn.id, p);
  }

  if (cfg().gem_read_authorizations && mode == LockMode::Read) {
    dir_.grant_read_auth(p, txn.node);
  }

  LockOutcome out;
  out.seqno = dir_.seqno(p);
  const auto cached = buf(txn.node).cached_seqno(p);
  if (cached && *cached == out.seqno) {
    out.source = PageSource::CacheValid;
  } else {
    out.invalidation = cached.has_value();
    const NodeId ow = dir_.owner(p);
    if (ow != kNoNode && ow != txn.node) {
      out.source = PageSource::OwnerTransfer;
      out.owner = ow;
    } else if (ow == txn.node) {
      // We own the current copy (it survives at least in the write-back
      // table); treat as a valid local copy.
      out.source = PageSource::CacheValid;
    } else {
      out.source = PageSource::Storage;
    }
  }
  txn.t_cc += sched().now() - t0;
  co_return out;
}

sim::Task<void> GemLockProtocol::commit_release(node::Txn& txn) {
  for (PageId p : txn.held) {
    co_await glt_access(txn.node, txn.id, p);
    // Version/ownership updates ride in the same Compare&Swap that releases
    // the lock entry.
    bool dirty = false;
    for (PageId d : txn.dirty) {
      if (d == p) {
        dirty = true;
        break;
      }
    }
    if (dirty) {
      const NodeId new_owner =
          cfg().update == UpdateStrategy::NoForce ? txn.node : kNoNode;
      const SeqNo s = dir_.committed(p, new_owner);
      buf(txn.node).commit_dirty(p, s, new_owner == txn.node);
    }
    releasing_node_ = txn.node;
    table_.release(p, txn.id);
    releasing_node_ = kNoNode;
  }
  txn.held.clear();
  txn.dirty.clear();
}

sim::Task<void> GemLockProtocol::abort_release(node::Txn& txn) {
  for (PageId p : txn.held) {
    co_await glt_access(txn.node, txn.id, p);
    releasing_node_ = txn.node;
    table_.release(p, txn.id);
    releasing_node_ = kNoNode;
  }
  txn.held.clear();
  txn.dirty.clear();
}

}  // namespace gemsd::cc
