#include "cc/primary_copy_protocol.hpp"

#include <algorithm>

namespace gemsd::cc {

void PrimaryCopyProtocol::freeze_gla(NodeId n) { frozen_.insert(n); }

void PrimaryCopyProtocol::thaw_gla(NodeId n) {
  frozen_.erase(n);
  auto it = freeze_waiters_.find(n);
  if (it == freeze_waiters_.end()) return;
  for (auto h : it->second) sched().schedule(sched().now(), h);
  freeze_waiters_.erase(it);
}

sim::Task<LockOutcome> PrimaryCopyProtocol::acquire(node::Txn& txn, PageId p,
                                                    LockMode mode) {
  metrics().lock_requests.inc();
  const sim::SimTime t0 = sched().now();
  const NodeId g = gla_->gla(p);
  while (frozen_.count(g) != 0) {
    co_await sched().suspend([this, g](std::coroutine_handle<> h) {
      freeze_waiters_[g].push_back(h);
    });
  }
  LockOutcome out;
  if (g == txn.node) {
    out = co_await acquire_local(txn, p, mode);
  } else if (read_opt_ && mode == LockMode::Read &&
             dir_.has_read_auth(p, txn.node)) {
    out = co_await acquire_auth_local(txn, p);
  } else {
    out = co_await acquire_remote(txn, p, mode, g);
  }
  txn.t_cc += sched().now() - t0;
  co_return out;
}

sim::Task<LockOutcome> PrimaryCopyProtocol::acquire_local(node::Txn& txn,
                                                          PageId p,
                                                          LockMode mode) {
  metrics().lock_local.inc();
  const NodeId n = txn.node;
  co_await cpu(n).consume(cfg().lock_instr);
  if (mode == LockMode::Write) revoke_auths(p, n, n);
  const Logical res = co_await lock_logical(txn, p, mode);
  if (res == Logical::Aborted) co_return LockOutcome{.aborted = true};

  LockOutcome out;
  out.seqno = dir_.seqno(p);
  const auto cached = buf(n).cached_seqno(p);
  if (cached && *cached == out.seqno) {
    out.source = PageSource::CacheValid;
  } else {
    out.invalidation = cached.has_value();
    // As GLA we are the designated owner: either our copy is current (then
    // the sequence numbers matched above / the copy is in write-back), or
    // the permanent database is.
    out.source = PageSource::Storage;
  }
  co_return out;
}

sim::Task<LockOutcome> PrimaryCopyProtocol::acquire_auth_local(node::Txn& txn,
                                                               PageId p) {
  metrics().lock_auth_local.inc();
  const NodeId n = txn.node;
  co_await cpu(n).consume(cfg().lock_instr);
  const Logical res = co_await lock_logical(txn, p, LockMode::Read);
  if (res == Logical::Aborted) co_return LockOutcome{.aborted = true};

  LockOutcome out;
  out.seqno = dir_.seqno(p);
  const auto cached = buf(n).cached_seqno(p);
  if (cached && *cached == out.seqno) {
    out.source = PageSource::CacheValid;
  } else {
    out.invalidation = cached.has_value();
    const NodeId ow = dir_.owner(p);
    if (ow != kNoNode && ow != n) {
      // Ask the GLA (the owner) for the page — an explicit request/transfer
      // round, since no lock message travels that could carry it.
      out.source = PageSource::OwnerTransfer;
      out.owner = ow;
    } else {
      out.source = PageSource::Storage;
    }
  }
  co_return out;
}

sim::Task<LockOutcome> PrimaryCopyProtocol::acquire_remote(node::Txn& txn,
                                                           PageId p,
                                                           LockMode mode,
                                                           NodeId g) {
  metrics().lock_remote.inc();
  const NodeId n = txn.node;
  const auto cached = buf(n).cached_seqno(p);
  sim::OneShot<GrantMsg> resp(sched());

  co_await env_.comm->send(
      n, g, /*long_msg=*/false,
      gla_lock_request(txn.id, p, mode, cached, g, n, &resp));

  const GrantMsg m = co_await resp.wait();
  if (m.aborted) co_return LockOutcome{.aborted = true};
  if (!txn.holds_page(p)) txn.held.push_back(p);
  LockOutcome out;
  out.source = m.source;
  out.seqno = m.seqno;
  out.invalidation = m.invalidation;
  out.owner = g;
  co_return out;
}

PrimaryCopyProtocol::GrantMsg PrimaryCopyProtocol::make_grant(
    PageId p, NodeId requester, std::optional<SeqNo> cached, LockMode mode,
    NodeId g) {
  GrantMsg m;
  m.seqno = dir_.seqno(p);
  if (cached && *cached == m.seqno) {
    m.source = PageSource::CacheValid;
  } else {
    m.invalidation = cached.has_value();
    const NodeId ow = dir_.owner(p);
    if (ow == g && buf(g).has_copy(p)) {
      // Send the current page along with the grant (long message).
      m.source = PageSource::Delivered;
    } else {
      m.source = PageSource::Storage;
    }
  }
  if (read_opt_ && mode == LockMode::Read) dir_.grant_read_auth(p, requester);
  return m;
}

sim::Task<void> PrimaryCopyProtocol::gla_lock_request(
    TxnId txn, PageId p, LockMode mode, std::optional<SeqNo> cached, NodeId g,
    NodeId n, sim::OneShot<GrantMsg>* resp) {
  co_await cpu(g).consume(cfg().lock_instr);
  if (mode == LockMode::Write) revoke_auths(p, n, g);
  // Same trace instrumentation as Protocol::lock_logical — the analyzer's
  // wait-for replay needs every waiting path to emit its edges, the deadlock
  // verdict, and a lock.wait span at grant time (which retires the edges).
  const sim::SimTime t0 = sched().now();
  const auto res = table_.acquire(
      p, txn, n, mode, [this, p, t0, mode, cached, g, n, txn, resp] {
        // Granted later, during a release processed at the GLA.
        if (metrics().trace) {
          metrics().trace->span(obs::TraceName::kLockWait,
                                static_cast<std::int16_t>(n), txn, t0,
                                sched().now(), static_cast<double>(p.page),
                                static_cast<std::int32_t>(p.partition));
        }
        sched().spawn(
            send_grant(g, n, make_grant(p, n, cached, mode, g), resp));
      });
  if (res == LockTable::Outcome::Granted) {
    co_await send_grant(g, n, make_grant(p, n, cached, mode, g), resp);
    co_return;
  }
  if (metrics().trace) {
    for (TxnId b : table_.blockers(p, txn)) {
      metrics().trace->instant(obs::TraceName::kWaitEdge,
                               static_cast<std::int16_t>(n), txn, t0,
                               static_cast<double>(b));
    }
  }
  if (creates_deadlock(table_, txn)) {
    table_.cancel_wait(p, txn);
    metrics().deadlocks.inc();
    if (metrics().trace) {
      metrics().trace->instant(obs::TraceName::kDeadlock,
                               static_cast<std::int16_t>(n), txn, t0,
                               static_cast<double>(p.page),
                               static_cast<std::int32_t>(p.partition));
    }
    co_await send_grant(g, n, GrantMsg{.aborted = true}, resp);
  } else {
    metrics().lock_waits.inc();
  }
}

sim::Task<void> PrimaryCopyProtocol::fulfill_grant(
    sim::OneShot<GrantMsg>* resp, GrantMsg m) {
  resp->set(m);
  co_return;
}

sim::Task<void> PrimaryCopyProtocol::send_grant(NodeId g, NodeId n, GrantMsg m,
                                                sim::OneShot<GrantMsg>* resp) {
  co_await env_.comm->send(g, n, /*long_msg=*/m.source == PageSource::Delivered,
                           fulfill_grant(resp, m));
}

void PrimaryCopyProtocol::revoke_auths(PageId p, NodeId writer_node,
                                       NodeId gla_node) {
  revoke_auths_from(gla_node, p, writer_node);
}

sim::Task<void> PrimaryCopyProtocol::release_group(
    node::Txn& txn, NodeId g, std::vector<PageId> pages,
    std::vector<PageId> dirty_pages, bool propagate) {
  const NodeId n = txn.node;
  const bool noforce = cfg().update == UpdateStrategy::NoForce;

  if (propagate) {
    for (PageId p : dirty_pages) {
      const NodeId new_owner = noforce ? g : kNoNode;
      const SeqNo s = dir_.committed(p, new_owner);
      // The modifying node's copy stays cached and current; it is dirty only
      // if this node keeps ownership (it is the GLA itself under NOFORCE).
      buf(n).commit_dirty(p, s, noforce && g == n);
    }
  }

  if (g == n) {
    co_await cpu(n).consume(cfg().lock_instr *
                            static_cast<double>(pages.size()));
    releasing_node_ = n;
    for (PageId p : pages) table_.release(p, txn.id);
    releasing_node_ = kNoNode;
    co_return;
  }

  // One release message per remote GLA; long when it carries modified pages
  // back to their owner (NOFORCE update propagation).
  const bool carries_pages = propagate && noforce && !dirty_pages.empty();
  co_await env_.comm->send(
      n, g, carries_pages,
      gla_release(g, txn.id, std::move(pages), std::move(dirty_pages),
                  carries_pages));
}

sim::Task<void> PrimaryCopyProtocol::gla_release(NodeId g, TxnId txn,
                                                 std::vector<PageId> pages,
                                                 std::vector<PageId> dirty_pages,
                                                 bool carries_pages) {
  co_await cpu(g).consume(cfg().lock_instr *
                          static_cast<double>(pages.size()));
  if (carries_pages) {
    for (PageId p : dirty_pages) {
      buf(g).install(p, dir_.seqno(p), /*dirty=*/true);
    }
  }
  releasing_node_ = g;
  for (PageId p : pages) table_.release(p, txn);
  releasing_node_ = kNoNode;
}

sim::Task<void> PrimaryCopyProtocol::commit_release(node::Txn& txn) {
  // Group held pages by GLA node; one (possibly page-carrying) release
  // message per remote authority.
  std::vector<std::pair<NodeId, std::vector<PageId>>> groups;
  for (PageId p : txn.held) {
    const NodeId g = gla_->gla(p);
    auto it = std::find_if(groups.begin(), groups.end(),
                           [g](const auto& e) { return e.first == g; });
    if (it == groups.end()) {
      groups.emplace_back(g, std::vector<PageId>{p});
    } else {
      it->second.push_back(p);
    }
  }
  for (auto& [g, pages] : groups) {
    std::vector<PageId> dirty;
    for (PageId p : txn.dirty) {
      if (std::find(pages.begin(), pages.end(), p) != pages.end()) {
        dirty.push_back(p);
      }
    }
    co_await release_group(txn, g, std::move(pages), std::move(dirty),
                           /*propagate=*/true);
  }
  txn.held.clear();
  txn.dirty.clear();
}

sim::Task<void> PrimaryCopyProtocol::abort_release(node::Txn& txn) {
  std::vector<std::pair<NodeId, std::vector<PageId>>> groups;
  for (PageId p : txn.held) {
    const NodeId g = gla_->gla(p);
    auto it = std::find_if(groups.begin(), groups.end(),
                           [g](const auto& e) { return e.first == g; });
    if (it == groups.end()) {
      groups.emplace_back(g, std::vector<PageId>{p});
    } else {
      it->second.push_back(p);
    }
  }
  for (auto& [g, pages] : groups) {
    co_await release_group(txn, g, std::move(pages), {}, /*propagate=*/false);
  }
  txn.held.clear();
  txn.dirty.clear();
}

}  // namespace gemsd::cc
