#pragma once

#include <memory>
#include <vector>

#include "cc/directory.hpp"
#include "cc/lock_table.hpp"
#include "core/config.hpp"
#include "core/metrics.hpp"
#include "net/comm.hpp"
#include "node/buffer_manager.hpp"
#include "node/cpu.hpp"
#include "node/txn.hpp"
#include "sim/oneshot.hpp"
#include "sim/scheduler.hpp"
#include "sim/task.hpp"
#include "storage/storage_manager.hpp"

namespace gemsd::cc {

/// Where the current page version comes from after a lock grant.
enum class PageSource {
  CacheValid,     ///< local cached copy is current (sequence numbers match)
  Storage,        ///< permanent database (disk / disk cache / GEM file)
  OwnerTransfer,  ///< request the page from its current owner node
  Delivered,      ///< the page arrived with the grant message (PCL)
};

struct LockOutcome {
  bool aborted = false;       ///< deadlock victim
  PageSource source = PageSource::Storage;
  SeqNo seqno = 0;            ///< current version
  NodeId owner = kNoNode;     ///< for OwnerTransfer
  bool invalidation = false;  ///< a stale cached copy was detected
};

/// Concurrency/coherency control protocol interface. Both implementations
/// share the *logical* lock table and coherency directory (guaranteeing
/// identical serialization behaviour) and differ in the timing, CPU and
/// message costs they model around every logical operation — which is
/// exactly the comparison the paper makes.
class Protocol {
 public:
  struct Env {
    sim::Scheduler* sched;
    const SystemConfig* cfg;
    Metrics* metrics;
    net::Comm* comm;
    net::Network* net;
    /// Device layer hosting the sharded GEM authority (GLT entry ops route
    /// by page through storage->gem_for(p)).
    storage::StorageManager* storage;
    std::vector<node::CpuSet*> cpus;
    std::vector<node::BufferManager*> bufs;
  };

  /// Wires the lock table's trace hooks when the run records a trace (the
  /// recorder must already be installed in Env's Metrics): every wait-queue
  /// mutation re-emits fresh blocker snapshots so the analyzer's wait-for
  /// replay stays exact.
  explicit Protocol(Env env);
  virtual ~Protocol() = default;

  /// Strict-2PL lock acquisition for a page reference (the transaction must
  /// not already hold an equal-or-stronger lock — callers check held locks;
  /// read->write upgrades are allowed).
  virtual sim::Task<LockOutcome> acquire(node::Txn& txn, PageId p,
                                         LockMode mode) = 0;

  /// Post-grant page provisioning: make the current version available in the
  /// node's buffer, accounting hits/misses/invalidations and performing
  /// storage reads or page transfers as dictated by the outcome.
  sim::Task<void> provision(node::Txn& txn, PageId p, const LockOutcome& lk);

  /// Commit phase 2: propagate version/ownership updates for the
  /// transaction's dirty pages and release all its locks.
  virtual sim::Task<void> commit_release(node::Txn& txn) = 0;

  /// Abort: release all locks without propagating modifications.
  virtual sim::Task<void> abort_release(node::Txn& txn) = 0;

  /// Write-back hook (dirty LRU victim reached storage).
  void on_writeback(NodeId n, PageId p, SeqNo s) { dir_.written_back(p, n, s); }

  /// Whether commit_release drops node n's lock on p before returning.
  /// Primary copy releases remote-GLA locks asynchronously (the release
  /// message is processed at the authority after commit_release returns), so
  /// the post-commit lock audit must skip those pages.
  virtual bool lock_release_is_synchronous(PageId, NodeId) const {
    return true;
  }

  /// --audit invariants after commit_release, over the pre-commit snapshot
  /// of the transaction's dirty pages: every lock released, every committed
  /// page versioned in the directory, the committing node's surviving copy
  /// current, and — where the directory names the committing node as owner —
  /// that GLT/directory entry ownership agrees with the buffer.
  void audit_commit_state(const node::Txn& txn,
                          const std::vector<PageId>& dirty,
                          obs::Auditor& audit, sim::SimTime now);

  LockTable& table() { return table_; }
  CoherencyDirectory& directory() { return dir_; }

 protected:
  enum class Logical { Aborted, Granted, GrantedAfterWait };
  /// Acquire on the logical table; suspends while waiting (a waiter on a
  /// node other than the releasing context is woken by a short notification
  /// message). Returns Aborted if the wait would close a deadlock cycle (the
  /// request is then cancelled and the caller's transaction is the victim).
  sim::Task<Logical> lock_logical(node::Txn& txn, PageId p, LockMode mode);

  sim::Task<void> fetch_from_owner(node::Txn& txn, PageId p, SeqNo seqno,
                                   NodeId owner, bool transfer_ownership);

  // NOTE (CP.51): message handlers must not be capturing coroutine lambdas —
  // the coroutine frame would reference a dead closure. Handlers are plain
  // lambdas that call these member coroutines; arguments are copied into the
  // coroutine frames at call time.
  /// Owner-side processing of a direct page request.
  sim::Task<void> serve_page_request(PageId p, NodeId owner, NodeId requester,
                                     bool transfer_ownership,
                                     sim::OneShot<bool>* got);
  /// Fulfill a requester-side one-shot (message arrival).
  static sim::Task<void> fulfill_bool(sim::OneShot<bool>* o, bool v);
  static sim::Task<void> noop_handler();

  /// Drop every read authorization on p except the writer's own node; one
  /// revocation notice per remote holder, sent from `sender`.
  void revoke_auths_from(NodeId sender, PageId p, NodeId except);

  node::BufferManager& buf(NodeId n) {
    return *env_.bufs[static_cast<std::size_t>(n)];
  }
  node::CpuSet& cpu(NodeId n) { return *env_.cpus[static_cast<std::size_t>(n)]; }
  sim::Scheduler& sched() { return *env_.sched; }
  const SystemConfig& cfg() const { return *env_.cfg; }
  Metrics& metrics() { return *env_.metrics; }

  Env env_;
  LockTable table_;
  CoherencyDirectory dir_;
  /// Node whose context is executing the current release (wake-up messages
  /// originate here). Valid only during release processing.
  NodeId releasing_node_ = kNoNode;
};

}  // namespace gemsd::cc
