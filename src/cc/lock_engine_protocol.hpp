#pragma once

#include "cc/protocol.hpp"
#include "sim/resource.hpp"

namespace gemsd::cc {

/// The [Yu87] coupling alternative discussed in the paper's Related Work:
/// a dedicated central *lock engine* — special-purpose hardware serving all
/// lock/unlock requests with a fixed service time (100-500 µs per operation
/// in [Yu87], vs 2 µs GLT entry accesses for GEM) — combined with the
/// coherency scheme that study assumed: disk-based FORCE plus a *broadcast
/// invalidation* message to every other node at each update commit.
///
/// Cost model per lock operation: short request message (sender CPU +
/// network), engine service (single dedicated server — the contention point
/// the paper highlights), short reply (network + receiver CPU). The engine
/// itself consumes no node CPU. Update commits broadcast N-1 short
/// invalidation messages and wait for their delivery before releasing locks.
class LockEngineProtocol : public Protocol {
 public:
  LockEngineProtocol(Env env, sim::SimTime lock_service)
      : Protocol(std::move(env)),
        lock_service_(lock_service),
        engine_(sched(), 1, "lock-engine") {}

  sim::Task<LockOutcome> acquire(node::Txn& txn, PageId p,
                                 LockMode mode) override;
  sim::Task<void> commit_release(node::Txn& txn) override;
  sim::Task<void> abort_release(node::Txn& txn) override;

  double engine_utilization() const { return engine_.utilization(); }
  std::uint64_t engine_ops() const { return engine_.completions(); }

 private:
  /// One round trip to the engine: request message, engine service,
  /// reply message. `op` runs at the engine between service and reply.
  sim::Task<void> engine_round_trip(NodeId from);
  /// Receiver-side invalidation handler: drop the cached copy.
  sim::Task<void> apply_invalidation(NodeId at, PageId p);
  static sim::Task<void> fulfill_void(sim::OneShot<bool>* o);

  sim::SimTime lock_service_;
  sim::Resource engine_;
};

}  // namespace gemsd::cc
