#include "cc/lock_engine_protocol.hpp"

namespace gemsd::cc {

sim::Task<void> LockEngineProtocol::fulfill_void(sim::OneShot<bool>* o) {
  o->set(true);
  co_return;
}

sim::Task<void> LockEngineProtocol::engine_round_trip(NodeId from) {
  // Request: sender CPU + network; engine service; reply: network + CPU.
  co_await cpu(from).consume(cfg().comm.short_instr);
  co_await env_.net->transmit(/*long_msg=*/false);
  co_await engine_.use(lock_service_);
  co_await env_.net->transmit(/*long_msg=*/false);
  co_await cpu(from).consume(cfg().comm.short_instr);
}

sim::Task<LockOutcome> LockEngineProtocol::acquire(node::Txn& txn, PageId p,
                                                   LockMode mode) {
  metrics().lock_requests.inc();
  metrics().lock_remote.inc();  // every request leaves the node
  const sim::SimTime t0 = sched().now();

  co_await engine_round_trip(txn.node);
  const Logical res = co_await lock_logical(txn, p, mode);
  if (res == Logical::Aborted) {
    txn.t_cc += sched().now() - t0;
    co_return LockOutcome{.aborted = true};
  }

  LockOutcome out;
  out.seqno = dir_.seqno(p);
  const auto cached = buf(txn.node).cached_seqno(p);
  if (cached && *cached == out.seqno) {
    out.source = PageSource::CacheValid;
  } else {
    out.invalidation = cached.has_value();
    // FORCE keeps the permanent database current; broadcast invalidation
    // already dropped most stale copies.
    out.source = PageSource::Storage;
  }
  txn.t_cc += sched().now() - t0;
  co_return out;
}

sim::Task<void> LockEngineProtocol::apply_invalidation(NodeId at, PageId p) {
  buf(at).discard(p);
  co_return;
}

sim::Task<void> LockEngineProtocol::commit_release(node::Txn& txn) {
  const NodeId n = txn.node;

  // Version bookkeeping (pages were force-written in commit phase 1).
  for (PageId p : txn.dirty) {
    const SeqNo s = dir_.committed(p, kNoNode);
    buf(n).commit_dirty(p, s, /*stays_dirty=*/false);
  }

  // Broadcast invalidation: one short message to every other node per
  // modified page ([Yu87]'s coherency scheme — the paper calls it out as
  // inefficient). Locks are only released once all deliveries happened.
  if (!txn.dirty.empty() && cfg().nodes > 1) {
    int pending = 0;
    sim::OneShot<bool> all_delivered(sched());
    pending = static_cast<int>(txn.dirty.size()) * (cfg().nodes - 1);
    int* pending_ptr = &pending;
    sim::OneShot<bool>* done = &all_delivered;
    for (PageId p : txn.dirty) {
      for (NodeId other = 0; other < cfg().nodes; ++other) {
        if (other == n) continue;
        sched().spawn(env_.comm->send(
            n, other, /*long_msg=*/false,
            [](LockEngineProtocol* self, NodeId at, PageId page, int* pend,
               sim::OneShot<bool>* d) -> sim::Task<void> {
              co_await self->apply_invalidation(at, page);
              if (--*pend == 0) d->set(true);
            }(this, other, p, pending_ptr, done)));
      }
    }
    co_await all_delivered.wait();
  }

  // One engine visit covering the transaction's unlock operations.
  if (!txn.held.empty()) {
    co_await cpu(n).consume(cfg().comm.short_instr);
    co_await env_.net->transmit(false);
    co_await engine_.use(lock_service_ *
                         static_cast<double>(txn.held.size()));
    co_await env_.net->transmit(false);
    co_await cpu(n).consume(cfg().comm.short_instr);
  }
  releasing_node_ = kNoNode;  // engine grants wake waiters directly
  for (PageId p : txn.held) table_.release(p, txn.id);
  txn.held.clear();
  txn.dirty.clear();
}

sim::Task<void> LockEngineProtocol::abort_release(node::Txn& txn) {
  const NodeId n = txn.node;
  if (!txn.held.empty()) {
    co_await cpu(n).consume(cfg().comm.short_instr);
    co_await env_.net->transmit(false);
    co_await engine_.use(lock_service_ *
                         static_cast<double>(txn.held.size()));
    co_await env_.net->transmit(false);
    co_await cpu(n).consume(cfg().comm.short_instr);
  }
  for (PageId p : txn.held) table_.release(p, txn.id);
  txn.held.clear();
  txn.dirty.clear();
}

}  // namespace gemsd::cc
