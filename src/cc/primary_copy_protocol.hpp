#pragma once

#include <coroutine>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "cc/protocol.hpp"
#include "workload/workload.hpp"

namespace gemsd::cc {

/// Loose coupling: Primary Copy Locking [Ra86] (Section 3.2).
///
///  * The database is logically partitioned; each node holds the global lock
///    authority (GLA) for one partition. Requests against the local
///    partition are processed without communication; other requests take a
///    short message round trip to the GLA node (>= 20,000 instructions).
///  * Coherency control uses page sequence numbers kept in the GLA's lock
///    table — no extra messages to detect buffer invalidations.
///  * NOFORCE update propagation: the GLA node is the *owner* of all pages
///    of its partition. Pages modified elsewhere travel back with the (then
///    long) lock release message; the lock *grant* message carries the
///    current page when the requester's copy is stale or missing — page
///    transfers piggyback on concurrency-control messages.
///  * Read optimization (optional): the GLA hands out read authorizations so
///    that later read locks can be processed locally without the GLA; write
///    locks revoke outstanding authorizations (one message per holder).
class PrimaryCopyProtocol : public Protocol {
 public:
  PrimaryCopyProtocol(Env env, const workload::GlaMap* gla, bool read_opt)
      : Protocol(std::move(env)), gla_(gla), read_opt_(read_opt) {}

  sim::Task<LockOutcome> acquire(node::Txn& txn, PageId p,
                                 LockMode mode) override;
  sim::Task<void> commit_release(node::Txn& txn) override;
  sim::Task<void> abort_release(node::Txn& txn) override;

  NodeId gla_of(PageId p) const { return gla_->gla(p); }

  /// Only locks whose authority is the committing node itself come off the
  /// table inside commit_release; remote releases ride a message.
  bool lock_release_is_synchronous(PageId p, NodeId n) const override {
    return gla_->gla(p) == n;
  }

  /// Node crash handling: while a GLA is frozen, every lock request against
  /// its partition stalls (the authority's volatile lock table is gone and
  /// must be reconstructed from the survivors before locking can resume —
  /// the availability price of loose coupling; GEM's non-volatile GLT has no
  /// equivalent outage).
  void freeze_gla(NodeId n);
  void thaw_gla(NodeId n);
  bool gla_frozen(NodeId n) const { return frozen_.count(n) != 0; }

 private:
  struct GrantMsg {
    bool aborted = false;
    PageSource source = PageSource::Storage;
    SeqNo seqno = 0;
    bool invalidation = false;
  };

  sim::Task<LockOutcome> acquire_local(node::Txn& txn, PageId p, LockMode mode);
  sim::Task<LockOutcome> acquire_auth_local(node::Txn& txn, PageId p);
  sim::Task<LockOutcome> acquire_remote(node::Txn& txn, PageId p,
                                        LockMode mode, NodeId g);

  /// GLA-side grant decision (lock already granted): where the requester
  /// gets the page, using the requester's cached version from the request.
  GrantMsg make_grant(PageId p, NodeId requester, std::optional<SeqNo> cached,
                      LockMode mode, NodeId g);
  sim::Task<void> send_grant(NodeId g, NodeId n, GrantMsg m,
                             sim::OneShot<GrantMsg>* resp);
  static sim::Task<void> fulfill_grant(sim::OneShot<GrantMsg>* resp,
                                       GrantMsg m);
  /// GLA-side processing of a remote lock request (message handler body).
  sim::Task<void> gla_lock_request(TxnId txn, PageId p, LockMode mode,
                                   std::optional<SeqNo> cached, NodeId g,
                                   NodeId n, sim::OneShot<GrantMsg>* resp);
  /// GLA-side processing of a (possibly page-carrying) release message.
  sim::Task<void> gla_release(NodeId g, TxnId txn, std::vector<PageId> pages,
                              std::vector<PageId> dirty_pages,
                              bool carries_pages);
  /// Drop all read authorizations for p (writer at `writer_node`); one
  /// revocation message per remote holder, sent from the GLA node.
  void revoke_auths(PageId p, NodeId writer_node, NodeId gla_node);

  sim::Task<void> release_group(node::Txn& txn, NodeId g,
                                std::vector<PageId> pages,
                                std::vector<PageId> dirty_pages,
                                bool propagate);

  const workload::GlaMap* gla_;
  bool read_opt_;
  std::unordered_set<NodeId> frozen_;
  std::unordered_map<NodeId, std::vector<std::coroutine_handle<>>>
      freeze_waiters_;
};

}  // namespace gemsd::cc
