#include "cc/lock_table.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace gemsd::cc {

namespace {

bool compatible_with_granted(const std::vector<LockTable::Request>& q,
                             TxnId txn, LockMode mode) {
  for (const auto& r : q) {
    if (!r.granted || r.txn == txn) continue;
    if (!lock_compatible(r.mode, mode)) return false;
  }
  return true;
}

bool any_waiter_ahead(const std::vector<LockTable::Request>& q, TxnId txn) {
  // FIFO fairness: a new request must queue behind existing waiters
  // (upgrades are exempt — they jump the queue, see acquire()).
  for (const auto& r : q) {
    if (!r.granted && r.txn != txn) return true;
  }
  return false;
}

}  // namespace

LockTable::Outcome LockTable::acquire(PageId page, TxnId txn, NodeId node,
                                      LockMode mode, GrantFn on_grant) {
  requests_.inc();
  auto& st = pages_[page];

  // Upgrade detection: the txn already holds a weaker lock on the page
  // (Read -> Update, Read -> Write, or Update -> Write).
  bool is_upgrade = false;
  for (auto& r : st.q) {
    if (r.txn == txn && r.granted) {
      assert(lock_strength(mode) > lock_strength(r.mode) &&
             "re-acquiring a held lock (callers must track held locks)");
      is_upgrade = true;
      break;
    }
  }

  if (is_upgrade) {
    // Grant in place iff the target mode is compatible with every OTHER
    // granted holder (e.g. U->W needs the readers to drain; R->U only
    // another updater blocks).
    bool clear = true;
    for (const auto& r : st.q) {
      if (r.granted && r.txn != txn && !lock_compatible(r.mode, mode)) {
        clear = false;
        break;
      }
    }
    if (clear) {
      for (auto& r : st.q) {
        if (r.txn == txn && r.granted) r.mode = mode;
      }
      // The granted entry got stronger: waiters compatible with the old mode
      // may now be blocked by it.
      if (hooks_.queue_changed) hooks_.queue_changed(page, txn);
      return Outcome::Granted;
    }
    conflicts_.inc();
    // Upgrades wait at the head of the queue (before ordinary waiters).
    Request req{txn, node, mode, false, true, std::move(on_grant)};
    auto it = std::find_if(st.q.begin(), st.q.end(),
                           [](const Request& r) { return !r.granted; });
    st.q.insert(it, std::move(req));
    waiting_[txn] = page;
    // The upgrade jumped the queue: every waiter behind it just gained a
    // blocker. (The upgrader's own edges are the caller's to emit.)
    if (hooks_.queue_changed) hooks_.queue_changed(page, txn);
    return Outcome::Waiting;
  }

  if (compatible_with_granted(st.q, txn, mode) &&
      !any_waiter_ahead(st.q, txn)) {
    st.q.push_back(Request{txn, node, mode, true, false, {}});
    return Outcome::Granted;
  }
  conflicts_.inc();
  st.q.push_back(Request{txn, node, mode, false, false, std::move(on_grant)});
  waiting_[txn] = page;
  return Outcome::Waiting;
}

void LockTable::promote(PageId page, PageState& st) {
  // Repeatedly grant the first waiter while compatible. Upgrades sit at the
  // front and are granted when their holder is the sole remaining one.
  for (;;) {
    auto it = std::find_if(st.q.begin(), st.q.end(),
                           [](const Request& r) { return !r.granted; });
    if (it == st.q.end()) return;
    if (it->upgrade) {
      bool clear = true;
      for (const auto& r : st.q) {
        if (r.granted && r.txn != it->txn &&
            !lock_compatible(r.mode, it->mode)) {
          clear = false;
          break;
        }
      }
      if (!clear) return;
      // Convert the existing granted entry and drop the waiter.
      const LockMode target = it->mode;
      for (auto& r : st.q) {
        if (r.granted && r.txn == it->txn) r.mode = target;
      }
      auto fn = std::move(it->on_grant);
      const TxnId t = it->txn;
      const NodeId n = it->node;
      st.q.erase(it);
      waiting_.erase(t);
      if (hooks_.granted) hooks_.granted(page, t, n);
      if (fn) fn();
      continue;
    }
    if (!compatible_with_granted(st.q, it->txn, it->mode)) return;
    it->granted = true;
    auto fn = std::move(it->on_grant);
    waiting_.erase(it->txn);
    if (hooks_.granted) hooks_.granted(page, it->txn, it->node);
    if (fn) fn();
  }
}

void LockTable::release(PageId page, TxnId txn) {
  auto pit = pages_.find(page);
  if (pit == pages_.end()) return;
  auto& st = pit->second;
  st.q.erase(std::remove_if(st.q.begin(), st.q.end(),
                            [&](const Request& r) {
                              return r.txn == txn && r.granted;
                            }),
             st.q.end());
  promote(page, st);
  if (st.q.empty()) {
    pages_.erase(pit);
  } else if (hooks_.queue_changed) {
    hooks_.queue_changed(page, txn);
  }
}

bool LockTable::cancel_wait(PageId page, TxnId txn) {
  auto pit = pages_.find(page);
  if (pit == pages_.end()) return false;
  auto& st = pit->second;
  const auto before = st.q.size();
  st.q.erase(std::remove_if(st.q.begin(), st.q.end(),
                            [&](const Request& r) {
                              return r.txn == txn && !r.granted;
                            }),
             st.q.end());
  const bool removed = st.q.size() != before;
  if (removed) waiting_.erase(txn);
  promote(page, st);
  if (st.q.empty()) {
    pages_.erase(pit);
  } else if (hooks_.queue_changed) {
    hooks_.queue_changed(page, txn);
  }
  return removed;
}

bool LockTable::holds(PageId page, TxnId txn, LockMode at_least) const {
  auto pit = pages_.find(page);
  if (pit == pages_.end()) return false;
  for (const auto& r : pit->second.q) {
    if (r.txn == txn && r.granted) return lock_covers(r.mode, at_least);
  }
  return false;
}

std::optional<PageId> LockTable::waiting_on(TxnId txn) const {
  auto it = waiting_.find(txn);
  if (it == waiting_.end()) return std::nullopt;
  return it->second;
}

std::vector<TxnId> LockTable::blockers(PageId page, TxnId txn) const {
  std::vector<TxnId> out;
  auto pit = pages_.find(page);
  if (pit == pages_.end()) return out;
  const auto& q = pit->second.q;
  // Find our waiting request, collecting everything ahead that blocks it.
  auto self = std::find_if(q.begin(), q.end(), [&](const Request& r) {
    return r.txn == txn && !r.granted;
  });
  if (self == q.end()) return out;
  for (auto it = q.begin(); it != self; ++it) {
    if (it->txn == txn) continue;
    if (it->granted) {
      if (!lock_compatible(it->mode, self->mode)) out.push_back(it->txn);
    } else {
      // Earlier waiter: conservatively assumed to be ahead of us.
      out.push_back(it->txn);
    }
  }
  return out;
}

std::vector<std::pair<TxnId, NodeId>> LockTable::waiters(PageId page) const {
  std::vector<std::pair<TxnId, NodeId>> out;
  auto pit = pages_.find(page);
  if (pit == pages_.end()) return out;
  for (const auto& r : pit->second.q) {
    if (!r.granted) out.emplace_back(r.txn, r.node);
  }
  return out;
}

bool creates_deadlock(const LockTable& lt, TxnId start) {
  // DFS through the wait-for relation starting from `start`.
  std::unordered_set<TxnId> visited;
  std::vector<TxnId> stack{start};
  bool first = true;
  while (!stack.empty()) {
    const TxnId t = stack.back();
    stack.pop_back();
    if (!first) {
      if (t == start) return true;
      if (!visited.insert(t).second) continue;
    }
    first = false;
    const auto page = lt.waiting_on(t);
    if (!page) continue;
    for (TxnId b : lt.blockers(*page, t)) stack.push_back(b);
  }
  return false;
}

}  // namespace gemsd::cc
