#include "cc/protocol.hpp"

#include "obs/audit.hpp"

namespace gemsd::cc {

Protocol::Protocol(Env env) : env_(std::move(env)) {
  if (!metrics().trace) return;
  // Keep the trace's wait-for graph exact: enqueue-time snapshots go stale
  // whenever a page's queue mutates (an upgrade jumps ahead of FIFO waiters,
  // a waiter ahead gets granted in a compatible mode), so the table re-emits
  // every still-waiting request's blocker set at each mutation — the
  // analyzer treats a batch as a full replacement. The grant instant marks
  // the moment a waiter stops waiting; the kLockWait span alone records too
  // late for remote waiters (their coroutine resumes after a message delay).
  LockTable::TraceHooks hooks;
  hooks.granted = [this](PageId p, TxnId t, NodeId n) {
    metrics().trace->instant(obs::TraceName::kLockGrant,
                             static_cast<std::int16_t>(n), t, sched().now(),
                             static_cast<double>(p.page),
                             static_cast<std::int32_t>(p.partition));
  };
  hooks.queue_changed = [this](PageId p, TxnId exclude) {
    for (const auto& [w, wn] : table_.waiters(p)) {
      if (w == exclude) continue;
      for (TxnId b : table_.blockers(p, w)) {
        metrics().trace->instant(obs::TraceName::kWaitEdge,
                                 static_cast<std::int16_t>(wn), w,
                                 sched().now(), static_cast<double>(b));
      }
    }
  };
  table_.set_trace_hooks(std::move(hooks));
}

void Protocol::audit_commit_state(const node::Txn& txn,
                                  const std::vector<PageId>& dirty,
                                  obs::Auditor& audit, sim::SimTime now) {
  for (PageId p : dirty) {
    if (lock_release_is_synchronous(p, txn.node)) {
      audit.check(!table_.holds(p, txn.id, LockMode::Read), "commit-release",
                  now, txn.id, txn.node,
                  "lock on page %lld/%d still held after commit_release",
                  static_cast<long long>(p.page), p.partition);
    }
    const SeqNo s = dir_.seqno(p);
    audit.check(s > 0, "commit-version", now, txn.id, txn.node,
                "committed page %lld/%d still at version 0",
                static_cast<long long>(p.page), p.partition);
    // The committing node's copy was stamped with the new version by
    // commit_dirty; a surviving stale copy would serve wrong data on the
    // next local hit.
    const auto local = buf(txn.node).cached_seqno(p);
    audit.check(!local || *local == s, "local-coherency", now, txn.id,
                txn.node,
                "page %lld/%d cached at seqno %llu after committing %llu",
                static_cast<long long>(p.page), p.partition,
                static_cast<unsigned long long>(local ? *local : 0),
                static_cast<unsigned long long>(s));
    // Ownership (NOFORCE): when the directory names this node as holding
    // the only current copy, the buffer must actually hold it (frame or
    // in-flight write-back) at exactly that version.
    if (dir_.owner(p) == txn.node) {
      audit.check(local.has_value() && *local == s, "owner-coherency", now,
                  txn.id, txn.node,
                  "directory names node %d owner of page %lld/%d at seqno "
                  "%llu but the buffer %s",
                  txn.node, static_cast<long long>(p.page), p.partition,
                  static_cast<unsigned long long>(s),
                  local ? "holds a different version" : "has no copy");
    }
  }
}

sim::Task<void> Protocol::fulfill_bool(sim::OneShot<bool>* o, bool v) {
  o->set(v);
  co_return;
}

sim::Task<void> Protocol::noop_handler() { co_return; }

void Protocol::revoke_auths_from(NodeId sender, PageId p, NodeId except) {
  for (NodeId a : dir_.revoke_read_auths(p, except)) {
    metrics().revocations.inc();
    if (a == sender) continue;
    sched().spawn(env_.comm->send(sender, a, /*long_msg=*/false,
                                  noop_handler()));
  }
}

sim::Task<Protocol::Logical> Protocol::lock_logical(node::Txn& txn, PageId p,
                                                    LockMode mode) {
  sim::OneShot<bool> granted(sched());
  const auto res = table_.acquire(
      p, txn.id, txn.node, mode,
      [this, granted_ptr = &granted, waiter_node = txn.node] {
        // Fired during someone's release processing. A waiter on another
        // node than the releasing context learns of the grant through a
        // short notification message; a local waiter is resumed directly.
        if (releasing_node_ == kNoNode || releasing_node_ == waiter_node) {
          granted_ptr->set(true);
        } else {
          sched().spawn(env_.comm->send(releasing_node_, waiter_node,
                                        /*long_msg=*/false,
                                        fulfill_bool(granted_ptr, true)));
        }
      });
  if (res == LockTable::Outcome::Granted) {
    if (!txn.holds_page(p)) txn.held.push_back(p);
    co_return Logical::Granted;
  }
  // Record the wait-for edges BEFORE the deadlock check so a trace shows the
  // edges that closed the cycle (the analyzer replays them; txn ids stay
  // exact as doubles — 11 bits of node + 40 bits of sequence < 2^53).
  if (metrics().trace) {
    // Our own batch comes after any hook-emitted refreshes from the enqueue
    // (an upgrade jumping the queue refreshes the waiters behind it): its
    // arrival is when the replay runs the cycle check, just like the
    // simulator checks right after enqueueing us.
    for (TxnId b : table_.blockers(p, txn.id)) {
      metrics().trace->instant(obs::TraceName::kWaitEdge,
                               static_cast<std::int16_t>(txn.node), txn.id,
                               sched().now(), static_cast<double>(b));
    }
  }
  // Would waiting close a cycle? Then this transaction is the victim.
  if (creates_deadlock(table_, txn.id)) {
    table_.cancel_wait(p, txn.id);
    metrics().deadlocks.inc();
    if (metrics().trace) {
      metrics().trace->instant(obs::TraceName::kDeadlock,
                               static_cast<std::int16_t>(txn.node), txn.id,
                               sched().now(), static_cast<double>(p.page),
                               static_cast<std::int32_t>(p.partition));
    }
    co_return Logical::Aborted;
  }
  metrics().lock_waits.inc();
  const sim::SimTime t0 = sched().now();
  co_await granted.wait();
  metrics().lock_wait_time.add(sched().now() - t0);
  if (metrics().trace) {
    metrics().trace->span(obs::TraceName::kLockWait,
                          static_cast<std::int16_t>(txn.node), txn.id, t0,
                          sched().now(), static_cast<double>(p.page),
                          static_cast<std::int32_t>(p.partition));
  }
  if (!txn.holds_page(p)) txn.held.push_back(p);
  co_return Logical::GrantedAfterWait;
}

sim::Task<void> Protocol::provision(node::Txn& txn, PageId p,
                                    const LockOutcome& lk) {
  auto& bm = buf(txn.node);
  switch (lk.source) {
    case PageSource::CacheValid:
      if (bm.has_copy(p)) {
        bm.hit(p);
      } else {
        // The copy was replaced while the request waited; re-decide from the
        // directory (rare).
        bm.count_miss(p, false);
        const NodeId ow = dir_.owner(p);
        if (ow != kNoNode && ow != txn.node) {
          co_await fetch_from_owner(txn, p, lk.seqno, ow,
                                    /*transfer_ownership=*/true);
        } else {
          co_await bm.read_from_storage(&txn, p, lk.seqno, /*count=*/false);
        }
      }
      break;
    case PageSource::Delivered:
      // Page arrived with the grant message (PCL); the GLA keeps ownership.
      bm.count_miss(p, lk.invalidation);
      bm.install(p, lk.seqno, /*dirty=*/false);
      break;
    case PageSource::OwnerTransfer:
      bm.count_miss(p, lk.invalidation);
      co_await fetch_from_owner(txn, p, lk.seqno, lk.owner,
                                /*transfer_ownership=*/true);
      break;
    case PageSource::Storage:
      bm.count_miss(p, lk.invalidation);
      co_await bm.read_from_storage(&txn, p, lk.seqno, /*count=*/false);
      break;
  }
}

sim::Task<void> Protocol::serve_page_request(PageId p, NodeId owner,
                                             NodeId requester,
                                             bool transfer_ownership,
                                             sim::OneShot<bool>* got) {
  (void)transfer_ownership;  // ownership migrates at requester install time
  auto& ob = buf(owner);
  if (ob.has_copy(p)) {
    co_await env_.comm->send(owner, requester, /*long_msg=*/true,
                             fulfill_bool(got, true));
  } else {
    // The owner wrote the page back concurrently: storage is current.
    metrics().page_request_misses.inc();
    co_await env_.comm->send(owner, requester, /*long_msg=*/false,
                             fulfill_bool(got, false));
  }
}

sim::Task<void> Protocol::fetch_from_owner(node::Txn& txn, PageId p,
                                           SeqNo seqno, NodeId owner,
                                           bool transfer_ownership) {
  metrics().page_requests.inc();
  const sim::SimTime t0 = sched().now();
  const NodeId me = txn.node;
  sim::OneShot<bool> got(sched());

  co_await env_.comm->send(
      me, owner, /*long_msg=*/false,
      serve_page_request(p, owner, me, transfer_ownership, &got));

  const bool have_page = co_await got.wait();
  metrics().page_request_delay.add(sched().now() - t0);
  txn.t_cc += sched().now() - t0;
  if (metrics().trace) {
    metrics().trace->span(obs::TraceName::kPageRequest,
                          static_cast<std::int16_t>(me), txn.id, t0,
                          sched().now(), static_cast<double>(p.page),
                          static_cast<std::int32_t>(p.partition));
  }
  if (have_page) {
    buf(me).install(p, seqno, /*dirty=*/transfer_ownership);
    if (transfer_ownership) {
      // Ownership migrates only NOW, when the requester actually holds the
      // copy. (Transferring at serve time opens a window in which the
      // directory names a node whose copy is still the stale one — other
      // readers on that node would then wrongly trust their cached pages.)
      // The previous owner's copy stays cached but becomes clean; it is no
      // longer that node's write-back responsibility.
      dir_.transfer_owner(p, me);
      buf(owner).shipped_copy(p);
    }
  } else {
    co_await buf(me).read_from_storage(&txn, p, seqno, /*count=*/false);
  }
}

}  // namespace gemsd::cc
