#include "cc/protocol.hpp"

namespace gemsd::cc {

sim::Task<void> Protocol::fulfill_bool(sim::OneShot<bool>* o, bool v) {
  o->set(v);
  co_return;
}

sim::Task<void> Protocol::noop_handler() { co_return; }

void Protocol::revoke_auths_from(NodeId sender, PageId p, NodeId except) {
  for (NodeId a : dir_.revoke_read_auths(p, except)) {
    metrics().revocations.inc();
    if (a == sender) continue;
    sched().spawn(env_.comm->send(sender, a, /*long_msg=*/false,
                                  noop_handler()));
  }
}

sim::Task<Protocol::Logical> Protocol::lock_logical(node::Txn& txn, PageId p,
                                                    LockMode mode) {
  sim::OneShot<bool> granted(sched());
  const auto res = table_.acquire(
      p, txn.id, txn.node, mode,
      [this, granted_ptr = &granted, waiter_node = txn.node] {
        // Fired during someone's release processing. A waiter on another
        // node than the releasing context learns of the grant through a
        // short notification message; a local waiter is resumed directly.
        if (releasing_node_ == kNoNode || releasing_node_ == waiter_node) {
          granted_ptr->set(true);
        } else {
          sched().spawn(env_.comm->send(releasing_node_, waiter_node,
                                        /*long_msg=*/false,
                                        fulfill_bool(granted_ptr, true)));
        }
      });
  if (res == LockTable::Outcome::Granted) {
    if (!txn.holds_page(p)) txn.held.push_back(p);
    co_return Logical::Granted;
  }
  // Would waiting close a cycle? Then this transaction is the victim.
  if (creates_deadlock(table_, txn.id)) {
    table_.cancel_wait(p, txn.id);
    metrics().deadlocks.inc();
    if (metrics().trace) {
      metrics().trace->instant(obs::TraceName::kDeadlock,
                               static_cast<std::int16_t>(txn.node), txn.id,
                               sched().now(), static_cast<double>(p.page));
    }
    co_return Logical::Aborted;
  }
  metrics().lock_waits.inc();
  const sim::SimTime t0 = sched().now();
  co_await granted.wait();
  metrics().lock_wait_time.add(sched().now() - t0);
  if (metrics().trace) {
    metrics().trace->span(obs::TraceName::kLockWait,
                          static_cast<std::int16_t>(txn.node), txn.id, t0,
                          sched().now(), static_cast<double>(p.page));
  }
  if (!txn.holds_page(p)) txn.held.push_back(p);
  co_return Logical::GrantedAfterWait;
}

sim::Task<void> Protocol::provision(node::Txn& txn, PageId p,
                                    const LockOutcome& lk) {
  auto& bm = buf(txn.node);
  switch (lk.source) {
    case PageSource::CacheValid:
      if (bm.has_copy(p)) {
        bm.hit(p);
      } else {
        // The copy was replaced while the request waited; re-decide from the
        // directory (rare).
        bm.count_miss(p, false);
        const NodeId ow = dir_.owner(p);
        if (ow != kNoNode && ow != txn.node) {
          co_await fetch_from_owner(txn, p, lk.seqno, ow,
                                    /*transfer_ownership=*/true);
        } else {
          co_await bm.read_from_storage(&txn, p, lk.seqno, /*count=*/false);
        }
      }
      break;
    case PageSource::Delivered:
      // Page arrived with the grant message (PCL); the GLA keeps ownership.
      bm.count_miss(p, lk.invalidation);
      bm.install(p, lk.seqno, /*dirty=*/false);
      break;
    case PageSource::OwnerTransfer:
      bm.count_miss(p, lk.invalidation);
      co_await fetch_from_owner(txn, p, lk.seqno, lk.owner,
                                /*transfer_ownership=*/true);
      break;
    case PageSource::Storage:
      bm.count_miss(p, lk.invalidation);
      co_await bm.read_from_storage(&txn, p, lk.seqno, /*count=*/false);
      break;
  }
}

sim::Task<void> Protocol::serve_page_request(PageId p, NodeId owner,
                                             NodeId requester,
                                             bool transfer_ownership,
                                             sim::OneShot<bool>* got) {
  (void)transfer_ownership;  // ownership migrates at requester install time
  auto& ob = buf(owner);
  if (ob.has_copy(p)) {
    co_await env_.comm->send(owner, requester, /*long_msg=*/true,
                             fulfill_bool(got, true));
  } else {
    // The owner wrote the page back concurrently: storage is current.
    metrics().page_request_misses.inc();
    co_await env_.comm->send(owner, requester, /*long_msg=*/false,
                             fulfill_bool(got, false));
  }
}

sim::Task<void> Protocol::fetch_from_owner(node::Txn& txn, PageId p,
                                           SeqNo seqno, NodeId owner,
                                           bool transfer_ownership) {
  metrics().page_requests.inc();
  const sim::SimTime t0 = sched().now();
  const NodeId me = txn.node;
  sim::OneShot<bool> got(sched());

  co_await env_.comm->send(
      me, owner, /*long_msg=*/false,
      serve_page_request(p, owner, me, transfer_ownership, &got));

  const bool have_page = co_await got.wait();
  metrics().page_request_delay.add(sched().now() - t0);
  txn.t_cc += sched().now() - t0;
  if (metrics().trace) {
    metrics().trace->span(obs::TraceName::kPageRequest,
                          static_cast<std::int16_t>(me), txn.id, t0,
                          sched().now(), static_cast<double>(p.page));
  }
  if (have_page) {
    buf(me).install(p, seqno, /*dirty=*/transfer_ownership);
    if (transfer_ownership) {
      // Ownership migrates only NOW, when the requester actually holds the
      // copy. (Transferring at serve time opens a window in which the
      // directory names a node whose copy is still the stale one — other
      // readers on that node would then wrongly trust their cached pages.)
      // The previous owner's copy stays cached but becomes clean; it is no
      // longer that node's write-back responsibility.
      dir_.transfer_owner(p, me);
      buf(owner).shipped_copy(p);
    }
  } else {
    co_await buf(me).read_from_storage(&txn, p, seqno, /*count=*/false);
  }
}

}  // namespace gemsd::cc
