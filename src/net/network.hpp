#pragma once

#include "core/config.hpp"
#include "sim/resource.hpp"
#include "sim/scheduler.hpp"
#include "sim/task.hpp"

namespace gemsd::net {

/// Interconnection network: the paper's "simple delay model characterized by
/// a fixed transmission bandwidth" — a single transmission channel whose
/// per-message service time is size/bandwidth.
class Network {
 public:
  Network(sim::Scheduler& sched, const CommConfig& cfg)
      : cfg_(cfg), link_(sched, 1, "net") {}

  sim::Task<void> transmit(bool long_msg) {
    (long_msg ? long_msgs_ : short_msgs_).inc();
    const double bytes = long_msg ? cfg_.long_bytes : cfg_.short_bytes;
    co_await link_.use(bytes / cfg_.bandwidth);
  }

  double utilization() const { return link_.utilization(); }
  const sim::Resource& link() const { return link_; }
  /// Mutable station (observability wiring: wait-sketch attachment).
  sim::Resource& link() { return link_; }
  std::uint64_t short_count() const { return short_msgs_.value(); }
  std::uint64_t long_count() const { return long_msgs_.value(); }
  void reset_stats() {
    link_.reset_stats();
    short_msgs_.reset();
    long_msgs_.reset();
  }

 private:
  CommConfig cfg_;
  sim::Resource link_;
  sim::Counter short_msgs_, long_msgs_;
};

}  // namespace gemsd::net
