#pragma once

#include <cassert>
#include <functional>
#include <vector>

#include "core/config.hpp"
#include "net/network.hpp"
#include "node/cpu.hpp"
#include "obs/trace.hpp"
#include "storage/storage_manager.hpp"
#include "sim/scheduler.hpp"
#include "sim/task.hpp"

namespace gemsd::net {

/// Message-passing layer. A send charges the *sender's* CPU (5000 instr for a
/// short / 8000 for a long message), occupies the network for the
/// transmission time, charges the *receiver's* CPU equally, and then runs the
/// supplied handler as a new process at the receiver. The sender resumes as
/// soon as its own send processing is done — delivery is asynchronous
/// (request/response patterns park the sender on a OneShot that the reply
/// handler fulfills).
///
/// The handler is an already-created (lazily started) coroutine Task: its
/// arguments were bound into its own frame by ordinary parameter passing at
/// the call site. Deliberately NOT a capturing callable — capturing
/// coroutine lambdas dangle (C++ Core Guidelines CP.51).
class Comm {
 public:
  /// `storage` is required for the GemStore transport: a message to node n
  /// is deposited in — and picked up from — n's GEM mailbox shard
  /// (storage->gem_for_node(n)), so with gem_shards>1 independent node pairs
  /// queue on independent stations.
  Comm(sim::Scheduler& sched, Network& net, const CommConfig& cfg,
       storage::StorageManager* storage = nullptr)
      : sched_(sched), net_(net), cfg_(cfg), storage_(storage) {}

  void attach_nodes(std::vector<node::CpuSet*> cpus) { cpus_ = std::move(cpus); }

#if GEMSD_TRACING_ENABLED
  void set_trace(obs::TraceRecorder* t) { trace_ = t; }
#else
  void set_trace(obs::TraceRecorder*) {}
#endif

  /// Awaited by the sender; returns after send-side CPU processing.
  sim::Task<void> send(NodeId from, NodeId to, bool long_msg,
                       sim::Task<void> handler) {
    assert(from != to && "no self-messages: local work is message-free");
    const sim::SimTime t0 = sched_.now();
    if (cfg_.transport == MsgTransport::GemStore && storage_ != nullptr) {
      // Storage-based communication (Section 2): the sender deposits the
      // message in GEM with a synchronous access and a slim CPU path; the
      // receiver picks it up the same way. No protocol stack, no network.
      // Both ends touch the *receiver's* mailbox shard.
      auto& c = *cpus_[static_cast<std::size_t>(from)];
      co_await c.acquire();
      co_await c.busy(cfg_.gem_msg_instr);
      co_await gem_transfer(to, long_msg);
      c.release();
      sent_.inc();
      const std::uint64_t fid = sent_.value();
      if (trace_) {
        trace_->span(obs::TraceName::kMsgSend, static_cast<std::int16_t>(from),
                     fid, t0, sched_.now(), long_msg ? 1.0 : 0.0);
        trace_->flow(obs::TraceKind::FlowBegin, static_cast<std::int16_t>(from),
                     fid, sched_.now(), long_msg);
      }
      sched_.spawn(deliver_gem(to, long_msg, fid, std::move(handler)));
      co_return;
    }
    const double instr = long_msg ? cfg_.long_instr : cfg_.short_instr;
    co_await cpus_[static_cast<std::size_t>(from)]->consume(instr);
    sent_.inc();
    const std::uint64_t fid = sent_.value();
    if (trace_) {
      trace_->span(obs::TraceName::kMsgSend, static_cast<std::int16_t>(from),
                   fid, t0, sched_.now(), long_msg ? 1.0 : 0.0);
      trace_->flow(obs::TraceKind::FlowBegin, static_cast<std::int16_t>(from),
                   fid, sched_.now(), long_msg);
    }
    sched_.spawn(deliver(to, long_msg, fid, std::move(handler)));
  }

  std::uint64_t messages_sent() const { return sent_.value(); }
  void reset_stats() { sent_.reset(); }

 private:
  sim::Task<void> deliver(NodeId to, bool long_msg, std::uint64_t fid,
                          sim::Task<void> handler) {
    const sim::SimTime t0 = sched_.now();
    co_await net_.transmit(long_msg);
    const double instr = long_msg ? cfg_.long_instr : cfg_.short_instr;
    co_await cpus_[static_cast<std::size_t>(to)]->consume(instr);
    if (trace_) {
      trace_->span(obs::TraceName::kMsgRecv, static_cast<std::int16_t>(to),
                   fid, t0, sched_.now(), long_msg ? 1.0 : 0.0);
      trace_->flow(obs::TraceKind::FlowEnd, static_cast<std::int16_t>(to), fid,
                   sched_.now(), long_msg);
    }
    co_await std::move(handler);
  }

  /// One GEM transfer against node `to`'s mailbox shard: a full page access
  /// for page-sized messages, a few entry accesses for short control
  /// messages.
  sim::Task<void> gem_transfer(NodeId to, bool long_msg) {
    auto& gem = storage_->gem_for_node(to);
    if (long_msg) {
      co_await gem.page_access();
    } else {
      for (int i = 0; i < 4; ++i) co_await gem.entry_access();
    }
  }

  sim::Task<void> deliver_gem(NodeId to, bool long_msg, std::uint64_t fid,
                              sim::Task<void> handler) {
    const sim::SimTime t0 = sched_.now();
    auto& c = *cpus_[static_cast<std::size_t>(to)];
    co_await c.acquire();
    co_await c.busy(cfg_.gem_msg_instr);
    co_await gem_transfer(to, long_msg);
    c.release();
    if (trace_) {
      trace_->span(obs::TraceName::kMsgRecv, static_cast<std::int16_t>(to),
                   fid, t0, sched_.now(), long_msg ? 1.0 : 0.0);
      trace_->flow(obs::TraceKind::FlowEnd, static_cast<std::int16_t>(to), fid,
                   sched_.now(), long_msg);
    }
    co_await std::move(handler);
  }

  sim::Scheduler& sched_;
  Network& net_;
  CommConfig cfg_;
  storage::StorageManager* storage_;
  std::vector<node::CpuSet*> cpus_;
  sim::Counter sent_;
#if GEMSD_TRACING_ENABLED
  obs::TraceRecorder* trace_ = nullptr;
#else
  static constexpr obs::TraceRecorder* trace_ = nullptr;
#endif
};

}  // namespace gemsd::net
