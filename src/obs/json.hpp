#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace gemsd::obs {

/// Streaming JSON writer. Produces deterministic output (fixed key order —
/// whatever order the caller emits — and fixed number formatting), which the
/// telemetry tests rely on: the same run must serialize to the same bytes at
/// any --jobs value.
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  /// Key inside an object; follow with exactly one value (or container).
  void key(const std::string& k);
  void value(const std::string& v);
  void value(const char* v);
  void value(double v);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(bool v);
  void value_null();
  /// Splice a pre-serialized JSON fragment as a value (no validation).
  void raw(const std::string& json);

  // Convenience: key + value in one call.
  template <typename T>
  void kv(const std::string& k, T v) {
    key(k);
    value(v);
  }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

  static std::string escape(const std::string& s);
  /// Shortest deterministic representation: integers without exponent where
  /// exact, otherwise %.12g. Non-finite values serialize as 0 (JSON has no
  /// NaN/Inf).
  static std::string number(double v);

 private:
  void comma();

  std::string out_;
  std::vector<bool> has_item_;  ///< per open container: item already written
  bool pending_key_ = false;
};

/// Minimal parsed-JSON value (null/bool/number/string/array/object) for the
/// schema validator, tests and tools. Not a general-purpose library: numbers
/// are doubles, object key order is not preserved (std::map — deterministic
/// but sorted).
struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  bool is_object() const { return kind == Kind::Object; }
  bool is_array() const { return kind == Kind::Array; }
  bool is_number() const { return kind == Kind::Number; }
  bool is_string() const { return kind == Kind::String; }
  const JsonValue* find(const std::string& k) const {
    if (kind != Kind::Object) return nullptr;
    auto it = obj.find(k);
    return it == obj.end() ? nullptr : &it->second;
  }
};

/// Parse a complete JSON document. Returns false (and fills `error`) on
/// malformed input; trailing non-whitespace is an error.
bool json_parse(const std::string& text, JsonValue& out, std::string& error);

/// Validate `doc` against a JSON-Schema subset: type, required, properties,
/// items (single schema), enum (strings/numbers), minItems,
/// additionalProperties (bool only; default true). Returns true when valid;
/// appends human-readable problems ("$.runs[3].metrics: missing required key
/// 'resp_ms'") to `errors` otherwise.
bool json_schema_validate(const JsonValue& schema, const JsonValue& doc,
                          std::vector<std::string>& errors);

}  // namespace gemsd::obs
