#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace gemsd::obs {

/// One failed invariant check, with enough context to find the spot in a
/// trace: simulated time, transaction, node, and the formatted detail.
struct AuditViolation {
  std::string check;
  std::string what;
  sim::SimTime t = 0.0;
  std::uint64_t txn = 0;
  int node = -1;
};

/// Online invariant auditor (--audit): lightweight checks registered in the
/// transaction-manager / lock / buffer hot paths. A passing check is one
/// branch and a counter bump; a failing check prints the violation plus a
/// cursor over the trace ring's most recent events and aborts the process
/// (fail-fast, the default) — a run that would produce silently wrong tables
/// dies at the first inconsistent state instead. Tests flip fail-fast off
/// and read `violations()`.
///
/// Auditing is pure observation: checks read simulation state but never
/// advance simulated time, so metrics are bit-identical with audits off.
class Auditor {
 public:
  explicit Auditor(const TraceRecorder* trace = nullptr) : trace_(trace) {}

  void set_fail_fast(bool v) { fail_fast_ = v; }
  bool fail_fast() const { return fail_fast_; }

  std::uint64_t checks() const { return checks_; }
  const std::vector<AuditViolation>& violations() const { return violations_; }
  void clear() {
    checks_ = 0;
    violations_.clear();
  }

  /// Evaluate one invariant. `ok` true: count and return. `ok` false: record
  /// an AuditViolation (the printf-style detail is only formatted on
  /// failure), dump it with the trace cursor to stderr, and abort unless
  /// fail-fast is off.
  void check(bool ok, const char* name, sim::SimTime t, std::uint64_t txn,
             int node, const char* fmt, ...)
      __attribute__((format(printf, 7, 8)));

 private:
  void report(const AuditViolation& v) const;

  const TraceRecorder* trace_;
  bool fail_fast_ = true;
  std::uint64_t checks_ = 0;
  std::vector<AuditViolation> violations_;
};

}  // namespace gemsd::obs
