#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "sim/time.hpp"

/// Compile-time master switch for simulation tracing. With
/// -DGEMSD_TRACING_ENABLED=0 every record site folds to nothing (the
/// recorder pointer in Metrics becomes a constexpr nullptr and the guarded
/// branches are dead code); the default build keeps tracing available behind
/// a single predictable null-pointer test per site, which is unreachable from
/// the event-kernel hot loops (bench_kernel never touches a record site).
#ifndef GEMSD_TRACING_ENABLED
#define GEMSD_TRACING_ENABLED 1
#endif

namespace gemsd::obs {

/// Event taxonomy. Span/instant names, per-transaction phase totals, and the
/// sampler's counter tracks share one 8-bit id space (docs/observability.md
/// documents the mapping to Chrome trace categories).
enum class TraceName : std::uint8_t {
  // spans / instants (transaction- or device-scoped)
  kTxn,          ///< whole transaction lifecycle (arrival -> commit)
  kMplWait,      ///< input-queue wait for an MPL slot
  kCpu,          ///< one CPU burst incl. processor queueing (value = wait)
  kLockWait,     ///< blocked lock request (value = page number)
  kPageRequest,  ///< direct page transfer from the owning node
  kIoRead,       ///< device-level page read (value = page number)
  kIoWrite,      ///< device-level page write (value = page number)
  kIoLog,        ///< log append
  kCommitIo,     ///< commit phase 1: log + FORCE writes (parallel)
  kMsgSend,      ///< send-side message processing (id = flow id)
  kMsgRecv,      ///< receive-side message processing (id = flow id)
  kRestart,      ///< deadlock victim restarts (instant)
  kDeadlock,     ///< deadlock detected, this txn is the victim (instant)
  kWaitEdge,     ///< wait-for edge: id waits for txn `value` (instant)
  kLockGrant,    ///< waiting lock request granted (instant, value = page);
                 ///< emitted at the LOGICAL grant — the kLockWait span is
                 ///< only recorded once the (possibly remote) waiter resumes
  kGemAccess,    ///< one GLT operation in GEM (entry read + C&S write-back,
                 ///< processor held); makes a lock holder's GLT activity
                 ///< visible to the critical-path profiler
  kCommit,       ///< commit point (instant)
  // per-transaction phase totals (merged into the txn span's args by the
  // exporter; values are the exact seconds added to Metrics::breakdown_*)
  kPhaseCpu,
  kPhaseCpuWait,
  kPhaseIo,
  kPhaseCc,
  kPhaseQueue,
  // sampler counter tracks
  kCtrThroughput,  ///< committed txns/s in the last sample window
  kCtrResponse,    ///< mean response [ms] over the last sample window
  kCtrActive,      ///< transactions admitted past the MPL gate (per node)
  kCtrMplQueue,    ///< transactions waiting for an MPL slot (per node)
  kCtrCpuBusy,     ///< busy processors / processors (per node)
  kCtrGemBusy,     ///< busy GEM servers / servers
  kCtrNetBusy,     ///< network link busy (0/1)
  kCtrDiskQueue,   ///< pages queued for DB disk arms (all partitions)
  kCtrSchedQueue,  ///< events pending in the simulation scheduler
  kCount
};

const char* to_string(TraceName n);
/// Chrome trace "cat" field for the event name ("txn", "cc", "io", "net",
/// "sampler").
const char* category(TraceName n);

/// Per-name enable mask for --trace-filter: true where `pattern` (an ECMAScript
/// regex, matched with regex_search against to_string(name)) hits. The empty
/// pattern enables everything. Throws std::regex_error on a malformed pattern —
/// CLI front ends validate at parse time.
std::array<bool, static_cast<std::size_t>(TraceName::kCount)>
trace_name_filter(const std::string& pattern);

enum class TraceKind : std::uint8_t {
  Span,        ///< t = start, dur = duration
  Instant,     ///< t = time
  Counter,     ///< t = time, value = sample
  FlowBegin,   ///< message leaves `node` (id = flow id)
  FlowEnd,     ///< message arrives at `node`
  PhaseTotal,  ///< per-txn phase aggregate, value = seconds
};

/// One trace record. Trivially copyable and fixed-size by design: recording
/// is a bounds check plus a 40-byte store into a preallocated ring — no
/// allocation, no strings, no virtual dispatch on the simulation's hot paths.
struct TraceEvent {
  sim::SimTime t = 0.0;    ///< start (spans) or event time, simulated seconds
  double dur = 0.0;        ///< span duration (seconds)
  double value = 0.0;      ///< counter sample / phase seconds / aux payload
  std::uint64_t id = 0;    ///< transaction id, flow id, or 0
  TraceName name = TraceName::kTxn;
  TraceKind kind = TraceKind::Span;
  std::int16_t node = -1;  ///< -1 = cluster-wide
  /// Partition id for page-scoped events (the page number rides in `value`;
  /// page numbers alone are ambiguous — every partition has its own space).
  std::int32_t aux = 0;
};
static_assert(std::is_trivially_copyable_v<TraceEvent>);
static_assert(sizeof(TraceEvent) == 40);

/// Fixed-capacity ring buffer of trace events. When full, the oldest events
/// are overwritten (and counted as dropped) so a trace always holds the most
/// recent window — the matching txn span + phase totals are emitted together
/// at commit time, so the tail of a trace is always self-consistent.
///
/// Strictly single-threaded like everything else inside one simulation run;
/// parallel sweeps give each System its own recorder, which keeps traces
/// bit-identical at any --jobs value.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity)
      : capacity_(capacity > 0 ? capacity : 1) {
    buf_.reserve(capacity_);
  }

  /// Restrict recording to the names enabled in `mask` (see
  /// trace_name_filter). Filtered events are never stored, so they neither
  /// occupy ring slots nor show up in the `dropped` overwrite count — a tight
  /// filter is how long runs keep a complete window of just the interesting
  /// events.
  void set_filter(
      const std::array<bool, static_cast<std::size_t>(TraceName::kCount)>&
          mask) {
    enabled_ = mask;
  }

  void record(const TraceEvent& e) {
    if (!enabled_[static_cast<std::size_t>(e.name)]) return;
    if (buf_.size() < capacity_) {
      buf_.push_back(e);
      return;
    }
    buf_[head_] = e;
    if (++head_ == capacity_) head_ = 0;
    ++dropped_;
  }

  void span(TraceName n, std::int16_t node, std::uint64_t id, sim::SimTime t0,
            sim::SimTime t1, double value = 0.0, std::int32_t aux = 0) {
    record(TraceEvent{t0, t1 - t0, value, id, n, TraceKind::Span, node, aux});
  }
  void instant(TraceName n, std::int16_t node, std::uint64_t id, sim::SimTime t,
               double value = 0.0, std::int32_t aux = 0) {
    record(TraceEvent{t, 0.0, value, id, n, TraceKind::Instant, node, aux});
  }
  void counter(TraceName n, std::int16_t node, sim::SimTime t, double value) {
    record(TraceEvent{t, 0.0, value, 0, n, TraceKind::Counter, node, 0});
  }
  void flow(TraceKind kind, std::int16_t node, std::uint64_t flow_id,
            sim::SimTime t, bool long_msg) {
    record(TraceEvent{t, 0.0, long_msg ? 1.0 : 0.0, flow_id,
                      kind == TraceKind::FlowBegin ? TraceName::kMsgSend
                                                   : TraceName::kMsgRecv,
                      kind, node, 0});
  }
  void phase_total(TraceName n, std::int16_t node, std::uint64_t id,
                   sim::SimTime t, double seconds) {
    record(TraceEvent{t, 0.0, seconds, id, n, TraceKind::PhaseTotal, node, 0});
  }

  /// Drop all recorded events (measurement-interval start).
  void clear() {
    buf_.clear();
    head_ = 0;
    dropped_ = 0;
  }

  std::size_t size() const { return buf_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t dropped() const { return dropped_; }

  /// Events in chronological record order (ring resolved).
  std::vector<TraceEvent> snapshot() const {
    std::vector<TraceEvent> out;
    out.reserve(buf_.size());
    out.insert(out.end(), buf_.begin() + static_cast<std::ptrdiff_t>(head_),
               buf_.end());
    out.insert(out.end(), buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(head_));
    return out;
  }

 private:
  static constexpr std::size_t kNames =
      static_cast<std::size_t>(TraceName::kCount);

  static std::array<bool, kNames> all_enabled() {
    std::array<bool, kNames> m;
    m.fill(true);
    return m;
  }

  std::size_t capacity_;
  std::vector<TraceEvent> buf_;
  std::size_t head_ = 0;  ///< oldest element once the ring has wrapped
  std::uint64_t dropped_ = 0;
  std::array<bool, kNames> enabled_ = all_enabled();
};

}  // namespace gemsd::obs
