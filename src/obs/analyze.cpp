#include "obs/analyze.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <utility>

namespace gemsd::obs {

namespace {

constexpr int kNodeShift = 40;  ///< txn id layout: (node << 40) | sequence

NodeAttribution& node_slot(std::map<int, NodeAttribution>& nodes, int node) {
  auto [it, inserted] = nodes.try_emplace(node);
  if (inserted) it->second.node = node;
  return it->second;
}

void add_phase(NodeAttribution& a, TraceName n, double seconds) {
  switch (n) {
    case TraceName::kPhaseCpu: a.cpu_s += seconds; break;
    case TraceName::kPhaseCpuWait: a.cpu_wait_s += seconds; break;
    case TraceName::kPhaseIo: a.io_s += seconds; break;
    case TraceName::kPhaseCc: a.cc_s += seconds; break;
    case TraceName::kPhaseQueue: a.queue_s += seconds; break;
    default: break;
  }
}

/// Does `start` reach itself through the live wait-for edges?
bool closes_cycle(
    const std::map<std::uint64_t, std::vector<std::uint64_t>>& out,
    std::uint64_t start) {
  std::set<std::uint64_t> visited;
  std::vector<std::uint64_t> stack;
  auto it = out.find(start);
  if (it == out.end()) return false;
  stack.insert(stack.end(), it->second.begin(), it->second.end());
  while (!stack.empty()) {
    const std::uint64_t t = stack.back();
    stack.pop_back();
    if (t == start) return true;
    if (!visited.insert(t).second) continue;
    auto oi = out.find(t);
    if (oi != out.end()) {
      stack.insert(stack.end(), oi->second.begin(), oi->second.end());
    }
  }
  return false;
}

void append(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

double num_or(const JsonValue* v, double fallback) {
  return v && v->is_number() ? v->num : fallback;
}

/// A transaction's locks dropped (commit, restart, deadlock abort): it can no
/// longer block anyone, and until it waits again it waits on nothing. Remove
/// its out-edges AND every stale edge pointing to it — wait edges are
/// snapshots of the queue at enqueue time, and a restarted transaction reuses
/// its id, so leftover incoming edges would close cycles the simulator never
/// saw.
void retire_txn(std::map<std::uint64_t, std::vector<std::uint64_t>>& out,
                std::uint64_t id) {
  out.erase(id);
  for (auto& [waiter, edges] : out) {
    edges.erase(std::remove(edges.begin(), edges.end(), id), edges.end());
  }
}

}  // namespace

TraceAnalysis analyze_trace(const std::vector<TraceEvent>& events,
                            std::uint64_t dropped) {
  TraceAnalysis a;
  a.events = events.size();
  a.events_dropped = dropped;

  std::map<int, NodeAttribution> nodes;
  std::map<std::pair<std::int32_t, std::int64_t>, HotPage> pages;
  std::map<std::pair<int, int>, std::uint64_t> conflicts;
  // Live wait-for edges: waiter -> the txns it waits on. Mirrors the lock
  // table's waiting set as the trace replays.
  std::map<std::uint64_t, std::vector<std::uint64_t>> out;

  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    const int node = e.node;
    switch (e.kind) {
      case TraceKind::PhaseTotal:
        add_phase(a.total, e.name, e.value);
        add_phase(node_slot(nodes, node), e.name, e.value);
        break;
      case TraceKind::Span:
        switch (e.name) {
          case TraceName::kTxn:
            ++a.total.txns;
            ++node_slot(nodes, node).txns;
            a.total.resp_s += e.dur;
            node_slot(nodes, node).resp_s += e.dur;
            break;
          case TraceName::kLockWait: {
            ++a.total.lock_waits;
            ++node_slot(nodes, node).lock_waits;
            a.total.lock_wait_s += e.dur;
            node_slot(nodes, node).lock_wait_s += e.dur;
            auto key = std::make_pair(e.aux,
                                      static_cast<std::int64_t>(e.value));
            HotPage& hp = pages[key];
            hp.partition = key.first;
            hp.page = key.second;
            ++hp.waits;
            hp.wait_s += e.dur;
            // The wait ended in a grant: retire this waiter's edges.
            out.erase(e.id);
            break;
          }
          case TraceName::kPageRequest:
            ++a.total.page_fetches;
            ++node_slot(nodes, node).page_fetches;
            a.total.page_fetch_s += e.dur;
            node_slot(nodes, node).page_fetch_s += e.dur;
            break;
          default:
            break;
        }
        break;
      case TraceKind::Instant:
        switch (e.name) {
          case TraceName::kWaitEdge: {
            // One batch of consecutive instants (same waiter, same time
            // stamp) is a full snapshot of that waiter's blocker set: the
            // lock table re-emits a waiter's edges whenever its page's queue
            // mutates, so a batch REPLACES whatever the waiter waited on
            // before. Apply it, then run the cycle check once — exactly like
            // the simulator's single check after enqueueing the waiter.
            const std::uint64_t waiter = e.id;
            auto& edges = out[waiter];
            edges.clear();
            std::size_t j = i;
            for (; j < events.size(); ++j) {
              const TraceEvent& f = events[j];
              if (f.kind != TraceKind::Instant ||
                  f.name != TraceName::kWaitEdge || f.id != waiter ||
                  f.t != e.t) {
                break;
              }
              const auto holder = static_cast<std::uint64_t>(f.value);
              edges.push_back(holder);
              ++a.wait_edges;
              ++conflicts[{f.node, static_cast<int>(holder >> kNodeShift)}];
            }
            i = j - 1;
            if (closes_cycle(out, waiter)) {
              ++a.cycles;
              out.erase(waiter);  // the waiter is the victim; wait cancelled
            }
            break;
          }
          case TraceName::kLockGrant:
            // Granted at the logical grant instant: the txn waits on nothing
            // until it blocks again. (The kLockWait span records later, when
            // the — possibly remote — waiter's coroutine resumes.)
            out.erase(e.id);
            break;
          case TraceName::kDeadlock:
            ++a.deadlock_instants;
            retire_txn(out, e.id);
            break;
          case TraceName::kRestart:
            ++a.total.restarts;
            ++node_slot(nodes, node).restarts;
            retire_txn(out, e.id);
            break;
          case TraceName::kCommit:
            retire_txn(out, e.id);
            break;
          default:
            break;
        }
        break;
      case TraceKind::Counter:
      case TraceKind::FlowBegin:
      case TraceKind::FlowEnd:
        break;
    }
  }

  const auto finish = [](NodeAttribution& n) {
    n.other_cc_s =
        std::max(0.0, n.cc_s - n.lock_wait_s - n.page_fetch_s);
  };
  finish(a.total);
  a.nodes.reserve(nodes.size());
  for (auto& [id, attr] : nodes) {
    (void)id;
    finish(attr);
    a.nodes.push_back(attr);
  }

  a.hot_pages.reserve(pages.size());
  for (const auto& [key, hp] : pages) {
    (void)key;
    a.hot_pages.push_back(hp);
  }
  std::sort(a.hot_pages.begin(), a.hot_pages.end(),
            [](const HotPage& x, const HotPage& y) {
              if (x.wait_s != y.wait_s) return x.wait_s > y.wait_s;
              if (x.partition != y.partition) return x.partition < y.partition;
              return x.page < y.page;
            });

  a.conflicts.reserve(conflicts.size());
  for (const auto& [key, edges] : conflicts) {
    a.conflicts.push_back(ConflictPair{key.first, key.second, edges});
  }
  std::sort(a.conflicts.begin(), a.conflicts.end(),
            [](const ConflictPair& x, const ConflictPair& y) {
              if (x.edges != y.edges) return x.edges > y.edges;
              if (x.waiter_node != y.waiter_node) {
                return x.waiter_node < y.waiter_node;
              }
              return x.holder_node < y.holder_node;
            });
  return a;
}

// ------------------------------------------------------------ trace parsing

namespace {

/// Reverse of to_string() for names that appear as spans or instants.
bool name_from_string(const std::string& s, TraceName& out) {
  for (int i = 0; i < static_cast<int>(TraceName::kCount); ++i) {
    const auto n = static_cast<TraceName>(i);
    if (s == to_string(n)) {
      out = n;
      return true;
    }
  }
  return false;
}

}  // namespace

bool parse_chrome_trace(const JsonValue& doc, std::vector<TraceEvent>& out,
                        std::uint64_t& dropped, std::string& error) {
  out.clear();
  dropped = 0;
  if (!doc.is_object()) {
    error = "trace document is not a JSON object";
    return false;
  }
  const JsonValue* other = doc.find("otherData");
  const JsonValue* schema = other ? other->find("schema") : nullptr;
  if (!schema || !schema->is_string() || schema->str != "gemsd.trace.v1") {
    error = "not a gemsd.trace.v1 document (otherData.schema missing)";
    return false;
  }
  dropped = static_cast<std::uint64_t>(
      num_or(other->find("events_dropped"), 0.0));
  const JsonValue* evs = doc.find("traceEvents");
  if (!evs || !evs->is_array()) {
    error = "traceEvents array missing";
    return false;
  }

  for (const JsonValue& je : evs->arr) {
    if (!je.is_object()) continue;
    const JsonValue* ph = je.find("ph");
    const JsonValue* name = je.find("name");
    if (!ph || !ph->is_string() || !name || !name->is_string()) continue;
    if (ph->str == "C") {
      // Counter track; the exporter suffixes ".node<N>" on per-node tracks
      // and parks every counter on pid 0 with the sample in args.value.
      std::string base = name->str;
      std::int16_t node = -1;
      if (const std::size_t pos = base.rfind(".node");
          pos != std::string::npos) {
        node = static_cast<std::int16_t>(std::atoi(base.c_str() + pos + 5));
        base.resize(pos);
      }
      TraceName tn;
      if (!name_from_string(base, tn)) continue;
      TraceEvent e;
      e.name = tn;
      e.kind = TraceKind::Counter;
      e.node = node;
      e.t = num_or(je.find("ts"), 0.0) * 1e-6;
      const JsonValue* args = je.find("args");
      e.value = args ? num_or(args->find("value"), 0.0) : 0.0;
      out.push_back(e);
      continue;
    }
    if (ph->str == "s" || ph->str == "f") {
      // Message flow: begin/end pairs stitched by the top-level id; the
      // optional top-level "v" is the long-message flag.
      TraceEvent e;
      e.kind = ph->str == "s" ? TraceKind::FlowBegin : TraceKind::FlowEnd;
      e.name = e.kind == TraceKind::FlowBegin ? TraceName::kMsgSend
                                              : TraceName::kMsgRecv;
      e.node = static_cast<std::int16_t>(num_or(je.find("pid"), 0.0) - 1.0);
      e.t = num_or(je.find("ts"), 0.0) * 1e-6;
      e.id = static_cast<std::uint64_t>(num_or(je.find("id"), 0.0));
      e.value = num_or(je.find("v"), 0.0);
      out.push_back(e);
      continue;
    }
    // Metadata records ("M") are presentation-only and stay behind.
    if (ph->str != "X" && ph->str != "i") continue;
    TraceName tn;
    if (!name_from_string(name->str, tn)) continue;

    TraceEvent e;
    e.name = tn;
    e.node = static_cast<std::int16_t>(num_or(je.find("pid"), 0.0) - 1.0);
    e.t = num_or(je.find("ts"), 0.0) * 1e-6;
    const JsonValue* args = je.find("args");
    e.id = static_cast<std::uint64_t>(
        args ? num_or(args->find("id"), 0.0) : 0.0);
    if (args) {
      e.value = num_or(args->find("v"), 0.0);
      e.aux = static_cast<std::int32_t>(num_or(args->find("p"), 0.0));
    }

    if (ph->str == "X") {
      e.kind = TraceKind::Span;
      e.dur = num_or(je.find("dur"), 0.0) * 1e-6;
      if (tn == TraceName::kTxn && args) {
        e.value = num_or(args->find("type"), 0.0);
        out.push_back(e);
        // Re-expand the folded phase totals (recorded at commit = span end).
        const sim::SimTime tc = e.t + e.dur;
        const std::pair<TraceName, const char*> phases[] = {
            {TraceName::kPhaseCpu, "cpu_ms"},
            {TraceName::kPhaseCpuWait, "cpu_wait_ms"},
            {TraceName::kPhaseIo, "io_ms"},
            {TraceName::kPhaseCc, "cc_ms"},
            {TraceName::kPhaseQueue, "mpl_wait_ms"},
        };
        for (const auto& [pn, key] : phases) {
          TraceEvent p;
          p.name = pn;
          p.kind = TraceKind::PhaseTotal;
          p.node = e.node;
          p.id = e.id;
          p.t = tc;
          p.value = num_or(args->find(key), 0.0) * 1e-3;
          out.push_back(p);
        }
        continue;
      }
    } else {
      e.kind = TraceKind::Instant;
    }
    out.push_back(e);
  }
  return true;
}

// ------------------------------------------------------------ reconciliation

Reconciliation reconcile(const TraceAnalysis& a, const JsonValue& metrics,
                         double tolerance) {
  Reconciliation r;
  const JsonValue* brk = metrics.find("breakdown_ms");
  const double commits = num_or(metrics.find("commits"), 0.0);
  const double txns =
      a.total.txns > 0 ? static_cast<double>(a.total.txns) : commits;
  const double per_txn_ms = txns > 0 ? 1e3 / txns : 0.0;

  const std::pair<const char*, double> buckets[] = {
      {"cpu", a.total.cpu_s},       {"cpu_wait", a.total.cpu_wait_s},
      {"io", a.total.io_s},         {"cc", a.total.cc_s},
      {"queue", a.total.queue_s},
  };
  r.ok = true;
  for (const auto& [key, sum_s] : buckets) {
    ReconcileLine line;
    line.phase = key;
    line.trace_ms = sum_s * per_txn_ms;
    line.reported_ms = brk ? num_or(brk->find(key), 0.0) : 0.0;
    line.rel_err = std::abs(line.trace_ms - line.reported_ms) /
                   std::max(std::abs(line.reported_ms), 1e-9);
    // Phases that are essentially zero on both sides always reconcile (the
    // relative error on a 1e-12 ms bucket is meaningless).
    if (line.trace_ms < 1e-6 && line.reported_ms < 1e-6) line.rel_err = 0.0;
    r.worst_rel_err = std::max(r.worst_rel_err, line.rel_err);
    if (line.rel_err > tolerance) r.ok = false;
    r.lines.push_back(line);
  }
  return r;
}

// ----------------------------------------------------------- run comparison

namespace {

struct RunRef {
  std::string key;
  const JsonValue* metrics = nullptr;
};

/// Identity of one sweep point inside a results document: config hash plus
/// label plus the bench-assigned run name (kernel micro-benches share one
/// config but differ by name).
std::vector<RunRef> index_runs(const JsonValue& doc, std::string& error) {
  std::vector<RunRef> refs;
  const JsonValue* schema = doc.find("schema");
  if (!schema || !schema->is_string() || schema->str != "gemsd.results.v1") {
    error = "not a gemsd.results.v1 document";
    return refs;
  }
  const JsonValue* runs = doc.find("runs");
  if (!runs || !runs->is_array()) {
    error = "runs array missing";
    return refs;
  }
  std::map<std::string, int> seen;
  for (const JsonValue& run : runs->arr) {
    RunRef ref;
    const JsonValue* hash = run.find("config_hash");
    const JsonValue* name = run.find("name");
    ref.metrics = run.find("metrics");
    const JsonValue* label = ref.metrics ? ref.metrics->find("label") : nullptr;
    ref.key = (hash && hash->is_string() ? hash->str : "?");
    ref.key += "|";
    ref.key += label && label->is_string() ? label->str : "?";
    if (name && name->is_string() && !name->str.empty()) {
      ref.key += "|" + name->str;
    }
    // Disambiguate genuinely identical sweep points by occurrence index.
    const int n = seen[ref.key]++;
    if (n > 0) ref.key += "#" + std::to_string(n);
    refs.push_back(ref);
  }
  return refs;
}

}  // namespace

CompareReport compare_results(const JsonValue& baseline,
                              const JsonValue& candidate, double tolerance) {
  CompareReport rep;
  std::string err_a, err_b;
  const std::vector<RunRef> base = index_runs(baseline, err_a);
  const std::vector<RunRef> cand = index_runs(candidate, err_b);
  if (!err_a.empty() || !err_b.empty()) {
    rep.error = !err_a.empty() ? "baseline: " + err_a : "candidate: " + err_b;
    return rep;
  }

  std::map<std::string, const JsonValue*> cand_by_key;
  for (const RunRef& c : cand) cand_by_key[c.key] = c.metrics;
  std::set<std::string> matched;

  for (const RunRef& b : base) {
    auto it = cand_by_key.find(b.key);
    if (it == cand_by_key.end() || !b.metrics || !it->second) {
      rep.unmatched_base.push_back(b.key);
      continue;
    }
    matched.insert(b.key);
    const JsonValue& mb = *b.metrics;
    const JsonValue& mc = *it->second;

    RunDelta d;
    d.key = b.key;
    d.base_resp_ms = num_or(mb.find("resp_ms"), 0.0);
    d.cand_resp_ms = num_or(mc.find("resp_ms"), 0.0);
    d.base_ci_ms = num_or(mb.find("resp_ci_ms"), 0.0);
    d.cand_ci_ms = num_or(mc.find("resp_ci_ms"), 0.0);
    d.base_tput = num_or(mb.find("throughput"), 0.0);
    d.cand_tput = num_or(mc.find("throughput"), 0.0);

    // Response: significant iff the delta clears BOTH the statistical band
    // (sum of the 95% CI half-widths; 0 for single-batch runs) and the
    // relative tolerance band.
    const double resp_delta = d.cand_resp_ms - d.base_resp_ms;
    const double resp_band =
        std::max(d.base_ci_ms + d.cand_ci_ms, tolerance * d.base_resp_ms);
    d.resp_regressed = resp_delta > resp_band && resp_band > 0.0;
    d.resp_improved = -resp_delta > resp_band && resp_band > 0.0;

    // Throughput carries no CI in the schema: relative band only.
    const double tput_band = tolerance * d.base_tput;
    d.tput_regressed = d.base_tput - d.cand_tput > tput_band && tput_band > 0.0;
    d.tput_improved = d.cand_tput - d.base_tput > tput_band && tput_band > 0.0;

    // Per-shard gating (additive "gem_shards" block): only when both
    // documents carry it with the same shard count — older baselines stay
    // comparable. A shard whose utilization or mean queue length grew beyond
    // the relative band regresses the pair even when the aggregate gem_util
    // averages out across shards.
    const JsonValue* sb = mb.find("gem_shards");
    const JsonValue* sc = mc.find("gem_shards");
    if (sb && sc && sb->is_array() && sc->is_array() &&
        sb->arr.size() == sc->arr.size()) {
      for (std::size_t i = 0; i < sb->arr.size(); ++i) {
        const double ub = num_or(sb->arr[i].find("util"), 0.0);
        const double uc = num_or(sc->arr[i].find("util"), 0.0);
        const double qb = num_or(sb->arr[i].find("queue_mean"), 0.0);
        const double qc = num_or(sc->arr[i].find("queue_mean"), 0.0);
        if ((uc - ub > tolerance * ub && ub > 0.0) ||
            (qc - qb > tolerance * qb && qb > 0.0)) {
          ++d.shard_regressions;
        }
      }
    }

    if (d.resp_regressed || d.tput_regressed || d.shard_regressions > 0) {
      ++rep.regressions;
    }
    if ((d.resp_improved || d.tput_improved) && !d.resp_regressed &&
        !d.tput_regressed && d.shard_regressions == 0) {
      ++rep.improvements;
    }
    rep.deltas.push_back(d);
  }
  for (const RunRef& c : cand) {
    if (!matched.count(c.key)) rep.unmatched_cand.push_back(c.key);
  }
  return rep;
}

// -------------------------------------------------------------- formatting

std::string format_analysis(const TraceAnalysis& a, int top_k) {
  std::string s;
  append(s, "trace: %llu events, %llu dropped\n",
         static_cast<unsigned long long>(a.events),
         static_cast<unsigned long long>(a.events_dropped));
  append(s,
         "%5s %8s %8s %10s | per-txn ms: %8s %8s %8s %9s %9s %8s %8s\n",
         "node", "txns", "restarts", "resp_ms", "cpu", "cpu_wait", "io",
         "lock_wait", "page_fet", "other_cc", "queue");
  const auto row = [&s](const NodeAttribution& n, const char* name) {
    const double per =
        n.txns > 0 ? 1e3 / static_cast<double>(n.txns) : 0.0;
    append(s,
           "%5s %8llu %8llu %10.2f |             %8.3f %8.3f %8.3f %9.3f "
           "%9.3f %8.3f %8.3f\n",
           name, static_cast<unsigned long long>(n.txns),
           static_cast<unsigned long long>(n.restarts), n.resp_s * per,
           n.cpu_s * per, n.cpu_wait_s * per, n.io_s * per,
           n.lock_wait_s * per, n.page_fetch_s * per, n.other_cc_s * per,
           n.queue_s * per);
  };
  row(a.total, "all");
  char buf[16];
  for (const NodeAttribution& n : a.nodes) {
    std::snprintf(buf, sizeof buf, "%d", n.node);
    row(n, buf);
  }

  append(s, "hot pages (top %d by lock-wait time):\n", top_k);
  const std::size_t np =
      std::min(a.hot_pages.size(), static_cast<std::size_t>(top_k));
  for (std::size_t i = 0; i < np; ++i) {
    const HotPage& hp = a.hot_pages[i];
    append(s, "  part %d page %lld: %llu waits, %.3f ms total\n", hp.partition,
           static_cast<long long>(hp.page),
           static_cast<unsigned long long>(hp.waits), hp.wait_s * 1e3);
  }
  if (a.hot_pages.empty()) append(s, "  (none)\n");

  append(s, "lock-conflict pairs (waiter node -> holder node):\n");
  const std::size_t nc =
      std::min(a.conflicts.size(), static_cast<std::size_t>(top_k));
  for (std::size_t i = 0; i < nc; ++i) {
    const ConflictPair& c = a.conflicts[i];
    append(s, "  %d -> %d: %llu edges\n", c.waiter_node, c.holder_node,
           static_cast<unsigned long long>(c.edges));
  }
  if (a.conflicts.empty()) append(s, "  (none)\n");

  append(s, "wait-for graph: %llu edges, %llu cycles (deadlock events: %llu)\n",
         static_cast<unsigned long long>(a.wait_edges),
         static_cast<unsigned long long>(a.cycles),
         static_cast<unsigned long long>(a.deadlock_instants));
  return s;
}

std::string format_reconciliation(const Reconciliation& r) {
  std::string s;
  append(s, "reconciliation (trace phase sums vs reported breakdown_ms):\n");
  for (const ReconcileLine& l : r.lines) {
    append(s, "  %-9s trace %10.4f ms  reported %10.4f ms  rel err %6.3f%%\n",
           l.phase.c_str(), l.trace_ms, l.reported_ms, l.rel_err * 1e2);
  }
  append(s, "  worst relative error %.3f%% -> %s\n", r.worst_rel_err * 1e2,
         r.ok ? "OK" : "MISMATCH");
  return s;
}

std::string format_compare(const CompareReport& r, double tolerance) {
  std::string s;
  append(s, "compare: tolerance %.1f%% + batch-means CIs\n", tolerance * 1e2);
  for (const RunDelta& d : r.deltas) {
    const char* flag = "";
    if (d.resp_regressed || d.tput_regressed || d.shard_regressions > 0) {
      flag = "  ** REGRESSION";
    } else if (d.resp_improved || d.tput_improved) {
      flag = "  improved";
    }
    const double resp_pct =
        d.base_resp_ms > 0.0
            ? (d.cand_resp_ms - d.base_resp_ms) / d.base_resp_ms * 1e2
            : 0.0;
    const double tput_pct =
        d.base_tput > 0.0 ? (d.cand_tput - d.base_tput) / d.base_tput * 1e2
                          : 0.0;
    append(s,
           "  %s: resp %.2f -> %.2f ms (%+.1f%%, ci ±%.2f/±%.2f), tput %.1f "
           "-> %.1f /s (%+.1f%%)%s\n",
           d.key.c_str(), d.base_resp_ms, d.cand_resp_ms, resp_pct,
           d.base_ci_ms, d.cand_ci_ms, d.base_tput, d.cand_tput, tput_pct,
           flag);
    if (d.shard_regressions > 0) {
      append(s, "    %d GEM shard(s) over the band (util or queue_mean)\n",
             d.shard_regressions);
    }
  }
  for (const std::string& k : r.unmatched_base) {
    append(s, "  only in baseline: %s\n", k.c_str());
  }
  for (const std::string& k : r.unmatched_cand) {
    append(s, "  only in candidate: %s\n", k.c_str());
  }
  append(s, "%d regressions, %d improvements, %zu+%zu unmatched\n",
         r.regressions, r.improvements, r.unmatched_base.size(),
         r.unmatched_cand.size());
  return s;
}

}  // namespace gemsd::obs
