#include "obs/resources.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <limits>

#include "obs/json.hpp"
#include "sim/resource.hpp"

namespace gemsd::obs {

int ResourceSet::find(const std::string& name) const {
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

void derive_resource_row(ResourceRow& row, double horizon,
                         std::uint64_t commits) {
  if (horizon > 0.0) {
    row.queue_mean = row.queue_integral_s / horizon;
    row.throughput = static_cast<double>(row.completions) / horizon;
    row.utilization =
        row.capacity > 0
            ? row.busy_s / (static_cast<double>(row.capacity) * horizon)
            : 0.0;
  }
  row.service_s = row.completions
                      ? row.busy_s / static_cast<double>(row.completions)
                      : 0.0;
  row.demand_s =
      commits ? row.busy_s / static_cast<double>(commits) : 0.0;
  row.saturation_tps = row.demand_s > 0.0
                           ? static_cast<double>(row.capacity) / row.demand_s
                           : 0.0;
}

ResourceRow resource_row(const sim::Resource& r, std::string name,
                         std::string kind, int node, double horizon,
                         std::uint64_t commits,
                         const std::vector<std::uint64_t>* buckets) {
  ResourceRow row;
  row.name = std::move(name);
  row.kind = std::move(kind);
  row.node = node;
  row.capacity = r.capacity();
  row.arrivals = r.arrivals();
  row.completions = r.completions();
  row.busy_s = r.busy_time();
  row.queue_integral_s = r.queue_integral();
  row.queue_mean = r.mean_queue_length();
  row.queue_max = r.queue_max();
  row.waited_s = r.waited_time();
  row.pending_wait_s = r.pending_wait_time();
  row.in_system_start = r.in_system_at_reset();
  row.in_system_end = r.in_system();
  const sim::MeanStat& ws = r.wait_stat();
  row.wait.count = ws.count();
  row.wait.sum_s = ws.sum();
  row.wait_max_s = ws.max();
  if (buckets) row.wait.buckets = *buckets;
  derive_resource_row(row, horizon, commits);
  return row;
}

// --- wait-sketch recorder ---------------------------------------------------

ResourceRecorder::ResourceRecorder(sim::LogBuckets layout) : layout_(layout) {}
ResourceRecorder::~ResourceRecorder() = default;

void ResourceRecorder::attach(sim::Resource& r) {
  for (const auto& [res, buckets] : store_) {
    if (res == &r) return;
  }
  auto buckets = std::make_unique<std::vector<std::uint64_t>>(
      static_cast<std::size_t>(layout_.size()), 0);
  r.set_wait_buckets(&layout_, buckets.get());
  store_.emplace_back(&r, std::move(buckets));
}

void ResourceRecorder::reset() {
  for (auto& [res, buckets] : store_) {
    std::fill(buckets->begin(), buckets->end(), 0);
  }
}

const std::vector<std::uint64_t>* ResourceRecorder::buckets_for(
    const sim::Resource& r) const {
  for (const auto& [res, buckets] : store_) {
    if (res == &r) return buckets.get();
  }
  return nullptr;
}

// --- operational-law reconciliation ----------------------------------------

namespace {

std::string strf(const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  return buf;
}

}  // namespace

std::vector<LawViolation> check_resource_laws(const ResourceSet& s,
                                              double tol) {
  std::vector<LawViolation> out;
  const double h = s.horizon();
  auto close = [&](double a, double b) {
    return std::abs(a - b) <=
           tol * std::max({1.0, std::abs(a), std::abs(b)});
  };
  auto flag = [&](const ResourceRow& r, std::string what) {
    out.push_back(LawViolation{r.name, std::move(what)});
  };
  for (const ResourceRow& r : s.rows) {
    // Flow balance is exact on the integer counters.
    const std::int64_t flow = static_cast<std::int64_t>(r.arrivals) -
                              static_cast<std::int64_t>(r.completions);
    const std::int64_t in_system =
        static_cast<std::int64_t>(r.in_system_end) -
        static_cast<std::int64_t>(r.in_system_start);
    if (flow != in_system) {
      flag(r, strf("flow balance: arrivals-completions=%lld but "
                   "in_system delta=%lld",
                   static_cast<long long>(flow),
                   static_cast<long long>(in_system)));
    }
    // Little's law as an identity on the time-integrals.
    if (!close(r.queue_integral_s, r.waited_s + r.pending_wait_s)) {
      flag(r, strf("Little identity: queue_integral %.12g != waited %.12g + "
                   "pending %.12g",
                   r.queue_integral_s, r.waited_s, r.pending_wait_s));
    }
    if (h > 0.0 && !close(r.queue_mean, r.queue_integral_s / h)) {
      flag(r, strf("queue_mean %.12g != queue_integral/horizon %.12g",
                   r.queue_mean, r.queue_integral_s / h));
    }
    if (h > 0.0 &&
        !close(r.throughput, static_cast<double>(r.completions) / h)) {
      flag(r, strf("throughput %.12g != completions/horizon %.12g",
                   r.throughput, static_cast<double>(r.completions) / h));
    }
    if (r.capacity > 0) {
      // Hard invariant: a c-server station cannot accrue more than c·H busy
      // server-seconds.
      const double cap_h = static_cast<double>(r.capacity) * h;
      if (r.busy_s > cap_h + tol * std::max(1.0, cap_h)) {
        flag(r, strf("busy %.12g s exceeds capacity*horizon %.12g s",
                     r.busy_s, cap_h));
      }
      // Utilization law: U = busy / (c·H), and by extension U = X_i·S_i.
      if (h > 0.0 && !close(r.utilization, r.busy_s / cap_h)) {
        flag(r, strf("utilization %.12g != busy/(capacity*horizon) %.12g",
                     r.utilization, r.busy_s / cap_h));
      }
      if (r.completions &&
          !close(r.service_s,
                 r.busy_s / static_cast<double>(r.completions))) {
        flag(r, strf("service %.12g != busy/completions %.12g", r.service_s,
                     r.busy_s / static_cast<double>(r.completions)));
      }
      if (s.commits &&
          !close(r.demand_s, r.busy_s / static_cast<double>(s.commits))) {
        flag(r, strf("demand %.12g != busy/commits %.12g", r.demand_s,
                     r.busy_s / static_cast<double>(s.commits)));
      }
    }
  }
  return out;
}

// --- bottleneck / capacity analysis ----------------------------------------

BottleneckReport analyze_bottleneck(const ResourceSet& s) {
  BottleneckReport rep;
  rep.measured_x = s.throughput;
  for (std::size_t i = 0; i < s.rows.size(); ++i) {
    if (s.rows[i].capacity > 0) rep.ranking.push_back(static_cast<int>(i));
  }
  std::sort(rep.ranking.begin(), rep.ranking.end(), [&](int a, int b) {
    if (s.rows[a].utilization != s.rows[b].utilization) {
      return s.rows[a].utilization > s.rows[b].utilization;
    }
    return s.rows[a].name < s.rows[b].name;  // deterministic tie-break
  });
  for (int i : rep.ranking) {
    if (s.rows[i].kind != "mpl") {
      rep.bottleneck = i;
      break;
    }
  }
  for (int i : rep.ranking) {
    if (s.rows[i].kind == "mpl" &&
        (rep.bottleneck < 0 ||
         s.rows[i].utilization >= s.rows[rep.bottleneck].utilization)) {
      rep.admission_limited = i;
      break;
    }
  }
  // Asymptotic bound: X · D_i = U_i · c_i ≤ c_i for every station, so
  // X_max = min_i c_i / D_i and measured ≤ bound on any consistent snapshot.
  rep.x_max = std::numeric_limits<double>::infinity();
  for (int i : rep.ranking) {
    const ResourceRow& r = s.rows[i];
    if (r.demand_s <= 0.0) continue;
    const double cap = static_cast<double>(r.capacity) / r.demand_s;
    if (cap < rep.x_max) {
      rep.x_max = cap;
      rep.x_max_station = i;
    }
  }
  if (rep.x_max_station < 0) rep.x_max = 0.0;
  rep.within_bound =
      rep.x_max_station < 0 || rep.measured_x <= rep.x_max * (1.0 + 1e-9);

  for (const double f : {1.5, 2.0}) {
    BottleneckReport::WhatIf w;
    w.factor = f;
    for (int i : rep.ranking) {
      if (f * s.rows[i].utilization >= 1.0 - 1e-9) w.saturated = true;
    }
    if (rep.bottleneck >= 0) {
      w.bottleneck_util = f * s.rows[rep.bottleneck].utilization;
    }
    w.throughput = f * rep.measured_x;
    if (rep.x_max_station >= 0 && w.throughput > rep.x_max) {
      w.throughput = rep.x_max;
    }
    // Asymptotic residence projection: each service station behaves as an
    // M/M/1-like server whose residence stretches by 1/(1-U) as utilization
    // scales; MPL pools are admission control, not service demand.
    for (int i : rep.ranking) {
      const ResourceRow& r = s.rows[i];
      if (r.kind == "mpl" || r.demand_s <= 0.0) continue;
      const double u = std::min(f * r.utilization, 0.995);
      w.resp_s += r.demand_s / (1.0 - u);
    }
    rep.whatifs.push_back(w);
  }

  if (rep.bottleneck >= 0) {
    const ResourceRow& b = s.rows[rep.bottleneck];
    for (const int k : {1, 2, 4, 8}) {
      // Hash-splitting the bottleneck K ways sends λ/K to each of K clones:
      // per-clone ρ = U/K, Lq per clone ρ²/(1−ρ), total K·Lq.
      BottleneckReport::Split sp;
      sp.ways = k;
      sp.rho = b.utilization / static_cast<double>(k);
      if (sp.rho < 1.0) {
        sp.queue_total =
            static_cast<double>(k) * sp.rho * sp.rho / (1.0 - sp.rho);
        sp.wait_s = sp.rho * b.service_s / (1.0 - sp.rho);
      } else {
        sp.queue_total = std::numeric_limits<double>::infinity();
        sp.wait_s = std::numeric_limits<double>::infinity();
      }
      rep.splits.push_back(sp);
    }
  }
  return rep;
}

std::string format_bottleneck_report(const ResourceSet& s,
                                     const BottleneckReport& r,
                                     const std::vector<LawViolation>& laws) {
  std::string out;
  out += strf("operational analysis: horizon %.6g s, commits %llu, "
              "X = %.6g /s\n",
              s.horizon(), static_cast<unsigned long long>(s.commits),
              s.throughput);
  out += strf("%-24s %-5s %5s %8s %12s %12s %12s %12s\n", "station", "kind",
              "cap", "util", "X_i/s", "S_i_us", "D_i_us", "sat_X/s");
  const std::size_t shown = std::min<std::size_t>(r.ranking.size(), 16);
  for (std::size_t j = 0; j < shown; ++j) {
    const ResourceRow& row = s.rows[r.ranking[j]];
    out += strf("%-24s %-5s %5d %8.4f %12.6g %12.6g %12.6g %12.6g\n",
                row.name.c_str(), row.kind.c_str(), row.capacity,
                row.utilization, row.throughput, row.service_s * 1e6,
                row.demand_s * 1e6, row.saturation_tps);
  }
  if (r.ranking.size() > shown) {
    out += strf("  ... %zu more stations\n", r.ranking.size() - shown);
  }
  if (r.bottleneck >= 0) {
    const ResourceRow& b = s.rows[r.bottleneck];
    out += strf("bottleneck: %s (kind %s, util %.4f, demand %.6g us, "
                "saturates at %.6g commits/s)\n",
                b.name.c_str(), b.kind.c_str(), b.utilization,
                b.demand_s * 1e6, b.saturation_tps);
  } else {
    out += "bottleneck: none (no service station with load)\n";
  }
  if (r.admission_limited >= 0) {
    const ResourceRow& m = s.rows[r.admission_limited];
    out += strf("admission: %s slot pool at util %.4f — admission-limited "
                "before hardware\n",
                m.name.c_str(), m.utilization);
  }
  if (r.x_max_station >= 0) {
    out += strf("throughput bound: X_max = %.6g /s at %s; measured %.6g /s "
                "[%s]\n",
                r.x_max, s.rows[r.x_max_station].name.c_str(), r.measured_x,
                r.within_bound ? "OK: measured <= bound" : "VIOLATED");
  }
  for (const auto& w : r.whatifs) {
    out += strf("what-if x%.1f arrivals: bottleneck util %.4f%s, "
                "throughput %.6g /s, resp %.6g ms\n",
                w.factor, w.bottleneck_util,
                w.saturated ? " SATURATED" : "", w.throughput,
                w.resp_s * 1e3);
  }
  if (r.bottleneck >= 0 && !r.splits.empty()) {
    const ResourceRow& b = s.rows[r.bottleneck];
    out += strf("splitting %s (M/M/1 projection, service %.6g us):\n",
                b.name.c_str(), b.service_s * 1e6);
    for (const auto& sp : r.splits) {
      out += strf("  K=%d: rho %.4f, total queue %.4g, wait %.6g us\n",
                  sp.ways, sp.rho, sp.queue_total, sp.wait_s * 1e6);
    }
  }
  if (laws.empty()) {
    out += strf("laws: all %zu stations reconcile (Little, utilization, "
                "flow balance)\n",
                s.rows.size());
  } else {
    for (const auto& v : laws) {
      out += strf("LAW VIOLATION %s: %s\n", v.resource.c_str(),
                  v.what.c_str());
    }
  }
  return out;
}

// --- JSON export / import ---------------------------------------------------

std::string resources_json(
    const ResourceSet& s,
    const std::vector<std::pair<std::string, std::string>>& metadata) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "gemsd.resources.v1");
  for (const auto& [key, raw] : metadata) {
    w.key(key);
    w.raw(raw);
  }
  w.kv("stats_start_s", s.stats_start);
  w.kv("end_s", s.end);
  w.kv("commits", s.commits);
  w.kv("throughput", s.throughput);
  w.key("sketch");
  w.begin_object();
  w.kv("lo_s", s.layout.lo());
  w.kv("hi_s", s.layout.hi());
  w.kv("bins", static_cast<std::int64_t>(s.layout.bins()));
  w.end_object();
  w.key("resources");
  w.begin_array();
  for (const ResourceRow& r : s.rows) {
    w.begin_object();
    w.kv("name", r.name);
    w.kv("kind", r.kind);
    w.kv("node", static_cast<std::int64_t>(r.node));
    w.kv("capacity", static_cast<std::int64_t>(r.capacity));
    w.kv("arrivals", r.arrivals);
    w.kv("completions", r.completions);
    w.kv("busy_s", r.busy_s);
    w.kv("queue_integral_s", r.queue_integral_s);
    w.kv("queue_mean", r.queue_mean);
    w.kv("queue_max", r.queue_max);
    w.kv("waited_s", r.waited_s);
    w.kv("pending_wait_s", r.pending_wait_s);
    w.kv("in_system_start", r.in_system_start);
    w.kv("in_system_end", r.in_system_end);
    w.key("wait");
    w.begin_object();
    w.kv("count", r.wait.count);
    w.kv("sum_s", r.wait.sum_s);
    w.kv("max_s", r.wait_max_s);
    // Sparse [index, count] pairs, like the time-series response sketches.
    w.key("buckets");
    w.begin_array();
    for (std::size_t b = 0; b < r.wait.buckets.size(); ++b) {
      if (r.wait.buckets[b] == 0) continue;
      w.begin_array();
      w.value(static_cast<std::uint64_t>(b));
      w.value(static_cast<std::uint64_t>(r.wait.buckets[b]));
      w.end_array();
    }
    w.end_array();
    w.end_object();
    w.kv("utilization", r.utilization);
    w.kv("throughput", r.throughput);
    w.kv("service_s", r.service_s);
    w.kv("demand_s", r.demand_s);
    w.kv("saturation_tps", r.saturation_tps);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

namespace {

double num_at(const JsonValue& v, const char* key, double dflt = 0.0) {
  const JsonValue* f = v.find(key);
  return f && f->is_number() ? f->num : dflt;
}

std::uint64_t u64_at(const JsonValue& v, const char* key) {
  return static_cast<std::uint64_t>(num_at(v, key));
}

std::string str_at(const JsonValue& v, const char* key) {
  const JsonValue* f = v.find(key);
  return f && f->is_string() ? f->str : std::string();
}

}  // namespace

bool resources_from_json(const JsonValue& doc, ResourceSet& out,
                         std::string& error) {
  if (!doc.is_object()) {
    error = "not a JSON object";
    return false;
  }
  const JsonValue* schema = doc.find("schema");
  if (!schema || !schema->is_string() ||
      schema->str != "gemsd.resources.v1") {
    error = "not a gemsd.resources.v1 document";
    return false;
  }
  out = ResourceSet{};
  out.stats_start = num_at(doc, "stats_start_s");
  out.end = num_at(doc, "end_s");
  out.commits = u64_at(doc, "commits");
  out.throughput = num_at(doc, "throughput");
  if (const JsonValue* sk = doc.find("sketch")) {
    out.layout = sim::LogBuckets(num_at(*sk, "lo_s", 1e-6),
                                 num_at(*sk, "hi_s", 100.0),
                                 static_cast<int>(num_at(*sk, "bins", 160)));
  }
  const JsonValue* rows = doc.find("resources");
  if (!rows || !rows->is_array()) {
    error = "missing resources array";
    return false;
  }
  for (const JsonValue& jr : rows->arr) {
    if (!jr.is_object()) {
      error = "resource row is not an object";
      return false;
    }
    ResourceRow r;
    r.name = str_at(jr, "name");
    r.kind = str_at(jr, "kind");
    r.node = static_cast<int>(num_at(jr, "node", -1));
    r.capacity = static_cast<int>(num_at(jr, "capacity"));
    r.arrivals = u64_at(jr, "arrivals");
    r.completions = u64_at(jr, "completions");
    r.busy_s = num_at(jr, "busy_s");
    r.queue_integral_s = num_at(jr, "queue_integral_s");
    r.queue_mean = num_at(jr, "queue_mean");
    r.queue_max = u64_at(jr, "queue_max");
    r.waited_s = num_at(jr, "waited_s");
    r.pending_wait_s = num_at(jr, "pending_wait_s");
    r.in_system_start = u64_at(jr, "in_system_start");
    r.in_system_end = u64_at(jr, "in_system_end");
    if (const JsonValue* wv = jr.find("wait")) {
      r.wait.count = u64_at(*wv, "count");
      r.wait.sum_s = num_at(*wv, "sum_s");
      r.wait_max_s = num_at(*wv, "max_s");
      if (const JsonValue* bk = wv->find("buckets");
          bk && bk->is_array() && !bk->arr.empty()) {
        r.wait.buckets.assign(static_cast<std::size_t>(out.layout.size()),
                              0);
        for (const JsonValue& pair : bk->arr) {
          if (!pair.is_array() || pair.arr.size() != 2) {
            error = "wait bucket entry is not an [index, count] pair";
            return false;
          }
          const std::size_t idx =
              static_cast<std::size_t>(pair.arr[0].num);
          if (idx >= r.wait.buckets.size()) {
            error = "wait bucket index out of range";
            return false;
          }
          r.wait.buckets[idx] =
              static_cast<std::uint64_t>(pair.arr[1].num);
        }
      }
    }
    r.utilization = num_at(jr, "utilization");
    r.throughput = num_at(jr, "throughput");
    r.service_s = num_at(jr, "service_s");
    r.demand_s = num_at(jr, "demand_s");
    r.saturation_tps = num_at(jr, "saturation_tps");
    out.rows.push_back(std::move(r));
  }
  return true;
}

}  // namespace gemsd::obs
