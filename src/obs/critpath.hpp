#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace gemsd::obs {

/// Critical-path profiler (tools/gemsd_analyze --critical-path): replay a
/// trace into per-transaction blocking chains and answer "where did the
/// response time of the slow transactions actually go?". Unlike the phase
/// buckets in analyze.hpp (which sum what each transaction *did*), the
/// critical path classifies every second of wall response time — including
/// lock waits resolved to what the *holder* was doing at that moment, message
/// round trips, and restart backoff — so the per-class seconds of one
/// transaction sum to its traced response time by construction.
///
/// Everything here is deterministic: same events in, same bytes out, at any
/// --jobs value (each simulation owns its recorder).

/// Wall-clock seconds of one transaction (or a sum over many) classified by
/// what the transaction was waiting on. The top-level classes partition the
/// response time; the lock_holder_* fields subdivide lock_wait_s by the
/// blocking holder's concurrent activity (scaled 1/|holders| under shared
/// blocking) and sum to lock_wait_s, not on top of it.
struct CritBreakdown {
  double cpu_s = 0;        ///< processor service
  double cpu_wait_s = 0;   ///< processor queueing (kCpu span's wait prefix)
  double mpl_wait_s = 0;   ///< input queue, waiting for an MPL slot
  double io_s = 0;         ///< device reads/writes/log outside commit
  double commit_io_s = 0;  ///< commit phase 1 (log force + FORCE writes)
  double page_fetch_s = 0; ///< direct page transfers from the owning node
  double gem_s = 0;        ///< GLT entry accesses in GEM (kGemAccess)
  double lock_wait_s = 0;  ///< blocked lock requests (total)
  // lock_wait_s by concurrent holder activity (blocking chain, one level):
  double lock_holder_cpu_s = 0;    ///< holder on / queued for a processor
  double lock_holder_io_s = 0;     ///< holder in disk I/O or a page fetch
  double lock_holder_lock_s = 0;   ///< holder itself blocked on a lock
  double lock_holder_gem_s = 0;    ///< holder accessing the GLT in GEM
  double lock_holder_other_s = 0;  ///< holder between spans (messages, ...)
  double lock_unattributed_s = 0;  ///< no live wait-for edge (grant delivery)
  double msg_s = 0;     ///< gaps overlapping message processing at the node
  double backoff_s = 0; ///< restart delay after a deadlock abort
  double other_s = 0;   ///< uncovered remainder (e.g. pre-window activity)

  /// Sum of the top-level classes — reconciles with the traced response.
  double total_s() const {
    return cpu_s + cpu_wait_s + mpl_wait_s + io_s + commit_io_s +
           page_fetch_s + gem_s + lock_wait_s + msg_s + backoff_s + other_s;
  }
  void add(const CritBreakdown& o);
};

/// One committed transaction's critical path.
struct TxnCritPath {
  std::uint64_t id = 0;
  int node = -1;
  double arrival_s = 0;
  double response_s = 0;  ///< traced txn span duration
  int restarts = 0;
  CritBreakdown path;     ///< path.total_s() == response_s (up to fp error)
};

/// Per-node critical-path sums over that node's committed transactions.
struct NodeCrit {
  int node = -1;
  std::uint64_t txns = 0;
  double response_s = 0;
  CritBreakdown sum;
};

/// Per-partition contention totals from the page-scoped spans on committed
/// transactions' critical paths.
struct PartitionCrit {
  std::int32_t partition = 0;
  std::uint64_t lock_waits = 0;
  double lock_wait_s = 0;
  double page_fetch_s = 0;
  double io_s = 0;
};

/// One response-time cohort ("all", "<=p50", "p50-p90", "p90-p99", ">p99"):
/// which classes dominate the transactions in that latency band. Cohort
/// bounds come from a histogram of the traced response times, so "what
/// dominates the p99 cohort" is a direct read.
struct CohortCrit {
  std::string label;
  double lo_s = 0, hi_s = 0;  ///< response-time band [lo, hi)
  std::uint64_t txns = 0;
  double response_s = 0;  ///< summed response of the cohort's transactions
  CritBreakdown sum;
};

struct CritPathAnalysis {
  std::uint64_t events = 0;
  std::uint64_t events_dropped = 0;
  std::uint64_t txns = 0;       ///< committed transactions profiled
  std::uint64_t restarts = 0;
  double response_s = 0;        ///< summed traced response time
  CritBreakdown total;          ///< summed over all committed transactions

  double p50_ms = 0, p90_ms = 0, p99_ms = 0;  ///< response percentiles

  std::vector<NodeCrit> nodes;            ///< ascending node id
  std::vector<PartitionCrit> partitions;  ///< lock_wait_s desc
  std::vector<CohortCrit> cohorts;        ///< all, <=p50, p50-p90, p90-p99, >p99

  /// Per-txn reconciliation: |path.total_s() - response_s| / response_s.
  std::uint64_t txns_within_tol = 0;  ///< within 1%
  double worst_rel_err = 0;
};

/// Compute the critical-path profile of a trace (native snapshot() order or
/// parse_chrome_trace output — message spans from an imported trace all carry
/// kMsgSend and are treated uniformly). `dropped` is the ring's overwrite
/// count; a nonzero value means early spans may be missing and their time
/// lands in the `other` class.
CritPathAnalysis critical_path(const std::vector<TraceEvent>& events,
                               std::uint64_t dropped);

/// Human-readable report (deterministic bytes).
std::string format_critical_path(const CritPathAnalysis& a, int top_k = 10);

/// "gemsd.critpath.v1" document (schemas/critpath.schema.json).
std::string critical_path_json(const CritPathAnalysis& a);

}  // namespace gemsd::obs
