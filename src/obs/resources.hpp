#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/timeseries.hpp"
#include "sim/stats.hpp"

namespace gemsd::sim {
class Resource;
}

namespace gemsd::obs {

struct JsonValue;

/// Operational-analysis layer (--resources): enumerates every queueing
/// station in a run — per-node CPU sets and MPL slot pools, each GEM shard's
/// port/GLT service, the network link, disk arms and controllers, lazily
/// built log groups, and the lock-table wait queue — and exports a
/// gemsd.resources.v1 document with per-station arrivals, completions, busy
/// server-seconds, queue-length integrals, the wait distribution on the
/// shared sim::LogBuckets sketch, and the derived operational quantities
/// (utilization U = busy/(c·H), throughput X_i, service time S_i, service
/// demand D_i = busy_i/commits). Everything is read from counters and
/// time-integrals sim::Resource already maintains: the recorder owns NO
/// scheduler events, so the metrics JSON is byte-identical with the layer on
/// or off at any engine kind and worker count (ctest- and CI-gated).
///
/// The same rows feed the operational-law auditors (--audit) and the
/// capacity analyzer (gemsd_analyze --bottleneck): because sim::Resource
/// tracks the in-horizon waiting time of completed and still-queued waiters
/// exactly, Little's law is checked as an *identity* on the time-integrals
///   queue_integral == waited + pending_wait
/// rather than as a statistical estimate, and the utilization law pins every
/// derived field to its raw numerator/denominator.

/// One queueing station's horizon totals plus derived operational metrics.
struct ResourceRow {
  std::string name;
  std::string kind;  ///< cpu | mpl | gem | net | disk | log | lock
  int node = -1;     ///< owning node; -1 = cluster-wide
  int capacity = 0;  ///< servers; 0 = pure delay station (no server laws)
  std::uint64_t arrivals = 0;
  std::uint64_t completions = 0;
  double busy_s = 0;            ///< busy server-seconds
  double queue_integral_s = 0;  ///< waiter-seconds (Little's left-hand side)
  double queue_mean = 0;
  std::uint64_t queue_max = 0;
  double waited_s = 0;        ///< in-horizon waiting of granted waiters
  double pending_wait_s = 0;  ///< in-horizon waiting of still-queued waiters
  std::uint64_t in_system_start = 0;  ///< busy + queued at stats reset
  std::uint64_t in_system_end = 0;    ///< busy + queued at snapshot
  TsSketch wait;  ///< per-acquisition waits; buckets empty unless recorded
  double wait_max_s = 0;
  // Derived (recomputed and reconciled from the raw fields by the analyzer).
  double utilization = 0;  ///< busy_s / (capacity · horizon)
  double throughput = 0;   ///< completions / horizon
  double service_s = 0;    ///< busy_s / completions
  double demand_s = 0;     ///< busy_s / commits: service demand per commit
  /// Commit rate at which this station alone saturates: capacity / demand.
  double saturation_tps = 0;
};

/// Snapshot of every station over one measurement horizon.
struct ResourceSet {
  double stats_start = 0;
  double end = 0;
  std::uint64_t commits = 0;
  double throughput = 0;  ///< commits / horizon: the run's measured X
  sim::LogBuckets layout;
  std::vector<ResourceRow> rows;

  double horizon() const { return end - stats_start; }
  /// Index of the named row, or -1.
  int find(const std::string& name) const;
};

/// Fill the derived fields of `row` from its raw fields.
void derive_resource_row(ResourceRow& row, double horizon,
                         std::uint64_t commits);

/// Build a row from a live station (raw totals + derived fields). `buckets`
/// is the recorder-owned dense wait histogram for this station, or null.
ResourceRow resource_row(const sim::Resource& r, std::string name,
                         std::string kind, int node, double horizon,
                         std::uint64_t commits,
                         const std::vector<std::uint64_t>* buckets);

/// Owns the per-station wait-histogram storage registered with
/// sim::Resource::set_wait_buckets. Buckets live here — not in the sim layer
/// — so recording costs one branch per acquisition when attached and nothing
/// when the flag is off.
class ResourceRecorder {
 public:
  explicit ResourceRecorder(sim::LogBuckets layout = sim::LogBuckets());
  ~ResourceRecorder();

  /// Register recorder-owned bucket storage with the station. Idempotent.
  void attach(sim::Resource& r);
  /// Zero all buckets (stats reset).
  void reset();
  const sim::LogBuckets& layout() const { return layout_; }
  /// Dense counts attached to `r`, or null when never attached.
  const std::vector<std::uint64_t>* buckets_for(const sim::Resource& r) const;

 private:
  sim::LogBuckets layout_;
  std::vector<std::pair<const sim::Resource*,
                        std::unique_ptr<std::vector<std::uint64_t>>>>
      store_;
};

/// One failed operational-law reconciliation.
struct LawViolation {
  std::string resource;
  std::string what;
};

/// Reconcile every row against the operational laws on a complete horizon:
/// busy ≤ capacity·horizon (hard invariant), the exact Little identity
/// queue_integral == waited + pending_wait, flow balance
/// arrivals − completions == in_system_end − in_system_start, and each
/// derived field against its raw numerator/denominator (utilization,
/// queue_mean, throughput, service time, demand). Pure-delay rows
/// (capacity 0) skip the server laws. `tol` is relative with a small
/// absolute floor; the defaults hold to near machine precision on every
/// shipped spec.
std::vector<LawViolation> check_resource_laws(const ResourceSet& s,
                                              double tol = 1e-6);

/// Capacity analysis of one snapshot (gemsd_analyze --bottleneck).
struct BottleneckReport {
  /// Service stations (capacity > 0) ranked by utilization, descending.
  std::vector<int> ranking;
  /// Cluster bottleneck: highest-utilization *physical* service station
  /// (MPL slot pools are admission control, not hardware, and are reported
  /// separately). -1 when the snapshot has no such station.
  int bottleneck = -1;
  /// Highest-utilization MPL pool at or above the bottleneck's utilization,
  /// -1 if none: the run is admission-limited before it is hardware-limited.
  int admission_limited = -1;
  /// Asymptotic throughput bound min_i capacity_i / demand_i (commits/s).
  double x_max = 0;
  int x_max_station = -1;
  double measured_x = 0;
  bool within_bound = true;  ///< measured_x ≤ x_max (must hold; exit 1)

  /// What-if projection at a multiple of the measured arrival rate.
  struct WhatIf {
    double factor = 1;
    double bottleneck_util = 0;  ///< f · U_b
    double throughput = 0;       ///< min(f · X, X_max)
    double resp_s = 0;           ///< Σ_i D_i / (1 − min(f·U_i, cap))
    bool saturated = false;      ///< some station reaches f·U_i ≥ 1
  };
  std::vector<WhatIf> whatifs;

  /// Bottleneck split K ways (e.g. GLT sharding): per-shard ρ = U_b/K, and
  /// the M/M/1 projections Lq_total = K·ρ²/(1−ρ), Wq = ρ·S/(1−ρ).
  struct Split {
    int ways = 1;
    double rho = 0;
    double queue_total = 0;
    double wait_s = 0;
  };
  std::vector<Split> splits;
};

BottleneckReport analyze_bottleneck(const ResourceSet& s);

/// Deterministic human-readable report (ranking table, bound check, what-if
/// and split projections, law-violation list when any).
std::string format_bottleneck_report(const ResourceSet& s,
                                     const BottleneckReport& r,
                                     const std::vector<LawViolation>& laws);

/// Serialize to the gemsd.resources.v1 document. `metadata` entries are
/// spliced verbatim as top-level key/raw-JSON pairs after "schema".
std::string resources_json(
    const ResourceSet& s,
    const std::vector<std::pair<std::string, std::string>>& metadata);

/// Parse a gemsd.resources.v1 document (as produced by resources_json).
bool resources_from_json(const JsonValue& doc, ResourceSet& out,
                         std::string& error);

}  // namespace gemsd::obs
