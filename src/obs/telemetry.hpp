#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace gemsd::obs {

struct EngProfile;
struct TsSeries;
struct ResourceSet;

/// One periodic-sampler observation (taken every ObsConfig::sample_every
/// simulated seconds, from t=0 — warm-up included, so convergence is
/// visible). Window quantities cover the interval since the previous sample.
struct Sample {
  sim::SimTime t = 0.0;
  double throughput = 0.0;      ///< commits/s in the window (whole cluster)
  double resp_ms = 0.0;         ///< mean response [ms] over the window
  std::uint64_t commits = 0;    ///< cumulative since last stats reset
  std::uint64_t aborts = 0;
  double active_txns = 0.0;     ///< admitted past the MPL gate, all nodes
  double mpl_waiting = 0.0;     ///< waiting for an MPL slot, all nodes
  double cpu_busy = 0.0;        ///< busy processors / processors (instant)
  double gem_busy = 0.0;        ///< busy GEM servers / servers (instant)
  double net_busy = 0.0;        ///< network link busy (instant, 0/1)
  double disk_queue = 0.0;      ///< pages queued at DB disk arms (instant)
  double sched_queue = 0.0;     ///< scheduler events pending (instant)
  bool in_warmup = false;       ///< taken before the measurement interval
};

/// Phase breakdown of one (slow) transaction, recorded at commit.
struct SlowTxn {
  std::uint64_t id = 0;
  std::int16_t node = -1;
  int type = 0;
  int restarts = 0;
  sim::SimTime arrival = 0.0;
  double response = 0.0;  ///< seconds
  double cpu = 0.0, cpu_wait = 0.0, io = 0.0, cc = 0.0, queue = 0.0;
};

/// Keeps the K slowest transactions seen since the last clear() (a min-heap
/// on response time; O(log K) per committed transaction, K is small).
class SlowTxnLog {
 public:
  explicit SlowTxnLog(std::size_t k = 0) : k_(k) {}

  void set_capacity(std::size_t k) { k_ = k; }
  std::size_t capacity() const { return k_; }

  void add(const SlowTxn& t) {
    if (k_ == 0) return;
    if (heap_.size() < k_) {
      heap_.push_back(t);
      std::push_heap(heap_.begin(), heap_.end(), faster);
      return;
    }
    if (t.response <= heap_.front().response) return;
    std::pop_heap(heap_.begin(), heap_.end(), faster);
    heap_.back() = t;
    std::push_heap(heap_.begin(), heap_.end(), faster);
  }

  void clear() { heap_.clear(); }

  /// Slowest first; ties broken by (arrival, id) so the order is
  /// deterministic at any --jobs value.
  std::vector<SlowTxn> sorted() const {
    std::vector<SlowTxn> out = heap_;
    std::sort(out.begin(), out.end(), [](const SlowTxn& a, const SlowTxn& b) {
      if (a.response != b.response) return a.response > b.response;
      if (a.arrival != b.arrival) return a.arrival < b.arrival;
      return a.id < b.id;
    });
    return out;
  }

 private:
  static bool faster(const SlowTxn& a, const SlowTxn& b) {
    if (a.response != b.response) return a.response > b.response;
    if (a.arrival != b.arrival) return a.arrival < b.arrival;
    return a.id < b.id;
  }

  std::size_t k_;
  std::vector<SlowTxn> heap_;
};

/// Everything one simulation run observed beyond the headline RunResult:
/// attached to RunResult as a shared_ptr so it flows through sweeps and
/// reporting without touching the table/CSV paths.
struct RunTelemetry {
  sim::SimTime stats_start = 0.0;  ///< measurement interval start
  sim::SimTime end = 0.0;          ///< simulation time at collection

  /// Flat {name, value} dump of every Metrics field plus Resource
  /// utilizations, queue depths and completion counts (the structured
  /// metrics exporter writes these under "detail").
  std::vector<std::pair<std::string, double>> detail;

  std::vector<Sample> samples;   ///< periodic sampler (from t=0)
  std::vector<SlowTxn> slowest;  ///< top-K by response, slowest first

  bool trace_enabled = false;
  std::vector<TraceEvent> events;    ///< measurement-interval trace
  std::uint64_t events_dropped = 0;  ///< overwritten in the ring

  /// Engine parallelism profile (--engine-profile; null when off). Wall-clock
  /// measurements of the engine itself — the only nondeterministic telemetry.
  std::shared_ptr<const EngProfile> engprof;

  /// Per-window time series (--timeseries; null when off). Simulation-time
  /// deterministic: bit-identical across engine kinds and worker counts.
  std::shared_ptr<const TsSeries> timeseries;

  /// Per-resource queueing snapshot (--resources; null when off). Read from
  /// counters sim::Resource maintains anyway, so it is simulation-time
  /// deterministic like the time series.
  std::shared_ptr<const ResourceSet> resources;
};

/// Serialize a run's trace as Chrome trace-event JSON (loadable in Perfetto
/// or chrome://tracing). `metadata` entries are {key, pre-serialized JSON
/// value} pairs merged into "otherData" (config fingerprint, seed, git).
/// Deterministic: same run -> same bytes, at any --jobs value.
std::string chrome_trace_json(
    const RunTelemetry& tel,
    const std::vector<std::pair<std::string, std::string>>& metadata);

}  // namespace gemsd::obs
