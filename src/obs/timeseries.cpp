#include "obs/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "obs/json.hpp"

namespace gemsd::obs {

// --- sketch ----------------------------------------------------------------

void TsSketch::add(const sim::LogBuckets& lb, double x) {
  if (buckets.empty()) buckets.assign(static_cast<std::size_t>(lb.size()), 0);
  ++buckets[static_cast<std::size_t>(lb.index(x))];
  ++count;
  sum_s += x;
}

void TsSketch::merge_from(const TsSketch& o) {
  if (o.count == 0) return;
  if (buckets.empty()) {
    buckets = o.buckets;
  } else {
    if (o.buckets.size() > buckets.size()) buckets.resize(o.buckets.size(), 0);
    for (std::size_t i = 0; i < o.buckets.size(); ++i) {
      buckets[i] += o.buckets[i];
    }
  }
  count += o.count;
  sum_s += o.sum_s;
}

// --- window ----------------------------------------------------------------

void TsWindow::merge_from(const TsWindow& o) {
  commits += o.commits;
  aborts += o.aborts;
  resp.merge_from(o.resp);
  if (o.nodes.size() > nodes.size()) nodes.resize(o.nodes.size());
  for (std::size_t n = 0; n < o.nodes.size(); ++n) {
    nodes[n].commits += o.nodes[n].commits;
    nodes[n].aborts += o.nodes[n].aborts;
    nodes[n].resp_sum_s += o.nodes[n].resp_sum_s;
  }
  events += o.events;
  lock_waits += o.lock_waits;
  deadlocks += o.deadlocks;
  hits += o.hits;
  misses += o.misses;
  msgs += o.msgs;
  cpu_busy_s += o.cpu_busy_s;
  gem_busy_s += o.gem_busy_s;
  net_busy_s += o.net_busy_s;
  disk_busy_s += o.disk_busy_s;
  if (o.station_busy_s.size() > station_busy_s.size()) {
    station_busy_s.resize(o.station_busy_s.size(), 0.0);
  }
  for (std::size_t i = 0; i < o.station_busy_s.size(); ++i) {
    station_busy_s[i] += o.station_busy_s[i];
  }
}

double TsSeries::window_end(std::size_t i) const {
  const double t1 = static_cast<double>(i + 1) * window_s;
  return end > 0 && end < t1 ? end : t1;
}

// --- recorder ---------------------------------------------------------------

TimeSeriesRecorder::TimeSeriesRecorder(double window_s, std::size_t cap,
                                       int nodes, sim::LogBuckets layout)
    : base_window_s_(window_s > 0 ? window_s : 0.5),
      window_s_(base_window_s_),
      cap_(std::max<std::size_t>(cap, 2)),
      nodes_(nodes),
      layout_(layout) {}

void TimeSeriesRecorder::set_capacities(double cpu, double gem, double net,
                                        double disk) {
  cpu_cap_ = cpu;
  gem_cap_ = gem;
  net_cap_ = net;
  disk_cap_ = disk;
}

void TimeSeriesRecorder::coarsen() {
  std::vector<TsWindow> merged((windows_.size() + 1) / 2);
  for (std::size_t j = 0; j < merged.size(); ++j) {
    merged[j] = std::move(windows_[2 * j]);
    if (2 * j + 1 < windows_.size()) merged[j].merge_from(windows_[2 * j + 1]);
  }
  windows_ = std::move(merged);
  window_s_ *= 2.0;
  ++coarsenings_;
  last_idx_ /= 2;
}

std::size_t TimeSeriesRecorder::index_for(sim::SimTime t) {
  if (t < 0) t = 0;
  auto idx = static_cast<std::size_t>(t / window_s_);
  while (idx >= cap_) {
    coarsen();
    idx = static_cast<std::size_t>(t / window_s_);
  }
  if (idx >= windows_.size()) {
    TsWindow fresh;
    fresh.nodes.resize(static_cast<std::size_t>(nodes_ > 0 ? nodes_ : 0));
    windows_.resize(idx + 1, fresh);
  }
  return idx;
}

TsWindow& TimeSeriesRecorder::window_for(sim::SimTime t) {
  return windows_[index_for(t)];
}

void TimeSeriesRecorder::poll_and_fold(sim::SimTime now) {
  if (now < prev_t_) now = prev_t_;
  TsCumulative cum = prev_;
  if (poller_) poller_(cum);
  const double span = now - prev_t_;
  if (span > 0) {
    // Counters are monotonic between rebases; guard the unsigned difference
    // anyway so a missed rebase degrades to a zero delta, never a wrap.
    const auto delta = [](std::uint64_t a, std::uint64_t b) {
      return a >= b ? static_cast<double>(a - b) : 0.0;
    };
    const double d_events = delta(cum.events, prev_.events);
    const double d_lock_waits = delta(cum.lock_waits, prev_.lock_waits);
    const double d_deadlocks = delta(cum.deadlocks, prev_.deadlocks);
    const double d_hits = delta(cum.hits, prev_.hits);
    const double d_misses = delta(cum.misses, prev_.misses);
    const double d_msgs = delta(cum.msgs, prev_.msgs);
    const double d_cpu = cum.cpu_busy_s - prev_.cpu_busy_s;
    const double d_gem = cum.gem_busy_s - prev_.gem_busy_s;
    const double d_net = cum.net_busy_s - prev_.net_busy_s;
    const double d_disk = cum.disk_busy_s - prev_.disk_busy_s;
    std::vector<double> d_station(stations_.size(), 0.0);
    for (std::size_t i = 0; i < d_station.size(); ++i) {
      const double c =
          i < cum.station_busy_s.size() ? cum.station_busy_s[i] : 0.0;
      const double p =
          i < prev_.station_busy_s.size() ? prev_.station_busy_s[i] : 0.0;
      d_station[i] = c - p;
    }

    sim::SimTime t0 = prev_t_;
    while (t0 < now) {
      const std::size_t idx = index_for(t0);
      double seg_end =
          std::min<double>(now, static_cast<double>(idx + 1) * window_s_);
      if (seg_end <= t0) seg_end = now;  // fp guard: always make progress
      const double f = (seg_end - t0) / span;
      TsWindow& w = windows_[idx];
      w.events += f * d_events;
      w.lock_waits += f * d_lock_waits;
      w.deadlocks += f * d_deadlocks;
      w.hits += f * d_hits;
      w.misses += f * d_misses;
      w.msgs += f * d_msgs;
      w.cpu_busy_s += f * d_cpu;
      w.gem_busy_s += f * d_gem;
      w.net_busy_s += f * d_net;
      w.disk_busy_s += f * d_disk;
      if (!d_station.empty() && w.station_busy_s.size() < d_station.size()) {
        w.station_busy_s.resize(d_station.size(), 0.0);
      }
      for (std::size_t i = 0; i < d_station.size(); ++i) {
        w.station_busy_s[i] += f * d_station[i];
      }
      t0 = seg_end;
    }
  }
  prev_ = cum;
  prev_t_ = now;
}

void TimeSeriesRecorder::on_commit(sim::SimTime t, int node,
                                   double response_s) {
  std::size_t idx = index_for(t);
  if (idx != last_idx_) {
    poll_and_fold(t);
    idx = index_for(t);  // the fold may have coarsened
    last_idx_ = idx;
  }
  TsWindow& w = windows_[idx];
  ++w.commits;
  w.resp.add(layout_, response_s);
  if (node >= 0 && static_cast<std::size_t>(node) < w.nodes.size()) {
    ++w.nodes[static_cast<std::size_t>(node)].commits;
    w.nodes[static_cast<std::size_t>(node)].resp_sum_s += response_s;
  }
}

void TimeSeriesRecorder::on_abort(sim::SimTime t, int node) {
  std::size_t idx = index_for(t);
  if (idx != last_idx_) {
    poll_and_fold(t);
    idx = index_for(t);
    last_idx_ = idx;
  }
  TsWindow& w = windows_[idx];
  ++w.aborts;
  if (node >= 0 && static_cast<std::size_t>(node) < w.nodes.size()) {
    ++w.nodes[static_cast<std::size_t>(node)].aborts;
  }
}

void TimeSeriesRecorder::fold(sim::SimTime now) {
  poll_and_fold(now);
  if (!windows_.empty()) last_idx_ = windows_.size() - 1;
}

void TimeSeriesRecorder::rebase(sim::SimTime now) {
  TsCumulative cum{};
  if (poller_) poller_(cum);
  prev_ = cum;
  prev_t_ = now;
}

TsSeries TimeSeriesRecorder::snapshot(sim::SimTime end) const {
  TsSeries s;
  s.base_window_s = base_window_s_;
  s.window_s = window_s_;
  s.coarsenings = coarsenings_;
  s.cap = cap_;
  s.nodes = nodes_;
  s.layout = layout_;
  s.stats_start = stats_start_;
  s.end = end;
  s.cpu_capacity = cpu_cap_;
  s.gem_capacity = gem_cap_;
  s.net_capacity = net_cap_;
  s.disk_capacity = disk_cap_;
  s.stations = stations_;
  s.windows = windows_;
  return s;
}

// --- JSON export / import ---------------------------------------------------

std::string timeseries_json(
    const TsSeries& s,
    const std::vector<std::pair<std::string, std::string>>& metadata) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "gemsd.timeseries.v1");
  for (const auto& [key, raw] : metadata) {
    w.key(key);
    w.raw(raw);
  }
  w.kv("base_window_s", s.base_window_s);
  w.kv("window_s", s.window_s);
  w.kv("coarsenings", static_cast<std::int64_t>(s.coarsenings));
  w.kv("cap", static_cast<std::uint64_t>(s.cap));
  w.kv("nodes", static_cast<std::int64_t>(s.nodes));
  w.kv("stats_start_s", s.stats_start);
  w.kv("end_s", s.end);
  w.key("sketch");
  w.begin_object();
  w.kv("lo_s", s.layout.lo());
  w.kv("hi_s", s.layout.hi());
  w.kv("bins", static_cast<std::int64_t>(s.layout.bins()));
  w.end_object();
  w.key("capacity");
  w.begin_object();
  w.kv("cpu", s.cpu_capacity);
  w.kv("gem", s.gem_capacity);
  w.kv("net", s.net_capacity);
  w.kv("disk", s.disk_capacity);
  w.end_object();
  // Additive v1 extension: the tracked-station list plus a per-window
  // "station_busy_s" array in the same order. Omitted entirely when no
  // station list was installed — documents written without the extension
  // keep their exact bytes.
  if (!s.stations.empty()) {
    w.key("stations");
    w.begin_array();
    for (const TsStation& st : s.stations) {
      w.begin_object();
      w.kv("name", st.name);
      w.kv("capacity", st.capacity);
      w.end_object();
    }
    w.end_array();
  }
  w.key("windows");
  w.begin_array();
  for (std::size_t i = 0; i < s.windows.size(); ++i) {
    const TsWindow& win = s.windows[i];
    w.begin_object();
    w.kv("t0_s", static_cast<double>(i) * s.window_s);
    w.kv("t1_s", s.window_end(i));
    w.kv("commits", static_cast<std::uint64_t>(win.commits));
    w.kv("aborts", static_cast<std::uint64_t>(win.aborts));
    w.kv("events", win.events);
    w.kv("lock_waits", win.lock_waits);
    w.kv("deadlocks", win.deadlocks);
    w.kv("hits", win.hits);
    w.kv("misses", win.misses);
    w.kv("msgs", win.msgs);
    w.key("busy_s");
    w.begin_object();
    w.kv("cpu", win.cpu_busy_s);
    w.kv("gem", win.gem_busy_s);
    w.kv("net", win.net_busy_s);
    w.kv("disk", win.disk_busy_s);
    w.end_object();
    if (!s.stations.empty()) {
      w.key("station_busy_s");
      w.begin_array();
      for (std::size_t b = 0; b < s.stations.size(); ++b) {
        w.value(b < win.station_busy_s.size() ? win.station_busy_s[b] : 0.0);
      }
      w.end_array();
    }
    w.key("resp");
    w.begin_object();
    w.kv("count", static_cast<std::uint64_t>(win.resp.count));
    w.kv("sum_s", win.resp.sum_s);
    // Sparse [index, count] pairs: response sketches occupy a handful of
    // the 162 buckets, so the dense vector never hits the wire.
    w.key("buckets");
    w.begin_array();
    for (std::size_t b = 0; b < win.resp.buckets.size(); ++b) {
      if (win.resp.buckets[b] == 0) continue;
      w.begin_array();
      w.value(static_cast<std::uint64_t>(b));
      w.value(static_cast<std::uint64_t>(win.resp.buckets[b]));
      w.end_array();
    }
    w.end_array();
    w.end_object();
    w.key("per_node");
    w.begin_array();
    for (const TsNodeWindow& n : win.nodes) {
      w.begin_object();
      w.kv("commits", static_cast<std::uint64_t>(n.commits));
      w.kv("aborts", static_cast<std::uint64_t>(n.aborts));
      w.kv("resp_sum_s", n.resp_sum_s);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

namespace {

double num_at(const JsonValue& v, const char* key, double dflt = 0.0) {
  const JsonValue* f = v.find(key);
  return f && f->is_number() ? f->num : dflt;
}

std::uint64_t u64_at(const JsonValue& v, const char* key) {
  return static_cast<std::uint64_t>(num_at(v, key));
}

}  // namespace

bool timeseries_from_json(const JsonValue& doc, TsSeries& out,
                          std::string& error) {
  if (!doc.is_object()) {
    error = "not a JSON object";
    return false;
  }
  const JsonValue* schema = doc.find("schema");
  if (!schema || !schema->is_string() ||
      schema->str != "gemsd.timeseries.v1") {
    error = "not a gemsd.timeseries.v1 document";
    return false;
  }
  out = TsSeries{};
  out.base_window_s = num_at(doc, "base_window_s", 0.5);
  out.window_s = num_at(doc, "window_s", out.base_window_s);
  if (out.window_s <= 0) {
    error = "window_s must be positive";
    return false;
  }
  out.coarsenings = static_cast<int>(num_at(doc, "coarsenings"));
  out.cap = static_cast<std::size_t>(num_at(doc, "cap", 512));
  out.nodes = static_cast<int>(num_at(doc, "nodes"));
  out.stats_start = num_at(doc, "stats_start_s");
  out.end = num_at(doc, "end_s");
  if (const JsonValue* sk = doc.find("sketch"); sk && sk->is_object()) {
    out.layout = sim::LogBuckets(num_at(*sk, "lo_s", 1e-6),
                                 num_at(*sk, "hi_s", 100.0),
                                 static_cast<int>(num_at(*sk, "bins", 160)));
  }
  if (const JsonValue* cp = doc.find("capacity"); cp && cp->is_object()) {
    out.cpu_capacity = num_at(*cp, "cpu");
    out.gem_capacity = num_at(*cp, "gem");
    out.net_capacity = num_at(*cp, "net");
    out.disk_capacity = num_at(*cp, "disk");
  }
  if (const JsonValue* st = doc.find("stations"); st && st->is_array()) {
    for (const JsonValue& js : st->arr) {
      TsStation s;
      if (const JsonValue* nm = js.find("name"); nm && nm->is_string()) {
        s.name = nm->str;
      }
      s.capacity = num_at(js, "capacity");
      out.stations.push_back(std::move(s));
    }
  }
  const JsonValue* windows = doc.find("windows");
  if (!windows || !windows->is_array()) {
    error = "missing windows array";
    return false;
  }
  out.windows.reserve(windows->arr.size());
  for (const JsonValue& jw : windows->arr) {
    TsWindow w;
    w.commits = u64_at(jw, "commits");
    w.aborts = u64_at(jw, "aborts");
    w.events = num_at(jw, "events");
    w.lock_waits = num_at(jw, "lock_waits");
    w.deadlocks = num_at(jw, "deadlocks");
    w.hits = num_at(jw, "hits");
    w.misses = num_at(jw, "misses");
    w.msgs = num_at(jw, "msgs");
    if (const JsonValue* b = jw.find("busy_s"); b && b->is_object()) {
      w.cpu_busy_s = num_at(*b, "cpu");
      w.gem_busy_s = num_at(*b, "gem");
      w.net_busy_s = num_at(*b, "net");
      w.disk_busy_s = num_at(*b, "disk");
    }
    if (const JsonValue* sb = jw.find("station_busy_s");
        sb && sb->is_array()) {
      for (const JsonValue& v : sb->arr) {
        w.station_busy_s.push_back(v.is_number() ? v.num : 0.0);
      }
    }
    if (const JsonValue* r = jw.find("resp"); r && r->is_object()) {
      w.resp.count = u64_at(*r, "count");
      w.resp.sum_s = num_at(*r, "sum_s");
      if (const JsonValue* bk = r->find("buckets");
          bk && bk->is_array() && w.resp.count > 0) {
        w.resp.buckets.assign(static_cast<std::size_t>(out.layout.size()), 0);
        for (const JsonValue& pair : bk->arr) {
          if (!pair.is_array() || pair.arr.size() != 2 ||
              !pair.arr[0].is_number() || !pair.arr[1].is_number()) {
            error = "malformed sketch bucket (expected [index, count])";
            return false;
          }
          const auto idx = static_cast<std::size_t>(pair.arr[0].num);
          if (idx >= w.resp.buckets.size()) {
            error = "sketch bucket index out of range";
            return false;
          }
          w.resp.buckets[idx] +=
              static_cast<std::uint64_t>(pair.arr[1].num);
        }
      }
    }
    if (const JsonValue* pn = jw.find("per_node"); pn && pn->is_array()) {
      for (const JsonValue& jn : pn->arr) {
        TsNodeWindow n;
        n.commits = u64_at(jn, "commits");
        n.aborts = u64_at(jn, "aborts");
        n.resp_sum_s = num_at(jn, "resp_sum_s");
        w.nodes.push_back(n);
      }
    }
    out.windows.push_back(std::move(w));
  }
  return true;
}

// --- analysis ---------------------------------------------------------------

namespace {

/// MSER truncation over a per-window series: the cut d minimizing the
/// squared standard error of the retained mean, sum((x_i - mean_d)^2) /
/// (n-d)^2 over i in [d, n). Restricted to d <= n/2 (the usual guard
/// against truncating into pure noise). Ties keep the smallest d.
std::size_t mser_cut(const std::vector<double>& x) {
  const std::size_t n = x.size();
  if (n < 4) return 0;
  // Suffix sums: O(n) for all candidate cuts.
  std::vector<double> s1(n + 1, 0.0), s2(n + 1, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    s1[i] = s1[i + 1] + x[i];
    s2[i] = s2[i + 1] + x[i] * x[i];
  }
  std::size_t best = 0;
  double best_z = std::numeric_limits<double>::infinity();
  for (std::size_t d = 0; d <= n / 2; ++d) {
    const double m = static_cast<double>(n - d);
    const double var_sum = s2[d] - s1[d] * s1[d] / m;
    const double z = std::max(var_sum, 0.0) / (m * m);
    if (z < best_z * (1.0 - 1e-12)) {
      best_z = z;
      best = d;
    }
  }
  return best;
}

/// MSER-5 (White): apply the MSER scan to batch means of 5 windows, not raw
/// windows. On a stationary series the raw statistic decays like 1/(n-d),
/// so any residual noise drags the cut toward the n/2 guard; batching damps
/// that while initialization bias still dominates the early batches. Falls
/// back to the raw scan when there are fewer than 4 batches. Returns the
/// cut in windows.
std::size_t mser5_cut(const std::vector<double>& x) {
  constexpr std::size_t kBatch = 5;
  const std::size_t k = x.size() / kBatch;
  if (k < 4) return mser_cut(x);
  std::vector<double> means(k);
  for (std::size_t j = 0; j < k; ++j) {
    double s = 0;
    for (std::size_t q = 0; q < kBatch; ++q) s += x[j * kBatch + q];
    means[j] = s / static_cast<double>(kBatch);
  }
  return mser_cut(means) * kBatch;
}

double tail_mean(const std::vector<double>& x, std::size_t from) {
  if (from >= x.size()) return 0;
  double s = 0;
  for (std::size_t i = from; i < x.size(); ++i) s += x[i];
  return s / static_cast<double>(x.size() - from);
}

/// The configured cut is fine when keeping [cfg, n) instead of MSER's
/// [cut, n) moves the retained mean by under 2.5% — deeper truncation that
/// does not change the answer is a statistical nicety, not a warm-up bug.
bool cut_bias_negligible(const std::vector<double>& x, std::size_t cfg,
                         std::size_t cut) {
  const double kept = tail_mean(x, cfg);
  const double mser = tail_mean(x, cut);
  return std::abs(kept - mser) <= 0.025 * std::max(std::abs(mser), 1e-12);
}

/// OLS trend over batch points (t_j, y_j): drift = statistically significant
/// slope AND a fitted change that matters relative to the mean.
TsTrend ols_trend(const std::vector<double>& t, const std::vector<double>& y) {
  TsTrend out;
  const std::size_t n = t.size();
  if (n < 4 || y.size() != n) return out;
  out.batches = static_cast<int>(n);
  double st = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    st += t[i];
    sy += y[i];
  }
  const double tbar = st / static_cast<double>(n);
  const double ybar = sy / static_cast<double>(n);
  double sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sxx += (t[i] - tbar) * (t[i] - tbar);
    sxy += (t[i] - tbar) * (y[i] - ybar);
  }
  if (sxx <= 0) return out;
  const double slope = sxy / sxx;
  double sse = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double fit = ybar + slope * (t[i] - tbar);
    sse += (y[i] - fit) * (y[i] - fit);
  }
  const double se =
      std::sqrt(std::max(sse, 0.0) / static_cast<double>(n - 2) / sxx);
  out.mean = ybar;
  out.slope_per_s = slope;
  out.t_stat = se > 0 ? slope / se : (slope == 0 ? 0.0 : 1e12);
  const double span = t.back() - t.front();
  out.rel_change =
      std::abs(slope) * span / std::max(std::abs(ybar), 1e-12);
  // |t| > 3.5 is ~p < 0.01 two-sided at the batch counts used here; the 5%
  // relative-change guard keeps statistically-detectable-but-tiny slopes
  // (long steady runs have tight standard errors) from failing CI.
  out.drifting = std::abs(out.t_stat) > 3.5 && out.rel_change > 0.05;
  return out;
}

}  // namespace

TsReport analyze_timeseries(const TsSeries& s) {
  TsReport r;
  r.windows = s.windows.size();
  r.window_s = s.window_s;
  r.configured_warmup_s = s.stats_start;
  if (s.windows.empty() || s.window_s <= 0) return r;

  const auto width = [&](std::size_t i) {
    return std::max(s.window_end(i) - static_cast<double>(i) * s.window_s,
                    1e-12);
  };

  // MSER warm-up estimate over the full run (recording starts at t=0).
  std::vector<double> thr(s.windows.size());
  bool all_committed = true;
  for (std::size_t i = 0; i < s.windows.size(); ++i) {
    thr[i] = static_cast<double>(s.windows[i].commits) / width(i);
    all_committed = all_committed && s.windows[i].resp.count > 0;
  }
  std::vector<double> resp;
  std::size_t cut = mser5_cut(thr);
  if (all_committed) {
    resp.resize(s.windows.size());
    for (std::size_t i = 0; i < s.windows.size(); ++i) {
      resp[i] = s.windows[i].resp.mean_s();
    }
    cut = std::max(cut, mser5_cut(resp));
  }
  r.mser_warmup_s = static_cast<double>(cut) * s.window_s;
  r.warmup_safe = r.configured_warmup_s >= r.mser_warmup_s - 1e-9;
  if (!r.warmup_safe) {
    // First window at/after the configured cut.
    std::size_t cfg_idx = s.windows.size();
    for (std::size_t i = 0; i < s.windows.size(); ++i) {
      if (static_cast<double>(i) * s.window_s >= s.stats_start - 1e-9) {
        cfg_idx = i;
        break;
      }
    }
    r.warmup_safe = cut_bias_negligible(thr, cfg_idx, cut) &&
                    (resp.empty() || cut_bias_negligible(resp, cfg_idx, cut));
  }

  // Stationarity over the measurement interval: batch the per-window series
  // and test the batch means for a trend.
  std::vector<std::size_t> meas;
  for (std::size_t i = 0; i < s.windows.size(); ++i) {
    if (static_cast<double>(i) * s.window_s >= s.stats_start - 1e-9) {
      meas.push_back(i);
    }
  }
  r.meas_windows = meas.size();
  const std::size_t b = std::min<std::size_t>(10, meas.size() / 2);
  if (b >= 4) {
    const std::size_t k = meas.size() / b;
    const std::size_t skip = meas.size() - b * k;  // drop the oldest remainder
    std::vector<double> bt, b_thr, b_resp;
    bool resp_ok = true;
    for (std::size_t j = 0; j < b; ++j) {
      double commits = 0, span = 0, resp_sum = 0, t_sum = 0;
      std::uint64_t resp_n = 0;
      for (std::size_t q = 0; q < k; ++q) {
        const std::size_t i = meas[skip + j * k + q];
        commits += static_cast<double>(s.windows[i].commits);
        span += width(i);
        resp_sum += s.windows[i].resp.sum_s;
        resp_n += s.windows[i].resp.count;
        t_sum += (static_cast<double>(i) + 0.5) * s.window_s;
      }
      bt.push_back(t_sum / static_cast<double>(k));
      b_thr.push_back(commits / std::max(span, 1e-12));
      if (resp_n == 0) resp_ok = false;
      b_resp.push_back(resp_n ? resp_sum / static_cast<double>(resp_n) : 0.0);
    }
    r.throughput = ols_trend(bt, b_thr);
    if (resp_ok) r.response = ols_trend(bt, b_resp);
  }
  r.drifting = r.throughput.drifting || r.response.drifting;
  return r;
}

namespace {

void append_trend(std::string& out, const char* name, const TsTrend& t,
                  double scale, const char* unit) {
  char buf[256];
  if (t.batches == 0) {
    std::snprintf(buf, sizeof(buf),
                  "  %-11s not enough measurement windows (inconclusive)\n",
                  name);
    out += buf;
    return;
  }
  std::snprintf(buf, sizeof(buf),
                "  %-11s mean %.4g %s, slope %+.4g %s/s, t=%.2f, "
                "change %.1f%% -> %s\n",
                name, t.mean * scale, unit, t.slope_per_s * scale, unit,
                t.t_stat, t.rel_change * 100.0,
                t.drifting ? "DRIFTING" : "steady");
  out += buf;
}

}  // namespace

std::string format_ts_report(const TsSeries& s, const TsReport& r) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "time series: %zu windows x %.4g s (%d coarsening%s), "
                "%zu in the measurement interval\n",
                r.windows, r.window_s, s.coarsenings,
                s.coarsenings == 1 ? "" : "s", r.meas_windows);
  out += buf;
  // A cut shorter than the recommendation can still be safe when the deeper
  // truncation would not move the retained means (cut_bias_negligible).
  const bool by_bias =
      r.warmup_safe && r.configured_warmup_s < r.mser_warmup_s - 1e-9;
  std::snprintf(buf, sizeof(buf),
                "warm-up: configured cut %.4g s, MSER-5 recommends %.4g s -> "
                "%s\n",
                r.configured_warmup_s, r.mser_warmup_s,
                r.warmup_safe
                    ? (by_bias ? "safe (no residual bias)" : "safe")
                    : "TOO SHORT");
  out += buf;
  out += "stationarity over the measurement interval (batch-means trend):\n";
  append_trend(out, "throughput:", r.throughput, 1.0, "tps");
  append_trend(out, "response:", r.response, 1e3, "ms");
  out += r.drifting ? "verdict: DRIFTING\n" : "verdict: steady\n";
  return out;
}

std::string timeseries_csv(const TsSeries& s) {
  std::string out =
      "t0_s,t1_s,in_warmup,commits,aborts,throughput_tps,resp_mean_ms,"
      "resp_p50_ms,resp_p95_ms,resp_p99_ms,events_per_s,lock_waits_per_s,"
      "deadlocks_per_s,hit_ratio,msgs_per_s,cpu_util,gem_util,net_util,"
      "disk_util";
  // Additive per-station utilization columns; absent for documents without
  // the station list, so existing consumers see the exact header they did.
  for (const TsStation& st : s.stations) out += ",util_" + st.name;
  out += "\n";
  const auto n = [](double v) { return JsonWriter::number(v); };
  for (std::size_t i = 0; i < s.windows.size(); ++i) {
    const TsWindow& w = s.windows[i];
    const double t0 = static_cast<double>(i) * s.window_s;
    const double t1 = s.window_end(i);
    const double width = std::max(t1 - t0, 1e-12);
    const bool warm = s.stats_start > 0 && t0 < s.stats_start;
    const double q50 = w.resp.quantile(s.layout, 0.50);
    const double q95 = w.resp.quantile(s.layout, 0.95);
    const double q99 = w.resp.quantile(s.layout, 0.99);
    out += n(t0) + "," + n(t1) + "," + (warm ? "1" : "0") + "," +
           std::to_string(w.commits) + "," + std::to_string(w.aborts) + "," +
           n(static_cast<double>(w.commits) / width) + "," +
           n(w.resp.mean_s() * 1e3) + "," + n(q50 * 1e3) + "," +
           n(q95 * 1e3) + "," + n(q99 * 1e3) + "," + n(w.events / width) +
           "," + n(w.lock_waits / width) + "," + n(w.deadlocks / width) +
           "," + n(sim::safe_ratio(w.hits, w.hits + w.misses)) + "," +
           n(w.msgs / width) + "," +
           n(sim::safe_ratio(w.cpu_busy_s, width * s.cpu_capacity)) + "," +
           n(sim::safe_ratio(w.gem_busy_s, width * s.gem_capacity)) + "," +
           n(sim::safe_ratio(w.net_busy_s, width * s.net_capacity)) + "," +
           n(sim::safe_ratio(w.disk_busy_s, width * s.disk_capacity));
    for (std::size_t b = 0; b < s.stations.size(); ++b) {
      const double busy =
          b < w.station_busy_s.size() ? w.station_busy_s[b] : 0.0;
      out += "," +
             n(sim::safe_ratio(busy, width * s.stations[b].capacity));
    }
    out += "\n";
  }
  return out;
}

}  // namespace gemsd::obs
