#include "obs/critpath.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <limits>
#include <map>
#include <utility>

#include "obs/json.hpp"
#include "sim/stats.hpp"

namespace gemsd::obs {

namespace {

/// Timestamp tolerance: Chrome export rounds microsecond timestamps through
/// %.12g, so an imported trace can be off by ~1e-11 s from the native one.
constexpr double kTol = 1e-9;

struct Span {
  double t0 = 0, t1 = 0;
  TraceName name = TraceName::kTxn;
  double value = 0;
  std::int32_t aux = 0;
};

/// Coverage priority when spans overlap: the most specific wait wins (a lock
/// wait encloses the message rounds that implement it; commit I/O encloses
/// the log append; a CPU burst may enclose a GEM access).
int priority(TraceName n) {
  switch (n) {
    case TraceName::kLockWait: return 7;
    case TraceName::kPageRequest: return 6;
    case TraceName::kCommitIo: return 5;
    case TraceName::kIoRead:
    case TraceName::kIoWrite:
    case TraceName::kIoLog: return 4;
    case TraceName::kGemAccess: return 3;
    case TraceName::kCpu: return 2;
    case TraceName::kMplWait: return 1;
    default: return 0;
  }
}

bool is_activity(TraceName n) { return priority(n) > 0; }

struct TxnData {
  std::vector<Span> spans;       ///< own activity spans, sorted by t0
  std::vector<double> restarts;  ///< restart instant times
  /// Blocker-set timeline: each wait.edge batch REPLACES the set (one entry
  /// per batch); grants / deadlocks / restarts push an empty set. The set
  /// live at time t is the last entry with timestamp <= t.
  std::vector<std::pair<double, std::vector<std::uint64_t>>> blockers;
  bool committed = false;
  double arrival = 0, commit = 0;
  int node = -1;
};

void CritBreakdownAddHolder(CritBreakdown& b, TraceName n, double s) {
  switch (n) {
    case TraceName::kCpu: b.lock_holder_cpu_s += s; break;
    case TraceName::kIoRead:
    case TraceName::kIoWrite:
    case TraceName::kIoLog:
    case TraceName::kCommitIo:
    case TraceName::kPageRequest: b.lock_holder_io_s += s; break;
    case TraceName::kLockWait: b.lock_holder_lock_s += s; break;
    case TraceName::kGemAccess: b.lock_holder_gem_s += s; break;
    default: b.lock_holder_other_s += s; break;
  }
}

/// Attribute [x, y) x scale to the holder's concurrent activity: a boundary
/// sweep over the holder's spans clipped to the window, highest priority
/// wins, uncovered time counts as holder_other (the holder was between
/// spans — message processing, scheduling).
void attribute_holder(const TxnData* holder, double x, double y, double scale,
                      CritBreakdown& b) {
  if (!holder) {
    b.lock_holder_other_s += (y - x) * scale;
    return;
  }
  std::vector<double> bounds{x, y};
  for (const Span& s : holder->spans) {
    if (s.t1 <= x || s.t0 >= y) continue;
    bounds.push_back(std::max(s.t0, x));
    bounds.push_back(std::min(s.t1, y));
  }
  std::sort(bounds.begin(), bounds.end());
  for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
    const double a = bounds[i], c = bounds[i + 1];
    if (c - a <= 0) continue;
    const double mid = 0.5 * (a + c);
    const Span* best = nullptr;
    int bp = 0;
    for (const Span& s : holder->spans) {
      if (s.t0 <= mid && mid < s.t1 && priority(s.name) > bp) {
        bp = priority(s.name);
        best = &s;
      }
    }
    if (best) {
      CritBreakdownAddHolder(b, best->name, (c - a) * scale);
    } else {
      b.lock_holder_other_s += (c - a) * scale;
    }
  }
}

void append(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

}  // namespace

void CritBreakdown::add(const CritBreakdown& o) {
  cpu_s += o.cpu_s;
  cpu_wait_s += o.cpu_wait_s;
  mpl_wait_s += o.mpl_wait_s;
  io_s += o.io_s;
  commit_io_s += o.commit_io_s;
  page_fetch_s += o.page_fetch_s;
  gem_s += o.gem_s;
  lock_wait_s += o.lock_wait_s;
  lock_holder_cpu_s += o.lock_holder_cpu_s;
  lock_holder_io_s += o.lock_holder_io_s;
  lock_holder_lock_s += o.lock_holder_lock_s;
  lock_holder_gem_s += o.lock_holder_gem_s;
  lock_holder_other_s += o.lock_holder_other_s;
  lock_unattributed_s += o.lock_unattributed_s;
  msg_s += o.msg_s;
  backoff_s += o.backoff_s;
  other_s += o.other_s;
}

CritPathAnalysis critical_path(const std::vector<TraceEvent>& events,
                               std::uint64_t dropped) {
  CritPathAnalysis a;
  a.events = events.size();
  a.events_dropped = dropped;

  // ---- pass 1: bucket the stream per transaction / per node -------------
  struct NodeMsgs {
    std::vector<std::pair<double, double>> iv;  ///< sorted by start
    double max_dur = 0;  ///< bounds the overlap-scan window
  };
  std::map<std::uint64_t, TxnData> txns;
  std::map<int, NodeMsgs> msgs;
  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case TraceKind::Span:
        if (e.name == TraceName::kMsgSend || e.name == TraceName::kMsgRecv) {
          if (e.node >= 0) {
            NodeMsgs& m = msgs[e.node];
            m.iv.emplace_back(e.t, e.t + e.dur);
            m.max_dur = std::max(m.max_dur, e.dur);
          }
        } else if (e.name == TraceName::kTxn) {
          TxnData& d = txns[e.id];
          d.committed = true;
          d.arrival = e.t;
          d.commit = e.t + e.dur;
          d.node = e.node;
        } else if (e.id != 0 && is_activity(e.name)) {
          txns[e.id].spans.push_back(
              Span{e.t, e.t + e.dur, e.name, e.value, e.aux});
        }
        break;
      case TraceKind::Instant:
        if (e.id == 0) break;
        if (e.name == TraceName::kRestart) {
          TxnData& d = txns[e.id];
          d.restarts.push_back(e.t);
          d.blockers.emplace_back(e.t, std::vector<std::uint64_t>{});
        } else if (e.name == TraceName::kWaitEdge) {
          auto& bl = txns[e.id].blockers;
          const auto holder = static_cast<std::uint64_t>(e.value);
          if (!bl.empty() && bl.back().first == e.t &&
              !bl.back().second.empty()) {
            bl.back().second.push_back(holder);  // same batch
          } else {
            bl.emplace_back(e.t, std::vector<std::uint64_t>{holder});
          }
        } else if (e.name == TraceName::kLockGrant ||
                   e.name == TraceName::kDeadlock) {
          txns[e.id].blockers.emplace_back(e.t,
                                           std::vector<std::uint64_t>{});
        }
        break;
      default:
        break;  // counters, flows, phase totals are not path inputs
    }
  }
  for (auto& [node, m] : msgs) {
    (void)node;
    std::sort(m.iv.begin(), m.iv.end());
  }
  for (auto& [id, d] : txns) {
    (void)id;
    std::stable_sort(d.spans.begin(), d.spans.end(),
                     [](const Span& x, const Span& y) { return x.t0 < y.t0; });
    std::stable_sort(d.blockers.begin(), d.blockers.end(),
                     [](const auto& x, const auto& y) {
                       return x.first < y.first;
                     });
  }

  // ---- pass 2: per-committed-txn boundary sweep -------------------------
  sim::Histogram resp_hist;
  std::vector<TxnCritPath> paths;
  std::map<int, NodeCrit> nodes;
  std::map<std::int32_t, PartitionCrit> parts;

  for (const auto& [id, d] : txns) {
    if (!d.committed || d.commit <= d.arrival) continue;
    const double a0 = d.arrival, a1 = d.commit;

    TxnCritPath p;
    p.id = id;
    p.node = d.node;
    p.arrival_s = a0;
    p.response_s = a1 - a0;
    p.restarts = static_cast<int>(d.restarts.size());

    std::vector<double> bounds{a0, a1};
    for (const Span& s : d.spans) {
      if (s.t1 <= a0 || s.t0 >= a1) continue;
      bounds.push_back(std::max(s.t0, a0));
      bounds.push_back(std::min(s.t1, a1));
      if (s.name == TraceName::kCpu) {
        const double split = s.t0 + s.value;  // queueing wait comes first
        if (split > a0 && split < a1) bounds.push_back(split);
      }
    }
    for (double r : d.restarts) {
      if (r > a0 && r < a1) bounds.push_back(r);
    }
    for (const auto& [t, set] : d.blockers) {
      (void)set;
      if (t > a0 && t < a1) bounds.push_back(t);
    }
    std::sort(bounds.begin(), bounds.end());

    // Uncovered elementary intervals merge into gap runs so a multi-boundary
    // gap (e.g. a restart delay crossed by blocker-timeline entries) is
    // classified once, by where the run starts.
    double gap_start = 0, gap_end = 0;
    bool in_gap = false;
    const auto flush_gap = [&] {
      if (!in_gap) return;
      in_gap = false;
      const double len = gap_end - gap_start;
      if (len <= 0) return;
      for (double r : d.restarts) {
        if (std::fabs(r - gap_start) <= kTol) {
          p.path.backoff_s += len;
          return;
        }
      }
      // Message gap: any message processing at this node overlaps the run
      // (the request leaves during the gap and/or the reply lands at its
      // end).
      auto mi = msgs.find(d.node);
      if (mi != msgs.end()) {
        const auto& iv = mi->second.iv;
        auto j = std::lower_bound(
            iv.begin(), iv.end(),
            std::make_pair(gap_start - mi->second.max_dur - kTol, 0.0));
        for (; j != iv.end() && j->first < gap_end - kTol; ++j) {
          if (j->second > gap_start + kTol) {
            p.path.msg_s += len;
            return;
          }
        }
      }
      p.path.other_s += len;
    };

    for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
      const double x = bounds[i], y = bounds[i + 1];
      if (y - x <= 0) continue;
      const double mid = 0.5 * (x + y);
      const Span* best = nullptr;
      int bp = 0;
      for (const Span& s : d.spans) {
        if (s.t0 <= mid && mid < s.t1 && priority(s.name) > bp) {
          bp = priority(s.name);
          best = &s;
        }
      }
      if (!best) {
        if (in_gap && std::fabs(gap_end - x) <= kTol) {
          gap_end = y;
        } else {
          flush_gap();
          in_gap = true;
          gap_start = x;
          gap_end = y;
        }
        continue;
      }
      flush_gap();
      const double len = y - x;
      switch (best->name) {
        case TraceName::kLockWait: {
          p.path.lock_wait_s += len;
          parts[best->aux].lock_wait_s += len;
          // Resolve the wait to the holders' concurrent activity.
          const std::vector<std::uint64_t>* set = nullptr;
          for (const auto& [t, s] : d.blockers) {
            if (t <= mid) set = &s;
            else break;
          }
          if (!set || set->empty()) {
            p.path.lock_unattributed_s += len;
          } else {
            const double share = 1.0 / static_cast<double>(set->size());
            for (std::uint64_t h : *set) {
              auto hi = txns.find(h);
              attribute_holder(hi == txns.end() ? nullptr : &hi->second, x, y,
                               share, p.path);
            }
          }
          break;
        }
        case TraceName::kPageRequest:
          p.path.page_fetch_s += len;
          parts[best->aux].page_fetch_s += len;
          break;
        case TraceName::kCommitIo: p.path.commit_io_s += len; break;
        case TraceName::kIoRead:
        case TraceName::kIoWrite:
        case TraceName::kIoLog:
          p.path.io_s += len;
          parts[best->aux].io_s += len;
          break;
        case TraceName::kGemAccess: p.path.gem_s += len; break;
        case TraceName::kCpu:
          if (mid < best->t0 + best->value) p.path.cpu_wait_s += len;
          else p.path.cpu_s += len;
          break;
        case TraceName::kMplWait: p.path.mpl_wait_s += len; break;
        default: break;
      }
    }
    flush_gap();

    // Partition lock-wait counts (one per blocked request on the path).
    for (const Span& s : d.spans) {
      if (s.name == TraceName::kLockWait && s.t1 > a0 && s.t0 < a1) {
        ++parts[s.aux].lock_waits;
      }
    }

    const double rel =
        std::fabs(p.path.total_s() - p.response_s) /
        std::max(p.response_s, 1e-12);
    if (rel <= 0.01) ++a.txns_within_tol;
    a.worst_rel_err = std::max(a.worst_rel_err, rel);

    ++a.txns;
    a.restarts += static_cast<std::uint64_t>(p.restarts);
    a.response_s += p.response_s;
    a.total.add(p.path);
    NodeCrit& nc = nodes[d.node];
    nc.node = d.node;
    ++nc.txns;
    nc.response_s += p.response_s;
    nc.sum.add(p.path);
    resp_hist.add(p.response_s);
    paths.push_back(std::move(p));
  }

  // ---- percentiles and tail cohorts -------------------------------------
  const double p50 = resp_hist.quantile(0.50);
  const double p90 = resp_hist.quantile(0.90);
  const double p99 = resp_hist.quantile(0.99);
  a.p50_ms = p50 * 1e3;
  a.p90_ms = p90 * 1e3;
  a.p99_ms = p99 * 1e3;

  const double inf = std::numeric_limits<double>::infinity();
  const std::pair<const char*, std::pair<double, double>> bands[] = {
      {"all", {0.0, inf}},
      {"<=p50", {0.0, p50}},
      {"p50-p90", {p50, p90}},
      {"p90-p99", {p90, p99}},
      {">p99", {p99, inf}},
  };
  for (const auto& [label, band] : bands) {
    CohortCrit c;
    c.label = label;
    c.lo_s = band.first;
    c.hi_s = band.second;
    a.cohorts.push_back(c);
  }
  for (const TxnCritPath& p : paths) {
    const auto tally = [&](CohortCrit& c) {
      ++c.txns;
      c.response_s += p.response_s;
      c.sum.add(p.path);
    };
    tally(a.cohorts[0]);
    if (p.response_s <= p50) tally(a.cohorts[1]);
    else if (p.response_s <= p90) tally(a.cohorts[2]);
    else if (p.response_s <= p99) tally(a.cohorts[3]);
    else tally(a.cohorts[4]);
  }

  a.nodes.reserve(nodes.size());
  for (const auto& [n, nc] : nodes) {
    (void)n;
    a.nodes.push_back(nc);
  }
  a.partitions.reserve(parts.size());
  for (const auto& [pid, pc] : parts) {
    PartitionCrit out = pc;
    out.partition = pid;
    a.partitions.push_back(out);
  }
  std::sort(a.partitions.begin(), a.partitions.end(),
            [](const PartitionCrit& x, const PartitionCrit& y) {
              if (x.lock_wait_s != y.lock_wait_s) {
                return x.lock_wait_s > y.lock_wait_s;
              }
              return x.partition < y.partition;
            });
  return a;
}

// ------------------------------------------------------------- formatting

namespace {

/// Mean per-txn milliseconds for one class, plus share of the response.
void line(std::string& out, const char* label, double class_s, double txns,
          double resp_s) {
  const double mean_ms = txns > 0 ? class_s * 1e3 / txns : 0.0;
  const double share = resp_s > 0 ? 100.0 * class_s / resp_s : 0.0;
  append(out, "  %-18s %9.3f ms  %5.1f%%\n", label, mean_ms, share);
}

}  // namespace

std::string format_critical_path(const CritPathAnalysis& a, int top_k) {
  std::string out;
  append(out, "critical-path profile: %llu committed txns, %llu events",
         static_cast<unsigned long long>(a.txns),
         static_cast<unsigned long long>(a.events));
  if (a.events_dropped > 0) {
    append(out, " (%llu dropped; early spans may land in 'other')",
           static_cast<unsigned long long>(a.events_dropped));
  }
  append(out, "\n");
  const double txns = static_cast<double>(a.txns);
  append(out,
         "response: mean %.3f ms  p50 %.3f ms  p90 %.3f ms  p99 %.3f ms\n",
         a.txns > 0 ? a.response_s * 1e3 / txns : 0.0, a.p50_ms, a.p90_ms,
         a.p99_ms);
  append(out,
         "reconciliation: %llu/%llu txns within 1%% of traced response "
         "(worst rel err %.2e)\n\n",
         static_cast<unsigned long long>(a.txns_within_tol),
         static_cast<unsigned long long>(a.txns), a.worst_rel_err);

  append(out, "per-txn critical path (mean, share of response):\n");
  const CritBreakdown& b = a.total;
  line(out, "cpu", b.cpu_s, txns, a.response_s);
  line(out, "cpu.wait", b.cpu_wait_s, txns, a.response_s);
  line(out, "mpl.wait", b.mpl_wait_s, txns, a.response_s);
  line(out, "io", b.io_s, txns, a.response_s);
  line(out, "commit.io", b.commit_io_s, txns, a.response_s);
  line(out, "page.fetch", b.page_fetch_s, txns, a.response_s);
  line(out, "gem", b.gem_s, txns, a.response_s);
  line(out, "lock.wait", b.lock_wait_s, txns, a.response_s);
  line(out, "  holder.cpu", b.lock_holder_cpu_s, txns, a.response_s);
  line(out, "  holder.io", b.lock_holder_io_s, txns, a.response_s);
  line(out, "  holder.lock", b.lock_holder_lock_s, txns, a.response_s);
  line(out, "  holder.gem", b.lock_holder_gem_s, txns, a.response_s);
  line(out, "  holder.other", b.lock_holder_other_s, txns, a.response_s);
  line(out, "  unattributed", b.lock_unattributed_s, txns, a.response_s);
  line(out, "msg", b.msg_s, txns, a.response_s);
  line(out, "backoff", b.backoff_s, txns, a.response_s);
  line(out, "other", b.other_s, txns, a.response_s);

  append(out, "\ntail cohorts (mean ms per txn):\n");
  append(out,
         "  %-8s %6s %9s %8s %8s %8s %8s %8s %8s\n", "cohort", "txns",
         "resp", "cpu", "io", "lock", "gem", "msg", "queue");
  for (const CohortCrit& c : a.cohorts) {
    const double n = c.txns > 0 ? static_cast<double>(c.txns) : 1.0;
    append(out, "  %-8s %6llu %9.3f %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n",
           c.label.c_str(), static_cast<unsigned long long>(c.txns),
           c.response_s * 1e3 / n,
           (c.sum.cpu_s + c.sum.cpu_wait_s) * 1e3 / n,
           (c.sum.io_s + c.sum.commit_io_s + c.sum.page_fetch_s) * 1e3 / n,
           c.sum.lock_wait_s * 1e3 / n, c.sum.gem_s * 1e3 / n,
           c.sum.msg_s * 1e3 / n,
           (c.sum.mpl_wait_s + c.sum.backoff_s) * 1e3 / n);
  }

  if (!a.nodes.empty()) {
    append(out, "\nper-node (mean ms per txn):\n");
    append(out, "  %-5s %6s %9s %8s %8s %8s %8s\n", "node", "txns", "resp",
           "cpu", "io", "lock", "gem");
    for (const NodeCrit& nc : a.nodes) {
      const double n = nc.txns > 0 ? static_cast<double>(nc.txns) : 1.0;
      append(out, "  %-5d %6llu %9.3f %8.3f %8.3f %8.3f %8.3f\n", nc.node,
             static_cast<unsigned long long>(nc.txns),
             nc.response_s * 1e3 / n,
             (nc.sum.cpu_s + nc.sum.cpu_wait_s) * 1e3 / n,
             (nc.sum.io_s + nc.sum.commit_io_s + nc.sum.page_fetch_s) * 1e3 /
                 n,
             nc.sum.lock_wait_s * 1e3 / n, nc.sum.gem_s * 1e3 / n);
    }
  }

  if (!a.partitions.empty()) {
    append(out, "\ntop partitions by lock wait:\n");
    append(out, "  %-9s %10s %12s %12s %12s\n", "partition", "lock.waits",
           "lock.wait_s", "page.fetch_s", "io_s");
    int shown = 0;
    for (const PartitionCrit& pc : a.partitions) {
      if (shown++ >= top_k) break;
      append(out, "  %-9d %10llu %12.4f %12.4f %12.4f\n", pc.partition,
             static_cast<unsigned long long>(pc.lock_waits), pc.lock_wait_s,
             pc.page_fetch_s, pc.io_s);
    }
  }
  return out;
}

namespace {

void write_breakdown(JsonWriter& w, const CritBreakdown& b) {
  w.begin_object();
  w.kv("cpu_s", b.cpu_s);
  w.kv("cpu_wait_s", b.cpu_wait_s);
  w.kv("mpl_wait_s", b.mpl_wait_s);
  w.kv("io_s", b.io_s);
  w.kv("commit_io_s", b.commit_io_s);
  w.kv("page_fetch_s", b.page_fetch_s);
  w.kv("gem_s", b.gem_s);
  w.kv("lock_wait_s", b.lock_wait_s);
  w.kv("lock_holder_cpu_s", b.lock_holder_cpu_s);
  w.kv("lock_holder_io_s", b.lock_holder_io_s);
  w.kv("lock_holder_lock_s", b.lock_holder_lock_s);
  w.kv("lock_holder_gem_s", b.lock_holder_gem_s);
  w.kv("lock_holder_other_s", b.lock_holder_other_s);
  w.kv("lock_unattributed_s", b.lock_unattributed_s);
  w.kv("msg_s", b.msg_s);
  w.kv("backoff_s", b.backoff_s);
  w.kv("other_s", b.other_s);
  w.kv("total_s", b.total_s());
  w.end_object();
}

}  // namespace

std::string critical_path_json(const CritPathAnalysis& a) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "gemsd.critpath.v1");
  w.kv("events", a.events);
  w.kv("events_dropped", a.events_dropped);
  w.kv("txns", a.txns);
  w.kv("restarts", a.restarts);
  w.kv("response_s", a.response_s);
  w.key("percentiles_ms");
  w.begin_object();
  w.kv("p50", a.p50_ms);
  w.kv("p90", a.p90_ms);
  w.kv("p99", a.p99_ms);
  w.end_object();
  w.key("reconciliation");
  w.begin_object();
  w.kv("txns", a.txns);
  w.kv("within_1pct", a.txns_within_tol);
  w.kv("fraction",
       a.txns > 0 ? static_cast<double>(a.txns_within_tol) /
                        static_cast<double>(a.txns)
                  : 1.0);
  w.kv("worst_rel_err", a.worst_rel_err);
  w.end_object();
  w.key("total");
  write_breakdown(w, a.total);
  w.key("nodes");
  w.begin_array();
  for (const NodeCrit& nc : a.nodes) {
    w.begin_object();
    w.kv("node", static_cast<std::int64_t>(nc.node));
    w.kv("txns", nc.txns);
    w.kv("response_s", nc.response_s);
    w.key("path");
    write_breakdown(w, nc.sum);
    w.end_object();
  }
  w.end_array();
  w.key("partitions");
  w.begin_array();
  for (const PartitionCrit& pc : a.partitions) {
    w.begin_object();
    w.kv("partition", static_cast<std::int64_t>(pc.partition));
    w.kv("lock_waits", pc.lock_waits);
    w.kv("lock_wait_s", pc.lock_wait_s);
    w.kv("page_fetch_s", pc.page_fetch_s);
    w.kv("io_s", pc.io_s);
    w.end_object();
  }
  w.end_array();
  w.key("cohorts");
  w.begin_array();
  for (const CohortCrit& c : a.cohorts) {
    w.begin_object();
    w.kv("label", c.label);
    w.kv("lo_ms", c.lo_s * 1e3);
    // -1 marks an unbounded upper edge (JSON has no infinity).
    w.kv("hi_ms", std::isfinite(c.hi_s) ? c.hi_s * 1e3 : -1.0);
    w.kv("txns", c.txns);
    w.kv("response_s", c.response_s);
    w.key("path");
    write_breakdown(w, c.sum);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

}  // namespace gemsd::obs
