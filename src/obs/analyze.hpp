#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace gemsd::obs {

/// Offline trace/metrics analysis (tools/gemsd_analyze): contention
/// attribution, wait-for graph replay, and statistical run comparison.
/// Everything here is deterministic — same inputs, same bytes out — so the
/// CLI output can be golden-tested and diffed across machines.

/// Per-node (or cluster-total, node == -1) attribution of simulated time,
/// summed over the committed transactions in the trace. The five phase
/// buckets are the exact per-txn seconds from the PhaseTotal records (the
/// same values Metrics::breakdown_* averages); lock_wait_s / page_fetch_s
/// split the cc bucket by cause, the remainder being GEM / global-lock
/// message rounds and commit processing.
struct NodeAttribution {
  int node = -1;             ///< -1 = whole cluster
  std::uint64_t txns = 0;    ///< committed transaction spans
  std::uint64_t restarts = 0;
  double resp_s = 0;         ///< sum of txn span durations
  double cpu_s = 0;
  double cpu_wait_s = 0;
  double io_s = 0;
  double cc_s = 0;
  double queue_s = 0;
  double lock_wait_s = 0;    ///< part of cc: blocked lock requests
  std::uint64_t lock_waits = 0;
  double page_fetch_s = 0;   ///< part of cc: remote page transfers
  std::uint64_t page_fetches = 0;
  /// cc minus its measured parts: GEM / GLT message rounds, lock-release
  /// processing, commit-time coherency work (never negative; clamped).
  double other_cc_s = 0;
};

/// One contended page: how often and how long transactions blocked on it.
struct HotPage {
  std::int32_t partition = 0;
  std::int64_t page = 0;
  std::uint64_t waits = 0;
  double wait_s = 0;
};

/// Wait-for edges aggregated by (waiter node, holder node) — the paper's
/// local vs remote conflict signal.
struct ConflictPair {
  int waiter_node = -1;
  int holder_node = -1;
  std::uint64_t edges = 0;
};

struct TraceAnalysis {
  std::uint64_t events = 0;
  std::uint64_t events_dropped = 0;

  NodeAttribution total;                ///< cluster-wide sums
  std::vector<NodeAttribution> nodes;   ///< ascending node id

  std::vector<HotPage> hot_pages;       ///< wait_s desc, then (part, page)
  std::vector<ConflictPair> conflicts;  ///< edges desc, then pair

  // Wait-for graph replay: wait.edge instants are applied in trace order,
  // edges retire when their waiter is granted (lock.wait span), aborted
  // (deadlock instant) or finishes (commit/restart); a cycle is counted when
  // a new waiter's edges close one — the same check the simulator runs, so
  // `cycles` cross-checks the deadlock counter.
  std::uint64_t wait_edges = 0;
  std::uint64_t cycles = 0;
  std::uint64_t deadlock_instants = 0;  ///< kDeadlock events seen
};

/// Analyze a native event stream (record order, as TraceRecorder::snapshot()
/// returns it). `dropped` is the ring's overwrite count — nonzero means spans
/// may be partial and strict reconciliation is off the table.
TraceAnalysis analyze_trace(const std::vector<TraceEvent>& events,
                            std::uint64_t dropped);

/// Parse a "gemsd.trace.v1" Chrome trace document back into native events.
/// Spans, instants, counter samples (the ".node<N>" track suffix is folded
/// back into the node field) and message flows all round-trip; per-txn phase
/// args are re-expanded into PhaseTotal records. Only presentation metadata
/// ("M" records) stays behind. Returns false with `error` set on documents
/// that are not gemsd traces.
bool parse_chrome_trace(const JsonValue& doc, std::vector<TraceEvent>& out,
                        std::uint64_t& dropped, std::string& error);

/// One phase bucket of the trace-vs-reported cross-check.
struct ReconcileLine {
  std::string phase;        ///< "cpu", "cpu_wait", "io", "cc", "queue"
  double trace_ms = 0;      ///< per-txn mean from the trace's PhaseTotals
  double reported_ms = 0;   ///< breakdown_ms from the results file
  double rel_err = 0;       ///< |trace - reported| / max(reported, eps)
};

struct Reconciliation {
  std::vector<ReconcileLine> lines;
  double worst_rel_err = 0;
  bool ok = false;  ///< every line within tolerance
};

/// Cross-check the analysis' phase sums against one run's "metrics" object
/// from a gemsd.results.v1 document (per-txn means, breakdown_ms keys).
Reconciliation reconcile(const TraceAnalysis& a, const JsonValue& metrics,
                         double tolerance = 0.01);

/// One matched run pair of a --compare invocation.
struct RunDelta {
  std::string key;           ///< label [+ name] identifying the sweep point
  double base_resp_ms = 0, cand_resp_ms = 0;
  double base_ci_ms = 0, cand_ci_ms = 0;
  double base_tput = 0, cand_tput = 0;
  /// Response regression: candidate mean above baseline by more than the
  /// combined CI half-widths AND the relative tolerance band.
  bool resp_regressed = false;
  bool resp_improved = false;
  /// Throughput regression: candidate below baseline by more than the
  /// relative tolerance (throughput carries no CI in the results schema).
  bool tput_regressed = false;
  bool tput_improved = false;
  /// Per-GEM-shard gating: when BOTH documents carry the (additive)
  /// "gem_shards" block with the same shard count, each shard's utilization
  /// and mean queue length are compared under the same relative band. A
  /// single overloaded shard regresses the pair even when the aggregate
  /// gem_util averages out. 0 when either document predates the block.
  int shard_regressions = 0;
};

struct CompareReport {
  std::vector<RunDelta> deltas;     ///< baseline document order
  int regressions = 0;              ///< matched pairs with any *_regressed
  int improvements = 0;
  std::vector<std::string> unmatched_base;  ///< keys only in the baseline
  std::vector<std::string> unmatched_cand;  ///< keys only in the candidate
  std::string error;                ///< non-empty: documents not comparable
};

/// Diff two gemsd.results.v1 documents. Runs are matched by config hash plus
/// run label (and bench-assigned run name, when present); `tolerance` is the
/// relative band (0.05 = 5%) added on top of the batch-means CIs.
CompareReport compare_results(const JsonValue& baseline,
                              const JsonValue& candidate,
                              double tolerance = 0.05);

/// Human-readable reports (deterministic bytes; used by the CLI and tests).
std::string format_analysis(const TraceAnalysis& a, int top_k);
std::string format_reconciliation(const Reconciliation& r);
std::string format_compare(const CompareReport& r, double tolerance);

}  // namespace gemsd::obs
