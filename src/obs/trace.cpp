#include "obs/trace.hpp"

#include <array>
#include <map>
#include <regex>
#include <set>
#include <unordered_map>

#include "obs/json.hpp"
#include "obs/telemetry.hpp"

namespace gemsd::obs {

const char* to_string(TraceName n) {
  switch (n) {
    case TraceName::kTxn: return "txn";
    case TraceName::kMplWait: return "mpl.wait";
    case TraceName::kCpu: return "cpu";
    case TraceName::kLockWait: return "lock.wait";
    case TraceName::kPageRequest: return "page.request";
    case TraceName::kIoRead: return "io.read";
    case TraceName::kIoWrite: return "io.write";
    case TraceName::kIoLog: return "io.log";
    case TraceName::kCommitIo: return "commit.io";
    case TraceName::kMsgSend: return "msg";
    case TraceName::kMsgRecv: return "msg";
    case TraceName::kRestart: return "restart";
    case TraceName::kDeadlock: return "deadlock";
    case TraceName::kWaitEdge: return "wait.edge";
    case TraceName::kLockGrant: return "lock.grant";
    case TraceName::kGemAccess: return "gem.access";
    case TraceName::kCommit: return "commit";
    case TraceName::kPhaseCpu: return "phase.cpu";
    case TraceName::kPhaseCpuWait: return "phase.cpu_wait";
    case TraceName::kPhaseIo: return "phase.io";
    case TraceName::kPhaseCc: return "phase.cc";
    case TraceName::kPhaseQueue: return "phase.queue";
    case TraceName::kCtrThroughput: return "throughput";
    case TraceName::kCtrResponse: return "response_ms";
    case TraceName::kCtrActive: return "active_txns";
    case TraceName::kCtrMplQueue: return "mpl_queue";
    case TraceName::kCtrCpuBusy: return "cpu_busy";
    case TraceName::kCtrGemBusy: return "gem_busy";
    case TraceName::kCtrNetBusy: return "net_busy";
    case TraceName::kCtrDiskQueue: return "disk_queue";
    case TraceName::kCtrSchedQueue: return "sched_queue";
    case TraceName::kCount: break;
  }
  return "?";
}

const char* category(TraceName n) {
  switch (n) {
    case TraceName::kTxn:
    case TraceName::kMplWait:
    case TraceName::kCpu:
    case TraceName::kCommitIo:
    case TraceName::kRestart:
    case TraceName::kCommit:
      return "txn";
    case TraceName::kLockWait:
    case TraceName::kPageRequest:
    case TraceName::kDeadlock:
    case TraceName::kWaitEdge:
    case TraceName::kLockGrant:
    case TraceName::kGemAccess:
      return "cc";
    case TraceName::kIoRead:
    case TraceName::kIoWrite:
    case TraceName::kIoLog:
      return "io";
    case TraceName::kMsgSend:
    case TraceName::kMsgRecv:
      return "net";
    default:
      return "sampler";
  }
}

std::array<bool, static_cast<std::size_t>(TraceName::kCount)>
trace_name_filter(const std::string& pattern) {
  std::array<bool, static_cast<std::size_t>(TraceName::kCount)> mask;
  if (pattern.empty()) {
    mask.fill(true);
    return mask;
  }
  const std::regex re(pattern);
  for (std::size_t i = 0; i < mask.size(); ++i) {
    mask[i] = std::regex_search(to_string(static_cast<TraceName>(i)), re);
  }
  return mask;
}

namespace {

constexpr std::uint64_t kTxnSeqMask = (std::uint64_t{1} << 40) - 1;

bool txn_scoped(const TraceEvent& e) {
  return e.id != 0 && e.name != TraceName::kMsgSend &&
         e.name != TraceName::kMsgRecv;
}

/// Events whose `value` is a page number and `aux` the page's partition.
bool page_scoped(TraceName n) {
  return n == TraceName::kLockWait || n == TraceName::kPageRequest ||
         n == TraceName::kIoRead || n == TraceName::kIoWrite ||
         n == TraceName::kDeadlock || n == TraceName::kLockGrant;
}

/// Chrome "tid": per-transaction lane inside the node's process (the txn id
/// low bits are the per-node sequence number), lane 0 for node background
/// work (write-backs, messages).
double event_tid(const TraceEvent& e) {
  return txn_scoped(e) ? static_cast<double>(e.id & kTxnSeqMask) + 1.0 : 0.0;
}

struct PhaseTotals {
  std::array<double, 5> sec{};  // cpu, cpu_wait, io, cc, queue
  int restarts = 0;
};

void emit_common(JsonWriter& w, const char* ph, const TraceEvent& e,
                 double pid) {
  w.kv("ph", ph);
  w.key("pid");
  w.value(pid);
  w.key("tid");
  w.value(event_tid(e));
  w.key("ts");
  w.value(e.t * 1e6);  // Chrome trace timestamps are microseconds
}

}  // namespace

std::string chrome_trace_json(
    const RunTelemetry& tel,
    const std::vector<std::pair<std::string, std::string>>& metadata) {
  // Pass 1: fold per-txn phase totals into the txn span's args, and find the
  // node set for process-name metadata.
  std::unordered_map<std::uint64_t, PhaseTotals> phases;
  std::set<int> nodes;
  for (const TraceEvent& e : tel.events) {
    if (e.node >= 0) nodes.insert(e.node);
    if (e.kind == TraceKind::PhaseTotal) {
      auto& pt = phases[e.id];
      switch (e.name) {
        case TraceName::kPhaseCpu: pt.sec[0] = e.value; break;
        case TraceName::kPhaseCpuWait: pt.sec[1] = e.value; break;
        case TraceName::kPhaseIo: pt.sec[2] = e.value; break;
        case TraceName::kPhaseCc: pt.sec[3] = e.value; break;
        case TraceName::kPhaseQueue: pt.sec[4] = e.value; break;
        default: break;
      }
    } else if (e.kind == TraceKind::Instant &&
               e.name == TraceName::kRestart) {
      ++phases[e.id].restarts;
    }
  }

  JsonWriter w;
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("otherData");
  w.begin_object();
  w.kv("schema", "gemsd.trace.v1");
  for (const auto& [k, raw] : metadata) {
    w.key(k);
    w.raw(raw);
  }
  w.key("stats_start_s");
  w.value(tel.stats_start);
  w.key("end_s");
  w.value(tel.end);
  w.key("events_dropped");
  w.value(tel.events_dropped);
  w.end_object();

  w.key("traceEvents");
  w.begin_array();

  // Process/thread naming: pid 0 is the cluster (counter tracks), pid n+1 is
  // node n; lane 0 of each node holds background work.
  w.begin_object();
  w.kv("ph", "M");
  w.kv("name", "process_name");
  w.key("pid");
  w.value(std::int64_t{0});
  w.key("args");
  w.begin_object();
  w.kv("name", "cluster");
  w.end_object();
  w.end_object();
  for (int n : nodes) {
    w.begin_object();
    w.kv("ph", "M");
    w.kv("name", "process_name");
    w.key("pid");
    w.value(static_cast<std::int64_t>(n) + 1);
    w.key("args");
    w.begin_object();
    w.kv("name", "node" + std::to_string(n));
    w.end_object();
    w.end_object();
    w.begin_object();
    w.kv("ph", "M");
    w.kv("name", "thread_name");
    w.key("pid");
    w.value(static_cast<std::int64_t>(n) + 1);
    w.key("tid");
    w.value(std::int64_t{0});
    w.key("args");
    w.begin_object();
    w.kv("name", "background");
    w.end_object();
    w.end_object();
  }

  for (const TraceEvent& e : tel.events) {
    const double pid = e.node >= 0 ? static_cast<double>(e.node) + 1.0 : 0.0;
    switch (e.kind) {
      case TraceKind::PhaseTotal:
        break;  // folded into the txn span args
      case TraceKind::Span: {
        w.begin_object();
        w.kv("name", to_string(e.name));
        w.kv("cat", category(e.name));
        emit_common(w, "X", e, pid);
        w.key("dur");
        w.value(e.dur * 1e6);
        w.key("args");
        w.begin_object();
        if (e.id != 0) {
          w.key("id");
          w.value(e.id);
        }
        if (e.name == TraceName::kTxn) {
          auto it = phases.find(e.id);
          const PhaseTotals pt =
              it != phases.end() ? it->second : PhaseTotals{};
          w.key("cpu_ms");
          w.value(pt.sec[0] * 1e3);
          w.key("cpu_wait_ms");
          w.value(pt.sec[1] * 1e3);
          w.key("io_ms");
          w.value(pt.sec[2] * 1e3);
          w.key("cc_ms");
          w.value(pt.sec[3] * 1e3);
          w.key("mpl_wait_ms");
          w.value(pt.sec[4] * 1e3);
          w.key("restarts");
          w.value(static_cast<std::int64_t>(pt.restarts));
          w.key("type");
          w.value(e.value);
        } else if (page_scoped(e.name)) {
          w.key("v");
          w.value(e.value);
          w.key("p");
          w.value(static_cast<std::int64_t>(e.aux));
        } else if (e.value != 0.0) {
          w.key("v");
          w.value(e.value);
        }
        w.end_object();
        w.end_object();
        break;
      }
      case TraceKind::Instant: {
        w.begin_object();
        w.kv("name", to_string(e.name));
        w.kv("cat", category(e.name));
        emit_common(w, "i", e, pid);
        // Payload args so instants round-trip through the analyzer's trace
        // parser (wait.edge carries the blocked-on txn in v, deadlock the
        // victim's contended page in v/p).
        if (e.id != 0 || e.value != 0.0 || page_scoped(e.name)) {
          w.key("args");
          w.begin_object();
          if (e.id != 0) {
            w.key("id");
            w.value(e.id);
          }
          if (e.value != 0.0 || page_scoped(e.name)) {
            w.key("v");
            w.value(e.value);
          }
          if (page_scoped(e.name)) {
            w.key("p");
            w.value(static_cast<std::int64_t>(e.aux));
          }
          w.end_object();
        }
        w.kv("s", "t");
        w.end_object();
        break;
      }
      case TraceKind::Counter: {
        std::string name = to_string(e.name);
        if (e.node >= 0) name += ".node" + std::to_string(e.node);
        w.begin_object();
        w.kv("name", name);
        w.kv("cat", "sampler");
        w.kv("ph", "C");
        w.key("pid");
        w.value(std::int64_t{0});
        w.key("tid");
        w.value(std::int64_t{0});
        w.key("ts");
        w.value(e.t * 1e6);
        w.key("args");
        w.begin_object();
        w.key("value");
        w.value(e.value);
        w.end_object();
        w.end_object();
        break;
      }
      case TraceKind::FlowBegin:
      case TraceKind::FlowEnd: {
        w.begin_object();
        w.kv("name", "msg");
        w.kv("cat", "net");
        emit_common(w, e.kind == TraceKind::FlowBegin ? "s" : "f", e, pid);
        if (e.kind == TraceKind::FlowEnd) w.kv("bp", "e");
        w.key("id");
        w.value(e.id);
        // Long-message flag (only when set, so short-message flows keep their
        // golden byte shape); lets the importer round-trip flows losslessly.
        if (e.value != 0.0) {
          w.key("v");
          w.value(e.value);
        }
        w.end_object();
        break;
      }
    }
  }

  w.end_array();
  w.end_object();
  return w.take();
}

}  // namespace gemsd::obs
