#include "obs/fingerprint.hpp"

#include <cstdio>

#include "obs/json.hpp"

#ifndef GEMSD_GIT_DESCRIBE
#define GEMSD_GIT_DESCRIBE "unknown"
#endif

namespace gemsd::obs {

const char* build_git_describe() { return GEMSD_GIT_DESCRIBE; }

std::string config_json(const SystemConfig& cfg) {
  JsonWriter w;
  w.begin_object();
  w.kv("nodes", static_cast<std::int64_t>(cfg.nodes));
  w.kv("arrival_rate_per_node", cfg.arrival_rate_per_node);
  w.kv("coupling", to_string(cfg.coupling));
  w.kv("update", to_string(cfg.update));
  w.kv("routing", to_string(cfg.routing));
  w.kv("mpl", static_cast<std::int64_t>(cfg.mpl));
  w.kv("buffer_pages", static_cast<std::int64_t>(cfg.buffer_pages));
  w.kv("log_storage", to_string(cfg.log_storage));
  w.kv("log_disks_per_node", static_cast<std::int64_t>(cfg.log_disks_per_node));
  w.kv("log_group_commit", cfg.log_group_commit);
  w.kv("log_group_window", cfg.log_group_window);
  w.kv("log_group_max", static_cast<std::int64_t>(cfg.log_group_max));
  w.kv("pcl_read_optimization", cfg.pcl_read_optimization);
  w.kv("gem_read_authorizations", cfg.gem_read_authorizations);
  w.kv("lock_instr", cfg.lock_instr);
  w.kv("lock_engine_service", cfg.lock_engine_service);

  w.key("cpu");
  w.begin_object();
  w.kv("processors", static_cast<std::int64_t>(cfg.cpu.processors));
  w.kv("mips", cfg.cpu.mips);
  w.end_object();

  w.key("gem");
  w.begin_object();
  w.kv("servers", static_cast<std::int64_t>(cfg.gem.servers));
  // Only when sharded: the canonical single-GEM serialization must keep its
  // exact bytes, or every config_hash — and the committed baselines keyed on
  // them — would shift.
  if (cfg.gem.shards != 1) {
    w.kv("shards", static_cast<std::int64_t>(cfg.gem.shards));
  }
  w.kv("page_access", cfg.gem.page_access);
  w.kv("entry_access", cfg.gem.entry_access);
  w.kv("io_instr", cfg.gem.io_instr);
  w.end_object();

  w.key("comm");
  w.begin_object();
  w.kv("bandwidth", cfg.comm.bandwidth);
  w.kv("short_bytes", cfg.comm.short_bytes);
  w.kv("long_bytes", cfg.comm.long_bytes);
  w.kv("short_instr", cfg.comm.short_instr);
  w.kv("long_instr", cfg.comm.long_instr);
  w.kv("transport",
       cfg.comm.transport == MsgTransport::GemStore ? "gem" : "network");
  w.kv("gem_msg_instr", cfg.comm.gem_msg_instr);
  w.end_object();

  w.key("disk");
  w.begin_object();
  w.kv("db_disk", cfg.disk.db_disk);
  w.kv("log_disk", cfg.disk.log_disk);
  w.kv("controller", cfg.disk.controller);
  w.kv("transfer", cfg.disk.transfer);
  w.kv("io_instr", cfg.disk.io_instr);
  w.end_object();

  w.key("path");
  w.begin_object();
  w.kv("bot_instr", cfg.path.bot_instr);
  w.kv("per_ref_instr", cfg.path.per_ref_instr);
  w.kv("eot_instr", cfg.path.eot_instr);
  w.end_object();

  w.key("partitions");
  w.begin_array();
  for (const auto& p : cfg.partitions) {
    w.begin_object();
    w.kv("name", p.name);
    w.kv("pages_per_unit", static_cast<std::int64_t>(p.pages_per_unit));
    w.kv("blocking_factor", static_cast<std::int64_t>(p.blocking_factor));
    w.kv("locked", p.locked);
    w.kv("scale_with_nodes", p.scale_with_nodes);
    w.kv("storage", to_string(p.storage));
    w.kv("disks_per_unit", static_cast<std::int64_t>(p.disks_per_unit));
    w.kv("disk_cache_pages", static_cast<std::int64_t>(p.disk_cache_pages));
    w.kv("gem_cache_pages", static_cast<std::int64_t>(p.gem_cache_pages));
    w.end_object();
  }
  w.end_array();

  w.kv("warmup", cfg.warmup);
  w.kv("measure", cfg.measure);
  w.kv("seed", static_cast<std::uint64_t>(cfg.seed));
  w.kv("restart_delay", cfg.restart_delay);

  w.key("failure");
  w.begin_object();
  w.kv("detection", cfg.failure.detection);
  w.kv("redo_log_pages_per_page",
       static_cast<std::int64_t>(cfg.failure.redo_log_pages_per_page));
  w.kv("gla_rebuild", cfg.failure.gla_rebuild);
  w.kv("node_restart", cfg.failure.node_restart);
  w.end_object();

  w.key("obs");
  w.begin_object();
  w.kv("trace", cfg.obs.trace);
  w.kv("trace_capacity", static_cast<std::uint64_t>(cfg.obs.trace_capacity));
  // Only when set: the canonical (default-obs) serialization must keep its
  // exact bytes, or every config_hash — and the committed baselines keyed on
  // them — would shift.
  if (!cfg.obs.trace_filter.empty()) {
    w.kv("trace_filter", cfg.obs.trace_filter);
  }
  w.kv("sample_every", cfg.obs.sample_every);
  w.kv("slow_k", static_cast<std::int64_t>(cfg.obs.slow_k));
  w.kv("audit", cfg.obs.audit);
  w.end_object();

  w.end_object();
  return w.take();
}

std::uint64_t config_hash(const SystemConfig& cfg) {
  // The observability block does not alter simulation results, so it must
  // not alter the configuration's identity either: hash the config with the
  // obs settings at their defaults.
  SystemConfig canon = cfg;
  canon.obs = SystemConfig::ObsConfig{};
  const std::string s = config_json(canon);
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string config_hash_hex(const SystemConfig& cfg) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(config_hash(cfg)));
  return buf;
}

}  // namespace gemsd::obs
