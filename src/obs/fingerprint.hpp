#pragma once

#include <cstdint>
#include <string>

#include "core/config.hpp"

namespace gemsd::obs {

/// `git describe --always --dirty` captured at configure time ("unknown"
/// outside a git checkout).
const char* build_git_describe();

/// Serialize every SystemConfig parameter (including seed and all device /
/// path-length / partition settings) as a JSON object with a fixed key
/// order. Any result file carrying this object is reproducible from its
/// header alone.
std::string config_json(const SystemConfig& cfg);

/// FNV-1a over config_json(cfg): a short stable identity for "same
/// configuration" checks across result files.
std::uint64_t config_hash(const SystemConfig& cfg);

/// Hash formatted as a 16-digit hex string (JSON-safe: uint64 does not fit
/// in a double).
std::string config_hash_hex(const SystemConfig& cfg);

}  // namespace gemsd::obs
