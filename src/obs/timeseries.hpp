#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace gemsd::obs {

struct JsonValue;

/// Streaming, memory-bounded time-series recorder (--timeseries): tiles sim
/// time into fixed windows and captures, per window, cluster and per-node
/// series — commits, aborts, events/s, lock conflict/deadlock rates, buffer
/// hit rate, GEM/disk/network utilization, and response-time quantiles via a
/// mergeable log-bucket sketch (the sim::Histogram bucket layout, so merge is
/// elementwise addition). Every number is derived from simulated event times
/// and counters, and the recorder inserts NO scheduler events of its own:
///
///   - commits/aborts and the response sketch come from per-event hooks in
///     the transaction manager, bucketed by commit time (exact);
///   - cumulative counters and busy-time integrals (scheduler events, lock
///     waits, deadlocks, buffer hits/misses, messages, device busy-seconds)
///     are polled when a hook call first lands in a new window and the delta
///     is distributed pro-rata over the windows the poll interval spans
///     (deterministic; at steady state one poll per window).
///
/// Because System is a single LP and all inputs are simulation-deterministic,
/// the exported document is bit-identical across engine kinds and worker
/// counts (ctest-gated), and because nothing perturbs the schedule, the
/// metrics JSON is byte-identical with the recorder on or off. Window count
/// is bounded like the trace ring: when `cap` windows exist, the window
/// width doubles and adjacent windows pairwise-merge (sketches merge by
/// bucket addition, so coarsening loses resolution, never data). Recording
/// starts at t=0 — warm-up included — so gemsd_analyze --timeseries can
/// check the configured warm-up cut (MSER-5) and measurement-interval
/// stationarity (batch-means trend test).

/// Mergeable response-time sketch: counts per LogBuckets storage index, plus
/// count and sum for exact means. Buckets allocate lazily on first add.
struct TsSketch {
  std::uint64_t count = 0;
  double sum_s = 0;
  std::vector<std::uint64_t> buckets;  ///< layout.size() entries once non-empty

  void add(const sim::LogBuckets& lb, double x);
  void merge_from(const TsSketch& o);
  double mean_s() const {
    return count ? sum_s / static_cast<double>(count) : 0.0;
  }
  double quantile(const sim::LogBuckets& lb, double q) const {
    return sim::log_buckets_quantile(lb, buckets, count, q);
  }
  bool operator==(const TsSketch& o) const = default;
};

/// One named station tracked per window (additive v1 extension): busy
/// server-seconds per window divided by capacity·width gives the per-window
/// utilization, which is what shows a bottleneck migrating between stations
/// (e.g. network vs GEM under a diurnal arrival curve).
struct TsStation {
  std::string name;      ///< resource-snapshot naming (gem.shard0, net, ...)
  double capacity = 0;   ///< servers
  bool operator==(const TsStation& o) const = default;
};

/// Per-node slice of one window (kept light: the full sketch is cluster-wide).
struct TsNodeWindow {
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  double resp_sum_s = 0;
  bool operator==(const TsNodeWindow& o) const = default;
};

/// One window [t0, t0 + window_s). Hook-fed fields are exact integers;
/// poll-fed fields are pro-rata doubles. Merging two adjacent windows is
/// elementwise addition everywhere.
struct TsWindow {
  // exact, from the commit/abort hooks
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  TsSketch resp;
  std::vector<TsNodeWindow> nodes;
  // pro-rata, from cumulative polls
  double events = 0;  ///< scheduler events
  double lock_waits = 0;
  double deadlocks = 0;
  double hits = 0;
  double misses = 0;
  double msgs = 0;
  double cpu_busy_s = 0;  ///< busy processor-seconds (all nodes)
  double gem_busy_s = 0;
  double net_busy_s = 0;
  double disk_busy_s = 0;  ///< db + log arms
  /// Busy server-seconds per tracked station (TsSeries::stations order);
  /// empty when no station list was installed.
  std::vector<double> station_busy_s;

  void merge_from(const TsWindow& o);
  bool operator==(const TsWindow& o) const = default;
};

/// Cumulative readings the recorder differences. Filled by the poller
/// callback System installs (reads counters and busy integrals only).
struct TsCumulative {
  std::uint64_t events = 0;
  std::uint64_t lock_waits = 0;
  std::uint64_t deadlocks = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t msgs = 0;
  double cpu_busy_s = 0;
  double gem_busy_s = 0;
  double net_busy_s = 0;
  double disk_busy_s = 0;
  /// Per-station busy integrals (recorder's station order). The poller must
  /// clear and refill this on every call.
  std::vector<double> station_busy_s;
};

/// Immutable snapshot behind the gemsd.timeseries.v1 document.
struct TsSeries {
  double base_window_s = 0.5;  ///< configured width before coarsening
  double window_s = 0.5;       ///< current width (base * 2^coarsenings)
  int coarsenings = 0;
  std::size_t cap = 512;
  int nodes = 0;
  sim::LogBuckets layout;       ///< response sketch bucket layout
  sim::SimTime stats_start = 0; ///< warm-up cut (0 until reset_stats)
  sim::SimTime end = 0;         ///< simulation time at snapshot
  // capacities for turning busy-seconds into utilizations
  double cpu_capacity = 0;   ///< total processors
  double gem_capacity = 0;   ///< GEM servers
  double net_capacity = 0;   ///< network links
  double disk_capacity = 0;  ///< total disk arms (db + log)
  /// Tracked stations (additive; empty in documents written before the
  /// per-station extension or when no list was installed).
  std::vector<TsStation> stations;
  std::vector<TsWindow> windows;  ///< windows[i] covers [i*w, (i+1)*w)

  /// End of window i, clamped to the run end for the last partial window.
  double window_end(std::size_t i) const;
};

class TimeSeriesRecorder {
 public:
  using Poller = std::function<void(TsCumulative&)>;

  /// `cap` bounds the window vector (>= 2; coarsening keeps totals).
  TimeSeriesRecorder(double window_s, std::size_t cap, int nodes,
                     sim::LogBuckets layout = sim::LogBuckets{});

  /// Install the cumulative-counter reader (System). Never called outside
  /// simulated event processing; must only read.
  void set_poller(Poller p) { poller_ = std::move(p); }
  void set_capacities(double cpu, double gem, double net, double disk);
  /// Install the tracked-station list (bounded: GEM shards, network, disk
  /// partitions, log aggregate — not per-node stations). The poller fills
  /// TsCumulative::station_busy_s in the same order.
  void set_stations(std::vector<TsStation> stations) {
    stations_ = std::move(stations);
  }

  /// Transaction-manager hooks (exact, bucketed by event time). A hook call
  /// landing in a new window triggers a poll first, so poll-fed fields keep
  /// window resolution without any recorder-owned scheduler events.
  void on_commit(sim::SimTime t, int node, double response_s);
  void on_abort(sim::SimTime t, int node);

  /// Poll and distribute the cumulative deltas up to `now` (reset_stats and
  /// collect call this so segments fold exactly at their boundary).
  void fold(sim::SimTime now);
  /// Re-read the baselines without folding — call AFTER counters were
  /// zeroed by a stats reset (fold first, reset, then rebase).
  void rebase(sim::SimTime now);
  /// Record where the measurement interval starts (reset_stats time).
  void mark_stats_start(sim::SimTime t) { stats_start_ = t; }

  double window_s() const { return window_s_; }
  int coarsenings() const { return coarsenings_; }
  std::size_t window_count() const { return windows_.size(); }

  TsSeries snapshot(sim::SimTime end) const;

 private:
  TsWindow& window_for(sim::SimTime t);
  std::size_t index_for(sim::SimTime t);  ///< grows + coarsens as needed
  void coarsen();
  void poll_and_fold(sim::SimTime now);

  double base_window_s_;
  double window_s_;
  std::size_t cap_;
  int nodes_;
  sim::LogBuckets layout_;
  int coarsenings_ = 0;
  sim::SimTime stats_start_ = 0;
  double cpu_cap_ = 0, gem_cap_ = 0, net_cap_ = 0, disk_cap_ = 0;
  std::vector<TsStation> stations_;

  Poller poller_;
  TsCumulative prev_;
  sim::SimTime prev_t_ = 0;
  std::size_t last_idx_ = 0;  ///< window of the last hook call

  std::vector<TsWindow> windows_;
};

/// "gemsd.timeseries.v1" document (schemas/timeseries.schema.json).
/// `metadata` entries are {key, pre-serialized JSON value} pairs merged after
/// the schema key (git describe, seed, config hash). Deterministic bytes:
/// same simulation -> same document at any engine kind or worker count.
std::string timeseries_json(
    const TsSeries& s,
    const std::vector<std::pair<std::string, std::string>>& metadata);

/// Parse a gemsd.timeseries.v1 document back into a TsSeries. Returns false
/// and fills `error` when the document is not a time series.
bool timeseries_from_json(const JsonValue& doc, TsSeries& out,
                          std::string& error);

/// Batch-means trend test over one metric's measurement-interval windows.
struct TsTrend {
  int batches = 0;        ///< 0 = not enough data (inconclusive, not drift)
  double mean = 0;        ///< grand mean over the batches
  double slope_per_s = 0; ///< fitted batch-mean slope per sim second
  double t_stat = 0;      ///< slope / its standard error
  double rel_change = 0;  ///< |slope| * fitted span / |mean|
  bool drifting = false;  ///< |t| > threshold AND rel_change > guard
};

/// gemsd_analyze --timeseries: MSER warm-up estimate + stationarity check.
struct TsReport {
  std::size_t windows = 0;       ///< total (from t=0)
  std::size_t meas_windows = 0;  ///< windows at/after stats_start
  double window_s = 0;
  double configured_warmup_s = 0;  ///< stats_start from the document
  /// MSER-5 truncation over per-window series (throughput always; mean
  /// response too when every window committed): the time before which the
  /// initialization bias outweighs the variance reduction of keeping data.
  double mser_warmup_s = 0;
  /// Configured cut >= the MSER-5 recommendation, or the deeper truncation
  /// would move the retained means by under 2.5% (no residual bias).
  bool warmup_safe = true;
  TsTrend throughput;
  TsTrend response;
  bool drifting = false;  ///< either trend drifts -> exit 1 in the tool
};

TsReport analyze_timeseries(const TsSeries& s);

/// Human-readable report; deterministic bytes for a given series.
std::string format_ts_report(const TsSeries& s, const TsReport& r);

/// Per-window CSV for plotting: one header line, then one row per window
/// with times, rates, quantiles, hit ratio and utilizations.
std::string timeseries_csv(const TsSeries& s);

}  // namespace gemsd::obs
