#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace gemsd::obs {

// --- writer ---

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!has_item_.empty()) {
    if (has_item_.back()) out_ += ',';
    has_item_.back() = true;
  }
}

void JsonWriter::begin_object() {
  comma();
  out_ += '{';
  has_item_.push_back(false);
}

void JsonWriter::end_object() {
  out_ += '}';
  has_item_.pop_back();
}

void JsonWriter::begin_array() {
  comma();
  out_ += '[';
  has_item_.push_back(false);
}

void JsonWriter::end_array() {
  out_ += ']';
  has_item_.pop_back();
}

void JsonWriter::key(const std::string& k) {
  comma();
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::value(const std::string& v) {
  comma();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
}

void JsonWriter::value(const char* v) { value(std::string(v)); }

void JsonWriter::value(double v) {
  comma();
  out_ += number(v);
}

void JsonWriter::value(std::int64_t v) {
  comma();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out_ += buf;
}

void JsonWriter::value(std::uint64_t v) {
  comma();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
}

void JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
}

void JsonWriter::value_null() {
  comma();
  out_ += "null";
}

void JsonWriter::raw(const std::string& json) {
  comma();
  out_ += json;
}

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string JsonWriter::number(double v) {
  if (!std::isfinite(v)) return "0";
  // Exact small integers print without a fraction (counter values, ids).
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

// --- parser ---

namespace {

struct Parser {
  const char* p;
  const char* end;
  std::string* error;

  bool fail(const std::string& msg) {
    if (error->empty()) *error = msg;
    return false;
  }
  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) ++p;
  }
  bool parse_value(JsonValue& out);

  bool parse_string(std::string& out) {
    if (p >= end || *p != '"') return fail("expected string");
    ++p;
    while (p < end && *p != '"') {
      if (*p == '\\') {
        ++p;
        if (p >= end) return fail("truncated escape");
        switch (*p) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (end - p < 5) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char c = p[i];
              code <<= 4;
              if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
              else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
              else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
              else return fail("bad \\u escape");
            }
            // UTF-8 encode (surrogate pairs not needed for our documents).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            p += 4;
            break;
          }
          default: return fail("unknown escape");
        }
        ++p;
      } else {
        out += *p++;
      }
    }
    if (p >= end) return fail("unterminated string");
    ++p;  // closing quote
    return true;
  }
};

bool Parser::parse_value(JsonValue& out) {
  skip_ws();
  if (p >= end) return fail("unexpected end of input");
  const char c = *p;
  if (c == '{') {
    ++p;
    out.kind = JsonValue::Kind::Object;
    skip_ws();
    if (p < end && *p == '}') { ++p; return true; }
    for (;;) {
      skip_ws();
      std::string k;
      if (!parse_string(k)) return false;
      skip_ws();
      if (p >= end || *p != ':') return fail("expected ':'");
      ++p;
      JsonValue v;
      if (!parse_value(v)) return false;
      out.obj.emplace(std::move(k), std::move(v));
      skip_ws();
      if (p < end && *p == ',') { ++p; continue; }
      if (p < end && *p == '}') { ++p; return true; }
      return fail("expected ',' or '}'");
    }
  }
  if (c == '[') {
    ++p;
    out.kind = JsonValue::Kind::Array;
    skip_ws();
    if (p < end && *p == ']') { ++p; return true; }
    for (;;) {
      JsonValue v;
      if (!parse_value(v)) return false;
      out.arr.push_back(std::move(v));
      skip_ws();
      if (p < end && *p == ',') { ++p; continue; }
      if (p < end && *p == ']') { ++p; return true; }
      return fail("expected ',' or ']'");
    }
  }
  if (c == '"') {
    out.kind = JsonValue::Kind::String;
    return parse_string(out.str);
  }
  if (std::strncmp(p, "true", 4) == 0 && end - p >= 4) {
    out.kind = JsonValue::Kind::Bool;
    out.b = true;
    p += 4;
    return true;
  }
  if (std::strncmp(p, "false", 5) == 0 && end - p >= 5) {
    out.kind = JsonValue::Kind::Bool;
    out.b = false;
    p += 5;
    return true;
  }
  if (std::strncmp(p, "null", 4) == 0 && end - p >= 4) {
    out.kind = JsonValue::Kind::Null;
    p += 4;
    return true;
  }
  if (c == '-' || (c >= '0' && c <= '9')) {
    char* num_end = nullptr;
    out.kind = JsonValue::Kind::Number;
    out.num = std::strtod(p, &num_end);
    if (num_end == p) return fail("bad number");
    p = num_end;
    return true;
  }
  return fail(std::string("unexpected character '") + c + "'");
}

}  // namespace

bool json_parse(const std::string& text, JsonValue& out, std::string& error) {
  error.clear();
  out = JsonValue{};  // parse_value fills containers in place; start fresh
  Parser parser{text.data(), text.data() + text.size(), &error};
  if (!parser.parse_value(out)) return false;
  parser.skip_ws();
  if (parser.p != parser.end) {
    error = "trailing characters after document";
    return false;
  }
  return true;
}

// --- schema validation (subset) ---

namespace {

const char* kind_name(JsonValue::Kind k) {
  switch (k) {
    case JsonValue::Kind::Null: return "null";
    case JsonValue::Kind::Bool: return "boolean";
    case JsonValue::Kind::Number: return "number";
    case JsonValue::Kind::String: return "string";
    case JsonValue::Kind::Array: return "array";
    case JsonValue::Kind::Object: return "object";
  }
  return "?";
}

bool type_matches(const std::string& type, const JsonValue& doc) {
  if (type == "object") return doc.kind == JsonValue::Kind::Object;
  if (type == "array") return doc.kind == JsonValue::Kind::Array;
  if (type == "string") return doc.kind == JsonValue::Kind::String;
  if (type == "boolean") return doc.kind == JsonValue::Kind::Bool;
  if (type == "null") return doc.kind == JsonValue::Kind::Null;
  if (type == "number") return doc.kind == JsonValue::Kind::Number;
  if (type == "integer") {
    return doc.kind == JsonValue::Kind::Number &&
           doc.num == std::floor(doc.num);
  }
  return false;
}

void validate_at(const JsonValue& schema, const JsonValue& doc,
                 const std::string& path, std::vector<std::string>& errors) {
  if (!schema.is_object()) return;  // boolean/empty schema: accept

  if (const JsonValue* type = schema.find("type")) {
    bool ok = false;
    if (type->is_string()) {
      ok = type_matches(type->str, doc);
    } else if (type->is_array()) {
      for (const auto& t : type->arr)
        if (t.is_string() && type_matches(t.str, doc)) ok = true;
    }
    if (!ok) {
      errors.push_back(path + ": expected type " +
                       (type->is_string() ? type->str : "(union)") + ", got " +
                       kind_name(doc.kind));
      return;  // type mismatch makes the remaining keywords meaningless
    }
  }

  if (const JsonValue* en = schema.find("enum")) {
    bool ok = false;
    for (const auto& cand : en->arr) {
      if (cand.kind != doc.kind) continue;
      if (cand.is_string() && cand.str == doc.str) ok = true;
      if (cand.is_number() && cand.num == doc.num) ok = true;
    }
    if (!ok) errors.push_back(path + ": value not in enum");
  }

  if (doc.is_object()) {
    if (const JsonValue* req = schema.find("required")) {
      for (const auto& k : req->arr) {
        if (k.is_string() && doc.find(k.str) == nullptr) {
          errors.push_back(path + ": missing required key '" + k.str + "'");
        }
      }
    }
    const JsonValue* props = schema.find("properties");
    if (props != nullptr && props->is_object()) {
      for (const auto& [k, sub] : props->obj) {
        if (const JsonValue* v = doc.find(k)) {
          validate_at(sub, *v, path + "." + k, errors);
        }
      }
    }
    if (const JsonValue* ap = schema.find("additionalProperties")) {
      if (ap->kind == JsonValue::Kind::Bool && !ap->b) {
        for (const auto& [k, v] : doc.obj) {
          (void)v;
          if (props == nullptr || props->find(k) == nullptr) {
            errors.push_back(path + ": unexpected key '" + k + "'");
          }
        }
      }
    }
  }

  if (doc.is_array()) {
    if (const JsonValue* min_items = schema.find("minItems")) {
      if (min_items->is_number() &&
          doc.arr.size() < static_cast<std::size_t>(min_items->num)) {
        errors.push_back(path + ": fewer than minItems elements");
      }
    }
    if (const JsonValue* items = schema.find("items")) {
      for (std::size_t i = 0; i < doc.arr.size(); ++i) {
        validate_at(*items, doc.arr[i], path + "[" + std::to_string(i) + "]",
                    errors);
      }
    }
  }
}

}  // namespace

bool json_schema_validate(const JsonValue& schema, const JsonValue& doc,
                          std::vector<std::string>& errors) {
  const std::size_t before = errors.size();
  validate_at(schema, doc, "$", errors);
  return errors.size() == before;
}

}  // namespace gemsd::obs
