#include "obs/audit.hpp"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace gemsd::obs {

namespace {

const char* kind_tag(TraceKind k) {
  switch (k) {
    case TraceKind::Span: return "span";
    case TraceKind::Instant: return "inst";
    case TraceKind::Counter: return "ctr";
    case TraceKind::FlowBegin: return "flow>";
    case TraceKind::FlowEnd: return ">flow";
    case TraceKind::PhaseTotal: return "phase";
  }
  return "?";
}

}  // namespace

void Auditor::check(bool ok, const char* name, sim::SimTime t,
                    std::uint64_t txn, int node, const char* fmt, ...) {
  ++checks_;
  if (ok) return;

  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);

  AuditViolation v;
  v.check = name;
  v.what = buf;
  v.t = t;
  v.txn = txn;
  v.node = node;
  report(v);
  violations_.push_back(std::move(v));
  if (fail_fast_) std::abort();
}

void Auditor::report(const AuditViolation& v) const {
  std::fprintf(stderr,
               "AUDIT VIOLATION [%s] t=%.9f txn=%llu node=%d: %s\n",
               v.check.c_str(), v.t,
               static_cast<unsigned long long>(v.txn), v.node,
               v.what.c_str());
  if (!trace_) {
    std::fprintf(stderr, "  (no trace ring attached; rerun with --trace for "
                         "a cursor)\n");
    return;
  }
  const std::vector<TraceEvent> events = trace_->snapshot();
  constexpr std::size_t kCursor = 12;
  const std::size_t n = events.size();
  const std::size_t first = n > kCursor ? n - kCursor : 0;
  std::fprintf(stderr,
               "  trace cursor (last %zu of %zu events, %llu dropped):\n",
               n - first, n,
               static_cast<unsigned long long>(trace_->dropped()));
  for (std::size_t i = first; i < n; ++i) {
    const TraceEvent& e = events[i];
    std::fprintf(stderr,
                 "    t=%.9f %-5s %-12s txn=%llu node=%d value=%g aux=%d\n",
                 e.t, kind_tag(e.kind), to_string(e.name),
                 static_cast<unsigned long long>(e.id), e.node, e.value,
                 e.aux);
  }
}

}  // namespace gemsd::obs
