#include "obs/memory.hpp"

#if defined(__linux__)
#include <cstdio>
#include <cstring>
#endif
#if defined(__GLIBC__)
#include <malloc.h>
#endif

namespace gemsd::obs {

namespace {

#if defined(__linux__)
/// Read one "VmXXX:  1234 kB" line from /proc/self/status. Returns 0 when
/// the file or the field is missing (non-procfs environments).
std::uint64_t proc_status_kb(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  const std::size_t flen = std::strlen(field);
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof line, f)) {
    if (std::strncmp(line, field, flen) == 0 && line[flen] == ':') {
      unsigned long long v = 0;
      if (std::sscanf(line + flen + 1, "%llu", &v) == 1) kb = v;
      break;
    }
  }
  std::fclose(f);
  return kb;
}
#endif

}  // namespace

std::uint64_t current_rss_bytes() {
#if defined(__linux__)
  return proc_status_kb("VmRSS") * 1024;
#else
  return 0;
#endif
}

std::uint64_t peak_rss_bytes() {
#if defined(__linux__)
  return proc_status_kb("VmHWM") * 1024;
#else
  return 0;
#endif
}

std::uint64_t heap_bytes() {
#if defined(__GLIBC__) && __GLIBC__ >= 2 && defined(__GLIBC_MINOR__) && \
    (__GLIBC__ > 2 || __GLIBC_MINOR__ >= 33)
  const struct mallinfo2 mi = mallinfo2();
  return static_cast<std::uint64_t>(mi.uordblks) +
         static_cast<std::uint64_t>(mi.hblkhd);
#else
  return 0;
#endif
}

MemoryUsage memory_usage() {
  MemoryUsage m;
  m.current_rss_bytes = current_rss_bytes();
  m.peak_rss_bytes = peak_rss_bytes();
  m.heap_bytes = heap_bytes();
  return m;
}

}  // namespace gemsd::obs
