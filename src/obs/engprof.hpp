#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace gemsd::obs {

struct JsonValue;

/// Engine parallelism profiler (sim/engine.hpp, --engine-profile): wall-clock
/// accounting of the safe-window protocol itself — per window, who executed
/// for how long, who sat idle or at the barrier and why, and which lookahead
/// edge set the horizon. Everything here measures the ENGINE, not the model:
/// all timestamps are host wall-clock seconds, never simulated time, and the
/// profiler mutates no simulation state, so results are bit-identical with
/// profiling on or off at any worker count (ctest-gated) and none of its
/// knobs enter config_json/config_hash or exported specs.
///
/// Accounting model. Windows tile the coordinator loop: a window's wall span
/// runs from the top of one loop iteration (before outbox routing) to the top
/// of the next, so coordinator overhead lands inside the window it precedes
/// and the per-LP classes — execute (the LP's drain), idle (window start to
/// drain start) and barrier (drain end to window end) — sum to the window
/// wall span BY CONSTRUCTION, and over a run to the profiled wall time (the
/// docs/observability.md reconciliation check). Stall time (idle + barrier,
/// or the whole window for an LP that never ran) is attributed by cause:
///   lookahead-limited   ran in a normal window; bounded by the horizon edge
///   degenerate          zero-lookahead step serialized everyone else
///   queue-empty         had no event below the bound (straggler's victim)
///
/// Speedup math. execute_s is the sum of all LP drain spans (the work);
/// critical_s sums each window's LONGEST drain span (the part no worker
/// count can compress — the critical LP per window). measured speedup =
/// execute_s / profiled_s and its analytic bound = execute_s / critical_s;
/// measured <= bound holds by construction since every window's wall span
/// contains its longest drain span.
///
/// Threading. window_begin/window_end run on the coordinator between
/// barriers. lp_ran may run on any worker, but each LP is drained by exactly
/// one worker per window and writes only its own preallocated slot; the
/// engine's completion barrier orders those writes before the coordinator's
/// window_end reads (TSan-gated).

/// How a window was bounded.
enum class EngWindowKind : std::uint8_t {
  Normal,      ///< bounded by t_min + min lookahead (exclusive)
  Final,       ///< bounded by the run_until end time (inclusive)
  Degenerate,  ///< zero-lookahead collapse: one serialized LP step
};
const char* to_string(EngWindowKind k);

/// One LP's activity inside one recorded window (ring payload). Times are
/// wall seconds since the profiler epoch; worker < 0 = the LP did not run.
struct EngProfLpSlot {
  double exec_start_s = 0;
  double exec_end_s = 0;
  std::uint64_t events = 0;
  std::int16_t worker = -1;
};

/// One recorded window (ring header). The matching LP slots live at
/// [index * num_lps, (index + 1) * num_lps) of EngProfile::ring_slots.
struct EngProfWindow {
  std::uint64_t seq = 0;        ///< window number since profiling started
  sim::SimTime t_min = 0;       ///< simulated window start
  sim::SimTime bound = 0;       ///< simulated execute bound (== t_min when degenerate)
  EngWindowKind kind = EngWindowKind::Normal;
  std::int16_t limit_src = -1;  ///< limiting lookahead edge (-1 = no edges)
  std::int16_t limit_dst = -1;
  double wall_start_s = 0;
  double wall_end_s = 0;
};

/// Whole-run accumulators for one LP.
struct EngProfLpStat {
  std::string name;
  std::uint64_t windows_ran = 0;      ///< windows this LP executed in
  std::uint64_t critical_windows = 0; ///< windows where it had the longest drain
  std::uint64_t events = 0;
  double exec_s = 0;
  double idle_s = 0;     ///< window start -> drain start (whole window if idle)
  double barrier_s = 0;  ///< drain end -> window end
  // idle_s + barrier_s split by cause (each sums over different windows):
  double stall_lookahead_s = 0;
  double stall_degenerate_s = 0;
  double stall_queue_empty_s = 0;
};

/// One limiting lookahead edge: how many windows it set the horizon of.
/// Final windows are bounded by the run end, not an edge, and do not count.
struct EngProfEdgeStat {
  std::int16_t src = -1;
  std::int16_t dst = -1;
  sim::SimTime lookahead = 0;
  std::uint64_t windows_bound = 0;
};

/// Histogram bucket: count of observations <= `le` (log2-spaced; the last
/// bucket has le < 0 and catches everything larger).
struct EngProfHistBucket {
  double le = 0;
  std::uint64_t count = 0;
};

/// Immutable profile snapshot: the aggregates behind the gemsd.engprof.v1
/// document plus the window ring behind the wall-clock timeline export.
struct EngProfile {
  int workers = 1;
  std::vector<std::string> lp_names;

  std::uint64_t windows = 0;
  std::uint64_t degenerate_windows = 0;
  std::uint64_t final_windows = 0;
  std::uint64_t events = 0;

  double profiled_s = 0;  ///< first window start -> last window end (wall)
  double windows_s = 0;   ///< sum of window wall spans (== profiled_s minus
                          ///< the final partial loop iteration)
  double execute_s = 0;   ///< sum of all LP drain spans
  double critical_s = 0;  ///< sum of each window's longest drain span

  double measured_speedup = 0;  ///< execute_s / profiled_s
  double speedup_bound = 0;     ///< execute_s / critical_s (>= measured)

  std::vector<EngProfHistBucket> window_us_hist;  ///< simulated width [us]
  std::vector<EngProfHistBucket> window_events_hist;

  std::vector<EngProfLpStat> lps;      ///< by LpId
  std::vector<EngProfEdgeStat> edges;  ///< windows_bound desc, then (src,dst)

  std::size_t ring_capacity = 0;
  std::uint64_t ring_dropped = 0;       ///< windows overwritten in the ring
  std::vector<EngProfWindow> ring;      ///< chronological, most recent tail
  std::vector<EngProfLpSlot> ring_slots;  ///< ring.size() * lp_names.size()
};

class EngProfiler {
 public:
  /// window_capacity bounds the timeline ring (per-run memory is
  /// window_capacity * (num_lps + 1) small PODs); aggregates cover the whole
  /// run regardless and ring overwrites are counted in ring_dropped.
  explicit EngProfiler(std::size_t window_capacity = std::size_t{1} << 14);

  /// Wall seconds since the profiler epoch (monotonic clock).
  double now_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch_)
        .count();
  }

  /// Engine topology; called by the engine before its first window
  /// (idempotent — repeated run_until calls re-attach harmlessly).
  void attach(int workers, std::vector<std::string> lp_names);

  /// Coordinator: a window spans [wall_start_s, now at window_end).
  void window_begin(double wall_start_s, sim::SimTime t_min, sim::SimTime bound,
                    EngWindowKind kind, int limit_src, int limit_dst,
                    sim::SimTime limit_la);
  /// Any worker (disjoint slots, ordered by the engine barrier): one LP's
  /// drain span within the current window.
  void lp_ran(int lp, int worker, double exec_start_s, double exec_end_s,
              std::uint64_t events);
  /// Coordinator, after the barrier: close the window and fold it into the
  /// aggregates and the ring.
  void window_end();

  EngProfile snapshot() const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  int workers_ = 1;
  std::size_t num_lps_ = 0;
  bool attached_ = false;

  // Current window (coordinator-owned header, worker-owned disjoint slots).
  EngProfWindow cur_;
  sim::SimTime cur_limit_la_ = 0;
  bool open_ = false;
  std::vector<EngProfLpSlot> slots_;

  // Whole-run aggregates.
  std::uint64_t windows_ = 0, degenerate_ = 0, final_ = 0, events_ = 0;
  double first_window_start_s_ = -1, last_window_end_s_ = 0;
  double windows_s_ = 0, execute_s_ = 0, critical_s_ = 0;
  std::vector<EngProfLpStat> lps_;
  std::map<std::pair<int, int>, EngProfEdgeStat> edges_;
  std::vector<std::uint64_t> width_hist_, events_hist_;

  // Bounded window ring.
  std::size_t cap_;
  std::vector<EngProfWindow> ring_;
  std::vector<EngProfLpSlot> ring_slots_;
  std::size_t head_ = 0;   ///< next write position once full
  std::size_t count_ = 0;  ///< recorded windows (<= cap_)
  std::uint64_t ring_dropped_ = 0;
};

/// "gemsd.engprof.v1" document (schemas/engprof.schema.json). `metadata`
/// entries are {key, pre-serialized JSON value} pairs merged after the schema
/// key (git describe, config hash, ...). Aggregates only — the window ring is
/// exported separately by engprof_chrome_json. Deterministic layout; the
/// values are wall-clock measurements and differ between runs by nature.
std::string engprof_json(
    const EngProfile& p,
    const std::vector<std::pair<std::string, std::string>>& metadata);

/// Wall-clock Perfetto/Chrome timeline of the window ring: one track per
/// worker (drain spans named by LP), one per LP (exec/idle/barrier spans with
/// the stall cause), and a windows track with the bounds and limiting edge.
/// Timestamps are wall microseconds since the profiler epoch — a different
/// time base from the simulated-time trace (obs/trace.hpp), hence a separate
/// file and the gemsd.engprof.trace.v1 schema tag.
std::string engprof_chrome_json(
    const EngProfile& p,
    const std::vector<std::pair<std::string, std::string>>& metadata);

/// Parse a gemsd.engprof.v1 document back into the aggregate fields (the
/// ring stays empty — the report does not need it). Returns false and fills
/// `error` on a document that is not an engprof profile.
bool engprof_from_json(const JsonValue& doc, EngProfile& out,
                       std::string& error);

/// Human-readable report (gemsd_analyze --engine-profile): top straggler LPs,
/// limiting edges ranked by windows bound, stall time by cause, and measured
/// vs bound speedup. Deterministic bytes for a given profile.
std::string format_engprof(const EngProfile& p, int top_k = 10);

}  // namespace gemsd::obs
