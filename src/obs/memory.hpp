#pragma once

#include <cstdint>

namespace gemsd::obs {

/// Process memory usage for the results-level `memory.*` block and the
/// --progress heartbeat. All readings are best-effort: on platforms (or
/// sandboxes) where a source is unavailable the field is 0, never an error —
/// observation must not fail a run. Wall-clock-side only: nothing here reads
/// or perturbs simulation state, so results stay bit-identical with or
/// without memory reporting.
struct MemoryUsage {
  std::uint64_t current_rss_bytes = 0;  ///< resident set right now (VmRSS)
  std::uint64_t peak_rss_bytes = 0;     ///< high-water resident set (VmHWM)
  std::uint64_t heap_bytes = 0;         ///< allocator-held bytes (mallinfo2)
};

/// Resident set size right now (0 if unknown).
std::uint64_t current_rss_bytes();
/// Peak resident set size of this process (0 if unknown).
std::uint64_t peak_rss_bytes();
/// Bytes currently held by the allocator, where the libc exposes it
/// (glibc mallinfo2; 0 elsewhere).
std::uint64_t heap_bytes();

MemoryUsage memory_usage();

}  // namespace gemsd::obs
